// Package dom implements the node model shared by single-hierarchy XML
// trees, the KyGODDAG multihierarchical structure (package core) and the
// result trees built by XQuery element constructors.
//
// A Node is deliberately a plain struct rather than an interface: the
// engine manipulates millions of nodes in benchmarks and the flat
// representation keeps the per-node cost at one allocation. Fields that
// only make sense for some kinds are documented
// per kind below.
package dom

import "strings"

// Kind identifies the type of a Node.
type Kind uint8

// Node kinds. Leaf is specific to the KyGODDAG: it denotes one element of
// the partition of the base text S induced by all markup boundaries.
const (
	Element Kind = iota
	Text
	Attribute
	Comment
	ProcInst
	Leaf
)

// String returns the XPath-style name of the kind.
func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Text:
		return "text"
	case Attribute:
		return "attribute"
	case Comment:
		return "comment"
	case ProcInst:
		return "processing-instruction"
	case Leaf:
		return "leaf"
	}
	return "unknown"
}

// RootHier is the HierIndex of the shared KyGODDAG root: it precedes every
// hierarchy in document order (Definition 3 of the paper).
const RootHier = -1

// LeafHier is the HierIndex assigned to leaf nodes. Definition 3 leaves
// the placement of the leaf layer implementation-dependent; we order
// leaves after all hierarchies.
const LeafHier = 1 << 20

// Node is a node of an XML tree or of a KyGODDAG.
//
// Field usage by kind:
//
//	Element   Name, Hier, HierIndex, Parent, Children, Attrs, Start, End, Ord, Last
//	Text      Data, Hier, HierIndex, Parent, Start, End, Ord (leaf children
//	          are not stored; they are computed against the active document)
//	Attribute Name, Data; Parent is the owning element; Sub orders attributes
//	Comment   Data (round-tripped by the parser, excluded from hierarchies)
//	ProcInst  Name (target), Data
//	Leaf      Data (the substring of S), Start, End, Ord (= leaf index);
//	          the covering text node per covering hierarchy lives in the
//	          owning core.Document (per-version leaf-parent table), so
//	          leaf structs can be shared across document versions
type Node struct {
	Kind Kind

	// Name is the element name, attribute name or PI target.
	Name string
	// NameSym is the per-document interned symbol for Name, assigned when
	// the node is indexed into a KyGODDAG (package core); 0 means "not
	// interned" (constructed result trees), in which case consumers must
	// compare Name strings. Symbols are only comparable within one
	// document lineage (a base document and its overlays share a table).
	NameSym int32
	// Data is the text content (Text, Comment, Leaf), attribute value or
	// PI body.
	Data string

	// Hier is the name of the markup hierarchy the node belongs to; it is
	// "" for the shared root, for leaves and for constructed result trees.
	Hier string
	// HierIndex is the registration index of Hier in its document, RootHier
	// for the shared root and LeafHier for leaves. Constructed result
	// trees use 0.
	HierIndex int

	Parent   *Node
	Children []*Node
	Attrs    []*Node

	// Start and End delimit the node's span of the base text S in bytes
	// (half open). For an empty element both equal the text position of
	// the tag. Result trees built by constructors carry zero spans.
	Start, End int

	// Ord is the preorder position of the node within its hierarchy
	// (hier.Nodes[Ord] == node), or the leaf index for leaves.
	Ord int
	// Last is the Ord of the last node in this node's subtree; the
	// subtree occupies hier.Nodes[Ord..Last].
	Last int
	// Sub breaks Ord ties: 0 for the element itself, i+1 for its i-th
	// attribute.
	Sub int
}

// NewElement returns an element node with the given name.
func NewElement(name string) *Node { return &Node{Kind: Element, Name: name} }

// NewText returns a text node with the given content.
func NewText(data string) *Node { return &Node{Kind: Text, Data: data} }

// AppendChild appends c to n's children and sets c's parent.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// SetAttr sets (or replaces) the attribute name=value on element n.
func (n *Node) SetAttr(name, value string) {
	for _, a := range n.Attrs {
		if a.Name == name {
			a.Data = value
			return
		}
	}
	a := &Node{Kind: Attribute, Name: name, Data: value, Parent: n, Sub: len(n.Attrs) + 1}
	a.Hier, a.HierIndex = n.Hier, n.HierIndex
	a.Ord = n.Ord
	n.Attrs = append(n.Attrs, a)
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Data, true
		}
	}
	return "", false
}

// AttrNode returns the named attribute node, or nil.
func (n *Node) AttrNode(name string) *Node {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// TextContent returns the string value of the node: its own text for
// Text/Attribute/Comment/ProcInst/Leaf nodes, and the concatenation of all
// descendant text for elements. For KyGODDAG nodes this equals
// S[n.Start:n.End].
func (n *Node) TextContent() string {
	switch n.Kind {
	case Text, Attribute, Comment, ProcInst, Leaf:
		return n.Data
	}
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case Text, Leaf:
			b.WriteString(c.Data)
		case Element:
			c.appendText(b)
		}
	}
}

// IsWhitespace reports whether a text node consists only of XML whitespace.
func (n *Node) IsWhitespace() bool {
	for i := 0; i < len(n.Data); i++ {
		switch n.Data[i] {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}

// Clone deep-copies the node into a fresh, hierarchy-less tree suitable for
// use in constructed query results. KyGODDAG bookkeeping (spans, orders,
// leaf links) is dropped; Leaf nodes become Text nodes so that copies of
// multihierarchical content are ordinary XML.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data}
	if n.Kind == Leaf {
		c.Kind = Text
	}
	for _, a := range n.Attrs {
		c.SetAttr(a.Name, a.Data)
	}
	for _, ch := range n.Children {
		c.AppendChild(ch.Clone())
	}
	return c
}

// CloneSpan deep-copies a span-carrying tree (e.g. the nodes of an
// analyze-string overlay hierarchy) into fresh, document-less nodes
// that keep their Start/End base-text coordinates — the form the
// update engine's add-hierarchy edit consumes. Hierarchy bookkeeping
// (Hier, ordinals, interned symbols) is dropped; Leaf nodes become
// Text nodes.
func (n *Node) CloneSpan() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data, Start: n.Start, End: n.End}
	if n.Kind == Leaf {
		c.Kind = Text
	}
	for _, a := range n.Attrs {
		c.SetAttr(a.Name, a.Data)
	}
	for _, ch := range n.Children {
		c.AppendChild(ch.CloneSpan())
	}
	return c
}

// Root walks parent links to the topmost node.
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// IsAncestorOf reports whether n is a proper ancestor of m following parent
// links (single-hierarchy containment; leaves are handled by package core).
func (n *Node) IsAncestorOf(m *Node) bool {
	for p := m.Parent; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// Walk calls fn for n and every descendant reachable through Children, in
// preorder. Attributes are not visited.
func Walk(n *Node, fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		Walk(c, fn)
	}
}

// Compare orders two KyGODDAG nodes per Definition 3 of the paper: the
// shared root first; nodes of the same hierarchy in DOM (preorder) order;
// nodes of different hierarchies in hierarchy registration order; the leaf
// layer after all hierarchies, by leaf index. Attributes sort immediately
// after their owner element and before its children, in attribute order.
// The result is negative, zero or positive in the manner of strings.Compare.
func Compare(a, b *Node) int {
	if a == b {
		return 0
	}
	if a.HierIndex != b.HierIndex {
		if a.HierIndex < b.HierIndex {
			return -1
		}
		return 1
	}
	if a.Ord != b.Ord {
		if a.Ord < b.Ord {
			return -1
		}
		return 1
	}
	if a.Sub != b.Sub {
		if a.Sub < b.Sub {
			return -1
		}
		return 1
	}
	return 0
}
