package dom

import "strings"

// SerializeOptions controls XML/HTML serialization.
type SerializeOptions struct {
	// Indent, when non-empty, pretty-prints with the given unit (result
	// trees only; document-centric serialization must stay byte exact).
	Indent string
	// OmitAttributes drops attributes (used by some diagnostics).
	OmitAttributes bool
}

// XML serializes the subtree rooted at n to an XML string. Empty elements
// are self-closed (<br/>), matching the output style used by the paper.
func XML(n *Node) string {
	var b strings.Builder
	writeNode(&b, n, SerializeOptions{}, 0)
	return b.String()
}

// XMLIndent serializes with pretty-printing.
func XMLIndent(n *Node, indent string) string {
	var b strings.Builder
	writeNode(&b, n, SerializeOptions{Indent: indent}, 0)
	return b.String()
}

// XMLChildren serializes the children of n (the "inner XML").
func XMLChildren(n *Node) string {
	var b strings.Builder
	for _, c := range n.Children {
		writeNode(&b, c, SerializeOptions{}, 0)
	}
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, o SerializeOptions, depth int) {
	switch n.Kind {
	case Text, Leaf:
		b.WriteString(EscapeText(n.Data))
		return
	case Comment:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
		return
	case ProcInst:
		b.WriteString("<?")
		b.WriteString(n.Name)
		if n.Data != "" {
			b.WriteByte(' ')
			b.WriteString(n.Data)
		}
		b.WriteString("?>")
		return
	case Attribute:
		b.WriteString(n.Name)
		b.WriteString(`="`)
		b.WriteString(EscapeAttr(n.Data))
		b.WriteByte('"')
		return
	}
	indent := func(d int) {
		if o.Indent != "" {
			if b.Len() > 0 {
				b.WriteByte('\n')
			}
			for i := 0; i < d; i++ {
				b.WriteString(o.Indent)
			}
		}
	}
	indent(depth)
	b.WriteByte('<')
	b.WriteString(n.Name)
	if !o.OmitAttributes {
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			writeNode(b, a, o, depth)
		}
	}
	if len(n.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	onlyElems := o.Indent != ""
	for _, c := range n.Children {
		if c.Kind != Element {
			onlyElems = false
		}
	}
	for _, c := range n.Children {
		if onlyElems {
			writeNode(b, c, o, depth+1)
		} else {
			writeNode(b, c, SerializeOptions{OmitAttributes: o.OmitAttributes}, 0)
		}
	}
	if onlyElems {
		indent(depth)
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeAttr escapes character data for a double-quoted attribute value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, "&<>\"\n\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		case '\n':
			b.WriteString("&#10;")
		case '\t':
			b.WriteString("&#9;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
