package dom

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Element:   "element",
		Text:      "text",
		Attribute: "attribute",
		Comment:   "comment",
		ProcInst:  "processing-instruction",
		Leaf:      "leaf",
		Kind(99):  "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestAppendChildAndParent(t *testing.T) {
	p := NewElement("p")
	c := NewText("hello")
	p.AppendChild(c)
	if c.Parent != p {
		t.Fatal("AppendChild did not set parent")
	}
	if len(p.Children) != 1 || p.Children[0] != c {
		t.Fatal("AppendChild did not append")
	}
}

func TestAttrs(t *testing.T) {
	e := NewElement("e")
	e.SetAttr("a", "1")
	e.SetAttr("b", "2")
	e.SetAttr("a", "3") // replace
	if v, ok := e.Attr("a"); !ok || v != "3" {
		t.Errorf("Attr(a) = %q, %v", v, ok)
	}
	if v, ok := e.Attr("b"); !ok || v != "2" {
		t.Errorf("Attr(b) = %q, %v", v, ok)
	}
	if _, ok := e.Attr("missing"); ok {
		t.Error("Attr(missing) reported present")
	}
	if len(e.Attrs) != 2 {
		t.Errorf("len(Attrs) = %d, want 2", len(e.Attrs))
	}
	if a := e.AttrNode("b"); a == nil || a.Kind != Attribute || a.Parent != e {
		t.Error("AttrNode(b) malformed")
	}
	if a := e.AttrNode("zz"); a != nil {
		t.Error("AttrNode(zz) should be nil")
	}
	// Attribute order keys.
	if e.Attrs[0].Sub != 1 || e.Attrs[1].Sub != 2 {
		t.Errorf("attribute Sub keys = %d,%d", e.Attrs[0].Sub, e.Attrs[1].Sub)
	}
}

func buildSmallTree() *Node {
	// <a>one<b attr="x">two</b><c/>three</a>
	a := NewElement("a")
	a.AppendChild(NewText("one"))
	b := NewElement("b")
	b.SetAttr("attr", "x")
	b.AppendChild(NewText("two"))
	a.AppendChild(b)
	a.AppendChild(NewElement("c"))
	a.AppendChild(NewText("three"))
	return a
}

func TestTextContent(t *testing.T) {
	a := buildSmallTree()
	if got := a.TextContent(); got != "onetwothree" {
		t.Errorf("TextContent = %q", got)
	}
	if got := a.Children[1].TextContent(); got != "two" {
		t.Errorf("TextContent(b) = %q", got)
	}
	leaf := &Node{Kind: Leaf, Data: "xyz"}
	if leaf.TextContent() != "xyz" {
		t.Error("leaf TextContent")
	}
}

func TestIsWhitespace(t *testing.T) {
	if !NewText(" \t\r\n").IsWhitespace() {
		t.Error("whitespace text not detected")
	}
	if NewText(" x ").IsWhitespace() {
		t.Error("non-whitespace text mis-detected")
	}
	if !NewText("").IsWhitespace() {
		t.Error("empty text should count as whitespace")
	}
}

func TestClone(t *testing.T) {
	a := buildSmallTree()
	c := a.Clone()
	if XML(a) != XML(c) {
		t.Errorf("clone differs: %s vs %s", XML(a), XML(c))
	}
	// Mutating the clone must not affect the original.
	c.Children[0].Data = "ONE"
	if a.Children[0].Data != "one" {
		t.Error("clone shares text node with original")
	}
	// Leaves clone into text nodes.
	l := &Node{Kind: Leaf, Data: "seg"}
	lc := l.Clone()
	if lc.Kind != Text || lc.Data != "seg" {
		t.Errorf("leaf clone = %v %q", lc.Kind, lc.Data)
	}
}

func TestRootAndAncestor(t *testing.T) {
	a := buildSmallTree()
	b := a.Children[1]
	two := b.Children[0]
	if two.Root() != a {
		t.Error("Root() wrong")
	}
	if !a.IsAncestorOf(two) || !b.IsAncestorOf(two) {
		t.Error("IsAncestorOf false negative")
	}
	if two.IsAncestorOf(a) || a.IsAncestorOf(a) {
		t.Error("IsAncestorOf false positive")
	}
}

func TestWalkOrder(t *testing.T) {
	a := buildSmallTree()
	var names []string
	Walk(a, func(n *Node) {
		if n.Kind == Element {
			names = append(names, n.Name)
		} else {
			names = append(names, "#"+n.Data)
		}
	})
	want := "a,#one,b,#two,c,#three"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("Walk order = %s, want %s", got, want)
	}
}

func TestCompare(t *testing.T) {
	root := &Node{Kind: Element, Name: "r", HierIndex: RootHier}
	h0a := &Node{Kind: Element, HierIndex: 0, Ord: 0}
	h0b := &Node{Kind: Element, HierIndex: 0, Ord: 5}
	h1 := &Node{Kind: Element, HierIndex: 1, Ord: 0}
	leaf := &Node{Kind: Leaf, HierIndex: LeafHier, Ord: 0}
	ordered := []*Node{root, h0a, h0b, h1, leaf}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	// Attributes sort after their element (same Ord, Sub > 0).
	el := &Node{Kind: Element, HierIndex: 0, Ord: 3}
	el.SetAttr("x", "1")
	if Compare(el, el.Attrs[0]) >= 0 {
		t.Error("element should precede its attribute")
	}
	if Compare(el.Attrs[0], h0b) >= 0 {
		t.Error("attribute of earlier element should precede later element")
	}
}

func TestSerializeXML(t *testing.T) {
	a := buildSmallTree()
	want := `<a>one<b attr="x">two</b><c/>three</a>`
	if got := XML(a); got != want {
		t.Errorf("XML = %s, want %s", got, want)
	}
	if got := XMLChildren(a); got != `one<b attr="x">two</b><c/>three` {
		t.Errorf("XMLChildren = %s", got)
	}
}

func TestSerializeEscaping(t *testing.T) {
	e := NewElement("e")
	e.SetAttr("q", `a"b<c>&`)
	e.AppendChild(NewText(`x < y & z > w`))
	got := XML(e)
	want := `<e q="a&quot;b&lt;c&gt;&amp;">x &lt; y &amp; z &gt; w</e>`
	if got != want {
		t.Errorf("escaped XML = %s, want %s", got, want)
	}
}

func TestSerializeCommentPI(t *testing.T) {
	e := NewElement("e")
	e.AppendChild(&Node{Kind: Comment, Data: " note "})
	e.AppendChild(&Node{Kind: ProcInst, Name: "target", Data: "body"})
	got := XML(e)
	want := `<e><!-- note --><?target body?></e>`
	if got != want {
		t.Errorf("XML = %s, want %s", got, want)
	}
}

func TestSerializeIndent(t *testing.T) {
	a := NewElement("a")
	b := NewElement("b")
	b.AppendChild(NewText("x"))
	a.AppendChild(b)
	a.AppendChild(NewElement("c"))
	got := XMLIndent(a, "  ")
	want := "<a>\n  <b>x</b>\n  <c/>\n</a>"
	if got != want {
		t.Errorf("XMLIndent = %q, want %q", got, want)
	}
}

func TestEscapeHelpers(t *testing.T) {
	if EscapeText("plain") != "plain" {
		t.Error("EscapeText should pass plain text through")
	}
	if EscapeAttr("plain") != "plain" {
		t.Error("EscapeAttr should pass plain text through")
	}
	if EscapeAttr("a\tb\nc") != "a&#9;b&#10;c" {
		t.Errorf("EscapeAttr whitespace = %q", EscapeAttr("a\tb\nc"))
	}
}
