package obs

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name + labels returns the same instance.
	if r.Counter("requests_total", "total requests") != c {
		t.Fatal("re-registration returned a new counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestLabeledChildrenAreDistinct(t *testing.T) {
	r := NewRegistry()
	hit := r.Counter("cache_total", "cache", L("result", "hit"))
	miss := r.Counter("cache_total", "cache", L("result", "miss"))
	if hit == miss {
		t.Fatal("distinct label sets shared a counter")
	}
	hit.Add(3)
	miss.Inc()
	snap := r.Snapshot()
	if snap[`cache_total{result="hit"}`] != 3 || snap[`cache_total{result="miss"}`] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Label order must not matter.
	a := r.Counter("multi_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("multi_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order created distinct children")
	}
}

func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.009} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.564) > 1e-9 {
		t.Fatalf("sum = %v, want 5.564", h.Sum())
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	want := []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	}
	for _, w := range want {
		if !strings.Contains(text, w) {
			t.Fatalf("missing %q in:\n%s", w, text)
		}
	}
}

// TestPrometheusFormat checks the exposition structure: HELP/TYPE
// headers precede samples, families are sorted, every sample line
// parses as name{labels} float.
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees", L("kind", `with"quote`)).Inc()
	r.Gauge("a_gauge", "letter a").Set(-3)
	r.Histogram("c_seconds", "latency", []float64{0.5}).Observe(0.25)
	r.CounterFunc("d_func_total", "sampled", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	var familiesInOrder []string
	sc := bufio.NewScanner(strings.NewReader(text))
	typeSeen := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			familiesInOrder = append(familiesInOrder, parts[2])
			typeSeen[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
	}
	wantOrder := []string{"a_gauge", "b_total", "c_seconds", "d_func_total"}
	if fmt.Sprint(familiesInOrder) != fmt.Sprint(wantOrder) {
		t.Fatalf("family order = %v, want %v", familiesInOrder, wantOrder)
	}
	if !strings.Contains(text, `b_total{kind="with\"quote"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", text)
	}
	if !strings.Contains(text, "d_func_total 42") {
		t.Fatalf("counterfunc not sampled:\n%s", text)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x_total", "")
}

// TestConcurrentUpdatesAndScrapes hammers every metric type from many
// goroutines while scraping; run under -race this is the registry's
// thread-safety proof.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hot_total", "", L("w", strconv.Itoa(w%2)))
			g := r.Gauge("hot_gauge", "")
			h := r.Histogram("hot_seconds", "", LatencyBuckets)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1e4)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	snap := r.Snapshot()
	total := snap[`hot_total{w="0"}`] + snap[`hot_total{w="1"}`]
	if total != workers*iters {
		t.Fatalf("counter total = %v, want %d", total, workers*iters)
	}
	if snap["hot_seconds_count"] != workers*iters {
		t.Fatalf("histogram count = %v, want %d", snap["hot_seconds_count"], workers*iters)
	}
	if snap["hot_gauge"] != workers*iters {
		t.Fatalf("gauge = %v, want %d", snap["hot_gauge"], workers*iters)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "help", []float64{1, 2, 4, 8})

	if _, ok := h.Quantile(0.5); ok {
		t.Fatal("empty histogram reported a quantile")
	}

	// 100 observations spread evenly through (0, 4]: 25 per bucket in
	// the first three, none beyond.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if v, ok := h.Quantile(0.5); !ok || v < 1.5 || v > 2.5 {
		t.Fatalf("p50 = %v, %v; want ~2 by interpolation", v, ok)
	}
	if v, ok := h.Quantile(1); !ok || v != 4 {
		t.Fatalf("p100 = %v, %v; want top of occupied bucket", v, ok)
	}
	if v, ok := h.Quantile(0); !ok || v < 0 || v > 1 {
		t.Fatalf("p0 = %v, %v; want inside first bucket", v, ok)
	}

	// Observations past every bound land in +Inf and clamp to the
	// highest finite bound.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	if v, ok := h.Quantile(0.99); !ok || v != 8 {
		t.Fatalf("p99 with overflow = %v, %v; want clamp to 8", v, ok)
	}
}
