// Package obs is a dependency-free metrics toolkit for the engine: a
// named registry of atomic counters, gauges and fixed-bucket latency
// histograms, with a hand-rolled Prometheus text-format (version 0.0.4)
// encoder. It exists so every layer of the engine — core index builds,
// the collection's caches and fan-out pool, the HTTP surface — can
// report what it actually did without pulling a client library into the
// stdlib-only module.
//
// Metrics are created through a Registry and identified by (name, label
// set); creating the same metric twice returns the shared instance, so
// hot paths may look metrics up eagerly at construction time and then
// update them lock-free. All update operations (Inc, Add, Set, Observe)
// are atomic and safe for concurrent use; WritePrometheus may run
// concurrently with updates and observes a consistent-enough snapshot
// (each sample is individually atomic).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one fixed key=value pair of a metric. Labels are bound at
// creation time; a metric family with dynamic label values is modeled by
// creating one child per value (the registry deduplicates).
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down (queue depths,
// worker counts, corpus sizes).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order; the +Inf bucket is implicit. Observe is
// lock-free: one atomic add on the bucket counter, one on the total
// count and a CAS loop on the float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (typically ≤ 20); linear scan beats binary search
	// at this size and keeps the code obvious.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (clamped to [0, 1]) of the
// observed distribution by linear interpolation inside the bucket the
// rank lands in — the same estimate Prometheus's histogram_quantile
// gives. The bool is false when nothing has been observed. Ranks
// landing in the +Inf overflow bucket clamp to the highest finite
// bound.
func (h *Histogram) Quantile(q float64) (float64, bool) {
	total := h.count.Load()
	if total == 0 {
		return 0, false
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := q * float64(total)
	var cum float64
	for i := range h.bounds {
		n := float64(h.counts[i].Load())
		cum += n
		if cum >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if n == 0 {
				return h.bounds[i], true
			}
			return lower + (h.bounds[i]-lower)*(rank-(cum-n))/n, true
		}
	}
	if len(h.bounds) == 0 {
		return 0, true
	}
	return h.bounds[len(h.bounds)-1], true
}

// LatencyBuckets is the default upper-bound set for query-latency
// histograms, in seconds: 10µs up to 10s, roughly 2.5× apart.
var LatencyBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// child is one (label set) member of a metric family. Exactly one of
// the value fields is set, matching the family kind; cf/gf are the
// function-backed variants sampled at scrape time.
type child struct {
	labels string // rendered `k="v",k2="v2"` (sorted, escaped) or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() float64
	gf     func() float64
}

type family struct {
	name, help string
	kind       metricKind
	children   map[string]*child
}

// Registry is a named set of metric families.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// lookup returns (creating if needed) the family and the child for the
// label set. Registering the same name with a different kind panics:
// that is a programming error no caller can handle.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *child {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	ch := f.children[ls]
	if ch == nil {
		ch = &child{labels: ls}
		f.children[ls] = ch
	}
	return ch
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	ch := r.lookup(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if ch.c == nil && ch.cf == nil {
		ch.c = &Counter{}
	}
	return ch.c
}

// CounterFunc registers a counter sampled by fn at scrape time. fn must
// be monotonic and safe for concurrent use (typically it reads an
// atomic counter owned by another package).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	ch := r.lookup(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	ch.cf = fn
	ch.c = nil
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	ch := r.lookup(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if ch.g == nil && ch.gf == nil {
		ch.g = &Gauge{}
	}
	return ch.g
}

// GaugeFunc registers a gauge sampled by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	ch := r.lookup(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	ch.gf = fn
	ch.g = nil
}

// Histogram returns the histogram for (name, labels) with the given
// upper bounds (ascending; +Inf implicit), creating it on first use.
// Subsequent calls for the same metric ignore the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	ch := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if ch.h == nil {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		ch.h = h
	}
	return ch.h
}

// NewHistogram returns a standalone histogram with the given upper
// bounds (ascending; +Inf implicit), unattached to any registry. Use
// it for process-wide distributions owned by a package with no
// registry in scope (e.g. morsel execution times inside the query
// engine), then attach it to each scraping registry with
// RegisterHistogram.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(h.bounds)+1)
	return h
}

// RegisterHistogram attaches an existing histogram under (name,
// labels), so several registries can expose one shared (typically
// process-wide) distribution. Registering a second histogram under the
// same name and labels replaces the first.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	ch := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	ch.h = h
}

// renderLabels renders a label set in sorted-key order with Prometheus
// escaping, without the surrounding braces.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (ch *child) scalar() float64 {
	switch {
	case ch.c != nil:
		return float64(ch.c.Value())
	case ch.cf != nil:
		return ch.cf()
	case ch.g != nil:
		return float64(ch.g.Value())
	case ch.gf != nil:
		return ch.gf()
	}
	return 0
}

// WritePrometheus encodes every metric in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE headers followed by the
// samples, families sorted by name, children by label signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	kids := make(map[*family][]*child, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
		cs := make([]*child, 0, len(f.children))
		for _, ch := range f.children {
			cs = append(cs, ch)
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i].labels < cs[j].labels })
		kids[f] = cs
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, ch := range kids[f] {
			if f.kind == kindHistogram {
				writeHistogram(&b, f.name, ch)
				continue
			}
			writeSample(&b, f.name, ch.labels, ch.scalar())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name string, ch *child) {
	h := ch.h
	if h == nil {
		return
	}
	// Cumulative bucket counts. Reading the per-bucket atomics while
	// observations race can momentarily undercount relative to _count;
	// the +Inf bucket is therefore emitted as _count itself, keeping the
	// invariant bucket{+Inf} == count that scrapers check.
	cum := uint64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(b, name+"_bucket", joinLabels(ch.labels, `le="`+formatFloat(ub)+`"`), float64(cum))
	}
	count := h.Count()
	if c := cum + h.counts[len(h.bounds)].Load(); c > count {
		count = c
	}
	writeSample(b, name+"_bucket", joinLabels(ch.labels, `le="+Inf"`), float64(count))
	writeSample(b, name+"_sum", ch.labels, h.Sum())
	writeSample(b, name+"_count", ch.labels, float64(count))
}

func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// Quantile estimates the q-quantile of the unlabeled histogram
// registered under name (see Histogram.Quantile). The bool is false
// when no such histogram exists or it has no observations; the
// registry is not modified either way.
func (r *Registry) Quantile(name string, q float64) (float64, bool) {
	r.mu.Lock()
	var h *Histogram
	if f := r.fams[name]; f != nil && f.kind == kindHistogram {
		if ch := f.children[""]; ch != nil {
			h = ch.h
		}
	}
	r.mu.Unlock()
	if h == nil {
		return 0, false
	}
	return h.Quantile(q)
}

// Snapshot flattens every scalar metric into a map keyed by
// "name{labels}" ("name" when unlabeled); histograms contribute
// "_count" and "_sum" entries. Intended for tests and tooling that want
// values without parsing the exposition format.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	type item struct {
		f  *family
		ch *child
	}
	var items []item
	for _, f := range r.fams {
		for _, ch := range f.children {
			items = append(items, item{f, ch})
		}
	}
	r.mu.Unlock()

	out := make(map[string]float64, len(items))
	key := func(name, labels string) string {
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}
	for _, it := range items {
		if it.f.kind == kindHistogram {
			if it.ch.h != nil {
				out[key(it.f.name+"_count", it.ch.labels)] = float64(it.ch.h.Count())
				out[key(it.f.name+"_sum", it.ch.labels)] = it.ch.h.Sum()
			}
			continue
		}
		out[key(it.f.name, it.ch.labels)] = it.ch.scalar()
	}
	return out
}
