// Package wal implements the durable write path of a collection: a
// per-collection append-only log of update batches with checksummed,
// length-prefixed records, group-committed fsyncs, torn-tail-tolerant
// recovery, and an injectable filesystem layer so every crash window
// can be exercised deterministically in tests.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the durable write path runs on. The
// production implementation is OSFS; CrashFS (crashfs.go) is an
// in-memory model with syscall-level fault injection and power-loss
// simulation. Everything the collection persists — the WAL, document
// images, temp files, directory fsyncs — goes through one FS so a
// crash test covers the whole write path, not just the log.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir returns the names (not paths) of the plain files in dir.
	ReadDir(dir string) ([]string, error)
	// Open opens the named file for reading.
	Open(name string) (io.ReadCloser, error)
	// Create creates (or truncates) the named file for writing.
	Create(name string) (File, error)
	// OpenAppend opens the named file for appending, creating it if
	// needed.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname. Durability of
	// the new directory entry requires a subsequent SyncDir.
	Rename(oldname, newname string) error
	// Remove deletes the named file (no error if it does not exist).
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making completed
	// create/rename/remove operations durable across power loss. On
	// ext4 the rename alone orders the data but does not persist the
	// directory entry.
	SyncDir(dir string) error
}

// File is a writable file handle.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// OSFS is the real operating-system implementation of FS.
type OSFS struct{}

// OS is the shared OSFS instance.
var OS FS = OSFS{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OSFS) Remove(name string) error {
	err := os.Remove(name)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
