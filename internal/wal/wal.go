package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// File layout:
//
//	header  "MHWL" 0x01                                   (5 bytes)
//	record  u32le payload-len | u32le crc32c | payload    (repeated)
//	payload kind | uvarint seq | uvarint base |
//	        uvarint len(name) name | uvarint len(src) src
//
// Records carry the PR 5 edit-language source — already a compact,
// replayable representation of an update batch — so replay is
// compile + apply, reusing the whole read-side engine.
//
// Recovery semantics (Scan): a record whose frame runs past EOF, or
// whose checksum fails on the final frame of the file, is a torn tail
// — the crash interrupted the write — and is tolerated: the log is
// valid up to it and the tail is truncated and counted. A checksum
// failure (or framing violation) with more data after it is mid-log
// corruption and fails loudly: acknowledged commits may be missing
// and silently dropping them is the one thing a durable log must
// never do.

var logHeader = []byte{'M', 'H', 'W', 'L', 1}

// maxRecordLen bounds one record's payload; anything larger is
// corruption, not data.
const maxRecordLen = 1 << 28

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Kind discriminates record types.
type Kind uint8

const (
	// Update is one applied update batch: Name, Base (the revision it
	// applied to) and Src (the edit-language source to replay).
	Update Kind = iota + 1
	// Tombstone records a document deletion: replay drops the document
	// and every earlier update record targeting it.
	Tombstone
)

// Record is one logged write.
type Record struct {
	Seq  uint64
	Kind Kind
	Name string
	Base uint64
	Src  string
}

// ErrCorrupt tags mid-log corruption: the log is damaged before its
// tail, so acknowledged commits may be unrecoverable (errors.Is).
var ErrCorrupt = errors.New("MHXQ0202: corrupt write-ahead log")

// encodePayload renders r without the frame.
func encodePayload(r Record) []byte {
	buf := make([]byte, 0, 2+4*binary.MaxVarintLen64+len(r.Name)+len(r.Src))
	buf = append(buf, byte(r.Kind))
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = binary.AppendUvarint(buf, r.Base)
	buf = binary.AppendUvarint(buf, uint64(len(r.Name)))
	buf = append(buf, r.Name...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Src)))
	buf = append(buf, r.Src...)
	return buf
}

// frame prepends the length+checksum header to a payload.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.Checksum(payload, crcTable))
	copy(out[8:], payload)
	return out
}

func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 1 {
		return r, fmt.Errorf("empty payload")
	}
	r.Kind = Kind(p[0])
	if r.Kind != Update && r.Kind != Tombstone {
		return r, fmt.Errorf("unknown record kind %d", p[0])
	}
	p = p[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("truncated varint")
		}
		p = p[n:]
		return v, nil
	}
	str := func() (string, error) {
		n, err := next()
		if err != nil {
			return "", err
		}
		if n > uint64(len(p)) {
			return "", fmt.Errorf("truncated string")
		}
		s := string(p[:n])
		p = p[n:]
		return s, nil
	}
	var err error
	if r.Seq, err = next(); err != nil {
		return r, err
	}
	if r.Base, err = next(); err != nil {
		return r, err
	}
	if r.Name, err = str(); err != nil {
		return r, err
	}
	if r.Src, err = str(); err != nil {
		return r, err
	}
	if len(p) != 0 {
		return r, fmt.Errorf("%d trailing payload bytes", len(p))
	}
	return r, nil
}

// Scan parses a log image. It returns the decoded records and the
// number of torn-tail bytes it tolerated (truncated from the end). A
// framing or checksum violation anywhere but the file's final frame is
// mid-log corruption and returns an error wrapping ErrCorrupt.
func Scan(data []byte) (recs []Record, tornBytes int, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < len(logHeader) {
		// A crash mid-header-write leaves a short prefix; anything else
		// short is not our file.
		if string(data) == string(logHeader[:len(data)]) {
			return nil, len(data), nil
		}
		return nil, 0, fmt.Errorf("wal: bad log header: %w", ErrCorrupt)
	}
	if string(data[:len(logHeader)]) != string(logHeader) {
		return nil, 0, fmt.Errorf("wal: bad log header: %w", ErrCorrupt)
	}
	off := len(logHeader)
	lastSeq := uint64(0)
	for off < len(data) {
		rest := len(data) - off
		if rest < 8 {
			return recs, rest, nil // torn frame header
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxRecordLen {
			if off+8+plen > len(data) {
				return recs, rest, nil // garbage tail, cannot even frame
			}
			return nil, 0, fmt.Errorf("wal: record at offset %d: absurd length %d: %w", off, plen, ErrCorrupt)
		}
		if off+8+plen > len(data) {
			return recs, rest, nil // torn payload
		}
		payload := data[off+8 : off+8+plen]
		if crc32.Checksum(payload, crcTable) != want {
			if off+8+plen == len(data) {
				return recs, rest, nil // torn final frame
			}
			return nil, 0, fmt.Errorf("wal: record at offset %d: checksum mismatch: %w", off, ErrCorrupt)
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return nil, 0, fmt.Errorf("wal: record at offset %d: %v: %w", off, derr, ErrCorrupt)
		}
		if rec.Seq <= lastSeq {
			return nil, 0, fmt.Errorf("wal: record at offset %d: sequence %d after %d: %w", off, rec.Seq, lastSeq, ErrCorrupt)
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		off += 8 + plen
	}
	return recs, 0, nil
}

// Load reads and scans the log at path. A missing file is an empty,
// clean log.
func Load(fs FS, path string) (recs []Record, tornBytes int, err error) {
	f, err := fs.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	return Scan(data)
}

// Observer receives group-commit measurements; the collection wires it
// to its metrics registry.
type Observer interface {
	// ObserveCommit reports one fsynced batch: how many commits it
	// covered, the bytes written, and the write+sync latency.
	ObserveCommit(records, bytes int, latency time.Duration)
}

// Options configures a Log.
type Options struct {
	// Flush is the group-commit window: after the first commit of a
	// batch arrives, the log writer waits this long for more before
	// one write+fsync covers them all. 0 syncs immediately (commits
	// arriving while a sync is in flight still batch).
	Flush time.Duration
	// Observer receives per-batch measurements (may be nil).
	Observer Observer
}

// Stats is a snapshot of the log's lifetime counters.
type Stats struct {
	// Appends is the number of records acknowledged.
	Appends uint64
	// Bytes is the framed bytes written.
	Bytes uint64
	// Syncs is the number of fsync batches.
	Syncs uint64
	// Resets counts log truncations (compactions after snapshots).
	Resets uint64
}

// Log is an open write-ahead log. Append assigns sequence numbers and
// enqueues; a dedicated writer goroutine batches every queued commit
// into one write+fsync (group commit) and then acknowledges them all.
// A write or sync failure poisons the log — the file tail is in an
// unknown state, so accepting further appends could corrupt it mid-log
// — and every queued and future commit fails.
type Log struct {
	fs    FS
	path  string
	flush time.Duration
	obs   Observer

	appends atomic.Uint64
	bytes   atomic.Uint64
	syncs   atomic.Uint64
	resets  atomic.Uint64

	mu      sync.Mutex
	f       File
	seq     uint64
	queue   []*Commit
	writing bool
	broken  error
	closed  bool

	kick chan struct{}
	quit chan struct{}
	done chan struct{}
}

// Commit is one enqueued record; Wait blocks until its batch is
// fsynced (or the log fails).
type Commit struct {
	seq   uint64
	frame []byte
	ch    chan error
}

// Seq returns the record's assigned sequence number.
func (c *Commit) Seq() uint64 { return c.seq }

// Wait blocks until the record is durable and returns the outcome.
func (c *Commit) Wait() error { return <-c.ch }

// Create atomically writes a fresh, empty log at path (temp file +
// fsync + rename + directory fsync, so a crash leaves either the old
// log or the new one, never a torn file) and opens it for appending.
// Sequence numbers continue from lastSeq.
func Create(fs FS, path string, lastSeq uint64, opts Options) (*Log, error) {
	l := &Log{
		fs:    fs,
		path:  path,
		flush: opts.Flush,
		obs:   opts.Observer,
		seq:   lastSeq,
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if err := l.swapFresh(); err != nil {
		return nil, err
	}
	go l.run()
	return l, nil
}

// swapFresh installs a new empty log file at l.path and opens it for
// appending. Callers must ensure no write is in flight.
func (l *Log) swapFresh() error {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	tmp := l.path + ".tmp"
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(logHeader); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.fs.Rename(tmp, l.path); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.fs.SyncDir(filepath.Dir(l.path)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	af, err := l.fs.OpenAppend(l.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = af
	return nil
}

// Append assigns the next sequence number to rec, enqueues it and
// returns a Commit handle; the caller acknowledges its client only
// after Commit.Wait returns nil. Records are written to the file in
// sequence order.
func (l *Log) Append(rec Record) (*Commit, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("wal: log closed")
	}
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return nil, fmt.Errorf("wal: log failed: %w", err)
	}
	l.seq++
	rec.Seq = l.seq
	c := &Commit{seq: rec.Seq, frame: frame(encodePayload(rec)), ch: make(chan error, 1)}
	l.queue = append(l.queue, c)
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return c, nil
}

// LastSeq returns the highest assigned sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Stats returns a snapshot of the lifetime counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends: l.appends.Load(),
		Bytes:   l.bytes.Load(),
		Syncs:   l.syncs.Load(),
		Resets:  l.resets.Load(),
	}
}

// ResetIf truncates the log to empty — atomically swapping in a fresh
// file — provided every assigned sequence number is ≤ covered and no
// commit is queued or being written: i.e. everything in the log is
// already covered by document snapshots. It reports whether the reset
// happened; callers simply retry after their next snapshot.
func (l *Log) ResetIf(covered uint64) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.broken != nil || l.writing || len(l.queue) > 0 || l.seq > covered {
		return false, nil
	}
	if err := l.swapFresh(); err != nil {
		l.broken = err
		return false, err
	}
	l.resets.Add(1)
	return true, nil
}

// Close drains pending commits (one final batch) and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		err := l.f.Close()
		l.f = nil
		return err
	}
	return nil
}

func (l *Log) run() {
	defer close(l.done)
	for {
		select {
		case <-l.kick:
			if l.flush > 0 {
				// Group-commit window: let concurrent committers pile
				// into this batch before the one fsync.
				time.Sleep(l.flush)
			}
			l.commitPending()
		case <-l.quit:
			l.commitPending()
			return
		}
	}
}

// commitPending writes and fsyncs everything queued as one batch, then
// acknowledges each commit.
func (l *Log) commitPending() {
	l.mu.Lock()
	batch := l.queue
	l.queue = nil
	if len(batch) == 0 {
		l.mu.Unlock()
		return
	}
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		for _, c := range batch {
			c.ch <- fmt.Errorf("wal: log failed: %w", err)
		}
		return
	}
	f := l.f
	l.writing = true
	l.mu.Unlock()

	var buf []byte
	if len(batch) == 1 {
		buf = batch[0].frame
	} else {
		n := 0
		for _, c := range batch {
			n += len(c.frame)
		}
		buf = make([]byte, 0, n)
		for _, c := range batch {
			buf = append(buf, c.frame...)
		}
	}
	start := time.Now()
	_, err := f.Write(buf)
	if err == nil {
		err = f.Sync()
	}
	latency := time.Since(start)

	l.mu.Lock()
	l.writing = false
	if err != nil {
		l.broken = err
	}
	l.mu.Unlock()

	if err == nil {
		l.appends.Add(uint64(len(batch)))
		l.bytes.Add(uint64(len(buf)))
		l.syncs.Add(1)
		if l.obs != nil {
			l.obs.ObserveCommit(len(batch), len(buf), latency)
		}
	}
	for _, c := range batch {
		if err != nil {
			c.ch <- fmt.Errorf("wal: commit failed: %w", err)
		} else {
			c.ch <- nil
		}
	}
}
