package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrInjected is the error every armed CrashFS failpoint returns.
var ErrInjected = errors.New("wal: injected fault")

// errKilled is what every operation returns after Kill: the simulated
// machine is off, nothing succeeds until Crash restarts it.
var errKilled = errors.New("wal: filesystem killed")

// CrashFS is an in-memory FS that models what ext4 actually promises:
// written bytes are volatile until the file is fsynced, and created/
// renamed/removed directory entries are volatile until the directory
// is fsynced. Crash discards volatile state, so a test can kill the
// write path at any syscall boundary, "reboot", and reopen from
// exactly what a power loss would have left on disk.
//
// Fault injection: FailAt arms the n-th subsequent mutating operation
// (create, write, sync, rename, remove, dir-sync) to fail with
// ErrInjected — optionally completing a short write first, the torn-
// write case. Kill turns every subsequent operation into an error so
// background goroutines stop making progress before the test crashes
// and reopens.
type CrashFS struct {
	mu   sync.Mutex
	dirs map[string]bool
	// live is the namespace processes observe; durable is what
	// survives a crash. File contents are shared inodes; each inode's
	// synced watermark tracks how many bytes an fsync has made
	// durable.
	live    map[string]*inode
	durable map[string]*inode

	ops    int // mutating operations performed since the last arm/crash
	failAt int // 1-based op index to fail at; 0 = disarmed
	short  bool
	dead   bool
}

type inode struct {
	data   []byte
	synced int
}

// NewCrashFS returns an empty, fault-free filesystem.
func NewCrashFS() *CrashFS {
	return &CrashFS{
		dirs:    map[string]bool{},
		live:    map[string]*inode{},
		durable: map[string]*inode{},
	}
}

// FailAt arms the n-th mutating operation from now (1-based) to fail
// with ErrInjected; short additionally makes a failing write a torn
// one (half the buffer is written before the error). It resets the
// operation counter.
func (c *CrashFS) FailAt(n int, short bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops, c.failAt, c.short = 0, n, short
}

// OpCount returns the number of mutating operations since the last
// FailAt/Crash, so a harness can size its failpoint sweep.
func (c *CrashFS) OpCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Kill powers the machine off: every subsequent operation fails until
// Crash.
func (c *CrashFS) Kill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = true
}

// Crash simulates the reboot after a power loss: volatile directory
// entries and unsynced bytes are discarded and the filesystem comes
// back fault-free. keepUnsynced bytes of each file's unsynced tail
// survive (0 = strict discard), modeling the partially persisted
// write a real disk can leave behind — the torn-tail case recovery
// must tolerate.
func (c *CrashFS) Crash(keepUnsynced int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := make(map[string]*inode, len(c.durable))
	for path, ino := range c.durable {
		keep := ino.synced + keepUnsynced
		if keep > len(ino.data) {
			keep = len(ino.data)
		}
		live[path] = &inode{data: append([]byte(nil), ino.data[:keep]...), synced: keep}
	}
	c.live = live
	c.durable = make(map[string]*inode, len(live))
	for path, ino := range live {
		c.durable[path] = ino
	}
	c.ops, c.failAt, c.short, c.dead = 0, 0, false, false
}

// step counts one mutating operation and reports whether it must fail.
// Callers hold c.mu.
func (c *CrashFS) step() error {
	if c.dead {
		return errKilled
	}
	c.ops++
	if c.failAt > 0 && c.ops == c.failAt {
		return ErrInjected
	}
	return nil
}

func (c *CrashFS) MkdirAll(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return errKilled
	}
	c.dirs[filepath.Clean(dir)] = true
	return nil
}

func (c *CrashFS) ReadDir(dir string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, errKilled
	}
	dir = filepath.Clean(dir)
	var names []string
	for path := range c.live {
		if filepath.Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (c *CrashFS) Open(name string) (io.ReadCloser, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, errKilled
	}
	ino, ok := c.live[filepath.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("crashfs: open %s: %w", name, os.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), ino.data...))), nil
}

func (c *CrashFS) Create(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	ino := &inode{}
	c.live[name] = ino
	return &crashFile{fs: c, name: name, ino: ino}, nil
}

func (c *CrashFS) OpenAppend(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	ino, ok := c.live[name]
	if !ok {
		ino = &inode{}
		c.live[name] = ino
	}
	return &crashFile{fs: c, name: name, ino: ino}, nil
}

func (c *CrashFS) Rename(oldname, newname string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	ino, ok := c.live[oldname]
	if !ok {
		return fmt.Errorf("crashfs: rename %s: %w", oldname, os.ErrNotExist)
	}
	c.live[newname] = ino
	delete(c.live, oldname)
	return nil
}

func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	delete(c.live, filepath.Clean(name))
	return nil
}

// SyncDir makes dir's current entries durable: files created, renamed
// or removed under it survive a crash from this point on (contents
// still only up to each file's own synced watermark).
func (c *CrashFS) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	dir = filepath.Clean(dir)
	for path := range c.durable {
		if filepath.Dir(path) == dir {
			if _, ok := c.live[path]; !ok {
				delete(c.durable, path)
			}
		}
	}
	for path, ino := range c.live {
		if filepath.Dir(path) == dir {
			c.durable[path] = ino
		}
	}
	return nil
}

type crashFile struct {
	fs     *CrashFS
	name   string
	ino    *inode
	closed bool
}

func (f *crashFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("crashfs: write %s: file closed", f.name)
	}
	if err := f.fs.step(); err != nil {
		if errors.Is(err, ErrInjected) && f.fs.short && len(p) > 1 {
			// Torn write: half the buffer reached the file before the
			// fault.
			n := len(p) / 2
			f.ino.data = append(f.ino.data, p[:n]...)
			return n, err
		}
		return 0, err
	}
	f.ino.data = append(f.ino.data, p...)
	return len(p), nil
}

func (f *crashFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fmt.Errorf("crashfs: sync %s: file closed", f.name)
	}
	if err := f.fs.step(); err != nil {
		return err
	}
	f.ino.synced = len(f.ino.data)
	return nil
}

func (f *crashFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}

func (f *crashFile) Name() string { return f.name }
