package wal

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func readFile(t *testing.T, fs FS, path string) []byte {
	t.Helper()
	f, err := fs.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

func writeFile(t *testing.T, fs FS, path string, data []byte) {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Create(OS, path, 0, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	want := []Record{
		{Kind: Update, Name: "alpha", Base: 0, Src: `rename node (//w)[1] as "ww"`},
		{Kind: Update, Name: "beta", Base: 3, Src: `delete node (//line)[2]`},
		{Kind: Tombstone, Name: "alpha", Base: 1},
	}
	for i := range want {
		c, err := l.Append(want[i])
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if err := c.Wait(); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
		want[i].Seq = c.Seq()
		if c.Seq() != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", c.Seq(), i+1)
		}
	}
	if got := l.LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
	st := l.Stats()
	if st.Appends != 3 || st.Syncs == 0 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, torn, err := Load(OS, path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if torn != 0 {
		t.Fatalf("torn = %d, want 0", torn)
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	recs, torn, err := Load(OS, filepath.Join(t.TempDir(), "nope.log"))
	if err != nil || len(recs) != 0 || torn != 0 {
		t.Fatalf("Load missing = %v, %d, %v", recs, torn, err)
	}
}

// buildLog renders a log image with the given records directly.
func buildLog(recs ...Record) []byte {
	out := append([]byte(nil), logHeader...)
	for _, r := range recs {
		out = append(out, frame(encodePayload(r))...)
	}
	return out
}

func TestScanTornTail(t *testing.T) {
	full := buildLog(
		Record{Seq: 1, Kind: Update, Name: "a", Src: "x"},
		Record{Seq: 2, Kind: Update, Name: "b", Src: "y"},
	)
	// Every truncation point after the first full record must yield
	// exactly record 1 plus a tolerated torn tail.
	first := buildLog(Record{Seq: 1, Kind: Update, Name: "a", Src: "x"})
	for cut := len(first) + 1; cut < len(full); cut++ {
		recs, torn, err := Scan(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 1 || recs[0].Seq != 1 {
			t.Fatalf("cut %d: got %d records", cut, len(recs))
		}
		if torn != cut-len(first) {
			t.Fatalf("cut %d: torn = %d, want %d", cut, torn, cut-len(first))
		}
	}
	// Truncation inside the header is torn too.
	for cut := 1; cut < len(logHeader); cut++ {
		recs, torn, err := Scan(full[:cut])
		if err != nil || len(recs) != 0 || torn != cut {
			t.Fatalf("header cut %d: %v %d %v", cut, recs, torn, err)
		}
	}
	// A corrupted FINAL record is a torn tail (interrupted write), not
	// mid-log corruption.
	img := append([]byte(nil), full...)
	img[len(img)-1] ^= 0xff
	recs, torn, err := Scan(img)
	if err != nil {
		t.Fatalf("corrupt final: %v", err)
	}
	if len(recs) != 1 || torn == 0 {
		t.Fatalf("corrupt final: %d records, torn %d", len(recs), torn)
	}
}

func TestScanMidLogCorruptionFailsLoudly(t *testing.T) {
	full := buildLog(
		Record{Seq: 1, Kind: Update, Name: "a", Src: "x"},
		Record{Seq: 2, Kind: Update, Name: "b", Src: "y"},
	)
	first := buildLog(Record{Seq: 1, Kind: Update, Name: "a", Src: "x"})
	// Flip a payload byte of record 1: its checksum fails with data
	// after it.
	img := append([]byte(nil), full...)
	img[len(first)-1] ^= 0xff
	if _, _, err := Scan(img); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: err = %v, want ErrCorrupt", err)
	}
	// A bad header fails loudly.
	img = append([]byte(nil), full...)
	img[0] = 'X'
	if _, _, err := Scan(img); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad header: err = %v, want ErrCorrupt", err)
	}
	// Non-increasing sequence numbers fail loudly.
	img = buildLog(
		Record{Seq: 2, Kind: Update, Name: "a", Src: "x"},
		Record{Seq: 2, Kind: Update, Name: "b", Src: "y"},
	)
	if _, _, err := Scan(img); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("repeated seq: err = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	fs := NewCrashFS()
	if err := fs.MkdirAll("coll"); err != nil {
		t.Fatal(err)
	}
	l, err := Create(fs, "coll/wal.log", 0, Options{Flush: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := l.Append(Record{Kind: Update, Name: fmt.Sprintf("doc%02d", i), Src: "s"})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = c.Wait()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("appends = %d, want %d", st.Appends, n)
	}
	if st.Syncs >= n {
		t.Fatalf("syncs = %d: group commit did not batch %d concurrent commits", st.Syncs, n)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, torn, err := Load(fs, "coll/wal.log")
	if err != nil || torn != 0 {
		t.Fatalf("Load: %v torn=%d", err, torn)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d", i, r.Seq)
		}
	}
}

func TestResetIf(t *testing.T) {
	fs := NewCrashFS()
	fs.MkdirAll("coll")
	l, err := Create(fs, "coll/wal.log", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		c, _ := l.Append(Record{Kind: Update, Name: "d", Src: "s"})
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := l.ResetIf(2); ok || err != nil {
		t.Fatalf("ResetIf(2) = %v, %v: must refuse when seq 3 is uncovered", ok, err)
	}
	if ok, err := l.ResetIf(3); !ok || err != nil {
		t.Fatalf("ResetIf(3) = %v, %v", ok, err)
	}
	// The log is empty again but sequence numbers keep counting.
	recs, torn, err := Load(fs, "coll/wal.log")
	if err != nil || torn != 0 || len(recs) != 0 {
		t.Fatalf("after reset: %d recs, torn %d, %v", len(recs), torn, err)
	}
	c, err := l.Append(Record{Kind: Update, Name: "d", Src: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.Seq() != 4 {
		t.Fatalf("seq after reset = %d, want 4", c.Seq())
	}
	if l.Stats().Resets != 1 {
		t.Fatalf("resets = %d", l.Stats().Resets)
	}
}

func TestSyncFailurePoisonsLog(t *testing.T) {
	fs := NewCrashFS()
	fs.MkdirAll("coll")
	l, err := Create(fs, "coll/wal.log", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, _ := l.Append(Record{Kind: Update, Name: "d", Src: "s"})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	// Fail the next sync (op 1 = write, op 2 = sync).
	fs.FailAt(2, false)
	c, _ = l.Append(Record{Kind: Update, Name: "d", Src: "s"})
	if err := c.Wait(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Wait after injected sync failure = %v", err)
	}
	// The log is poisoned: further appends must refuse rather than
	// write after an unknown-length tail.
	fs.FailAt(0, false)
	if _, err := l.Append(Record{Kind: Update, Name: "d", Src: "s"}); err == nil {
		t.Fatal("Append succeeded on a poisoned log")
	}
}

func TestCrashFSDropsUnsyncedState(t *testing.T) {
	fs := NewCrashFS()
	fs.MkdirAll("c")
	// Synced file with an unsynced tail.
	f, _ := fs.Create("c/a")
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte("+volatile"))
	f.Close()
	fs.SyncDir("c")
	// Created but never dir-synced: the entry itself is volatile.
	g, _ := fs.Create("c/b")
	g.Write([]byte("gone"))
	g.Sync()
	g.Close()

	fs.Crash(0)
	if got := string(readFile(t, fs, "c/a")); got != "durable" {
		t.Fatalf("a = %q", got)
	}
	if _, err := fs.Open("c/b"); err == nil {
		t.Fatal("b survived without a directory sync")
	}

	// keepUnsynced preserves part of a torn tail.
	h, _ := fs.OpenAppend("c/a")
	h.Write([]byte("xyz"))
	h.Close()
	fs.Crash(2)
	if got := string(readFile(t, fs, "c/a")); got != "durablexy" {
		t.Fatalf("a after torn crash = %q", got)
	}
}

func TestCrashFSRemoveNeedsDirSync(t *testing.T) {
	fs := NewCrashFS()
	fs.MkdirAll("c")
	writeFile(t, fs, "c/a", []byte("data"))
	fs.SyncDir("c")
	fs.Remove("c/a")
	fs.Crash(0)
	// Remove without SyncDir: the entry comes back after a crash.
	if _, err := fs.Open("c/a"); err != nil {
		t.Fatalf("a should survive un-synced remove: %v", err)
	}
	fs.Remove("c/a")
	fs.SyncDir("c")
	fs.Crash(0)
	if _, err := fs.Open("c/a"); err == nil {
		t.Fatal("a survived a synced remove")
	}
}

func TestCrashFSShortWrite(t *testing.T) {
	fs := NewCrashFS()
	fs.MkdirAll("c")
	f, err := fs.Create("c/a")
	if err != nil {
		t.Fatal(err)
	}
	fs.SyncDir("c")
	fs.FailAt(1, true)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) || n != 5 {
		t.Fatalf("short write = %d, %v", n, err)
	}
	f.Close()
	fs.Crash(5)
	if got := string(readFile(t, fs, "c/a")); got != "01234" {
		t.Fatalf("torn file = %q", got)
	}
}
