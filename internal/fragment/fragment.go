// Package fragment implements the baselines the paper compares against by
// citation ([6], "Searching Multi-Hierarchical XML Documents: the Case of
// Fragmentation"): representing a multihierarchical document as a SINGLE
// well-formed XML tree using the classic serialization "hacks":
//
//   - Fragmentation: when an element of one hierarchy would cross a
//     boundary of an element already open, it is split into fragments
//     carrying part="I|M|F", id and next attributes (TEI-style chains).
//   - Milestones: one hierarchy keeps its tree shape; every other
//     element is flattened into empty <name-start id/>/<name-end ref/>
//     marker pairs.
//
// The package also implements the query side of the comparison: answering
// the paper's "damaged words" workload over these encodings requires
// reassembling fragment chains (or pairing milestones) and re-deriving
// intervals — the "steep price at query processing time" the paper
// refers to. Benchmarks in the repository root quantify it against the
// native KyGODDAG axes.
package fragment

import (
	"fmt"
	"sort"
	"strconv"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// open tracks one currently-open fragment during the sweep.
type open struct {
	src   *dom.Node
	el    *dom.Node
	chain int // chain id (stable across fragments of one source element)
	fragN int // 1-based fragment ordinal
}

// Fragment flattens the document into a single well-formed tree. Elements
// are opened longest-span-first at each boundary; an element that must
// close while others opened after it are still open forces those to be
// split: the enclosing fragment is closed (part="I" or "M", id, next) and
// reopened after it (part="M" or, at its true end, "F"). Elements never
// split keep their original attributes only.
func Fragment(d *core.Document) *dom.Node {
	d.Materialize() // walks every hierarchy's node storage directly
	root := dom.NewElement(d.Root.Name)
	for _, a := range d.Root.Attrs {
		root.SetAttr(a.Name, a.Data)
	}

	starts := make(map[int][]*dom.Node)
	for _, h := range d.Hiers {
		for _, n := range h.Nodes {
			if n.Kind == dom.Element {
				starts[n.Start] = append(starts[n.Start], n)
			}
		}
	}
	depth := func(n *dom.Node) int {
		dep := 0
		for p := n.Parent; p != nil; p = p.Parent {
			dep++
		}
		return dep
	}

	var stack []*open
	top := func() *dom.Node {
		if len(stack) == 0 {
			return root
		}
		return stack[len(stack)-1].el
	}
	addText := func(s string) {
		t := top()
		if k := len(t.Children); k > 0 && t.Children[k-1].Kind == dom.Text {
			t.Children[k-1].Data += s
			return
		}
		t.AppendChild(dom.NewText(s))
	}

	nextChain := 0
	newFragment := func(src *dom.Node, chain, fragN int) *open {
		el := dom.NewElement(src.Name)
		for _, a := range src.Attrs {
			el.SetAttr(a.Name, a.Data)
		}
		o := &open{src: src, el: el, chain: chain, fragN: fragN}
		top().AppendChild(el)
		stack = append(stack, o)
		return o
	}
	// interrupt closes o mid-element: it becomes a non-final fragment.
	interrupt := func(o *open) {
		if o.fragN == 1 {
			o.el.SetAttr("part", "I")
		} else {
			o.el.SetAttr("part", "M")
		}
		o.el.SetAttr("id", fragID(o.chain, o.fragN))
		o.el.SetAttr("next", fragID(o.chain, o.fragN+1))
	}
	finish := func(o *open) {
		if o.fragN > 1 {
			o.el.SetAttr("part", "F")
			o.el.SetAttr("id", fragID(o.chain, o.fragN))
		}
	}

	for bi, p := range d.Bounds {
		// Close every element ending at p, splitting whatever sits above
		// it on the stack.
		for {
			idx := -1
			for i, o := range stack {
				if o.src.End == p {
					idx = i
					break
				}
			}
			if idx < 0 {
				break
			}
			var reopen []*open
			for len(stack) > idx {
				o := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if o.src.End == p {
					finish(o)
					continue
				}
				interrupt(o)
				reopen = append(reopen, o)
			}
			// Reopen interrupted elements outermost-first (they were
			// popped innermost-first).
			for i := len(reopen) - 1; i >= 0; i-- {
				o := reopen[i]
				if o.chain == 0 {
					nextChain++
					o.chain = nextChain
					// Patch the id/next attributes now that the chain exists.
					o.el.SetAttr("id", fragID(o.chain, o.fragN))
					o.el.SetAttr("next", fragID(o.chain, o.fragN+1))
				}
				newFragment(o.src, o.chain, o.fragN+1)
			}
		}
		// Open elements starting at p, longest span first so that
		// containers nest naturally.
		sts := starts[p]
		sort.SliceStable(sts, func(i, j int) bool {
			if sts[i].End != sts[j].End {
				return sts[i].End > sts[j].End
			}
			if sts[i].HierIndex != sts[j].HierIndex {
				return sts[i].HierIndex < sts[j].HierIndex
			}
			return depth(sts[i]) < depth(sts[j])
		})
		for _, src := range sts {
			newFragment(src, 0, 1)
		}
		if bi+1 < len(d.Bounds) {
			addText(d.Text[p:d.Bounds[bi+1]])
		}
	}
	// Chains created above share a counter but fragments may still carry
	// chain==0 when never split: their id/next were never set, as wanted.
	return root
}

func fragID(chain, fragN int) string {
	return "c" + strconv.Itoa(chain) + "." + strconv.Itoa(fragN)
}

// Milestone flattens the document keeping the primary hierarchy as a real
// tree; every element of the other hierarchies becomes an empty
// <name-start id="k"/> / <name-end ref="k"/> marker pair at its boundary
// positions.
func Milestone(d *core.Document, primary string) (*dom.Node, error) {
	d.Materialize() // walks every hierarchy's node storage directly
	ph := d.HierarchyByName(primary)
	if ph == nil {
		return nil, fmt.Errorf("fragment: unknown primary hierarchy %q", primary)
	}
	root := dom.NewElement(d.Root.Name)
	for _, a := range d.Root.Attrs {
		root.SetAttr(a.Name, a.Data)
	}

	type marker struct {
		name  string
		id    int
		start bool
		attrs []*dom.Node
	}
	markers := make(map[int][]marker)
	id := 0
	for _, h := range d.Hiers {
		if h == ph {
			continue
		}
		for _, n := range h.Nodes {
			if n.Kind != dom.Element {
				continue
			}
			id++
			markers[n.Start] = append(markers[n.Start], marker{name: n.Name, id: id, start: true, attrs: n.Attrs})
			markers[n.End] = append([]marker{{name: n.Name, id: id}}, markers[n.End]...)
		}
	}
	starts := make(map[int][]*dom.Node)
	for _, n := range ph.Nodes {
		if n.Kind == dom.Element {
			starts[n.Start] = append(starts[n.Start], n)
		}
	}

	var stack []*dom.Node
	srcOf := make(map[*dom.Node]*dom.Node)
	top := func() *dom.Node {
		if len(stack) == 0 {
			return root
		}
		return stack[len(stack)-1]
	}
	addText := func(s string) {
		t := top()
		if k := len(t.Children); k > 0 && t.Children[k-1].Kind == dom.Text {
			t.Children[k-1].Data += s
			return
		}
		t.AppendChild(dom.NewText(s))
	}

	for bi, p := range d.Bounds {
		// Close primary elements ending here (they nest properly).
		for len(stack) > 0 && srcOf[stack[len(stack)-1]].End == p {
			stack = stack[:len(stack)-1]
		}
		// End markers come before start markers at the same position.
		for _, m := range markers[p] {
			if m.start {
				continue
			}
			el := dom.NewElement(m.name + "-end")
			el.SetAttr("ref", "m"+strconv.Itoa(m.id))
			top().AppendChild(el)
		}
		// Open primary elements, longest first.
		sts := starts[p]
		sort.SliceStable(sts, func(i, j int) bool { return sts[i].End > sts[j].End })
		for _, src := range sts {
			el := dom.NewElement(src.Name)
			for _, a := range src.Attrs {
				el.SetAttr(a.Name, a.Data)
			}
			top().AppendChild(el)
			srcOf[el] = src
			stack = append(stack, el)
		}
		for _, m := range markers[p] {
			if !m.start {
				continue
			}
			el := dom.NewElement(m.name + "-start")
			el.SetAttr("id", "m"+strconv.Itoa(m.id))
			for _, a := range m.attrs {
				el.SetAttr(a.Name, a.Data)
			}
			top().AppendChild(el)
		}
		if bi+1 < len(d.Bounds) {
			addText(d.Text[p:d.Bounds[bi+1]])
		}
	}
	return root, nil
}
