package fragment

import (
	"sort"
	"strings"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// This file is the query side of the [6] comparison: answering the
// paper's Section 2 workloads over the flattened encodings. Both
// baselines must first reconstruct logical elements — following fragment
// chains or pairing milestone markers — and re-derive character
// intervals before any overlap question can be answered; the KyGODDAG
// answers the same questions with one axis scan.

// Logical is a reconstructed logical element of the original document:
// its name and its (contiguous) span of the base text.
type Logical struct {
	Name       string
	Start, End int
	// Fragments counts how many fragments/markers were joined.
	Fragments int
}

// AnnotateOffsets walks a flattened tree and assigns Start/End text
// offsets to every element (the flat encodings do not carry them).
func AnnotateOffsets(root *dom.Node) {
	pos := 0
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		n.Start = pos
		for _, c := range n.Children {
			switch c.Kind {
			case dom.Text:
				c.Start = pos
				pos += len(c.Data)
				c.End = pos
			case dom.Element:
				walk(c)
			}
		}
		n.End = pos
	}
	walk(root)
}

// ReassembleFragments reconstructs logical elements from a fragmented
// tree (as produced by Fragment): fragments are grouped by their id/next
// chains, unfragmented elements stand for themselves. AnnotateOffsets
// must have run. Results are keyed by element name, in document order.
func ReassembleFragments(root *dom.Node) map[string][]Logical {
	type chainPart struct {
		n    *dom.Node
		next string
	}
	byID := make(map[string]chainPart)
	var singles []*dom.Node
	var heads []*dom.Node
	dom.Walk(root, func(n *dom.Node) {
		if n.Kind != dom.Element || n == root {
			return
		}
		part, _ := n.Attr("part")
		switch part {
		case "":
			singles = append(singles, n)
		case "I":
			heads = append(heads, n)
			fallthrough
		default:
			id, _ := n.Attr("id")
			next, _ := n.Attr("next")
			byID[id] = chainPart{n: n, next: next}
		}
	})
	out := make(map[string][]Logical)
	for _, n := range singles {
		out[n.Name] = append(out[n.Name], Logical{Name: n.Name, Start: n.Start, End: n.End, Fragments: 1})
	}
	for _, h := range heads {
		l := Logical{Name: h.Name, Start: h.Start, End: h.End, Fragments: 1}
		id, _ := h.Attr("next")
		for id != "" {
			p, ok := byID[id]
			if !ok {
				break
			}
			l.Fragments++
			if p.n.End > l.End {
				l.End = p.n.End
			}
			id = p.next
		}
		out[h.Name] = append(out[h.Name], l)
	}
	for name := range out {
		ls := out[name]
		sort.Slice(ls, func(i, j int) bool { return ls[i].Start < ls[j].Start })
	}
	return out
}

// ReassembleMilestones reconstructs logical elements from a milestone
// tree (as produced by Milestone): real elements stand for themselves,
// <name-start id/>/<name-end ref/> pairs are joined by id. AnnotateOffsets
// must have run.
func ReassembleMilestones(root *dom.Node) map[string][]Logical {
	out := make(map[string][]Logical)
	type pending struct {
		name  string
		start int
	}
	open := make(map[string]pending)
	dom.Walk(root, func(n *dom.Node) {
		if n.Kind != dom.Element || n == root {
			return
		}
		switch {
		case strings.HasSuffix(n.Name, "-start"):
			id, _ := n.Attr("id")
			open[id] = pending{name: strings.TrimSuffix(n.Name, "-start"), start: n.Start}
		case strings.HasSuffix(n.Name, "-end"):
			ref, _ := n.Attr("ref")
			p, ok := open[ref]
			if !ok {
				return
			}
			out[p.name] = append(out[p.name], Logical{Name: p.name, Start: p.start, End: n.Start, Fragments: 2})
			delete(open, ref)
		default:
			out[n.Name] = append(out[n.Name], Logical{Name: n.Name, Start: n.Start, End: n.End, Fragments: 1})
		}
	})
	for name := range out {
		ls := out[name]
		sort.Slice(ls, func(i, j int) bool { return ls[i].Start < ls[j].Start })
	}
	return out
}

// DamagedWordIndices answers the paper's Query I.2 workload ("words that
// are totally or partially damaged") over reconstructed logical elements:
// it returns the indices (document order) of words whose span intersects
// any damage span.
func DamagedWordIndices(words, damages []Logical) []int {
	var out []int
	di := 0
	for i, w := range words {
		for di < len(damages) && damages[di].End <= w.Start {
			di++
		}
		for j := di; j < len(damages) && damages[j].Start < w.End; j++ {
			if damages[j].End > w.Start {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// NativeDamagedWordIndices answers the same workload with the KyGODDAG's
// extended axes, for the head-to-head benchmark. It evaluates the query
// the way an engine would plan it: drive from the (few) <dmg> elements
// and collect the words related to each by xancestor, xdescendant or
// overlapping — each an indexed O(depth + answer) axis call — rather
// than testing every word.
func NativeDamagedWordIndices(d *core.Document, wordTag, dmgTag string) []int {
	d.Materialize() // walks every hierarchy's node storage directly
	wordIdx := make(map[*dom.Node]int)
	idx := 0
	for _, h := range d.Hiers {
		for _, n := range h.Nodes {
			if n.Kind == dom.Element && n.Name == wordTag {
				wordIdx[n] = idx
				idx++
			}
		}
	}
	damaged := make(map[int]bool)
	for _, h := range d.Hiers {
		for _, n := range h.Nodes {
			if n.Kind != dom.Element || n.Name != dmgTag {
				continue
			}
			for _, ax := range []core.Axis{core.AxisXAncestor, core.AxisXDescendant, core.AxisOverlapping} {
				for _, m := range d.Eval(ax, n) {
					if i, ok := wordIdx[m]; ok {
						damaged[i] = true
					}
				}
			}
		}
	}
	out := make([]int, 0, len(damaged))
	for i := range damaged {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
