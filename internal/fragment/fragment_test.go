package fragment

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
	"mhxquery/internal/xmlparse"
)

func TestFragmentBoethiusWellFormed(t *testing.T) {
	d := corpus.MustBoethius()
	flat := Fragment(d)
	xml := dom.XML(flat)
	// The flat encoding must be well-formed XML (it round-trips through
	// the parser) and preserve the base text exactly.
	re, err := xmlparse.Parse(xml, xmlparse.Options{})
	if err != nil {
		t.Fatalf("fragmented doc is not well-formed: %v\n%s", err, xml)
	}
	if re.TextContent() != d.Text {
		t.Fatalf("fragmented text = %q", re.TextContent())
	}
	// The split word must appear as fragments with part attributes.
	if !strings.Contains(xml, `part="I"`) || !strings.Contains(xml, `part="F"`) {
		t.Errorf("expected fragment chains in %s", xml)
	}
}

func TestFragmentReassembly(t *testing.T) {
	d := corpus.MustBoethius()
	flat := Fragment(d)
	AnnotateOffsets(flat)
	logical := ReassembleFragments(flat)
	// All six words reassemble with their original spans.
	words := logical["w"]
	if len(words) != 6 {
		t.Fatalf("reassembled %d words, want 6", len(words))
	}
	wantSpans := [][2]int{{0, 10}, {11, 23}, {24, 34}, {35, 40}, {41, 48}, {49, 52}}
	for i, w := range words {
		if w.Start != wantSpans[i][0] || w.End != wantSpans[i][1] {
			t.Errorf("word %d span = [%d,%d), want %v", i, w.Start, w.End, wantSpans[i])
		}
	}
	// singallice crosses the line boundary: it must have been split.
	if words[2].Fragments < 2 {
		t.Errorf("split word reassembled from %d fragments, want >= 2", words[2].Fragments)
	}
	// Damage spans survive.
	dmg := logical["dmg"]
	if len(dmg) != 2 || dmg[0].Start != 14 || dmg[0].End != 15 || dmg[1].Start != 46 || dmg[1].End != 52 {
		t.Errorf("dmg spans = %+v", dmg)
	}
}

func TestMilestoneBoethius(t *testing.T) {
	d := corpus.MustBoethius()
	flat, err := Milestone(d, "physical")
	if err != nil {
		t.Fatal(err)
	}
	xml := dom.XML(flat)
	re, err := xmlparse.Parse(xml, xmlparse.Options{})
	if err != nil {
		t.Fatalf("milestone doc not well-formed: %v\n%s", err, xml)
	}
	if re.TextContent() != d.Text {
		t.Fatalf("milestone text = %q", re.TextContent())
	}
	AnnotateOffsets(flat)
	logical := ReassembleMilestones(flat)
	if len(logical["w"]) != 6 {
		t.Errorf("milestone words = %d", len(logical["w"]))
	}
	if len(logical["line"]) != 2 {
		t.Errorf("milestone lines (primary, real elements) = %d", len(logical["line"]))
	}
	if got := logical["w"][2]; got.Start != 24 || got.End != 34 {
		t.Errorf("milestone singallice span = [%d,%d)", got.Start, got.End)
	}
	if _, err := Milestone(d, "nope"); err == nil {
		t.Error("unknown primary accepted")
	}
}

func TestDamagedWordsAllThreeAgree(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 42, Words: 120, DamageRate: 0.15})
	d, err := c.Document()
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth from the generator.
	want := c.Truth.DamagedWords

	// Native KyGODDAG.
	native := NativeDamagedWordIndices(d, "w", "dmg")
	if !reflect.DeepEqual(native, want) {
		t.Errorf("native damaged words = %v, want %v", native, want)
	}

	// Fragmentation baseline.
	flat := Fragment(d)
	AnnotateOffsets(flat)
	lf := ReassembleFragments(flat)
	fragged := DamagedWordIndices(lf["w"], lf["dmg"])
	if !reflect.DeepEqual(fragged, want) {
		t.Errorf("fragmentation damaged words = %v, want %v", fragged, want)
	}

	// Milestone baseline.
	ms, err := Milestone(d, "physical")
	if err != nil {
		t.Fatal(err)
	}
	AnnotateOffsets(ms)
	lm := ReassembleMilestones(ms)
	mstoned := DamagedWordIndices(lm["w"], lm["dmg"])
	if !reflect.DeepEqual(mstoned, want) {
		t.Errorf("milestone damaged words = %v, want %v", mstoned, want)
	}
}

// TestQuickFragmentationRoundTrip: for random corpora, flattening and
// reassembling recovers every logical element's exact span, and the flat
// document stays well-formed with the same text.
func TestQuickFragmentationRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		c := corpus.Generate(corpus.Params{Seed: seed, Words: 30, DamageRate: 0.2, RestoreRate: 0.2})
		d, err := c.Document()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		flat := Fragment(d)
		if re, err := xmlparse.Parse(dom.XML(flat), xmlparse.Options{}); err != nil || re.TextContent() != d.Text {
			t.Logf("seed %d: flat doc broken: %v", seed, err)
			return false
		}
		AnnotateOffsets(flat)
		logical := ReassembleFragments(flat)
		// Compare spans per element name against the original hierarchies.
		want := map[string][][2]int{}
		for _, h := range d.Hiers {
			for _, n := range h.Nodes {
				if n.Kind == dom.Element {
					want[n.Name] = append(want[n.Name], [2]int{n.Start, n.End})
				}
			}
		}
		for name, spans := range want {
			sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
			got := logical[name]
			if len(got) != len(spans) {
				t.Logf("seed %d: %s count %d vs %d", seed, name, len(got), len(spans))
				return false
			}
			for i := range got {
				if got[i].Start != spans[i][0] || got[i].End != spans[i][1] {
					t.Logf("seed %d: %s[%d] = [%d,%d) want %v", seed, name, i, got[i].Start, got[i].End, spans[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickMilestoneRoundTrip does the same for the milestone encoding.
func TestQuickMilestoneRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		c := corpus.Generate(corpus.Params{Seed: seed, Words: 30, DamageRate: 0.2})
		d, err := c.Document()
		if err != nil {
			return false
		}
		flat, err := Milestone(d, "structure")
		if err != nil {
			return false
		}
		if re, err := xmlparse.Parse(dom.XML(flat), xmlparse.Options{}); err != nil || re.TextContent() != d.Text {
			return false
		}
		AnnotateOffsets(flat)
		logical := ReassembleMilestones(flat)
		for _, h := range d.Hiers {
			count := 0
			for _, n := range h.Nodes {
				if n.Kind == dom.Element {
					count++
				}
			}
			name := ""
			for _, n := range h.Nodes {
				if n.Kind == dom.Element {
					name = n.Name
					break
				}
			}
			if name == "" {
				continue
			}
			// vline/w share a hierarchy; count per name instead.
			perName := map[string]int{}
			for _, n := range h.Nodes {
				if n.Kind == dom.Element {
					perName[n.Name]++
				}
			}
			for nm, cnt := range perName {
				if len(logical[nm]) != cnt {
					t.Logf("seed %d: %s %d vs %d", seed, nm, len(logical[nm]), cnt)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFragmentHandlesEqualSpans(t *testing.T) {
	// Two hierarchies with identical spans must nest, not split.
	a := xmlparse.MustParse(`<r><x>abc</x>def</r>`)
	b := xmlparse.MustParse(`<r><y>abc</y><z>def</z></r>`)
	d, err := core.Build([]core.NamedTree{{Name: "A", Root: a}, {Name: "B", Root: b}})
	if err != nil {
		t.Fatal(err)
	}
	flat := Fragment(d)
	xml := dom.XML(flat)
	if strings.Contains(xml, "part=") {
		t.Errorf("equal spans should not fragment: %s", xml)
	}
	if _, err := xmlparse.Parse(xml, xmlparse.Options{}); err != nil {
		t.Fatalf("not well-formed: %v", err)
	}
}
