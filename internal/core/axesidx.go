package core

import (
	"sort"

	"mhxquery/internal/dom"
)

// This file implements the indexed evaluation of the extended axes — the
// "efficient implementation of extended XQuery over multihierarchical
// document structures" the paper's Section 5 names as future work. Three
// observations make every axis cheap:
//
//  1. Within one hierarchy the nodes containing a text position p form a
//     chain; binary-search descent over sibling spans finds it in
//     O(depth·log width). xancestor and the overlap axes only ever need
//     the chains at n.Start and n.End.
//  2. Preorder position and span Start are both non-decreasing over
//     h.Nodes, so "all nodes starting in [a,b)" is a binary-searched
//     slice — which is exactly the candidate set for xdescendant and
//     xfollowing.
//  3. A per-hierarchy array sorted by span End serves xpreceding.
//
// The unindexed O(N) interval scan is kept (EvalScan) as the ablation
// baseline, and the literal Definition 1 transcription (EvalRef) as the
// semantic reference; property tests require all three to agree exactly.

// chainAt returns the nodes of hierarchy h whose span contains position p
// (outermost first): the containment chain. The axis implementations
// below inline this descent (appendChain) to keep the hot path
// allocation-free; chainAt remains for diagnostic callers.
func chainAt(h *Hierarchy, p int) []*dom.Node {
	var out []*dom.Node
	kids := h.Top
	for len(kids) > 0 {
		i := coveringIndex(kids, p)
		if i < 0 {
			break
		}
		n := kids[i]
		out = append(out, n)
		if n.Kind != dom.Element {
			break
		}
		kids = n.Children
	}
	return out
}

// appendChain appends the containment chain of hierarchy h at position p
// (outermost first) to dst, keeping only nodes passing keep — the
// allocation-free form of "filter chainAt".
func appendChain(dst []*dom.Node, h *Hierarchy, p int, keep func(*dom.Node) bool) []*dom.Node {
	kids := h.Top
	for len(kids) > 0 {
		i := coveringIndex(kids, p)
		if i < 0 {
			break
		}
		n := kids[i]
		if keep(n) {
			dst = append(dst, n)
		}
		if n.Kind != dom.Element {
			break
		}
		kids = n.Children
	}
	return dst
}

// coveringIndex finds the sibling whose span contains p. Sibling spans
// are disjoint and sorted (empty spans contain nothing).
func coveringIndex(kids []*dom.Node, p int) int {
	lo, hi := 0, len(kids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		n := kids[mid]
		switch {
		case n.End <= p:
			lo = mid + 1
		case n.Start > p:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// startIndex returns the first index in h.Nodes whose Start is >= p.
func (h *Hierarchy) startIndex(p int) int {
	return sort.Search(len(h.Nodes), func(i int) bool { return h.Nodes[i].Start >= p })
}

// leafLow returns the index of the first leaf with Start >= p.
func (d *Document) leafLow(p int) int {
	i := sort.SearchInts(d.Bounds, p)
	if i > len(d.Leaves) {
		i = len(d.Leaves)
	}
	return i
}

// leafCountEndingBy returns how many leaves have End <= p.
func (d *Document) leafCountEndingBy(p int) int {
	i := sort.SearchInts(d.Bounds, p+1) - 1
	if i < 0 {
		i = 0
	}
	if i > len(d.Leaves) {
		i = len(d.Leaves)
	}
	return i
}

func reverseNodes(out []*dom.Node) {
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
}

// The idx implementations append into a caller-owned buffer (AppendAxis
// contract): reversals and sorts operate on the appended tail only.

func (d *Document) xancestorIdx(dst []*dom.Node, n *dom.Node) []*dom.Node {
	if n == d.Root {
		return dst
	}
	base := len(dst)
	dst = append(dst, d.Root)
	keep := func(m *dom.Node) bool { return m.End >= n.End && !d.inDescendantOrSelf(n, m) }
	for _, h := range d.Hiers {
		dst = appendChain(dst, h, n.Start, keep)
	}
	reverseNodes(dst[base:]) // reverse axis: nearest first
	return dst
}

func (d *Document) xdescendantIdx(dst []*dom.Node, n *dom.Node) []*dom.Node {
	if n == d.Root {
		for _, h := range d.Hiers {
			dst = append(dst, h.Nodes...)
		}
		return append(dst, d.Leaves...)
	}
	base := len(dst)
	for _, h := range d.Hiers {
		for i := h.startIndex(n.Start); i < len(h.Nodes); i++ {
			m := h.Nodes[i]
			if m.Start >= n.End {
				break
			}
			if emptySpan(m) {
				continue // empty-span nodes handled below
			}
			if m.End <= n.End && !d.inAncestorOrSelf(n, m) {
				dst = append(dst, m)
			}
		}
	}
	// Definition 1 taken literally: leaves(m)=∅ ⊆ leaves(n) for every m,
	// so every empty-span node anywhere is an xdescendant.
	for _, m := range d.empties {
		if !d.inAncestorOrSelf(n, m) {
			dst = append(dst, m)
		}
	}
	lo := d.leafLow(n.Start)
	hi := d.leafCountEndingBy(n.End)
	for i := lo; i < hi; i++ {
		if d.Leaves[i] != n {
			dst = append(dst, d.Leaves[i])
		}
	}
	if len(d.empties) > 0 {
		return dst[:base+len(SortDoc(dst[base:]))]
	}
	return dst
}

func (d *Document) xfollowingIdx(dst []*dom.Node, n *dom.Node) []*dom.Node {
	for _, h := range d.Hiers {
		for i := h.startIndex(n.End); i < len(h.Nodes); i++ {
			if m := h.Nodes[i]; !emptySpan(m) {
				dst = append(dst, m)
			}
		}
	}
	lo := d.leafLow(n.End)
	return append(dst, d.Leaves[lo:]...)
}

func (d *Document) xprecedingIdx(dst []*dom.Node, n *dom.Node) []*dom.Node {
	base := len(dst)
	for _, h := range d.Hiers {
		k := sort.Search(len(h.byEnd), func(i int) bool { return h.byEnd[i].End > n.Start })
		for _, m := range h.byEnd[:k] {
			if !emptySpan(m) {
				dst = append(dst, m)
			}
		}
	}
	dst = append(dst, d.Leaves[:d.leafCountEndingBy(n.Start)]...)
	dst = dst[:base+len(SortDoc(dst[base:]))]
	reverseNodes(dst[base:])
	return dst
}

// overlapIdx serves preceding-overlapping, following-overlapping and
// their union. A preceding-overlapping node contains position n.Start
// but ends inside n; a following-overlapping node contains position
// n.End but starts inside n — both live on containment chains. Leaves
// are atomic and the shared root spans everything, so neither ever
// overlaps partially.
func (d *Document) overlapIdx(dst []*dom.Node, a Axis, n *dom.Node) []*dom.Node {
	base := len(dst)
	keepPre := func(m *dom.Node) bool { return m.Start < n.Start && m.End < n.End }
	keepPost := func(m *dom.Node) bool { return m.Start > n.Start && m.Start < n.End && m.End > n.End }
	for _, h := range d.Hiers {
		if a != AxisFollowingOverlapping {
			dst = appendChain(dst, h, n.Start, keepPre)
		}
		if a != AxisPrecedingOverlapping {
			dst = appendChain(dst, h, n.End, keepPost)
		}
	}
	if a.Reverse() {
		reverseNodes(dst[base:])
	}
	return dst
}
