package core_test

import (
	"reflect"
	"strings"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
	"mhxquery/internal/xmlparse"
)

// boethiusLeaves is the exact leaf partition of the Figure 1/2 fixture.
var boethiusLeaves = []string{
	"gesceaftum", " ", "una", "w", "endendne", " ", "s", "in",
	"gallice", " ", "sibbe", " ", "gecyn", "de", " ", "þa",
}

func TestBuildBoethiusLeafPartition(t *testing.T) {
	d := corpus.MustBoethius()
	if d.Text != corpus.BoethiusText {
		t.Fatalf("base text = %q", d.Text)
	}
	var got []string
	for _, l := range d.Leaves {
		got = append(got, l.Data)
	}
	if !reflect.DeepEqual(got, boethiusLeaves) {
		t.Fatalf("leaves = %q, want %q", got, boethiusLeaves)
	}
	// Leaves concatenate to S.
	if strings.Join(got, "") != d.Text {
		t.Fatal("leaves do not concatenate to S")
	}
}

func TestBuildBoethiusStats(t *testing.T) {
	d := corpus.MustBoethius()
	s := d.Stats()
	if s.Hierarchies != 4 {
		t.Errorf("hierarchies = %d", s.Hierarchies)
	}
	// physical: 2 lines; structure: 3 vlines + 6 w; restoration: 3 res;
	// damage: 2 dmg → 16 elements.
	if s.Elements != 16 {
		t.Errorf("elements = %d, want 16", s.Elements)
	}
	if s.Leaves != 16 {
		t.Errorf("leaves = %d, want 16", s.Leaves)
	}
	if s.LeafEdges <= s.Leaves {
		t.Errorf("leaf edges = %d, expected > %d (multiple hierarchies per leaf)", s.LeafEdges, s.Leaves)
	}
}

func TestLeafParentsPerHierarchy(t *testing.T) {
	d := corpus.MustBoethius()
	// Leaf "w" (index 3) is covered by all four hierarchies: line text,
	// word text, plain restoration text, dmg text.
	leaf := d.Leaves[3]
	if leaf.Data != "w" {
		t.Fatalf("leaf 3 = %q", leaf.Data)
	}
	var hiers []string
	for _, p := range d.LeafParents(leaf) {
		if p.Kind != dom.Text {
			t.Errorf("leaf parent kind = %v", p.Kind)
		}
		hiers = append(hiers, p.Hier)
	}
	want := []string{"physical", "structure", "restoration", "damage"}
	if !reflect.DeepEqual(hiers, want) {
		t.Errorf("leaf parents hierarchies = %v, want %v", hiers, want)
	}
}

func TestBuildErrors(t *testing.T) {
	parse := func(s string) *dom.Node { return xmlparse.MustParse(s) }
	cases := []struct {
		name  string
		trees []core.NamedTree
	}{
		{"empty", nil},
		{"nil root", []core.NamedTree{{Name: "a"}}},
		{"different roots", []core.NamedTree{
			{Name: "a", Root: parse(`<r>x</r>`)},
			{Name: "b", Root: parse(`<q>x</q>`)},
		}},
		{"misaligned", []core.NamedTree{
			{Name: "a", Root: parse(`<r>xy</r>`)},
			{Name: "b", Root: parse(`<r>xz</r>`)},
		}},
		{"shared vocabulary", []core.NamedTree{
			{Name: "a", Root: parse(`<r><x>q</x></r>`)},
			{Name: "b", Root: parse(`<r><x>q</x></r>`)},
		}},
		{"duplicate hierarchy names", []core.NamedTree{
			{Name: "a", Root: parse(`<r><x>q</x></r>`)},
			{Name: "a", Root: parse(`<r><y>q</y></r>`)},
		}},
	}
	for _, tc := range cases {
		if _, err := core.Build(tc.trees); err == nil {
			t.Errorf("%s: Build should fail", tc.name)
		}
	}
}

func TestLeafRangeAndLeavesOf(t *testing.T) {
	d := corpus.MustBoethius()
	h := d.HierarchyByName("structure")
	if h == nil {
		t.Fatal("missing structure hierarchy")
	}
	var w2 *dom.Node
	for _, n := range h.Nodes {
		if n.Kind == dom.Element && n.Name == "w" && n.TextContent() == "unawendendne" {
			w2 = n
		}
	}
	if w2 == nil {
		t.Fatal("w2 not found")
	}
	lo, hi := d.LeafRange(w2)
	if lo != 2 || hi != 5 {
		t.Errorf("leaves(w2) = [%d,%d), want [2,5)", lo, hi)
	}
	var texts []string
	for _, l := range d.LeavesOf(w2) {
		texts = append(texts, l.Data)
	}
	if !reflect.DeepEqual(texts, []string{"una", "w", "endendne"}) {
		t.Errorf("leaves of w2 = %v", texts)
	}
	// Root covers everything.
	lo, hi = d.LeafRange(d.Root)
	if lo != 0 || hi != len(d.Leaves) {
		t.Errorf("leaves(root) = [%d,%d)", lo, hi)
	}
}

func TestRootChildrenAndOwns(t *testing.T) {
	d := corpus.MustBoethius()
	rc := d.RootChildren()
	// physical: 2 lines; structure: 3 vlines; restoration: 3 res + 2
	// interleaved texts; damage: 2 dmg + 2 texts = 14 top-level nodes.
	if len(rc) != 14 {
		t.Errorf("root children = %d, want 14", len(rc))
	}
	for _, c := range rc {
		if c.Parent != d.Root {
			t.Errorf("top node %s has wrong parent", c.Name)
		}
		if !d.Owns(c) {
			t.Errorf("Owns(%s) = false", c.Name)
		}
	}
	if !d.Owns(d.Root) {
		t.Error("Owns(root) = false")
	}
	if !d.Owns(d.Leaves[0]) {
		t.Error("Owns(leaf) = false")
	}
	if d.Owns(dom.NewElement("alien")) {
		t.Error("Owns(alien) = true")
	}
}

func TestNodeOrderDefinition3(t *testing.T) {
	d := corpus.MustBoethius()
	// Root first.
	for _, h := range d.Hiers {
		for _, n := range h.Nodes {
			if dom.Compare(d.Root, n) >= 0 {
				t.Fatalf("root not first vs %s", n.Name)
			}
		}
	}
	// Within a hierarchy: preorder.
	h := d.HierarchyByName("structure")
	for i := 1; i < len(h.Nodes); i++ {
		if dom.Compare(h.Nodes[i-1], h.Nodes[i]) >= 0 {
			t.Fatalf("hierarchy order violated at %d", i)
		}
	}
	// Across hierarchies: registration order.
	phys := d.HierarchyByName("physical").Nodes
	if dom.Compare(phys[len(phys)-1], h.Nodes[0]) >= 0 {
		t.Error("physical nodes must precede structure nodes")
	}
	// Leaves last.
	if dom.Compare(h.Nodes[0], d.Leaves[0]) >= 0 {
		t.Error("hierarchy nodes must precede leaves")
	}
}

func TestAddHierarchyOverlay(t *testing.T) {
	d := corpus.MustBoethius()
	baseLeaves := len(d.Leaves)
	baseHiers := len(d.Hiers)

	// A temp hierarchy covering "unawe" = bytes [11,16).
	res := dom.NewElement("tmpres")
	res.Start, res.End = 11, 16
	txt := dom.NewText("unawe")
	txt.Start, txt.End = 11, 16
	res.AppendChild(txt)

	od, err := d.AddHierarchy("rest", res, true)
	if err != nil {
		t.Fatal(err)
	}
	// The base document is untouched.
	if len(d.Leaves) != baseLeaves || len(d.Hiers) != baseHiers {
		t.Fatal("base document mutated by overlay")
	}
	if d.HierarchyByName("rest") != nil {
		t.Fatal("base document sees overlay hierarchy")
	}
	// The overlay has one more hierarchy, a new boundary at 16, leaves
	// re-partitioned.
	if od.HierarchyByName("rest") == nil || !od.HierarchyByName("rest").Temp {
		t.Fatal("overlay missing temp hierarchy")
	}
	if len(od.Leaves) != baseLeaves+1 {
		t.Errorf("overlay leaves = %d, want %d", len(od.Leaves), baseLeaves+1)
	}
	var texts []string
	for _, l := range od.LeavesOf(res) {
		texts = append(texts, l.Data)
	}
	if !reflect.DeepEqual(texts, []string{"una", "w", "e"}) {
		t.Errorf("overlay leaves of temp root = %v", texts)
	}
	// Shared root: same pointer, children include the temp root only in
	// the overlay.
	if od.Root != d.Root {
		t.Error("overlay should share the root node")
	}
	if len(od.RootChildren()) != len(d.RootChildren())+1 {
		t.Error("overlay root children should include temp hierarchy top")
	}
	// Base document is still valid: its LeavesOf still works.
	if got := strings.Join(leafTexts(d.LeavesOf(d.Root)), ""); got != d.Text {
		t.Error("base leaves broken after overlay")
	}
}

func leafTexts(ls []*dom.Node) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.Data
	}
	return out
}

func TestAddHierarchyErrors(t *testing.T) {
	d := corpus.MustBoethius()
	ok := dom.NewElement("x")
	ok.Start, ok.End = 0, 5
	if _, err := d.AddHierarchy("", ok, true); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := d.AddHierarchy("physical", ok, true); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := d.AddHierarchy("t", nil, true); err == nil {
		t.Error("nil top accepted")
	}
	bad := dom.NewElement("x")
	bad.Start, bad.End = 5, 99999
	if _, err := d.AddHierarchy("t", bad, true); err == nil {
		t.Error("out-of-range span accepted")
	}
}

func TestSerializeHierarchyRoundTrip(t *testing.T) {
	d := corpus.MustBoethius()
	for name, want := range corpus.BoethiusXML() {
		got, err := d.Serialize(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("serialize(%s) = %s, want %s", name, got, want)
		}
	}
	if _, err := d.Serialize("nope"); err == nil {
		t.Error("unknown hierarchy serialized")
	}
}

func TestDOTAndLeafTable(t *testing.T) {
	d := corpus.MustBoethius()
	dot := d.DOT()
	for _, want := range []string{"digraph kygoddag", "cluster_0", "physical", "dmg", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	table := d.LeafTable()
	for _, want := range []string{"gesceaftum", "leaf", "damage", "dmg1"} {
		if !strings.Contains(table, want) {
			t.Errorf("LeafTable missing %q", want)
		}
	}
	labels := d.NodeLabels()
	if labels[d.Root] != "r" {
		t.Errorf("root label = %q", labels[d.Root])
	}
	src := d.BoundarySources()
	if len(src[0]) == 0 {
		t.Error("boundary 0 has no sources")
	}
}

func TestSortDoc(t *testing.T) {
	d := corpus.MustBoethius()
	h := d.HierarchyByName("structure")
	nodes := []*dom.Node{h.Nodes[3], d.Leaves[0], h.Nodes[0], d.Root, h.Nodes[0]}
	sorted := core.SortDoc(nodes)
	if len(sorted) != 4 {
		t.Fatalf("dedupe failed: %d nodes", len(sorted))
	}
	if sorted[0] != d.Root || sorted[len(sorted)-1] != d.Leaves[0] {
		t.Error("SortDoc order wrong")
	}
	for i := 1; i < len(sorted); i++ {
		if dom.Compare(sorted[i-1], sorted[i]) >= 0 {
			t.Error("SortDoc not sorted")
		}
	}
}
