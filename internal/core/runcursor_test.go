package core

import (
	"testing"

	"mhxquery/internal/dom"
)

// TestRunCursorMatchesAppend checks that lazy iteration over the name
// runs yields exactly the nodes (and order) of materialized run
// appends, and that Len/At agree with the stream.
func TestRunCursorMatchesAppend(t *testing.T) {
	d := nameIndexDoc(t)
	for _, name := range []string{"pg", "w"} {
		sym := d.NameSymOf(name)
		if sym == 0 {
			t.Fatalf("name %q not interned", name)
		}
		var rc RunCursor
		var want []*dom.Node
		for _, h := range d.Hiers {
			run := h.NameRun(sym)
			rc.Add(h, run)
			for _, ord := range run {
				want = append(want, h.Nodes[ord])
			}
		}
		if rc.Len() != len(want) {
			t.Fatalf("%s: Len = %d, want %d", name, rc.Len(), len(want))
		}
		for i, w := range want {
			if got := rc.At(i); got != w {
				t.Fatalf("%s: At(%d) = %v, want %v", name, i, got, w)
			}
		}
		var got []*dom.Node
		for {
			n, ok := rc.Next()
			if !ok {
				break
			}
			got = append(got, n)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d nodes, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: node %d differs", name, i)
			}
		}
		// Streamed output must be ascending document order.
		for i := 1; i < len(got); i++ {
			if dom.Compare(got[i-1], got[i]) >= 0 {
				t.Fatalf("%s: not ascending at %d", name, i)
			}
		}
	}
}

// TestRunCursorSubtreeRestriction checks lazy iteration over
// subtree-restricted runs (the index-scan segment shape).
func TestRunCursorSubtreeRestriction(t *testing.T) {
	d := nameIndexDoc(t)
	sym := d.NameSymOf("w")
	var h *Hierarchy
	for _, cand := range d.Hiers {
		if cand.Name == "str" {
			h = cand
		}
	}
	if h == nil {
		t.Fatal("no str hierarchy")
	}
	run := h.NameRun(sym)
	if len(run) != 3 {
		t.Fatalf("w run = %d entries, want 3", len(run))
	}
	// Restrict to the subtree of the second w: exactly itself.
	w2 := h.Nodes[run[1]]
	var rc RunCursor
	rc.Add(h, SubRun(run, w2.Ord-1, w2.Last))
	if rc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", rc.Len())
	}
	n, ok := rc.Next()
	if !ok || n != w2 {
		t.Fatalf("restricted run yielded %v", n)
	}
}

// TestRunCursorSplit checks the morsel splitter: concatenating the
// morsels' streams must reproduce the unsplit stream exactly, every
// morsel but the last must hold exactly size candidates, and the
// morsels must alias (not copy) the underlying runs.
func TestRunCursorSplit(t *testing.T) {
	d := nameIndexDoc(t)
	for _, name := range []string{"pg", "w"} {
		sym := d.NameSymOf(name)
		var rc RunCursor
		var want []*dom.Node
		for _, h := range d.Hiers {
			run := h.NameRun(sym)
			rc.Add(h, run)
			for _, ord := range run {
				want = append(want, h.Nodes[ord])
			}
		}
		for _, size := range []int{1, 2, 3, 100} {
			morsels := rc.Split(size)
			var got []*dom.Node
			for mi := range morsels {
				m := &morsels[mi]
				if mi < len(morsels)-1 && m.Len() != size {
					t.Fatalf("%s size=%d: morsel %d has %d candidates", name, size, mi, m.Len())
				}
				if m.Len() > size {
					t.Fatalf("%s size=%d: morsel %d exceeds size (%d)", name, size, mi, m.Len())
				}
				for {
					n, ok := m.Next()
					if !ok {
						break
					}
					got = append(got, n)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s size=%d: split streamed %d nodes, want %d", name, size, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s size=%d: node %d differs from unsplit stream", name, size, i)
				}
			}
		}
		if rc.Split(0) != nil && rc.Split(0)[0].Len() != rc.Len() {
			t.Fatalf("%s: size<1 must yield one full morsel", name)
		}
	}
	var empty RunCursor
	if got := empty.Split(4); got != nil {
		t.Fatalf("empty cursor split = %v, want nil", got)
	}
}

// TestRunCursorEmpty checks the zero value and empty-run handling.
func TestRunCursorEmpty(t *testing.T) {
	var rc RunCursor
	if rc.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	if _, ok := rc.Next(); ok {
		t.Fatal("zero value yielded a node")
	}
	rc.Add(&Hierarchy{}, nil) // empty runs are dropped
	if rc.Len() != 0 {
		t.Fatal("empty run counted")
	}
}
