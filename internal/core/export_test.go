package core

// RecomputePartitionForTest re-runs the full partition derivation on the
// document, overwriting whatever the incremental overlay path computed —
// the equivalence oracle for TestQuickOverlayPartitionIncremental.
func (d *Document) RecomputePartitionForTest() { d.partition() }
