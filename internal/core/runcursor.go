package core

import "mhxquery/internal/dom"

// RunCursor iterates a set of per-hierarchy ordinal runs (nameindex.go)
// in document order, lazily: no node slice is materialized, which is
// what lets the query engine's index-scan cursors answer early-exit
// queries like (//w)[1] in O(answer). Runs must be added in hierarchy
// registration order with ascending ordinals (NameRun/SubRun output),
// which per Definition 3 is document order across the concatenation.
//
// The zero value is an empty cursor. RunCursor is not safe for
// concurrent use; each evaluation owns its own.
type RunCursor struct {
	hiers []*Hierarchy
	runs  [][]int32
	total int
	hi, i int
}

// Add appends one hierarchy's ordinal run.
func (rc *RunCursor) Add(h *Hierarchy, run []int32) {
	if len(run) == 0 {
		return
	}
	rc.hiers = append(rc.hiers, h)
	rc.runs = append(rc.runs, run)
	rc.total += len(run)
}

// Len returns the total number of candidates across all runs,
// regardless of how many have been consumed.
func (rc *RunCursor) Len() int { return rc.total }

// At returns the k-th (0-based) candidate across the concatenated runs
// without advancing the cursor; it panics when k is out of range (the
// caller bounds k by Len). This is the O(1) positional shortcut behind
// run-level [k] and [last()] predicates.
func (rc *RunCursor) At(k int) *dom.Node {
	for i, run := range rc.runs {
		if k < len(run) {
			return rc.hiers[i].Nodes[run[k]]
		}
		k -= len(run)
	}
	panic("core: RunCursor.At out of range")
}

// Split partitions the cursor's candidates into contiguous morsels of
// at most size candidates each, in document order: concatenating the
// morsels' outputs reproduces exactly the cursor's own output. Morsel
// boundaries are O(1) sub-slices of the per-hierarchy runs (the runs
// are already materialized ordinal slices; a morsel aliases them, so
// no ordinals are copied). The receiver must be unconsumed; it remains
// usable afterwards. size < 1 or size >= Len yields one morsel.
func (rc *RunCursor) Split(size int) []RunCursor {
	if size < 1 || size >= rc.total {
		if rc.total == 0 {
			return nil
		}
		return []RunCursor{{hiers: rc.hiers, runs: rc.runs, total: rc.total}}
	}
	morsels := make([]RunCursor, 0, (rc.total+size-1)/size)
	cur := RunCursor{}
	room := size
	for ri, run := range rc.runs {
		for len(run) > 0 {
			take := len(run)
			if take > room {
				take = room
			}
			cur.hiers = append(cur.hiers, rc.hiers[ri])
			cur.runs = append(cur.runs, run[:take])
			cur.total += take
			run = run[take:]
			room -= take
			if room == 0 {
				morsels = append(morsels, cur)
				cur = RunCursor{}
				room = size
			}
		}
	}
	if cur.total > 0 {
		morsels = append(morsels, cur)
	}
	return morsels
}

// Next returns the next candidate in document order, or ok=false when
// the runs are exhausted.
func (rc *RunCursor) Next() (*dom.Node, bool) {
	for rc.hi < len(rc.runs) {
		run := rc.runs[rc.hi]
		if rc.i < len(run) {
			n := rc.hiers[rc.hi].Nodes[run[rc.i]]
			rc.i++
			return n, true
		}
		rc.hi++
		rc.i = 0
	}
	return nil, false
}
