package core

import (
	"sync"

	"mhxquery/internal/dom"
	"mhxquery/internal/synopsis"
)

// This file is the core half of the frozen-document protocol: a
// Document whose per-hierarchy dom.Node storage is materialized lazily
// from an external columnar image (internal/slab). The slab package
// supplies per-hierarchy fill callbacks; core owns when they run.
//
// A frozen document is fully usable before any hierarchy is
// materialized: Text, Bounds, Rev, the interned name table, the
// ordinal layout and the persisted name-index runs are all installed
// eagerly by NewFrozenDocument, so plan compilation (Signature,
// NameSymOf) and index-run reads (NameRun length probes) touch no
// node storage. The first operation that needs actual nodes — an axis
// step, the leaf layer, an update, serialization — runs the fill
// callbacks behind sync.Once, exactly the discipline the name index
// already uses, so concurrent readers race-freely share one
// materialization.
//
// Fill callbacks are infallible by contract: the slab image is fully
// validated (checksums and structural invariants) before the first
// callback is constructed, so materialization never needs an error
// path threaded through every axis accessor.

// FrozenHier describes one hierarchy of a frozen document: everything
// the document needs eagerly (name, node count for the ordinal layout,
// persisted index runs) plus the callback that materializes the
// dom.Node preorder storage on first structural access.
type FrozenHier struct {
	Name string
	// NumNodes is len(Nodes) after materialization; the ordinal layout
	// is computed from it without materializing.
	NumNodes int
	// Runs is the persisted structural name index (symbol → ascending
	// preorder ordinals). It is installed into the hierarchy's index
	// slot eagerly, so opening + querying performs zero index builds.
	Runs map[int32][]int32
	// Synopsis is the persisted path synopsis, installed eagerly when
	// non-nil so plan-time cardinality estimation works without
	// materializing node storage. Images from before the synopsis
	// section leave it nil (the synopsis stays lazily buildable).
	Synopsis *synopsis.Tree
	// Fill populates h.Top and h.Nodes (exactly NumNodes entries, in
	// preorder, with Ord/Last/Hier/HierIndex/NameSym assigned) and
	// parents top-level nodes at root. It must not fail: callers
	// validate their image before constructing the callback.
	Fill func(root *dom.Node, h *Hierarchy)
}

// FrozenDoc carries the eager layers of a frozen document.
type FrozenDoc struct {
	Text   string
	Bounds []int
	Rev    uint64
	// Names is the interned name table in symbol order: Names[i] is the
	// name with symbol i+1 (Document.NameTable of the encoded document).
	Names     []string
	RootName  string
	RootAttrs [][2]string
	Hiers     []FrozenHier
}

// NewFrozenDocument assembles a Document over the frozen layers. The
// returned document is immediately queryable; hierarchy node storage
// and the leaf layer materialize on first structural access.
func NewFrozenDocument(f FrozenDoc) *Document {
	d := &Document{
		Text:       f.Text,
		Bounds:     f.Bounds,
		Rev:        f.Rev,
		byName:     make(map[string]*Hierarchy, len(f.Hiers)),
		names:      make(map[string]int32, len(f.Names)),
		layoutOnce: new(sync.Once),
	}
	for i, s := range f.Names {
		d.names[s] = int32(i) + 1
	}
	root := dom.NewElement(f.RootName)
	root.HierIndex = dom.RootHier
	root.Start, root.End = 0, len(f.Text)
	root.NameSym = d.names[f.RootName]
	for _, a := range f.RootAttrs {
		root.SetAttr(a[0], a[1])
	}
	for _, a := range root.Attrs {
		a.NameSym = d.names[a.Name]
	}
	d.Root = root

	d.ordBase = make([]int, len(f.Hiers))
	ord := 1 // 0 is the shared root
	for i, fh := range f.Hiers {
		h := &Hierarchy{
			Name:     fh.Name,
			Index:    i,
			fill:     fh.Fill,
			fillOnce: new(sync.Once),
			fillRoot: root,
		}
		h.idx.install(fh.Runs)
		if fh.Synopsis != nil {
			h.syn.install(fh.Synopsis)
		}
		d.ordBase[i] = ord
		ord += fh.NumNodes
		d.Hiers = append(d.Hiers, h)
		d.byName[h.Name] = h
	}
	d.leafBase = ord
	return d
}

// ensure materializes the hierarchy's node storage. The nil check is
// the whole cost for eagerly built hierarchies.
func (h *Hierarchy) ensure() {
	if h.fill == nil {
		return
	}
	h.fillOnce.Do(func() {
		h.fill(h.fillRoot, h)
		h.sortByEnd()
	})
}

// sortByEnd (re)derives the xpreceding index from h.Nodes.
func (h *Hierarchy) sortByEnd() {
	h.byEnd = append([]*dom.Node(nil), h.Nodes...)
	stableSortByEnd(h.byEnd)
}

// ensureLayout materializes every hierarchy plus the leaf layer. It is
// the document-level choke point: axis evaluation, updates and exports
// call it on entry. Eagerly built documents pay one nil check.
func (d *Document) ensureLayout() {
	if d.layoutOnce == nil {
		return
	}
	d.layoutOnce.Do(func() {
		for _, h := range d.Hiers {
			h.ensure()
		}
		// buildLeaves recomputes finishLayout from the now-materialized
		// node slices; the counts match the declared NumNodes, so the
		// eager ordinal layout is unchanged.
		d.buildLeaves()
	})
}

// Materialize forces full construction of the document's node storage
// and leaf layer — the state an eagerly built document starts in. It
// is safe (and cheap) on already-materialized documents and safe for
// concurrent use.
func (d *Document) Materialize() {
	d.ensureLayout()
}

// NameTable returns the interned name table in symbol order:
// out[i] is the name with symbol i+1 (the inverse of NameSymOf). The
// slab encoder persists it so a reopened document keeps identical
// symbols.
func (d *Document) NameTable() []string {
	out := make([]string, len(d.names))
	for s, sym := range d.names {
		out[sym-1] = s
	}
	return out
}
