package core_test

// The synopsis half of the differential mutation sweep: seeded random
// edit sequences over random documents; after each successful batch,
// every hierarchy whose path synopsis was carried incrementally
// (patched or shared) must agree field-for-field with a from-scratch
// rebuild, and the previous version's synopsis must be untouched
// (snapshot isolation).

import (
	"fmt"
	"math/rand"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// checkSynopses compares each hierarchy's installed synopsis against
// the rebuild oracle. Hierarchies still on the lazy path (nil
// snapshot) are skipped — there is nothing maintained to verify.
func checkSynopses(t *testing.T, d *core.Document, label string) (installed int) {
	t.Helper()
	names := d.NameTable()
	nameOf := func(sym int32) string {
		if sym >= 1 && int(sym) <= len(names) {
			return names[sym-1]
		}
		return fmt.Sprintf("?%d", sym)
	}
	for _, h := range d.Hiers {
		got := h.SynopsisSnapshot()
		if got == nil {
			continue
		}
		installed++
		want := h.RebuildSynopsis()
		if !got.Equal(want) {
			t.Fatalf("%s: hierarchy %q: maintained synopsis diverges from rebuild\nmaintained:\n%swant:\n%s",
				label, h.Name, got.Dump(nameOf), want.Dump(nameOf))
		}
	}
	return installed
}

func TestSynopsisMaintenanceSweep(t *testing.T) {
	const sequences = 120
	applied, patched, lazy := 0, 0, 0
	for seq := 0; seq < sequences; seq++ {
		r := rand.New(rand.NewSource(int64(77000 + seq)))
		d, err := buildRandom(int64(600 + seq%17))
		if err != nil {
			t.Fatal(err)
		}
		// Warm indexes AND synopses so the incremental paths are
		// exercised (an unbuilt synopsis has nothing to maintain).
		for _, h := range d.Hiers {
			h.IndexRuns()
			h.Synopsis()
		}
		nEdits := 1 + r.Intn(4)
		var edits []core.Edit
		for k := 0; k < nEdits; k++ {
			h := d.Hiers[r.Intn(len(d.Hiers))]
			var elems []*dom.Node
			for _, n := range h.Nodes {
				if n.Kind == dom.Element {
					elems = append(elems, n)
				}
			}
			if len(elems) == 0 {
				continue
			}
			target := elems[r.Intn(len(elems))]
			switch r.Intn(6) {
			case 0:
				edits = append(edits, core.Edit{Kind: core.EditRename, Target: target, Name: fmt.Sprintf("sn%d_%d", seq, k)})
			case 1:
				edits = append(edits, core.Edit{Kind: core.EditDelete, Target: target})
			case 2:
				from := r.Intn(len(target.Children) + 1)
				to := from + r.Intn(len(target.Children)-from+1)
				edits = append(edits, core.Edit{Kind: core.EditWrap, Target: target, Name: fmt.Sprintf("sw%d_%d", seq, k), From: from, To: to})
			case 3:
				kind := core.EditInsertBefore
				if r.Intn(2) == 0 {
					kind = core.EditInsertAfter
				}
				edits = append(edits, core.Edit{Kind: kind, Target: target, Name: fmt.Sprintf("sp%d_%d", seq, k)})
			case 4:
				if target.Start < target.End {
					repl := make([]byte, target.End-target.Start)
					for i := range repl {
						repl[i] = byte('p' + r.Intn(4))
					}
					edits = append(edits, core.Edit{Kind: core.EditReplaceText, Target: target, Text: string(repl)})
				}
			case 5:
				if r.Intn(2) == 0 && len(d.Text) > 2 {
					a := r.Intn(len(d.Text) - 1)
					b := a + 1 + r.Intn(len(d.Text)-a-1)
					edits = append(edits, core.Edit{Kind: core.EditAddHierarchy, Name: fmt.Sprintf("slayer%d_%d", seq, k),
						Tops: []*dom.Node{{Kind: dom.Element, Name: fmt.Sprintf("shx%d_%d", seq, k), Start: a, End: b}}})
				} else {
					edits = append(edits, core.Edit{Kind: core.EditRemoveHierarchy, Name: h.Name})
				}
			}
		}
		if len(edits) == 0 {
			continue
		}
		nd, st, err := d.Apply(edits)
		if err != nil {
			// Conflicting random batches legitimately fail — atomically.
			continue
		}
		applied++
		patched += st.SynopsesPatched
		lazy += st.SynopsesLazy
		// Accounting: every non-shared hierarchy of the new version was
		// either patched or deferred, never silently dropped.
		if st.SynopsesPatched+st.SynopsesLazy != st.HierarchiesCopied+st.HierarchiesAdded {
			t.Fatalf("seq %d: synopsis accounting %d patched + %d lazy != %d copied + %d added",
				seq, st.SynopsesPatched, st.SynopsesLazy, st.HierarchiesCopied, st.HierarchiesAdded)
		}
		checkSynopses(t, nd, fmt.Sprintf("seq %d (new version)", seq))
		// Snapshot isolation: the base version's synopses are untouched
		// and still agree with their own rebuild.
		checkSynopses(t, d, fmt.Sprintf("seq %d (base version)", seq))
	}
	if applied < sequences/2 {
		t.Fatalf("only %d/%d random batches applied; generator too conflict-happy", applied, sequences)
	}
	if patched == 0 {
		t.Fatal("no batch exercised the incremental synopsis patch path")
	}
	t.Logf("applied=%d synopses patched=%d lazy=%d", applied, patched, lazy)
}

// TestSynopsisSharedHierarchyUntouched pins the sharing path: a batch
// touching only hierarchy A shares B wholesale, including its synopsis.
func TestSynopsisSharedHierarchyUntouched(t *testing.T) {
	d := buildUpdateDoc(t)
	for _, h := range d.Hiers {
		h.Synopsis()
	}
	seg := pickElem(d, "A", "seg", 1)
	nd, st, err := d.Apply([]core.Edit{{Kind: core.EditRename, Target: seg, Name: "chunk"}})
	if err != nil {
		t.Fatal(err)
	}
	if st.SynopsesPatched != 1 || st.SynopsesLazy != 0 {
		t.Fatalf("stats = %+v", st)
	}
	var a, b *core.Hierarchy
	for _, h := range nd.Hiers {
		switch h.Name {
		case "A":
			a = h
		case "B":
			b = h
		}
	}
	if b.SynopsisSnapshot() == nil {
		t.Fatal("shared hierarchy lost its synopsis")
	}
	if a.SynopsisSnapshot() == nil {
		t.Fatal("edited hierarchy was not patched")
	}
	checkSynopses(t, nd, "after rename")
}
