package core_test

import (
	"reflect"
	"sort"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
)

// findElem returns the i-th (0-based) element named name, in document order.
func findElem(d *core.Document, name string, i int) *dom.Node {
	for _, h := range d.Hiers {
		for _, n := range h.Nodes {
			if n.Kind == dom.Element && n.Name == name {
				if i == 0 {
					return n
				}
				i--
			}
		}
	}
	return nil
}

// names extracts element names (and "#text"/"#leaf:…") for assertions.
func names(nodes []*dom.Node) []string {
	var out []string
	for _, n := range nodes {
		switch n.Kind {
		case dom.Element:
			out = append(out, n.Name)
		case dom.Text:
			out = append(out, "#text")
		case dom.Leaf:
			out = append(out, "leaf:"+n.Data)
		default:
			out = append(out, n.Kind.String())
		}
	}
	return out
}

// elemNames filters to element names only.
func elemNames(nodes []*dom.Node) []string {
	var out []string
	for _, n := range nodes {
		if n.Kind == dom.Element {
			out = append(out, n.Name+":"+n.TextContent())
		}
	}
	return out
}

func TestAxisByNameRoundTrip(t *testing.T) {
	for _, name := range []string{
		"child", "descendant", "descendant-or-self", "parent", "ancestor",
		"ancestor-or-self", "following", "preceding", "following-sibling",
		"preceding-sibling", "self", "attribute", "xdescendant", "xancestor",
		"xfollowing", "xpreceding", "preceding-overlapping",
		"following-overlapping", "overlapping",
	} {
		ax, ok := core.AxisByName(name)
		if !ok {
			t.Fatalf("axis %q unknown", name)
		}
		if ax.String() != name {
			t.Errorf("axis %q round-trips to %q", name, ax.String())
		}
	}
	if _, ok := core.AxisByName("bogus"); ok {
		t.Error("bogus axis resolved")
	}
	if !core.AxisXAncestor.Extended() || core.AxisChild.Extended() {
		t.Error("Extended() misclassifies")
	}
	if !core.AxisAncestor.Reverse() || core.AxisChild.Reverse() {
		t.Error("Reverse() misclassifies")
	}
}

// TestXDescendantOfLines reproduces the containment facts behind Query I.1:
// which words are xdescendants of each physical line.
func TestXDescendantOfLines(t *testing.T) {
	d := corpus.MustBoethius()
	line1 := findElem(d, "line", 0)
	line2 := findElem(d, "line", 1)

	var w1 []string
	for _, m := range d.Eval(core.AxisXDescendant, line1) {
		if m.Kind == dom.Element && m.Name == "w" {
			w1 = append(w1, m.TextContent())
		}
	}
	if !reflect.DeepEqual(w1, []string{"gesceaftum", "unawendendne"}) {
		t.Errorf("xdescendant::w of line1 = %v", w1)
	}
	var w2 []string
	for _, m := range d.Eval(core.AxisXDescendant, line2) {
		if m.Kind == dom.Element && m.Name == "w" {
			w2 = append(w2, m.TextContent())
		}
	}
	if !reflect.DeepEqual(w2, []string{"sibbe", "gecynde", "þa"}) {
		t.Errorf("xdescendant::w of line2 = %v", w2)
	}
}

// TestOverlappingSplitWord checks the paper's motivating case: the word
// "singallice" is split across both lines, so it overlaps each of them.
func TestOverlappingSplitWord(t *testing.T) {
	d := corpus.MustBoethius()
	line1 := findElem(d, "line", 0)
	line2 := findElem(d, "line", 1)
	w3 := findElem(d, "w", 2)
	if w3.TextContent() != "singallice" {
		t.Fatalf("w3 = %q", w3.TextContent())
	}
	// From line1, singallice is following-overlapping (starts inside,
	// ends beyond); the second verse line overlaps the same way. From
	// line2 both are preceding-overlapping (reverse axis ⇒ nearest
	// first).
	if got := elemNames(d.Eval(core.AxisFollowingOverlapping, line1)); !reflect.DeepEqual(got,
		[]string{"vline:singallice sibbe gecynde ", "w:singallice"}) {
		t.Errorf("following-overlapping(line1) = %v", got)
	}
	if got := elemNames(d.Eval(core.AxisPrecedingOverlapping, line2)); !reflect.DeepEqual(got,
		[]string{"w:singallice", "vline:singallice sibbe gecynde "}) {
		t.Errorf("preceding-overlapping(line2) = %v", got)
	}
	// Symmetrically, from the word both lines overlap it.
	got := elemNames(d.Eval(core.AxisOverlapping, w3))
	wantBoth := []string{"line:gesceaftum unawendendne sin", "line:gallice sibbe gecynde þa"}
	// overlapping also catches vline1 and vline2 (word split across
	// verses too? no — singallice is inside vline2); filter to lines:
	var lines []string
	for _, g := range got {
		if len(g) > 5 && g[:5] == "line:" {
			lines = append(lines, g)
		}
	}
	if !reflect.DeepEqual(lines, wantBoth) {
		t.Errorf("overlapping(w3) lines = %v, want %v", lines, wantBoth)
	}
}

// TestXAncestorOfLeaf checks multihierarchical ancestry from the leaf layer.
func TestXAncestorOfLeaf(t *testing.T) {
	d := corpus.MustBoethius()
	leaf := d.Leaves[3] // "w", the damaged letter
	var got []string
	for _, m := range d.Eval(core.AxisXAncestor, leaf) {
		if m.Kind == dom.Element {
			got = append(got, m.Name)
		}
	}
	sort.Strings(got)
	want := []string{"dmg", "line", "r", "vline", "w"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("xancestor elements of leaf 'w' = %v, want %v", got, want)
	}
}

// TestXFollowingXPreceding checks the strict ordering axes.
func TestXFollowingXPreceding(t *testing.T) {
	d := corpus.MustBoethius()
	w1 := findElem(d, "w", 0) // gesceaftum [0,10)
	var fol []string
	for _, m := range d.Eval(core.AxisXFollowing, w1) {
		if m.Kind == dom.Element && m.Name == "dmg" {
			fol = append(fol, m.TextContent())
		}
	}
	if !reflect.DeepEqual(fol, []string{"w", "de þa"}) {
		t.Errorf("xfollowing::dmg of w1 = %v", fol)
	}
	last := findElem(d, "w", 5) // þa [49,52)
	var pre []string
	for _, m := range d.Eval(core.AxisXPreceding, last) {
		if m.Kind == dom.Element && m.Name == "res" {
			pre = append(pre, m.TextContent())
		}
	}
	// res3 = "gallice sibbe gecyn" ends at 46 < 49; res1, res2 earlier.
	// Reverse axis ⇒ nearest first.
	if !reflect.DeepEqual(pre, []string{"gallice sibbe gecyn", "in", "gesceaftum una"}) {
		t.Errorf("xpreceding::res of þa = %v", pre)
	}
	// An element is never in its own xfollowing/xpreceding.
	for _, m := range d.Eval(core.AxisXFollowing, w1) {
		if m == w1 {
			t.Error("w1 in its own xfollowing")
		}
	}
}

// TestXAncestorExcludesOwnChain checks the descendant-exclusion in
// Definition 1: same-span descendants are not xancestors.
func TestXAncestorSameSpan(t *testing.T) {
	// <w><dmg>xy</dmg></w> in different hierarchies would be equal spans;
	// here test within one document: a vline and its single w in the
	// fixture have different spans, so build a custom doc.
	d := mustParseDoc(t,
		core.NamedTree{Name: "a", Root: mustParse(t, `<r><outer><inner>xy</inner></outer></r>`)},
		core.NamedTree{Name: "b", Root: mustParse(t, `<r><whole>xy</whole></r>`)},
	)
	outer := findElem(d, "outer", 0)
	inner := findElem(d, "inner", 0)
	whole := findElem(d, "whole", 0)
	// inner's xancestor: outer (same hierarchy ancestor), whole (other
	// hierarchy), root — but NOT itself, and outer's xancestor must not
	// include inner (inner is its descendant despite equal leaf sets).
	xa := d.Eval(core.AxisXAncestor, outer)
	for _, m := range xa {
		if m == inner {
			t.Error("descendant with equal span counted as xancestor")
		}
	}
	found := false
	for _, m := range xa {
		if m == whole {
			found = true
		}
	}
	if !found {
		t.Error("other-hierarchy element with equal span missing from xancestor")
	}
	// And inner ∈ xdescendant(whole), outer ∈ xdescendant(whole) — equal
	// spans, different hierarchy.
	xd := elemNamesSet(d.Eval(core.AxisXDescendant, whole))
	if !xd["outer"] || !xd["inner"] {
		t.Errorf("xdescendant(whole) = %v", xd)
	}
}

func elemNamesSet(nodes []*dom.Node) map[string]bool {
	out := map[string]bool{}
	for _, n := range nodes {
		if n.Kind == dom.Element {
			out[n.Name] = true
		}
	}
	return out
}

// TestStandardAxesWithinHierarchy checks the paper's rule that standard
// axes stay within one hierarchy component except at the root.
func TestStandardAxesWithinHierarchy(t *testing.T) {
	d := corpus.MustBoethius()
	w1 := findElem(d, "w", 0)
	for _, ax := range []core.Axis{core.AxisFollowing, core.AxisPreceding, core.AxisAncestor, core.AxisDescendant} {
		for _, m := range d.Eval(ax, w1) {
			if m.Kind == dom.Element && m.Hier != "structure" && m != d.Root {
				t.Errorf("%s from w1 leaked into hierarchy %q (%s)", ax, m.Hier, m.Name)
			}
		}
	}
	// From the root, child returns all components.
	hiers := map[string]bool{}
	for _, m := range d.Eval(core.AxisChild, d.Root) {
		hiers[m.Hier] = true
	}
	if len(hiers) != 4 {
		t.Errorf("root children cover %d hierarchies, want 4", len(hiers))
	}
}

func TestLeafAxes(t *testing.T) {
	d := corpus.MustBoethius()
	leaf := d.Leaves[3]
	// parent of a leaf: one text node per covering hierarchy.
	parents := d.Eval(core.AxisParent, leaf)
	if len(parents) != 4 {
		t.Errorf("leaf parents = %d, want 4", len(parents))
	}
	// ancestor of a leaf crosses hierarchies and ends at the root.
	anc := d.Eval(core.AxisAncestor, leaf)
	foundRoot := false
	for _, a := range anc {
		if a == d.Root {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Error("leaf ancestors missing root")
	}
	// child/descendant of a leaf: empty.
	if len(d.Eval(core.AxisChild, leaf)) != 0 || len(d.Eval(core.AxisDescendant, leaf)) != 0 {
		t.Error("leaf should have no children")
	}
	// siblings: other leaves.
	fs := d.Eval(core.AxisFollowingSibling, leaf)
	if len(fs) != len(d.Leaves)-4 {
		t.Errorf("leaf following siblings = %d, want %d", len(fs), len(d.Leaves)-4)
	}
	ps := d.Eval(core.AxisPrecedingSibling, leaf)
	if len(ps) != 3 || ps[0].Data != "una" {
		t.Errorf("leaf preceding siblings = %v", names(ps))
	}
}

func TestTextChildrenAreLeaves(t *testing.T) {
	d := corpus.MustBoethius()
	h := d.HierarchyByName("damage")
	var firstText *dom.Node
	for _, n := range h.Nodes {
		if n.Kind == dom.Text {
			firstText = n
			break
		}
	}
	// First damage text: "gesceaftum una" → leaves gesceaftum, " ", una.
	kids := d.Eval(core.AxisChild, firstText)
	if got := names(kids); !reflect.DeepEqual(got, []string{"leaf:gesceaftum", "leaf: ", "leaf:una"}) {
		t.Errorf("text children = %v", got)
	}
}

func TestSelfAndAttributeAxes(t *testing.T) {
	d := mustParseDoc(t,
		core.NamedTree{Name: "a", Root: mustParse(t, `<r><x k="v" j="u">t</x></r>`)},
	)
	x := findElem(d, "x", 0)
	if got := d.Eval(core.AxisSelf, x); len(got) != 1 || got[0] != x {
		t.Error("self axis")
	}
	attrs := d.Eval(core.AxisAttribute, x)
	if len(attrs) != 2 || attrs[0].Name != "k" || attrs[1].Name != "j" {
		t.Errorf("attribute axis = %v", names(attrs))
	}
	// Extended axes from an attribute: empty.
	if len(d.Eval(core.AxisXAncestor, attrs[0])) != 0 {
		t.Error("xancestor of attribute should be empty")
	}
}

func TestSiblingAxesAtRootLevel(t *testing.T) {
	d := corpus.MustBoethius()
	line1 := findElem(d, "line", 0)
	fs := d.Eval(core.AxisFollowingSibling, line1)
	// Only the second line: siblings stay in the same hierarchy even
	// though the shared root has children from all hierarchies.
	if got := elemNames(fs); !reflect.DeepEqual(got, []string{"line:gallice sibbe gecynde þa"}) {
		t.Errorf("following-sibling(line1) = %v", got)
	}
	line2 := findElem(d, "line", 1)
	ps := d.Eval(core.AxisPrecedingSibling, line2)
	if got := elemNames(ps); !reflect.DeepEqual(got, []string{"line:gesceaftum unawendendne sin"}) {
		t.Errorf("preceding-sibling(line2) = %v", got)
	}
}

func TestRootAxes(t *testing.T) {
	d := corpus.MustBoethius()
	if len(d.Eval(core.AxisParent, d.Root)) != 0 {
		t.Error("root parent")
	}
	if len(d.Eval(core.AxisFollowing, d.Root)) != 0 || len(d.Eval(core.AxisPreceding, d.Root)) != 0 {
		t.Error("root following/preceding")
	}
	desc := d.Eval(core.AxisDescendant, d.Root)
	st := d.Stats()
	want := st.Elements + st.Texts + st.Leaves
	if len(desc) != want {
		t.Errorf("root descendants = %d, want %d", len(desc), want)
	}
	// xancestor(root) is empty; xdescendant(root) is everything else.
	if len(d.Eval(core.AxisXAncestor, d.Root)) != 0 {
		t.Error("xancestor(root) should be empty")
	}
	if got := len(d.Eval(core.AxisXDescendant, d.Root)); got != want {
		t.Errorf("xdescendant(root) = %d, want %d", got, want)
	}
}

func mustParse(t *testing.T, s string) *dom.Node {
	t.Helper()
	n, err := parseXML(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mustParseDoc(t *testing.T, trees ...core.NamedTree) *core.Document {
	t.Helper()
	d, err := core.Build(trees)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
