package core

import (
	"fmt"
	"sort"
	"strings"

	"mhxquery/internal/dom"
)

// This file renders KyGODDAGs for inspection, reproducing the paper's
// Figure 2: a DOT graph (clusters per hierarchy, the shared leaf layer,
// text→leaf edges) and a textual leaf table.

// NodeLabels assigns Figure-2 style labels: element nodes are named
// name1, name2, … per element name in document order; text nodes t1, t2,
// … per hierarchy; leaves are numbered boxes.
func (d *Document) NodeLabels() map[*dom.Node]string {
	d.ensureLayout()
	labels := make(map[*dom.Node]string)
	labels[d.Root] = d.Root.Name
	counts := map[string]int{}
	for _, h := range d.Hiers {
		tcount := 0
		for _, n := range h.Nodes {
			switch n.Kind {
			case dom.Element:
				counts[n.Name]++
				labels[n] = fmt.Sprintf("%s%d", n.Name, counts[n.Name])
			case dom.Text:
				tcount++
				labels[n] = fmt.Sprintf("%s.t%d", h.Name, tcount)
			}
		}
	}
	for _, l := range d.Leaves {
		labels[l] = fmt.Sprintf("%d", l.Ord+1)
	}
	return labels
}

// DOT renders the KyGODDAG as a Graphviz digraph.
func (d *Document) DOT() string {
	labels := d.NodeLabels()
	var b strings.Builder
	b.WriteString("digraph kygoddag {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")
	fmt.Fprintf(&b, "  root [label=%q shape=ellipse style=bold];\n", labels[d.Root])
	id := func(n *dom.Node) string {
		if n == d.Root {
			return "root"
		}
		if n.Kind == dom.Leaf {
			return fmt.Sprintf("leaf%d", n.Ord)
		}
		return fmt.Sprintf("h%dn%d", n.HierIndex, n.Ord)
	}
	for _, h := range d.Hiers {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", h.Index, h.Name)
		for _, n := range h.Nodes {
			shape := "ellipse"
			if n.Kind == dom.Text {
				shape = "plaintext"
			}
			fmt.Fprintf(&b, "    %s [label=%q shape=%s];\n", id(n), labels[n], shape)
		}
		b.WriteString("  }\n")
		for _, t := range h.Top {
			fmt.Fprintf(&b, "  root -> %s;\n", id(t))
		}
		for _, n := range h.Nodes {
			for _, c := range n.Children {
				fmt.Fprintf(&b, "  %s -> %s;\n", id(n), id(c))
			}
		}
	}
	b.WriteString("  { rank=same;")
	for _, l := range d.Leaves {
		fmt.Fprintf(&b, " %s;", id(l))
	}
	b.WriteString(" }\n")
	for i, l := range d.Leaves {
		fmt.Fprintf(&b, "  %s [label=%q shape=box];\n", id(l), fmt.Sprintf("%d:%s", l.Ord+1, l.Data))
		for _, p := range d.leafPar[i] {
			fmt.Fprintf(&b, "  %s -> %s [style=dashed];\n", id(p), id(l))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// LeafTable renders the leaf partition as text: one row per leaf with its
// span, content and the innermost covering element per hierarchy.
func (d *Document) LeafTable() string {
	labels := d.NodeLabels()
	var b strings.Builder
	fmt.Fprintf(&b, "leaf  span        text            ")
	for _, h := range d.Hiers {
		fmt.Fprintf(&b, "  %-12s", h.Name)
	}
	b.WriteString("\n")
	for _, l := range d.Leaves {
		fmt.Fprintf(&b, "%4d  [%3d,%3d)  %-16q", l.Ord+1, l.Start, l.End, l.Data)
		for _, h := range d.Hiers {
			inner := "-"
			for _, n := range h.Nodes {
				if n.Kind == dom.Element && n.Start <= l.Start && l.End <= n.End {
					inner = labels[n] // preorder scan: last hit is innermost
				}
			}
			fmt.Fprintf(&b, "  %-12s", inner)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Serialize re-serializes one hierarchy of the document back to XML,
// rebuilding a root element wrapper around the hierarchy's top nodes.
func (d *Document) Serialize(hier string) (string, error) {
	d.ensureLayout()
	h := d.byName[hier]
	if h == nil {
		return "", fmt.Errorf("core: unknown hierarchy %q", hier)
	}
	var b strings.Builder
	b.WriteByte('<')
	b.WriteString(d.Root.Name)
	for _, a := range d.Root.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		b.WriteString(dom.EscapeAttr(a.Data))
		b.WriteByte('"')
	}
	b.WriteByte('>')
	for _, t := range h.Top {
		b.WriteString(dom.XML(t))
	}
	b.WriteString("</")
	b.WriteString(d.Root.Name)
	b.WriteByte('>')
	return b.String(), nil
}

// BoundarySources explains, for diagnostics, which hierarchies contribute
// each boundary offset.
func (d *Document) BoundarySources() map[int][]string {
	d.ensureLayout()
	src := make(map[int][]string)
	add := func(off int, name string) {
		for _, s := range src[off] {
			if s == name {
				return
			}
		}
		src[off] = append(src[off], name)
	}
	for _, h := range d.Hiers {
		for _, n := range h.Nodes {
			add(n.Start, h.Name)
			add(n.End, h.Name)
		}
	}
	for off := range src {
		sort.Strings(src[off])
	}
	return src
}
