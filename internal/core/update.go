package core

// This file implements the versioned update engine: copy-on-write
// mutations of a KyGODDAG. Apply takes a batch of edits against one
// document version and produces a NEW Document; the receiver — and
// every node reachable from it — is never mutated, so concurrent
// readers (including in-flight streaming evaluations) keep evaluating
// against their snapshot while writers commit new versions.
//
// Structural sharing is hierarchy-granular: a hierarchy untouched by
// the batch is shared wholesale with the previous version (its nodes
// are owned by both documents — Owns and OrdinalOf verify membership by
// array identity, which holds for shared hierarchies in both versions).
// A touched hierarchy is copied as one slab of node structs (one
// allocation for the structs, one for all child slices, one for all
// attribute nodes) before the edits are applied to the copy.
//
// The per-hierarchy structural name index (nameindex.go) is maintained
// incrementally: for a built index, the new version's runs are patched
// from the old ones — a pure-rename batch touches only the two affected
// runs and shares every other slice; ordinal-shifting edits transform
// the affected runs through a monotone ordinal remap. The lazily built
// from-scratch path remains the fallback (and the differential oracle:
// RebuildIndexRuns must agree byte-for-byte with the patched index).
//
// The boundary array and leaf layer are likewise patched rather than
// rederived where possible: edits provably unable to retire a boundary
// merge their new offsets into the previous bounds; only boundary-
// retiring edits (deleting an empty element, removing a hierarchy) pay
// the full computeBounds pass.

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"

	"mhxquery/internal/dom"
	"mhxquery/internal/xmlparse"
)

// EditKind identifies one update primitive.
type EditKind uint8

const (
	// EditRename renames the target element to Name.
	EditRename EditKind = iota
	// EditDelete removes the target element, splicing its children into
	// its parent's child list in place — the base text is preserved, so
	// hierarchy alignment (CMH) cannot break.
	EditDelete
	// EditWrap inserts a new element named Name as a child of the
	// target, wrapping the target's children [From,To). To < 0 means
	// "all remaining children". From == To inserts an empty element at
	// that child boundary.
	EditWrap
	// EditInsertBefore inserts a new empty element named Name as the
	// sibling immediately before the target (span: the point at the
	// target's Start).
	EditInsertBefore
	// EditInsertAfter is EditInsertBefore at the target's End.
	EditInsertAfter
	// EditReplaceText replaces the base text covered by the target's
	// span with Text. A length-changing replacement requires that no
	// markup boundary (of any hierarchy) lies strictly inside the
	// replaced range; a same-length replacement is always allowed.
	EditReplaceText
	// EditAddHierarchy registers a new persistent hierarchy named Name,
	// assembled from the element span trees in Tops (spans in base-text
	// coordinates). Gaps — before, between and inside the given trees —
	// are filled with text nodes so the hierarchy covers the base text
	// exactly (the CMH alignment condition) and serialize→reparse
	// round-trips. This is how an analyze-string overlay is persisted.
	EditAddHierarchy
	// EditRemoveHierarchy removes the hierarchy named Name.
	EditRemoveHierarchy
)

// Edit is one update primitive of a batch. Target nodes must belong to
// the document Apply is invoked on; Tops trees must be fresh (owned by
// no document — use dom.CloneSpan to lift nodes out of an overlay).
type Edit struct {
	Kind     EditKind
	Target   *dom.Node
	Name     string
	From, To int
	Text     string
	Tops     []*dom.Node
}

// UpdateStats reports what one Apply did — the observability surface
// the incremental-maintenance claims are benchmarked and tested
// through.
type UpdateStats struct {
	// Edits is the number of primitives applied.
	Edits int
	// HierarchiesShared / HierarchiesCopied count structural sharing at
	// hierarchy granularity; NodesCopied is the total node structs
	// copied (the real copy-on-write cost).
	HierarchiesShared int
	HierarchiesCopied int
	NodesCopied       int
	// HierarchiesAdded / HierarchiesRemoved count layer-level changes.
	HierarchiesAdded   int
	HierarchiesRemoved int
	// IndexesPatched counts name indexes maintained incrementally from
	// the previous version; IndexesLazy counts hierarchies whose index
	// was not built yet (or was newly added) and stays on the lazy
	// from-scratch path.
	IndexesPatched int
	IndexesLazy    int
	// SynopsesPatched / SynopsesLazy are the same accounting for the
	// path synopsis (synopsis.go): carried incrementally from the
	// previous version versus deferred to a fresh lazy build.
	SynopsesPatched int
	SynopsesLazy    int
	// BoundsRecomputed reports whether the boundary array needed the
	// full recomputation pass (boundary-retiring edits) instead of the
	// incremental merge.
	BoundsRecomputed bool
}

// splice is one resolved text replacement.
type splice struct {
	s, e int
	t    string
}

// hierOf verifies n is an element or text node of one of d's
// hierarchies and returns that hierarchy.
func (d *Document) hierOf(n *dom.Node, kinds ...dom.Kind) (*Hierarchy, error) {
	if n == nil {
		return nil, fmt.Errorf("core: nil update target")
	}
	if n == d.Root {
		return nil, fmt.Errorf("core: cannot edit the shared root")
	}
	ok := false
	for _, k := range kinds {
		if n.Kind == k {
			ok = true
		}
	}
	if !ok {
		return nil, fmt.Errorf("core: update target is a %s node", n.Kind)
	}
	if i := n.HierIndex; i >= 0 && i < len(d.Hiers) {
		h := d.Hiers[i]
		if n.Ord < len(h.Nodes) && h.Nodes[n.Ord] == n {
			return h, nil
		}
	}
	return nil, fmt.Errorf("core: update target is not a node of this document version")
}

// validElemName reports whether s is a well-formed XML element name.
func validElemName(s string) bool {
	if s == "" {
		return false
	}
	r, sz := utf8.DecodeRuneInString(s)
	if !xmlparse.IsNameStart(r) {
		return false
	}
	for i := sz; i < len(s); {
		r, sz = utf8.DecodeRuneInString(s[i:])
		if sz == 0 || !xmlparse.IsNameChar(r) {
			return false
		}
		i += sz
	}
	return true
}

// checkVocab enforces the CMH disjoint-vocabulary condition for an
// element name entering hierarchy hierIdx (-1: a brand-new hierarchy):
// the name must not be the shared root name and must not occur as an
// element of any other hierarchy.
func (d *Document) checkVocab(name string, hierIdx int) error {
	if !validElemName(name) {
		return fmt.Errorf("core: invalid element name %q", name)
	}
	if name == d.Root.Name {
		return fmt.Errorf("core: element name %q is the shared root name", name)
	}
	sym := d.names[name]
	if sym == 0 {
		return nil
	}
	for _, h := range d.Hiers {
		if h.Index == hierIdx {
			continue
		}
		if len(h.NameRun(sym)) > 0 {
			return fmt.Errorf("core: element name %q already belongs to hierarchy %q", name, h.Name)
		}
	}
	return nil
}

// Apply produces a new document version with the batch of edits
// applied, leaving the receiver untouched. All Target nodes are
// resolved against the receiver (snapshot semantics: a batch is a
// pending-update list evaluated against one version, then applied
// atomically). An empty batch returns the receiver itself.
func (d *Document) Apply(edits []Edit) (*Document, *UpdateStats, error) {
	if len(edits) == 0 {
		return d, &UpdateStats{}, nil
	}
	// The copy-on-write machinery walks node storage and the leaf
	// layer throughout; a frozen document materializes here once.
	d.ensureLayout()
	for _, h := range d.Hiers {
		if h.Temp {
			return nil, nil, fmt.Errorf("core: cannot update a document with temporary hierarchies")
		}
	}
	st := &UpdateStats{Edits: len(edits)}

	// ---- validation & bucketing ------------------------------------------
	perHier := make(map[int][]Edit)
	var splices []splice
	var addHiers []Edit
	removed := make(map[string]bool)
	addedNames := make(map[string]bool)
	// pendingNames tracks which hierarchy each fresh element name is
	// entering during THIS batch: checkVocab only sees the pre-update
	// document, so without it one batch could introduce the same new
	// name into two hierarchies, breaking the CMH disjoint-vocabulary
	// invariant.
	pendingNames := make(map[string]int)
	claimName := func(name string, hierIdx int) error {
		if prev, ok := pendingNames[name]; ok && prev != hierIdx {
			return fmt.Errorf("core: element name %q enters two hierarchies in one batch", name)
		}
		pendingNames[name] = hierIdx
		return nil
	}
	fullBounds := false

	for _, e := range edits {
		switch e.Kind {
		case EditRename, EditWrap, EditInsertBefore, EditInsertAfter, EditDelete:
			h, err := d.hierOf(e.Target, dom.Element)
			if err != nil {
				return nil, nil, err
			}
			switch e.Kind {
			case EditRename, EditWrap, EditInsertBefore, EditInsertAfter:
				if err := d.checkVocab(e.Name, h.Index); err != nil {
					return nil, nil, err
				}
				if err := claimName(e.Name, h.Index); err != nil {
					return nil, nil, err
				}
			case EditDelete:
				// Deleting an element can retire boundaries: an empty
				// element's point boundary vanishes, and splicing its
				// children can merge two text siblings, retiring the
				// junction. Fall back to the full bounds pass.
				fullBounds = true
			}
			perHier[h.Index] = append(perHier[h.Index], e)
		case EditReplaceText:
			if _, err := d.hierOf(e.Target, dom.Element, dom.Text); err != nil {
				return nil, nil, err
			}
			if !utf8.ValidString(e.Text) {
				return nil, nil, fmt.Errorf("core: replacement text is not valid UTF-8")
			}
			s, en := e.Target.Start, e.Target.End
			if len(e.Text) != en-s {
				if s >= en {
					return nil, nil, fmt.Errorf("core: cannot grow the empty span of <%s> (ownership of the inserted text would be ambiguous)", e.Target.Name)
				}
				// No markup boundary strictly inside the replaced range.
				if i := sort.SearchInts(d.Bounds, s+1); i < len(d.Bounds) && d.Bounds[i] < en {
					return nil, nil, fmt.Errorf("core: length-changing replacement over [%d,%d) crosses the markup boundary at %d", s, en, d.Bounds[i])
				}
			}
			splices = append(splices, splice{s: s, e: en, t: e.Text})
		case EditAddHierarchy:
			if e.Name == "" || !ValidHierarchyName(e.Name) {
				return nil, nil, fmt.Errorf("core: invalid hierarchy name %q", e.Name)
			}
			if addedNames[e.Name] {
				return nil, nil, fmt.Errorf("core: hierarchy %q added twice in one batch", e.Name)
			}
			addedNames[e.Name] = true
			addHiers = append(addHiers, e)
		case EditRemoveHierarchy:
			h := d.byName[e.Name]
			if h == nil {
				return nil, nil, fmt.Errorf("core: unknown hierarchy %q", e.Name)
			}
			if removed[e.Name] {
				return nil, nil, fmt.Errorf("core: hierarchy %q removed twice in one batch", e.Name)
			}
			removed[e.Name] = true
			fullBounds = true
		default:
			return nil, nil, fmt.Errorf("core: unknown edit kind %d", e.Kind)
		}
	}
	if len(removed) > 0 {
		if len(d.Hiers)-len(removed) < 1 {
			return nil, nil, fmt.Errorf("core: cannot remove the last hierarchy")
		}
		for idx := range perHier {
			if removed[d.Hiers[idx].Name] {
				return nil, nil, fmt.Errorf("core: conflicting edits: hierarchy %q is both edited and removed", d.Hiers[idx].Name)
			}
		}
	}
	for name := range addedNames {
		if d.byName[name] != nil && !removed[name] {
			return nil, nil, fmt.Errorf("core: hierarchy %q already registered", name)
		}
	}

	// ---- new base text and offset remap ----------------------------------
	sort.Slice(splices, func(i, j int) bool { return splices[i].s < splices[j].s })
	for i := 1; i < len(splices); i++ {
		if splices[i].s < splices[i-1].e {
			return nil, nil, fmt.Errorf("core: overlapping text replacements at [%d,%d) and [%d,%d)",
				splices[i-1].s, splices[i-1].e, splices[i].s, splices[i].e)
		}
	}
	newText := d.Text
	var remap func(int) int // nil: identity
	totalDelta := 0
	if len(splices) > 0 {
		var b strings.Builder
		pos := 0
		cums := make([]int, len(splices))
		cum := 0
		anyDelta := false
		for i, sp := range splices {
			b.WriteString(d.Text[pos:sp.s])
			b.WriteString(sp.t)
			pos = sp.e
			if delta := len(sp.t) - (sp.e - sp.s); delta != 0 {
				cum += delta
				anyDelta = true
			}
			cums[i] = cum
		}
		b.WriteString(d.Text[pos:])
		newText = b.String()
		totalDelta = cum
		// The remap is needed whenever ANY splice changes length — even
		// when the deltas cancel and the total text length is unchanged,
		// offsets between the splices still shift.
		if anyDelta {
			sps, cs := splices, cums
			remap = func(p int) int {
				// Offsets at or after a splice's end shift by the
				// cumulative delta; offsets at or before its start do
				// not. Interior offsets cannot occur (validated above
				// for node boundaries; checked by remapChecked for new
				// hierarchy spans).
				i := sort.Search(len(sps), func(i int) bool { return sps[i].e > p })
				if i == 0 {
					return p
				}
				return p + cs[i-1]
			}
		}
	}
	copyAll := len(splices) > 0 // text-node Data must be re-sliced

	// ---- shared root (copied only when the text length changes) ----------
	newRoot := d.Root
	if totalDelta != 0 {
		r := &dom.Node{}
		*r = *d.Root
		r.End = len(newText)
		if len(d.Root.Attrs) > 0 {
			slab := make([]dom.Node, len(d.Root.Attrs))
			attrs := make([]*dom.Node, len(d.Root.Attrs))
			for i, a := range d.Root.Attrs {
				slab[i] = *a
				slab[i].Parent = r
				attrs[i] = &slab[i]
			}
			r.Attrs = attrs
		}
		newRoot = r
	}

	d2 := &Document{
		Text:   newText,
		Root:   newRoot,
		Rev:    d.Rev + 1,
		byName: make(map[string]*Hierarchy, len(d.Hiers)+len(addHiers)),
		names:  make(map[string]int32, len(d.names)+4),
	}
	for k, v := range d.names {
		d2.names[k] = v
	}

	// ---- copy-on-write hierarchy pass -------------------------------------
	var newBoundPts []int
	copied := make(map[int][]*dom.Node) // old hier index → positional node copies
	newIdx := 0
	for _, h := range d.Hiers {
		if removed[h.Name] {
			st.HierarchiesRemoved++
			continue
		}
		hEdits := perHier[h.Index]
		if len(hEdits) == 0 && !copyAll && newIdx == h.Index {
			d2.Hiers = append(d2.Hiers, h)
			st.HierarchiesShared++
			newIdx++
			continue
		}
		h2, nodes, pts, err := d2.applyToHierarchy(d, h, newIdx, hEdits, remap, copyAll, st)
		if err != nil {
			return nil, nil, err
		}
		copied[h.Index] = nodes
		newBoundPts = append(newBoundPts, pts...)
		d2.Hiers = append(d2.Hiers, h2)
		newIdx++
	}

	// ---- new hierarchies ---------------------------------------------------
	for _, e := range addHiers {
		tops, err := normalizeSpanTops(newText, e.Tops, remapChecked(splices, remap))
		if err != nil {
			return nil, nil, fmt.Errorf("core: hierarchy %q: %w", e.Name, err)
		}
		h := &Hierarchy{Name: e.Name, Index: len(d2.Hiers), Top: tops}
		for _, t := range tops {
			t.Parent = d2.Root
		}
		d2.indexHierarchy(h, h.Index)
		for _, n := range h.Nodes {
			if n.Kind == dom.Element {
				if err := d2.checkVocabAdded(n.Name, h.Index); err != nil {
					return nil, nil, err
				}
			}
			newBoundPts = append(newBoundPts, n.Start, n.End)
		}
		d2.Hiers = append(d2.Hiers, h)
		st.HierarchiesAdded++
		st.IndexesLazy++
		indexLazyReset.Add(1)
		st.SynopsesLazy++
		synopsisLazyReset.Add(1)
	}

	for _, h := range d2.Hiers {
		d2.byName[h.Name] = h
	}

	// ---- bounds and leaf layer --------------------------------------------
	switch {
	case fullBounds:
		// Boundary-retiring edits: full recomputation.
		d2.computeBounds()
		st.BoundsRecomputed = true
		d2.buildLeaves()
	case remap == nil && len(newBoundPts) == 0:
		// No boundary moved, appeared or vanished (renames, same-length
		// replacements): share the boundary array and patch the leaf
		// layer positionally from the previous version.
		d2.Bounds = d.Bounds
		d2.patchLeaves(d, copied, copyAll)
	default:
		d2.Bounds = mergeBounds(d.Bounds, remap, newBoundPts, len(newText))
		d2.buildLeaves()
	}
	return d2, st, nil
}

// patchLeaves rebuilds the leaf layer positionally from the previous
// version when the boundary array is unchanged. With unchanged text
// the leaf structs themselves are SHARED with the previous version —
// every remaining leaf field is version-independent — and only the
// per-version text→leaf edge table is patched: entries pointing into
// copied hierarchies swap to the new node structs (ordinals unchanged
// on this path). With changed text (same-length replacements) the leaf
// structs are copied in one slab so Data can be re-sliced.
func (d2 *Document) patchLeaves(d *Document, copied map[int][]*dom.Node, reslice bool) {
	if reslice {
		n := len(d.Leaves)
		slab := make([]dom.Node, n)
		d2.Leaves = make([]*dom.Node, n)
		for i, l := range d.Leaves {
			slab[i] = *l
			slab[i].Data = d2.Text[l.Start:l.End]
			d2.Leaves[i] = &slab[i]
		}
	} else {
		d2.Leaves = d.Leaves
	}
	edges := 0
	for _, ps := range d.leafPar {
		edges += len(ps)
	}
	backing := make([]*dom.Node, edges)
	d2.leafPar = make([][]*dom.Node, len(d.leafPar))
	pos := 0
	for i, ps := range d.leafPar {
		np := backing[pos : pos+len(ps)]
		pos += len(ps)
		for j, p := range ps {
			if m := copied[p.HierIndex]; m != nil {
				np[j] = m[p.Ord]
			} else {
				np[j] = p
			}
		}
		d2.leafPar[i] = np
	}
	d2.empties = d.empties
	if len(d.empties) > 0 && len(copied) > 0 {
		d2.empties = make([]*dom.Node, len(d.empties))
		for i, e := range d.empties {
			if m := copied[e.HierIndex]; m != nil {
				d2.empties[i] = m[e.Ord]
			} else {
				d2.empties[i] = e
			}
		}
	}
	d2.finishLayout()
	d2.rootKids = d2.RootChildren()
}

// checkVocabAdded is checkVocab against the partially assembled new
// document (used for hierarchies added by the batch, whose names were
// interned during indexing and so bypass the sym==0 shortcut).
func (d *Document) checkVocabAdded(name string, hierIdx int) error {
	if name == d.Root.Name {
		return fmt.Errorf("core: element name %q is the shared root name", name)
	}
	sym := d.names[name]
	for _, h := range d.Hiers {
		if h.Index == hierIdx {
			continue
		}
		if len(h.NameRun(sym)) > 0 {
			return fmt.Errorf("core: element name %q already belongs to hierarchy %q", name, h.Name)
		}
	}
	return nil
}

// remapChecked wraps remap with interior-position detection for spans
// that are not existing node boundaries (new hierarchy trees).
func remapChecked(sps []splice, remap func(int) int) func(int) (int, error) {
	return func(p int) (int, error) {
		for _, sp := range sps {
			if p > sp.s && p < sp.e && len(sp.t) != sp.e-sp.s {
				return 0, fmt.Errorf("span offset %d lies inside the replaced range [%d,%d)", p, sp.s, sp.e)
			}
		}
		if remap == nil {
			return p, nil
		}
		return remap(p), nil
	}
}

// mergeBounds patches the previous version's boundary array: remap the
// old offsets (monotone), merge in the offsets contributed by new
// nodes, and deduplicate.
func mergeBounds(old []int, remap func(int) int, pts []int, textLen int) []int {
	mapped := old
	if remap != nil {
		mapped = make([]int, len(old))
		for i, b := range old {
			mapped[i] = remap(b)
		}
	}
	sort.Ints(pts)
	out := make([]int, 0, len(mapped)+len(pts))
	i, j := 0, 0
	for i < len(mapped) || j < len(pts) {
		var v int
		switch {
		case j == len(pts) || (i < len(mapped) && mapped[i] <= pts[j]):
			v = mapped[i]
			i++
		default:
			v = pts[j]
			j++
		}
		if n := len(out); n > 0 && out[n-1] == v {
			continue
		}
		if v < 0 || v > textLen {
			continue
		}
		out = append(out, v)
	}
	return out
}

// applyToHierarchy produces the copy-on-write version of h for d2 at
// registration index newIdx with hEdits applied, maintaining the name
// index incrementally. It returns the new hierarchy, the positional
// old-ordinal → new-node mapping, and any boundary offsets contributed
// by inserted nodes.
func (d2 *Document) applyToHierarchy(d *Document, h *Hierarchy, newIdx int, hEdits []Edit, remap func(int) int, reslice bool, st *UpdateStats) (*Hierarchy, []*dom.Node, []int, error) {
	n := len(h.Nodes)
	slab := make([]dom.Node, n)
	nodes := make([]*dom.Node, n)
	nAttr, nKids := 0, 0
	for i, old := range h.Nodes {
		slab[i] = *old
		nodes[i] = &slab[i]
		nAttr += len(old.Attrs)
		nKids += len(old.Children)
	}
	attrSlab := make([]dom.Node, nAttr)
	attrPtrs := make([]*dom.Node, nAttr)
	kidSlab := make([]*dom.Node, nKids)
	ai, ki := 0, 0
	for i, old := range h.Nodes {
		nn := nodes[i]
		nn.HierIndex = newIdx
		if remap != nil {
			nn.Start = remap(nn.Start)
			nn.End = remap(nn.End)
		}
		if reslice && nn.Kind == dom.Text {
			nn.Data = d2.Text[nn.Start:nn.End]
		}
		if old.Parent == nil || old.Parent == d.Root {
			nn.Parent = d2.Root
		} else {
			nn.Parent = nodes[old.Parent.Ord]
		}
		if len(old.Children) > 0 {
			kids := kidSlab[ki : ki+len(old.Children)]
			ki += len(old.Children)
			for j, c := range old.Children {
				kids[j] = nodes[c.Ord]
			}
			nn.Children = kids
		}
		if len(old.Attrs) > 0 {
			as := attrPtrs[ai : ai+len(old.Attrs)]
			for j, a := range old.Attrs {
				attrSlab[ai+j] = *a
				na := &attrSlab[ai+j]
				na.Parent = nn
				na.HierIndex = newIdx
				as[j] = na
			}
			ai += len(old.Attrs)
			nn.Attrs = as
		}
	}
	top := make([]*dom.Node, len(h.Top))
	for i, t := range h.Top {
		top[i] = nodes[t.Ord]
	}
	h2 := &Hierarchy{Name: h.Name, Index: newIdx, Top: top}
	st.HierarchiesCopied++
	st.NodesCopied += n

	// dirtyOrds collects the OLD ordinals of every element whose child
	// list this batch changes — the regions the synopsis is patched
	// over (maintainSynopsis). Changes directly under the shared root
	// set rootDirty instead.
	dirtyOrds := make(map[int]bool)
	rootDirty := false
	markDirty := func(parent *dom.Node) {
		if parent == nil || parent == d.Root {
			rootDirty = true
			return
		}
		dirtyOrds[parent.Ord] = true
	}

	// ---- drop text nodes a splice emptied ---------------------------------
	// A text node whose replacement left it with an empty span would
	// vanish on serialize→reparse; detach it now so the new version is
	// round-trip faithful.
	structural := false
	if reslice {
		for i, old := range h.Nodes {
			nn := nodes[i]
			if nn.Kind == dom.Text && nn.Start == nn.End && old.Start < old.End {
				if err := spliceOut(d2, h2, nn); err != nil {
					return nil, nil, nil, err
				}
				structural = true
				markDirty(old.Parent)
			}
		}
	}

	// ---- apply the structural edits to the copy ---------------------------
	renamedOrds := make(map[int]bool)
	var inserted []*dom.Node
	var boundPts []int
	for _, e := range hEdits {
		t := nodes[e.Target.Ord]
		switch e.Kind {
		case EditRename:
			if t.Name == e.Name {
				continue
			}
			renamedOrds[e.Target.Ord] = true
			t.Name = e.Name
			t.NameSym = d2.intern(e.Name)
			markDirty(e.Target.Parent)
		case EditDelete:
			structural = true
			if err := spliceOut(d2, h2, t); err != nil {
				return nil, nil, nil, err
			}
			markDirty(e.Target.Parent)
		case EditWrap:
			structural = true
			markDirty(e.Target)
			kids := t.Children
			from, to := e.From, e.To
			if to < 0 {
				to = len(kids)
			}
			if from < 0 || from > to || to > len(kids) {
				return nil, nil, nil, fmt.Errorf("core: wrap range [%d,%d) outside the %d children of <%s>", e.From, e.To, len(kids), t.Name)
			}
			w := &dom.Node{Kind: dom.Element, Name: e.Name, NameSym: d2.intern(e.Name), Hier: h2.Name, HierIndex: newIdx, Parent: t}
			if from < to {
				w.Start, w.End = kids[from].Start, kids[to-1].End
				wrapped := append([]*dom.Node(nil), kids[from:to]...)
				for _, c := range wrapped {
					c.Parent = w
				}
				w.Children = wrapped
			} else {
				pos := t.Start
				switch {
				case from < len(kids):
					pos = kids[from].Start
				case len(kids) > 0:
					pos = kids[len(kids)-1].End
				}
				w.Start, w.End = pos, pos
			}
			nk := make([]*dom.Node, 0, len(kids)-(to-from)+1)
			nk = append(nk, kids[:from]...)
			nk = append(nk, w)
			nk = append(nk, kids[to:]...)
			t.Children = nk
			inserted = append(inserted, w)
			boundPts = append(boundPts, w.Start, w.End)
		case EditInsertBefore, EditInsertAfter:
			structural = true
			w, err := insertSibling(d2, h2, t, e)
			if err != nil {
				return nil, nil, nil, err
			}
			inserted = append(inserted, w)
			boundPts = append(boundPts, w.Start, w.End)
			markDirty(e.Target.Parent)
		}
	}

	// ---- renumber (or keep ordinals for rename-only batches) --------------
	oldRuns := h.idx.snapshot()
	var remapOrd []int32 // old ordinal → new, -1 deleted; nil = identity
	if structural {
		for i := range slab {
			slab[i].Ord = -1
		}
		h2.Nodes = nil
		d2.indexHierarchy(h2, newIdx)
		remapOrd = make([]int32, n)
		identity := true
		for i := range slab {
			remapOrd[i] = int32(slab[i].Ord)
			if slab[i].Ord != i {
				identity = false
			}
		}
		if identity {
			remapOrd = nil
		}
	} else {
		h2.Nodes = nodes
		h2.byEnd = make([]*dom.Node, len(h.byEnd))
		for i, m := range h.byEnd {
			h2.byEnd[i] = nodes[m.Ord]
		}
	}

	// ---- incremental name-index maintenance -------------------------------
	if oldRuns == nil {
		st.IndexesLazy++
		indexLazyReset.Add(1)
	} else {
		// Removals and additions are derived from the FINAL state of
		// each renamed node (so a node renamed twice — or renamed back
		// to its original name — contributes exactly one removal/add
		// pair, or none).
		removals := make(map[int32]map[int32]bool)
		adds := make(map[int32][]int32)
		for oldOrd := range renamedOrds {
			origSym := h.Nodes[oldOrd].NameSym
			node := nodes[oldOrd]
			if node.NameSym == origSym {
				continue // renamed back: net no-op
			}
			set := removals[origSym]
			if set == nil {
				set = make(map[int32]bool)
				removals[origSym] = set
			}
			set[int32(oldOrd)] = true
			no := int32(oldOrd)
			if remapOrd != nil {
				no = remapOrd[oldOrd]
			} else if structural {
				no = int32(node.Ord)
			}
			if no >= 0 {
				adds[node.NameSym] = append(adds[node.NameSym], no)
			}
		}
		for _, w := range inserted {
			if w.Ord >= 0 {
				adds[w.NameSym] = append(adds[w.NameSym], int32(w.Ord))
			}
		}
		h2.idx.install(patchRuns(oldRuns, remapOrd, removals, adds))
		st.IndexesPatched++
		indexPatched.Add(1)
	}

	// ---- incremental synopsis maintenance ---------------------------------
	maintainSynopsis(d, h, h2, nodes, dirtyOrds, rootDirty, st)
	return h2, nodes, boundPts, nil
}

// spliceOut removes t from its parent's child list (or the hierarchy's
// top list), splicing t's children into its place.
// locateInParent resolves t's sibling list (its parent's children, or
// the hierarchy's top list for top-level nodes) and t's index in it.
// A node no longer present was detached by an earlier edit of the same
// batch — a conflict.
func locateInParent(d2 *Document, h2 *Hierarchy, t *dom.Node) (list *[]*dom.Node, parent *dom.Node, idx int, err error) {
	parent = t.Parent
	list = &h2.Top
	if parent != d2.Root && parent != nil {
		list = &parent.Children
	} else {
		parent = d2.Root
	}
	for i, c := range *list {
		if c == t {
			return list, parent, i, nil
		}
	}
	return nil, nil, 0, fmt.Errorf("core: conflicting edits: <%s> already detached from its parent", t.Name)
}

func spliceOut(d2 *Document, h2 *Hierarchy, t *dom.Node) error {
	list, parent, idx, err := locateInParent(d2, h2, t)
	if err != nil {
		return err
	}
	nk := make([]*dom.Node, 0, len(*list)-1+len(t.Children))
	nk = append(nk, (*list)[:idx]...)
	for _, c := range t.Children {
		c.Parent = parent
		nk = append(nk, c)
	}
	nk = append(nk, (*list)[idx+1:]...)
	*list = nk
	// Splicing (or dropping an emptied text node) can leave two text
	// siblings adjacent; merge them the way serialization would, so the
	// new version round-trips through reparse unchanged.
	mergeAdjacentText(d2, list)
	return nil
}

// mergeAdjacentText merges runs of adjacent text siblings in place,
// extending the first node of each run over its successors.
func mergeAdjacentText(d2 *Document, list *[]*dom.Node) {
	kids := *list
	w := 0
	for i := 0; i < len(kids); i++ {
		if w > 0 && kids[i].Kind == dom.Text && kids[w-1].Kind == dom.Text && kids[w-1].End == kids[i].Start {
			kids[w-1].End = kids[i].End
			kids[w-1].Data = d2.Text[kids[w-1].Start:kids[w-1].End]
			continue
		}
		kids[w] = kids[i]
		w++
	}
	*list = kids[:w]
}

// insertSibling inserts a new empty element next to t.
func insertSibling(d2 *Document, h2 *Hierarchy, t *dom.Node, e Edit) (*dom.Node, error) {
	list, parent, idx, err := locateInParent(d2, h2, t)
	if err != nil {
		return nil, err
	}
	pos, at := t.Start, idx
	if e.Kind == EditInsertAfter {
		pos, at = t.End, idx+1
	}
	w := &dom.Node{Kind: dom.Element, Name: e.Name, NameSym: d2.intern(e.Name), Hier: h2.Name, HierIndex: h2.Index, Parent: parent, Start: pos, End: pos}
	nk := make([]*dom.Node, 0, len(*list)+1)
	nk = append(nk, (*list)[:at]...)
	nk = append(nk, w)
	nk = append(nk, (*list)[at:]...)
	*list = nk
	return w, nil
}

// patchRuns produces the new version's run map from the old one:
// surviving ordinals pass through the (monotone) ordinal remap,
// renamed-away ordinals are removed, and renamed-to/inserted ordinals
// are merged into their runs. With an identity remap, untouched runs
// share the old slices.
func patchRuns(old map[int32][]int32, remapOrd []int32, removals map[int32]map[int32]bool, adds map[int32][]int32) map[int32][]int32 {
	out := make(map[int32][]int32, len(old)+len(adds))
	for sym, run := range old {
		rem := removals[sym]
		if remapOrd == nil && len(rem) == 0 {
			out[sym] = run // shared with the previous version
			continue
		}
		nr := make([]int32, 0, len(run))
		for _, o := range run {
			if rem != nil && rem[o] {
				continue
			}
			no := o
			if remapOrd != nil {
				no = remapOrd[o]
			}
			if no >= 0 {
				nr = append(nr, no)
			}
		}
		if len(nr) > 0 {
			out[sym] = nr
		}
	}
	for sym, ords := range adds {
		sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
		out[sym] = mergeOrds(out[sym], ords)
	}
	return out
}

// mergeOrds merges two ascending ordinal runs into a fresh slice.
func mergeOrds(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] <= b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// hierNameRE-equivalent check without regexp: letters/digits/._- with a
// sane first byte, matching the collection layer's naming rules closely
// enough that persisted hierarchies serialize and reload cleanly.
func ValidHierarchyName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		case c == '_' && i == 0:
		default:
			return false
		}
	}
	return true
}

// normalizeSpanTops assembles the top-level node list of a new
// hierarchy from element span trees: tops are ordered by span,
// validated non-overlapping, and every gap — before, between and after
// them, and inside every element — is filled with text nodes, so the
// hierarchy covers the base text exactly (the CMH alignment condition)
// and serialize→reparse round-trips.
func normalizeSpanTops(text string, tops []*dom.Node, remap func(int) (int, error)) ([]*dom.Node, error) {
	if len(tops) == 0 {
		return nil, fmt.Errorf("no content nodes")
	}
	sorted := append([]*dom.Node(nil), tops...)
	for _, t := range sorted {
		if t == nil || t.Kind != dom.Element {
			return nil, fmt.Errorf("top-level nodes must be elements")
		}
		if err := normalizeSpanElem(text, t, remap); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var out []*dom.Node
	pos := 0
	for _, t := range sorted {
		if t.Start < pos {
			return nil, fmt.Errorf("overlapping top-level spans at offset %d", t.Start)
		}
		if pos < t.Start {
			out = append(out, spanText(text, pos, t.Start))
		}
		out = append(out, t)
		pos = t.End
	}
	if pos < len(text) {
		out = append(out, spanText(text, pos, len(text)))
	}
	return out, nil
}

// normalizeSpanElem validates and completes one element of a new
// hierarchy tree: spans are remapped into the new text coordinates,
// children must nest properly, and uncovered stretches of the
// element's span become text nodes.
func normalizeSpanElem(text string, n *dom.Node, remap func(int) (int, error)) error {
	var err error
	if n.Start, err = remap(n.Start); err != nil {
		return err
	}
	if n.End, err = remap(n.End); err != nil {
		return err
	}
	if n.Start < 0 || n.End > len(text) || n.Start > n.End {
		return fmt.Errorf("element <%s> span [%d,%d) outside the base text", n.Name, n.Start, n.End)
	}
	if !validElemName(n.Name) {
		return fmt.Errorf("invalid element name %q", n.Name)
	}
	kids := n.Children
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].Start < kids[j].Start })
	var out []*dom.Node
	pos := n.Start
	for _, c := range kids {
		switch c.Kind {
		case dom.Element:
			if err := normalizeSpanElem(text, c, remap); err != nil {
				return err
			}
		case dom.Text:
			if c.Start, err = remap(c.Start); err != nil {
				return err
			}
			if c.End, err = remap(c.End); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cannot place a %s node in a hierarchy", c.Kind)
		}
		if c.Start < pos || c.End > n.End {
			return fmt.Errorf("child of <%s> at [%d,%d) escapes or overlaps within [%d,%d)", n.Name, c.Start, c.End, n.Start, n.End)
		}
		if pos < c.Start {
			out = append(out, spanText(text, pos, c.Start))
		}
		if c.Kind == dom.Text {
			c.Data = text[c.Start:c.End]
		}
		c.Parent = n
		out = append(out, c)
		pos = c.End
	}
	if pos < n.End {
		out = append(out, spanText(text, pos, n.End))
	}
	for _, c := range out {
		c.Parent = n
	}
	n.Children = out
	return nil
}

func spanText(text string, a, b int) *dom.Node {
	return &dom.Node{Kind: dom.Text, Data: text[a:b], Start: a, End: b}
}
