// Package core implements the KyGODDAG, the paper's central data
// structure: a directed acyclic graph uniting the DOM trees of n
// concurrent markup hierarchies over the same base text S at a shared
// root, with an additional layer of leaf nodes — the partition of S
// induced by every markup boundary of every hierarchy — connected to the
// text node that contains them in each hierarchy.
//
// The package provides construction (Build), overlay documents for the
// temporary hierarchies created by analyze-string (AddHierarchy), the
// standard XPath axes confined to one hierarchy component, the paper's
// extended multihierarchical axes (Definition 1) in both a fast
// interval-arithmetic implementation and a literal set-based reference
// implementation, the stable node order of Definition 3 (dom.Compare),
// and diagnostic exports (DOT graphs and leaf tables, reproducing the
// paper's Figure 2).
package core

import (
	"fmt"
	"sort"
	"sync"

	"mhxquery/internal/cmh"
	"mhxquery/internal/dom"
)

// Hierarchy is one markup hierarchy registered in a Document.
type Hierarchy struct {
	Name  string
	Index int
	// Top holds the top-level nodes of the hierarchy (the children its
	// original root element contributed to the shared KyGODDAG root).
	Top []*dom.Node
	// Nodes lists every element and text node of the hierarchy in
	// preorder; Nodes[n.Ord] == n and a node's subtree occupies
	// Nodes[n.Ord..n.Last].
	Nodes []*dom.Node
	// Temp marks hierarchies created by analyze-string; they live only
	// for the duration of a query evaluation.
	Temp bool

	// byEnd lists the hierarchy's nodes sorted by span End (the
	// xpreceding index).
	byEnd []*dom.Node

	// fill, when non-nil, materializes Top/Nodes/byEnd lazily from a
	// frozen slab image (frozen.go); fillOnce synchronizes the one
	// materialization and fillRoot is the shared root the top-level
	// nodes are parented at. Eagerly built hierarchies leave fill nil.
	fill     func(root *dom.Node, h *Hierarchy)
	fillOnce *sync.Once
	fillRoot *dom.Node

	// idx is the lazily built structural name index (nameindex.go). It
	// is shared by every overlay document reusing this hierarchy, so the
	// lazy build is synchronized.
	idx nameIndex
	// syn is the lazily built path synopsis (synopsis.go), with the same
	// sharing and synchronization discipline as idx.
	syn synIndex
}

// NamedTree pairs a hierarchy name with its parsed document tree.
type NamedTree struct {
	Name string
	Root *dom.Node
}

// Document is a KyGODDAG over a base text.
type Document struct {
	// Text is the base string S shared by all hierarchies.
	Text string
	// Root is the shared root node (HierIndex == dom.RootHier). Its child
	// edges are not stored on the node — use RootChildren — so that
	// overlay documents can share it without mutation.
	Root *dom.Node
	// Hiers lists the hierarchies in registration (document) order.
	Hiers []*Hierarchy
	// Bounds is the sorted array of all markup boundary offsets,
	// including 0 and len(Text); leaf i spans [Bounds[i], Bounds[i+1]).
	Bounds []int
	// Leaves is the leaf layer, in text order.
	Leaves []*dom.Node
	// Base points to the document this overlay was derived from, or nil.
	Base *Document
	// Rev is the document's update revision: 0 for a freshly built
	// document, incremented by every Apply (update.go). It participates
	// in Signature so plans compiled against an earlier version are
	// never blindly reused for a mutated one.
	Rev uint64

	byName map[string]*Hierarchy
	// leafPar is the per-version text→leaf edge table: leafPar[i] holds,
	// for leaf i, the text node that contains it in each covering
	// hierarchy, in hierarchy order. It lives on the Document rather
	// than on the leaf nodes so that leaf structs — whose remaining
	// fields are version-independent — can be shared between document
	// versions whose partition is unchanged (update.go patchLeaves).
	leafPar [][]*dom.Node
	// empties lists all empty-span nodes of all hierarchies: under the
	// literal Definition 1, leaves(m)=∅ makes them xdescendants of
	// every node.
	empties []*dom.Node

	// names interns element and attribute names to dense symbols
	// (dom.Node.NameSym); symbols start at 1, 0 means "not interned".
	// Overlay documents copy the base table so symbols stay comparable
	// across the lineage.
	names map[string]int32
	// ordBase[i] is the document-order ordinal of Hiers[i].Nodes[0]; a
	// hierarchy node's ordinal is ordBase[HierIndex]+Ord. The shared root
	// has ordinal 0 and leaf i has ordinal leafBase+i, so ordinals
	// enumerate the Definition 3 order 0..OrdinalSpace()-1 (attributes
	// excepted — they share their owner's Ord and have no ordinal).
	ordBase  []int
	leafBase int
	// rootKids caches RootChildren for axis evaluation.
	rootKids []*dom.Node

	// layoutOnce, when non-nil, guards the lazy materialization of a
	// frozen document's hierarchies and leaf layer (frozen.go). Eagerly
	// built documents leave it nil.
	layoutOnce *sync.Once
}

// numLeaves is the leaf count implied by the boundary array — equal to
// len(Leaves) once the leaf layer is built, but available before a
// frozen document materializes it (Bounds is always eager).
func (d *Document) numLeaves() int {
	if n := len(d.Bounds) - 1; n > 0 {
		return n
	}
	return 0
}

// intern returns the symbol for name in the document's name table,
// assigning the next free symbol on first sight.
func (d *Document) intern(name string) int32 {
	if s, ok := d.names[name]; ok {
		return s
	}
	s := int32(len(d.names)) + 1
	d.names[name] = s
	return s
}

// NameSymOf returns the document's interned symbol for name, or 0 when
// the name occurs nowhere in the document's markup.
func (d *Document) NameSymOf(name string) int32 { return d.names[name] }

// OrdinalOf returns n's position in the Definition 3 document order as a
// dense integer in [0, OrdinalSpace()), or ok=false when n has no
// ordinal in this document (attributes, constructed nodes, nodes of
// other documents). Ownership is verified by direct array identity —
// h.Nodes[n.Ord] == n — so the check costs two array indexings and no
// hashing.
func (d *Document) OrdinalOf(n *dom.Node) (int, bool) {
	if n == d.Root {
		return 0, true
	}
	if n.Kind == dom.Leaf {
		if n.Ord < len(d.Leaves) && d.Leaves[n.Ord] == n {
			return d.leafBase + n.Ord, true
		}
		return 0, false
	}
	if i := n.HierIndex; i >= 0 && i < len(d.Hiers) {
		h := d.Hiers[i]
		if n.Ord < len(h.Nodes) && h.Nodes[n.Ord] == n {
			return d.ordBase[i] + n.Ord, true
		}
	}
	return 0, false
}

// OrdinalSpace is the exclusive upper bound of OrdinalOf over this
// document: 1 (root) + all hierarchy nodes + all leaves. It is
// derived from the boundary array, so it needs no materialization.
func (d *Document) OrdinalSpace() int { return d.leafBase + d.numLeaves() }

// Build constructs the KyGODDAG for the given hierarchy encodings. It
// verifies that all trees share the same root element name and encode the
// same base text, and that element vocabularies are pairwise disjoint
// (the CMH conditions of Section 3).
func Build(trees []NamedTree) (*Document, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: no hierarchies")
	}
	names := make([]string, len(trees))
	roots := make([]*dom.Node, len(trees))
	for i, t := range trees {
		if t.Root == nil || t.Root.Kind != dom.Element {
			return nil, fmt.Errorf("core: hierarchy %q: missing root element", t.Name)
		}
		names[i], roots[i] = t.Name, t.Root
	}
	if _, err := cmh.Infer(names, roots); err != nil {
		return nil, err
	}
	text, err := cmh.CheckAlignment(names, roots)
	if err != nil {
		return nil, err
	}

	d := &Document{
		Text:   text,
		byName: make(map[string]*Hierarchy, len(trees)),
		names:  make(map[string]int32),
	}
	root := dom.NewElement(roots[0].Name)
	root.HierIndex = dom.RootHier
	root.Start, root.End = 0, len(text)
	root.NameSym = d.intern(root.Name)
	d.Root = root

	for i, t := range trees {
		for _, a := range t.Root.Attrs {
			if _, ok := root.Attr(a.Name); !ok {
				root.SetAttr(a.Name, a.Data)
			}
		}
		h := &Hierarchy{Name: t.Name, Index: i}
		for _, c := range t.Root.Children {
			c.Parent = root
			h.Top = append(h.Top, c)
		}
		d.indexHierarchy(h, i)
		d.Hiers = append(d.Hiers, h)
		d.byName[h.Name] = h
	}
	for _, a := range root.Attrs {
		a.NameSym = d.intern(a.Name)
	}
	d.partition()
	return d, nil
}

// indexHierarchy assigns Hier/HierIndex/Ord/Last over the hierarchy's
// nodes, interns element and attribute names, and fills h.Nodes in
// preorder.
func (d *Document) indexHierarchy(h *Hierarchy, index int) {
	var visit func(n *dom.Node)
	visit = func(n *dom.Node) {
		n.Hier, n.HierIndex = h.Name, index
		n.Ord = len(h.Nodes)
		if n.Kind == dom.Element {
			n.NameSym = d.intern(n.Name)
		}
		h.Nodes = append(h.Nodes, n)
		for _, a := range n.Attrs {
			a.Hier, a.HierIndex, a.Ord = n.Hier, n.HierIndex, n.Ord
			a.NameSym = d.intern(a.Name)
		}
		for _, c := range n.Children {
			visit(c)
		}
		n.Last = len(h.Nodes) - 1
	}
	for _, t := range h.Top {
		visit(t)
	}
	h.sortByEnd()
}

// stableSortByEnd orders nodes by span End, preserving preorder among
// equals (the xpreceding index invariant).
func stableSortByEnd(nodes []*dom.Node) {
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].End < nodes[j].End })
}

// partition recomputes Bounds, Leaves and the text→leaf links.
func (d *Document) partition() {
	d.computeBounds()
	d.buildLeaves()
}

// computeBounds derives the boundary array from scratch: every markup
// boundary of every hierarchy, plus 0 and len(Text). The update engine
// (update.go) skips this pass when it can patch the previous version's
// bounds instead.
func (d *Document) computeBounds() {
	set := map[int]bool{0: true, len(d.Text): true}
	for _, h := range d.Hiers {
		for _, n := range h.Nodes {
			set[n.Start] = true
			set[n.End] = true
		}
	}
	bounds := make([]int, 0, len(set))
	for b := range set {
		bounds = append(bounds, b)
	}
	sort.Ints(bounds)
	d.Bounds = bounds
}

// buildLeaves materializes the leaf layer from d.Bounds: the leaf
// nodes, the text→leaf links (one backing array for all LeafParents
// slices), the empty-span node list and the ordinal layout.
func (d *Document) buildLeaves() {
	bounds := d.Bounds
	nLeaves := len(bounds) - 1
	if nLeaves < 0 {
		nLeaves = 0
	}
	slab := make([]dom.Node, nLeaves)
	d.Leaves = make([]*dom.Node, nLeaves)
	for i := 0; i < nLeaves; i++ {
		slab[i] = dom.Node{
			Kind:      dom.Leaf,
			Data:      d.Text[bounds[i]:bounds[i+1]],
			Start:     bounds[i],
			End:       bounds[i+1],
			Ord:       i,
			Last:      i,
			HierIndex: dom.LeafHier,
		}
		d.Leaves[i] = &slab[i]
	}
	// Two passes over the text nodes: count the parents of each leaf,
	// then fill one shared backing array, so the leaf layer costs two
	// allocations instead of one per leaf.
	counts := make([]int, nLeaves)
	edges := 0
	d.empties = nil
	for _, h := range d.Hiers {
		for _, n := range h.Nodes {
			if n.Start >= n.End {
				d.empties = append(d.empties, n)
			}
			if n.Kind != dom.Text {
				continue
			}
			lo, hi := d.LeafRange(n)
			for i := lo; i < hi; i++ {
				counts[i]++
			}
			edges += hi - lo
		}
	}
	backing := make([]*dom.Node, edges)
	d.leafPar = make([][]*dom.Node, nLeaves)
	pos := 0
	for i := 0; i < nLeaves; i++ {
		d.leafPar[i] = backing[pos : pos : pos+counts[i]]
		pos += counts[i]
	}
	for _, h := range d.Hiers {
		for _, n := range h.Nodes {
			if n.Kind != dom.Text {
				continue
			}
			lo, hi := d.LeafRange(n)
			for i := lo; i < hi; i++ {
				d.leafPar[i] = append(d.leafPar[i], n)
			}
		}
	}

	d.finishLayout()
	d.rootKids = d.rootChildren()
}

// LeafParents returns, for a leaf, the text node that contains it in
// each covering hierarchy, in hierarchy order — the text→leaf edges of
// the KyGODDAG, read from the owning version's table. A leaf of an
// ancestor version (a base-document leaf encountered mid-overlay
// evaluation) resolves through the Base chain, preserving the edges it
// had in its own version. The returned slice is shared and must not be
// mutated.
func (d *Document) LeafParents(n *dom.Node) []*dom.Node {
	if n.Kind != dom.Leaf {
		return nil
	}
	d.ensureLayout()
	for e := d; e != nil; e = e.Base {
		if n.Ord < len(e.Leaves) && e.Leaves[n.Ord] == n {
			return e.leafPar[n.Ord]
		}
	}
	return nil
}

// finishLayout computes the ordinal layout (OrdinalOf) from the
// registered hierarchies and leaf layer. When the layout is already
// current — a frozen document installs it eagerly at open, before the
// document is shared — the redundant store is skipped, so lazy leaf
// construction cannot race concurrent OrdinalOf/OrdinalSpace readers.
func (d *Document) finishLayout() {
	ordBase := make([]int, len(d.Hiers))
	ord := 1 // 0 is the shared root
	for i, h := range d.Hiers {
		ordBase[i] = ord
		ord += len(h.Nodes)
	}
	if ord == d.leafBase && len(ordBase) == len(d.ordBase) {
		same := true
		for i := range ordBase {
			if ordBase[i] != d.ordBase[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	d.ordBase = ordBase
	d.leafBase = ord
}

// partitionFrom computes the overlay's boundary array and leaf layer
// incrementally from the base document: the new hierarchy's boundaries
// split the base leaves, and each fragment inherits the covering base
// leaf's parent links plus the covering text node of the new hierarchy.
// This keeps an analyze-string overlay's cost proportional to the leaf
// count instead of re-deriving every hierarchy's text→leaf edges — the
// dominant cost of the paper's Query II/III evaluations. The result is
// field-for-field what partition would compute.
func (d *Document) partitionFrom(base *Document, h *Hierarchy) {
	// Sorted, deduplicated boundary offsets contributed by the new
	// hierarchy, merged with the base bounds (which already contain 0
	// and len(Text)).
	add := make([]int, 0, 2*len(h.Nodes))
	for _, n := range h.Nodes {
		add = append(add, n.Start, n.End)
	}
	sort.Ints(add)
	w := 0
	for i, b := range add {
		if i == 0 || b != add[w-1] {
			add[w] = b
			w++
		}
	}
	add = add[:w]

	bounds := make([]int, 0, len(base.Bounds)+len(add))
	i, j := 0, 0
	for i < len(base.Bounds) || j < len(add) {
		switch {
		case j == len(add) || (i < len(base.Bounds) && base.Bounds[i] < add[j]):
			bounds = append(bounds, base.Bounds[i])
			i++
		case i == len(base.Bounds) || add[j] < base.Bounds[i]:
			bounds = append(bounds, add[j])
			j++
		default:
			bounds = append(bounds, base.Bounds[i])
			i, j = i+1, j+1
		}
	}
	d.Bounds = bounds

	// Leaf layer: every new leaf lies inside exactly one base leaf (the
	// new bounds are a superset of the base bounds) and inherits its
	// parent links. Unsplit, uncovered leaves share the base parent
	// slice, which is never mutated after construction.
	d.Leaves = make([]*dom.Node, 0, len(bounds)-1)
	d.leafPar = make([][]*dom.Node, 0, len(bounds)-1)
	bi := 0
	for k := 0; k+1 < len(bounds); k++ {
		lo, hi := bounds[k], bounds[k+1]
		leaf := &dom.Node{
			Kind:      dom.Leaf,
			Data:      d.Text[lo:hi],
			Start:     lo,
			End:       hi,
			Ord:       k,
			Last:      k,
			HierIndex: dom.LeafHier,
		}
		for bi < len(base.Leaves) && base.Leaves[bi].End <= lo {
			bi++
		}
		var par []*dom.Node
		if bi < len(base.Leaves) && base.Leaves[bi].Start <= lo && hi <= base.Leaves[bi].End {
			par = base.leafPar[bi]
		}
		d.Leaves = append(d.Leaves, leaf)
		d.leafPar = append(d.leafPar, par)
	}

	// Text nodes of the new hierarchy adopt their covered fragments
	// (copy-on-append: the inherited slices stay shared with the base).
	for _, n := range h.Nodes {
		if n.Kind != dom.Text {
			continue
		}
		lo := sort.SearchInts(bounds, n.Start)
		hi := sort.SearchInts(bounds, n.End)
		for k := lo; k < hi; k++ {
			np := make([]*dom.Node, len(d.leafPar[k])+1)
			copy(np, d.leafPar[k])
			np[len(np)-1] = n
			d.leafPar[k] = np
		}
	}

	// Empty-span nodes: the base's plus the new hierarchy's, in the
	// same hierarchy-scan order partition produces.
	var newEmpties []*dom.Node
	for _, n := range h.Nodes {
		if n.Start >= n.End {
			newEmpties = append(newEmpties, n)
		}
	}
	d.empties = base.empties
	if len(newEmpties) > 0 {
		d.empties = make([]*dom.Node, 0, len(base.empties)+len(newEmpties))
		d.empties = append(append(d.empties, base.empties...), newEmpties...)
	}

	d.finishLayout()
	d.rootKids = make([]*dom.Node, 0, len(base.rootKids)+len(h.Top))
	d.rootKids = append(append(d.rootKids, base.rootKids...), h.Top...)
}

// LeafRange returns the half-open leaf-index interval [lo,hi) covered by
// the node, i.e. leaves(n) of the paper. Nodes without a base-text span
// (attributes, comments, constructed nodes) yield an empty interval.
func (d *Document) LeafRange(n *dom.Node) (lo, hi int) {
	switch n.Kind {
	case dom.Leaf:
		return n.Ord, n.Ord + 1
	case dom.Element, dom.Text:
		if n == d.Root {
			return 0, d.numLeaves()
		}
		if n.Hier == "" { // constructed node: no span in S
			return 0, 0
		}
		lo = sort.SearchInts(d.Bounds, n.Start)
		hi = sort.SearchInts(d.Bounds, n.End)
		return lo, hi
	}
	return 0, 0
}

// LeavesOf returns the leaves covered by a node, in text order.
func (d *Document) LeavesOf(n *dom.Node) []*dom.Node {
	d.ensureLayout()
	lo, hi := d.LeafRange(n)
	return d.Leaves[lo:hi]
}

// HierarchyByName returns the named hierarchy, or nil.
func (d *Document) HierarchyByName(name string) *Hierarchy {
	h := d.byName[name]
	if h != nil {
		// Callers walk h.Nodes directly; a frozen hierarchy materializes
		// here. (Existence probes on absent names stay free.)
		h.ensure()
	}
	return h
}

// HierarchyNames returns the registered hierarchy names in order.
func (d *Document) HierarchyNames() []string {
	out := make([]string, len(d.Hiers))
	for i, h := range d.Hiers {
		out[i] = h.Name
	}
	return out
}

// RootChildren assembles the child list of the shared root: the top-level
// nodes of every hierarchy in hierarchy order. (Root child edges are
// computed, not stored, so overlays can share the root node.)
func (d *Document) RootChildren() []*dom.Node {
	d.ensureLayout()
	return d.rootChildren()
}

// rootChildren is RootChildren without the materialization choke, for
// use inside the materialization itself (buildLeaves).
func (d *Document) rootChildren() []*dom.Node {
	var out []*dom.Node
	for _, h := range d.Hiers {
		out = append(out, h.Top...)
	}
	return out
}

// IsRoot reports whether n is the shared KyGODDAG root of this document.
func (d *Document) IsRoot(n *dom.Node) bool { return n == d.Root }

// Owns reports whether the node belongs to this document: the root, a
// node of a registered hierarchy, or one of this document's leaves.
func (d *Document) Owns(n *dom.Node) bool {
	if n == d.Root {
		return true
	}
	if n.Kind == dom.Leaf {
		return n.Ord < len(d.Leaves) && d.Leaves[n.Ord] == n
	}
	h, ok := d.byName[n.Hier]
	return ok && n.Ord < len(h.Nodes) && h.Nodes[n.Ord] == n
}

// AddHierarchy returns a new overlay Document extending d with one more
// hierarchy whose top-level element is top. The tree's Start/End spans
// must already be expressed in d.Text coordinates (it may cover only a
// sub-span of S, as the temporary hierarchies of analyze-string do). The
// base document is never mutated: hierarchies are shared, the boundary
// array and leaf layer are recomputed for the overlay.
func (d *Document) AddHierarchy(name string, top *dom.Node, temp bool) (*Document, error) {
	if name == "" {
		return nil, fmt.Errorf("core: empty hierarchy name")
	}
	if _, exists := d.byName[name]; exists {
		return nil, fmt.Errorf("core: hierarchy %q already registered", name)
	}
	if top == nil || top.Kind != dom.Element {
		return nil, fmt.Errorf("core: hierarchy %q: top node must be an element", name)
	}
	if top.Start < 0 || top.End > len(d.Text) || top.Start > top.End {
		return nil, fmt.Errorf("core: hierarchy %q: span [%d,%d) outside base text", name, top.Start, top.End)
	}
	// The overlay's partition is computed from the base's leaf layer.
	d.ensureLayout()
	nd := &Document{
		Text:   d.Text,
		Root:   d.Root,
		Base:   d,
		Rev:    d.Rev,
		byName: make(map[string]*Hierarchy, len(d.Hiers)+1),
		names:  make(map[string]int32, len(d.names)+4),
	}
	// Copy the base name table (never mutate it: the base document stays
	// live and may be queried concurrently) so shared nodes keep
	// consistent symbols in the overlay.
	for s, sym := range d.names {
		nd.names[s] = sym
	}
	nd.Hiers = append(nd.Hiers, d.Hiers...)
	h := &Hierarchy{Name: name, Index: len(nd.Hiers), Temp: temp, Top: []*dom.Node{top}}
	top.Parent = d.Root
	nd.indexHierarchy(h, h.Index)
	nd.Hiers = append(nd.Hiers, h)
	for _, hh := range nd.Hiers {
		nd.byName[hh.Name] = hh
	}
	nd.partitionFrom(d, h)
	return nd, nil
}

// Stats summarizes the KyGODDAG's composition (used by cmd/mhparse and
// the Figure 2 reproduction).
type Stats struct {
	Hierarchies int
	Elements    int
	Texts       int
	Leaves      int
	// LeafEdges counts text→leaf edges (a leaf contributes one edge per
	// hierarchy whose text covers it).
	LeafEdges int
	// TreeEdges counts parent→child edges within hierarchies plus the
	// root→top edges.
	TreeEdges int
}

// Stats computes composition statistics for the document.
func (d *Document) Stats() Stats {
	d.ensureLayout()
	var s Stats
	s.Hierarchies = len(d.Hiers)
	s.Leaves = len(d.Leaves)
	for _, h := range d.Hiers {
		s.TreeEdges += len(h.Top)
		for _, n := range h.Nodes {
			switch n.Kind {
			case dom.Element:
				s.Elements++
				s.TreeEdges += len(n.Children)
			case dom.Text:
				s.Texts++
			}
		}
	}
	for _, ps := range d.leafPar {
		s.LeafEdges += len(ps)
	}
	return s
}

// SortDoc sorts nodes in the Definition 3 document order and removes
// duplicates in place, returning the shortened slice. A strictly
// ascending input (the common case now that axis results carry order
// contracts) is detected in one O(k) pass and returned untouched.
func SortDoc(nodes []*dom.Node) []*dom.Node {
	ascending := true
	for i := 1; i < len(nodes); i++ {
		if dom.Compare(nodes[i-1], nodes[i]) >= 0 {
			ascending = false
			break
		}
	}
	if ascending {
		return nodes
	}
	sort.SliceStable(nodes, func(i, j int) bool { return dom.Compare(nodes[i], nodes[j]) < 0 })
	out := nodes[:0]
	var prev *dom.Node
	for _, n := range nodes {
		if n != prev {
			out = append(out, n)
		}
		prev = n
	}
	return out
}
