package core

import "sync/atomic"

// Process-wide instrumentation for the structural name index. The
// counters live here rather than on a Document because index builds
// happen lazily deep inside Hierarchy methods where no registry is in
// scope, and because "how many times did this process build an index"
// is exactly the question an operator asks when checking that the
// incremental-maintenance path (update.go) is carrying its weight
// against full rebuilds. The collection layer samples these through
// obs.CounterFunc at scrape time; updates are single atomic adds so the
// lazy-build fast path stays uncontended.
var (
	indexBuilds     atomic.Uint64 // from-scratch rebuildRuns builds
	indexBuildNanos atomic.Int64  // wall time spent in those builds
	indexPatched    atomic.Uint64 // update runs that patched an index incrementally
	indexLazyReset  atomic.Uint64 // update runs that deferred to a fresh lazy build

	// The path synopsis (synopsis.go) mirrors the name index's
	// lifecycle, so it gets the same four counters.
	synopsisBuilds     atomic.Uint64
	synopsisBuildNanos atomic.Int64
	synopsisPatched    atomic.Uint64
	synopsisLazyReset  atomic.Uint64
)

// IndexStats is a snapshot of the process-wide name-index counters.
type IndexStats struct {
	// Builds counts from-scratch index builds (lazy first-touch builds
	// and oracle rebuilds alike).
	Builds uint64
	// BuildNanos is the cumulative wall time of those builds.
	BuildNanos int64
	// Patched counts hierarchies whose index an update maintained
	// incrementally instead of discarding.
	Patched uint64
	// LazyReset counts hierarchies whose index an update discarded,
	// deferring to a fresh lazy build on next query.
	LazyReset uint64
	// SynopsisBuilds/SynopsisBuildNanos/SynopsisPatched/SynopsisLazyReset
	// are the same four counters for the path synopsis.
	SynopsisBuilds     uint64
	SynopsisBuildNanos int64
	SynopsisPatched    uint64
	SynopsisLazyReset  uint64
}

// GlobalIndexStats returns the current process-wide name-index
// counters. Values are monotonic for the life of the process.
func GlobalIndexStats() IndexStats {
	return IndexStats{
		Builds:             indexBuilds.Load(),
		BuildNanos:         indexBuildNanos.Load(),
		Patched:            indexPatched.Load(),
		LazyReset:          indexLazyReset.Load(),
		SynopsisBuilds:     synopsisBuilds.Load(),
		SynopsisBuildNanos: synopsisBuildNanos.Load(),
		SynopsisPatched:    synopsisPatched.Load(),
		SynopsisLazyReset:  synopsisLazyReset.Load(),
	}
}
