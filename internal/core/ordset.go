package core

import "mhxquery/internal/dom"

// OrdinalSet is a reusable scatter buffer over a document's ordinal
// space (OrdinalOf): nodes are slotted by ordinal, which sorts and
// deduplicates a node set in O(k + range) array writes — no comparator,
// no hashing. It replaces comparison sorting in the query evaluator's
// step pipeline whenever every node carries a document ordinal.
//
// The zero value is ready for use; Reset binds it to a document. An
// OrdinalSet is not safe for concurrent use (the evaluator owns one per
// evaluation).
type OrdinalSet struct {
	doc      *Document
	slots    []*dom.Node
	min, max int
	n        int
}

// Reset binds the set to d and empties it. The slot array is grown as
// needed and kept across calls, so steady-state inserts allocate
// nothing.
func (s *OrdinalSet) Reset(d *Document) {
	if space := d.OrdinalSpace(); len(s.slots) < space {
		s.slots = make([]*dom.Node, space)
	}
	s.doc = d
	s.min, s.max = len(s.slots), -1
	s.n = 0
}

// Add slots n by its document ordinal, deduplicating by node identity.
// It reports false — leaving the set unchanged — when n has no ordinal
// in the bound document (attributes, constructed nodes, nodes of other
// documents); the caller then falls back to comparison sorting after
// Clear.
func (s *OrdinalSet) Add(node *dom.Node) bool {
	ord, ok := s.doc.OrdinalOf(node)
	if !ok {
		return false
	}
	if s.slots[ord] == nil {
		s.slots[ord] = node
		s.n++
		if ord < s.min {
			s.min = ord
		}
		if ord > s.max {
			s.max = ord
		}
	}
	return true
}

// Len returns the number of distinct nodes in the set.
func (s *OrdinalSet) Len() int { return s.n }

// Drain calls fn for every node in ascending document order and empties
// the set.
func (s *OrdinalSet) Drain(fn func(*dom.Node)) {
	for ord := s.min; ord <= s.max; ord++ {
		if node := s.slots[ord]; node != nil {
			s.slots[ord] = nil
			fn(node)
		}
	}
	s.min, s.max = len(s.slots), -1
	s.n = 0
}

// Clear empties the set without draining it (the bail-out path when an
// Add failed partway through a batch).
func (s *OrdinalSet) Clear() {
	for ord := s.min; ord <= s.max; ord++ {
		s.slots[ord] = nil
	}
	s.min, s.max = len(s.slots), -1
	s.n = 0
}
