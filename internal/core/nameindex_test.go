package core

import (
	"fmt"
	"sync"
	"testing"

	"mhxquery/internal/dom"
	"mhxquery/internal/xmlparse"
)

func nameIndexDoc(t *testing.T) *Document {
	t.Helper()
	trees := []NamedTree{}
	for name, xml := range map[string]string{
		"phys": `<r><pg>ab cd</pg><pg> ef</pg></r>`,
		"str":  `<r><w>ab</w> <w>cd</w> <w>ef</w></r>`,
	} {
		root, err := xmlparse.Parse(xml, xmlparse.Options{})
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, NamedTree{Name: name, Root: root})
	}
	// Map iteration order is random; normalize to phys-first.
	if trees[0].Name != "phys" {
		trees[0], trees[1] = trees[1], trees[0]
	}
	d, err := Build(trees)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestNameRunMatchesScan checks, for every name of every hierarchy, that
// the index run is exactly the ascending ordinals of the elements a full
// scan finds.
func TestNameRunMatchesScan(t *testing.T) {
	d := nameIndexDoc(t)
	for _, h := range d.Hiers {
		want := map[int32][]int32{}
		for _, n := range h.Nodes {
			if n.Kind == dom.Element && n.NameSym != 0 {
				want[n.NameSym] = append(want[n.NameSym], int32(n.Ord))
			}
		}
		for sym, run := range want {
			got := h.NameRun(sym)
			if fmt.Sprint(got) != fmt.Sprint(run) {
				t.Errorf("%s: sym %d: run %v, want %v", h.Name, sym, got, run)
			}
		}
	}
	if h := d.Hiers[0]; h.NameRun(0) != nil {
		t.Error("NameRun(0) must be nil")
	}
	if h := d.Hiers[0]; len(h.NameRun(9999)) != 0 {
		t.Error("NameRun of an absent symbol must be empty")
	}
}

func TestSubRun(t *testing.T) {
	run := []int32{1, 4, 6, 9}
	cases := []struct {
		after, upTo int
		want        string
	}{
		{0, 10, "[1 4 6 9]"},
		{1, 9, "[4 6 9]"},
		{1, 8, "[4 6]"},
		{4, 5, "[]"},
		{9, 20, "[]"},
		{-1, 0, "[]"},
	}
	for _, c := range cases {
		if got := fmt.Sprint(SubRun(run, c.after, c.upTo)); got != c.want {
			t.Errorf("SubRun(%d,%d) = %s, want %s", c.after, c.upTo, got, c.want)
		}
	}
}

// TestNameIndexSharedWithOverlay checks that an overlay document reuses
// the base hierarchies' indexes (same run slices) and that the new
// hierarchy gets its own.
func TestNameIndexSharedWithOverlay(t *testing.T) {
	d := nameIndexDoc(t)
	sym := d.NameSymOf("w")
	baseRun := d.HierarchyByName("str").NameRun(sym)
	top := dom.NewElement("res")
	top.Start, top.End = 0, len(d.Text)
	od, err := d.AddHierarchy("rest", top, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := od.HierarchyByName("str").NameRun(sym); len(got) != len(baseRun) || &got[0] != &baseRun[0] {
		t.Error("overlay does not share the base hierarchy's index run")
	}
	if osym := od.NameSymOf("res"); len(od.HierarchyByName("rest").NameRun(osym)) != 1 {
		t.Error("overlay hierarchy's own index missing the new element")
	}
}

// TestNameRunConcurrent builds the lazy index from many goroutines at
// once; run with -race this verifies the sync.Once guard.
func TestNameRunConcurrent(t *testing.T) {
	d := nameIndexDoc(t)
	sym := d.NameSymOf("w")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if got := d.HierarchyByName("str").NameRun(sym); len(got) != 3 {
					t.Errorf("run length %d, want 3", len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSignature(t *testing.T) {
	d := nameIndexDoc(t)
	if got, want := d.Signature(), "phys\x1fstr"; got != want {
		t.Fatalf("Signature = %q, want %q", got, want)
	}
	top := dom.NewElement("res")
	top.Start, top.End = 0, len(d.Text)
	od, err := d.AddHierarchy("rest", top, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := od.Signature(), "phys\x1fstr\x1frest\x01"; got != want {
		t.Fatalf("overlay Signature = %q, want %q", got, want)
	}
}
