package core

import "mhxquery/internal/dom"

// This file contains a literal, set-based implementation of the extended
// axes, transcribing Definition 1 of the paper with explicit leaf sets
// and min/max over the leaf order. It is deliberately naive — leaves(x)
// is materialized as a map by graph traversal, subset/intersection tests
// are element-wise — and exists for two purposes: (i) property-based
// tests validate the fast interval implementation in axes.go against it,
// and (ii) the ablation benchmarks (EXPERIMENTS.md table P2) quantify
// what the interval representation buys.

// LeafSetRef computes leaves(x) by traversal: the leaves reachable from x
// through child edges and text→leaf edges (never via the interval index).
func (d *Document) LeafSetRef(n *dom.Node) map[*dom.Node]bool {
	d.ensureLayout()
	set := make(map[*dom.Node]bool)
	switch {
	case n == d.Root:
		for _, l := range d.Leaves {
			set[l] = true
		}
	case n.Kind == dom.Leaf:
		if d.Owns(n) {
			set[n] = true
		}
	case n.Kind == dom.Text:
		d.leavesOfTextRef(n, set)
	case n.Kind == dom.Element:
		var walk func(x *dom.Node)
		walk = func(x *dom.Node) {
			if x.Kind == dom.Text {
				d.leavesOfTextRef(x, set)
			}
			for _, c := range x.Children {
				walk(c)
			}
		}
		walk(n)
	}
	return set
}

// leavesOfTextRef collects the leaves whose stored parent edges include t.
func (d *Document) leavesOfTextRef(t *dom.Node, set map[*dom.Node]bool) {
	for i, l := range d.Leaves {
		for _, p := range d.leafPar[i] {
			if p == t {
				set[l] = true
			}
		}
	}
}

func subsetRef(a, b map[*dom.Node]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func intersectsRef(a, b map[*dom.Node]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// minMaxRef returns the minimum and maximum leaf (by the leaf linear
// order) of a leaf set, with ok=false for the empty set.
func minMaxRef(set map[*dom.Node]bool) (lo, hi int, ok bool) {
	first := true
	for l := range set {
		if first {
			lo, hi, first = l.Ord, l.Ord, false
			continue
		}
		if l.Ord < lo {
			lo = l.Ord
		}
		if l.Ord > hi {
			hi = l.Ord
		}
	}
	return lo, hi, !first
}

// descendantSetRef computes descendant(n) ∪ {n} by traversal within n's
// hierarchy, including leaves reached through its text nodes.
func (d *Document) descendantSetRef(n *dom.Node) map[*dom.Node]bool {
	set := map[*dom.Node]bool{n: true}
	if n == d.Root {
		for _, h := range d.Hiers {
			for _, m := range h.Nodes {
				set[m] = true
			}
		}
		for _, l := range d.Leaves {
			set[l] = true
		}
		return set
	}
	var walk func(x *dom.Node)
	walk = func(x *dom.Node) {
		set[x] = true
		if x.Kind == dom.Text {
			d.leavesOfTextRef(x, set)
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	if n.Kind == dom.Element || n.Kind == dom.Text {
		walk(n)
	}
	return set
}

// ancestorSetRef computes ancestor(n) ∪ {n} by walking parent edges; for a
// leaf all stored hierarchy parents are followed.
func (d *Document) ancestorSetRef(n *dom.Node) map[*dom.Node]bool {
	set := map[*dom.Node]bool{n: true}
	if n.Kind == dom.Leaf {
		for _, p := range d.LeafParents(n) {
			for q := p; q != nil; q = q.Parent {
				set[q] = true
			}
		}
		set[d.Root] = true
		return set
	}
	for q := n.Parent; q != nil; q = q.Parent {
		set[q] = true
	}
	if n != d.Root {
		set[d.Root] = true
	}
	return set
}

// EvalRef evaluates an extended axis by the literal Definition 1
// semantics. Standard axes are delegated to Eval. Result order matches
// Eval (document order; reversed for reverse axes).
func (d *Document) EvalRef(a Axis, n *dom.Node) []*dom.Node {
	d.ensureLayout()
	if !a.Extended() {
		return d.Eval(a, n)
	}
	if !d.spanNode(n) {
		return nil
	}
	ln := d.LeafSetRef(n)
	minN, maxN, okN := minMaxRef(ln)
	desc := d.descendantSetRef(n)
	anc := d.ancestorSetRef(n)

	pred := func(m *dom.Node) bool {
		lm := d.LeafSetRef(m)
		minM, maxM, okM := minMaxRef(lm)
		switch a {
		case AxisXAncestor:
			return !desc[m] && subsetRef(ln, lm)
		case AxisXDescendant:
			return !anc[m] && subsetRef(lm, ln)
		case AxisXFollowing:
			return okN && okM && maxN < minM
		case AxisXPreceding:
			return okN && okM && minN > maxM
		case AxisPrecedingOverlapping:
			return okN && okM && intersectsRef(ln, lm) &&
				minM < minN && minN <= maxM && maxN > maxM
		case AxisFollowingOverlapping:
			return okN && okM && intersectsRef(ln, lm) &&
				minM <= maxN && maxN < maxM && minN < minM
		case AxisOverlapping:
			if !okN || !okM || !intersectsRef(ln, lm) {
				return false
			}
			return (minM < minN && minN <= maxM && maxN > maxM) ||
				(minM <= maxN && maxN < maxM && minN < minM)
		}
		return false
	}

	var out []*dom.Node
	if pred(d.Root) {
		out = append(out, d.Root)
	}
	for _, h := range d.Hiers {
		for _, m := range h.Nodes {
			if pred(m) {
				out = append(out, m)
			}
		}
	}
	for _, l := range d.Leaves {
		if pred(l) {
			out = append(out, l)
		}
	}
	if a.Reverse() {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}
