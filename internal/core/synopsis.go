package core

// This file wires the path synopsis (internal/synopsis) into the
// hierarchy lifecycle, mirroring the structural name index exactly:
// built lazily under a sync.Once on first use, installed eagerly when a
// slab image persisted it, patched incrementally across copy-on-write
// update versions, and rebuilt from scratch as the differential oracle
// the property tests compare against. An installed tree is shared
// between document versions and must never be mutated; the update
// engine patches a private Clone.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mhxquery/internal/dom"
	"mhxquery/internal/synopsis"
)

// synIndex is the lazily built synopsis slot of a Hierarchy — the same
// once/built discipline as nameIndex, for the same reason: overlay
// documents share Hierarchy values with their base, so unsynchronized
// lazy initialization would race.
type synIndex struct {
	once sync.Once
	tree *synopsis.Tree
	// built flips to true (inside the Once) when tree is installed, so
	// the update engine and the planner can peek at a possibly unbuilt
	// synopsis without forcing a build.
	built atomic.Bool
}

func (sx *synIndex) build(h *Hierarchy) {
	start := time.Now()
	sx.tree = synopsis.Build(h.Top)
	synopsisBuilds.Add(1)
	synopsisBuildNanos.Add(int64(time.Since(start)))
	sx.built.Store(true)
}

// snapshot returns the tree if the synopsis has been built, else nil.
func (sx *synIndex) snapshot() *synopsis.Tree {
	if sx.built.Load() {
		return sx.tree
	}
	return nil
}

// install seeds the slot with an already-computed tree (a persisted
// slab section, or the incrementally patched synopsis of a new
// version). A no-op if the synopsis was somehow built first.
func (sx *synIndex) install(t *synopsis.Tree) {
	sx.once.Do(func() {
		sx.tree = t
		sx.built.Store(true)
	})
}

// Synopsis returns the hierarchy's path synopsis, building it from the
// node storage on first use. An installed synopsis (persisted image or
// patched update) is returned without materializing a frozen
// hierarchy's nodes. The returned tree is shared and must not be
// mutated.
func (h *Hierarchy) Synopsis() *synopsis.Tree {
	if t := h.syn.snapshot(); t != nil {
		return t
	}
	h.ensure()
	h.syn.once.Do(func() { h.syn.build(h) })
	return h.syn.tree
}

// SynopsisSnapshot returns the synopsis only if it is already built or
// installed, else nil — never materializing node storage. This is the
// planner's view: estimation is best-effort and must not force a frozen
// document to materialize at plan time.
func (h *Hierarchy) SynopsisSnapshot() *synopsis.Tree { return h.syn.snapshot() }

// RebuildSynopsis recomputes the synopsis from scratch, ignoring any
// built (or incrementally maintained) state — the oracle the
// differential property tests compare Synopsis against.
func (h *Hierarchy) RebuildSynopsis() *synopsis.Tree {
	h.ensure()
	return synopsis.Build(h.Top)
}

// maintainSynopsis carries h's synopsis across one applyToHierarchy:
// given the set of old-version parent ordinals whose child lists
// changed, the new version's synopsis is the old one with each region's
// old contribution subtracted and its new contribution added. An
// unbuilt synopsis has nothing to maintain (stays lazy). Root-level
// child changes (edits targeting top-level nodes) patch the tree-level
// region — the whole top list — which subsumes every nested region.
func maintainSynopsis(d *Document, h, h2 *Hierarchy, nodes []*dom.Node, dirty map[int]bool, rootDirty bool, st *UpdateStats) {
	oldSyn := h.syn.snapshot()
	switch {
	case oldSyn == nil:
		st.SynopsesLazy++
		synopsisLazyReset.Add(1)
		return
	case rootDirty:
		tree := oldSyn.Clone()
		if !tree.PatchRegion(nil, h.Top, h2.Top) {
			st.SynopsesLazy++
			synopsisLazyReset.Add(1)
			return
		}
		h2.syn.install(tree)
		st.SynopsesPatched++
		synopsisPatched.Add(1)
		return
	case len(dirty) == 0:
		// Structure untouched (spans/text content only): the synopsis is
		// identical and shared with the previous version.
		h2.syn.install(oldSyn)
		st.SynopsesPatched++
		synopsisPatched.Add(1)
		return
	}
	// Reduce the dirty parents to topmost disjoint regions of the OLD
	// tree. Preorder subtree intervals are nested or disjoint, so one
	// ascending pass suffices. A topmost dirty node is provably neither
	// renamed, deleted nor moved by the batch (any of those would have
	// marked its own parent dirty), so its rooted label path is the same
	// in both versions and its positional copy nodes[ord] is its new
	// self.
	ords := make([]int, 0, len(dirty))
	for o := range dirty {
		ords = append(ords, o)
	}
	sort.Ints(ords)
	tree := oldSyn.Clone()
	ok := true
	last := -1
	for _, o := range ords {
		if o <= last {
			continue // nested inside the previous region
		}
		p := h.Nodes[o]
		last = p.Last
		var path []int32
		for n := p; n != nil && n != d.Root; n = n.Parent {
			path = append(path, 0)
			copy(path[1:], path)
			path[0] = n.NameSym
		}
		if !tree.PatchRegion(path, p.Children, nodes[o].Children) {
			ok = false
			break
		}
	}
	if !ok {
		st.SynopsesLazy++
		synopsisLazyReset.Add(1)
		return
	}
	h2.syn.install(tree)
	st.SynopsesPatched++
	synopsisPatched.Add(1)
}
