package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
	"mhxquery/internal/xmlparse"
)

func parseXML(s string) (*dom.Node, error) {
	return xmlparse.Parse(s, xmlparse.Options{})
}

// buildRandom builds a small random multihierarchical document:
// hierarchy A tiles the text with <seg> elements, B wraps random spans in
// <mark>, C wraps random spans in <note>. Spans are arbitrary, so every
// overlap configuration occurs.
func buildRandom(seed int64) (*core.Document, error) {
	r := rand.New(rand.NewSource(seed))
	textLen := 8 + r.Intn(24)
	var sb strings.Builder
	for i := 0; i < textLen; i++ {
		sb.WriteByte(byte('a' + r.Intn(4)))
	}
	text := sb.String()

	tile := func(tag string) string {
		var b strings.Builder
		b.WriteString("<r>")
		pos := 0
		for pos < len(text) {
			end := pos + 1 + r.Intn(6)
			if end > len(text) {
				end = len(text)
			}
			fmt.Fprintf(&b, "<%s>%s</%s>", tag, text[pos:end], tag)
			pos = end
		}
		b.WriteString("</r>")
		return b.String()
	}
	spans := func(tag string) string {
		var b strings.Builder
		b.WriteString("<r>")
		pos := 0
		for pos < len(text) {
			if r.Intn(3) == 0 {
				end := pos + 1 + r.Intn(7)
				if end > len(text) {
					end = len(text)
				}
				fmt.Fprintf(&b, "<%s>%s</%s>", tag, text[pos:end], tag)
				pos = end
				continue
			}
			end := pos + 1 + r.Intn(4)
			if end > len(text) {
				end = len(text)
			}
			b.WriteString(text[pos:end])
			pos = end
		}
		b.WriteString("</r>")
		return b.String()
	}
	ra, err := parseXML(tile("seg"))
	if err != nil {
		return nil, err
	}
	rb, err := parseXML(spans("mark"))
	if err != nil {
		return nil, err
	}
	rc, err := parseXML(spans("note"))
	if err != nil {
		return nil, err
	}
	return core.Build([]core.NamedTree{
		{Name: "A", Root: ra},
		{Name: "B", Root: rb},
		{Name: "C", Root: rc},
	})
}

func allNodesOf(d *core.Document) []*dom.Node {
	out := []*dom.Node{d.Root}
	for _, h := range d.Hiers {
		out = append(out, h.Nodes...)
	}
	out = append(out, d.Leaves...)
	return out
}

var extendedAxes = []core.Axis{
	core.AxisXAncestor, core.AxisXDescendant, core.AxisXFollowing,
	core.AxisXPreceding, core.AxisPrecedingOverlapping,
	core.AxisFollowingOverlapping, core.AxisOverlapping,
}

// TestQuickAxesMatchReference is the central property test: for random
// documents, all three implementations of every extended axis — the
// indexed default (Eval), the O(N) interval scan (EvalScan) and the
// literal set-based transcription of Definition 1 (EvalRef) — agree
// exactly, members and order.
func TestQuickAxesMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		for _, n := range allNodesOf(d) {
			for _, ax := range extendedAxes {
				fast := d.Eval(ax, n)
				scan := d.EvalScan(ax, n)
				ref := d.EvalRef(ax, n)
				if len(fast) != len(ref) || len(scan) != len(ref) {
					t.Logf("seed %d: %s(%s %q): indexed %d / scan %d / ref %d nodes",
						seed, ax, n.Kind, n.TextContent(), len(fast), len(scan), len(ref))
					return false
				}
				for i := range fast {
					if fast[i] != ref[i] || scan[i] != ref[i] {
						t.Logf("seed %d: %s(%s %q): order mismatch at %d",
							seed, ax, n.Kind, n.TextContent(), i)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPartitionInvariants checks the leaf-partition invariants on
// random documents: bounds strictly sorted, leaves concatenate to S,
// every text node's leaves concatenate to its content, every leaf has one
// parent per covering hierarchy.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		for i := 1; i < len(d.Bounds); i++ {
			if d.Bounds[i-1] >= d.Bounds[i] {
				t.Logf("seed %d: bounds not strictly sorted", seed)
				return false
			}
		}
		var sb strings.Builder
		for _, l := range d.Leaves {
			sb.WriteString(l.Data)
		}
		if sb.String() != d.Text {
			t.Logf("seed %d: leaves do not concatenate to S", seed)
			return false
		}
		for _, h := range d.Hiers {
			for _, n := range h.Nodes {
				if n.Kind != dom.Text {
					continue
				}
				var tb strings.Builder
				for _, l := range d.LeavesOf(n) {
					tb.WriteString(l.Data)
				}
				if tb.String() != n.Data {
					t.Logf("seed %d: text node leaves mismatch", seed)
					return false
				}
			}
		}
		for _, l := range d.Leaves {
			seen := map[string]bool{}
			for _, p := range d.LeafParents(l) {
				if p.Kind != dom.Text || seen[p.Hier] {
					t.Logf("seed %d: bad leaf parents", seed)
					return false
				}
				seen[p.Hier] = true
				if !(p.Start <= l.Start && l.End <= p.End) {
					t.Logf("seed %d: leaf parent does not cover leaf", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickLeafRangeMatchesLeafSet checks interval leaves(x) == traversal
// leaves(x) for every node.
func TestQuickLeafRangeMatchesLeafSet(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		for _, n := range allNodesOf(d) {
			lo, hi := d.LeafRange(n)
			ref := d.LeafSetRef(n)
			if hi-lo != len(ref) {
				t.Logf("seed %d: leaf range size %d vs set %d for %s", seed, hi-lo, len(ref), n.Kind)
				return false
			}
			for i := lo; i < hi; i++ {
				if !ref[d.Leaves[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickOrderIsTotal checks Definition 3's order is a strict total
// order over the node set.
func TestQuickOrderIsTotal(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		nodes := allNodesOf(d)
		for i, a := range nodes {
			for j, b := range nodes {
				c := dom.Compare(a, b)
				switch {
				case i == j && c != 0:
					return false
				case i != j && c == 0:
					t.Logf("seed %d: distinct nodes compare equal", seed)
					return false
				case c != -dom.Compare(b, a):
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickOverlayPreservesBase checks that adding a temporary hierarchy
// never changes any axis result computed against the base document.
func TestQuickOverlayPreservesBase(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		// Snapshot some axis results.
		type key struct {
			n  *dom.Node
			ax core.Axis
		}
		snap := map[key][]*dom.Node{}
		nodes := allNodesOf(d)
		for _, n := range nodes {
			for _, ax := range extendedAxes {
				snap[key{n, ax}] = d.Eval(ax, n)
			}
		}
		// Create an overlay over a random sub-span.
		r := rand.New(rand.NewSource(seed ^ 0x5a5a))
		if len(d.Text) < 2 {
			return true
		}
		s := r.Intn(len(d.Text) - 1)
		e := s + 1 + r.Intn(len(d.Text)-s-1)
		top := dom.NewElement("res")
		top.Start, top.End = s, e
		txt := dom.NewText(d.Text[s:e])
		txt.Start, txt.End = s, e
		top.AppendChild(txt)
		od, err := d.AddHierarchy("rest", top, true)
		if err != nil {
			t.Logf("seed %d: overlay: %v", seed, err)
			return false
		}
		_ = od
		// Base results unchanged.
		for _, n := range nodes {
			for _, ax := range extendedAxes {
				after := d.Eval(ax, n)
				before := snap[key{n, ax}]
				if len(after) != len(before) {
					return false
				}
				for i := range after {
					if after[i] != before[i] {
						return false
					}
				}
			}
		}
		// Overlay agrees with its own reference implementation too.
		for _, n := range allNodesOf(od) {
			for _, ax := range extendedAxes {
				fast := od.Eval(ax, n)
				ref := od.EvalRef(ax, n)
				if len(fast) != len(ref) {
					t.Logf("seed %d: overlay %s mismatch", seed, ax)
					return false
				}
				for i := range fast {
					if fast[i] != ref[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

var allAxes = []core.Axis{
	core.AxisChild, core.AxisDescendant, core.AxisDescendantOrSelf,
	core.AxisParent, core.AxisAncestor, core.AxisAncestorOrSelf,
	core.AxisFollowing, core.AxisPreceding, core.AxisFollowingSibling,
	core.AxisPrecedingSibling, core.AxisSelf, core.AxisAttribute,
	core.AxisXDescendant, core.AxisXAncestor, core.AxisXFollowing,
	core.AxisXPreceding, core.AxisPrecedingOverlapping,
	core.AxisFollowingOverlapping, core.AxisOverlapping,
}

// TestQuickAxisOrderContracts checks the order contract the query
// pipeline builds on: for every axis and every node of random documents,
// Eval emits a duplicate-free result that is strictly ascending
// (EmitsDocOrder) or strictly descending (EmitsReverseDocOrder) in the
// Definition 3 document order.
func TestQuickAxisOrderContracts(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		for _, n := range allNodesOf(d) {
			for _, ax := range allAxes {
				res := d.Eval(ax, n)
				want := -1 // strictly ascending
				if ax.Order() == core.EmitsReverseDocOrder {
					want = 1 // strictly descending
				}
				for i := 1; i < len(res); i++ {
					if c := dom.Compare(res[i-1], res[i]); c == 0 || (c > 0) != (want > 0) {
						t.Logf("seed %d: %s(%s) violates order contract at %d (cmp=%d)",
							seed, ax, n.Kind, i, c)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickOrdinalIdentity checks OrdinalOf: a dense bijection over
// root + hierarchy nodes + leaves that is monotone in the Definition 3
// order, with attributes and foreign nodes excluded.
func TestQuickOrdinalIdentity(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		nodes := allNodesOf(d) // already root, hiers in order, leaves
		if len(nodes) != d.OrdinalSpace() {
			t.Logf("seed %d: %d nodes but ordinal space %d", seed, len(nodes), d.OrdinalSpace())
			return false
		}
		prev := -1
		for _, n := range nodes {
			ord, ok := d.OrdinalOf(n)
			if !ok {
				t.Logf("seed %d: node without ordinal", seed)
				return false
			}
			if ord <= prev || ord >= d.OrdinalSpace() {
				t.Logf("seed %d: ordinal %d not monotone/dense after %d", seed, ord, prev)
				return false
			}
			prev = ord
			for _, a := range n.Attrs {
				if _, ok := d.OrdinalOf(a); ok {
					t.Logf("seed %d: attribute has an ordinal", seed)
					return false
				}
			}
		}
		// Foreign nodes (same shape, different document) have none.
		d2, err := buildRandom(seed)
		if err != nil {
			return false
		}
		for _, n := range allNodesOf(d2) {
			if n == d2.Root {
				continue
			}
			if _, ok := d.OrdinalOf(n); ok {
				t.Logf("seed %d: foreign node got an ordinal", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickOrdinalSetMatchesSortDoc checks that the ordinal scatter set
// sorts and deduplicates exactly like SortDoc for ordinal-able nodes.
func TestQuickOrdinalSetMatchesSortDoc(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed ^ 0x0ddba11))
		nodes := allNodesOf(d)
		sample := make([]*dom.Node, 0, 40)
		for i := 0; i < 40; i++ {
			sample = append(sample, nodes[r.Intn(len(nodes))]) // duplicates likely
		}
		var os core.OrdinalSet
		os.Reset(d)
		for _, n := range sample {
			if !os.Add(n) {
				return false
			}
		}
		var got []*dom.Node
		os.Drain(func(n *dom.Node) { got = append(got, n) })
		want := core.SortDoc(append([]*dom.Node(nil), sample...))
		if len(got) != len(want) {
			t.Logf("seed %d: ordinal set %d nodes, SortDoc %d", seed, len(got), len(want))
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Reusable: a second batch on the drained set must work.
		os.Reset(d)
		if !os.Add(d.Root) || os.Len() != 1 {
			return false
		}
		os.Clear()
		return os.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickOverlayPartitionIncremental checks that the incremental
// overlay partition (partitionFrom) is field-for-field what the full
// recompute produces: bounds, leaf layer, parent links, empties and
// ordinal layout.
func TestQuickOverlayPartitionIncremental(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		if len(d.Text) < 2 {
			return true
		}
		r := rand.New(rand.NewSource(seed ^ 0x1ea5))
		s := r.Intn(len(d.Text) - 1)
		e := s + 1 + r.Intn(len(d.Text)-s-1)
		top := dom.NewElement("res")
		top.Start, top.End = s, e
		mid := s + (e-s)/2
		t1 := dom.NewText(d.Text[s:mid])
		t1.Start, t1.End = s, mid
		t2 := dom.NewText(d.Text[mid:e])
		t2.Start, t2.End = mid, e
		top.AppendChild(t1)
		top.AppendChild(t2)
		od, err := d.AddHierarchy("rest", top, true)
		if err != nil {
			t.Logf("seed %d: overlay: %v", seed, err)
			return false
		}
		type leafShape struct {
			start, end int
			data       string
			parents    string
		}
		shape := func(doc *core.Document) (bounds []int, leaves []leafShape) {
			bounds = append(bounds, doc.Bounds...)
			for _, l := range doc.Leaves {
				var p strings.Builder
				for _, q := range doc.LeafParents(l) {
					fmt.Fprintf(&p, "%s:%d;", q.Hier, q.Ord)
				}
				leaves = append(leaves, leafShape{l.Start, l.End, l.Data, p.String()})
			}
			return
		}
		gotB, gotL := shape(od)
		od.RecomputePartitionForTest()
		wantB, wantL := shape(od)
		if fmt.Sprint(gotB) != fmt.Sprint(wantB) || fmt.Sprint(gotL) != fmt.Sprint(wantL) {
			t.Logf("seed %d: incremental partition differs from full recompute", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGeneratedCorpusAxesAgree runs the fast-vs-reference check on one
// realistic generated manuscript (all four hierarchy shapes).
func TestGeneratedCorpusAxesAgree(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 7, Words: 40})
	d, err := c.Document()
	if err != nil {
		t.Fatal(err)
	}
	nodes := allNodesOf(d)
	for _, n := range nodes[:min(len(nodes), 150)] {
		for _, ax := range extendedAxes {
			fast := d.Eval(ax, n)
			ref := d.EvalRef(ax, n)
			if len(fast) != len(ref) {
				t.Fatalf("%s(%s): fast %d vs ref %d", ax, n.Kind, len(fast), len(ref))
			}
			for i := range fast {
				if fast[i] != ref[i] {
					t.Fatalf("%s: order mismatch", ax)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
