package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
	"mhxquery/internal/xmlparse"
)

func parseXML(s string) (*dom.Node, error) {
	return xmlparse.Parse(s, xmlparse.Options{})
}

// buildRandom builds a small random multihierarchical document:
// hierarchy A tiles the text with <seg> elements, B wraps random spans in
// <mark>, C wraps random spans in <note>. Spans are arbitrary, so every
// overlap configuration occurs.
func buildRandom(seed int64) (*core.Document, error) {
	r := rand.New(rand.NewSource(seed))
	textLen := 8 + r.Intn(24)
	var sb strings.Builder
	for i := 0; i < textLen; i++ {
		sb.WriteByte(byte('a' + r.Intn(4)))
	}
	text := sb.String()

	tile := func(tag string) string {
		var b strings.Builder
		b.WriteString("<r>")
		pos := 0
		for pos < len(text) {
			end := pos + 1 + r.Intn(6)
			if end > len(text) {
				end = len(text)
			}
			fmt.Fprintf(&b, "<%s>%s</%s>", tag, text[pos:end], tag)
			pos = end
		}
		b.WriteString("</r>")
		return b.String()
	}
	spans := func(tag string) string {
		var b strings.Builder
		b.WriteString("<r>")
		pos := 0
		for pos < len(text) {
			if r.Intn(3) == 0 {
				end := pos + 1 + r.Intn(7)
				if end > len(text) {
					end = len(text)
				}
				fmt.Fprintf(&b, "<%s>%s</%s>", tag, text[pos:end], tag)
				pos = end
				continue
			}
			end := pos + 1 + r.Intn(4)
			if end > len(text) {
				end = len(text)
			}
			b.WriteString(text[pos:end])
			pos = end
		}
		b.WriteString("</r>")
		return b.String()
	}
	ra, err := parseXML(tile("seg"))
	if err != nil {
		return nil, err
	}
	rb, err := parseXML(spans("mark"))
	if err != nil {
		return nil, err
	}
	rc, err := parseXML(spans("note"))
	if err != nil {
		return nil, err
	}
	return core.Build([]core.NamedTree{
		{Name: "A", Root: ra},
		{Name: "B", Root: rb},
		{Name: "C", Root: rc},
	})
}

func allNodesOf(d *core.Document) []*dom.Node {
	out := []*dom.Node{d.Root}
	for _, h := range d.Hiers {
		out = append(out, h.Nodes...)
	}
	out = append(out, d.Leaves...)
	return out
}

var extendedAxes = []core.Axis{
	core.AxisXAncestor, core.AxisXDescendant, core.AxisXFollowing,
	core.AxisXPreceding, core.AxisPrecedingOverlapping,
	core.AxisFollowingOverlapping, core.AxisOverlapping,
}

// TestQuickAxesMatchReference is the central property test: for random
// documents, all three implementations of every extended axis — the
// indexed default (Eval), the O(N) interval scan (EvalScan) and the
// literal set-based transcription of Definition 1 (EvalRef) — agree
// exactly, members and order.
func TestQuickAxesMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		for _, n := range allNodesOf(d) {
			for _, ax := range extendedAxes {
				fast := d.Eval(ax, n)
				scan := d.EvalScan(ax, n)
				ref := d.EvalRef(ax, n)
				if len(fast) != len(ref) || len(scan) != len(ref) {
					t.Logf("seed %d: %s(%s %q): indexed %d / scan %d / ref %d nodes",
						seed, ax, n.Kind, n.TextContent(), len(fast), len(scan), len(ref))
					return false
				}
				for i := range fast {
					if fast[i] != ref[i] || scan[i] != ref[i] {
						t.Logf("seed %d: %s(%s %q): order mismatch at %d",
							seed, ax, n.Kind, n.TextContent(), i)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPartitionInvariants checks the leaf-partition invariants on
// random documents: bounds strictly sorted, leaves concatenate to S,
// every text node's leaves concatenate to its content, every leaf has one
// parent per covering hierarchy.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		for i := 1; i < len(d.Bounds); i++ {
			if d.Bounds[i-1] >= d.Bounds[i] {
				t.Logf("seed %d: bounds not strictly sorted", seed)
				return false
			}
		}
		var sb strings.Builder
		for _, l := range d.Leaves {
			sb.WriteString(l.Data)
		}
		if sb.String() != d.Text {
			t.Logf("seed %d: leaves do not concatenate to S", seed)
			return false
		}
		for _, h := range d.Hiers {
			for _, n := range h.Nodes {
				if n.Kind != dom.Text {
					continue
				}
				var tb strings.Builder
				for _, l := range d.LeavesOf(n) {
					tb.WriteString(l.Data)
				}
				if tb.String() != n.Data {
					t.Logf("seed %d: text node leaves mismatch", seed)
					return false
				}
			}
		}
		for _, l := range d.Leaves {
			seen := map[string]bool{}
			for _, p := range l.LeafParents {
				if p.Kind != dom.Text || seen[p.Hier] {
					t.Logf("seed %d: bad leaf parents", seed)
					return false
				}
				seen[p.Hier] = true
				if !(p.Start <= l.Start && l.End <= p.End) {
					t.Logf("seed %d: leaf parent does not cover leaf", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickLeafRangeMatchesLeafSet checks interval leaves(x) == traversal
// leaves(x) for every node.
func TestQuickLeafRangeMatchesLeafSet(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		for _, n := range allNodesOf(d) {
			lo, hi := d.LeafRange(n)
			ref := d.LeafSetRef(n)
			if hi-lo != len(ref) {
				t.Logf("seed %d: leaf range size %d vs set %d for %s", seed, hi-lo, len(ref), n.Kind)
				return false
			}
			for i := lo; i < hi; i++ {
				if !ref[d.Leaves[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickOrderIsTotal checks Definition 3's order is a strict total
// order over the node set.
func TestQuickOrderIsTotal(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		nodes := allNodesOf(d)
		for i, a := range nodes {
			for j, b := range nodes {
				c := dom.Compare(a, b)
				switch {
				case i == j && c != 0:
					return false
				case i != j && c == 0:
					t.Logf("seed %d: distinct nodes compare equal", seed)
					return false
				case c != -dom.Compare(b, a):
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickOverlayPreservesBase checks that adding a temporary hierarchy
// never changes any axis result computed against the base document.
func TestQuickOverlayPreservesBase(t *testing.T) {
	f := func(seed int64) bool {
		d, err := buildRandom(seed)
		if err != nil {
			return false
		}
		// Snapshot some axis results.
		type key struct {
			n  *dom.Node
			ax core.Axis
		}
		snap := map[key][]*dom.Node{}
		nodes := allNodesOf(d)
		for _, n := range nodes {
			for _, ax := range extendedAxes {
				snap[key{n, ax}] = d.Eval(ax, n)
			}
		}
		// Create an overlay over a random sub-span.
		r := rand.New(rand.NewSource(seed ^ 0x5a5a))
		if len(d.Text) < 2 {
			return true
		}
		s := r.Intn(len(d.Text) - 1)
		e := s + 1 + r.Intn(len(d.Text)-s-1)
		top := dom.NewElement("res")
		top.Start, top.End = s, e
		txt := dom.NewText(d.Text[s:e])
		txt.Start, txt.End = s, e
		top.AppendChild(txt)
		od, err := d.AddHierarchy("rest", top, true)
		if err != nil {
			t.Logf("seed %d: overlay: %v", seed, err)
			return false
		}
		_ = od
		// Base results unchanged.
		for _, n := range nodes {
			for _, ax := range extendedAxes {
				after := d.Eval(ax, n)
				before := snap[key{n, ax}]
				if len(after) != len(before) {
					return false
				}
				for i := range after {
					if after[i] != before[i] {
						return false
					}
				}
			}
		}
		// Overlay agrees with its own reference implementation too.
		for _, n := range allNodesOf(od) {
			for _, ax := range extendedAxes {
				fast := od.Eval(ax, n)
				ref := od.EvalRef(ax, n)
				if len(fast) != len(ref) {
					t.Logf("seed %d: overlay %s mismatch", seed, ax)
					return false
				}
				for i := range fast {
					if fast[i] != ref[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestGeneratedCorpusAxesAgree runs the fast-vs-reference check on one
// realistic generated manuscript (all four hierarchy shapes).
func TestGeneratedCorpusAxesAgree(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 7, Words: 40})
	d, err := c.Document()
	if err != nil {
		t.Fatal(err)
	}
	nodes := allNodesOf(d)
	for _, n := range nodes[:min(len(nodes), 150)] {
		for _, ax := range extendedAxes {
			fast := d.Eval(ax, n)
			ref := d.EvalRef(ax, n)
			if len(fast) != len(ref) {
				t.Fatalf("%s(%s): fast %d vs ref %d", ax, n.Kind, len(fast), len(ref))
			}
			for i := range fast {
				if fast[i] != ref[i] {
					t.Fatalf("%s: order mismatch", ax)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
