package core

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mhxquery/internal/dom"
)

// This file implements the structural name index: a per-hierarchy
// inverted index mapping an interned element-name symbol to the
// ascending run of preorder ordinals of the elements bearing that name.
// Because a hierarchy's preorder ordinals are dense and a node's subtree
// occupies Nodes[Ord..Last], two binary searches restrict a run to any
// subtree, and because the Definition 3 document order enumerates the
// hierarchies in registration order, concatenating per-hierarchy runs
// yields document order without sorting. The query planner uses this to
// turn //name and descendant::name steps into O(matches) index scans.
//
// The index is built lazily, once per hierarchy, under a sync.Once:
// overlay documents created by analyze-string share their base
// document's Hierarchy values, and a base document may be queried
// concurrently while an overlay evaluation touches the same hierarchy,
// so unsynchronized lazy initialization would race (the -race test
// TestNameIndexConcurrentWithOverlays exercises exactly that). The node
// slice a hierarchy indexes is immutable after construction, so the
// index never needs invalidation: an overlay's new hierarchy simply
// carries its own (empty, lazily built) index.
type nameIndex struct {
	once sync.Once
	runs map[int32][]int32
	// built flips to true (with release semantics, inside the Once) when
	// runs is installed, so the update engine can peek at a possibly
	// unbuilt index without forcing a build: a not-yet-built index has
	// nothing to maintain incrementally.
	built atomic.Bool
}

// build fills the index from the hierarchy's preorder node list.
func (ix *nameIndex) build(h *Hierarchy) {
	start := time.Now()
	ix.runs = rebuildRuns(h)
	indexBuilds.Add(1)
	indexBuildNanos.Add(int64(time.Since(start)))
	ix.built.Store(true)
}

// rebuildRuns computes the run map fresh from the node list — the
// from-scratch path build uses, and the differential oracle the
// incremental maintenance of update.go is tested against.
func rebuildRuns(h *Hierarchy) map[int32][]int32 {
	runs := make(map[int32][]int32)
	for _, n := range h.Nodes {
		if n.Kind == dom.Element && n.NameSym != 0 {
			runs[n.NameSym] = append(runs[n.NameSym], int32(n.Ord))
		}
	}
	return runs
}

// snapshot returns the run map if the index has been built, else nil.
// Safe to call concurrently with NameRun builds.
func (ix *nameIndex) snapshot() map[int32][]int32 {
	if ix.built.Load() {
		return ix.runs
	}
	return nil
}

// install seeds the index with an already-computed run map (the
// incrementally patched index of a new document version). A no-op if
// the index was somehow built first.
func (ix *nameIndex) install(runs map[int32][]int32) {
	ix.once.Do(func() {
		ix.runs = runs
		ix.built.Store(true)
	})
}

// IndexRuns returns the hierarchy's structural name index — interned
// element-name symbol → ascending preorder ordinal run — building it on
// first use. The returned map and its slices are shared and must not be
// mutated; this is the diagnostic/verification surface of the index.
func (h *Hierarchy) IndexRuns() map[int32][]int32 {
	h.ensure()
	h.idx.once.Do(func() { h.idx.build(h) })
	return h.idx.runs
}

// RebuildIndexRuns recomputes the index from scratch, ignoring any
// built (or incrementally maintained) state — the oracle differential
// tests compare IndexRuns against.
func (h *Hierarchy) RebuildIndexRuns() map[int32][]int32 {
	h.ensure()
	return rebuildRuns(h)
}

// NameRun returns the ascending preorder ordinals of the hierarchy's
// elements whose interned name symbol is sym, building the index on
// first use. The returned slice is shared and must not be mutated. A
// symbol of 0 ("name occurs nowhere in the document") returns nil.
func (h *Hierarchy) NameRun(sym int32) []int32 {
	if sym == 0 {
		return nil
	}
	h.idx.once.Do(func() { h.idx.build(h) })
	run := h.idx.runs[sym]
	if len(run) > 0 {
		// Callers resolve the returned ordinals through h.Nodes; a
		// frozen hierarchy materializes its node storage now, so a
		// non-empty run is always dereferenceable. (An empty run means
		// no node access follows — a frozen document answers "no such
		// name here" without materializing anything.)
		h.ensure()
	}
	return run
}

// SubRun restricts an ascending ordinal run to the half-open interval
// (after, upTo], i.e. the subtree of a node n when called with
// (n.Ord, n.Last). Both bounds are found by binary search, so a subtree
// restriction costs O(log |run|).
func SubRun(run []int32, after, upTo int) []int32 {
	lo := sort.Search(len(run), func(i int) bool { return int(run[i]) > after })
	hi := sort.Search(len(run), func(i int) bool { return int(run[i]) > upTo })
	return run[lo:hi]
}

// Signature identifies the document's hierarchy layout: the registered
// hierarchy names in order, with temporary (analyze-string overlay)
// hierarchies marked. Two documents with equal signatures resolve
// hierarchy-qualified node tests to the same indices, so a query plan —
// which binds hierarchy names to indices at plan time — is keyed by
// (query source, signature). An overlay document extends its base's
// signature, so plans bound to the base are never blindly reused for
// the overlay. An updated document version (update.go) appends its
// revision, so plans compiled against an earlier version — whose
// symbol and hierarchy bindings may hard-code "name occurs nowhere" —
// are invalidated by the key even when the hierarchy names are
// unchanged.
func (d *Document) Signature() string {
	var b strings.Builder
	for i, h := range d.Hiers {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(h.Name)
		if h.Temp {
			b.WriteByte('\x01')
		}
	}
	if d.Rev > 0 {
		b.WriteString("\x02r")
		b.WriteString(strconv.FormatUint(d.Rev, 10))
	}
	return b.String()
}
