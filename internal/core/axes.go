package core

import "mhxquery/internal/dom"

// Axis identifies a path-language axis: the standard XPath axes (confined
// to one hierarchy component, except when applied to the shared root) and
// the paper's multihierarchical axes of Definition 1.
type Axis uint8

// Axis constants. The x-prefixed axes and the overlap axes are the
// extension of Definition 1; all others have standard XPath semantics.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowing
	AxisPreceding
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisSelf
	AxisAttribute
	AxisXDescendant
	AxisXAncestor
	AxisXFollowing
	AxisXPreceding
	AxisPrecedingOverlapping
	AxisFollowingOverlapping
	AxisOverlapping
)

var axisNames = map[string]Axis{
	"child":                 AxisChild,
	"descendant":            AxisDescendant,
	"descendant-or-self":    AxisDescendantOrSelf,
	"parent":                AxisParent,
	"ancestor":              AxisAncestor,
	"ancestor-or-self":      AxisAncestorOrSelf,
	"following":             AxisFollowing,
	"preceding":             AxisPreceding,
	"following-sibling":     AxisFollowingSibling,
	"preceding-sibling":     AxisPrecedingSibling,
	"self":                  AxisSelf,
	"attribute":             AxisAttribute,
	"xdescendant":           AxisXDescendant,
	"xancestor":             AxisXAncestor,
	"xfollowing":            AxisXFollowing,
	"xpreceding":            AxisXPreceding,
	"preceding-overlapping": AxisPrecedingOverlapping,
	"following-overlapping": AxisFollowingOverlapping,
	"overlapping":           AxisOverlapping,
}

// AxisByName resolves an axis name as written in path expressions.
func AxisByName(s string) (Axis, bool) {
	a, ok := axisNames[s]
	return a, ok
}

// String returns the path-expression spelling of the axis.
func (a Axis) String() string {
	for name, ax := range axisNames {
		if ax == a {
			return name
		}
	}
	return "axis?"
}

// Reverse reports whether the axis is a reverse axis (positional
// predicates count from the context node backwards).
func (a Axis) Reverse() bool {
	switch a {
	case AxisParent, AxisAncestor, AxisAncestorOrSelf, AxisPreceding, AxisPrecedingSibling, AxisXPreceding, AxisPrecedingOverlapping, AxisXAncestor:
		return true
	}
	return false
}

// Extended reports whether the axis is one of the paper's
// multihierarchical axes.
func (a Axis) Extended() bool { return a >= AxisXDescendant }

// OrderContract describes the node order Eval/AppendAxis guarantee for
// an axis result (over nodes owned by the evaluated document; results
// over constructed, unindexed trees are order-degenerate since
// Definition 3 does not rank them).
type OrderContract uint8

const (
	// EmitsDocOrder: ascending Definition 3 document order, no duplicates.
	EmitsDocOrder OrderContract = iota
	// EmitsReverseDocOrder: descending document order (nearest first for
	// the reverse axes), no duplicates.
	EmitsReverseDocOrder
)

// Order returns the axis's order contract. Every axis emits
// document-order-sorted, duplicate-free results; the reverse axes emit
// exactly the reverse. Consumers may therefore restore document order
// with an O(k) reversal instead of a comparison sort. (parent is a
// reverse axis for positional predicates, but a leaf's parents are
// emitted in hierarchy order, which is document order — so its
// contract is forward.) TestQuickAxisOrderContracts enforces this
// classification for every axis on random documents.
func (a Axis) Order() OrderContract {
	if a.Reverse() && a != AxisParent {
		return EmitsReverseDocOrder
	}
	return EmitsDocOrder
}

// Eval evaluates the axis from context node n against document d,
// returning nodes in axis order (reverse axes: nearest first). Results
// contain no duplicates and satisfy the axis's OrderContract.
//
// Per the paper, standard axes applied to a non-root node stay within the
// node's own hierarchy component; applied to the shared root they range
// over all components. The leaf layer generalizes the standard axes:
// parent of a leaf is the set of text nodes containing it (one per
// covering hierarchy), siblings of a leaf are the other leaves.
func (d *Document) Eval(a Axis, n *dom.Node) []*dom.Node {
	return d.AppendAxis(nil, a, n)
}

// SharedAxis returns the axis result as a read-only view of the
// document's internal arrays when one exists for (a, n): no allocation,
// no copying. ok=false means no contiguous view exists and the caller
// must use AppendAxis. Callers must never mutate the returned slice.
func (d *Document) SharedAxis(a Axis, n *dom.Node) (nodes []*dom.Node, ok bool) {
	d.ensureLayout()
	switch a {
	case AxisAttribute:
		if n.Kind == dom.Element {
			return n.Attrs, true
		}
		return nil, true
	case AxisChild:
		switch {
		case n == d.Root:
			return d.rootKids, true
		case n.Kind == dom.Text:
			return d.LeavesOf(n), true
		case n.Kind == dom.Element:
			return n.Children, true
		}
		return nil, true
	case AxisDescendant:
		if n != d.Root && n.Kind == dom.Text {
			return d.LeavesOf(n), true
		}
	case AxisFollowing:
		if n != d.Root && n.Kind == dom.Leaf {
			return d.Leaves[min(n.Ord+1, len(d.Leaves)):], true
		}
	}
	return nil, false
}

// AppendAxis appends the axis result for (a, n) to dst and returns the
// extended slice, in axis order per the axis's OrderContract. It is
// Eval with caller-owned storage, so per-step result buffers can be
// reused across context nodes.
func (d *Document) AppendAxis(dst []*dom.Node, a Axis, n *dom.Node) []*dom.Node {
	d.ensureLayout()
	switch a {
	case AxisSelf:
		return append(dst, n)
	case AxisAttribute:
		if n.Kind == dom.Element {
			return append(dst, n.Attrs...)
		}
		return dst
	case AxisChild:
		return d.children(dst, n)
	case AxisDescendant:
		return d.descendants(dst, n, false)
	case AxisDescendantOrSelf:
		return d.descendants(dst, n, true)
	case AxisParent:
		return d.parents(dst, n)
	case AxisAncestor:
		return d.ancestors(dst, n, false)
	case AxisAncestorOrSelf:
		return d.ancestors(dst, n, true)
	case AxisFollowing:
		return d.following(dst, n)
	case AxisPreceding:
		return d.preceding(dst, n)
	case AxisFollowingSibling:
		return d.siblings(dst, n, true)
	case AxisPrecedingSibling:
		return d.siblings(dst, n, false)
	}
	return d.extendedAxis(dst, a, n)
}

func (d *Document) children(dst []*dom.Node, n *dom.Node) []*dom.Node {
	switch {
	case n == d.Root:
		return append(dst, d.rootKids...)
	case n.Kind == dom.Text:
		return append(dst, d.LeavesOf(n)...)
	case n.Kind == dom.Element:
		return append(dst, n.Children...)
	}
	return dst
}

func (d *Document) descendants(dst []*dom.Node, n *dom.Node, self bool) []*dom.Node {
	if self {
		dst = append(dst, n)
	}
	switch {
	case n == d.Root:
		for _, h := range d.Hiers {
			dst = append(dst, h.Nodes...)
		}
		dst = append(dst, d.Leaves...)
	case n.Kind == dom.Text:
		dst = append(dst, d.LeavesOf(n)...)
	case n.Kind == dom.Element && n.Hier != "":
		h := d.byName[n.Hier]
		if h == nil || n.Ord >= len(h.Nodes) || h.Nodes[n.Ord] != n {
			// Constructed tree: plain recursive walk.
			return d.constructedDescendants(n, dst)
		}
		dst = append(dst, h.Nodes[n.Ord+1:n.Last+1]...)
		dst = append(dst, d.LeavesOf(n)...)
	case n.Kind == dom.Element:
		return d.constructedDescendants(n, dst)
	}
	return dst
}

func (d *Document) constructedDescendants(n *dom.Node, out []*dom.Node) []*dom.Node {
	for _, c := range n.Children {
		out = append(out, c)
		if c.Kind == dom.Element {
			out = d.constructedDescendants(c, out)
		}
	}
	return out
}

func (d *Document) parents(dst []*dom.Node, n *dom.Node) []*dom.Node {
	switch {
	case n == d.Root:
		return dst
	case n.Kind == dom.Leaf:
		return append(dst, d.LeafParents(n)...)
	case n.Parent != nil:
		return append(dst, n.Parent)
	}
	return dst
}

func (d *Document) ancestors(dst []*dom.Node, n *dom.Node, self bool) []*dom.Node {
	if self {
		dst = append(dst, n)
	}
	if n.Kind == dom.Leaf {
		base := len(dst)
		seen := map[*dom.Node]bool{}
		for _, p := range d.LeafParents(n) {
			for q := p; q != nil; q = q.Parent {
				if !seen[q] {
					seen[q] = true
					dst = append(dst, q)
				}
			}
		}
		// Nearest-first across hierarchies: sort by depth is ambiguous;
		// we use reverse document order, which puts the shared root last.
		tail := dst[base:]
		SortDoc(tail)
		for i, j := 0, len(tail)-1; i < j; i, j = i+1, j-1 {
			tail[i], tail[j] = tail[j], tail[i]
		}
		return dst
	}
	for p := n.Parent; p != nil; p = p.Parent {
		dst = append(dst, p)
	}
	return dst
}

func (d *Document) following(dst []*dom.Node, n *dom.Node) []*dom.Node {
	switch {
	case n == d.Root:
		return dst
	case n.Kind == dom.Leaf:
		return append(dst, d.Leaves[min(n.Ord+1, len(d.Leaves)):]...)
	case n.Kind == dom.Attribute:
		if n.Parent != nil {
			return d.following(dst, n.Parent)
		}
		return dst
	case n.Hier != "":
		if h := d.byName[n.Hier]; h != nil && n.Last+1 <= len(h.Nodes) {
			return append(dst, h.Nodes[n.Last+1:]...)
		}
	}
	return dst
}

func (d *Document) preceding(dst []*dom.Node, n *dom.Node) []*dom.Node {
	switch {
	case n == d.Root:
		return dst
	case n.Kind == dom.Leaf:
		for i := min(n.Ord, len(d.Leaves)) - 1; i >= 0; i-- {
			dst = append(dst, d.Leaves[i])
		}
		return dst
	case n.Kind == dom.Attribute:
		if n.Parent != nil {
			return d.preceding(dst, n.Parent)
		}
		return dst
	case n.Hier != "":
		h := d.byName[n.Hier]
		if h == nil {
			return dst
		}
		for i := n.Ord - 1; i >= 0; i-- {
			m := h.Nodes[i]
			if m.Last >= n.Ord { // ancestor, not preceding
				continue
			}
			dst = append(dst, m)
		}
	}
	return dst
}

func (d *Document) siblings(dst []*dom.Node, n *dom.Node, forward bool) []*dom.Node {
	if n == d.Root || n.Kind == dom.Attribute {
		return dst
	}
	if n.Kind == dom.Leaf {
		if forward {
			return d.following(dst, n)
		}
		return d.preceding(dst, n)
	}
	var sibs []*dom.Node
	if n.Parent == d.Root {
		if h := d.byName[n.Hier]; h != nil {
			sibs = h.Top
		}
	} else if n.Parent != nil {
		sibs = n.Parent.Children
	}
	idx := -1
	for i, s := range sibs {
		if s == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return dst
	}
	if forward {
		return append(dst, sibs[idx+1:]...)
	}
	for i := idx - 1; i >= 0; i-- {
		dst = append(dst, sibs[i])
	}
	return dst
}

// --- Extended axes (Definition 1), interval implementation -------------

// spanNode reports whether n can act as a context node for the extended
// axes: it must carry a span in this document's base text.
func (d *Document) spanNode(n *dom.Node) bool {
	if n == d.Root || n.Kind == dom.Leaf {
		return true
	}
	return (n.Kind == dom.Element || n.Kind == dom.Text) && n.Hier != ""
}

func emptySpan(n *dom.Node) bool { return n.Start >= n.End }

// containsLeaves reports leaves(inner) ⊆ leaves(outer), reading
// Definition 1 literally: the empty leaf set is contained in every set.
func containsLeaves(outer, inner *dom.Node) bool {
	if emptySpan(inner) {
		return true
	}
	if emptySpan(outer) {
		return false
	}
	return outer.Start <= inner.Start && inner.End <= outer.End
}

// inDescendantOrSelf reports m ∈ descendant(n) ∪ {n}, where descendant is
// taken within n's own hierarchy (leaves reachable through its text nodes
// included), per the notation preceding Definition 1.
func (d *Document) inDescendantOrSelf(n, m *dom.Node) bool {
	if m == n {
		return true
	}
	if n == d.Root {
		return true
	}
	switch n.Kind {
	case dom.Leaf:
		return false
	case dom.Element, dom.Text:
		if m.Kind == dom.Leaf {
			return n.Start <= m.Start && m.End <= n.End
		}
		if m == d.Root {
			return false
		}
		return m.Hier == n.Hier && n.Ord < m.Ord && m.Ord <= n.Last
	}
	return false
}

// inAncestorOrSelf reports m ∈ ancestor(n) ∪ {n}. A leaf belongs to every
// hierarchy covering it, so every covering element/text node (and the
// shared root) is its ancestor.
func (d *Document) inAncestorOrSelf(n, m *dom.Node) bool {
	if m == n {
		return true
	}
	if n == d.Root {
		return false
	}
	if m == d.Root {
		return true
	}
	switch n.Kind {
	case dom.Leaf:
		return (m.Kind == dom.Element || m.Kind == dom.Text) && m.Hier != "" &&
			m.Start <= n.Start && n.End <= m.End
	case dom.Element, dom.Text:
		return m.Kind == dom.Element && m.Hier == n.Hier && m.Ord < n.Ord && n.Ord <= m.Last
	}
	return false
}

// extendedAxis dispatches a Definition 1 axis to the indexed
// implementation (axesidx.go); the degenerate empty-leaf-set cases keep
// the literal ∅-semantics via the full scan.
func (d *Document) extendedAxis(dst []*dom.Node, a Axis, n *dom.Node) []*dom.Node {
	if !d.spanNode(n) {
		return dst
	}
	switch a {
	case AxisXAncestor, AxisXDescendant:
		if n != d.Root && emptySpan(n) {
			return append(dst, d.extendedScan(a, n)...)
		}
		if a == AxisXAncestor {
			return d.xancestorIdx(dst, n)
		}
		return d.xdescendantIdx(dst, n)
	default:
		if emptySpan(n) {
			return dst
		}
		switch a {
		case AxisXFollowing:
			return d.xfollowingIdx(dst, n)
		case AxisXPreceding:
			return d.xprecedingIdx(dst, n)
		case AxisPrecedingOverlapping, AxisFollowingOverlapping, AxisOverlapping:
			return d.overlapIdx(dst, a, n)
		}
	}
	return dst
}

// EvalScan evaluates an extended axis with the unindexed O(N) interval
// scan over the whole node set — the ablation baseline for the indexed
// implementation used by Eval. Standard axes delegate to Eval.
func (d *Document) EvalScan(a Axis, n *dom.Node) []*dom.Node {
	d.ensureLayout()
	if !a.Extended() {
		return d.Eval(a, n)
	}
	if !d.spanNode(n) {
		return nil
	}
	return d.extendedScan(a, n)
}

// extendedScan evaluates one of the Definition 1 axes by scanning all
// candidate nodes (root, every hierarchy node, every leaf — the node set
// N of the KyGODDAG) with an O(1) interval predicate. Results are in
// document order by construction.
func (d *Document) extendedScan(a Axis, n *dom.Node) []*dom.Node {
	var pred func(m *dom.Node) bool
	switch a {
	case AxisXAncestor:
		pred = func(m *dom.Node) bool {
			return containsLeaves(m, n) && !d.inDescendantOrSelf(n, m)
		}
	case AxisXDescendant:
		pred = func(m *dom.Node) bool {
			return containsLeaves(n, m) && !d.inAncestorOrSelf(n, m)
		}
	case AxisXFollowing:
		if emptySpan(n) {
			return nil
		}
		pred = func(m *dom.Node) bool { return !emptySpan(m) && m.Start >= n.End }
	case AxisXPreceding:
		if emptySpan(n) {
			return nil
		}
		pred = func(m *dom.Node) bool { return !emptySpan(m) && m.End <= n.Start }
	case AxisPrecedingOverlapping:
		if emptySpan(n) {
			return nil
		}
		pred = func(m *dom.Node) bool {
			return !emptySpan(m) && m.Start < n.Start && n.Start < m.End && n.End > m.End
		}
	case AxisFollowingOverlapping:
		if emptySpan(n) {
			return nil
		}
		pred = func(m *dom.Node) bool {
			return !emptySpan(m) && n.Start < m.Start && m.Start < n.End && m.End > n.End
		}
	case AxisOverlapping:
		if emptySpan(n) {
			return nil
		}
		pred = func(m *dom.Node) bool {
			if emptySpan(m) {
				return false
			}
			return (m.Start < n.Start && n.Start < m.End && n.End > m.End) ||
				(n.Start < m.Start && m.Start < n.End && m.End > n.End)
		}
	default:
		return nil
	}
	var out []*dom.Node
	if pred(d.Root) {
		out = append(out, d.Root)
	}
	for _, h := range d.Hiers {
		for _, m := range h.Nodes {
			if pred(m) {
				out = append(out, m)
			}
		}
	}
	for _, l := range d.Leaves {
		if pred(l) {
			out = append(out, l)
		}
	}
	if a.Reverse() {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}
