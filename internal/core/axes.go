package core

import "mhxquery/internal/dom"

// Axis identifies a path-language axis: the standard XPath axes (confined
// to one hierarchy component, except when applied to the shared root) and
// the paper's multihierarchical axes of Definition 1.
type Axis uint8

// Axis constants. The x-prefixed axes and the overlap axes are the
// extension of Definition 1; all others have standard XPath semantics.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowing
	AxisPreceding
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisSelf
	AxisAttribute
	AxisXDescendant
	AxisXAncestor
	AxisXFollowing
	AxisXPreceding
	AxisPrecedingOverlapping
	AxisFollowingOverlapping
	AxisOverlapping
)

var axisNames = map[string]Axis{
	"child":                 AxisChild,
	"descendant":            AxisDescendant,
	"descendant-or-self":    AxisDescendantOrSelf,
	"parent":                AxisParent,
	"ancestor":              AxisAncestor,
	"ancestor-or-self":      AxisAncestorOrSelf,
	"following":             AxisFollowing,
	"preceding":             AxisPreceding,
	"following-sibling":     AxisFollowingSibling,
	"preceding-sibling":     AxisPrecedingSibling,
	"self":                  AxisSelf,
	"attribute":             AxisAttribute,
	"xdescendant":           AxisXDescendant,
	"xancestor":             AxisXAncestor,
	"xfollowing":            AxisXFollowing,
	"xpreceding":            AxisXPreceding,
	"preceding-overlapping": AxisPrecedingOverlapping,
	"following-overlapping": AxisFollowingOverlapping,
	"overlapping":           AxisOverlapping,
}

// AxisByName resolves an axis name as written in path expressions.
func AxisByName(s string) (Axis, bool) {
	a, ok := axisNames[s]
	return a, ok
}

// String returns the path-expression spelling of the axis.
func (a Axis) String() string {
	for name, ax := range axisNames {
		if ax == a {
			return name
		}
	}
	return "axis?"
}

// Reverse reports whether the axis is a reverse axis (positional
// predicates count from the context node backwards).
func (a Axis) Reverse() bool {
	switch a {
	case AxisParent, AxisAncestor, AxisAncestorOrSelf, AxisPreceding, AxisPrecedingSibling, AxisXPreceding, AxisPrecedingOverlapping, AxisXAncestor:
		return true
	}
	return false
}

// Extended reports whether the axis is one of the paper's
// multihierarchical axes.
func (a Axis) Extended() bool { return a >= AxisXDescendant }

// Eval evaluates the axis from context node n against document d,
// returning nodes in axis order (reverse axes: nearest first). Results
// contain no duplicates.
//
// Per the paper, standard axes applied to a non-root node stay within the
// node's own hierarchy component; applied to the shared root they range
// over all components. The leaf layer generalizes the standard axes:
// parent of a leaf is the set of text nodes containing it (one per
// covering hierarchy), siblings of a leaf are the other leaves.
func (d *Document) Eval(a Axis, n *dom.Node) []*dom.Node {
	switch a {
	case AxisSelf:
		return []*dom.Node{n}
	case AxisAttribute:
		if n.Kind == dom.Element {
			return append([]*dom.Node(nil), n.Attrs...)
		}
		return nil
	case AxisChild:
		return d.children(n)
	case AxisDescendant:
		return d.descendants(n, false)
	case AxisDescendantOrSelf:
		return d.descendants(n, true)
	case AxisParent:
		return d.parents(n)
	case AxisAncestor:
		return d.ancestors(n, false)
	case AxisAncestorOrSelf:
		return d.ancestors(n, true)
	case AxisFollowing:
		return d.following(n)
	case AxisPreceding:
		return d.preceding(n)
	case AxisFollowingSibling:
		return d.siblings(n, true)
	case AxisPrecedingSibling:
		return d.siblings(n, false)
	}
	return d.extendedAxis(a, n)
}

func (d *Document) children(n *dom.Node) []*dom.Node {
	switch {
	case n == d.Root:
		return d.RootChildren()
	case n.Kind == dom.Text:
		return append([]*dom.Node(nil), d.LeavesOf(n)...)
	case n.Kind == dom.Element:
		return append([]*dom.Node(nil), n.Children...)
	}
	return nil
}

func (d *Document) descendants(n *dom.Node, self bool) []*dom.Node {
	var out []*dom.Node
	if self {
		out = append(out, n)
	}
	switch {
	case n == d.Root:
		for _, h := range d.Hiers {
			out = append(out, h.Nodes...)
		}
		out = append(out, d.Leaves...)
	case n.Kind == dom.Text:
		out = append(out, d.LeavesOf(n)...)
	case n.Kind == dom.Element && n.Hier != "":
		h := d.byName[n.Hier]
		if h == nil || n.Ord >= len(h.Nodes) || h.Nodes[n.Ord] != n {
			// Constructed tree: plain recursive walk.
			return d.constructedDescendants(n, out)
		}
		out = append(out, h.Nodes[n.Ord+1:n.Last+1]...)
		out = append(out, d.LeavesOf(n)...)
	case n.Kind == dom.Element:
		return d.constructedDescendants(n, out)
	}
	return out
}

func (d *Document) constructedDescendants(n *dom.Node, out []*dom.Node) []*dom.Node {
	for _, c := range n.Children {
		out = append(out, c)
		if c.Kind == dom.Element {
			out = d.constructedDescendants(c, out)
		}
	}
	return out
}

func (d *Document) parents(n *dom.Node) []*dom.Node {
	switch {
	case n == d.Root:
		return nil
	case n.Kind == dom.Leaf:
		return append([]*dom.Node(nil), n.LeafParents...)
	case n.Parent != nil:
		return []*dom.Node{n.Parent}
	}
	return nil
}

func (d *Document) ancestors(n *dom.Node, self bool) []*dom.Node {
	var out []*dom.Node
	if self {
		out = append(out, n)
	}
	if n.Kind == dom.Leaf {
		seen := map[*dom.Node]bool{}
		for _, p := range n.LeafParents {
			for q := p; q != nil; q = q.Parent {
				if !seen[q] {
					seen[q] = true
					out = append(out, q)
				}
			}
		}
		// Nearest-first across hierarchies: sort by depth is ambiguous;
		// we use reverse document order, which puts the shared root last.
		tail := out
		if self {
			tail = out[1:]
		}
		SortDoc(tail)
		for i, j := 0, len(tail)-1; i < j; i, j = i+1, j-1 {
			tail[i], tail[j] = tail[j], tail[i]
		}
		return out
	}
	for p := n.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

func (d *Document) following(n *dom.Node) []*dom.Node {
	switch {
	case n == d.Root:
		return nil
	case n.Kind == dom.Leaf:
		return append([]*dom.Node(nil), d.Leaves[min(n.Ord+1, len(d.Leaves)):]...)
	case n.Kind == dom.Attribute:
		if n.Parent != nil {
			return d.following(n.Parent)
		}
		return nil
	case n.Hier != "":
		if h := d.byName[n.Hier]; h != nil && n.Last+1 <= len(h.Nodes) {
			return append([]*dom.Node(nil), h.Nodes[n.Last+1:]...)
		}
	}
	return nil
}

func (d *Document) preceding(n *dom.Node) []*dom.Node {
	var out []*dom.Node
	switch {
	case n == d.Root:
		return nil
	case n.Kind == dom.Leaf:
		for i := min(n.Ord, len(d.Leaves)) - 1; i >= 0; i-- {
			out = append(out, d.Leaves[i])
		}
		return out
	case n.Kind == dom.Attribute:
		if n.Parent != nil {
			return d.preceding(n.Parent)
		}
		return nil
	case n.Hier != "":
		h := d.byName[n.Hier]
		if h == nil {
			return nil
		}
		for i := n.Ord - 1; i >= 0; i-- {
			m := h.Nodes[i]
			if m.Last >= n.Ord { // ancestor, not preceding
				continue
			}
			out = append(out, m)
		}
	}
	return out
}

func (d *Document) siblings(n *dom.Node, forward bool) []*dom.Node {
	if n == d.Root || n.Kind == dom.Attribute {
		return nil
	}
	if n.Kind == dom.Leaf {
		if forward {
			return d.following(n)
		}
		return d.preceding(n)
	}
	var sibs []*dom.Node
	if n.Parent == d.Root {
		if h := d.byName[n.Hier]; h != nil {
			sibs = h.Top
		}
	} else if n.Parent != nil {
		sibs = n.Parent.Children
	}
	idx := -1
	for i, s := range sibs {
		if s == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	var out []*dom.Node
	if forward {
		out = append(out, sibs[idx+1:]...)
	} else {
		for i := idx - 1; i >= 0; i-- {
			out = append(out, sibs[i])
		}
	}
	return out
}

// --- Extended axes (Definition 1), interval implementation -------------

// spanNode reports whether n can act as a context node for the extended
// axes: it must carry a span in this document's base text.
func (d *Document) spanNode(n *dom.Node) bool {
	if n == d.Root || n.Kind == dom.Leaf {
		return true
	}
	return (n.Kind == dom.Element || n.Kind == dom.Text) && n.Hier != ""
}

func emptySpan(n *dom.Node) bool { return n.Start >= n.End }

// containsLeaves reports leaves(inner) ⊆ leaves(outer), reading
// Definition 1 literally: the empty leaf set is contained in every set.
func containsLeaves(outer, inner *dom.Node) bool {
	if emptySpan(inner) {
		return true
	}
	if emptySpan(outer) {
		return false
	}
	return outer.Start <= inner.Start && inner.End <= outer.End
}

// inDescendantOrSelf reports m ∈ descendant(n) ∪ {n}, where descendant is
// taken within n's own hierarchy (leaves reachable through its text nodes
// included), per the notation preceding Definition 1.
func (d *Document) inDescendantOrSelf(n, m *dom.Node) bool {
	if m == n {
		return true
	}
	if n == d.Root {
		return true
	}
	switch n.Kind {
	case dom.Leaf:
		return false
	case dom.Element, dom.Text:
		if m.Kind == dom.Leaf {
			return n.Start <= m.Start && m.End <= n.End
		}
		if m == d.Root {
			return false
		}
		return m.Hier == n.Hier && n.Ord < m.Ord && m.Ord <= n.Last
	}
	return false
}

// inAncestorOrSelf reports m ∈ ancestor(n) ∪ {n}. A leaf belongs to every
// hierarchy covering it, so every covering element/text node (and the
// shared root) is its ancestor.
func (d *Document) inAncestorOrSelf(n, m *dom.Node) bool {
	if m == n {
		return true
	}
	if n == d.Root {
		return false
	}
	if m == d.Root {
		return true
	}
	switch n.Kind {
	case dom.Leaf:
		return (m.Kind == dom.Element || m.Kind == dom.Text) && m.Hier != "" &&
			m.Start <= n.Start && n.End <= m.End
	case dom.Element, dom.Text:
		return m.Kind == dom.Element && m.Hier == n.Hier && m.Ord < n.Ord && n.Ord <= m.Last
	}
	return false
}

// extendedAxis dispatches a Definition 1 axis to the indexed
// implementation (axesidx.go); the degenerate empty-leaf-set cases keep
// the literal ∅-semantics via the full scan.
func (d *Document) extendedAxis(a Axis, n *dom.Node) []*dom.Node {
	if !d.spanNode(n) {
		return nil
	}
	switch a {
	case AxisXAncestor, AxisXDescendant:
		if n != d.Root && emptySpan(n) {
			return d.extendedScan(a, n)
		}
		if a == AxisXAncestor {
			return d.xancestorIdx(n)
		}
		return d.xdescendantIdx(n)
	default:
		if emptySpan(n) {
			return nil
		}
		switch a {
		case AxisXFollowing:
			return d.xfollowingIdx(n)
		case AxisXPreceding:
			return d.xprecedingIdx(n)
		case AxisPrecedingOverlapping, AxisFollowingOverlapping, AxisOverlapping:
			return d.overlapIdx(a, n)
		}
	}
	return nil
}

// EvalScan evaluates an extended axis with the unindexed O(N) interval
// scan over the whole node set — the ablation baseline for the indexed
// implementation used by Eval. Standard axes delegate to Eval.
func (d *Document) EvalScan(a Axis, n *dom.Node) []*dom.Node {
	if !a.Extended() {
		return d.Eval(a, n)
	}
	if !d.spanNode(n) {
		return nil
	}
	return d.extendedScan(a, n)
}

// extendedScan evaluates one of the Definition 1 axes by scanning all
// candidate nodes (root, every hierarchy node, every leaf — the node set
// N of the KyGODDAG) with an O(1) interval predicate. Results are in
// document order by construction.
func (d *Document) extendedScan(a Axis, n *dom.Node) []*dom.Node {
	var pred func(m *dom.Node) bool
	switch a {
	case AxisXAncestor:
		pred = func(m *dom.Node) bool {
			return containsLeaves(m, n) && !d.inDescendantOrSelf(n, m)
		}
	case AxisXDescendant:
		pred = func(m *dom.Node) bool {
			return containsLeaves(n, m) && !d.inAncestorOrSelf(n, m)
		}
	case AxisXFollowing:
		if emptySpan(n) {
			return nil
		}
		pred = func(m *dom.Node) bool { return !emptySpan(m) && m.Start >= n.End }
	case AxisXPreceding:
		if emptySpan(n) {
			return nil
		}
		pred = func(m *dom.Node) bool { return !emptySpan(m) && m.End <= n.Start }
	case AxisPrecedingOverlapping:
		if emptySpan(n) {
			return nil
		}
		pred = func(m *dom.Node) bool {
			return !emptySpan(m) && m.Start < n.Start && n.Start < m.End && n.End > m.End
		}
	case AxisFollowingOverlapping:
		if emptySpan(n) {
			return nil
		}
		pred = func(m *dom.Node) bool {
			return !emptySpan(m) && n.Start < m.Start && m.Start < n.End && m.End > n.End
		}
	case AxisOverlapping:
		if emptySpan(n) {
			return nil
		}
		pred = func(m *dom.Node) bool {
			if emptySpan(m) {
				return false
			}
			return (m.Start < n.Start && n.Start < m.End && n.End > m.End) ||
				(n.Start < m.Start && m.Start < n.End && m.End > n.End)
		}
	default:
		return nil
	}
	var out []*dom.Node
	if pred(d.Root) {
		out = append(out, d.Root)
	}
	for _, h := range d.Hiers {
		for _, m := range h.Nodes {
			if pred(m) {
				out = append(out, m)
			}
		}
	}
	for _, l := range d.Leaves {
		if pred(l) {
			out = append(out, l)
		}
	}
	if a.Reverse() {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}
