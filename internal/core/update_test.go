package core_test

// Tests for the copy-on-write update engine: unit coverage of every
// edit kind, and the core half of the differential mutation sweep —
// seeded random edit sequences whose incrementally maintained name
// indexes must agree byte-for-byte with a from-scratch rebuild, and
// whose document state must agree field-for-field with the
// serialize→reparse→Build reference.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// buildUpdateDoc is a fixed three-hierarchy document for unit tests:
// A tiles the text with <seg>, B wraps two spans in <mark>, C one span
// in <note>.
func buildUpdateDoc(t *testing.T) *core.Document {
	t.Helper()
	text := "abcdefghijkl"
	_ = text
	ra, err := parseXML(`<r><seg>abcd</seg><seg>efgh</seg><seg>ijkl</seg></r>`)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := parseXML(`<r>ab<mark>cdef</mark>gh<mark>ij</mark>kl</r>`)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := parseXML(`<r>abcde<note>fghi</note>jkl</r>`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Build([]core.NamedTree{
		{Name: "A", Root: ra}, {Name: "B", Root: rb}, {Name: "C", Root: rc},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func pickElem(d *core.Document, hier, name string, i int) *dom.Node {
	h := d.HierarchyByName(hier)
	for _, n := range h.Nodes {
		if n.Kind == dom.Element && n.Name == name {
			if i == 0 {
				return n
			}
			i--
		}
	}
	return nil
}

// reparsed rebuilds the document from its own hierarchy serializations
// — the from-scratch reference every updated version must match.
func reparsed(t *testing.T, d *core.Document) *core.Document {
	t.Helper()
	var trees []core.NamedTree
	for _, name := range d.HierarchyNames() {
		xml, err := d.Serialize(name)
		if err != nil {
			t.Fatalf("serialize %s: %v", name, err)
		}
		root, err := parseXML(xml)
		if err != nil {
			t.Fatalf("reparse %s: %v\n%s", name, err, xml)
		}
		trees = append(trees, core.NamedTree{Name: name, Root: root})
	}
	ref, err := core.Build(trees)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return ref
}

// checkAgainstReference compares an updated document against its
// serialize→reparse→Build reference: bounds, leaf layout, per-node
// structure in preorder, and the (incrementally maintained) name
// indexes against a from-scratch rebuild.
func checkAgainstReference(t *testing.T, d *core.Document) {
	t.Helper()
	ref := reparsed(t, d)
	if d.Text != ref.Text {
		t.Fatalf("text diverged:\n got %q\nwant %q", d.Text, ref.Text)
	}
	if !reflect.DeepEqual(d.Bounds, ref.Bounds) {
		t.Fatalf("bounds diverged:\n got %v\nwant %v", d.Bounds, ref.Bounds)
	}
	if len(d.Leaves) != len(ref.Leaves) {
		t.Fatalf("leaf count %d, want %d", len(d.Leaves), len(ref.Leaves))
	}
	for i := range d.Leaves {
		g, w := d.Leaves[i], ref.Leaves[i]
		gp, wp := d.LeafParents(g), ref.LeafParents(w)
		if g.Data != w.Data || g.Start != w.Start || g.End != w.End || len(gp) != len(wp) {
			t.Fatalf("leaf %d: got %q [%d,%d) %d parents, want %q [%d,%d) %d parents",
				i, g.Data, g.Start, g.End, len(gp), w.Data, w.Start, w.End, len(wp))
		}
	}
	if len(d.Hiers) != len(ref.Hiers) {
		t.Fatalf("hierarchy count %d, want %d", len(d.Hiers), len(ref.Hiers))
	}
	for hi, h := range d.Hiers {
		rh := ref.Hiers[hi]
		if h.Name != rh.Name || len(h.Nodes) != len(rh.Nodes) {
			t.Fatalf("hierarchy %d: %q/%d nodes, want %q/%d", hi, h.Name, len(h.Nodes), rh.Name, len(rh.Nodes))
		}
		for i, n := range h.Nodes {
			m := rh.Nodes[i]
			if n.Kind != m.Kind || n.Name != m.Name || n.Start != m.Start || n.End != m.End ||
				n.Ord != m.Ord || n.Last != m.Last {
				t.Fatalf("hierarchy %q node %d: got %s %q [%d,%d) ord %d..%d, want %s %q [%d,%d) ord %d..%d",
					h.Name, i, n.Kind, n.Name, n.Start, n.End, n.Ord, n.Last,
					m.Kind, m.Name, m.Start, m.End, m.Ord, m.Last)
			}
			if n.Kind == dom.Text && n.Data != m.Data {
				t.Fatalf("hierarchy %q text %d: %q, want %q", h.Name, i, n.Data, m.Data)
			}
		}
		// Incremental index vs from-scratch rebuild, byte for byte.
		if got, want := h.IndexRuns(), h.RebuildIndexRuns(); !reflect.DeepEqual(got, want) {
			t.Fatalf("hierarchy %q: incremental index diverged from rebuild:\n got %v\nwant %v", h.Name, got, want)
		}
	}
}

func TestApplyRename(t *testing.T) {
	d := buildUpdateDoc(t)
	// Warm the index so the incremental patch path runs.
	for _, h := range d.Hiers {
		h.IndexRuns()
	}
	target := pickElem(d, "B", "mark", 1)
	nd, st, err := d.Apply([]core.Edit{{Kind: core.EditRename, Target: target, Name: "hilite"}})
	if err != nil {
		t.Fatal(err)
	}
	if nd.Rev != 1 {
		t.Fatalf("Rev = %d, want 1", nd.Rev)
	}
	if st.HierarchiesCopied != 1 || st.HierarchiesShared != 2 || st.IndexesPatched != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if nd.Signature() == d.Signature() {
		t.Fatal("signature did not change across versions")
	}
	// Old version untouched.
	if target.Name != "mark" {
		t.Fatalf("old version mutated: %q", target.Name)
	}
	if pickElem(nd, "B", "hilite", 0) == nil {
		t.Fatal("renamed element not found in new version")
	}
	checkAgainstReference(t, nd)
}

func TestApplyDeleteAndWrap(t *testing.T) {
	d := buildUpdateDoc(t)
	for _, h := range d.Hiers {
		h.IndexRuns()
	}
	del := pickElem(d, "B", "mark", 0)
	wrapIn := pickElem(d, "A", "seg", 1)
	nd, st, err := d.Apply([]core.Edit{
		{Kind: core.EditDelete, Target: del},
		{Kind: core.EditWrap, Target: wrapIn, Name: "inner", From: 0, To: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.HierarchiesCopied != 2 || st.HierarchiesShared != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if pickElem(nd, "B", "mark", 1) != nil {
		t.Fatal("second mark should be the only one left")
	}
	if w := pickElem(nd, "A", "inner", 0); w == nil || w.Start != 4 || w.End != 8 {
		t.Fatalf("wrap node = %+v", w)
	}
	checkAgainstReference(t, nd)
}

func TestApplyInsertSiblings(t *testing.T) {
	d := buildUpdateDoc(t)
	seg := pickElem(d, "A", "seg", 1)
	nd, _, err := d.Apply([]core.Edit{
		{Kind: core.EditInsertBefore, Target: seg, Name: "cb"},
		{Kind: core.EditInsertAfter, Target: seg, Name: "ca"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cb, ca := pickElem(nd, "A", "cb", 0), pickElem(nd, "A", "ca", 0)
	if cb == nil || cb.Start != 4 || cb.End != 4 || ca == nil || ca.Start != 8 || ca.End != 8 {
		t.Fatalf("point inserts: cb=%+v ca=%+v", cb, ca)
	}
	checkAgainstReference(t, nd)
}

func TestApplyReplaceText(t *testing.T) {
	d := buildUpdateDoc(t)
	for _, h := range d.Hiers {
		h.IndexRuns()
	}
	// Same-length replacement over a span crossing boundaries: allowed.
	note := pickElem(d, "C", "note", 0) // [5,9)
	nd, _, err := d.Apply([]core.Edit{{Kind: core.EditReplaceText, Target: note, Text: "WXYZ"}})
	if err != nil {
		t.Fatal(err)
	}
	if nd.Text != "abcdeWXYZjkl" {
		t.Fatalf("text = %q", nd.Text)
	}
	if d.Text != "abcdefghijkl" {
		t.Fatalf("old version text mutated: %q", d.Text)
	}
	checkAgainstReference(t, nd)

	// Length-changing replacement over a boundary-free range: B's
	// trailing text node "kl" spans [10,12) with no interior boundary.
	var kl *dom.Node
	for _, n := range d.HierarchyByName("B").Nodes {
		if n.Kind == dom.Text && n.Data == "kl" {
			kl = n
		}
	}
	nd2, _, err := d.Apply([]core.Edit{{Kind: core.EditReplaceText, Target: kl, Text: "12345"}})
	if err != nil {
		t.Fatal(err)
	}
	if nd2.Text != "abcdefghij12345" {
		t.Fatalf("text = %q", nd2.Text)
	}
	checkAgainstReference(t, nd2)

	// Replacement to the empty string: the text node vanishes, exactly
	// as it would on reparse.
	nd3, _, err := d.Apply([]core.Edit{{Kind: core.EditReplaceText, Target: kl, Text: ""}})
	if err != nil {
		t.Fatal(err)
	}
	if nd3.Text != "abcdefghij" {
		t.Fatalf("text = %q", nd3.Text)
	}
	checkAgainstReference(t, nd3)

	// Length-changing replacement across a boundary: rejected. The
	// note [5,9) has interior boundaries at 6 and 8.
	if _, _, err := d.Apply([]core.Edit{{Kind: core.EditReplaceText, Target: note, Text: "toolong"}}); err == nil {
		t.Fatal("length-changing replacement across a boundary must fail")
	}
}

func TestApplyAddRemoveHierarchy(t *testing.T) {
	d := buildUpdateDoc(t)
	for _, h := range d.Hiers {
		h.IndexRuns()
	}
	// Add a hierarchy from two span elements; gaps become text.
	m1 := &dom.Node{Kind: dom.Element, Name: "hit", Start: 1, End: 3}
	m2 := &dom.Node{Kind: dom.Element, Name: "hit", Start: 7, End: 11}
	nd, st, err := d.Apply([]core.Edit{{Kind: core.EditAddHierarchy, Name: "hits", Tops: []*dom.Node{m1, m2}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.HierarchiesAdded != 1 || st.HierarchiesShared != 3 {
		t.Fatalf("stats = %+v", st)
	}
	h := nd.HierarchyByName("hits")
	if h == nil {
		t.Fatal("hits hierarchy missing")
	}
	xml, err := nd.Serialize("hits")
	if err != nil {
		t.Fatal(err)
	}
	if want := `<r>a<hit>bc</hit>defg<hit>hijk</hit>l</r>`; xml != want {
		t.Fatalf("serialized hits = %s, want %s", xml, want)
	}
	checkAgainstReference(t, nd)

	// Remove it again: back to three hierarchies, later indexes intact.
	nd2, st2, err := nd.Apply([]core.Edit{{Kind: core.EditRemoveHierarchy, Name: "hits"}})
	if err != nil {
		t.Fatal(err)
	}
	if st2.HierarchiesRemoved != 1 || !st2.BoundsRecomputed {
		t.Fatalf("stats = %+v", st2)
	}
	if nd2.HierarchyByName("hits") != nil {
		t.Fatal("hits not removed")
	}
	checkAgainstReference(t, nd2)

	// Removing a middle hierarchy shifts the later ones correctly.
	nd3, _, err := d.Apply([]core.Edit{{Kind: core.EditRemoveHierarchy, Name: "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := nd3.HierarchyNames(); !reflect.DeepEqual(got, []string{"A", "C"}) {
		t.Fatalf("names = %v", got)
	}
	checkAgainstReference(t, nd3)
}

func TestApplyValidation(t *testing.T) {
	d := buildUpdateDoc(t)
	seg := pickElem(d, "A", "seg", 0)
	cases := []struct {
		name string
		edit core.Edit
	}{
		{"rename to other vocab", core.Edit{Kind: core.EditRename, Target: seg, Name: "mark"}},
		{"rename to root name", core.Edit{Kind: core.EditRename, Target: seg, Name: "r"}},
		{"rename to invalid name", core.Edit{Kind: core.EditRename, Target: seg, Name: "1bad"}},
		{"edit the root", core.Edit{Kind: core.EditRename, Target: d.Root, Name: "x"}},
		{"foreign node", core.Edit{Kind: core.EditDelete, Target: dom.NewElement("w")}},
		{"bad wrap range", core.Edit{Kind: core.EditWrap, Target: seg, Name: "x", From: 0, To: 99}},
		{"remove unknown hierarchy", core.Edit{Kind: core.EditRemoveHierarchy, Name: "nope"}},
		{"add duplicate hierarchy", core.Edit{Kind: core.EditAddHierarchy, Name: "A", Tops: []*dom.Node{dom.NewElement("q")}}},
	}
	for _, c := range cases {
		if _, _, err := d.Apply([]core.Edit{c.edit}); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Empty batch: same document back, no version bump.
	nd, _, err := d.Apply(nil)
	if err != nil || nd != d {
		t.Fatalf("empty batch: %v, same=%v", err, nd == d)
	}
}

// TestApplyDifferentialSweep is the core half of the differential
// mutation sweep: seeded random edit sequences over random documents;
// after each successful batch the updated version must agree with its
// serialize→reparse reference and its incrementally patched indexes
// with a from-scratch rebuild.
func TestApplyDifferentialSweep(t *testing.T) {
	const sequences = 120
	applied, failed := 0, 0
	for seq := 0; seq < sequences; seq++ {
		r := rand.New(rand.NewSource(int64(9000 + seq)))
		d, err := buildRandom(int64(500 + seq%17))
		if err != nil {
			t.Fatal(err)
		}
		// Warm indexes so the incremental patch path is exercised.
		for _, h := range d.Hiers {
			h.IndexRuns()
		}
		nEdits := 1 + r.Intn(4)
		var edits []core.Edit
		for k := 0; k < nEdits; k++ {
			h := d.Hiers[r.Intn(len(d.Hiers))]
			var elems []*dom.Node
			for _, n := range h.Nodes {
				if n.Kind == dom.Element {
					elems = append(elems, n)
				}
			}
			if len(elems) == 0 {
				continue
			}
			target := elems[r.Intn(len(elems))]
			switch r.Intn(6) {
			case 0:
				edits = append(edits, core.Edit{Kind: core.EditRename, Target: target, Name: fmt.Sprintf("n%d_%d", seq, k)})
			case 1:
				edits = append(edits, core.Edit{Kind: core.EditDelete, Target: target})
			case 2:
				from := r.Intn(len(target.Children) + 1)
				to := from + r.Intn(len(target.Children)-from+1)
				edits = append(edits, core.Edit{Kind: core.EditWrap, Target: target, Name: fmt.Sprintf("w%d_%d", seq, k), From: from, To: to})
			case 3:
				kind := core.EditInsertBefore
				if r.Intn(2) == 0 {
					kind = core.EditInsertAfter
				}
				edits = append(edits, core.Edit{Kind: kind, Target: target, Name: fmt.Sprintf("p%d_%d", seq, k)})
			case 4:
				if target.Start < target.End {
					repl := make([]byte, target.End-target.Start)
					for i := range repl {
						repl[i] = byte('p' + r.Intn(4))
					}
					edits = append(edits, core.Edit{Kind: core.EditReplaceText, Target: target, Text: string(repl)})
				}
			case 5:
				// Occasionally a whole-layer change.
				if r.Intn(2) == 0 && len(d.Text) > 2 {
					a := r.Intn(len(d.Text) - 1)
					b := a + 1 + r.Intn(len(d.Text)-a-1)
					edits = append(edits, core.Edit{Kind: core.EditAddHierarchy, Name: fmt.Sprintf("layer%d_%d", seq, k),
						Tops: []*dom.Node{{Kind: dom.Element, Name: fmt.Sprintf("hx%d_%d", seq, k), Start: a, End: b}}})
				} else {
					edits = append(edits, core.Edit{Kind: core.EditRemoveHierarchy, Name: h.Name})
				}
			}
		}
		if len(edits) == 0 {
			continue
		}
		nd, _, err := d.Apply(edits)
		if err != nil {
			// Conflicting random batches (double delete, edits in a
			// removed hierarchy, …) legitimately fail — atomically.
			failed++
			continue
		}
		applied++
		checkAgainstReference(t, nd)
		// Snapshot isolation: the original still matches its own
		// reference after the new version was derived.
		checkAgainstReference(t, d)
	}
	if applied < sequences/2 {
		t.Fatalf("only %d/%d random batches applied (%d failed); generator too conflict-happy", applied, sequences, failed)
	}
}

// TestApplyCancelingDeltas covers the remap-needed-despite-zero-total
// case: two length-changing replacements whose deltas cancel still
// shift every offset between them.
func TestApplyCancelingDeltas(t *testing.T) {
	ra, err := parseXML(`<r><seg>ab</seg><seg> mid </seg><seg>cde</seg></r>`)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := parseXML(`<r><mark>ab</mark> mid <mark>cde</mark></r>`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Build([]core.NamedTree{{Name: "A", Root: ra}, {Name: "B", Root: rb}})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range d.Hiers {
		h.IndexRuns()
	}
	m0, m1 := pickElem(d, "B", "mark", 0), pickElem(d, "B", "mark", 1)
	nd, _, err := d.Apply([]core.Edit{
		{Kind: core.EditReplaceText, Target: m0, Text: "ABCD"}, // +2
		{Kind: core.EditReplaceText, Target: m1, Text: "X"},    // -2
	})
	if err != nil {
		t.Fatal(err)
	}
	if nd.Text != "ABCD mid X" {
		t.Fatalf("text = %q", nd.Text)
	}
	if w := pickElem(nd, "B", "mark", 1); w == nil || nd.Text[w.Start:w.End] != "X" {
		t.Fatalf("second mark span = %+v", w)
	}
	checkAgainstReference(t, nd)
}

// TestApplyBatchVocabularyClaim covers the batch-internal CMH check: a
// fresh name may enter only one hierarchy per batch.
func TestApplyBatchVocabularyClaim(t *testing.T) {
	d := buildUpdateDoc(t)
	seg := pickElem(d, "A", "seg", 0)
	mark := pickElem(d, "B", "mark", 0)
	if _, _, err := d.Apply([]core.Edit{
		{Kind: core.EditInsertBefore, Target: seg, Name: "foo"},
		{Kind: core.EditInsertBefore, Target: mark, Name: "foo"},
	}); err == nil {
		t.Fatal("same fresh name entering two hierarchies must fail")
	}
	if _, _, err := d.Apply([]core.Edit{
		{Kind: core.EditRename, Target: seg, Name: "foo"},
		{Kind: core.EditRename, Target: mark, Name: "foo"},
	}); err == nil {
		t.Fatal("two renames to the same fresh name across hierarchies must fail")
	}
	// Same name twice into ONE hierarchy is fine.
	if _, _, err := d.Apply([]core.Edit{
		{Kind: core.EditInsertBefore, Target: seg, Name: "foo"},
		{Kind: core.EditInsertAfter, Target: seg, Name: "foo"},
	}); err != nil {
		t.Fatal(err)
	}
}
