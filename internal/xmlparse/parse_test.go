package xmlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mhxquery/internal/dom"
)

func TestParseBasic(t *testing.T) {
	root, err := Parse(`<r><a x="1">hi</a><b/></r>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "r" || len(root.Children) != 2 {
		t.Fatalf("root = %s with %d children", root.Name, len(root.Children))
	}
	a := root.Children[0]
	if a.Name != "a" {
		t.Errorf("first child = %s", a.Name)
	}
	if v, ok := a.Attr("x"); !ok || v != "1" {
		t.Errorf("attr x = %q %v", v, ok)
	}
	if a.TextContent() != "hi" {
		t.Errorf("a text = %q", a.TextContent())
	}
}

func TestParseOffsets(t *testing.T) {
	// S = "abcdef"; <m> covers "cd" at [2,4).
	root, err := Parse(`<r>ab<m>cd</m>ef</r>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if root.Start != 0 || root.End != 6 {
		t.Errorf("root span = [%d,%d)", root.Start, root.End)
	}
	m := root.Children[1]
	if m.Start != 2 || m.End != 4 {
		t.Errorf("m span = [%d,%d), want [2,4)", m.Start, m.End)
	}
	ef := root.Children[2]
	if ef.Start != 4 || ef.End != 6 || ef.Data != "ef" {
		t.Errorf("text ef span = [%d,%d) %q", ef.Start, ef.End, ef.Data)
	}
}

func TestParseOffsetsWithEntities(t *testing.T) {
	// Entities decode to single characters; offsets follow the DECODED text.
	root, err := Parse(`<r>a&amp;<m>&lt;x</m></r>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := root.TextContent(); got != "a&<x" {
		t.Fatalf("text = %q", got)
	}
	m := root.Children[1]
	if m.Start != 2 || m.End != 4 {
		t.Errorf("m span = [%d,%d), want [2,4)", m.Start, m.End)
	}
}

func TestParseOffsetsUTF8(t *testing.T) {
	root, err := Parse("<r>þa<m>ðe</m></r>", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := root.Children[1]
	if m.Start != 3 || m.End != 6 { // þ is 2 bytes
		t.Errorf("m span = [%d,%d), want [3,6)", m.Start, m.End)
	}
}

func TestParseEmptyElementSpan(t *testing.T) {
	root, err := Parse(`<r>ab<e/>cd</r>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := root.Children[1]
	if e.Start != 2 || e.End != 2 {
		t.Errorf("empty element span = [%d,%d), want [2,2)", e.Start, e.End)
	}
}

func TestParseEntities(t *testing.T) {
	root, err := Parse(`<r>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</r>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := root.TextContent(); got != `<>&'"AB` {
		t.Errorf("decoded = %q", got)
	}
}

func TestParseCDATA(t *testing.T) {
	root, err := Parse(`<r>a<![CDATA[<not<markup>&amp;]]>b</r>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := root.TextContent(); got != "a<not<markup>&amp;b" {
		t.Errorf("CDATA = %q", got)
	}
	// CDATA merges with surrounding text into one node.
	if len(root.Children) != 1 || root.Children[0].Kind != dom.Text {
		t.Errorf("children = %d", len(root.Children))
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	src := `<?xml version="1.0"?><!DOCTYPE r [<!ELEMENT r ANY>]><r>a<!-- c -->b<?pi data?></r><!-- after -->`
	root, err := Parse(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := root.TextContent(); got != "ab" {
		t.Errorf("text = %q", got)
	}
	if len(root.Children) != 1 {
		t.Errorf("discarded mode children = %d, want 1 (merged text)", len(root.Children))
	}
	root2, err := Parse(src, Options{KeepComments: true, KeepProcInsts: true})
	if err != nil {
		t.Fatal(err)
	}
	kinds := []dom.Kind{}
	for _, c := range root2.Children {
		kinds = append(kinds, c.Kind)
	}
	want := []dom.Kind{dom.Text, dom.Comment, dom.Text, dom.ProcInst}
	if len(kinds) != len(want) {
		t.Fatalf("children kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("children kinds = %v, want %v", kinds, want)
		}
	}
}

func TestParseWhitespacePreserved(t *testing.T) {
	root, err := Parse("<r>  <a> x </a>\n</r>", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := root.TextContent(); got != "   x \n" {
		t.Errorf("preserved text = %q", got)
	}
	root2, err := Parse("<r>  <a> x </a>\n</r>", Options{TrimWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(root2.Children) != 1 {
		t.Errorf("trimmed children = %d, want 1", len(root2.Children))
	}
}

func TestParseCRLFNormalization(t *testing.T) {
	root, err := Parse("<r>a\r\nb\rc</r>", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := root.TextContent(); got != "a\nb\nc" {
		t.Errorf("EOL normalized = %q", got)
	}
}

func TestParseAttrValueNormalization(t *testing.T) {
	root, err := Parse("<r a='x\ny'/>", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := root.Attr("a"); v != "x y" {
		t.Errorf("attr normalized = %q", v)
	}
}

func TestParseSelfClosingAndBothQuotes(t *testing.T) {
	root, err := Parse(`<r><a x='1' y="2"/></r>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := root.Children[0]
	if v, _ := a.Attr("x"); v != "1" {
		t.Error("single-quoted attr")
	}
	if v, _ := a.Attr("y"); v != "2" {
		t.Error("double-quoted attr")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no root", "   "},
		{"mismatched", "<a><b></a></b>"},
		{"unterminated", "<a><b>"},
		{"dup attr", `<a x="1" x="2"/>`},
		{"content after root", "<a/><b/>"},
		{"text after root", "<a/>junk"},
		{"bad entity", "<a>&nope;</a>"},
		{"unterminated entity", "<a>&amp</a>"},
		{"bad char ref", "<a>&#xZZ;</a>"},
		{"lt in attr", `<a x="<"/>`},
		{"missing eq", `<a x"1"/>`},
		{"bad name", "<1a/>"},
		{"unterminated comment", "<a><!-- x</a>"},
		{"unterminated cdata", "<a><![CDATA[x</a>"},
		{"unterminated pi", "<a><?pi x</a>"},
		{"unterminated doctype", "<!DOCTYPE r [<a/>"},
		{"markup decl in content", "<a><!ELEMENT x></a>"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.src, Options{}); err == nil {
			t.Errorf("%s: expected error for %q", tc.name, tc.src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("<a>\n<b></c></a>", Options{})
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "mismatched") {
		t.Errorf("error text = %q", se.Error())
	}
}

func TestParseDeepNesting(t *testing.T) {
	depth := 2000
	src := strings.Repeat("<d>", depth) + "x" + strings.Repeat("</d>", depth)
	root, err := Parse("<r>"+src+"</r>", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if root.TextContent() != "x" {
		t.Error("deep nesting text lost")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("<broken")
}

// --- round-trip property test ------------------------------------------------

// genTree generates a random well-formed element tree.
func genTree(r *rand.Rand, depth int) *dom.Node {
	names := []string{"a", "b", "c", "w", "line"}
	el := dom.NewElement(names[r.Intn(len(names))])
	if r.Intn(2) == 0 {
		el.SetAttr("k", randText(r))
	}
	kids := r.Intn(4)
	if depth <= 0 {
		kids = 0
	}
	for i := 0; i < kids; i++ {
		if r.Intn(2) == 0 {
			el.AppendChild(dom.NewText(randText(r)))
		} else {
			el.AppendChild(genTree(r, depth-1))
		}
	}
	if len(el.Children) == 0 && r.Intn(2) == 0 {
		el.AppendChild(dom.NewText(randText(r)))
	}
	return el
}

func randText(r *rand.Rand) string {
	alphabet := []rune("ab <>&\"'þ\n")
	n := 1 + r.Intn(6)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

// TestQuickRoundTrip checks serialize→parse→serialize is the identity on
// random trees (after one serialization normalizes adjacent text nodes).
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genTree(r, 3)
		xml1 := dom.XML(tree)
		parsed, err := Parse(xml1, Options{})
		if err != nil {
			t.Logf("seed %d: parse error %v on %s", seed, err, xml1)
			return false
		}
		xml2 := dom.XML(parsed)
		if xml1 != xml2 {
			t.Logf("seed %d:\n xml1=%s\n xml2=%s", seed, xml1, xml2)
			return false
		}
		if tree.TextContent() != parsed.TextContent() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickOffsetsConsistent checks that on random trees, every parsed
// node's span matches its text content's position in S.
func TestQuickOffsetsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genTree(r, 3)
		parsed, err := Parse(dom.XML(tree), Options{})
		if err != nil {
			return false
		}
		s := parsed.TextContent()
		okAll := true
		dom.Walk(parsed, func(n *dom.Node) {
			switch n.Kind {
			case dom.Element, dom.Text:
				if n.Start < 0 || n.End > len(s) || n.Start > n.End {
					okAll = false
					return
				}
				if got := s[n.Start:n.End]; got != n.TextContent() {
					okAll = false
				}
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
