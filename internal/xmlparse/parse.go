// Package xmlparse implements a from-scratch, document-centric XML parser.
//
// Unlike encoding/xml it is built for markup over a base text: every
// element and text node is annotated with its exact byte span [Start,End)
// of the *decoded* character data stream S, which is what the KyGODDAG
// construction (package core) keys on. Whitespace is significant and
// preserved by default. The parser checks well-formedness: single root,
// balanced and properly nested tags, unique attributes, valid names and
// entity references.
package xmlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"mhxquery/internal/dom"
)

// Options configures parsing.
type Options struct {
	// KeepComments retains comment nodes in the tree. Comments carry no
	// base text, so hierarchies over the same S may differ in comments.
	KeepComments bool
	// KeepProcInsts retains processing-instruction nodes.
	KeepProcInsts bool
	// TrimWhitespace drops whitespace-only text nodes (data-centric mode;
	// never use it for aligned hierarchy encodings).
	TrimWhitespace bool
}

// SyntaxError describes a well-formedness violation with its position.
type SyntaxError struct {
	Offset int // byte offset into the input
	Line   int // 1-based
	Col    int // 1-based, in bytes
	Msg    string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmlparse: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a complete XML document and returns its root element.
func Parse(input string, opts Options) (*dom.Node, error) {
	p := &parser{src: input, opts: opts}
	return p.parseDocument()
}

// MustParse is Parse panicking on error; for tests and fixtures.
func MustParse(input string) *dom.Node {
	n, err := Parse(input, Options{})
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	src     string
	pos     int
	textPos int // running offset into the decoded base text S
	opts    Options
}

func (p *parser) errorf(at int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < at && i < len(p.src); i++ {
		if p.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &SyntaxError{Offset: at, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseDocument() (*dom.Node, error) {
	// Byte-order mark.
	p.src = strings.TrimPrefix(p.src, "\ufeff")
	if err := p.skipProlog(); err != nil {
		return nil, err
	}
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return nil, p.errorf(p.pos, "expected root element")
	}
	root, err := p.parseElement()
	if err != nil {
		return nil, err
	}
	// Trailing misc.
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			p.pos++
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			if _, err := p.scanComment(); err != nil {
				return nil, err
			}
		case strings.HasPrefix(p.src[p.pos:], "<?"):
			if _, _, err := p.scanPI(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf(p.pos, "content after root element")
		}
	}
	return root, nil
}

func (p *parser) skipProlog() error {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			p.pos++
		case strings.HasPrefix(p.src[p.pos:], "<?"):
			if _, _, err := p.scanPI(); err != nil {
				return err
			}
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			if _, err := p.scanComment(); err != nil {
				return err
			}
		case strings.HasPrefix(p.src[p.pos:], "<!DOCTYPE"):
			if err := p.skipDoctype(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
	return nil
}

func (p *parser) skipDoctype() error {
	start := p.pos
	p.pos += len("<!DOCTYPE")
	depth := 0
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth == 0 {
				p.pos++
				return nil
			}
		}
		p.pos++
	}
	return p.errorf(start, "unterminated DOCTYPE")
}

// parseElement parses the element whose '<' is at p.pos.
func (p *parser) parseElement() (*dom.Node, error) {
	open := p.pos
	p.pos++ // '<'
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	el := dom.NewElement(name)
	el.Start = p.textPos
	// Attributes.
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, p.errorf(open, "unterminated start tag <%s", name)
		}
		switch p.src[p.pos] {
		case '>':
			p.pos++
			goto content
		case '/':
			if p.pos+1 >= len(p.src) || p.src[p.pos+1] != '>' {
				return nil, p.errorf(p.pos, "expected '/>'")
			}
			p.pos += 2
			el.End = p.textPos
			return el, nil
		}
		aname, err := p.parseName()
		if err != nil {
			return nil, err
		}
		if _, dup := el.Attr(aname); dup {
			return nil, p.errorf(p.pos, "duplicate attribute %q on <%s>", aname, name)
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '=' {
			return nil, p.errorf(p.pos, "expected '=' after attribute %q", aname)
		}
		p.pos++
		p.skipSpace()
		val, err := p.parseAttrValue()
		if err != nil {
			return nil, err
		}
		el.SetAttr(aname, val)
	}

content:
	var buf strings.Builder
	textStart := p.textPos
	appendText := func(s string) {
		if buf.Len() == 0 {
			textStart = p.textPos
		}
		buf.WriteString(s)
		p.textPos += len(s)
	}
	flush := func() {
		if buf.Len() == 0 {
			return
		}
		t := dom.NewText(buf.String())
		t.Start, t.End = textStart, p.textPos
		if !p.opts.TrimWhitespace || !t.IsWhitespace() {
			el.AppendChild(t)
		}
		buf.Reset()
	}
	for {
		if p.pos >= len(p.src) {
			return nil, p.errorf(open, "unterminated element <%s>", name)
		}
		c := p.src[p.pos]
		if c == '<' {
			rest := p.src[p.pos:]
			switch {
			case strings.HasPrefix(rest, "</"):
				flush()
				p.pos += 2
				ename, err := p.parseName()
				if err != nil {
					return nil, err
				}
				if ename != name {
					return nil, p.errorf(p.pos, "mismatched end tag </%s>, open element is <%s>", ename, name)
				}
				p.skipSpace()
				if p.pos >= len(p.src) || p.src[p.pos] != '>' {
					return nil, p.errorf(p.pos, "expected '>' in end tag")
				}
				p.pos++
				el.End = p.textPos
				return el, nil
			case strings.HasPrefix(rest, "<!--"):
				// Only split the surrounding text when the comment is
				// kept: discarded comments must not introduce spurious
				// text-node boundaries (they would show up as extra leaf
				// boundaries in the KyGODDAG).
				if p.opts.KeepComments {
					flush()
				}
				data, err := p.scanComment()
				if err != nil {
					return nil, err
				}
				if p.opts.KeepComments {
					el.AppendChild(&dom.Node{Kind: dom.Comment, Data: data, Start: p.textPos, End: p.textPos})
				}
			case strings.HasPrefix(rest, "<![CDATA["):
				end := strings.Index(rest, "]]>")
				if end < 0 {
					return nil, p.errorf(p.pos, "unterminated CDATA section")
				}
				appendText(normalizeEOL(rest[len("<![CDATA["):end]))
				p.pos += end + len("]]>")
			case strings.HasPrefix(rest, "<?"):
				if p.opts.KeepProcInsts {
					flush()
				}
				target, data, err := p.scanPI()
				if err != nil {
					return nil, err
				}
				if p.opts.KeepProcInsts {
					el.AppendChild(&dom.Node{Kind: dom.ProcInst, Name: target, Data: data, Start: p.textPos, End: p.textPos})
				}
			case strings.HasPrefix(rest, "<!"):
				return nil, p.errorf(p.pos, "unexpected markup declaration in content")
			default:
				flush()
				child, err := p.parseElement()
				if err != nil {
					return nil, err
				}
				el.AppendChild(child)
			}
			continue
		}
		if c == '&' {
			s, err := p.parseEntity()
			if err != nil {
				return nil, err
			}
			appendText(s)
			continue
		}
		// Plain character run.
		end := p.pos
		for end < len(p.src) && p.src[end] != '<' && p.src[end] != '&' {
			end++
		}
		appendText(normalizeEOL(p.src[p.pos:end]))
		p.pos = end
	}
}

// normalizeEOL applies XML end-of-line handling: \r\n and bare \r become \n.
func normalizeEOL(s string) string {
	if !strings.Contains(s, "\r") {
		return s
	}
	s = strings.ReplaceAll(s, "\r\n", "\n")
	return strings.ReplaceAll(s, "\r", "\n")
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// IsNameStart reports whether r can begin an XML name.
func IsNameStart(r rune) bool {
	return r == '_' || r == ':' || unicode.IsLetter(r)
}

// IsNameChar reports whether r can continue an XML name.
func IsNameChar(r rune) bool {
	return IsNameStart(r) || r == '-' || r == '.' || unicode.IsDigit(r) ||
		unicode.Is(unicode.Mn, r) || unicode.Is(unicode.Mc, r)
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	r, sz := utf8.DecodeRuneInString(p.src[p.pos:])
	if sz == 0 || !IsNameStart(r) {
		return "", p.errorf(p.pos, "expected name")
	}
	p.pos += sz
	for p.pos < len(p.src) {
		r, sz = utf8.DecodeRuneInString(p.src[p.pos:])
		if !IsNameChar(r) {
			break
		}
		p.pos += sz
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseAttrValue() (string, error) {
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errorf(p.pos, "expected quoted attribute value")
	}
	quote := p.src[p.pos]
	p.pos++
	var b strings.Builder
	for {
		if p.pos >= len(p.src) {
			return "", p.errorf(p.pos, "unterminated attribute value")
		}
		c := p.src[p.pos]
		switch c {
		case quote:
			p.pos++
			return b.String(), nil
		case '&':
			s, err := p.parseEntity()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case '<':
			return "", p.errorf(p.pos, "'<' in attribute value")
		case '\n', '\t', '\r':
			b.WriteByte(' ') // attribute-value normalization
			p.pos++
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
}

func (p *parser) parseEntity() (string, error) {
	start := p.pos
	semi := strings.IndexByte(p.src[p.pos:], ';')
	if semi < 0 || semi > 32 {
		return "", p.errorf(start, "unterminated entity reference")
	}
	ref := p.src[p.pos+1 : p.pos+semi]
	p.pos += semi + 1
	switch ref {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return `"`, nil
	}
	if strings.HasPrefix(ref, "#") {
		num := ref[1:]
		base := 10
		if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
			num, base = num[1:], 16
		}
		v, err := strconv.ParseUint(num, base, 32)
		if err != nil || !utf8.ValidRune(rune(v)) || v == 0 {
			return "", p.errorf(start, "invalid character reference &%s;", ref)
		}
		return string(rune(v)), nil
	}
	return "", p.errorf(start, "unknown entity &%s;", ref)
}

func (p *parser) scanComment() (string, error) {
	start := p.pos
	p.pos += len("<!--")
	end := strings.Index(p.src[p.pos:], "-->")
	if end < 0 {
		return "", p.errorf(start, "unterminated comment")
	}
	data := p.src[p.pos : p.pos+end]
	p.pos += end + len("-->")
	return data, nil
}

func (p *parser) scanPI() (target, data string, err error) {
	start := p.pos
	p.pos += len("<?")
	target, err = p.parseName()
	if err != nil {
		return "", "", err
	}
	end := strings.Index(p.src[p.pos:], "?>")
	if end < 0 {
		return "", "", p.errorf(start, "unterminated processing instruction")
	}
	data = strings.TrimLeft(p.src[p.pos:p.pos+end], " \t\n\r")
	p.pos += end + len("?>")
	return target, data, nil
}
