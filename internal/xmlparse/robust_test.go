package xmlparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mhxquery/internal/dom"
)

// TestQuickParseNeverPanics feeds random byte soup and markup-ish soup
// to the parser: it must return a tree or an error, never panic.
func TestQuickParseNeverPanics(t *testing.T) {
	pieces := []string{
		"<", ">", "</", "/>", "a", "r", "=", `"`, "'", "&", ";", "&amp;",
		"&#", "<!--", "-->", "<![CDATA[", "]]>", "<?", "?>", "<!DOCTYPE",
		"[", "]", " ", "\n", "þ", "\xff", "x y", "<a>", "</a>",
	}
	f := func(seed int64) (ok bool) {
		var src string
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: parse panicked on %q: %v", seed, src, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40)
		for i := 0; i < n; i++ {
			src += pieces[r.Intn(len(pieces))]
		}
		_, _ = Parse(src, Options{})
		_, _ = Parse(src, Options{KeepComments: true, KeepProcInsts: true, TrimWhitespace: true})
		raw := make([]byte, r.Intn(80))
		for i := range raw {
			raw[i] = byte(r.Intn(256))
		}
		_, _ = Parse(string(raw), Options{})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickParsedTreesAreConsistent: whenever random soup does parse,
// the resulting tree must satisfy the structural invariants: parent
// links set, child spans nested within their parent's, spans within the
// decoded text, sibling spans non-decreasing.
func TestQuickParsedTreesAreConsistent(t *testing.T) {
	pieces := []string{"<a>", "</a>", "<b>", "</b>", "x", "<c/>", " ", "&lt;"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := ""
		for i := 0; i < r.Intn(30); i++ {
			src += pieces[r.Intn(len(pieces))]
		}
		root, err := Parse(src, Options{})
		if err != nil {
			return true // rejection is fine; we check accepted trees
		}
		s := root.TextContent()
		if root.Start != 0 || root.End != len(s) {
			return false
		}
		okAll := true
		var check func(n *dom.Node)
		check = func(n *dom.Node) {
			prevEnd := n.Start
			for _, c := range n.Children {
				if c.Parent != n {
					okAll = false
				}
				if c.Start < prevEnd || c.End > n.End || c.Start > c.End {
					okAll = false
				}
				prevEnd = c.End
				if c.Kind == dom.Element {
					check(c)
				}
			}
		}
		check(root)
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
