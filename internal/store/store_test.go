package store

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
)

func TestRoundTripBoethius(t *testing.T) {
	d := corpus.MustBoethius()
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Text != d.Text {
		t.Error("text differs")
	}
	if got, want := d2.Stats(), d.Stats(); got != want {
		t.Errorf("stats %+v vs %+v", got, want)
	}
	for _, name := range d.HierarchyNames() {
		a, err := d.Serialize(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d2.Serialize(name)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("hierarchy %s differs:\n %s\n %s", name, a, b)
		}
	}
	if d.LeafTable() != d2.LeafTable() {
		t.Error("leaf tables differ")
	}
}

func TestRoundTripPreservesAttributes(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 9, Words: 20})
	d, err := c.Document()
	if err != nil {
		t.Fatal(err)
	}
	// Decorate some elements with attributes before storing.
	h := d.HierarchyByName("damage")
	for i, n := range h.Nodes {
		if n.Kind == dom.Element && n.Name == "dmg" {
			n.SetAttr("type", "stain")
			n.SetAttr("n", "x"+strings.Repeat("i", i%3))
		}
	}
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h2 := d2.HierarchyByName("damage")
	for i, n := range h.Nodes {
		m := h2.Nodes[i]
		if n.Kind != m.Kind || n.Name != m.Name || n.Start != m.Start || n.End != m.End {
			t.Fatalf("node %d differs", i)
		}
		if n.Kind == dom.Element {
			for _, a := range n.Attrs {
				if v, ok := m.Attr(a.Name); !ok || v != a.Data {
					t.Errorf("attr %s lost", a.Name)
				}
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		c := corpus.Generate(corpus.Params{Seed: seed, Words: 25, DamageRate: 0.2, RestoreRate: 0.2})
		d, err := c.Document()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Encode(&buf, d); err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		d2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("seed %d: decode: %v", seed, err)
			return false
		}
		if d2.Text != d.Text || d2.Stats() != d.Stats() {
			return false
		}
		for _, name := range d.HierarchyNames() {
			a, _ := d.Serialize(name)
			b, _ := d2.Serialize(name)
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestImageSmallerThanXML(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 3, Words: 1000})
	d, err := c.Document()
	if err != nil {
		t.Fatal(err)
	}
	// The compactness guarantee belongs to the varint tree encoding; the
	// v3 slab deliberately trades bytes (fixed-width columns, persisted
	// indexes) for O(1) open and zero-copy serving.
	var buf bytes.Buffer
	if err := EncodeSnapshotV2(&buf, d, 0); err != nil {
		t.Fatal(err)
	}
	xmlSize := 0
	for _, x := range c.XML {
		xmlSize += len(x)
	}
	if buf.Len() >= xmlSize {
		t.Errorf("image %d bytes >= XML %d bytes (text should be stored once)", buf.Len(), xmlSize)
	}
}

func TestDecodeErrors(t *testing.T) {
	d := corpus.MustBoethius()
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty image accepted")
	}
	if _, err := Decode(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(bytes.NewReader(img[:len(img)/2])); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte(nil), img...)
	bad[4] = 0xFF // version byte
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestSnapshotCarriesRevAndSeq(t *testing.T) {
	d := corpus.MustBoethius()
	d.Rev = 7
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, d, 42); err != nil {
		t.Fatal(err)
	}
	d2, seq, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Rev != 7 || seq != 42 {
		t.Fatalf("rev = %d, seq = %d; want 7, 42", d2.Rev, seq)
	}
}

func TestDecodeFlagsCorruption(t *testing.T) {
	d := corpus.MustBoethius()
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	// Every single-byte flip anywhere in the image must surface as the
	// coded corruption error — that is what the trailer buys.
	for _, off := range []int{0, 10, len(img) / 2, len(img) - 10, len(img) - 1} {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x01
		_, err := Decode(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flip at %d accepted", off)
		}
		if off != 4 && !errors.Is(err, ErrCorrupt) {
			// (offset 4 is the version byte, which may read as a
			// different-version image instead)
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
}

func TestDecodeLegacyV1Image(t *testing.T) {
	d := corpus.MustBoethius()
	var buf bytes.Buffer
	if err := EncodeSnapshotV2(&buf, d, 3); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	// Rebuild the version-1 layout from the v2 image: same body, but no
	// rev/snapSeq uvarints (1 byte each here, both < 128) after the
	// version and no 4-byte trailer.
	v1 := append([]byte(nil), v2[:len(magic)]...)
	v1 = append(v1, version1)
	v1 = append(v1, v2[len(magic)+3:len(v2)-4]...)
	d2, seq, err := DecodeSnapshot(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 image: %v", err)
	}
	if seq != 0 || d2.Rev != 0 {
		t.Fatalf("v1 image: rev = %d, seq = %d; want 0, 0", d2.Rev, seq)
	}
	if d2.Text != d.Text {
		t.Fatal("v1 image: text differs")
	}
	for _, name := range d.HierarchyNames() {
		a, _ := d.Serialize(name)
		b, _ := d2.Serialize(name)
		if a != b {
			t.Fatalf("v1 image: hierarchy %s differs", name)
		}
	}
}

func TestDecodeRejectsNewerVersion(t *testing.T) {
	d := corpus.MustBoethius()
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), buf.Bytes()...)
	img[4] = version + 1 // version uvarint follows the 4-byte magic
	_, err := Decode(bytes.NewReader(img))
	if err == nil {
		t.Fatal("image with a newer version accepted")
	}
	// The forward-compat guard must say the image is from the future,
	// not just "unsupported" — a collection directory written by a newer
	// build should fail loudly and actionably.
	if !strings.Contains(err.Error(), "newer") {
		t.Fatalf("error %q does not identify a newer-version image", err)
	}
}

// TestV3MatchesHeapDecode: opening a v3 slab image yields a document
// that is observably identical to the heap decode of the same document
// from a v2 image — same serialization per hierarchy, same stats, same
// leaf table, same name-index runs.
func TestV3MatchesHeapDecode(t *testing.T) {
	for _, seed := range []uint64{2, 9, 31} {
		c := corpus.Generate(corpus.Params{Seed: seed, Words: 30, DamageRate: 0.2, RestoreRate: 0.2})
		d, err := c.Document()
		if err != nil {
			t.Fatal(err)
		}
		d.Rev = 4
		var v3, v2 bytes.Buffer
		if err := EncodeSnapshot(&v3, d, 8); err != nil {
			t.Fatal(err)
		}
		if err := EncodeSnapshotV2(&v2, d, 8); err != nil {
			t.Fatal(err)
		}
		slabDoc, slabSeq, err := DecodeSnapshot(bytes.NewReader(v3.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: v3 decode: %v", seed, err)
		}
		heapDoc, heapSeq, err := DecodeSnapshot(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: v2 decode: %v", seed, err)
		}
		if slabSeq != heapSeq || slabDoc.Rev != heapDoc.Rev {
			t.Fatalf("seed %d: rev/seq diverged: %d/%d vs %d/%d",
				seed, slabDoc.Rev, slabSeq, heapDoc.Rev, heapSeq)
		}
		if slabDoc.Stats() != heapDoc.Stats() {
			t.Fatalf("seed %d: stats diverged:\n v3 %+v\n v2 %+v",
				seed, slabDoc.Stats(), heapDoc.Stats())
		}
		if slabDoc.LeafTable() != heapDoc.LeafTable() {
			t.Fatalf("seed %d: leaf tables diverged", seed)
		}
		for _, name := range heapDoc.HierarchyNames() {
			a, err := slabDoc.Serialize(name)
			if err != nil {
				t.Fatal(err)
			}
			b, err := heapDoc.Serialize(name)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("seed %d: hierarchy %s diverged:\n v3 %s\n v2 %s", seed, name, a, b)
			}
			sh, hh := slabDoc.HierarchyByName(name), heapDoc.HierarchyByName(name)
			for sym, want := range hh.RebuildIndexRuns() {
				if len(want) == 0 {
					continue
				}
				got := sh.NameRun(int32(sym))
				if len(got) != len(want) {
					t.Fatalf("seed %d: hierarchy %s sym %d run diverged", seed, name, sym)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d: hierarchy %s sym %d run diverged at %d", seed, name, sym, i)
					}
				}
			}
		}
	}
}

func TestDecodedDocumentQueries(t *testing.T) {
	d := corpus.MustBoethius()
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded document is fully functional: indexed axes work.
	var line1 *dom.Node
	for _, n := range d2.HierarchyByName("physical").Nodes {
		if n.Kind == dom.Element {
			line1 = n
			break
		}
	}
	found := false
	for _, m := range d2.Eval(axisOverlapping(), line1) {
		if m.Kind == dom.Element && m.Name == "w" && m.TextContent() == "singallice" {
			found = true
		}
	}
	if !found {
		t.Error("decoded document: overlapping axis broken")
	}
}

// axisOverlapping avoids importing core's constant directly in the test
// body above.
func axisOverlapping() core.Axis { return core.AxisOverlapping }
