// Package store persists multihierarchical documents in a compact binary
// format — the storage side of the paper's "framework for management of
// concurrent XML markup" ([5]). The image contains the base text once
// plus the markup structure of every hierarchy; text content is never
// duplicated, since every text node is a slice of S.
//
// Format v3 frames an internal/slab columnar image: the document is laid
// out so that opening a snapshot is O(validation) — a checksummed linear
// scan — instead of O(rebuild), and the opened document serves its base
// text, boundary array and name-index runs directly off the image
// (memory-mapped via OpenSnapshotFile where the platform allows),
// materializing dom.Node storage lazily per hierarchy. Formats v1 and v2
// (varint tree encodings rebuilt through core.Build) still decode.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
	"mhxquery/internal/slab"
)

// magic and version identify the image format. Version 2 adds the
// document revision, the WAL sequence number the snapshot covers, and
// a CRC32C trailer over the whole image; version 3 replaces the varint
// tree encoding with the mmap-able slab layout (internal/slab). Version
// 3 writes the version as one byte followed by three zero bytes, so the
// slab starts 8-byte aligned at offset 8; versions 1 and 2 still decode.
const (
	magic    = "MHXG"
	version1 = 1
	version2 = 2
	version3 = 3
	version  = version3
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt tags every way an image can be damaged — bad magic,
// checksum mismatch, truncation, or structurally invalid content —
// so callers can distinguish corruption from I/O errors (errors.Is).
var ErrCorrupt = errors.New("MHXQ0201: corrupt document image")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("store: "+format+": %w", append(args, ErrCorrupt)...)
}

// crcWriter checksums everything written through it.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, crcTable, p[:n])
	return n, err
}

// Encode writes a binary image of the document to w.
func Encode(w io.Writer, d *core.Document) error { return EncodeSnapshot(w, d, 0) }

// EncodeSnapshot writes a format-v3 image recording that the snapshot
// covers every WAL record with sequence number ≤ snapSeq.
func EncodeSnapshot(w io.Writer, d *core.Document, snapSeq uint64) error {
	blob, err := slab.Encode(d, snapSeq)
	if err != nil {
		return err
	}
	var hdr [8]byte
	copy(hdr[:], magic)
	hdr[4] = version3 // bytes 5..7 stay zero so the slab starts aligned
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// EncodeSnapshotV2 writes the legacy varint tree encoding (format v2).
// Kept for the format-compat suite and for producing images older
// builds can read.
func EncodeSnapshotV2(w io.Writer, d *core.Document, snapSeq uint64) error {
	d.Materialize()
	cw := &crcWriter{w: w}
	bw := bufio.NewWriter(cw)
	e := &encoder{w: bw, intern: map[string]uint64{}}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	e.uvarint(version2)
	e.uvarint(d.Rev)
	e.uvarint(snapSeq)

	// String table: element/attribute names and attribute values.
	var table []string
	add := func(s string) {
		if _, ok := e.intern[s]; !ok {
			e.intern[s] = uint64(len(table))
			table = append(table, s)
		}
	}
	for _, h := range d.Hiers {
		add(h.Name)
		for _, n := range h.Nodes {
			if n.Kind == dom.Element {
				add(n.Name)
				for _, a := range n.Attrs {
					add(a.Name)
					add(a.Data)
				}
			}
		}
	}
	add(d.Root.Name)
	for _, a := range d.Root.Attrs {
		add(a.Name)
		add(a.Data)
	}
	e.uvarint(uint64(len(table)))
	for _, s := range table {
		e.str(s)
	}

	e.str(d.Text)
	e.ref(d.Root.Name)
	e.uvarint(uint64(len(d.Root.Attrs)))
	for _, a := range d.Root.Attrs {
		e.ref(a.Name)
		e.ref(a.Data)
	}
	e.uvarint(uint64(len(d.Hiers)))
	for _, h := range d.Hiers {
		e.ref(h.Name)
		e.uvarint(uint64(len(h.Top)))
		for _, t := range h.Top {
			e.node(t)
		}
	}
	if e.err != nil {
		return e.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// CRC32C trailer over everything written so far; written directly so
	// it does not checksum itself.
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], cw.sum)
	_, err := w.Write(tr[:])
	return err
}

type encoder struct {
	w      *bufio.Writer
	intern map[string]uint64
	buf    [binary.MaxVarintLen64]byte
	err    error
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) ref(s string) { e.uvarint(e.intern[s]) }

// node writes one tree node: kind, name/attrs (elements) and span
// (element: start+length; text: length only, start is implied by
// context on decode... we store start deltas for robustness).
func (e *encoder) node(n *dom.Node) {
	e.uvarint(uint64(n.Kind))
	switch n.Kind {
	case dom.Element:
		e.ref(n.Name)
		e.uvarint(uint64(n.Start))
		e.uvarint(uint64(n.End - n.Start))
		e.uvarint(uint64(len(n.Attrs)))
		for _, a := range n.Attrs {
			e.ref(a.Name)
			e.ref(a.Data)
		}
		e.uvarint(uint64(len(n.Children)))
		for _, c := range n.Children {
			e.node(c)
		}
	case dom.Text:
		e.uvarint(uint64(n.Start))
		e.uvarint(uint64(n.End - n.Start))
	case dom.Comment, dom.ProcInst:
		// Comments/PIs carry no base text; store name+data inline.
		e.str(n.Name)
		e.str(n.Data)
		e.uvarint(uint64(n.Start))
	default:
		if e.err == nil {
			e.err = fmt.Errorf("store: cannot encode %s node", n.Kind)
		}
	}
}

// Decode reads a binary image and rebuilds the document (including all
// KyGODDAG indexes, via core.Build). Corruption — bad magic, checksum
// mismatch, truncation, invalid structure — is reported as an error
// wrapping ErrCorrupt.
func Decode(r io.Reader) (*core.Document, error) {
	doc, _, err := DecodeSnapshot(r)
	return doc, err
}

// DecodeSnapshot is Decode plus the WAL sequence number the snapshot
// covers (0 for version-1 images, which predate the WAL).
func DecodeSnapshot(r io.Reader) (*core.Document, uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	return OpenSnapshotBytes(data)
}

// OpenSnapshotBytes decodes a snapshot image held in memory. For a v3
// image the returned document serves base text, bounds and index runs
// directly off data — which therefore must stay immutable for the
// document's lifetime — and materializes node storage lazily; v1/v2
// images are rebuilt eagerly and do not retain data.
func OpenSnapshotBytes(data []byte) (*core.Document, uint64, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, 0, corrupt("bad magic")
	}
	// v3 stores the version as one literal byte (plus three zero pads),
	// not a uvarint: the check is exact so no alternative encoding of
	// "3" can smuggle in a differently-framed image.
	if len(data) >= 8 && data[4] == version3 {
		if data[5] != 0 || data[6] != 0 || data[7] != 0 {
			return nil, 0, corrupt("nonzero version padding")
		}
		s, err := slab.Open(data[8:])
		if err != nil {
			return nil, 0, corrupt("%v", err)
		}
		return s.Document(), s.SnapSeq(), nil
	}
	body := data[len(magic):]
	v, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, 0, corrupt("truncated version")
	}
	body = body[n:]
	var rev, snapSeq uint64
	switch v {
	case version1:
		// Legacy image: no revision, no coverage, no trailer.
	case version2:
		if len(data) < 4 {
			return nil, 0, corrupt("truncated image")
		}
		want := binary.LittleEndian.Uint32(data[len(data)-4:])
		if crc32.Checksum(data[:len(data)-4], crcTable) != want {
			return nil, 0, corrupt("checksum mismatch")
		}
		body = body[:len(body)-4]
		if rev, n = binary.Uvarint(body); n <= 0 {
			return nil, 0, corrupt("truncated revision")
		}
		body = body[n:]
		if snapSeq, n = binary.Uvarint(body); n <= 0 {
			return nil, 0, corrupt("truncated snapshot sequence")
		}
		body = body[n:]
	default:
		if v > version {
			return nil, 0, fmt.Errorf("store: image version %d is newer than the supported version %d; rebuild with a newer mhxquery or re-encode the document", v, version)
		}
		return nil, 0, corrupt("unsupported version %d", v)
	}
	doc, err := decodeBody(body)
	if err != nil {
		return nil, 0, err
	}
	doc.Rev = rev
	return doc, snapSeq, nil
}

// OpenSnapshotFile opens a snapshot from disk, memory-mapping v3 images
// where the platform (and MHX_NO_MMAP) allow so the page cache is
// shared across processes and nothing is copied up front. The mapping
// backs the returned document and is retained for the life of the
// process; legacy images are decoded eagerly and the mapping released.
func OpenSnapshotFile(path string) (*core.Document, uint64, error) {
	data, mapped, err := slab.MapFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	doc, seq, err := OpenSnapshotBytes(data)
	if err != nil || !(len(data) >= 8 && data[4] == version3) {
		// Nothing aliases the bytes: v1/v2 decoding copies what it keeps.
		_ = slab.Unmap(data, mapped)
	}
	return doc, seq, err
}

// MmapAvailable reports whether OpenSnapshotFile would memory-map v3
// images on this host (see slab.UseMmap).
func MmapAvailable() bool { return slab.UseMmap() }

// decodeBody parses the string table, text and hierarchy trees (the
// layout shared by both format versions) and rebuilds the document.
func decodeBody(body []byte) (*core.Document, error) {
	d := &decoder{r: bufio.NewReader(bytes.NewReader(body))}
	table := make([]string, d.uvarint())
	for i := range table {
		table[i] = d.str()
	}
	d.table = table

	text := d.str()
	rootName := d.ref()
	nAttrs := d.uvarint()
	type kv struct{ k, v string }
	rootAttrs := make([]kv, nAttrs)
	for i := range rootAttrs {
		rootAttrs[i] = kv{d.ref(), d.ref()}
	}
	nh := d.uvarint()
	trees := make([]core.NamedTree, 0, nh)
	for i := uint64(0); i < nh; i++ {
		name := d.ref()
		root := dom.NewElement(rootName)
		for _, a := range rootAttrs {
			root.SetAttr(a.k, a.v)
		}
		nTop := d.uvarint()
		for j := uint64(0); j < nTop; j++ {
			root.AppendChild(d.node(text))
		}
		trees = append(trees, core.NamedTree{Name: name, Root: root})
	}
	if d.err != nil {
		return nil, corrupt("%v", d.err)
	}
	doc, err := core.Build(trees)
	if err != nil {
		return nil, corrupt("rebuilding document: %v", err)
	}
	if doc.Text != text {
		return nil, corrupt("image text inconsistent with markup")
	}
	return doc, nil
}

type decoder struct {
	r     *bufio.Reader
	table []string
	err   error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<30 {
		d.err = fmt.Errorf("corrupt string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return ""
	}
	return string(buf)
}

func (d *decoder) ref() string {
	i := d.uvarint()
	if d.err != nil {
		return ""
	}
	if i >= uint64(len(d.table)) {
		d.err = fmt.Errorf("corrupt string reference %d", i)
		return ""
	}
	return d.table[i]
}

func (d *decoder) node(text string) *dom.Node {
	kind := dom.Kind(d.uvarint())
	if d.err != nil {
		return dom.NewText("")
	}
	switch kind {
	case dom.Element:
		el := dom.NewElement(d.ref())
		start := d.uvarint()
		length := d.uvarint()
		el.Start, el.End = int(start), int(start+length)
		na := d.uvarint()
		for i := uint64(0); i < na; i++ {
			el.SetAttr(d.ref(), d.ref())
		}
		nc := d.uvarint()
		for i := uint64(0); i < nc && d.err == nil; i++ {
			el.AppendChild(d.node(text))
		}
		return el
	case dom.Text:
		start := d.uvarint()
		length := d.uvarint()
		if d.err == nil && (start+length > uint64(len(text))) {
			d.err = fmt.Errorf("corrupt text span [%d,+%d)", start, length)
			return dom.NewText("")
		}
		t := dom.NewText(text[start : start+length])
		t.Start, t.End = int(start), int(start+length)
		return t
	case dom.Comment, dom.ProcInst:
		n := &dom.Node{Kind: kind, Name: d.str(), Data: d.str()}
		p := d.uvarint()
		n.Start, n.End = int(p), int(p)
		return n
	}
	d.err = fmt.Errorf("corrupt node kind %d", kind)
	return dom.NewText("")
}
