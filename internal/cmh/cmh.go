// Package cmh models Concurrent Markup Hierarchies (CMH) as defined in
// Section 3 of the paper: a CMH is a collection of schemas (D1..Dn) and a
// root element r such that r occurs in every Di, no other element name is
// shared between different Di, and every element is reachable from r.
//
// A multihierarchical document over a CMH is a set of XML documents
// d1..dn and a base string S such that each di encodes S with markup from
// Di. This package validates both levels: schema well-formedness and
// document conformance/alignment.
package cmh

import (
	"fmt"
	"strings"

	"mhxquery/internal/dom"
)

// Schema describes one markup hierarchy: its name and element vocabulary
// (excluding the shared root element).
type Schema struct {
	Name     string
	Elements []string
}

// CMH is a concurrent markup hierarchy: the shared root element name plus
// one Schema per hierarchy.
type CMH struct {
	Root        string
	Hierarchies []Schema
}

// Validate checks the CMH-level constraints: a non-empty shared root,
// unique non-empty hierarchy names, and pairwise-disjoint element
// vocabularies none of which contains the root.
func (c *CMH) Validate() error {
	if c.Root == "" {
		return fmt.Errorf("cmh: empty root element name")
	}
	if len(c.Hierarchies) == 0 {
		return fmt.Errorf("cmh: no hierarchies")
	}
	hnames := make(map[string]bool, len(c.Hierarchies))
	owner := make(map[string]string)
	for _, h := range c.Hierarchies {
		if h.Name == "" {
			return fmt.Errorf("cmh: empty hierarchy name")
		}
		if hnames[h.Name] {
			return fmt.Errorf("cmh: duplicate hierarchy name %q", h.Name)
		}
		hnames[h.Name] = true
		for _, e := range h.Elements {
			if e == c.Root {
				return fmt.Errorf("cmh: hierarchy %q uses the root element name %q", h.Name, e)
			}
			if prev, ok := owner[e]; ok && prev != h.Name {
				return fmt.Errorf("cmh: element %q appears in hierarchies %q and %q", e, prev, h.Name)
			}
			owner[e] = h.Name
		}
	}
	return nil
}

// HierarchyOf returns the hierarchy owning the given element name.
func (c *CMH) HierarchyOf(element string) (string, bool) {
	for _, h := range c.Hierarchies {
		for _, e := range h.Elements {
			if e == element {
				return h.Name, true
			}
		}
	}
	return "", false
}

// Infer derives a CMH from parsed hierarchy trees: the shared root name is
// taken from the (identical) root elements and each vocabulary is the set
// of element names observed in the corresponding tree. The result is
// validated.
func Infer(names []string, roots []*dom.Node) (*CMH, error) {
	if len(names) != len(roots) || len(names) == 0 {
		return nil, fmt.Errorf("cmh: need one name per hierarchy tree")
	}
	c := &CMH{Root: roots[0].Name}
	for i, root := range roots {
		if root.Kind != dom.Element {
			return nil, fmt.Errorf("cmh: hierarchy %q: root is not an element", names[i])
		}
		if root.Name != c.Root {
			return nil, fmt.Errorf("cmh: hierarchy %q has root <%s>, want <%s>", names[i], root.Name, c.Root)
		}
		seen := map[string]bool{}
		var elems []string
		dom.Walk(root, func(n *dom.Node) {
			if n.Kind == dom.Element && n != root && !seen[n.Name] {
				seen[n.Name] = true
				elems = append(elems, n.Name)
			}
		})
		c.Hierarchies = append(c.Hierarchies, Schema{Name: names[i], Elements: elems})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ValidateDocument checks that the tree conforms to the named hierarchy:
// correct root element, and every element drawn from that hierarchy's
// vocabulary (nested occurrences of the root are rejected).
func (c *CMH) ValidateDocument(hier string, root *dom.Node) error {
	var schema *Schema
	for i := range c.Hierarchies {
		if c.Hierarchies[i].Name == hier {
			schema = &c.Hierarchies[i]
		}
	}
	if schema == nil {
		return fmt.Errorf("cmh: unknown hierarchy %q", hier)
	}
	if root.Name != c.Root {
		return fmt.Errorf("cmh: hierarchy %q: root <%s>, want <%s>", hier, root.Name, c.Root)
	}
	allowed := make(map[string]bool, len(schema.Elements))
	for _, e := range schema.Elements {
		allowed[e] = true
	}
	var err error
	dom.Walk(root, func(n *dom.Node) {
		if err != nil || n == root || n.Kind != dom.Element {
			return
		}
		if n.Name == c.Root {
			err = fmt.Errorf("cmh: hierarchy %q: nested root element <%s>", hier, n.Name)
		} else if !allowed[n.Name] {
			err = fmt.Errorf("cmh: hierarchy %q: element <%s> not in vocabulary", hier, n.Name)
		}
	})
	return err
}

// AlignmentError reports the first position at which two encodings of the
// supposedly shared base text diverge.
type AlignmentError struct {
	HierA, HierB string
	Offset       int
	ContextA     string
	ContextB     string
}

// Error implements the error interface.
func (e *AlignmentError) Error() string {
	return fmt.Sprintf("cmh: hierarchies %q and %q encode different base texts (diverge at byte %d: %q vs %q)",
		e.HierA, e.HierB, e.Offset, e.ContextA, e.ContextB)
}

// CheckAlignment verifies that every tree encodes the same base string S
// and returns S. Names are used in error messages only.
func CheckAlignment(names []string, roots []*dom.Node) (string, error) {
	if len(roots) == 0 {
		return "", fmt.Errorf("cmh: no documents")
	}
	s := roots[0].TextContent()
	for i := 1; i < len(roots); i++ {
		t := roots[i].TextContent()
		if t == s {
			continue
		}
		off := 0
		for off < len(s) && off < len(t) && s[off] == t[off] {
			off++
		}
		return "", &AlignmentError{
			HierA: names[0], HierB: names[i], Offset: off,
			ContextA: snippet(s, off), ContextB: snippet(t, off),
		}
	}
	return s, nil
}

func snippet(s string, off int) string {
	end := off + 12
	if end > len(s) {
		end = len(s)
	}
	if off > len(s) {
		off = len(s)
	}
	out := s[off:end]
	if end < len(s) {
		out += "…"
	}
	return strings.ToValidUTF8(out, "?")
}
