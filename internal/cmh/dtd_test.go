package cmh

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mhxquery/internal/xmlparse"
)

// boethiusStructureDTD declares the paper's structure hierarchy.
const boethiusStructureDTD = `
<!-- verse structure of the Boethius fragment -->
<!ELEMENT r (#PCDATA | vline)*>
<!ELEMENT vline (#PCDATA | w)*>
<!ELEMENT w (#PCDATA)>
<!ATTLIST w
  id   ID       #IMPLIED
  lang (ang|la) "ang"
  n    NMTOKEN  #IMPLIED>
`

func TestParseDTDBasic(t *testing.T) {
	d, err := ParseDTD(boethiusStructureDTD)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Elements) != 3 {
		t.Fatalf("elements = %d", len(d.Elements))
	}
	r := d.Elements["r"]
	if r.Kind != ContentMixed || len(r.Mixed) != 1 || r.Mixed[0] != "vline" {
		t.Errorf("r decl = %+v", r)
	}
	w := d.Elements["w"]
	if w.Kind != ContentMixed || len(w.Mixed) != 0 {
		t.Errorf("w decl = %+v", w)
	}
	atts := d.Attlists["w"]
	if len(atts) != 3 {
		t.Fatalf("attlist = %d", len(atts))
	}
	if atts[0].Type != AttID || atts[1].Type != AttEnum || atts[2].Type != AttNMTOKEN {
		t.Errorf("att types = %v %v %v", atts[0].Type, atts[1].Type, atts[2].Type)
	}
	if atts[1].Default != "ang" || len(atts[1].Enum) != 2 {
		t.Errorf("enum att = %+v", atts[1])
	}
}

func TestParseDTDContentModels(t *testing.T) {
	d, err := ParseDTD(`
<!ELEMENT book (title, chapter+, appendix?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT chapter (title, (para | note)*)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT appendix (para+)>
<!ELEMENT void EMPTY>
<!ELEMENT anything ANY>
`)
	if err != nil {
		t.Fatal(err)
	}
	book := d.Elements["book"]
	if book.Kind != ContentModel {
		t.Fatal("book kind")
	}
	if got := book.Model.String(); got != "(title, chapter+, appendix?)" {
		t.Errorf("book model = %s", got)
	}
	if d.Elements["void"].Kind != ContentEmpty || d.Elements["anything"].Kind != ContentAny {
		t.Error("EMPTY/ANY kinds")
	}
}

func TestParseDTDErrors(t *testing.T) {
	cases := []string{
		`<!ELEMENT >`,
		`<!ELEMENT a (b,c|d)>`,              // mixed separators
		`<!ELEMENT a (b`,                    // unterminated
		`<!ELEMENT a (#PCDATA | b)>`,        // mixed with names needs )*
		`<!ELEMENT a (b)> <!ELEMENT a (c)>`, // duplicate
		`<!ATTLIST a x WHAT #IMPLIED>`,
		`<!ATTLIST a x CDATA>`, // missing default spec
		`junk`,
	}
	for _, src := range cases {
		if _, err := ParseDTD(src); err == nil {
			t.Errorf("ParseDTD(%q) should fail", src)
		}
	}
}

func TestMatchContent(t *testing.T) {
	d, err := ParseDTD(`<!ELEMENT x (a, (b | c)*, d?)>`)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Elements["x"].Model
	cases := []struct {
		names []string
		want  bool
	}{
		{[]string{"a"}, true},
		{[]string{"a", "d"}, true},
		{[]string{"a", "b", "c", "b", "d"}, true},
		{[]string{"a", "b", "b"}, true},
		{[]string{}, false},
		{[]string{"b"}, false},
		{[]string{"a", "d", "b"}, false},
		{[]string{"a", "e"}, false},
		{[]string{"a", "d", "d"}, false},
	}
	for _, tc := range cases {
		if got := MatchContent(m, tc.names); got != tc.want {
			t.Errorf("MatchContent(%v) = %v, want %v", tc.names, got, tc.want)
		}
	}
}

func TestMatchContentPlusAndNesting(t *testing.T) {
	d, err := ParseDTD(`<!ELEMENT x ((a, b)+ | c)>`)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Elements["x"].Model
	if !MatchContent(m, []string{"a", "b", "a", "b"}) {
		t.Error("(a b)+ repeat")
	}
	if !MatchContent(m, []string{"c"}) {
		t.Error("choice arm")
	}
	if MatchContent(m, []string{"a", "b", "a"}) {
		t.Error("dangling a")
	}
	if MatchContent(m, []string{"c", "c"}) {
		t.Error("double c")
	}
}

// TestQuickDerivativesMatchNaive cross-checks the Brzozowski matcher
// against a naive regexp-style backtracking matcher on random models and
// random words.
func TestQuickDerivativesMatchNaive(t *testing.T) {
	alphabet := []string{"a", "b", "c"}
	var genExpr func(r *rand.Rand, depth int) *ContentExpr
	genExpr = func(r *rand.Rand, depth int) *ContentExpr {
		if depth <= 0 || r.Intn(3) == 0 {
			return &ContentExpr{Op: OpName, Name: alphabet[r.Intn(len(alphabet))]}
		}
		switch r.Intn(5) {
		case 0:
			return &ContentExpr{Op: OpSeq, Kids: []*ContentExpr{genExpr(r, depth-1), genExpr(r, depth-1)}}
		case 1:
			return &ContentExpr{Op: OpChoice, Kids: []*ContentExpr{genExpr(r, depth-1), genExpr(r, depth-1)}}
		case 2:
			return &ContentExpr{Op: OpOpt, Kids: []*ContentExpr{genExpr(r, depth-1)}}
		case 3:
			return &ContentExpr{Op: OpStar, Kids: []*ContentExpr{genExpr(r, depth-1)}}
		default:
			return &ContentExpr{Op: OpPlus, Kids: []*ContentExpr{genExpr(r, depth-1)}}
		}
	}
	// naive matcher: set-of-suffix-positions NFA simulation.
	var match func(e *ContentExpr, w []string) map[int]bool
	match = func(e *ContentExpr, w []string) map[int]bool {
		out := map[int]bool{}
		switch e.Op {
		case OpName:
			if len(w) > 0 && w[0] == e.Name {
				out[1] = true
			}
		case OpEpsilon:
			out[0] = true
		case OpOpt:
			out[0] = true
			for k := range match(e.Kids[0], w) {
				out[k] = true
			}
		case OpStar, OpPlus:
			if e.Op == OpStar {
				out[0] = true
			}
			frontier := map[int]bool{0: true}
			for len(frontier) > 0 {
				next := map[int]bool{}
				for pos := range frontier {
					for k := range match(e.Kids[0], w[pos:]) {
						if !out[pos+k] {
							out[pos+k] = true
							if k > 0 {
								next[pos+k] = true
							}
						}
					}
				}
				frontier = next
			}
		case OpChoice:
			for _, kid := range e.Kids {
				for k := range match(kid, w) {
					out[k] = true
				}
			}
		case OpSeq:
			frontier := map[int]bool{0: true}
			for _, kid := range e.Kids {
				next := map[int]bool{}
				for pos := range frontier {
					for k := range match(kid, w[pos:]) {
						next[pos+k] = true
					}
				}
				frontier = next
			}
			out = frontier
		}
		return out
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 3)
		for trial := 0; trial < 12; trial++ {
			n := r.Intn(6)
			w := make([]string, n)
			for i := range w {
				w[i] = alphabet[r.Intn(len(alphabet))]
			}
			want := match(e, w)[len(w)]
			if got := MatchContent(e, w); got != want {
				t.Logf("seed %d: model %s word %v: derivative %v, naive %v", seed, e, w, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestValidateDocumentAgainstDTD(t *testing.T) {
	d, err := ParseDTD(boethiusStructureDTD)
	if err != nil {
		t.Fatal(err)
	}
	good := xmlparse.MustParse(`<r><vline><w id="w1">ge</w> <w lang="la">sc</w></vline></r>`)
	if errs := d.Validate(good); len(errs) != 0 {
		t.Fatalf("valid doc rejected: %v", errs)
	}
	cases := []struct {
		name string
		xml  string
		want string
	}{
		{"undeclared element", `<r><line>x</line></r>`, "not declared"},
		{"bad mixed child", `<r><vline><vline>x</vline></vline></r>`, "not allowed in mixed"},
		{"bad enum", `<r><vline><w lang="fr">x</w></vline></r>`, "not in"},
		{"undeclared attr", `<r><vline><w bogus="1">x</w></vline></r>`, "not declared"},
		{"dup id", `<r><vline><w id="a">x</w><w id="a">y</w></vline></r>`, "duplicate ID"},
	}
	for _, tc := range cases {
		root := xmlparse.MustParse(tc.xml)
		errs := d.Validate(root)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: errors %v missing %q", tc.name, errs, tc.want)
		}
	}
}

func TestValidateContentModelAndRequired(t *testing.T) {
	d, err := ParseDTD(`
<!ELEMENT doc (head, body)>
<!ELEMENT head EMPTY>
<!ELEMENT body (#PCDATA)>
<!ATTLIST doc version CDATA #REQUIRED>
<!ATTLIST head kind (a|b) #FIXED "a">
`)
	if err != nil {
		t.Fatal(err)
	}
	good := xmlparse.MustParse(`<doc version="1"><head/><body>x</body></doc>`)
	if errs := d.Validate(good); len(errs) != 0 {
		t.Fatalf("valid doc rejected: %v", errs)
	}
	// Whitespace between children of element content is permitted.
	ws := xmlparse.MustParse("<doc version=\"1\">\n  <head/>\n  <body>x</body>\n</doc>")
	if errs := d.Validate(ws); len(errs) != 0 {
		t.Fatalf("whitespace in element content rejected: %v", errs)
	}
	bad := xmlparse.MustParse(`<doc><body>x</body><head/></doc>`)
	errs := d.Validate(bad)
	if len(errs) < 2 { // missing version + wrong order
		t.Errorf("expected >= 2 errors, got %v", errs)
	}
	fixed := xmlparse.MustParse(`<doc version="1"><head kind="b"/><body>x</body></doc>`)
	errs = d.Validate(fixed)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "fixed") {
		t.Errorf("fixed attr violation = %v", errs)
	}
	empty := xmlparse.MustParse(`<doc version="1"><head>boom</head><body>x</body></doc>`)
	errs = d.Validate(empty)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "EMPTY") {
		t.Errorf("EMPTY violation = %v", errs)
	}
	cdata := xmlparse.MustParse(`<doc version="1"><head/>text<body>x</body></doc>`)
	errs = d.Validate(cdata)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "character data") {
		t.Errorf("pcdata violation = %v", errs)
	}
}

func TestFromDTDs(t *testing.T) {
	physical, err := ParseDTD(`
<!ELEMENT r (#PCDATA | line)*>
<!ELEMENT line (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	structure, err := ParseDTD(boethiusStructureDTD)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromDTDs("r", []string{"physical", "structure"}, []*DTD{physical, structure})
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := c.HierarchyOf("line"); h != "physical" {
		t.Errorf("line owned by %q", h)
	}
	if h, _ := c.HierarchyOf("w"); h != "structure" {
		t.Errorf("w owned by %q", h)
	}

	// Shared element across DTDs is rejected.
	clash, _ := ParseDTD(`<!ELEMENT r (#PCDATA | line)*> <!ELEMENT line (#PCDATA)>`)
	if _, err := FromDTDs("r", []string{"a", "b"}, []*DTD{physical, clash}); err == nil {
		t.Error("shared vocabulary accepted")
	}
	// Root must be declared everywhere.
	noRoot, _ := ParseDTD(`<!ELEMENT other (#PCDATA)>`)
	if _, err := FromDTDs("r", []string{"a", "b"}, []*DTD{physical, noRoot}); err == nil {
		t.Error("missing root accepted")
	}
	// Unreachable elements are rejected.
	orphan, _ := ParseDTD(`<!ELEMENT r (#PCDATA | x)*> <!ELEMENT x (#PCDATA)> <!ELEMENT unused (#PCDATA)>`)
	if _, err := FromDTDs("r", []string{"a"}, []*DTD{orphan}); err == nil {
		t.Error("unreachable element accepted")
	}
}
