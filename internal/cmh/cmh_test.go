package cmh

import (
	"strings"
	"testing"

	"mhxquery/internal/dom"
	"mhxquery/internal/xmlparse"
)

func TestValidateOK(t *testing.T) {
	c := &CMH{
		Root: "r",
		Hierarchies: []Schema{
			{Name: "physical", Elements: []string{"line"}},
			{Name: "structure", Elements: []string{"vline", "w"}},
		},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		c    CMH
		want string
	}{
		{"empty root", CMH{Hierarchies: []Schema{{Name: "a"}}}, "empty root"},
		{"no hierarchies", CMH{Root: "r"}, "no hierarchies"},
		{"empty hier name", CMH{Root: "r", Hierarchies: []Schema{{}}}, "empty hierarchy name"},
		{"dup hier", CMH{Root: "r", Hierarchies: []Schema{{Name: "a"}, {Name: "a"}}}, "duplicate hierarchy"},
		{"root in vocab", CMH{Root: "r", Hierarchies: []Schema{{Name: "a", Elements: []string{"r"}}}}, "root element name"},
		{"shared element", CMH{Root: "r", Hierarchies: []Schema{
			{Name: "a", Elements: []string{"x"}},
			{Name: "b", Elements: []string{"x"}},
		}}, "appears in hierarchies"},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestHierarchyOf(t *testing.T) {
	c := &CMH{Root: "r", Hierarchies: []Schema{
		{Name: "a", Elements: []string{"x", "y"}},
		{Name: "b", Elements: []string{"z"}},
	}}
	if h, ok := c.HierarchyOf("z"); !ok || h != "b" {
		t.Errorf("HierarchyOf(z) = %q, %v", h, ok)
	}
	if _, ok := c.HierarchyOf("nope"); ok {
		t.Error("HierarchyOf(nope) should fail")
	}
}

func TestInfer(t *testing.T) {
	r1 := xmlparse.MustParse(`<r><line>ab</line><line>cd</line></r>`)
	r2 := xmlparse.MustParse(`<r><vline><w>abcd</w></vline></r>`)
	c, err := Infer([]string{"physical", "structure"}, []*dom.Node{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Root != "r" {
		t.Errorf("root = %q", c.Root)
	}
	if h, ok := c.HierarchyOf("w"); !ok || h != "structure" {
		t.Errorf("w owned by %q", h)
	}
	if h, ok := c.HierarchyOf("line"); !ok || h != "physical" {
		t.Errorf("line owned by %q", h)
	}
}

func TestInferErrors(t *testing.T) {
	r1 := xmlparse.MustParse(`<r><line>ab</line></r>`)
	r2 := xmlparse.MustParse(`<other><w>ab</w></other>`)
	if _, err := Infer([]string{"a", "b"}, []*dom.Node{r1, r2}); err == nil {
		t.Error("different root names should fail")
	}
	r3 := xmlparse.MustParse(`<r><line>ab</line></r>`)
	if _, err := Infer([]string{"a", "b"}, []*dom.Node{r1, r3}); err == nil {
		t.Error("shared element vocabulary should fail")
	}
	if _, err := Infer(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Infer([]string{"a"}, []*dom.Node{dom.NewText("x")}); err == nil {
		t.Error("non-element root should fail")
	}
}

func TestValidateDocument(t *testing.T) {
	c := &CMH{Root: "r", Hierarchies: []Schema{
		{Name: "structure", Elements: []string{"vline", "w"}},
	}}
	ok := xmlparse.MustParse(`<r><vline><w>x</w></vline></r>`)
	if err := c.ValidateDocument("structure", ok); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	bad := xmlparse.MustParse(`<r><line>x</line></r>`)
	if err := c.ValidateDocument("structure", bad); err == nil {
		t.Error("foreign element accepted")
	}
	nested := xmlparse.MustParse(`<r><w><r>x</r></w></r>`)
	if err := c.ValidateDocument("structure", nested); err == nil {
		t.Error("nested root accepted")
	}
	wrongRoot := xmlparse.MustParse(`<x><w>x</w></x>`)
	if err := c.ValidateDocument("structure", wrongRoot); err == nil {
		t.Error("wrong root accepted")
	}
	if err := c.ValidateDocument("nope", ok); err == nil {
		t.Error("unknown hierarchy accepted")
	}
}

func TestCheckAlignment(t *testing.T) {
	r1 := xmlparse.MustParse(`<r><line>abcd</line></r>`)
	r2 := xmlparse.MustParse(`<r>ab<w>cd</w></r>`)
	s, err := CheckAlignment([]string{"a", "b"}, []*dom.Node{r1, r2})
	if err != nil || s != "abcd" {
		t.Fatalf("aligned: s=%q err=%v", s, err)
	}
	r3 := xmlparse.MustParse(`<r>abXd</r>`)
	_, err = CheckAlignment([]string{"a", "c"}, []*dom.Node{r1, r3})
	if err == nil {
		t.Fatal("misaligned texts accepted")
	}
	ae, ok := err.(*AlignmentError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ae.Offset != 2 {
		t.Errorf("divergence offset = %d, want 2", ae.Offset)
	}
	if !strings.Contains(ae.Error(), "diverge at byte 2") {
		t.Errorf("error text = %q", ae.Error())
	}
	if _, err := CheckAlignment(nil, nil); err == nil {
		t.Error("no documents accepted")
	}
}
