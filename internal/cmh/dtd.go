package cmh

// The paper's Section 3 defines a Concurrent Markup Hierarchy over DTDs:
// "A CMH is a collection (D1,...,Dn) of DTDs and an XML element r such
// that r is present in each Di, no other XML elements are shared by
// different DTDs, and in each Di all elements x ≠ r are reachable from
// r." This file implements the DTD substrate: a parser for the element
// and attribute declarations of XML 1.0 DTDs (<!ELEMENT>, <!ATTLIST>),
// content-model validation of documents against them (deterministic
// evaluation via Brzozowski derivatives of the content-model regular
// expression), reachability analysis, and extraction of CMH Schemas.

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"mhxquery/internal/dom"
	"mhxquery/internal/xmlparse"
)

// ContentKind classifies an element declaration's content specification.
type ContentKind uint8

// Content specification kinds of XML 1.0 §3.2.
const (
	ContentEmpty ContentKind = iota // EMPTY
	ContentAny                      // ANY
	ContentMixed                    // (#PCDATA | a | b)*
	ContentModel                    // children: a regular expression over elements
)

// ElementDecl is one <!ELEMENT name contentspec> declaration.
type ElementDecl struct {
	Name string
	Kind ContentKind
	// Mixed lists the element names admitted in mixed content.
	Mixed []string
	// Model is the content-model expression for ContentModel.
	Model *ContentExpr
}

// AttType is the declared type of an attribute.
type AttType uint8

// Attribute types (a pragmatic subset: tokenized types all validate as
// NMTOKEN-shaped).
const (
	AttCDATA AttType = iota
	AttID
	AttIDREF
	AttNMTOKEN
	AttEnum
)

// AttDecl is one attribute declaration from an <!ATTLIST>.
type AttDecl struct {
	Element string
	Name    string
	Type    AttType
	// Enum lists the allowed values for AttEnum.
	Enum []string
	// Required, Implied, Fixed reflect the default declaration.
	Required bool
	Fixed    bool
	// Default is the default or fixed value ("" if none).
	Default string
}

// ContentOp is a content-model operator.
type ContentOp uint8

// Content-model expression operators.
const (
	OpName    ContentOp = iota // a leaf element name
	OpSeq                      // (a, b, c)
	OpChoice                   // (a | b | c)
	OpOpt                      // x?
	OpStar                     // x*
	OpPlus                     // x+
	OpEpsilon                  // internal: the empty word
)

// ContentExpr is a node of a content-model expression tree.
type ContentExpr struct {
	Op   ContentOp
	Name string
	Kids []*ContentExpr
}

// String renders the expression in DTD syntax.
func (e *ContentExpr) String() string {
	switch e.Op {
	case OpName:
		return e.Name
	case OpEpsilon:
		return "()"
	case OpOpt:
		return e.Kids[0].String() + "?"
	case OpStar:
		return e.Kids[0].String() + "*"
	case OpPlus:
		return e.Kids[0].String() + "+"
	}
	sep := ", "
	if e.Op == OpChoice {
		sep = " | "
	}
	parts := make([]string, len(e.Kids))
	for i, k := range e.Kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// DTD is a parsed document type definition (element and attribute
// declarations; entities and notations are out of scope).
type DTD struct {
	Elements map[string]*ElementDecl
	Attlists map[string][]*AttDecl
}

// ParseDTD parses the <!ELEMENT> and <!ATTLIST> declarations of a DTD
// (an external subset or the bracketed internal subset body). Comments
// and processing instructions are skipped; parameter entities are not
// supported.
func ParseDTD(src string) (*DTD, error) {
	p := &dtdParser{src: src}
	d := &DTD{Elements: map[string]*ElementDecl{}, Attlists: map[string][]*AttDecl{}}
	for {
		p.skipMisc()
		if p.pos >= len(p.src) {
			return d, nil
		}
		switch {
		case strings.HasPrefix(p.src[p.pos:], "<!ELEMENT"):
			decl, err := p.parseElementDecl()
			if err != nil {
				return nil, err
			}
			if _, dup := d.Elements[decl.Name]; dup {
				return nil, fmt.Errorf("dtd: duplicate <!ELEMENT %s>", decl.Name)
			}
			d.Elements[decl.Name] = decl
		case strings.HasPrefix(p.src[p.pos:], "<!ATTLIST"):
			el, atts, err := p.parseAttlist()
			if err != nil {
				return nil, err
			}
			d.Attlists[el] = append(d.Attlists[el], atts...)
		default:
			return nil, fmt.Errorf("dtd: unexpected content at offset %d: %.20q", p.pos, p.src[p.pos:])
		}
	}
}

type dtdParser struct {
	src string
	pos int
}

func (p *dtdParser) skipMisc() {
	for p.pos < len(p.src) {
		switch {
		case p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r':
			p.pos++
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			if end := strings.Index(p.src[p.pos:], "-->"); end >= 0 {
				p.pos += end + 3
			} else {
				p.pos = len(p.src)
			}
		case strings.HasPrefix(p.src[p.pos:], "<?"):
			if end := strings.Index(p.src[p.pos:], "?>"); end >= 0 {
				p.pos += end + 2
			} else {
				p.pos = len(p.src)
			}
		default:
			return
		}
	}
}

func (p *dtdParser) skipWS() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *dtdParser) name() (string, error) {
	r, sz := utf8.DecodeRuneInString(p.src[p.pos:])
	if sz == 0 || !xmlparse.IsNameStart(r) {
		return "", fmt.Errorf("dtd: expected name at offset %d", p.pos)
	}
	start := p.pos
	p.pos += sz
	for p.pos < len(p.src) {
		r, sz = utf8.DecodeRuneInString(p.src[p.pos:])
		if !xmlparse.IsNameChar(r) {
			break
		}
		p.pos += sz
	}
	return p.src[start:p.pos], nil
}

func (p *dtdParser) expect(s string) error {
	if !strings.HasPrefix(p.src[p.pos:], s) {
		return fmt.Errorf("dtd: expected %q at offset %d", s, p.pos)
	}
	p.pos += len(s)
	return nil
}

func (p *dtdParser) parseElementDecl() (*ElementDecl, error) {
	p.pos += len("<!ELEMENT")
	p.skipWS()
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	decl := &ElementDecl{Name: name}
	switch {
	case strings.HasPrefix(p.src[p.pos:], "EMPTY"):
		p.pos += len("EMPTY")
		decl.Kind = ContentEmpty
	case strings.HasPrefix(p.src[p.pos:], "ANY"):
		p.pos += len("ANY")
		decl.Kind = ContentAny
	case strings.HasPrefix(p.src[p.pos:], "(") &&
		strings.HasPrefix(strings.TrimLeft(p.src[p.pos+1:], " \t\n\r"), "#PCDATA"):
		mixed, err := p.parseMixed()
		if err != nil {
			return nil, err
		}
		decl.Kind = ContentMixed
		decl.Mixed = mixed
	default:
		model, err := p.parseCP()
		if err != nil {
			return nil, err
		}
		decl.Kind = ContentModel
		decl.Model = model
	}
	p.skipWS()
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	return decl, nil
}

// parseMixed parses (#PCDATA) or (#PCDATA | a | b)*.
func (p *dtdParser) parseMixed() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	p.skipWS()
	if err := p.expect("#PCDATA"); err != nil {
		return nil, err
	}
	var names []string
	for {
		p.skipWS()
		if strings.HasPrefix(p.src[p.pos:], ")") {
			p.pos++
			if len(names) > 0 {
				if err := p.expect("*"); err != nil {
					return nil, fmt.Errorf("dtd: mixed content with names requires ')*'")
				}
			} else if strings.HasPrefix(p.src[p.pos:], "*") {
				p.pos++
			}
			return names, nil
		}
		if err := p.expect("|"); err != nil {
			return nil, err
		}
		p.skipWS()
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
	}
}

// parseCP parses a content particle: name or (…) group, with ?, * or +.
func (p *dtdParser) parseCP() (*ContentExpr, error) {
	p.skipWS()
	var e *ContentExpr
	if strings.HasPrefix(p.src[p.pos:], "(") {
		p.pos++
		group, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		e = group
	} else {
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		e = &ContentExpr{Op: OpName, Name: n}
	}
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '?':
			p.pos++
			e = &ContentExpr{Op: OpOpt, Kids: []*ContentExpr{e}}
		case '*':
			p.pos++
			e = &ContentExpr{Op: OpStar, Kids: []*ContentExpr{e}}
		case '+':
			p.pos++
			e = &ContentExpr{Op: OpPlus, Kids: []*ContentExpr{e}}
		}
	}
	return e, nil
}

// parseGroup parses the inside of (…): cp (, cp)* or cp (| cp)*.
func (p *dtdParser) parseGroup() (*ContentExpr, error) {
	first, err := p.parseCP()
	if err != nil {
		return nil, err
	}
	kids := []*ContentExpr{first}
	op := ContentOp(0)
	sep := byte(0)
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("dtd: unterminated content-model group")
		}
		c := p.src[p.pos]
		if c == ')' {
			p.pos++
			if len(kids) == 1 {
				return kids[0], nil
			}
			return &ContentExpr{Op: op, Kids: kids}, nil
		}
		if c != ',' && c != '|' {
			return nil, fmt.Errorf("dtd: expected ',', '|' or ')' at offset %d", p.pos)
		}
		if sep == 0 {
			sep = c
			if c == ',' {
				op = OpSeq
			} else {
				op = OpChoice
			}
		} else if sep != c {
			return nil, fmt.Errorf("dtd: mixed ',' and '|' in one group at offset %d", p.pos)
		}
		p.pos++
		kid, err := p.parseCP()
		if err != nil {
			return nil, err
		}
		kids = append(kids, kid)
	}
}

func (p *dtdParser) parseAttlist() (string, []*AttDecl, error) {
	p.pos += len("<!ATTLIST")
	p.skipWS()
	el, err := p.name()
	if err != nil {
		return "", nil, err
	}
	var out []*AttDecl
	for {
		p.skipWS()
		if strings.HasPrefix(p.src[p.pos:], ">") {
			p.pos++
			return el, out, nil
		}
		a := &AttDecl{Element: el}
		if a.Name, err = p.name(); err != nil {
			return "", nil, err
		}
		p.skipWS()
		switch {
		case strings.HasPrefix(p.src[p.pos:], "CDATA"):
			p.pos += len("CDATA")
			a.Type = AttCDATA
		case strings.HasPrefix(p.src[p.pos:], "IDREFS"), strings.HasPrefix(p.src[p.pos:], "IDREF"):
			if strings.HasPrefix(p.src[p.pos:], "IDREFS") {
				p.pos += len("IDREFS")
			} else {
				p.pos += len("IDREF")
			}
			a.Type = AttIDREF
		case strings.HasPrefix(p.src[p.pos:], "ID"):
			p.pos += len("ID")
			a.Type = AttID
		case strings.HasPrefix(p.src[p.pos:], "NMTOKENS"), strings.HasPrefix(p.src[p.pos:], "NMTOKEN"),
			strings.HasPrefix(p.src[p.pos:], "ENTITIES"), strings.HasPrefix(p.src[p.pos:], "ENTITY"),
			strings.HasPrefix(p.src[p.pos:], "NOTATION"):
			for _, kw := range []string{"NMTOKENS", "NMTOKEN", "ENTITIES", "ENTITY", "NOTATION"} {
				if strings.HasPrefix(p.src[p.pos:], kw) {
					p.pos += len(kw)
					break
				}
			}
			a.Type = AttNMTOKEN
		case strings.HasPrefix(p.src[p.pos:], "("):
			p.pos++
			a.Type = AttEnum
			for {
				p.skipWS()
				v, err := p.name()
				if err != nil {
					return "", nil, err
				}
				a.Enum = append(a.Enum, v)
				p.skipWS()
				if strings.HasPrefix(p.src[p.pos:], ")") {
					p.pos++
					break
				}
				if err := p.expect("|"); err != nil {
					return "", nil, err
				}
			}
		default:
			return "", nil, fmt.Errorf("dtd: unknown attribute type for %s/%s", el, a.Name)
		}
		p.skipWS()
		switch {
		case strings.HasPrefix(p.src[p.pos:], "#REQUIRED"):
			p.pos += len("#REQUIRED")
			a.Required = true
		case strings.HasPrefix(p.src[p.pos:], "#IMPLIED"):
			p.pos += len("#IMPLIED")
		case strings.HasPrefix(p.src[p.pos:], "#FIXED"):
			p.pos += len("#FIXED")
			a.Fixed = true
			p.skipWS()
			if a.Default, err = p.quoted(); err != nil {
				return "", nil, err
			}
		default:
			if a.Default, err = p.quoted(); err != nil {
				return "", nil, err
			}
		}
		out = append(out, a)
	}
}

func (p *dtdParser) quoted() (string, error) {
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", fmt.Errorf("dtd: expected quoted value at offset %d", p.pos)
	}
	q := p.src[p.pos]
	end := strings.IndexByte(p.src[p.pos+1:], q)
	if end < 0 {
		return "", fmt.Errorf("dtd: unterminated default value")
	}
	v := p.src[p.pos+1 : p.pos+1+end]
	p.pos += end + 2
	return v, nil
}

// ---- content-model matching via Brzozowski derivatives --------------------

// nullable reports whether the expression matches the empty word.
func nullable(e *ContentExpr) bool {
	switch e.Op {
	case OpEpsilon, OpOpt, OpStar:
		return true
	case OpName:
		return false
	case OpPlus:
		return nullable(e.Kids[0])
	case OpSeq:
		for _, k := range e.Kids {
			if !nullable(k) {
				return false
			}
		}
		return true
	case OpChoice:
		for _, k := range e.Kids {
			if nullable(k) {
				return true
			}
		}
		return false
	}
	return false
}

var exprFail = &ContentExpr{Op: OpChoice} // empty choice: matches nothing

// derive computes the Brzozowski derivative of e with respect to name.
func derive(e *ContentExpr, name string) *ContentExpr {
	switch e.Op {
	case OpEpsilon:
		return exprFail
	case OpName:
		if e.Name == name {
			return &ContentExpr{Op: OpEpsilon}
		}
		return exprFail
	case OpOpt:
		return derive(e.Kids[0], name)
	case OpStar:
		return seq(derive(e.Kids[0], name), e)
	case OpPlus:
		return seq(derive(e.Kids[0], name), &ContentExpr{Op: OpStar, Kids: e.Kids})
	case OpChoice:
		var alts []*ContentExpr
		for _, k := range e.Kids {
			if d := derive(k, name); d != exprFail {
				alts = append(alts, d)
			}
		}
		switch len(alts) {
		case 0:
			return exprFail
		case 1:
			return alts[0]
		}
		return &ContentExpr{Op: OpChoice, Kids: alts}
	case OpSeq:
		// d(k1 k2 … kn) = d(k1) k2…kn  |  (if k1 nullable) d(k2…kn)
		rest := e.Kids[1:]
		var restExpr *ContentExpr
		if len(rest) == 0 {
			restExpr = &ContentExpr{Op: OpEpsilon}
		} else if len(rest) == 1 {
			restExpr = rest[0]
		} else {
			restExpr = &ContentExpr{Op: OpSeq, Kids: rest}
		}
		first := seq(derive(e.Kids[0], name), restExpr)
		if !nullable(e.Kids[0]) {
			return first
		}
		second := derive(restExpr, name)
		switch {
		case first == exprFail:
			return second
		case second == exprFail:
			return first
		}
		return &ContentExpr{Op: OpChoice, Kids: []*ContentExpr{first, second}}
	}
	return exprFail
}

func seq(a, b *ContentExpr) *ContentExpr {
	if a == exprFail || b == exprFail {
		return exprFail
	}
	if a.Op == OpEpsilon {
		return b
	}
	if b.Op == OpEpsilon {
		return a
	}
	return &ContentExpr{Op: OpSeq, Kids: []*ContentExpr{a, b}}
}

// MatchContent reports whether a sequence of child element names matches
// the content model.
func MatchContent(model *ContentExpr, names []string) bool {
	e := model
	for _, n := range names {
		e = derive(e, n)
		if e == exprFail {
			return false
		}
	}
	return nullable(e)
}

// ---- document validation ----------------------------------------------------

// ValidationError describes one validity violation.
type ValidationError struct {
	Element string
	Msg     string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("dtd: <%s>: %s", e.Element, e.Msg)
}

// Validate checks a document tree against the DTD: declared elements,
// content models (with the XML whitespace allowance in element content),
// attribute declarations, REQUIRED/FIXED/enumerated attributes, and ID
// uniqueness. It returns all violations found.
func (d *DTD) Validate(root *dom.Node) []error {
	var errs []error
	ids := map[string]bool{}
	var visit func(n *dom.Node)
	visit = func(n *dom.Node) {
		if n.Kind != dom.Element {
			return
		}
		decl := d.Elements[n.Name]
		if decl == nil {
			errs = append(errs, &ValidationError{n.Name, "element not declared"})
		} else {
			errs = append(errs, d.checkContent(n, decl)...)
		}
		errs = append(errs, d.checkAttrs(n, ids)...)
		for _, c := range n.Children {
			visit(c)
		}
	}
	visit(root)
	return errs
}

func (d *DTD) checkContent(n *dom.Node, decl *ElementDecl) []error {
	var errs []error
	switch decl.Kind {
	case ContentAny:
	case ContentEmpty:
		if len(n.Children) > 0 {
			errs = append(errs, &ValidationError{n.Name, "declared EMPTY but has content"})
		}
	case ContentMixed:
		allowed := map[string]bool{}
		for _, m := range decl.Mixed {
			allowed[m] = true
		}
		for _, c := range n.Children {
			if c.Kind == dom.Element && !allowed[c.Name] {
				errs = append(errs, &ValidationError{n.Name,
					fmt.Sprintf("child <%s> not allowed in mixed content %v", c.Name, decl.Mixed)})
			}
		}
	case ContentModel:
		var names []string
		for _, c := range n.Children {
			switch c.Kind {
			case dom.Element:
				names = append(names, c.Name)
			case dom.Text:
				if !c.IsWhitespace() {
					errs = append(errs, &ValidationError{n.Name,
						"character data not allowed in element content"})
				}
			}
		}
		if !MatchContent(decl.Model, names) {
			errs = append(errs, &ValidationError{n.Name,
				fmt.Sprintf("children %v do not match content model %s", names, decl.Model)})
		}
	}
	return errs
}

func (d *DTD) checkAttrs(n *dom.Node, ids map[string]bool) []error {
	var errs []error
	decls := d.Attlists[n.Name]
	declared := map[string]*AttDecl{}
	for _, a := range decls {
		declared[a.Name] = a
	}
	for _, a := range n.Attrs {
		ad := declared[a.Name]
		if ad == nil {
			if len(decls) > 0 || d.Elements[n.Name] != nil {
				errs = append(errs, &ValidationError{n.Name,
					fmt.Sprintf("attribute %q not declared", a.Name)})
			}
			continue
		}
		switch ad.Type {
		case AttEnum:
			ok := false
			for _, v := range ad.Enum {
				if a.Data == v {
					ok = true
				}
			}
			if !ok {
				errs = append(errs, &ValidationError{n.Name,
					fmt.Sprintf("attribute %s=%q not in %v", a.Name, a.Data, ad.Enum)})
			}
		case AttID:
			if ids[a.Data] {
				errs = append(errs, &ValidationError{n.Name,
					fmt.Sprintf("duplicate ID %q", a.Data)})
			}
			ids[a.Data] = true
		}
		if ad.Fixed && a.Data != ad.Default {
			errs = append(errs, &ValidationError{n.Name,
				fmt.Sprintf("attribute %s must be fixed to %q", a.Name, ad.Default)})
		}
	}
	for _, ad := range decls {
		if !ad.Required {
			continue
		}
		if _, ok := n.Attr(ad.Name); !ok {
			errs = append(errs, &ValidationError{n.Name,
				fmt.Sprintf("required attribute %q missing", ad.Name)})
		}
	}
	return errs
}

// ---- CMH from DTDs ------------------------------------------------------------

// elementNames returns all element names declared in the DTD.
func (d *DTD) elementNames() []string {
	var out []string
	for name := range d.Elements {
		out = append(out, name)
	}
	return out
}

// Reachable returns the element names reachable from root through
// content models and mixed content.
func (d *DTD) Reachable(root string) map[string]bool {
	seen := map[string]bool{}
	var visit func(name string)
	var visitExpr func(e *ContentExpr)
	visitExpr = func(e *ContentExpr) {
		if e == nil {
			return
		}
		if e.Op == OpName {
			visit(e.Name)
			return
		}
		for _, k := range e.Kids {
			visitExpr(k)
		}
	}
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		decl := d.Elements[name]
		if decl == nil {
			return
		}
		for _, m := range decl.Mixed {
			visit(m)
		}
		visitExpr(decl.Model)
	}
	visit(root)
	return seen
}

// FromDTDs builds a CMH from per-hierarchy DTDs, verifying the paper's
// Section 3 conditions: the root is declared in every DTD, no other
// element name is shared between different DTDs, and every declared
// element is reachable from the root.
func FromDTDs(root string, names []string, dtds []*DTD) (*CMH, error) {
	if len(names) != len(dtds) || len(dtds) == 0 {
		return nil, fmt.Errorf("cmh: need one name per DTD")
	}
	c := &CMH{Root: root}
	for i, d := range dtds {
		if d.Elements[root] == nil {
			return nil, fmt.Errorf("cmh: DTD %q does not declare the root element <%s>", names[i], root)
		}
		reach := d.Reachable(root)
		var elems []string
		for _, e := range d.elementNames() {
			if e == root {
				continue
			}
			if !reach[e] {
				return nil, fmt.Errorf("cmh: DTD %q: element <%s> not reachable from <%s>", names[i], e, root)
			}
			elems = append(elems, e)
		}
		c.Hierarchies = append(c.Hierarchies, Schema{Name: names[i], Elements: elems})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
