package synopsis

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mhxquery/internal/dom"
)

// elem builds an interned element; syms are the name itself hashed to a
// small stable table so tests can read dumps.
func elem(sym int32, kids ...*dom.Node) *dom.Node {
	n := &dom.Node{Kind: dom.Element, Name: fmt.Sprintf("n%d", sym), NameSym: sym}
	for _, k := range kids {
		n.AppendChild(k)
	}
	return n
}

func text() *dom.Node { return &dom.Node{Kind: dom.Text, Data: "t"} }

func TestBuildCountsPaths(t *testing.T) {
	// <a> <b>t</b> <b><c/></b> </a>  <a>t</a>
	tops := []*dom.Node{
		elem(1, elem(2, text()), elem(2, elem(3))),
		elem(1, text()),
		text(),
	}
	s := Build(tops)
	if s.Texts != 1 {
		t.Fatalf("top texts = %d, want 1", s.Texts)
	}
	a := s.Top(1)
	if a == nil || a.Count != 2 || a.Texts != 1 {
		t.Fatalf("path /a = %+v", a)
	}
	b := a.Kid(2)
	if b == nil || b.Count != 2 || b.Texts != 1 {
		t.Fatalf("path /a/b = %+v", b)
	}
	c := b.Kid(3)
	if c == nil || c.Count != 1 || c.Texts != 0 || len(c.Kids) != 0 {
		t.Fatalf("path /a/b/c = %+v", c)
	}
	if got := s.Top(9); got != nil {
		t.Fatalf("missing top = %+v", got)
	}
	el, tx := s.Totals()
	if el != 5 || tx != 3 {
		t.Fatalf("Totals = %d,%d want 5,3", el, tx)
	}
	st := s.Summary()
	if st.Paths != 3 || st.Elements != 5 || st.Texts != 3 || st.Names != 3 || st.MaxFanout != 1 {
		t.Fatalf("Summary = %+v", st)
	}
	dump := s.Dump(func(sym int32) string { return fmt.Sprintf("n%d", sym) })
	if !strings.Contains(dump, "/n1/n2 count=2 texts=1") {
		t.Fatalf("Dump missing path line:\n%s", dump)
	}
}

func TestKidsSortedBySymbol(t *testing.T) {
	tops := []*dom.Node{elem(5), elem(2), elem(9), elem(2), elem(1)}
	s := Build(tops)
	var syms []int32
	for _, k := range s.Kids {
		syms = append(syms, k.Sym)
	}
	if fmt.Sprint(syms) != "[1 2 5 9]" {
		t.Fatalf("top syms = %v", syms)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := Build([]*dom.Node{elem(1, elem(2))})
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Kids[0].Kids[0].Count++
	if s.Equal(c) {
		t.Fatal("clone shares nodes with original")
	}
}

// randomTree builds a random element tree over a small symbol alphabet.
func randomTree(rng *rand.Rand, depth int) *dom.Node {
	n := elem(int32(1 + rng.Intn(6)))
	if depth >= 4 {
		return n
	}
	for i := rng.Intn(4); i > 0; i-- {
		if rng.Intn(4) == 0 {
			n.AppendChild(text())
		} else {
			n.AppendChild(randomTree(rng, depth+1))
		}
	}
	return n
}

// TestPatchRegionMatchesRebuild replaces a random node's child list and
// checks the patched synopsis equals a from-scratch rebuild.
func TestPatchRegionMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tops := []*dom.Node{randomTree(rng, 0), randomTree(rng, 0), text()}
		s := Build(tops)

		// Pick a random element (anywhere, including tops) as the
		// region parent and replace its children with a fresh random
		// child list.
		var all []*dom.Node
		var collect func(n *dom.Node)
		collect = func(n *dom.Node) {
			if n.Kind != dom.Element {
				return
			}
			all = append(all, n)
			for _, c := range n.Children {
				collect(c)
			}
		}
		for _, top := range tops {
			collect(top)
		}
		target := all[rng.Intn(len(all))]

		oldKids := append([]*dom.Node(nil), target.Children...)
		var newKids []*dom.Node
		for i := rng.Intn(4); i > 0; i-- {
			if rng.Intn(3) == 0 {
				newKids = append(newKids, text())
			} else {
				newKids = append(newKids, randomTree(rng, 3))
			}
		}

		// Path from top to target, top-down.
		var path []int32
		for n := target; n != nil; n = n.Parent {
			path = append([]int32{n.NameSym}, path...)
		}

		patched := s.Clone()
		if !patched.PatchRegion(path, oldKids, newKids) {
			t.Fatalf("seed %d: PatchRegion reported inconsistency", seed)
		}
		target.Children = nil
		for _, k := range newKids {
			target.AppendChild(k)
		}
		want := Build(tops)
		if !patched.Equal(want) {
			nameOf := func(sym int32) string { return fmt.Sprintf("n%d", sym) }
			t.Fatalf("seed %d: patched synopsis diverges\npatched:\n%swant:\n%s",
				seed, patched.Dump(nameOf), want.Dump(nameOf))
		}
	}
}

func TestPatchRegionDetectsInconsistency(t *testing.T) {
	s := Build([]*dom.Node{elem(1, elem(2))})
	// Subtracting a child that was never there must fail, not panic.
	if s.Clone().PatchRegion([]int32{1}, []*dom.Node{elem(3)}, nil) {
		t.Fatal("PatchRegion accepted subtraction of an absent path")
	}
	// A path that does not exist must fail.
	if s.Clone().PatchRegion([]int32{7}, nil, nil) {
		t.Fatal("PatchRegion accepted a missing path")
	}
	// An empty path addresses the tree level: replacing the whole top
	// list with itself is a no-op, and a full replacement rebuilds.
	tops := []*dom.Node{elem(1, elem(2))}
	c := s.Clone()
	if !c.PatchRegion(nil, tops, tops) || !c.Equal(s) {
		t.Fatal("tree-level identity patch changed the synopsis")
	}
	c = s.Clone()
	if !c.PatchRegion(nil, tops, []*dom.Node{elem(4), text()}) ||
		!c.Equal(Build([]*dom.Node{elem(4), text()})) {
		t.Fatal("tree-level replacement patch wrong")
	}
	// Subtracting more texts than recorded must fail.
	if s.Clone().PatchRegion([]int32{1}, []*dom.Node{text()}, nil) {
		t.Fatal("PatchRegion accepted text undercount")
	}
}
