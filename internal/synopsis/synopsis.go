// Package synopsis implements a strong-dataguide path synopsis over one
// markup hierarchy: a tree with one node per distinct rooted label path,
// annotated with the number of element instances on that path and the
// number of text-node children those instances carry. Because every
// hierarchy of a KyGODDAG is a plain tree over interned name symbols,
// the synopsis is exact — a rooted child/descendant path expression
// selects precisely the instances the matching synopsis nodes count —
// which is what lets the query planner promise q-error 1.0 on pure
// structural paths.
//
// The synopsis mirrors the structural name index's lifecycle: built
// lazily from the node storage on first use, patched incrementally
// across copy-on-write update versions (package core), and persisted in
// the columnar slab image (package slab) so memory-mapped opens get
// statistics without touching node storage.
package synopsis

import (
	"fmt"
	"sort"
	"strings"

	"mhxquery/internal/dom"
)

// Node is one distinct rooted label path of the hierarchy.
type Node struct {
	// Sym is the interned element-name symbol of the path's last label.
	Sym int32
	// Count is the number of element instances on this path.
	Count int64
	// Texts is the number of text-node children carried by those
	// instances in total.
	Texts int64
	// Kids are the child paths, ascending by Sym. len(Kids) is the
	// path's distinct-name child fan-out.
	Kids []*Node
}

// Tree is the synopsis of one hierarchy. The top level plays the role
// of the shared document root: Kids are the paths of the hierarchy's
// top-level elements, Texts counts top-level text nodes.
type Tree struct {
	Kids  []*Node
	Texts int64
}

// Build computes the synopsis from the hierarchy's top-level nodes
// (elements and texts parented at the shared root). Only elements with
// an interned name participate as path labels — the same guard the
// structural name index applies — and comments/PIs are ignored.
func Build(tops []*dom.Node) *Tree {
	t := &Tree{}
	t.Kids, t.Texts = addLevel(t.Kids, tops)
	return t
}

// addLevel folds one dom child list into kids, returning the updated
// kid slice and the number of text nodes seen at this level.
func addLevel(kids []*Node, children []*dom.Node) ([]*Node, int64) {
	var texts int64
	for _, c := range children {
		switch {
		case c.Kind == dom.Text:
			texts++
		case c.Kind == dom.Element && c.NameSym != 0:
			kids = addSubtree(kids, c)
		}
	}
	return kids, texts
}

// addSubtree adds one element instance (and its whole subtree) to kids.
func addSubtree(kids []*Node, n *dom.Node) []*Node {
	kids, k := ensureKid(kids, n.NameSym)
	k.Count++
	var texts int64
	k.Kids, texts = addLevel(k.Kids, n.Children)
	k.Texts += texts
	return kids
}

// subSubtree removes one element instance's contribution from kids,
// pruning paths whose last instance disappeared. It reports whether the
// synopsis was consistent with the removal (a miscount means the caller
// must fall back to a from-scratch rebuild).
func subSubtree(kids []*Node, n *dom.Node) ([]*Node, bool) {
	i := findKid(kids, n.NameSym)
	if i < 0 {
		return kids, false
	}
	k := kids[i]
	k.Count--
	ok := true
	for _, c := range n.Children {
		switch {
		case c.Kind == dom.Text:
			k.Texts--
		case c.Kind == dom.Element && c.NameSym != 0:
			var sok bool
			k.Kids, sok = subSubtree(k.Kids, c)
			ok = ok && sok
		}
	}
	if k.Count < 0 || k.Texts < 0 {
		return kids, false
	}
	if k.Count == 0 {
		// The last instance of this path is gone; its subtree counts
		// must be gone with it, or the synopsis was inconsistent.
		if k.Texts != 0 || len(k.Kids) != 0 {
			return kids, false
		}
		kids = append(kids[:i], kids[i+1:]...)
	}
	return kids, ok
}

// ensureKid returns the kid with the given symbol, inserting a fresh
// zero-count node in ascending-symbol position when absent.
func ensureKid(kids []*Node, sym int32) ([]*Node, *Node) {
	i := sort.Search(len(kids), func(i int) bool { return kids[i].Sym >= sym })
	if i < len(kids) && kids[i].Sym == sym {
		return kids, kids[i]
	}
	k := &Node{Sym: sym}
	kids = append(kids, nil)
	copy(kids[i+1:], kids[i:])
	kids[i] = k
	return kids, k
}

// findKid returns the index of the kid with the given symbol, or -1.
func findKid(kids []*Node, sym int32) int {
	i := sort.Search(len(kids), func(i int) bool { return kids[i].Sym >= sym })
	if i < len(kids) && kids[i].Sym == sym {
		return i
	}
	return -1
}

// Kid returns the child path with the given symbol, or nil.
func (n *Node) Kid(sym int32) *Node {
	if i := findKid(n.Kids, sym); i >= 0 {
		return n.Kids[i]
	}
	return nil
}

// Top returns the top-level path with the given symbol, or nil.
func (t *Tree) Top(sym int32) *Node {
	if i := findKid(t.Kids, sym); i >= 0 {
		return t.Kids[i]
	}
	return nil
}

// Clone returns a deep copy (the update engine patches a private copy
// of the previous version's synopsis).
func (t *Tree) Clone() *Tree {
	return &Tree{Kids: cloneKids(t.Kids), Texts: t.Texts}
}

func cloneKids(kids []*Node) []*Node {
	if kids == nil {
		return nil
	}
	out := make([]*Node, len(kids))
	for i, k := range kids {
		out[i] = &Node{Sym: k.Sym, Count: k.Count, Texts: k.Texts, Kids: cloneKids(k.Kids)}
	}
	return out
}

// PatchRegion applies a region replacement: the element reached by path
// (name symbols top-down from a hierarchy top, inclusive of the region
// parent itself) kept its name and position, but its child list changed
// from oldKids to newKids. An empty path addresses the tree level
// itself (the shared root's child list). The parent's own Count is
// untouched; its Texts and subtree counts are re-derived by subtracting
// the old children's contributions and adding the new ones. Returns
// false — and leaves the tree in an unspecified state — if the synopsis
// disagrees with the old contributions; callers then fall back to a
// from-scratch rebuild.
func (t *Tree) PatchRegion(path []int32, oldKids, newKids []*dom.Node) bool {
	kids, texts := &t.Kids, &t.Texts
	for _, sym := range path {
		i := findKid(*kids, sym)
		if i < 0 {
			return false
		}
		p := (*kids)[i]
		kids, texts = &p.Kids, &p.Texts
	}
	ok := true
	for _, c := range oldKids {
		switch {
		case c.Kind == dom.Text:
			*texts--
		case c.Kind == dom.Element && c.NameSym != 0:
			var sok bool
			*kids, sok = subSubtree(*kids, c)
			ok = ok && sok
		}
	}
	if *texts < 0 {
		return false
	}
	var add int64
	*kids, add = addLevel(*kids, newKids)
	*texts += add
	return ok
}

// Equal reports whether two synopses are field-for-field identical.
func (t *Tree) Equal(o *Tree) bool {
	if t == nil || o == nil {
		return t == o
	}
	return t.Texts == o.Texts && equalKids(t.Kids, o.Kids)
}

func equalKids(a, b []*Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Sym != b[i].Sym || a[i].Count != b[i].Count ||
			a[i].Texts != b[i].Texts || !equalKids(a[i].Kids, b[i].Kids) {
			return false
		}
	}
	return true
}

// Walk visits every path node in preorder, kids in ascending symbol
// order, calling f with the node and its depth (0 for top-level paths).
func (t *Tree) Walk(f func(n *Node, depth int)) {
	var rec func(kids []*Node, depth int)
	rec = func(kids []*Node, depth int) {
		for _, k := range kids {
			f(k, depth)
			rec(k.Kids, depth+1)
		}
	}
	rec(t.Kids, 0)
}

// Totals returns the tree-wide element and text-node counts.
func (t *Tree) Totals() (elems, texts int64) {
	texts = t.Texts
	t.Walk(func(n *Node, _ int) {
		elems += n.Count
		texts += n.Texts
	})
	return elems, texts
}

// Stats summarizes the synopsis: distinct rooted paths, total element
// and text instances, the widest distinct-name fan-out under any single
// path, and the number of distinct element names.
type Stats struct {
	Paths     int
	Elements  int64
	Texts     int64
	MaxFanout int
	Names     int
}

// Summary computes the synopsis statistics.
func (t *Tree) Summary() Stats {
	s := Stats{MaxFanout: len(t.Kids)}
	names := make(map[int32]struct{})
	s.Elements, s.Texts = 0, t.Texts
	t.Walk(func(n *Node, _ int) {
		s.Paths++
		s.Elements += n.Count
		s.Texts += n.Texts
		names[n.Sym] = struct{}{}
		if len(n.Kids) > s.MaxFanout {
			s.MaxFanout = len(n.Kids)
		}
	})
	s.Names = len(names)
	return s
}

// Dump renders the synopsis one path per line ("/a/b count=3 texts=1"),
// resolving symbols through nameOf — the diagnostic the property tests
// print when an incrementally patched synopsis diverges from a rebuild.
func (t *Tree) Dump(nameOf func(int32) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/ texts=%d\n", t.Texts)
	var rec func(kids []*Node, prefix string)
	rec = func(kids []*Node, prefix string) {
		for _, k := range kids {
			p := prefix + "/" + nameOf(k.Sym)
			fmt.Fprintf(&b, "%s count=%d texts=%d\n", p, k.Count, k.Texts)
			rec(k.Kids, p)
		}
	}
	rec(t.Kids, "")
	return b.String()
}
