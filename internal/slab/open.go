package slab

import (
	"encoding/binary"
	"hash/crc32"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
	"mhxquery/internal/synopsis"
)

// Slab is a validated, opened image. All accessors serve zero-copy
// views of the underlying bytes where the host allows; the dom.Node
// hierarchies are materialized lazily by the core.Document returned
// from Document.
type Slab struct {
	rev     uint64
	snapSeq uint64

	// names is the symbol table (copied out of the image: names become
	// map keys and long-lived node fields, and they are tiny next to
	// the node columns). names[:numDocNames] is the document's interned
	// name table.
	names       []string
	numDocNames int

	text        string // aliases the image
	bounds      []int  // aliases the image on 64-bit little-endian hosts
	rootNameSym uint32
	rootAttrs   []uint32 // (name, value) symbol pairs
	hiers       []slabHier
}

type slabHier struct {
	nameSym        uint32
	nNodes, nAttrs int
	kinds          []byte
	nameSyms       []uint32
	dataSyms       []uint32
	starts         []uint32
	ends           []uint32
	lasts          []uint32
	attrIdx        []uint32
	attrs          []uint32          // (name, value) symbol pairs
	runs           map[int32][]int32 // aliased ordinal runs
	syn            *synopsis.Tree    // nil for pre-synopsis images
}

// Rev returns the document revision recorded in the image.
func (s *Slab) Rev() uint64 { return s.rev }

// SnapSeq returns the WAL sequence number the snapshot covers.
func (s *Slab) SnapSeq() uint64 { return s.snapSeq }

func (s *Slab) symStr(sym uint32) string {
	if sym == 0 {
		return ""
	}
	return s.names[sym-1]
}

// Open validates data as a slab image and returns the frozen view.
// Every checksum and structural invariant is verified here — the
// bytes are untrusted (they come off a mapped file) — so the lazy
// materialization that follows can never fail or read out of range.
// Malformed input yields an error wrapping ErrCorrupt, never a panic.
//
// data must stay immutable and live for as long as the returned Slab
// and any document opened from it: text slices, the boundary array and
// index runs alias it directly.
func Open(data []byte) (*Slab, error) {
	if len(data) < headerLen || string(data[:8]) != magic {
		return nil, corrupt("bad magic")
	}
	s := &Slab{
		rev:     binary.LittleEndian.Uint64(data[8:]),
		snapSeq: binary.LittleEndian.Uint64(data[16:]),
	}
	nHiers := binary.LittleEndian.Uint32(data[24:])
	nSections := binary.LittleEndian.Uint32(data[28:])
	totalLen := binary.LittleEndian.Uint64(data[32:])
	if totalLen != uint64(len(data)) {
		return nil, corrupt("image length %d does not match header %d", len(data), totalLen)
	}
	if nHiers >= dom.LeafHier {
		return nil, corrupt("implausible hierarchy count %d", nHiers)
	}
	// Current images carry a synopsis section per hierarchy (stride 4);
	// pre-synopsis images (stride 3) still open — their synopses simply
	// stay lazily buildable.
	stride := uint32(4)
	switch nSections {
	case 5 + 4*nHiers:
	case 5 + 3*nHiers:
		stride = 3
	default:
		return nil, corrupt("section count %d does not match %d hierarchies", nSections, nHiers)
	}
	tocLen := tocEntrLen * int(nSections)
	if len(data) < headerLen+tocLen {
		return nil, corrupt("truncated section table")
	}
	if binary.LittleEndian.Uint32(data[44:]) != 0 {
		return nil, corrupt("nonzero header padding")
	}
	sum := crc32.Checksum(data[:40], crcTable)
	sum = crc32.Update(sum, crcTable, data[headerLen:headerLen+tocLen])
	if sum != binary.LittleEndian.Uint32(data[40:]) {
		return nil, corrupt("header checksum mismatch")
	}

	// Sections, in the canonical order the encoder writes.
	type want struct{ kind, hier uint32 }
	wants := []want{
		{kindSymtab, docLevel}, {kindText, docLevel}, {kindBounds, docLevel},
		{kindRootInfo, docLevel}, {kindHierDir, docLevel},
	}
	for hi := uint32(0); hi < nHiers; hi++ {
		wants = append(wants, want{kindNodes, hi}, want{kindAttrs, hi}, want{kindRuns, hi})
		if stride == 4 {
			wants = append(wants, want{kindSynopsis, hi})
		}
	}
	secs := make([][]byte, len(wants))
	prevEnd := uint64(headerLen + tocLen)
	for i, w := range wants {
		e := data[headerLen+tocEntrLen*i:]
		kind := binary.LittleEndian.Uint32(e[0:])
		hier := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if kind != w.kind || hier != w.hier {
			return nil, corrupt("section %d has kind %d/hier %d, want %d/%d", i, kind, hier, w.kind, w.hier)
		}
		if off%8 != 0 || off < prevEnd || length > totalLen || off > totalLen-length {
			return nil, corrupt("section %d span [%d,+%d) out of range", i, off, length)
		}
		// Alignment gaps are zero by format; checking them keeps every
		// byte of the image accounted for (CRCs cover the rest).
		if !allZero(data[prevEnd:off]) {
			return nil, corrupt("nonzero padding before section %d", i)
		}
		sec := data[off : off+length]
		if crc32.Checksum(sec, crcTable) != binary.LittleEndian.Uint32(e[24:]) {
			return nil, corrupt("section %d checksum mismatch", i)
		}
		secs[i] = sec
		prevEnd = off + length
	}
	if !allZero(data[prevEnd:]) {
		return nil, corrupt("nonzero trailing padding")
	}

	if err := s.parseSymtab(secs[0]); err != nil {
		return nil, err
	}
	s.text = byteString(secs[1])
	if uint64(len(s.text)) >= 1<<32 {
		return nil, corrupt("base text exceeds u32 span limit")
	}
	if err := s.parseBounds(secs[2]); err != nil {
		return nil, err
	}
	if err := s.parseRootInfo(secs[3]); err != nil {
		return nil, err
	}
	if err := s.parseHiers(secs[4], secs[5:], int(nHiers), int(stride)); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Slab) parseSymtab(b []byte) error {
	if len(b) < 8 {
		return corrupt("truncated symbol table")
	}
	nSyms := binary.LittleEndian.Uint32(b[0:])
	numDoc := binary.LittleEndian.Uint32(b[4:])
	if numDoc > nSyms || uint64(nSyms) > uint64(len(b))/4 {
		return corrupt("implausible symbol count %d (doc %d)", nSyms, numDoc)
	}
	offEnd := 8 + 4*(int(nSyms)+1)
	if len(b) < offEnd {
		return corrupt("truncated symbol offsets")
	}
	offs := u32view(b[8:offEnd])
	blob := b[offEnd:]
	if offs[0] != 0 || offs[nSyms] != uint32(len(blob)) {
		return corrupt("symbol blob bounds [%d,%d) do not cover %d bytes", offs[0], offs[nSyms], len(blob))
	}
	s.names = make([]string, nSyms)
	for i := uint32(0); i < nSyms; i++ {
		if offs[i] > offs[i+1] {
			return corrupt("symbol %d has descending offsets", i+1)
		}
		s.names[i] = string(blob[offs[i]:offs[i+1]])
	}
	// The first numDoc symbols reconstruct the document's name map; a
	// duplicate would silently drop a symbol.
	seen := make(map[string]bool, numDoc)
	for i := uint32(0); i < numDoc; i++ {
		if seen[s.names[i]] {
			return corrupt("duplicate document name %q", s.names[i])
		}
		seen[s.names[i]] = true
	}
	s.numDocNames = int(numDoc)
	return nil
}

func (s *Slab) parseBounds(b []byte) error {
	if len(b)%8 != 0 || len(b) == 0 {
		return corrupt("boundary array of %d bytes", len(b))
	}
	n := len(b) / 8
	prev := int64(-1)
	for i := 0; i < n; i++ {
		v := binary.LittleEndian.Uint64(b[8*i:])
		if v > uint64(len(s.text)) || int64(v) <= prev {
			return corrupt("boundary %d = %d out of order or range", i, v)
		}
		prev = int64(v)
	}
	if binary.LittleEndian.Uint64(b) != 0 || prev != int64(len(s.text)) {
		return corrupt("boundary array does not span the base text")
	}
	s.bounds = boundsView(b)
	return nil
}

func (s *Slab) parseRootInfo(b []byte) error {
	if len(b) < 8 {
		return corrupt("truncated root info")
	}
	s.rootNameSym = binary.LittleEndian.Uint32(b[0:])
	nAttrs := binary.LittleEndian.Uint32(b[4:])
	if s.rootNameSym < 1 || s.rootNameSym > uint32(s.numDocNames) {
		return corrupt("root name symbol %d out of range", s.rootNameSym)
	}
	if uint64(len(b)) != 8+8*uint64(nAttrs) {
		return corrupt("root info length %d does not match %d attributes", len(b), nAttrs)
	}
	s.rootAttrs = u32view(b[8:])
	return s.checkAttrPairs(s.rootAttrs, "root")
}

func (s *Slab) checkAttrPairs(pairs []uint32, where string) error {
	for i := 0; i+1 < len(pairs); i += 2 {
		// Attribute names may live in the auxiliary region (SetAttr after
		// construction adds names the document never interned).
		if pairs[i] < 1 || pairs[i] > uint32(len(s.names)) {
			return corrupt("%s attribute name symbol %d out of range", where, pairs[i])
		}
		if pairs[i+1] < 1 || pairs[i+1] > uint32(len(s.names)) {
			return corrupt("%s attribute value symbol %d out of range", where, pairs[i+1])
		}
	}
	return nil
}

func (s *Slab) parseHiers(dir []byte, secs [][]byte, nHiers, stride int) error {
	if len(dir) != 16*nHiers {
		return corrupt("hierarchy directory of %d bytes for %d hierarchies", len(dir), nHiers)
	}
	s.hiers = make([]slabHier, nHiers)
	seen := make(map[string]bool, nHiers)
	for hi := 0; hi < nHiers; hi++ {
		e := dir[16*hi:]
		sh := &s.hiers[hi]
		sh.nameSym = binary.LittleEndian.Uint32(e[0:])
		nNodes := binary.LittleEndian.Uint32(e[4:])
		nAttrs := binary.LittleEndian.Uint32(e[8:])
		nRuns := binary.LittleEndian.Uint32(e[12:])
		if sh.nameSym < 1 || sh.nameSym > uint32(len(s.names)) {
			return corrupt("hierarchy %d name symbol %d out of range", hi, sh.nameSym)
		}
		name := s.symStr(sh.nameSym)
		if name == "" || seen[name] {
			return corrupt("hierarchy %d name %q empty or duplicate", hi, name)
		}
		seen[name] = true
		if nNodes >= 1<<31 || nRuns > nNodes {
			return corrupt("hierarchy %q has implausible counts (%d nodes, %d runs)", name, nNodes, nRuns)
		}
		sh.nNodes, sh.nAttrs = int(nNodes), int(nAttrs)
		if err := s.parseNodes(sh, secs[stride*hi], name); err != nil {
			return err
		}
		if err := s.parseAttrs(sh, secs[stride*hi+1], name); err != nil {
			return err
		}
		if err := s.parseRuns(sh, secs[stride*hi+2], int(nRuns), name); err != nil {
			return err
		}
		if stride == 4 {
			if err := s.parseSynopsis(sh, secs[stride*hi+3], name); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Slab) parseNodes(sh *slabHier, b []byte, name string) error {
	n := sh.nNodes
	if len(b) != nodesSectionLen(n) {
		return corrupt("hierarchy %q nodes section of %d bytes for %d nodes", name, len(b), n)
	}
	sh.kinds = b[:n]
	cur := pad8(n)
	cols := []*[]uint32{&sh.nameSyms, &sh.dataSyms, &sh.starts, &sh.ends, &sh.lasts, &sh.attrIdx}
	for i, col := range cols {
		w := n
		if i == len(cols)-1 {
			w = n + 1
		}
		*col = u32view(b[cur : cur+4*w])
		cur = pad8(cur + 4*w)
	}

	// One linear pass verifies every column invariant the lazy
	// materializer and the axis engine rely on: kinds, symbol ranges,
	// span bounds, preorder subtree nesting (via a stack of open
	// subtree ends) and the attribute prefix-sum.
	textLen := uint32(len(s.text))
	numDoc := uint32(s.numDocNames)
	nSyms := uint32(len(s.names))
	if sh.attrIdx[0] != 0 || sh.attrIdx[n] != uint32(sh.nAttrs) {
		return corrupt("hierarchy %q attribute prefix-sum does not cover %d attributes", name, sh.nAttrs)
	}
	var stack []uint32 // open subtree ends (Last of open elements)
	for i := 0; i < n; i++ {
		ui := uint32(i)
		for len(stack) > 0 && stack[len(stack)-1] < ui {
			stack = stack[:len(stack)-1]
		}
		last := sh.lasts[i]
		start, end := sh.starts[i], sh.ends[i]
		hasAttrs := sh.attrIdx[i+1] != sh.attrIdx[i]
		if sh.attrIdx[i+1] < sh.attrIdx[i] || sh.attrIdx[i+1] > uint32(sh.nAttrs) {
			return corrupt("hierarchy %q node %d has a non-monotonic attribute index", name, i)
		}
		switch dom.Kind(sh.kinds[i]) {
		case dom.Element:
			if sh.nameSyms[i] < 1 || sh.nameSyms[i] > numDoc || sh.dataSyms[i] != 0 {
				return corrupt("hierarchy %q element %d has symbol out of range", name, i)
			}
			if last < ui || last >= uint32(n) {
				return corrupt("hierarchy %q element %d subtree end %d out of range", name, i, last)
			}
			if len(stack) > 0 && last > stack[len(stack)-1] {
				return corrupt("hierarchy %q element %d subtree escapes its parent", name, i)
			}
			if start > end || end > textLen {
				return corrupt("hierarchy %q element %d span [%d,%d) out of range", name, i, start, end)
			}
			if last > ui {
				stack = append(stack, last)
			}
		case dom.Text:
			if sh.nameSyms[i] != 0 || sh.dataSyms[i] != 0 || last != ui || hasAttrs {
				return corrupt("hierarchy %q text node %d malformed", name, i)
			}
			if start > end || end > textLen {
				return corrupt("hierarchy %q text node %d span [%d,%d) out of range", name, i, start, end)
			}
		case dom.Comment, dom.ProcInst:
			if sh.nameSyms[i] < 1 || sh.nameSyms[i] > nSyms ||
				sh.dataSyms[i] < 1 || sh.dataSyms[i] > nSyms ||
				last != ui || start != end || end > textLen || hasAttrs {
				return corrupt("hierarchy %q comment/PI node %d malformed", name, i)
			}
		default:
			return corrupt("hierarchy %q node %d has kind %d", name, i, sh.kinds[i])
		}
	}
	return nil
}

func (s *Slab) parseAttrs(sh *slabHier, b []byte, name string) error {
	if uint64(len(b)) != 8*uint64(sh.nAttrs) {
		return corrupt("hierarchy %q attribute section of %d bytes for %d attributes", name, len(b), sh.nAttrs)
	}
	sh.attrs = u32view(b)
	return s.checkAttrPairs(sh.attrs, "hierarchy "+name)
}

func (s *Slab) parseRuns(sh *slabHier, b []byte, nRuns int, name string) error {
	if len(b) < 8*nRuns {
		return corrupt("hierarchy %q runs section truncated", name)
	}
	dir := u32view(b[:8*nRuns])
	total := 0
	for i := 0; i < nRuns; i++ {
		length := dir[2*i+1]
		if length > uint32(sh.nNodes) || total > sh.nNodes-int(length) {
			return corrupt("hierarchy %q index runs exceed the node count", name)
		}
		total += int(length)
	}
	if uint64(len(b)) != 8*uint64(nRuns)+4*uint64(total) {
		return corrupt("hierarchy %q runs section of %d bytes for %d ordinals", name, len(b), total)
	}
	ords := i32view(b[8*nRuns:])
	sh.runs = make(map[int32][]int32, nRuns)
	prevSym := uint32(0)
	pos := 0
	nElems := 0
	for i := 0; i < sh.nNodes; i++ {
		if dom.Kind(sh.kinds[i]) == dom.Element {
			nElems++
		}
	}
	for i := 0; i < nRuns; i++ {
		sym, length := dir[2*i], int(dir[2*i+1])
		if sym <= prevSym || sym > uint32(s.numDocNames) || length == 0 {
			return corrupt("hierarchy %q index run %d malformed", name, i)
		}
		prevSym = sym
		run := ords[pos : pos+length]
		pos += length
		prev := int32(-1)
		for _, ord := range run {
			if ord <= prev || ord >= int32(sh.nNodes) ||
				dom.Kind(sh.kinds[ord]) != dom.Element || sh.nameSyms[ord] != sym {
				return corrupt("hierarchy %q index run for symbol %d is inconsistent with the node columns", name, sym)
			}
			prev = ord
		}
		sh.runs[int32(sym)] = run
	}
	// Completeness: with per-entry consistency verified, covering every
	// element exactly once makes the persisted index equal to a fresh
	// rebuild — so skipping the rebuild can never change query results.
	if total != nElems {
		return corrupt("hierarchy %q index covers %d of %d elements", name, total, nElems)
	}
	return nil
}

// parseSynopsis decodes and validates a persisted path synopsis. The
// preorder record stream is rebuilt with an explicit stack (no
// recursion on hostile input) and cross-checked against the already
// validated columns: sibling symbols strictly ascending, per-symbol
// instance totals equal to the persisted index-run lengths, and
// tree-wide element and text totals equal to the node-column counts.
// Those checks pin the synopsis to this hierarchy's true cardinalities;
// the per-path split itself only steers the planner's estimates and can
// never change query results.
func (s *Slab) parseSynopsis(sh *slabHier, b []byte, name string) error {
	if len(b) < 8 {
		return corrupt("hierarchy %q synopsis section truncated", name)
	}
	cnt := binary.LittleEndian.Uint32(b[0:])
	topTexts := binary.LittleEndian.Uint32(b[4:])
	if uint64(len(b)) != 8+16*uint64(cnt) {
		return corrupt("hierarchy %q synopsis section of %d bytes for %d path nodes", name, len(b), cnt)
	}
	recs := u32view(b[8:])
	tree := &synopsis.Tree{Texts: int64(topTexts)}
	type frame struct {
		n    *synopsis.Node
		left uint32 // kids not yet consumed from the record stream
	}
	var stack []frame
	var elems, texts int64
	perSym := make(map[uint32]int64)
	for i := uint32(0); i < cnt; i++ {
		sym := recs[4*i]
		count := recs[4*i+1]
		tx := recs[4*i+2]
		nk := recs[4*i+3]
		if sym < 1 || sym > uint32(s.numDocNames) || count == 0 || nk > cnt {
			return corrupt("hierarchy %q synopsis path node %d malformed", name, i)
		}
		k := &synopsis.Node{Sym: int32(sym), Count: int64(count), Texts: int64(tx)}
		kids := &tree.Kids
		if len(stack) > 0 {
			kids = &stack[len(stack)-1].n.Kids
		}
		if n := len(*kids); n > 0 && (*kids)[n-1].Sym >= k.Sym {
			return corrupt("hierarchy %q synopsis kids out of symbol order", name)
		}
		*kids = append(*kids, k)
		if len(stack) > 0 {
			stack[len(stack)-1].left--
		}
		elems += int64(count)
		texts += int64(tx)
		perSym[sym] += int64(count)
		if nk > 0 {
			stack = append(stack, frame{k, nk})
		} else {
			for len(stack) > 0 && stack[len(stack)-1].left == 0 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	if len(stack) != 0 {
		return corrupt("hierarchy %q synopsis child counts overrun the record list", name)
	}
	var nElems, nTexts int64
	for i := 0; i < sh.nNodes; i++ {
		switch dom.Kind(sh.kinds[i]) {
		case dom.Element:
			nElems++
		case dom.Text:
			nTexts++
		}
	}
	if elems != nElems || texts+int64(topTexts) != nTexts {
		return corrupt("hierarchy %q synopsis totals (%d elements, %d texts) disagree with the node columns (%d, %d)",
			name, elems, texts+int64(topTexts), nElems, nTexts)
	}
	if len(perSym) != len(sh.runs) {
		return corrupt("hierarchy %q synopsis covers %d distinct names, index has %d", name, len(perSym), len(sh.runs))
	}
	for sym, c := range perSym {
		if int64(len(sh.runs[int32(sym)])) != c {
			return corrupt("hierarchy %q synopsis counts %d instances of symbol %d, index run has %d",
				name, c, sym, len(sh.runs[int32(sym)]))
		}
	}
	sh.syn = tree
	return nil
}

// Document assembles a lazily materializing core.Document over the
// slab. The eager layers — base text, bounds, name table, ordinal
// layout, persisted index runs — alias the image; dom.Node storage is
// built per hierarchy on first structural access.
func (s *Slab) Document() *core.Document {
	f := core.FrozenDoc{
		Text:     s.text,
		Bounds:   s.bounds,
		Rev:      s.rev,
		Names:    s.names[:s.numDocNames],
		RootName: s.symStr(s.rootNameSym),
		Hiers:    make([]core.FrozenHier, len(s.hiers)),
	}
	for i := 0; i+1 < len(s.rootAttrs); i += 2 {
		f.RootAttrs = append(f.RootAttrs, [2]string{s.symStr(s.rootAttrs[i]), s.symStr(s.rootAttrs[i+1])})
	}
	for hi := range s.hiers {
		f.Hiers[hi] = core.FrozenHier{
			Name:     s.symStr(s.hiers[hi].nameSym),
			NumNodes: s.hiers[hi].nNodes,
			Runs:     s.hiers[hi].runs,
			Synopsis: s.hiers[hi].syn,
			Fill:     s.makeFill(hi),
		}
	}
	return core.NewFrozenDocument(f)
}
