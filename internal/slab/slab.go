// Package slab implements the frozen columnar document layout behind
// store format v3: one contiguous, offset-based binary image of a
// document version that a process maps (or reads) and serves without
// reparsing.
//
// Layout. The image is little-endian throughout and starts with a
// 48-byte header:
//
//	off 0   magic "MHXSLAB1"
//	off 8   u64 document revision
//	off 16  u64 WAL sequence the snapshot covers
//	off 24  u32 hierarchy count
//	off 28  u32 section count (= 5 + 4×hierarchies; images from before
//	        the synopsis section carry 5 + 3×hierarchies and still open)
//	off 32  u64 total image length
//	off 40  u32 CRC32C over header bytes [0,40) and the section table
//	off 44  u32 zero
//
// followed by the section table (32 bytes per section: kind, owning
// hierarchy or ^0 for document level, u64 offset, u64 length, CRC32C,
// zero pad) and the sections themselves. Every section starts 8-byte
// aligned; gaps are zero. Sections appear in a fixed canonical order:
//
//	symtab    interned symbol table: u32 count, u32 document-name count
//	          K, (count+1) ascending u32 byte offsets, string blob.
//	          Symbols 1..K are the document's interned name table
//	          (core.Document.NameTable) in symbol order; symbols above K
//	          hold auxiliary strings (hierarchy names, attribute values,
//	          comment/PI content) referenced only by the slab.
//	text      the base text S, raw bytes — served as a zero-copy string.
//	bounds    the boundary array, u64 each — aliased as []int when the
//	          host allows.
//	rootinfo  u32 root-name symbol, u32 attribute count, then
//	          (name symbol, value symbol) u32 pairs.
//	hierdir   per hierarchy: u32 name symbol, u32 node count, u32
//	          attribute count, u32 index-run count.
//	then, per hierarchy:
//	nodes     fixed-width struct-of-arrays over the preorder node list:
//	          kind bytes, name symbols, data symbols, starts, ends,
//	          subtree lasts (u32 columns), and a (count+1) u32 attribute
//	          prefix-sum — each column 8-byte aligned within the section.
//	attrs     (name symbol, value symbol) u32 pairs, indexed by the
//	          nodes section's prefix-sum.
//	runs      the persisted structural name index: (symbol, length) u32
//	          directory sorted by symbol, then the concatenated
//	          ascending preorder ordinal runs, u32 each — aliased as
//	          []int32 and installed without any rebuild.
//	synopsis  the persisted path synopsis (internal/synopsis): u32 path
//	          node count, u32 top-level text count, then one 16-byte
//	          record per path node in preorder — name symbol, element
//	          count, text-child count, child count, u32 each, children
//	          ascending by symbol. Optional: pre-synopsis images omit
//	          the section and the synopsis stays lazily buildable.
//
// Open validates everything eagerly — checksums, offsets, column
// invariants (preorder nesting, span bounds, symbol ranges, index-run
// completeness) — precisely so the lazy dom.Node materialization that
// follows can be infallible: no error path threads through axis
// accessors, and no byte of a hostile image is ever dereferenced
// unchecked. Validation is a linear memcpy-speed scan of the image;
// what Open never does is allocate or link node trees, which is where
// the heap decoder's time and memory go.
package slab

import (
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	magic      = "MHXSLAB1"
	headerLen  = 48
	tocEntrLen = 32

	// docLevel marks a section not owned by any hierarchy.
	docLevel = ^uint32(0)

	kindSymtab   = 1
	kindText     = 2
	kindBounds   = 3
	kindRootInfo = 4
	kindHierDir  = 5
	kindNodes    = 6
	kindAttrs    = 7
	kindRuns     = 8
	kindSynopsis = 9
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt tags every malformed-image failure mode — bad magic,
// checksum mismatch, out-of-range offset, broken column invariant —
// under the same code the store layer uses for damaged images.
var ErrCorrupt = errors.New("MHXQ0201: corrupt document slab")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("slab: "+format+": %w", append(args, ErrCorrupt)...)
}

// pad8 rounds n up to the next multiple of 8.
func pad8(n int) int { return (n + 7) &^ 7 }

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
