package slab

import (
	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// makeFill returns the fill callback that materializes hierarchy hi's
// dom.Node storage from the validated columns. It is infallible by
// construction: Open has already verified every invariant the loops
// below rely on (kinds, symbol ranges, span bounds, subtree nesting,
// the attribute prefix-sum), so no index here can go out of range.
//
// The result is field-for-field what core.Build produces from a parsed
// tree: preorder h.Nodes with Ord/Last/Hier/HierIndex/NameSym set,
// top-level nodes parented at the shared root and listed in h.Top,
// children and attributes in document order. Node structs come from
// three backing arrays (nodes, attributes, child-pointer slab), so a
// hierarchy of n nodes costs O(1) allocations, not O(n).
func (s *Slab) makeFill(hi int) func(root *dom.Node, h *core.Hierarchy) {
	sh := &s.hiers[hi]
	return func(root *dom.Node, h *core.Hierarchy) {
		n := sh.nNodes
		nodes := make([]dom.Node, n)
		ptrs := make([]*dom.Node, n)
		attrSlab := make([]dom.Node, sh.nAttrs)
		attrPtrs := make([]*dom.Node, sh.nAttrs)
		counts := make([]int32, n)
		parent := make([]int32, n)
		childTotal := 0

		var stack []int32 // ords of open elements
		for i := 0; i < n; i++ {
			for len(stack) > 0 && int(sh.lasts[stack[len(stack)-1]]) < i {
				stack = stack[:len(stack)-1]
			}
			nd := &nodes[i]
			ptrs[i] = nd
			nd.Kind = dom.Kind(sh.kinds[i])
			nd.Hier, nd.HierIndex = h.Name, h.Index
			nd.Ord, nd.Last = i, int(sh.lasts[i])
			nd.Start, nd.End = int(sh.starts[i]), int(sh.ends[i])
			switch nd.Kind {
			case dom.Element:
				nd.NameSym = int32(sh.nameSyms[i])
				nd.Name = s.names[nd.NameSym-1]
			case dom.Text:
				nd.Data = s.text[nd.Start:nd.End]
			default: // Comment, ProcInst: names stay un-interned, as in core.Build
				nd.Name = s.symStr(sh.nameSyms[i])
				nd.Data = s.symStr(sh.dataSyms[i])
			}
			if lo, hiA := sh.attrIdx[i], sh.attrIdx[i+1]; hiA > lo {
				nd.Attrs = attrPtrs[lo:hiA]
				for j := lo; j < hiA; j++ {
					a := &attrSlab[j]
					attrPtrs[j] = a
					a.Kind = dom.Attribute
					sym := sh.attrs[2*j]
					a.Name = s.names[sym-1]
					if int(sym) <= s.numDocNames {
						a.NameSym = int32(sym)
					}
					a.Data = s.symStr(sh.attrs[2*j+1])
					a.Hier, a.HierIndex = nd.Hier, nd.HierIndex
					a.Parent, a.Ord, a.Sub = nd, i, int(j-lo)+1
				}
			}
			if len(stack) == 0 {
				parent[i] = -1
				nd.Parent = root
				h.Top = append(h.Top, nd)
			} else {
				p := stack[len(stack)-1]
				parent[i] = p
				nd.Parent = ptrs[p]
				counts[p]++
				childTotal++
			}
			if nd.Kind == dom.Element && nd.Last > i {
				stack = append(stack, int32(i))
			}
		}

		backing := make([]*dom.Node, childTotal)
		pos := 0
		for i := 0; i < n; i++ {
			if c := int(counts[i]); c > 0 {
				nodes[i].Children = backing[pos : pos : pos+c]
				pos += c
			}
		}
		for i := 0; i < n; i++ {
			if p := parent[i]; p >= 0 {
				nodes[p].Children = append(nodes[p].Children, ptrs[i])
			}
		}
		h.Nodes = ptrs
	}
}
