package slab

import (
	"errors"
	"reflect"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
)

// requireDocsEqual asserts got (a slab-opened document) is
// field-identical to want: name table, root, every node and attribute
// of every hierarchy, leaf layout, and the name-index runs.
func requireDocsEqual(t *testing.T, got, want *core.Document) {
	t.Helper()
	got.Materialize()
	want.Materialize()
	if got.Text != want.Text || got.Rev != want.Rev {
		t.Fatalf("text/rev diverged")
	}
	if !reflect.DeepEqual(got.Bounds, want.Bounds) {
		t.Fatalf("bounds diverged")
	}
	if !reflect.DeepEqual(got.NameTable(), want.NameTable()) {
		t.Fatalf("name table diverged:\n got %q\nwant %q", got.NameTable(), want.NameTable())
	}
	if got.Root.Name != want.Root.Name || len(got.Root.Attrs) != len(want.Root.Attrs) {
		t.Fatalf("root diverged")
	}
	for i, a := range want.Root.Attrs {
		g := got.Root.Attrs[i]
		if g.Name != a.Name || g.Data != a.Data {
			t.Fatalf("root attr %d: %s=%q, want %s=%q", i, g.Name, g.Data, a.Name, a.Data)
		}
	}
	if len(got.Leaves) != len(want.Leaves) {
		t.Fatalf("%d leaves, want %d", len(got.Leaves), len(want.Leaves))
	}
	for i := range got.Leaves {
		g, w := got.Leaves[i], want.Leaves[i]
		if g.Data != w.Data || g.Start != w.Start || g.End != w.End ||
			len(got.LeafParents(g)) != len(want.LeafParents(w)) {
			t.Fatalf("leaf %d diverged", i)
		}
	}
	if len(got.Hiers) != len(want.Hiers) {
		t.Fatalf("%d hierarchies, want %d", len(got.Hiers), len(want.Hiers))
	}
	for hi, h := range got.Hiers {
		wh := want.Hiers[hi]
		if h.Name != wh.Name || len(h.Nodes) != len(wh.Nodes) || len(h.Top) != len(wh.Top) {
			t.Fatalf("hierarchy %d shape diverged", hi)
		}
		for i, n := range h.Nodes {
			m := wh.Nodes[i]
			if n.Kind != m.Kind || n.Name != m.Name || n.NameSym != m.NameSym ||
				n.Data != m.Data || n.Start != m.Start || n.End != m.End ||
				n.Ord != m.Ord || n.Last != m.Last || n.Hier != m.Hier || n.HierIndex != m.HierIndex {
				t.Fatalf("hierarchy %q node %d diverged:\n got %+v\nwant %+v", h.Name, i, n, m)
			}
			if (n.Parent == nil) != (m.Parent == nil) ||
				(n.Parent != nil && m.Parent != nil && n.Parent.Ord != m.Parent.Ord) {
				t.Fatalf("hierarchy %q node %d parent diverged", h.Name, i)
			}
			if gp, wp := got.IsRoot(n.Parent), want.IsRoot(m.Parent); gp != wp {
				t.Fatalf("hierarchy %q node %d root-parent diverged", h.Name, i)
			}
			if len(n.Children) != len(m.Children) || len(n.Attrs) != len(m.Attrs) {
				t.Fatalf("hierarchy %q node %d fanout diverged", h.Name, i)
			}
			for j, c := range n.Children {
				if c.Ord != m.Children[j].Ord {
					t.Fatalf("hierarchy %q node %d child %d diverged", h.Name, i, j)
				}
			}
			for j, a := range n.Attrs {
				w := m.Attrs[j]
				if a.Name != w.Name || a.Data != w.Data || a.NameSym != w.NameSym ||
					a.Ord != w.Ord || a.Sub != w.Sub || a.Parent != n {
					t.Fatalf("hierarchy %q node %d attr %d diverged", h.Name, i, j)
				}
			}
		}
		if gr, wr := h.IndexRuns(), wh.RebuildIndexRuns(); !reflect.DeepEqual(dropEmpty(gr), dropEmpty(wr)) {
			t.Fatalf("hierarchy %q index runs diverged", h.Name)
		}
	}
}

// dropEmpty normalizes a run map: incremental maintenance may leave
// empty runs that the slab format (and a fresh rebuild) omit.
func dropEmpty(runs map[int32][]int32) map[int32][]int32 {
	out := make(map[int32][]int32, len(runs))
	for sym, run := range runs {
		if len(run) > 0 {
			out[sym] = run
		}
	}
	return out
}

func testDocs(t *testing.T) map[string]*core.Document {
	t.Helper()
	docs := map[string]*core.Document{"boethius": corpus.MustBoethius()}
	for _, seed := range []uint64{1, 7, 42} {
		c := corpus.Generate(corpus.Params{Seed: seed, Words: 40, DamageRate: 0.2, RestoreRate: 0.2})
		d, err := c.Document()
		if err != nil {
			t.Fatal(err)
		}
		docs["gen"+string(rune('0'+seed%10))] = d
	}
	return docs
}

func TestRoundTripFieldIdentity(t *testing.T) {
	for name, d := range testDocs(t) {
		d.Rev = 5
		// Decorate with a post-construction attribute whose name the
		// document never interned (exercises the auxiliary-symbol path).
		for _, n := range d.Hiers[0].Nodes {
			if n.Kind == dom.Element {
				n.SetAttr("uninterned-attr", "v")
				break
			}
		}
		blob, err := Encode(d, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := Open(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Rev() != 5 || s.SnapSeq() != 9 {
			t.Fatalf("%s: rev/seq %d/%d", name, s.Rev(), s.SnapSeq())
		}
		requireDocsEqual(t, s.Document(), d)
	}
}

// TestReEncodeStable: a slab-opened document re-encodes to the same
// image (the snapshotter may re-encode a document that itself came from
// a slab).
func TestReEncodeStable(t *testing.T) {
	d := corpus.MustBoethius()
	blob, err := Encode(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := Encode(s.Document(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("re-encoding a slab-opened document changed the image")
	}
}

// TestZeroIndexBuildsOnOpen: the persisted name-index runs are
// installed at open, so serving index queries from a freshly opened
// slab performs zero index builds.
func TestZeroIndexBuildsOnOpen(t *testing.T) {
	d := corpus.MustBoethius()
	blob, err := Encode(d, 0) // forces the builds on the source document
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	before := core.GlobalIndexStats().Builds
	d2 := s.Document()
	for _, h := range d2.Hiers {
		for sym, want := range h.RebuildIndexRuns() {
			if got := h.NameRun(sym); !reflect.DeepEqual(got, want) {
				t.Fatalf("hierarchy %q sym %d: run diverged", h.Name, sym)
			}
		}
	}
	if builds := core.GlobalIndexStats().Builds - before; builds != 0 {
		t.Fatalf("open + index reads performed %d index builds, want 0", builds)
	}
}

// TestLazyMaterialization: opening a slab touches no node storage; the
// first structural access materializes exactly the hierarchies needed.
func TestLazyMaterialization(t *testing.T) {
	d := corpus.MustBoethius()
	blob, err := Encode(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	d2 := s.Document()
	for _, h := range d2.Hiers {
		if h.Nodes != nil {
			t.Fatalf("hierarchy %q materialized at open", h.Name)
		}
	}
	// Eager layers answer without materializing.
	if d2.Text != d.Text || d2.OrdinalSpace() != d.OrdinalSpace() {
		t.Fatal("eager layers diverged")
	}
	if d2.NameSymOf("w") != d.NameSymOf("w") {
		t.Fatal("name interning diverged")
	}
	for _, h := range d2.Hiers {
		if h.Nodes != nil {
			t.Fatalf("hierarchy %q materialized by an eager-layer read", h.Name)
		}
	}
	// A structural access materializes.
	if len(d2.RootChildren()) == 0 {
		t.Fatal("no root children")
	}
	for _, h := range d2.Hiers {
		if len(h.Nodes) == 0 {
			t.Fatalf("hierarchy %q empty after materialization", h.Name)
		}
	}
}

// TestSynopsisInstalledOnOpen: the persisted path synopsis is installed
// at open — no build, no node materialization — and agrees
// field-for-field with a from-scratch rebuild.
func TestSynopsisInstalledOnOpen(t *testing.T) {
	for name, d := range testDocs(t) {
		blob, err := Encode(d, 0) // builds the synopses on the source document
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := Open(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		before := core.GlobalIndexStats().SynopsisBuilds
		d2 := s.Document()
		for _, h := range d2.Hiers {
			if h.SynopsisSnapshot() == nil {
				t.Fatalf("%s: hierarchy %q has no installed synopsis", name, h.Name)
			}
			if h.Nodes != nil {
				t.Fatalf("%s: synopsis read materialized hierarchy %q", name, h.Name)
			}
		}
		if builds := core.GlobalIndexStats().SynopsisBuilds - before; builds != 0 {
			t.Fatalf("%s: open + snapshot reads performed %d synopsis builds, want 0", name, builds)
		}
		for _, h := range d2.Hiers {
			if got, want := h.SynopsisSnapshot(), h.RebuildSynopsis(); !got.Equal(want) {
				t.Fatalf("%s: hierarchy %q installed synopsis diverges from rebuild", name, h.Name)
			}
		}
	}
}

// TestPreSynopsisImageOpens: images written before the synopsis section
// existed (5+3×h sections) still open and serve identical documents;
// their synopses stay lazily buildable.
func TestPreSynopsisImageOpens(t *testing.T) {
	d := corpus.MustBoethius()
	blob, err := encode(d, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	d2 := s.Document()
	for _, h := range d2.Hiers {
		if h.SynopsisSnapshot() != nil {
			t.Fatalf("hierarchy %q has an installed synopsis in a pre-synopsis image", h.Name)
		}
	}
	requireDocsEqual(t, d2, d)
	for hi, h := range d2.Hiers {
		if !h.Synopsis().Equal(d.Hiers[hi].Synopsis()) {
			t.Fatalf("hierarchy %q lazily built synopsis diverges", h.Name)
		}
	}
}

// TestOpenRejectsCorruption: every truncation and every single-bit flip
// of a valid image fails Open with the coded corruption error — never a
// panic, never a silently different document.
func TestOpenRejectsCorruption(t *testing.T) {
	d := corpus.MustBoethius()
	blob, err := Encode(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 8, headerLen - 1, headerLen, len(blob) / 2, len(blob) - 1} {
		if _, err := Open(blob[:k]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: err = %v, want ErrCorrupt", k, err)
		}
	}
	for off := 0; off < len(blob); off++ {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x01
		if _, err := Open(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
}
