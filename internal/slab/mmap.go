package slab

import "os"

// UseMmap reports whether snapshot images should be memory-mapped on
// this host. MHX_NO_MMAP=1 forces the read-into-memory fallback (used
// by the CI leg that exercises the non-mapped path).
func UseMmap() bool {
	return mmapSupported() && os.Getenv("MHX_NO_MMAP") != "1"
}

// MapFile returns the file's bytes, preferring a read-only memory
// mapping when UseMmap allows; mapped reports which path was taken.
// Mapped bytes must be released with Unmap — but only once nothing
// aliases them; a mapping serving an open document is simply kept for
// the life of the process.
func MapFile(path string) (data []byte, mapped bool, err error) {
	if !UseMmap() {
		data, err = os.ReadFile(path)
		return data, false, err
	}
	return mapFile(path)
}

// Unmap releases bytes returned by MapFile. It is a no-op for
// heap-backed reads.
func Unmap(data []byte, mapped bool) error {
	if !mapped || data == nil {
		return nil
	}
	return unmap(data)
}
