//go:build !linux && !darwin

package slab

import "os"

func mmapSupported() bool { return false }

func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	return data, false, err
}

func unmap(data []byte) error { return nil }
