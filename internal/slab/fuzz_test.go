package slab

import (
	"errors"
	"testing"

	"mhxquery/internal/corpus"
)

// FuzzSlabDecode feeds arbitrary bytes to the slab opener. The
// contract under test is the one the mmap path depends on: hostile or
// damaged images either fail with the coded corruption error or open
// into a document whose every accessor — including full lazy
// materialization and the leaf layer — works without panics or
// out-of-range reads.
func FuzzSlabDecode(f *testing.F) {
	if blob, err := Encode(corpus.MustBoethius(), 7); err == nil {
		f.Add(blob)
		// Truncations and small mutations of a valid image reach deep
		// validation branches immediately.
		f.Add(blob[:len(blob)/2])
		f.Add(blob[:headerLen])
		for _, off := range []int{0, 8, 24, 32, 40, headerLen, headerLen + 8, len(blob) - 1} {
			bad := append([]byte(nil), blob...)
			bad[off] ^= 0xFF
			f.Add(bad)
		}
	}
	if d, err := corpus.Generate(corpus.Params{Seed: 11, Words: 12}).Document(); err == nil {
		if blob, err := Encode(d, 1); err == nil {
			f.Add(blob)
		}
	}
	f.Add([]byte{})
	f.Add([]byte(magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corrupt error from Open: %v", err)
			}
			return
		}
		// A validated image must serve everything without panicking.
		d := s.Document()
		d.Materialize()
		_ = d.Stats()
		for _, h := range d.Hiers {
			for sym := range h.IndexRuns() {
				_ = h.NameRun(sym)
			}
		}
		for _, l := range d.Leaves {
			_ = d.LeafParents(l)
		}
		if _, err := Encode(d, s.SnapSeq()); err != nil {
			t.Fatalf("re-encoding an opened document: %v", err)
		}
	})
}
