package slab

import (
	"encoding/binary"
	"errors"
	"testing"

	"mhxquery/internal/corpus"
)

// FuzzSlabDecode feeds arbitrary bytes to the slab opener. The
// contract under test is the one the mmap path depends on: hostile or
// damaged images either fail with the coded corruption error or open
// into a document whose every accessor — including full lazy
// materialization and the leaf layer — works without panics or
// out-of-range reads.
func FuzzSlabDecode(f *testing.F) {
	if blob, err := Encode(corpus.MustBoethius(), 7); err == nil {
		f.Add(blob)
		// Truncations and small mutations of a valid image reach deep
		// validation branches immediately.
		f.Add(blob[:len(blob)/2])
		f.Add(blob[:headerLen])
		for _, off := range []int{0, 8, 24, 32, 40, headerLen, headerLen + 8, len(blob) - 1} {
			bad := append([]byte(nil), blob...)
			bad[off] ^= 0xFF
			f.Add(bad)
		}
	}
	if d, err := corpus.Generate(corpus.Params{Seed: 11, Words: 12}).Document(); err == nil {
		if blob, err := Encode(d, 1); err == nil {
			f.Add(blob)
		}
	}
	f.Add([]byte{})
	f.Add([]byte(magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corrupt error from Open: %v", err)
			}
			return
		}
		// A validated image must serve everything without panicking.
		d := s.Document()
		d.Materialize()
		_ = d.Stats()
		for _, h := range d.Hiers {
			for sym := range h.IndexRuns() {
				_ = h.NameRun(sym)
			}
		}
		for _, l := range d.Leaves {
			_ = d.LeafParents(l)
		}
		if _, err := Encode(d, s.SnapSeq()); err != nil {
			t.Fatalf("re-encoding an opened document: %v", err)
		}
	})
}

// splitSections re-reads a trusted image's table of contents into the
// encoder's section form, so a fuzz harness can swap one payload and
// re-lay the image with repaired checksums.
func splitSections(img []byte) []section {
	n := int(binary.LittleEndian.Uint32(img[28:]))
	secs := make([]section, n)
	for i := range secs {
		e := img[headerLen+tocEntrLen*i:]
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		secs[i] = section{
			kind: binary.LittleEndian.Uint32(e[0:]),
			hier: binary.LittleEndian.Uint32(e[4:]),
			data: img[off : off+length],
		}
	}
	return secs
}

// FuzzSynopsisSection aims hostile bytes at the synopsis decoder
// specifically: the fuzzer mutates one synopsis payload of a valid
// image and the harness re-lays the image with correct section and
// header checksums, so parseSynopsis — not the CRC — is the validation
// under test. Hostile bytes must fail with the coded corruption error,
// never a panic; accepted bytes must serve statistics and re-encode.
func FuzzSynopsisSection(f *testing.F) {
	base, err := Encode(corpus.MustBoethius(), 1)
	if err != nil {
		f.Fatal(err)
	}
	rev := binary.LittleEndian.Uint64(base[8:])
	nHiers := binary.LittleEndian.Uint32(base[24:])
	secs := splitSections(base)
	synIdx := -1
	for i, s := range secs {
		if s.kind == kindSynopsis {
			synIdx = i
			break
		}
	}
	if synIdx < 0 {
		f.Fatal("fresh image carries no synopsis section")
	}
	orig := secs[synIdx].data
	f.Add(append([]byte(nil), orig...))
	f.Add(append([]byte(nil), orig[:len(orig)/2]...))
	f.Add([]byte{})
	for _, off := range []int{0, 4, 8, 12, 16, 20, len(orig) - 4} {
		bad := append([]byte(nil), orig...)
		bad[off] ^= 0xFF
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, sec []byte) {
		mut := make([]section, len(secs))
		copy(mut, secs)
		mut[synIdx].data = sec
		s, err := Open(layoutImage(rev, 1, nHiers, mut))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corrupt error from Open: %v", err)
			}
			return
		}
		d := s.Document()
		d.Materialize()
		for _, h := range d.Hiers {
			syn := h.Synopsis()
			syn.Totals()
			_ = syn.Summary()
		}
		if _, err := Encode(d, s.SnapSeq()); err != nil {
			t.Fatalf("re-encoding an opened document: %v", err)
		}
	})
}
