//go:build linux || darwin

package slab

import (
	"os"
	"syscall"
)

func mmapSupported() bool { return true }

// mapFile maps path read-only. Any mapping failure — empty file, size
// overflow, mmap refusal — degrades to a plain read: the caller gets
// the same bytes either way, just without the page-cache sharing.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size <= 0 || int64(int(size)) != size {
		data, err := os.ReadFile(path)
		return data, false, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		data, err := os.ReadFile(path)
		return data, false, err
	}
	return data, true, nil
}

func unmap(data []byte) error { return syscall.Munmap(data) }
