package slab

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
	"mhxquery/internal/synopsis"
)

// Encode freezes a document version into one slab image. The document
// is materialized first (a frozen document re-encodes fine), and the
// structural name indexes and path synopses are built if they have not
// been yet — the snapshot is precisely where that one-time cost
// belongs, so every future open skips it.
func Encode(d *core.Document, snapSeq uint64) ([]byte, error) {
	return encode(d, snapSeq, true)
}

// encode does the work; withSynopsis=false reproduces the pre-synopsis
// image layout (5+3×h sections) so compatibility tests can prove such
// images still open.
func encode(d *core.Document, snapSeq uint64, withSynopsis bool) ([]byte, error) {
	d.Materialize()
	if uint64(len(d.Text)) >= 1<<32 {
		return nil, fmt.Errorf("slab: base text of %d bytes exceeds the u32 span limit", len(d.Text))
	}

	// Symbol table: the document's interned name table occupies symbols
	// 1..K verbatim (so a reopened document keeps identical symbols);
	// auxiliary strings the slab needs — hierarchy names, attribute
	// values, comment/PI content — are appended after K on first use.
	names := d.NameTable()
	numDoc := len(names)
	syms := make(map[string]uint32, len(names)+16)
	for i, s := range names {
		syms[s] = uint32(i + 1)
	}
	auxSym := func(s string) uint32 {
		if v, ok := syms[s]; ok {
			return v
		}
		names = append(names, s)
		v := uint32(len(names))
		syms[s] = v
		return v
	}
	docSym := func(what, s string) (uint32, error) {
		if v, ok := syms[s]; ok && v <= uint32(numDoc) {
			return v, nil
		}
		return 0, fmt.Errorf("slab: %s %q is missing from the document name table", what, s)
	}

	rootSym, err := docSym("root name", d.Root.Name)
	if err != nil {
		return nil, err
	}
	// Attribute names are usually interned document names, but SetAttr
	// after construction can add attributes whose names never were —
	// those ride in the auxiliary region and reopen with NameSym 0,
	// matching the un-interned state name tests fall back to strings on.
	rootAttrs := make([]uint32, 0, 2*len(d.Root.Attrs))
	for _, a := range d.Root.Attrs {
		rootAttrs = append(rootAttrs, auxSym(a.Name), auxSym(a.Data))
	}

	type hierCols struct {
		nameSym  uint32
		kinds    []byte
		nameSyms []uint32
		dataSyms []uint32
		starts   []uint32
		ends     []uint32
		lasts    []uint32
		attrIdx  []uint32
		attrs    []uint32
		runSyms  []uint32
		runOrds  [][]int32
		syn      []byte
	}
	hiers := make([]hierCols, len(d.Hiers))
	for hi, h := range d.Hiers {
		n := len(h.Nodes)
		if n >= 1<<31 {
			return nil, fmt.Errorf("slab: hierarchy %q has %d nodes, exceeding the i32 ordinal limit", h.Name, n)
		}
		hc := &hiers[hi]
		hc.nameSym = auxSym(h.Name)
		hc.kinds = make([]byte, n)
		hc.nameSyms = make([]uint32, n)
		hc.dataSyms = make([]uint32, n)
		hc.starts = make([]uint32, n)
		hc.ends = make([]uint32, n)
		hc.lasts = make([]uint32, n)
		hc.attrIdx = make([]uint32, n+1)
		for i, nd := range h.Nodes {
			hc.kinds[i] = byte(nd.Kind)
			hc.lasts[i] = uint32(nd.Last)
			hc.starts[i] = uint32(nd.Start)
			hc.ends[i] = uint32(nd.End)
			switch nd.Kind {
			case dom.Element:
				ns, err := docSym("element name", nd.Name)
				if err != nil {
					return nil, err
				}
				hc.nameSyms[i] = ns
				for _, a := range nd.Attrs {
					hc.attrs = append(hc.attrs, auxSym(a.Name), auxSym(a.Data))
				}
			case dom.Text:
				// Spans only; the content is a slice of S.
			case dom.Comment, dom.ProcInst:
				hc.nameSyms[i] = auxSym(nd.Name)
				hc.dataSyms[i] = auxSym(nd.Data)
			default:
				return nil, fmt.Errorf("slab: cannot encode %s node in hierarchy %q", nd.Kind, h.Name)
			}
			hc.attrIdx[i+1] = uint32(len(hc.attrs) / 2)
		}
		// Persisted name index, directory sorted by symbol. Empty runs
		// (every instance deleted by updates) are dropped: they carry no
		// information and would differ from a fresh rebuild.
		runs := h.IndexRuns()
		for sym, run := range runs {
			if len(run) > 0 {
				hc.runSyms = append(hc.runSyms, uint32(sym))
			}
		}
		sort.Slice(hc.runSyms, func(a, b int) bool { return hc.runSyms[a] < hc.runSyms[b] })
		hc.runOrds = make([][]int32, len(hc.runSyms))
		for i, sym := range hc.runSyms {
			hc.runOrds[i] = runs[int32(sym)]
		}
		if withSynopsis {
			hc.syn = encodeSynopsis(h.Synopsis())
		}
	}

	// ---- assemble the sections in canonical order ------------------------
	var sections []section
	add := func(kind, hier uint32, data []byte) {
		sections = append(sections, section{kind: kind, hier: hier, data: data})
	}

	// symtab
	blobLen := 0
	for _, s := range names {
		blobLen += len(s)
	}
	st := make([]byte, 8+4*(len(names)+1)+blobLen)
	binary.LittleEndian.PutUint32(st[0:], uint32(len(names)))
	binary.LittleEndian.PutUint32(st[4:], uint32(numDoc))
	off := 8
	pos := 0
	for i := 0; i <= len(names); i++ {
		binary.LittleEndian.PutUint32(st[off+4*i:], uint32(pos))
		if i < len(names) {
			pos += len(names[i])
		}
	}
	blob := st[8+4*(len(names)+1):]
	pos = 0
	for _, s := range names {
		copy(blob[pos:], s)
		pos += len(s)
	}
	add(kindSymtab, docLevel, st)

	add(kindText, docLevel, []byte(d.Text))

	bs := make([]byte, 8*len(d.Bounds))
	for i, b := range d.Bounds {
		binary.LittleEndian.PutUint64(bs[8*i:], uint64(b))
	}
	add(kindBounds, docLevel, bs)

	ri := make([]byte, 8+4*len(rootAttrs))
	binary.LittleEndian.PutUint32(ri[0:], rootSym)
	binary.LittleEndian.PutUint32(ri[4:], uint32(len(rootAttrs)/2))
	putU32s(ri[8:], rootAttrs)
	add(kindRootInfo, docLevel, ri)

	hd := make([]byte, 16*len(hiers))
	for i := range hiers {
		hc := &hiers[i]
		binary.LittleEndian.PutUint32(hd[16*i+0:], hc.nameSym)
		binary.LittleEndian.PutUint32(hd[16*i+4:], uint32(len(hc.kinds)))
		binary.LittleEndian.PutUint32(hd[16*i+8:], uint32(len(hc.attrs)/2))
		binary.LittleEndian.PutUint32(hd[16*i+12:], uint32(len(hc.runSyms)))
	}
	add(kindHierDir, docLevel, hd)

	for hi := range hiers {
		hc := &hiers[hi]
		n := len(hc.kinds)
		nodes := make([]byte, nodesSectionLen(n))
		cur := copy(nodes, hc.kinds)
		cur = pad8(cur)
		for _, col := range [][]uint32{hc.nameSyms, hc.dataSyms, hc.starts, hc.ends, hc.lasts, hc.attrIdx} {
			putU32s(nodes[cur:], col)
			cur = pad8(cur + 4*len(col))
		}
		add(kindNodes, uint32(hi), nodes)

		at := make([]byte, 4*len(hc.attrs))
		putU32s(at, hc.attrs)
		add(kindAttrs, uint32(hi), at)

		total := 0
		for _, run := range hc.runOrds {
			total += len(run)
		}
		rn := make([]byte, 8*len(hc.runSyms)+4*total)
		for i, sym := range hc.runSyms {
			binary.LittleEndian.PutUint32(rn[8*i:], sym)
			binary.LittleEndian.PutUint32(rn[8*i+4:], uint32(len(hc.runOrds[i])))
		}
		cur = 8 * len(hc.runSyms)
		for _, run := range hc.runOrds {
			for _, ord := range run {
				binary.LittleEndian.PutUint32(rn[cur:], uint32(ord))
				cur += 4
			}
		}
		add(kindRuns, uint32(hi), rn)

		if withSynopsis {
			add(kindSynopsis, uint32(hi), hc.syn)
		}
	}

	return layoutImage(d.Rev, snapSeq, uint32(len(d.Hiers)), sections), nil
}

// section is one payload of the image, with its table-of-contents
// identity.
type section struct {
	kind, hier uint32
	data       []byte
}

// layoutImage lays out the header, section table and payloads, filling
// in every offset and checksum.
func layoutImage(rev, snapSeq uint64, nHiers uint32, sections []section) []byte {
	tocLen := tocEntrLen * len(sections)
	cur := headerLen + tocLen // 8-aligned: 48 + 32k
	offsets := make([]int, len(sections))
	for i, s := range sections {
		offsets[i] = cur
		cur = pad8(cur + len(s.data))
	}
	total := cur
	buf := make([]byte, total)
	copy(buf, magic)
	binary.LittleEndian.PutUint64(buf[8:], rev)
	binary.LittleEndian.PutUint64(buf[16:], snapSeq)
	binary.LittleEndian.PutUint32(buf[24:], nHiers)
	binary.LittleEndian.PutUint32(buf[28:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(buf[32:], uint64(total))
	for i, s := range sections {
		e := buf[headerLen+tocEntrLen*i:]
		binary.LittleEndian.PutUint32(e[0:], s.kind)
		binary.LittleEndian.PutUint32(e[4:], s.hier)
		binary.LittleEndian.PutUint64(e[8:], uint64(offsets[i]))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(s.data, crcTable))
		copy(buf[offsets[i]:], s.data)
	}
	sum := crc32.Checksum(buf[:40], crcTable)
	sum = crc32.Update(sum, crcTable, buf[headerLen:headerLen+tocLen])
	binary.LittleEndian.PutUint32(buf[40:], sum)
	return buf
}

// encodeSynopsis serializes a path synopsis: u32 path-node count, u32
// top-level text count, then one 16-byte record per path node in
// preorder (name symbol, element count, text-child count, child count).
// Kids are ascending by symbol in the tree, so the byte stream is
// deterministic — a decoded tree re-encodes byte-identically.
func encodeSynopsis(t *synopsis.Tree) []byte {
	cnt := 0
	t.Walk(func(*synopsis.Node, int) { cnt++ })
	b := make([]byte, 8+16*cnt)
	binary.LittleEndian.PutUint32(b[0:], uint32(cnt))
	binary.LittleEndian.PutUint32(b[4:], uint32(t.Texts))
	cur := 8
	var rec func(kids []*synopsis.Node)
	rec = func(kids []*synopsis.Node) {
		for _, k := range kids {
			binary.LittleEndian.PutUint32(b[cur+0:], uint32(k.Sym))
			binary.LittleEndian.PutUint32(b[cur+4:], uint32(k.Count))
			binary.LittleEndian.PutUint32(b[cur+8:], uint32(k.Texts))
			binary.LittleEndian.PutUint32(b[cur+12:], uint32(len(k.Kids)))
			cur += 16
			rec(k.Kids)
		}
	}
	rec(t.Kids)
	return b
}

func putU32s(dst []byte, vals []uint32) {
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[4*i:], v)
	}
}

// nodesSectionLen is the byte length of a nodes section for n nodes:
// the kind column plus six u32 columns, each padded to 8 bytes.
func nodesSectionLen(n int) int {
	return pad8(n) + 5*pad8(4*n) + pad8(4*(n+1))
}
