package slab

import (
	"encoding/binary"
	"strconv"
	"unsafe"
)

// The zero-copy accessors below alias the raw image instead of copying
// it — that is the whole point of the slab layout. Aliasing is only
// safe (and only correct) when the host is little-endian and the
// backing bytes are sufficiently aligned; every helper falls back to a
// decoded copy otherwise, so the format works on any platform.
//
// Lifetime: a mapped image is never unmapped once a document aliases
// it (documents — and the strings/slices handed to queries — have
// unbounded lifetime). Heap-backed images are kept alive by the
// aliases themselves: Go's GC tracks interior pointers from string and
// slice headers.

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// byteString aliases b as a string without copying.
func byteString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// u32view returns b (a whole number of little-endian u32s) as a
// []uint32, aliasing without copying when the host allows.
func u32view(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// i32view is u32view for []int32 (the name-index run representation).
func i32view(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// boundsView returns b (little-endian u64s, pre-validated to fit int)
// as []int, aliasing when int is 64 bits on a little-endian host.
func boundsView(b []byte) []int {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && strconv.IntSize == 64 && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
