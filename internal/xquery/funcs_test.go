package xquery_test

import "testing"

func TestStringFunctions(t *testing.T) {
	runCases(t, []evalCase{
		{"string node", `string(/descendant::w[1])`, "gesceaftum"},
		{"string number", `string(1.5)`, "1.5"},
		{"string bool", `string(true())`, "true"},
		{"string empty", `string(())`, ""},
		{"string-length", `string-length("abcd")`, "4"},
		{"string-length runes", `string-length("þaþa")`, "4"},
		{"string-length empty", `string-length(())`, "0"},
		{"normalize-space", `normalize-space("  a   b  ")`, "a b"},
		{"concat", `concat("a", 1, true())`, "a1true"},
		{"concat many", `concat("a","b","c","d")`, "abcd"},
		{"string-join", `string-join(("a","b","c"), "-")`, "a-b-c"},
		{"string-join nosep", `string-join(("a","b"))`, "ab"},
		{"string-join nodes", `string-join(/descendant::dmg, "+")`, "w+de þa"},
		{"upper", `upper-case("moté")`, "MOTÉ"},
		{"lower", `lower-case("MoTé")`, "moté"},
		{"translate", `translate("abcabc", "abc", "xy")`, "xyxy"},
		{"contains", `contains("singallice", "gall")`, "true"},
		{"contains not", `contains("x", "y")`, "false"},
		{"starts-with", `starts-with("gesceaftum", "ges")`, "true"},
		{"ends-with", `ends-with("gesceaftum", "tum")`, "true"},
		{"substring", `substring("12345", 2, 3)`, "234"},
		{"substring to end", `substring("12345", 3)`, "345"},
		{"substring rounding", `substring("12345", 1.5, 2.6)`, "234"},
		{"substring runes", `substring("þaðe", 2, 2)`, "að"},
		{"substring-before", `substring-before("a=b", "=")`, "a"},
		{"substring-before missing", `substring-before("ab", "x")`, ""},
		{"substring-after", `substring-after("a=b", "=")`, "b"},
		{"matches", `matches("unawendendne", "una.e")`, "true"},
		{"matches anchored", `matches("abc", "^abc$")`, "true"},
		{"matches flags", `matches("ABC", "abc", "i")`, "true"},
		{"replace", `replace("banana", "an", "X")`, "bXXa"},
		{"replace groups", `replace("a1b2", "([a-z])([0-9])", "$2$1")`, "1a2b"},
		{"tokenize", `string-join(tokenize("a b  c", "\s+"), "|")`, "a|b|c"},
	})
}

func TestSequenceFunctions(t *testing.T) {
	runCases(t, []evalCase{
		{"count", `count((1,2,3))`, "3"},
		{"count empty", `count(())`, "0"},
		{"empty", `empty(())`, "true"},
		{"empty not", `empty(1)`, "false"},
		{"exists", `exists((1))`, "true"},
		{"distinct-values", `string-join(distinct-values(("a","b","a")), ",")`, "a,b"},
		{"distinct numbers vs strings", `count(distinct-values((1, "1")))`, "2"},
		{"reverse", `string-join(reverse(("a","b","c")), "")`, "cba"},
		{"subsequence", `string-join(subsequence(("a","b","c","d"), 2, 2), "")`, "bc"},
		{"subsequence to end", `string-join(subsequence(("a","b","c"), 2), "")`, "bc"},
		{"index-of", `index-of((10, 20, 10), 10)`, "1 3"},
		{"index-of none", `count(index-of((1,2), 5))`, "0"},
		{"insert-before", `string-join(insert-before(("a","c"), 2, "b"), "")`, "abc"},
		{"remove", `string-join(remove(("a","b","c"), 2), "")`, "ac"},
		{"position in predicate", `string-join((10,20,30)[position() > 1]/string(.), ",")`, "20,30"},
	})
}

func TestNumericFunctions(t *testing.T) {
	runCases(t, []evalCase{
		{"number", `number("3.5")`, "3.5"},
		{"number bad", `number("zz")`, "NaN"},
		{"number bool", `number(true())`, "1"},
		{"sum", `sum((1,2,3))`, "6"},
		{"sum empty", `sum(())`, "0"},
		{"avg", `avg((1,2,3))`, "2"},
		{"avg empty", `count(avg(()))`, "0"},
		{"min", `min((3,1,2))`, "1"},
		{"max", `max((3,1,2))`, "3"},
		{"min strings", `min(("pear","apple"))`, "apple"},
		{"max strings", `max(("pear","apple"))`, "pear"},
		{"floor", `floor(1.7)`, "1"},
		{"ceiling", `ceiling(1.2)`, "2"},
		{"round", `round(2.5)`, "3"},
		{"round negative", `round(-2.5)`, "-2"},
		{"abs", `abs(-4)`, "4"},
	})
}

func TestNodeFunctions(t *testing.T) {
	runCases(t, []evalCase{
		{"name", `name(/descendant::w[1])`, "w"},
		{"name empty", `name(())`, ""},
		{"local-name", `local-name(/descendant::w[1])`, "w"},
		{"root", `name(root(/descendant::w[1]))`, "r"},
		{"data", `string-join(data(/descendant::dmg), "/")`, "w/de þa"},
		{"deep-equal same", `deep-equal(<a>x</a>, <a>x</a>)`, "true"},
		{"deep-equal diff", `deep-equal(<a>x</a>, <a>y</a>)`, "false"},
		{"deep-equal atoms", `deep-equal((1, "a"), (1, "a"))`, "true"},
		{"deep-equal len", `deep-equal((1, 2), (1))`, "false"},
		{"serialize", `serialize(<a k="1">x</a>)`, `<a k="1">x</a>`},
	})
}

func TestExtensionFunctions(t *testing.T) {
	runCases(t, []evalCase{
		{"hierarchy", `hierarchy(/descendant::dmg[1])`, "damage"},
		{"hierarchy prefixed", `mh:hierarchy(/descendant::w[1])`, "structure"},
		{"hierarchy of leaf", `string-join(hierarchy(/descendant::leaf()[4]), ",")`,
			"physical,structure,restoration,damage"},
		{"hierarchies", `string-join(hierarchies(), ",")`, "physical,structure,restoration,damage"},
		{"leaves", `count(leaves(/descendant::w[2]))`, "3"},
		{"leaves of root", `count(leaves(/))`, "16"},
		{"base-text", `base-text()`, "gesceaftum unawendendne singallice sibbe gecynde þa"},
		{"span", `concat(span-start(/descendant::w[2]), "-", span-end(/descendant::w[2]))`, "11-23"},
		{"fn prefix accepted", `fn:count((1,2))`, "2"},
	})
}
