package xquery

import (
	"fmt"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
)

// The differential property test of the order-aware pipeline: every
// query must produce byte-for-byte (in fact node-for-node) the result of
// the reference evaluator (debugNaiveSteps), which sortDedupes after
// every step, on realistic four-hierarchy documents.

// diffQueries exercises every axis, hierarchy-qualified tests, constant
// positional predicates, reverse axes, multi-context merging, unions and
// primary steps.
var diffQueries = []string{
	`/descendant::w`,
	`/descendant::line`,
	`/child::node()`,
	`/descendant::line/descendant::leaf()`,
	`/descendant::vline/child::w`,
	`/descendant::vline/child::w[1]`,
	`/descendant::vline/child::w[2]`,
	`/descendant::vline/child::w[last()]`,
	`/descendant::vline/child::node()[2]`,
	`/descendant::w[7]`,
	`/descendant::w[0.5]`,
	`/descendant::w[100000]`,
	`/descendant::w[position() <= 3]`,
	`/descendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]`,
	`/descendant::w[overlapping::line]`,
	`/descendant::w/ancestor::node()`,
	`/descendant::w/ancestor-or-self::node()`,
	`/descendant::leaf()/parent::node()`,
	`/descendant::leaf()/ancestor::node()`,
	`/descendant::leaf()[5]/ancestor::*`,
	`/descendant::w/following-sibling::w`,
	`/descendant::w/preceding-sibling::w`,
	`/descendant::w[2]/following::node()`,
	`/descendant::w[2]/preceding::node()`,
	`/descendant::line[1]/xfollowing::w`,
	`/descendant::line[last()]/xpreceding::w`,
	`/descendant::w/xancestor::node()`,
	`/descendant::line/xdescendant::w`,
	`/descendant::line/overlapping::node()`,
	`/descendant::w/preceding-overlapping::node()`,
	`/descendant::w/following-overlapping::node()`,
	`/descendant::w[3]/ancestor::node()[1]`,
	`/descendant::w[3]/ancestor-or-self::node()[2]`,
	`/descendant::w[3]/xpreceding::node()[last()]`,
	`/descendant::w[3]/preceding::node()[1]`,
	`/descendant::leaf()[4]/parent::node()[last()]`,
	`/descendant::w[3]/xancestor::node()[1]`,
	`/descendant::node()/self::w`,
	`/descendant::text()`,
	`/descendant::*('structure')`,
	`/descendant::node('damage')`,
	`/descendant::leaf('physical,damage')`,
	`(/descendant::w | /descendant::line)/descendant::leaf()`,
	`/descendant::vline/child::w/descendant::leaf()`,
	`/descendant::w/parent::node()/child::w`,
	`/descendant::w/string(.)`,
	`for $l in /descendant::line[xdescendant::w or overlapping::w] return string($l)`,
	`for $w in /descendant::w[position() <= 2]
	   return (for $leaf in $w/descendant::leaf() return $leaf, "|")`,
	`count(/descendant::w[xancestor::res or xdescendant::res or overlapping::res])`,
	`/descendant::w[string-length(string(.)) > 4]`,
	`(/descendant::w, /descendant::w)/child::node()`,
	`/descendant::dmg/xdescendant::leaf()`,
	`/descendant::res/attribute::*`,
}

// diffDocs builds the differential corpus: the Boethius fixture plus
// generated manuscripts at several scales and damage rates.
func diffDocs(t *testing.T) map[string]*core.Document {
	t.Helper()
	docs := map[string]*core.Document{"boethius": corpus.MustBoethius()}
	for _, p := range []corpus.Params{
		{Seed: 1, Words: 8},
		{Seed: 2, Words: 8, DamageRate: 0.4, RestoreRate: 0.4},
		{Seed: 3, Words: 30, DamageRate: 0.2},
		{Seed: 4, Words: 60},
	} {
		d, err := corpus.Generate(p).Document()
		if err != nil {
			t.Fatal(err)
		}
		docs[fmt.Sprintf("gen-seed%d-w%d", p.Seed, p.Words)] = d
	}
	return docs
}

// evalBoth evaluates src against d with the cursor engine and the
// reference evaluator, returning both results (and their errors). The
// cursor engine is exercised over BOTH of its routes — the strict eval
// entry point and a full drain of the streaming entry point — and the
// two must agree exactly before either is compared to the reference.
func evalBoth(t *testing.T, d *core.Document, src string) (fast, ref Seq, fastErr, refErr error) {
	t.Helper()
	q, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	fast, fastErr = q.Eval(d)
	streamed, streamErr := drainStream(q.Stream(nil, d, nil, nil))
	if (fastErr == nil) != (streamErr == nil) {
		t.Errorf("%q: eval err=%v, stream err=%v", src, fastErr, streamErr)
	} else if fastErr == nil && !sameItems(fast, streamed) &&
		Serialize(fast) != Serialize(streamed) { // constructors build fresh nodes per run
		t.Errorf("%q: eval and stream disagree:\n  eval:   %s\n  stream: %s",
			src, Serialize(fast), Serialize(streamed))
	}
	debugNaiveSteps = true
	defer func() { debugNaiveSteps = false }()
	ref, refErr = q.Eval(d)
	return
}

// drainStream materializes a Stream (test helper).
func drainStream(s *Stream) (Seq, error) {
	var out Seq
	for {
		it, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, it)
	}
}

func sameItems(a, b Seq) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		na, aok := a[i].(*dom.Node)
		nb, bok := b[i].(*dom.Node)
		if aok != bok {
			return false
		}
		if aok {
			if na != nb { // node identity, not just equal serialization
				return false
			}
			continue
		}
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPipelineMatchesReference(t *testing.T) {
	for name, d := range diffDocs(t) {
		for _, src := range diffQueries {
			fast, ref, fastErr, refErr := evalBoth(t, d, src)
			if (fastErr == nil) != (refErr == nil) {
				t.Errorf("%s: %q: pipeline err=%v, reference err=%v", name, src, fastErr, refErr)
				continue
			}
			if fastErr != nil {
				continue
			}
			if !sameItems(fast, ref) {
				t.Errorf("%s: %q:\n  pipeline:  %s\n  reference: %s",
					name, src, Serialize(fast), Serialize(ref))
			}
		}
	}
}

// TestPipelineMatchesReferenceErrors checks the error-path equivalence:
// unknown hierarchies in node tests must surface (or not) at the same
// evaluation points.
func TestPipelineMatchesReferenceErrors(t *testing.T) {
	d := corpus.MustBoethius()
	for _, src := range []string{
		`/descendant::w('nope')`,                   // unknown hierarchy, candidates exist
		`/descendant::zzz('nope')`,                 // name matches nothing: no error
		`/descendant::zzz('nope')[1]`,              // positional fast path, no candidates pass
		`/descendant::w('nope')[1]`,                // positional fast path, candidates pass
		`/descendant::w('nope')[last()]`,           // backward fast path
		`/descendant::node('physical,damage')`,     // valid multi-hierarchy restriction
		`/descendant::comment('nope')`,             // comment tests ignore hierarchies
		`count(/descendant::leaf('nope'))`,         // leaf test with unknown hierarchy
		`/descendant::w[xdescendant::q('absent')]`, // nested inside a predicate
	} {
		fast, ref, fastErr, refErr := evalBoth(t, d, src)
		if (fastErr == nil) != (refErr == nil) {
			t.Errorf("%q: pipeline err=%v, reference err=%v", src, fastErr, refErr)
			continue
		}
		if fastErr != nil {
			fe, fok := fastErr.(*Error)
			re, rok := refErr.(*Error)
			if !fok || !rok || fe.Code != re.Code {
				t.Errorf("%q: pipeline err=%v, reference err=%v", src, fastErr, refErr)
			}
			continue
		}
		if !sameItems(fast, ref) {
			t.Errorf("%q: results differ", src)
		}
	}
}

// TestPipelineConstructedTrees checks the order-degenerate fallback:
// paths over constructed result trees (no document ordinals) must match
// the reference stable-sort behavior exactly.
func TestPipelineConstructedTrees(t *testing.T) {
	d := corpus.MustBoethius()
	for _, src := range []string{
		`let $x := <a><b>1</b><c><b>2</b></c></a> return $x/descendant::b`,
		`let $x := <a><b>1</b><c><b>2</b></c></a> return $x/descendant::b/ancestor::node()`,
		`let $x := <a><b>1</b><b>2</b><b>3</b></a> return $x/child::b[2]`,
		`let $x := <a><b>1</b><b>2</b><b>3</b></a> return $x/child::b[last()]`,
		`let $x := <a f="1" g="2"><b/></a> return $x/attribute::*`,
		`let $x := <a><b>1</b></a> return ($x/child::b, /descendant::w)/child::node()`,
	} {
		fast, ref, fastErr, refErr := evalBoth(t, d, src)
		if fastErr != nil || refErr != nil {
			t.Fatalf("%q: err %v / %v", src, fastErr, refErr)
		}
		// Constructors build fresh nodes per evaluation, so node identity
		// cannot match across the two runs; compare serializations.
		if len(fast) != len(ref) || Serialize(fast) != Serialize(ref) {
			t.Errorf("%q:\n  pipeline:  %s\n  reference: %s", src, Serialize(fast), Serialize(ref))
		}
	}
}

// TestPipelineOverlayQueries runs the differential check across
// analyze-string overlays (temporary hierarchies, document switching).
func TestPipelineOverlayQueries(t *testing.T) {
	d := corpus.MustBoethius()
	for _, src := range []string{
		`for $w in /descendant::w[string(.) = 'unawendendne']
		   return analyze-string($w, "en")/descendant::m`,
		`for $w in /descendant::w[position() <= 2]
		   return (let $r := analyze-string($w, "e")
		           return $r/descendant::leaf()/xancestor::node())`,
		`for $w in /descendant::w[1]
		   return analyze-string($w, "ge")/child::node()[last()]`,
	} {
		fast, ref, fastErr, refErr := evalBoth(t, d, src)
		if fastErr != nil || refErr != nil {
			t.Fatalf("%q: err %v / %v", src, fastErr, refErr)
		}
		// Overlay nodes are rebuilt per evaluation, so compare
		// serializations rather than node identity.
		if Serialize(fast) != Serialize(ref) {
			t.Errorf("%q:\n  pipeline:  %s\n  reference: %s", src, Serialize(fast), Serialize(ref))
		}
	}
}
