package xquery

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStripOuterDotStar(t *testing.T) {
	cases := map[string]string{
		".*unawe.*":        "unawe",
		".*?unawe.*":       "unawe",
		"unawe":            "unawe",
		".*un<a>a</a>we.*": "un<a>a</a>we",
		".*.*x.*":          "x",
		`a\.*`:             `a\.*`, // escaped dot: not stripped
		".*":               ".*",   // stripping everything keeps the original
		"x.*y":             "x.*y", // inner .* untouched
	}
	for in, want := range cases {
		if got := stripOuterDotStar(in); got != want {
			t.Errorf("stripOuterDotStar(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTranslateFragmentPattern(t *testing.T) {
	re, groups, err := translateFragmentPattern("un<a>a</a>we")
	if err != nil {
		t.Fatal(err)
	}
	if re != "un(a)we" {
		t.Errorf("regex = %q", re)
	}
	if len(groups) != 1 || groups[0].name != "a" || groups[0].parent != -1 {
		t.Errorf("groups = %+v", groups)
	}

	// Nested tags nest groups.
	re, groups, err = translateFragmentPattern("<o>x<i>y</i>z</o>")
	if err != nil {
		t.Fatal(err)
	}
	if re != "(x(y)z)" {
		t.Errorf("nested regex = %q", re)
	}
	if len(groups) != 2 || groups[1].parent != 0 {
		t.Errorf("nested groups = %+v", groups)
	}

	// User parentheses become non-capturing; existing (?...) is kept.
	re, _, err = translateFragmentPattern("(ab)+<g>c</g>(?:d)")
	if err != nil {
		t.Fatal(err)
	}
	if re != "(?:ab)+(c)(?:d)" {
		t.Errorf("neutralized regex = %q", re)
	}

	// Character classes shield everything.
	re, groups, err = translateFragmentPattern(`[<(]x`)
	if err != nil {
		t.Fatal(err)
	}
	if re != `[<(]x` || len(groups) != 0 {
		t.Errorf("class regex = %q groups=%v", re, groups)
	}

	// Escapes shield tags.
	re, _, err = translateFragmentPattern(`\<a>`)
	if err != nil {
		t.Fatal(err)
	}
	if re != `\<a>` {
		t.Errorf("escaped regex = %q", re)
	}

	// Literal '<' not starting a name.
	re, _, err = translateFragmentPattern("a<1")
	if err != nil {
		t.Fatal(err)
	}
	if re != `a\<1` {
		t.Errorf("literal-lt regex = %q", re)
	}

	// Errors.
	for _, bad := range []string{"<a>x", "x</a>", "<a>x</b>"} {
		if _, _, err := translateFragmentPattern(bad); err == nil {
			t.Errorf("translate(%q) should fail", bad)
		}
	}
}

func TestQuickTranslateBalanced(t *testing.T) {
	// For patterns assembled from balanced tags and safe literals, the
	// translation must produce as many '(' as ')' plus one group entry
	// per tag pair.
	f := func(n uint8) bool {
		depth := int(n%4) + 1
		var b strings.Builder
		for i := 0; i < depth; i++ {
			b.WriteString("<g")
			b.WriteByte(byte('a' + i))
			b.WriteString(">x")
		}
		for i := depth - 1; i >= 0; i-- {
			b.WriteString("</g")
			b.WriteByte(byte('a' + i))
			b.WriteString(">")
		}
		re, groups, err := translateFragmentPattern(b.String())
		if err != nil {
			return false
		}
		return len(groups) == depth &&
			strings.Count(re, "(") == depth && strings.Count(re, ")") == depth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
