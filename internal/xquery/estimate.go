package xquery

// This file is the plan-time cardinality estimator behind cost-based
// lowering (lowerPath, plan.go). Estimates come from the per-hierarchy
// path synopses (internal/synopsis): one node per distinct rooted label
// path with exact instance and text-child counts, maintained
// incrementally across document versions and persisted in slab images.
// Because every hierarchy is a plain tree, a rooted child/descendant
// name path maps to an exact set of synopsis nodes — the estimator
// promises q-error 1.0 on pure structural paths and degrades to
// heuristic selectivities only where predicates or unsupported axes
// enter.
//
// Everything here runs at plan time against the planned document; the
// resulting numbers steer three plan choices — chain-scan versus axis
// stepping, predicate application order, quantifier/FLWOR binding
// order — and are recorded per operator (explainNode.est) so EXPLAIN
// and EXPLAIN ANALYZE print estimated next to observed rows. A plan
// evaluated against a different document than it was planned for keeps
// its estimates (they are advisory); correctness never depends on them.

import (
	"math"

	"mhxquery/internal/core"
	"mhxquery/internal/synopsis"
)

// defaultPredSel is the selectivity assumed for predicates the
// estimator cannot see through (comparisons, function calls, variables).
const defaultPredSel = 0.5

// maxEstPositions bounds the distinct synopsis positions tracked per
// step; beyond it, row counts stay usable but further steps give up
// rather than degrade silently.
const maxEstPositions = 64

type hierSyn struct {
	name string
	tree *synopsis.Tree
}

// estimator holds the planned document's synopses. A hierarchy without
// an available synopsis (a frozen document from a pre-synopsis image,
// not yet materialized) leaves tree nil and every estimate touching it
// unknown — estimation must never force materialization at plan time.
type estimator struct {
	d     *core.Document
	hiers []hierSyn
	ok    bool
}

func newEstimator(d *core.Document) *estimator {
	e := &estimator{d: d, ok: true}
	for _, h := range d.Hiers {
		t := h.SynopsisSnapshot()
		if t == nil && h.Nodes != nil {
			t = h.Synopsis()
		}
		if t == nil {
			e.ok = false
		}
		e.hiers = append(e.hiers, hierSyn{name: h.Name, tree: t})
	}
	return e
}

// estPos is one synopsis position of an estimated context: a rooted
// label path (node nil means the hierarchy's top level, i.e. the shared
// root) and the fraction of that path's instances estimated to be in
// the context.
type estPos struct {
	hier int
	node *synopsis.Node
	frac float64
}

// estCtx is an estimated context sequence: the expected row count and,
// while posOK holds, the synopsis positions the rows live on (the basis
// for estimating the next step).
type estCtx struct {
	known bool
	posOK bool
	rows  float64
	pos   []estPos
}

var estUnknown = estCtx{}

// estInt renders the row estimate for the explain tree: -1 when
// unknown.
func (c estCtx) estInt() int64 {
	if !c.known {
		return -1
	}
	return int64(math.Round(c.rows))
}

// scale multiplies the context by a selectivity.
func (c estCtx) scale(sel float64) estCtx {
	if !c.known {
		return c
	}
	c.rows *= sel
	out := make([]estPos, len(c.pos))
	for i, p := range c.pos {
		out[i] = estPos{hier: p.hier, node: p.node, frac: p.frac * sel}
	}
	c.pos = out
	return c
}

// rootCtx is the estimated context of "/": the single shared root,
// positioned at every hierarchy's top level.
func (e *estimator) rootCtx() estCtx {
	if !e.ok {
		return estUnknown
	}
	c := estCtx{known: true, posOK: true, rows: 1}
	for hi := range e.hiers {
		c.pos = append(c.pos, estPos{hier: hi, frac: 1})
	}
	return c
}

// add accumulates one synopsis position, merging duplicates (two
// context paths can reach the same child path).
func (c *estCtx) add(hier int, n *synopsis.Node, frac float64) {
	for i := range c.pos {
		if c.pos[i].hier == hier && c.pos[i].node == n {
			if c.pos[i].frac += frac; c.pos[i].frac > 1 {
				c.pos[i].frac = 1
			}
			return
		}
	}
	c.pos = append(c.pos, estPos{hier: hier, node: n, frac: frac})
}

// level returns a position's child list and text count.
func (e *estimator) level(p estPos) ([]*synopsis.Node, float64) {
	t := e.hiers[p.hier].tree
	if p.node == nil {
		return t.Kids, float64(t.Texts)
	}
	return p.node.Kids, float64(p.node.Texts)
}

// hierAllowed resolves a test's hierarchy qualifier against position p.
// Unknown hierarchy names estimate as zero contribution (the engine
// raises MHXQ0001 only when a candidate reaches the check).
func (e *estimator) hierAllowed(t *nodeTest, p estPos) bool {
	if len(t.hiers) == 0 {
		return true
	}
	for _, name := range t.hiers {
		if e.hiers[p.hier].name == name {
			return true
		}
	}
	return false
}

// stepBase estimates one axis step (axis and node test only — the
// caller layers positional shortcuts and predicate selectivities on
// top). Axes the synopsis cannot answer (upward, sibling, attribute,
// leaf) and tests it does not count (comments, PIs, leaves) return
// unknown.
func (e *estimator) stepBase(ctx estCtx, s *step) estCtx {
	if !ctx.known || !ctx.posOK || s.prim != nil {
		return estUnknown
	}
	t := &s.test
	var sym int32
	if t.kind == testName {
		if sym = e.d.NameSymOf(t.name); sym == 0 {
			return estCtx{known: true, posOK: true} // name occurs nowhere
		}
	}
	out := estCtx{known: true, posOK: true}
	for _, p := range ctx.pos {
		if !e.hierAllowed(t, p) {
			continue
		}
		switch s.axis {
		case core.AxisChild:
			kids, texts := e.level(p)
			switch t.kind {
			case testName:
				for _, k := range kids {
					if k.Sym == sym {
						out.add(p.hier, k, p.frac)
						break
					}
				}
			case testStar:
				for _, k := range kids {
					out.add(p.hier, k, p.frac)
				}
			case testText:
				out.rows += texts * p.frac
			case testNode:
				for _, k := range kids {
					out.add(p.hier, k, p.frac)
				}
				out.rows += texts * p.frac
			default:
				return estUnknown
			}
		case core.AxisDescendant, core.AxisDescendantOrSelf:
			self := s.axis == core.AxisDescendantOrSelf
			switch t.kind {
			case testName:
				if self && p.node != nil && p.node.Sym == sym {
					out.add(p.hier, p.node, p.frac)
				}
				e.eachBelow(p, func(n *synopsis.Node) {
					if n.Sym == sym {
						out.add(p.hier, n, p.frac)
					}
				})
			case testStar:
				if self && p.node != nil {
					out.add(p.hier, p.node, p.frac)
				}
				e.eachBelow(p, func(n *synopsis.Node) { out.add(p.hier, n, p.frac) })
			case testText:
				_, texts := e.level(p)
				out.rows += texts * p.frac
				e.eachBelow(p, func(n *synopsis.Node) {
					out.rows += float64(n.Texts) * p.frac
				})
			default:
				return estUnknown
			}
		case core.AxisSelf:
			if p.node == nil {
				return estUnknown // the shared root: not synopsis-positioned
			}
			switch {
			case t.kind == testName && p.node.Sym == sym,
				t.kind == testStar,
				t.kind == testNode:
				out.add(p.hier, p.node, p.frac)
			case t.kind == testText:
				// elements are not texts: contributes nothing
			default:
				return estUnknown
			}
		default:
			return estUnknown
		}
		if len(out.pos) > maxEstPositions {
			out.posOK = false
			out.pos = nil
			return estUnknown
		}
	}
	for _, p := range out.pos {
		out.rows += float64(p.node.Count) * p.frac
	}
	if len(out.pos) == 0 && out.rows > 0 {
		// Text rows: terminal for downward axes (texts have no element
		// children), which subsequent steps estimate correctly as zero.
		out.posOK = true
	}
	return out
}

// eachBelow visits every synopsis node strictly below position p.
func (e *estimator) eachBelow(p estPos, f func(*synopsis.Node)) {
	var rec func(kids []*synopsis.Node)
	rec = func(kids []*synopsis.Node) {
		for _, k := range kids {
			f(k)
			rec(k.Kids)
		}
	}
	kids, _ := e.level(p)
	rec(kids)
}

// estStep estimates a full step: axis and test, then the positional
// shortcut (at most one row per context row) and predicate
// selectivities.
func (e *estimator) estStep(ctx estCtx, s *step) estCtx {
	out := e.stepBase(ctx, s)
	if !out.known {
		return out
	}
	preds := s.preds
	if s.posSel != 0 {
		preds = preds[1:]
		if ctx.known && ctx.rows < out.rows {
			if out.rows > 0 {
				out = out.scale(ctx.rows / out.rows)
			}
		}
	}
	for _, pr := range preds {
		out = out.scale(e.predSel(out, pr))
	}
	return out
}

// estPath estimates a whole absolute path from the root (the only
// context the estimator knows from nothing). ok is false for paths the
// synopsis cannot see through.
func (e *estimator) estPath(p *pathExpr) (float64, bool) {
	if !p.absolute || p.start != nil {
		return 0, false
	}
	ctx := e.rootCtx()
	for _, s := range p.steps {
		ctx = e.estStep(ctx, s)
		if !ctx.known {
			return 0, false
		}
	}
	return ctx.rows, true
}

// predSel estimates a predicate's selectivity against the estimated
// candidate context. Relative structural paths (the exists-style
// predicate) estimate as expected-matches-per-candidate capped at 1;
// exists/boolean and empty/not calls over such paths follow; everything
// else gets the default.
func (e *estimator) predSel(ctx estCtx, pred expr) float64 {
	switch x := pred.(type) {
	case *pathExpr:
		if x.absolute || x.start != nil || len(x.steps) == 0 {
			return defaultPredSel
		}
		c := ctx
		for _, s := range x.steps {
			c = e.estStep(c, s)
			if !c.known {
				return defaultPredSel
			}
		}
		if !ctx.known || ctx.rows <= 0 {
			return defaultPredSel
		}
		return math.Min(1, c.rows/ctx.rows)
	case *callExpr:
		if len(x.args) == 1 {
			switch x.fn {
			case bExists, bBoolean:
				return e.predSel(ctx, x.args[0])
			case bEmpty, bNot:
				return 1 - e.predSel(ctx, x.args[0])
			}
		}
	}
	return defaultPredSel
}

// exprRows estimates the cardinality of an expression evaluated in an
// arbitrary context: literals, sequences and absolute structural paths.
func (e *estimator) exprRows(x expr) (float64, bool) {
	switch v := x.(type) {
	case *literalExpr:
		return float64(len(v.seq)), true
	case *seqExpr:
		total := 0.0
		for _, it := range v.items {
			r, ok := e.exprRows(it)
			if !ok {
				return 0, false
			}
			total += r
		}
		return total, true
	case *pathExpr:
		return e.estPath(v)
	}
	return 0, false
}

// totalOf is the document-wide instance count of a name symbol, summed
// over every hierarchy's synopsis.
func (e *estimator) totalOf(sym int32) (float64, bool) {
	if !e.ok {
		return 0, false
	}
	total := 0.0
	for _, h := range e.hiers {
		h.tree.Walk(func(n *synopsis.Node, _ int) {
			if n.Sym == sym {
				total += float64(n.Count)
			}
		})
	}
	return total, true
}

// chainCosts prices the two physical routes for a leading child chain
// of an absolute path. The chain-scan reads the full index run of the
// chain's LAST name — every instance anywhere in the document — and
// verifies each candidate's ancestor chain (len(chain) symbol
// comparisons); the axis route walks level by level, scanning the
// children of every node actually on the chain prefix. The chain-scan
// wins except when the last name is globally common but the prefix is
// selective.
func (e *estimator) chainCosts(chain []*step) (axisCost, chainCost float64, ok bool) {
	ctx := e.rootCtx()
	for _, s := range chain {
		if !ctx.known || !ctx.posOK {
			return 0, 0, false
		}
		for _, p := range ctx.pos {
			kids, texts := e.level(p)
			scanned := texts * p.frac
			for _, k := range kids {
				scanned += float64(k.Count) * p.frac
			}
			axisCost += scanned
		}
		ctx = e.stepBase(ctx, s)
	}
	if !ctx.known {
		return 0, 0, false
	}
	lastSym := e.d.NameSymOf(chain[len(chain)-1].test.name)
	if lastSym == 0 {
		return axisCost, 0, true // empty run: the chain-scan exits immediately
	}
	total, ok := e.totalOf(lastSym)
	if !ok {
		return 0, 0, false
	}
	return axisCost, total * float64(len(chain)), true
}

// chainEst estimates the rows a leading child chain emits, and the
// estimated context after it.
func (e *estimator) chainEst(chain []*step) estCtx {
	ctx := e.rootCtx()
	for _, s := range chain {
		ctx = e.estStep(ctx, s)
	}
	return ctx
}

// ---- reorder gates ---------------------------------------------------------

// predInfallible reports (conservatively) that evaluating e over a node
// context can never raise an error: literal values, plain axis paths
// without hierarchy qualifiers or primary steps, boolean connectives of
// such, and the boolean builtins over such. Reordering infallible,
// position-independent predicates or bindings can then never change
// which error a query raises — there is none to raise.
func predInfallible(e expr) bool {
	switch x := e.(type) {
	case *literalExpr:
		return true
	case *orExpr:
		return predInfallible(x.a) && predInfallible(x.b)
	case *andExpr:
		return predInfallible(x.a) && predInfallible(x.b)
	case *pathExpr:
		if x.start != nil {
			return false
		}
		for _, s := range x.steps {
			if s.prim != nil || len(s.test.hiers) > 0 {
				return false
			}
			for _, pr := range s.preds {
				if !predInfallible(pr) {
					return false
				}
			}
		}
		return true
	case *callExpr:
		switch x.fn {
		case bExists, bEmpty, bNot, bBoolean:
			return len(x.args) == 1 && predInfallible(x.args[0])
		}
	}
	return false
}

// referencesVars reports whether e reads any of the given variables.
func referencesVars(e expr, names map[string]bool) bool {
	if v, ok := e.(*varExpr); ok {
		return names[v.name]
	}
	found := false
	visitChildren(e, func(ch expr) {
		if !found && referencesVars(ch, names) {
			found = true
		}
	})
	return found
}
