package xquery

import (
	stdctx "context"
	"testing"
	"time"

	"mhxquery/internal/corpus"
)

// fuzzDoc is the document plans are lowered against during fuzzing.
var fuzzDoc = corpus.MustBoethius()

// FuzzParse fuzzes the lexer/parser/lowering front end: Compile must
// never panic, whatever the input. (Evaluation is deliberately out of
// scope — arbitrary queries can be made unboundedly expensive, e.g.
// huge ranges; the differential sweeps cover evaluation.) CI runs this
// as a non-gating smoke: go test -fuzz=FuzzParse -fuzztime=30s.
func FuzzParse(f *testing.F) {
	for _, seed := range diffQueries {
		f.Add(seed)
	}
	f.Add(`for $x at $p in //w order by string($x) descending return <a b="{$x}">{$x, 1 to 3}</a>`)
	f.Add(`some $x in /a satisfies every $y in $x satisfies $y eq $x`)
	f.Add(`element {concat("a","b")} {attribute c {1}, comment {"d"}}`)
	f.Add(`/descendant::w('физ,damage')[position() <= 2]/xancestor::node()`)
	f.Add("`\x00\xff<")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Compile(src)
		if err != nil {
			return
		}
		// Lowering must also be total for everything that parses.
		_ = q.PlanFor(fuzzDoc).Describe()
	})
}

// FuzzUpdate fuzzes the update-expression parser AND applier: neither
// may panic, every error must carry an error code, and the source
// document must come through an Apply — successful or not — bit-for-bit
// untouched. Applies run under a short deadline since target
// expressions are arbitrary queries. CI runs this as a non-gating
// smoke: go test -fuzz=FuzzUpdate -fuzztime=30s.
func FuzzUpdate(f *testing.F) {
	f.Add(`delete node (//dmg)[1]`)
	f.Add(`rename node //w as "word", insert node seg into (//vline)[1]`)
	f.Add(`replace value of node (//w)[2] with "xyz"`)
	f.Add(`insert hierarchy "h" from analyze-string(/, "e")/child::m`)
	f.Add(`insert node p before (//w)[1], insert node q after (//w)[1]`)
	f.Add(`delete hierarchy "damage"`)
	f.Add("delete node\x00")
	f.Fuzz(func(t *testing.T, src string) {
		u, err := CompileUpdate(src)
		if err != nil {
			if xe, ok := err.(*Error); !ok || xe.Code == "" {
				t.Fatalf("CompileUpdate(%q): uncoded error %v", src, err)
			}
			return
		}
		ctx, cancel := stdctx.WithTimeout(stdctx.Background(), 2*time.Second)
		defer cancel()
		before := fuzzDoc.Signature()
		nd, _, err := u.ApplyContext(ctx, fuzzDoc, nil)
		if err != nil {
			if xe, ok := err.(*Error); !ok || xe.Code == "" {
				t.Fatalf("Apply(%q): uncoded error %v", src, err)
			}
		} else if nd != nil && nd != fuzzDoc && nd.Rev != fuzzDoc.Rev+1 {
			t.Fatalf("Apply(%q): new version Rev = %d, want %d", src, nd.Rev, fuzzDoc.Rev+1)
		}
		if fuzzDoc.Signature() != before {
			t.Fatalf("Apply(%q) mutated the source document", src)
		}
	})
}
