package xquery

import (
	"testing"

	"mhxquery/internal/corpus"
)

// fuzzDoc is the document plans are lowered against during fuzzing.
var fuzzDoc = corpus.MustBoethius()

// FuzzParse fuzzes the lexer/parser/lowering front end: Compile must
// never panic, whatever the input. (Evaluation is deliberately out of
// scope — arbitrary queries can be made unboundedly expensive, e.g.
// huge ranges; the differential sweeps cover evaluation.) CI runs this
// as a non-gating smoke: go test -fuzz=FuzzParse -fuzztime=30s.
func FuzzParse(f *testing.F) {
	for _, seed := range diffQueries {
		f.Add(seed)
	}
	f.Add(`for $x at $p in //w order by string($x) descending return <a b="{$x}">{$x, 1 to 3}</a>`)
	f.Add(`some $x in /a satisfies every $y in $x satisfies $y eq $x`)
	f.Add(`element {concat("a","b")} {attribute c {1}, comment {"d"}}`)
	f.Add(`/descendant::w('физ,damage')[position() <= 2]/xancestor::node()`)
	f.Add("`\x00\xff<")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Compile(src)
		if err != nil {
			return
		}
		// Lowering must also be total for everything that parses.
		_ = q.PlanFor(fuzzDoc).Describe()
	})
}
