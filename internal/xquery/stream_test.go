package xquery

import (
	stdctx "context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mhxquery/internal/corpus"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestExplainFLWORGolden locks the full lowered operator tree of a
// FLWOR query: EXPLAIN must render the whole query — clauses,
// predicates, calls — not collapse non-path expressions into opaque
// nodes.
func TestExplainFLWORGolden(t *testing.T) {
	q := MustCompile(`for $l in /descendant::line[xdescendant::w[string(.) = 'singallice'] or overlapping::w[string(.) = 'singallice']]
	                  where exists($l/overlapping::w)
	                  order by string-length(string($l)) descending
	                  return <hit n="{count($l/xdescendant::w)}">{string($l)}</hit>`)
	pl := q.PlanFor(corpus.MustBoethius())
	got, err := json.MarshalIndent(pl.Describe(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "explain_flwor.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("explain tree changed (run with -update to regenerate):\n%s", got)
	}
	// Structural spot checks, so the golden cannot silently regress to
	// opaque nodes.
	var ops []string
	var walk func(op *ExplainOp)
	walk = func(op *ExplainOp) {
		ops = append(ops, op.Op)
		for _, k := range op.Children {
			walk(k)
		}
	}
	walk(pl.Describe())
	for _, want := range []string{"flwor", "for", "where", "order-by", "return", "index-scan", "call", "compare", "element"} {
		found := false
		for _, op := range ops {
			if op == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("lowered tree lacks %q operator: %v", want, ops)
		}
	}
}

// TestStreamLimitStopsScan is the cardinality-observing proof of
// early exit: pulling 3 items from //w over a large document must
// leave the index scan having produced only those 3 items, not the
// whole run.
func TestStreamLimitStopsScan(t *testing.T) {
	d, err := corpus.Generate(corpus.Params{Seed: 5, Words: 600}).Document()
	if err != nil {
		t.Fatal(err)
	}
	q := MustCompile(`//w`)
	total, err := q.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(total) < 100 {
		t.Fatalf("fixture too small: %d words", len(total))
	}

	s, render := q.StreamExplain(nil, d, nil, nil)
	for i := 0; i < 3; i++ {
		if _, ok, err := s.Next(); err != nil || !ok {
			t.Fatalf("pull %d: ok=%v err=%v", i, ok, err)
		}
	}
	var scan *ExplainOp
	var walk func(op *ExplainOp)
	walk = func(op *ExplainOp) {
		if op.Op == "index-scan" {
			scan = op
		}
		for _, k := range op.Children {
			walk(k)
		}
	}
	walk(render())
	if scan == nil {
		t.Fatal("no index-scan operator in the plan")
	}
	if scan.OutRows != 3 {
		t.Fatalf("index scan produced %d rows after a 3-item pull; early exit is broken (total %d)", scan.OutRows, len(total))
	}
	// Draining the rest must still deliver the full result.
	rest, err := drainStream(s)
	if err != nil {
		t.Fatal(err)
	}
	if 3+len(rest) != len(total) {
		t.Fatalf("stream delivered %d items, want %d", 3+len(rest), len(total))
	}
}

// TestStreamCancel checks context cancellation: a runaway query stops
// with MHXQ0002 within a bounded number of items.
func TestStreamCancel(t *testing.T) {
	d := corpus.MustBoethius()
	ctx, cancel := stdctx.WithCancel(stdctx.Background())
	cancel()
	q := MustCompile(`count(1 to 100000000000)`)
	_, err := q.EvalContext(ctx, d, nil, nil)
	if err == nil {
		t.Fatal("canceled evaluation returned no error")
	}
	xe, ok := err.(*Error)
	if !ok || xe.Code != "MHXQ0002" {
		t.Fatalf("err = %v, want MHXQ0002", err)
	}

	s := q.Stream(ctx, d, nil, nil)
	if _, _, err := s.Next(); err == nil {
		t.Fatal("canceled stream yielded an item")
	}
}

// TestStreamEarlyErrorParity: a full drain of the stream must surface
// the same error the strict evaluation does.
func TestStreamErrorParity(t *testing.T) {
	d := corpus.MustBoethius()
	for _, src := range []string{
		`/descendant::w('nope')`,
		`//w[xdescendant::q('absent')]`,
		`for $x in //w return $x/child::w('nope')`,
	} {
		q := MustCompile(src)
		_, evalErr := q.Eval(d)
		_, streamErr := drainStream(q.Stream(nil, d, nil, nil))
		switch {
		case evalErr == nil && streamErr == nil:
		case evalErr != nil && streamErr != nil:
			if evalErr.(*Error).Code != streamErr.(*Error).Code {
				t.Errorf("%q: eval %v vs stream %v", src, evalErr, streamErr)
			}
		default:
			t.Errorf("%q: eval err=%v, stream err=%v", src, evalErr, streamErr)
		}
	}
}
