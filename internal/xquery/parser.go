package xquery

import (
	"strings"
	"unicode/utf8"

	"mhxquery/internal/core"
	"mhxquery/internal/xmlparse"
)

// parser is a hand-written recursive-descent parser for the extended
// XQuery grammar. Direct element constructors are scanned in raw mode
// straight from the source (the standard technique for XQuery's
// context-dependent lexing); everything else uses the token stream.
// Errors propagate as lexPanic and are recovered in Compile.
type parser struct {
	src   string
	lex   *lexer
	tok   token
	depth int
}

// maxParseDepth bounds expression nesting so that pathological inputs
// fail with a clean error instead of exhausting the stack.
const maxParseDepth = 10000

func (p *parser) enter() {
	p.depth++
	if p.depth > maxParseDepth {
		p.fail("expression nesting exceeds %d levels", maxParseDepth)
	}
}

func (p *parser) leave() { p.depth-- }

func parseQuery(src string) (e expr, err error) {
	defer func() {
		if r := recover(); r != nil {
			lp, ok := r.(lexPanic)
			if !ok {
				panic(r)
			}
			e, err = nil, lp.err
		}
	}()
	p := &parser{src: src, lex: &lexer{src: src}}
	p.advance()
	e = p.parseExpr()
	if p.tok.kind != tEOF {
		p.fail("unexpected %s", p.tok.kind)
	}
	return e, nil
}

func (p *parser) advance() { p.tok = p.lex.next() }

func (p *parser) fail(format string, args ...any) {
	lexErr(p.tok.start, format, args...)
}

func (p *parser) expect(k tokKind) token {
	if p.tok.kind != k {
		p.fail("expected %s, found %s", k, p.tok.kind)
	}
	t := p.tok
	p.advance()
	return t
}

// peek returns the token after the current one without consuming it.
func (p *parser) peek() token {
	save := p.lex.pos
	t := p.lex.next()
	p.lex.pos = save
	return t
}

func (p *parser) isName(s string) bool { return p.tok.kind == tName && p.tok.text == s }

func (p *parser) eatName(s string) bool {
	if p.isName(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectName(s string) {
	if !p.eatName(s) {
		p.fail("expected %q", s)
	}
}

// ---- expressions --------------------------------------------------------

func (p *parser) parseExpr() expr {
	first := p.parseExprSingle()
	if p.tok.kind != tComma {
		return first
	}
	items := []expr{first}
	for p.tok.kind == tComma {
		p.advance()
		items = append(items, p.parseExprSingle())
	}
	return &seqExpr{items: items}
}

func (p *parser) parseExprSingle() expr {
	p.enter()
	defer p.leave()
	if p.tok.kind == tName {
		switch p.tok.text {
		case "for", "let":
			if p.peek().kind == tVar {
				return p.parseFLWOR()
			}
		case "some", "every":
			if p.peek().kind == tVar {
				return p.parseQuantified()
			}
		case "if":
			if p.peek().kind == tLParen {
				return p.parseIf()
			}
		}
	}
	return p.parseOr()
}

func (p *parser) parseFLWOR() expr {
	f := &flworExpr{}
	for {
		if p.isName("for") && p.peek().kind == tVar {
			p.advance()
			for {
				name := p.expect(tVar).text
				posName := ""
				if p.eatName("at") {
					posName = p.expect(tVar).text
				}
				p.expectName("in")
				src := p.parseExprSingle()
				f.clauses = append(f.clauses, flworClause{kind: clauseFor, name: name, posName: posName, src: src})
				if p.tok.kind == tComma && p.peek().kind == tVar {
					p.advance()
					continue
				}
				break
			}
			continue
		}
		if p.isName("let") && p.peek().kind == tVar {
			p.advance()
			for {
				name := p.expect(tVar).text
				p.expect(tAssign)
				src := p.parseExprSingle()
				f.clauses = append(f.clauses, flworClause{kind: clauseLet, name: name, src: src})
				if p.tok.kind == tComma && p.peek().kind == tVar {
					p.advance()
					continue
				}
				break
			}
			continue
		}
		break
	}
	if len(f.clauses) == 0 {
		p.fail("FLWOR expression without for/let clause")
	}
	if p.eatName("where") {
		f.clauses = append(f.clauses, flworClause{kind: clauseWhere, src: p.parseExprSingle()})
	}
	if p.isName("stable") || (p.isName("order") && p.peek().kind == tName && p.peek().text == "by") {
		p.eatName("stable")
		p.expectName("order")
		p.expectName("by")
		for {
			spec := orderSpec{key: p.parseExprSingle()}
			if p.eatName("descending") {
				spec.descending = true
			} else {
				p.eatName("ascending")
			}
			if p.eatName("empty") {
				if p.eatName("greatest") {
					spec.emptyGreatest = true
				} else {
					p.expectName("least")
				}
			}
			f.order = append(f.order, spec)
			if p.tok.kind != tComma {
				break
			}
			p.advance()
		}
	}
	p.expectName("return")
	f.ret = p.parseExprSingle()
	return f
}

func (p *parser) parseQuantified() expr {
	q := &quantExpr{every: p.tok.text == "every"}
	p.advance()
	for {
		q.names = append(q.names, p.expect(tVar).text)
		p.expectName("in")
		q.srcs = append(q.srcs, p.parseExprSingle())
		if p.tok.kind != tComma {
			break
		}
		p.advance()
	}
	p.expectName("satisfies")
	q.sat = p.parseExprSingle()
	return q
}

func (p *parser) parseIf() expr {
	p.advance() // "if"
	p.expect(tLParen)
	cond := p.parseExpr()
	p.expect(tRParen)
	p.expectName("then")
	then := p.parseExprSingle()
	p.expectName("else")
	els := p.parseExprSingle()
	return &ifExpr{cond: cond, then: then, els: els}
}

func (p *parser) parseOr() expr {
	a := p.parseAnd()
	for p.isName("or") {
		p.advance()
		a = &orExpr{a: a, b: p.parseAnd()}
	}
	return a
}

func (p *parser) parseAnd() expr {
	a := p.parseComparison()
	for p.isName("and") {
		p.advance()
		a = &andExpr{a: a, b: p.parseComparison()}
	}
	return a
}

func (p *parser) parseComparison() expr {
	a := p.parseRange()
	var op string
	kind := cmpGeneral
	switch p.tok.kind {
	case tEq:
		op = "="
	case tNe:
		op = "!="
	case tLt:
		op = "<"
	case tLe:
		op = "<="
	case tGt:
		op = ">"
	case tGe:
		op = ">="
	case tLtLt:
		op, kind = "<<", cmpNode
	case tGtGt:
		op, kind = ">>", cmpNode
	case tName:
		switch p.tok.text {
		case "eq", "ne", "lt", "le", "gt", "ge":
			op, kind = p.tok.text, cmpValue
		case "is":
			op, kind = "is", cmpNode
		default:
			return a
		}
	default:
		return a
	}
	p.advance()
	return &cmpExpr{op: op, kind: kind, a: a, b: p.parseRange()}
}

func (p *parser) parseRange() expr {
	a := p.parseAdditive()
	if p.isName("to") {
		p.advance()
		return &rangeExpr{lo: a, hi: p.parseAdditive()}
	}
	return a
}

func (p *parser) parseAdditive() expr {
	a := p.parseMultiplicative()
	for {
		switch p.tok.kind {
		case tPlus:
			p.advance()
			a = &arithExpr{op: "+", a: a, b: p.parseMultiplicative()}
		case tMinus:
			p.advance()
			a = &arithExpr{op: "-", a: a, b: p.parseMultiplicative()}
		default:
			return a
		}
	}
}

func (p *parser) parseMultiplicative() expr {
	a := p.parseUnion()
	for {
		switch {
		case p.tok.kind == tStar:
			p.advance()
			a = &arithExpr{op: "*", a: a, b: p.parseUnion()}
		case p.isName("div"):
			p.advance()
			a = &arithExpr{op: "div", a: a, b: p.parseUnion()}
		case p.isName("idiv"):
			p.advance()
			a = &arithExpr{op: "idiv", a: a, b: p.parseUnion()}
		case p.isName("mod"):
			p.advance()
			a = &arithExpr{op: "mod", a: a, b: p.parseUnion()}
		default:
			return a
		}
	}
}

func (p *parser) parseUnion() expr {
	a := p.parseIntersectExcept()
	for p.tok.kind == tPipe || p.isName("union") {
		p.advance()
		a = &unionExpr{a: a, b: p.parseIntersectExcept()}
	}
	return a
}

func (p *parser) parseIntersectExcept() expr {
	a := p.parseUnary()
	for p.isName("intersect") || p.isName("except") {
		except := p.tok.text == "except"
		p.advance()
		a = &intersectExpr{except: except, a: a, b: p.parseUnary()}
	}
	return a
}

func (p *parser) parseUnary() expr {
	neg := false
	for p.tok.kind == tMinus || p.tok.kind == tPlus {
		if p.tok.kind == tMinus {
			neg = !neg
		}
		p.advance()
	}
	e := p.parsePathExpr()
	if neg {
		return &unaryExpr{x: e}
	}
	return e
}

// ---- paths ---------------------------------------------------------------

func descOrSelfStep() *step {
	return &step{axis: core.AxisDescendantOrSelf, test: nodeTest{kind: testNode}}
}

// isComputedCtor reports whether the current token begins a computed
// constructor: one of the keywords followed by '{' (computed name or
// text/comment body) or by a name that is itself followed by '{'.
func (p *parser) isComputedCtor() bool {
	if p.tok.kind != tName {
		return false
	}
	switch p.tok.text {
	case "element", "attribute", "text", "comment":
	default:
		return false
	}
	nt := p.peek()
	if nt.kind == tLBrace {
		return true
	}
	if nt.kind != tName || p.tok.text == "text" || p.tok.text == "comment" {
		return false
	}
	// "element name {" — look one token further.
	save := p.lex.pos
	p.lex.pos = nt.end
	after := p.lex.next()
	p.lex.pos = save
	return after.kind == tLBrace
}

func (p *parser) parseComputedCtor() expr {
	kind := p.tok.text[0]
	p.advance()
	e := &compCtorExpr{kind: kind}
	if p.tok.kind == tName {
		e.name = p.tok.text
		p.advance()
	} else {
		p.expect(tLBrace)
		e.nameExpr = p.parseExpr()
		p.expect(tRBrace)
	}
	if kind == 't' || kind == 'c' {
		// text {E} / comment {E}: the first brace pair was the content.
		if e.nameExpr != nil {
			e.content, e.nameExpr = e.nameExpr, nil
			return e
		}
		p.fail("%s constructor requires enclosed content", string(kind))
	}
	p.expect(tLBrace)
	if p.tok.kind != tRBrace {
		e.content = p.parseExpr()
	}
	p.expect(tRBrace)
	return e
}

func (p *parser) parsePathExpr() expr {
	if p.isComputedCtor() {
		return p.parseComputedCtor()
	}
	switch p.tok.kind {
	case tSlash:
		p.advance()
		if !p.startsStep() {
			return &rootExpr{}
		}
		pe := &pathExpr{absolute: true, steps: []*step{p.parseOneStep()}}
		p.parseMoreSteps(pe)
		return pe
	case tSlashSlash:
		p.advance()
		if !p.startsStep() {
			p.fail("expected step after '//'")
		}
		pe := &pathExpr{absolute: true, steps: []*step{descOrSelfStep(), p.parseOneStep()}}
		p.parseMoreSteps(pe)
		return pe
	}
	// A function call at expression start is a primary, not a step: it
	// must see the caller's context position/size (e.g. position() in a
	// predicate). As a step after '/' it is a mapping step instead.
	isCall := p.tok.kind == tName && p.peek().kind == tLParen &&
		!isKindTestName(p.tok.text) && builtins[canonName(p.tok.text)] != nil
	if p.startsStep() && !isCall {
		pe := &pathExpr{steps: []*step{p.parseOneStep()}}
		p.parseMoreSteps(pe)
		return pe
	}
	prim := p.parsePostfix()
	if p.tok.kind == tSlash || p.tok.kind == tSlashSlash {
		pe := &pathExpr{start: prim}
		p.parseMoreSteps(pe)
		return pe
	}
	return prim
}

func (p *parser) parseMoreSteps(pe *pathExpr) {
	for {
		switch p.tok.kind {
		case tSlash:
			p.advance()
			pe.steps = append(pe.steps, p.parseOneStep())
		case tSlashSlash:
			p.advance()
			pe.steps = append(pe.steps, descOrSelfStep(), p.parseOneStep())
		default:
			return
		}
	}
}

// startsStep reports whether the current token can begin an axis step.
func (p *parser) startsStep() bool {
	switch p.tok.kind {
	case tAt, tDotDot, tStar:
		return true
	case tName:
		return true
	}
	return false
}

func isKindTestName(s string) bool {
	switch s {
	case "text", "node", "comment", "processing-instruction", "leaf":
		return true
	}
	return false
}

// parseOneStep parses an axis step, or a primary-expression step (e.g.
// "$x/string(.)") when the name turns out to be a function call.
func (p *parser) parseOneStep() *step {
	switch p.tok.kind {
	case tAt:
		p.advance()
		return p.finishStep(core.AxisAttribute, p.parseNodeTest())
	case tDotDot:
		p.advance()
		return p.finishStep(core.AxisParent, nodeTest{kind: testNode})
	case tDot:
		p.advance()
		return p.finishStep(core.AxisSelf, nodeTest{kind: testNode})
	case tStar:
		return p.finishStep(core.AxisChild, p.parseNodeTest())
	case tName:
		if p.peek().kind == tColonColon {
			ax, ok := core.AxisByName(p.tok.text)
			if !ok {
				p.fail("unknown axis %q", p.tok.text)
			}
			p.advance()
			p.advance()
			if p.tok.kind == tStar || p.tok.kind == tName {
				return p.finishStep(ax, p.parseNodeTest())
			}
			p.fail("expected node test after %s::", ax)
		}
		if p.peek().kind == tLParen {
			if isKindTestName(p.tok.text) {
				return p.finishStep(core.AxisChild, p.parseNodeTest())
			}
			if _, isFn := builtins[canonName(p.tok.text)]; isFn {
				return &step{prim: p.parsePostfix()}
			}
			// Hierarchy-qualified name test: name('h1,h2').
			return p.finishStep(core.AxisChild, p.parseNodeTest())
		}
		return p.finishStep(core.AxisChild, p.parseNodeTest())
	}
	return &step{prim: p.parsePostfix()}
}

func (p *parser) finishStep(ax core.Axis, t nodeTest) *step {
	s := &step{axis: ax, test: t}
	for p.tok.kind == tLBracket {
		p.advance()
		s.preds = append(s.preds, p.parseExpr())
		p.expect(tRBracket)
	}
	s.posSel = classifyPosSel(s.preds)
	return s
}

// parseNodeTest parses a name test (optionally hierarchy-qualified), a
// wildcard (optionally hierarchy-qualified) or a kind test per
// Definition 2: text(H), node(H), *(H), leaf(), comment(), pi().
func (p *parser) parseNodeTest() nodeTest {
	switch p.tok.kind {
	case tStar:
		p.advance()
		return nodeTest{kind: testStar, hiers: p.parseOptHiers()}
	case tName:
		name := p.tok.text
		if isKindTestName(name) && p.peek().kind == tLParen {
			p.advance()
			p.advance()
			var hiers []string
			piName := ""
			switch p.tok.kind {
			case tString:
				hiers = splitHiers(p.tok.text)
				if len(hiers) == 0 {
					p.fail("empty hierarchy list in %s() test", name)
				}
				p.advance()
			case tName:
				if name == "processing-instruction" {
					piName = p.tok.text
					p.advance()
				}
			}
			p.expect(tRParen)
			switch name {
			case "text":
				return nodeTest{kind: testText, hiers: hiers}
			case "node":
				return nodeTest{kind: testNode, hiers: hiers}
			case "comment":
				return nodeTest{kind: testComment}
			case "processing-instruction":
				return nodeTest{kind: testPI, name: piName}
			case "leaf":
				return nodeTest{kind: testLeaf, hiers: hiers}
			}
		}
		p.advance()
		return nodeTest{kind: testName, name: name, hiers: p.parseOptHiers()}
	}
	p.fail("expected node test, found %s", p.tok.kind)
	return nodeTest{}
}

func (p *parser) parseOptHiers() []string {
	if p.tok.kind != tLParen {
		return nil
	}
	p.advance()
	s := p.expect(tString).text
	p.expect(tRParen)
	hiers := splitHiers(s)
	if len(hiers) == 0 {
		p.fail("empty hierarchy list in node test")
	}
	return hiers
}

func splitHiers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ---- primaries -----------------------------------------------------------

func (p *parser) parsePostfix() expr {
	e := p.parsePrimary()
	var preds []expr
	for p.tok.kind == tLBracket {
		p.advance()
		preds = append(preds, p.parseExpr())
		p.expect(tRBracket)
	}
	if preds != nil {
		return &filterExpr{base: e, preds: preds}
	}
	return e
}

func (p *parser) parsePrimary() expr {
	switch p.tok.kind {
	case tString:
		v := p.tok.text
		p.advance()
		return newLiteral(v)
	case tNumber:
		v := p.tok.num
		p.advance()
		return newLiteral(v)
	case tVar:
		name := p.tok.text
		p.advance()
		return &varExpr{name: name}
	case tDot:
		p.advance()
		return &contextItemExpr{}
	case tLParen:
		p.advance()
		if p.tok.kind == tRParen {
			p.advance()
			return &seqExpr{}
		}
		e := p.parseExpr()
		p.expect(tRParen)
		return e
	case tLt:
		if r, sz := utf8.DecodeRuneInString(p.src[p.tok.end:]); sz > 0 && xmlparse.IsNameStart(r) {
			return p.parseDirElem()
		}
		p.fail("unexpected '<' (not a constructor)")
	case tName:
		if p.peek().kind == tLParen {
			return p.parseFunctionCall()
		}
	}
	p.fail("unexpected %s", p.tok.kind)
	return nil
}

// canonName strips the fn: prefix; the paper drops namespaces and so do we.
func canonName(name string) string { return strings.TrimPrefix(name, "fn:") }

func (p *parser) parseFunctionCall() expr {
	raw := p.tok.text
	name := canonName(raw)
	fn, ok := builtins[name]
	if !ok {
		p.fail("unknown function %s()", raw)
	}
	p.advance()
	p.expect(tLParen)
	var args []expr
	if p.tok.kind != tRParen {
		args = append(args, p.parseExprSingle())
		for p.tok.kind == tComma {
			p.advance()
			args = append(args, p.parseExprSingle())
		}
	}
	p.expect(tRParen)
	if len(args) < fn.min || (fn.max >= 0 && len(args) > fn.max) {
		p.fail("%s() expects %d..%d arguments, got %d", name, fn.min, fn.max, len(args))
	}
	return &callExpr{name: name, fn: fn, args: args}
}

// ---- direct element constructors (raw scanning) --------------------------

func (p *parser) parseDirElem() expr {
	e, pos := p.rawElement(p.tok.end)
	p.lex.pos = pos
	p.advance()
	return e
}

func skipWS(src string, pos int) int {
	for pos < len(src) {
		switch src[pos] {
		case ' ', '\t', '\n', '\r':
			pos++
		default:
			return pos
		}
	}
	return pos
}

func scanXMLName(src string, pos int) (string, int, bool) {
	r, sz := utf8.DecodeRuneInString(src[pos:])
	if sz == 0 || !xmlparse.IsNameStart(r) {
		return "", pos, false
	}
	end := pos + sz
	for end < len(src) {
		r, sz = utf8.DecodeRuneInString(src[end:])
		if !xmlparse.IsNameChar(r) {
			break
		}
		end += sz
	}
	return src[pos:end], end, true
}

func decodeEntityAt(src string, pos int) (string, int) {
	semi := strings.IndexByte(src[pos:], ';')
	if semi < 0 || semi > 32 {
		lexErr(pos, "unterminated entity reference in constructor")
	}
	ref := src[pos+1 : pos+semi]
	end := pos + semi + 1
	switch ref {
	case "lt":
		return "<", end
	case "gt":
		return ">", end
	case "amp":
		return "&", end
	case "apos":
		return "'", end
	case "quot":
		return `"`, end
	}
	if strings.HasPrefix(ref, "#") {
		num := ref[1:]
		base := 10
		if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
			num, base = num[1:], 16
		}
		var v uint64
		for _, c := range num {
			d := uint64(0)
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				lexErr(pos, "invalid character reference &%s;", ref)
			}
			v = v*uint64(base) + d
		}
		if v == 0 || !utf8.ValidRune(rune(v)) {
			lexErr(pos, "invalid character reference &%s;", ref)
		}
		return string(rune(v)), end
	}
	lexErr(pos, "unknown entity &%s;", ref)
	return "", end
}

// rawElement scans a direct element constructor starting just after '<'.
func (p *parser) rawElement(pos int) (*elemExpr, int) {
	name, pos, ok := scanXMLName(p.src, pos)
	if !ok {
		lexErr(pos, "expected element name in constructor")
	}
	el := &elemExpr{name: name}
	// Attributes.
	for {
		pos = skipWS(p.src, pos)
		if pos >= len(p.src) {
			lexErr(pos, "unterminated constructor <%s>", name)
		}
		if p.src[pos] == '/' {
			if pos+1 >= len(p.src) || p.src[pos+1] != '>' {
				lexErr(pos, "expected '/>' in constructor")
			}
			return el, pos + 2
		}
		if p.src[pos] == '>' {
			pos++
			break
		}
		aname, npos, ok := scanXMLName(p.src, pos)
		if !ok {
			lexErr(pos, "expected attribute name in constructor <%s>", name)
		}
		pos = skipWS(p.src, npos)
		if pos >= len(p.src) || p.src[pos] != '=' {
			lexErr(pos, "expected '=' after attribute %q", aname)
		}
		pos = skipWS(p.src, pos+1)
		tpl, npos2 := p.rawAttrValue(pos)
		tpl.name = aname
		el.attrs = append(el.attrs, tpl)
		pos = npos2
	}
	// Content.
	var text strings.Builder
	flush := func() {
		if text.Len() == 0 {
			return
		}
		s := text.String()
		text.Reset()
		// Boundary whitespace is stripped (XQuery default boundary-space).
		if strings.TrimLeft(s, " \t\n\r") == "" {
			return
		}
		el.content = append(el.content, &rawTextExpr{s: s})
	}
	for {
		if pos >= len(p.src) {
			lexErr(pos, "unterminated element constructor <%s>", name)
		}
		c := p.src[pos]
		switch {
		case c == '<':
			rest := p.src[pos:]
			switch {
			case strings.HasPrefix(rest, "</"):
				flush()
				ename, npos, ok := scanXMLName(p.src, pos+2)
				if !ok || ename != name {
					lexErr(pos, "mismatched end tag in constructor <%s>", name)
				}
				npos = skipWS(p.src, npos)
				if npos >= len(p.src) || p.src[npos] != '>' {
					lexErr(npos, "expected '>' in constructor end tag")
				}
				return el, npos + 1
			case strings.HasPrefix(rest, "<!--"):
				end := strings.Index(rest, "-->")
				if end < 0 {
					lexErr(pos, "unterminated comment in constructor")
				}
				pos += end + len("-->")
			case strings.HasPrefix(rest, "<![CDATA["):
				end := strings.Index(rest, "]]>")
				if end < 0 {
					lexErr(pos, "unterminated CDATA in constructor")
				}
				text.WriteString(rest[len("<![CDATA["):end])
				pos += end + len("]]>")
			default:
				flush()
				child, npos := p.rawElement(pos + 1)
				el.content = append(el.content, child)
				pos = npos
			}
		case c == '{':
			if strings.HasPrefix(p.src[pos:], "{{") {
				text.WriteByte('{')
				pos += 2
				continue
			}
			flush()
			e, npos := p.parseEnclosed(pos + 1)
			el.content = append(el.content, e)
			pos = npos
		case c == '}':
			if strings.HasPrefix(p.src[pos:], "}}") {
				text.WriteByte('}')
				pos += 2
				continue
			}
			lexErr(pos, "bare '}' in constructor content (write '}}')")
		case c == '&':
			s, npos := decodeEntityAt(p.src, pos)
			text.WriteString(s)
			pos = npos
		default:
			text.WriteByte(c)
			pos++
		}
	}
}

// rawAttrValue scans a quoted attribute value template at pos.
func (p *parser) rawAttrValue(pos int) (attrTpl, int) {
	if pos >= len(p.src) || (p.src[pos] != '"' && p.src[pos] != '\'') {
		lexErr(pos, "expected quoted attribute value in constructor")
	}
	quote := p.src[pos]
	pos++
	var tpl attrTpl
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			tpl.parts = append(tpl.parts, &rawTextExpr{s: text.String()})
			text.Reset()
		}
	}
	for {
		if pos >= len(p.src) {
			lexErr(pos, "unterminated attribute value in constructor")
		}
		c := p.src[pos]
		switch {
		case c == quote:
			if pos+1 < len(p.src) && p.src[pos+1] == quote {
				text.WriteByte(quote)
				pos += 2
				continue
			}
			flush()
			return tpl, pos + 1
		case c == '{':
			if strings.HasPrefix(p.src[pos:], "{{") {
				text.WriteByte('{')
				pos += 2
				continue
			}
			flush()
			e, npos := p.parseEnclosed(pos + 1)
			tpl.parts = append(tpl.parts, e)
			pos = npos
		case c == '}':
			if strings.HasPrefix(p.src[pos:], "}}") {
				text.WriteByte('}')
				pos += 2
				continue
			}
			lexErr(pos, "bare '}' in attribute value template")
		case c == '&':
			s, npos := decodeEntityAt(p.src, pos)
			text.WriteString(s)
			pos = npos
		default:
			text.WriteByte(c)
			pos++
		}
	}
}

// parseEnclosed parses an enclosed expression "{ Expr }" whose '{' has
// already been consumed; pos is the offset just after it. It returns the
// expression and the offset just after the closing '}'.
func (p *parser) parseEnclosed(pos int) (expr, int) {
	p.lex.pos = pos
	p.advance()
	e := p.parseExpr()
	if p.tok.kind != tRBrace {
		p.fail("expected '}' after enclosed expression")
	}
	return e, p.tok.end
}
