package xquery

import (
	stdctx "context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
)

// Tests for morsel-driven parallel execution (parallel.go). The tuning
// knobs shrink so multi-morsel execution engages on test-sized corpora;
// everything restores on cleanup, so the rest of the package sees the
// production defaults.

// forceParallel shrinks the engagement thresholds and pins the worker
// count so even small documents split into many morsels.
func forceParallel(t *testing.T, workers int) {
	t.Helper()
	oldMin, oldMax, oldEngage := parMinMorsel, parMaxMorsel, parEngageMin
	oldWorkers := queryWorkersN.Load()
	parMinMorsel, parMaxMorsel, parEngageMin = 2, 8, 4
	SetQueryWorkers(workers)
	t.Cleanup(func() {
		parMinMorsel, parMaxMorsel, parEngageMin = oldMin, oldMax, oldEngage
		queryWorkersN.Store(oldWorkers)
	})
}

func parallelSweepDoc(t *testing.T, seed uint64, words int) *core.Document {
	t.Helper()
	d, err := corpus.Generate(corpus.Params{
		Seed: seed, Words: words, DamageRate: 0.2, RestoreRate: 0.2,
	}).Document()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestParallelDifferentialSweep is the main exactness property: for the
// paper queries and a few hundred seeded random path/predicate shapes,
// parallel execution (strict Eval and the streaming full drain) must be
// node-identical to serial execution, including error codes.
func TestParallelDifferentialSweep(t *testing.T) {
	forceParallel(t, 4)
	docs := sweepDocs(t)
	docs["big"] = parallelSweepDoc(t, 11, 120)

	srcs := append([]string{}, paperSweepQueries...)
	g := &qgen{r: rand.New(rand.NewSource(20260808))}
	for i := 0; i < 160; i++ {
		srcs = append(srcs, g.path(2, ""))
	}
	for i := 0; i < 60; i++ {
		srcs = append(srcs, "("+g.path(2, "")+")["+g.pred(1)+"]")
	}
	if len(srcs) < 200 {
		t.Fatalf("sweep too small: %d cases", len(srcs))
	}
	for i, src := range srcs {
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("case %d: generated query does not parse: %q: %v", i, src, err)
		}
		for name, d := range docs {
			SetQueryWorkers(1)
			want, wantErr := q.Eval(d)
			SetQueryWorkers(4)
			got, gotErr := q.Eval(d)
			streamed, streamErr := drainStream(q.Stream(nil, d, nil, nil))

			if (gotErr == nil) != (wantErr == nil) {
				t.Errorf("case %d (%s): %q\n  parallel err=%v\n  serial err=%v", i, name, src, gotErr, wantErr)
				continue
			}
			if gotErr != nil {
				ge, gok := gotErr.(*Error)
				we, wok := wantErr.(*Error)
				if !gok || !wok || ge.Code != we.Code {
					t.Errorf("case %d (%s): %q: error codes differ: %v vs %v", i, name, src, gotErr, wantErr)
				}
				if se, sok := streamErr.(*Error); !sok || se.Code != ge.Code {
					t.Errorf("case %d (%s): %q: stream error %v, eval error %v", i, name, src, streamErr, gotErr)
				}
				continue
			}
			if streamErr != nil {
				t.Errorf("case %d (%s): %q: stream err=%v, eval ok", i, name, src, streamErr)
				continue
			}
			if !nodeIdentical(got, want) {
				t.Errorf("case %d (%s): %q\n  parallel: %s\n  serial:   %s", i, name, src, Serialize(got), Serialize(want))
			}
			if !nodeIdentical(streamed, want) {
				t.Errorf("case %d (%s): %q\n  parallel stream: %s\n  serial:          %s", i, name, src, Serialize(streamed), Serialize(want))
			}
		}
	}
}

// TestParallelConcurrentUpdates races parallel evaluations against
// copy-on-write updates: evaluations against a pinned version must see
// identical results no matter how many new versions are published
// concurrently (snapshot isolation per version). Run with -race.
func TestParallelConcurrentUpdates(t *testing.T) {
	forceParallel(t, 4)
	base := parallelSweepDoc(t, 5, 60)
	q := MustCompile(`//w[xancestor::dmg or string-length(string(.)) > 2]`)
	want, err := q.Eval(base)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := q.Eval(base)
				if err != nil {
					t.Errorf("pinned-version eval: %v", err)
					return
				}
				if !nodeIdentical(got, want) {
					t.Error("pinned-version eval diverged under concurrent updates")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		d := base
		r := rand.New(rand.NewSource(99))
		for k := 0; k < 24; k++ {
			src := fmt.Sprintf(`rename node (//w)[%d] as "u%d"`, 1+r.Intn(8), k)
			u, err := CompileUpdate(src)
			if err != nil {
				t.Errorf("update %q: %v", src, err)
				return
			}
			nd, _, err := u.Apply(d)
			if err != nil {
				continue // conflicting random edit; atomic failure is fine
			}
			d = nd
			// Query each fresh version too: its name indexes build lazily
			// under the parallel workers.
			if _, err := q.Eval(d); err != nil {
				t.Errorf("fresh-version eval: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestParallelLazyIndexBuild stampedes parallel evaluations onto a
// document whose name indexes have never been built, so the lazy build
// races the morsel workers of several concurrent queries. Run with
// -race.
func TestParallelLazyIndexBuild(t *testing.T) {
	forceParallel(t, 4)
	d := parallelSweepDoc(t, 17, 80) // indexes cold: nothing touched them yet
	q := MustCompile(`//w[string-length(string(.)) > 1]`)

	start := make(chan struct{})
	results := make([]Seq, 6)
	errs := make([]error, 6)
	var wg sync.WaitGroup
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			results[g], errs[g] = q.Eval(d)
		}(g)
	}
	close(start)
	wg.Wait()
	for g := range results {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !nodeIdentical(results[g], results[0]) {
			t.Fatalf("goroutine %d diverged from goroutine 0", g)
		}
	}
}

// TestParallelCancellation checks MHXQ0002 propagates out of a parallel
// pass no matter which worker observes the canceled context.
func TestParallelCancellation(t *testing.T) {
	forceParallel(t, 4)
	d := parallelSweepDoc(t, 23, 2000) // enough items that some worker must poll
	q := MustCompile(`//w[string-length(string(.)) >= 0]`)
	ctx, cancel := stdctx.WithCancel(stdctx.Background())
	cancel()
	_, err := q.EvalContext(ctx, d, nil, nil)
	if err == nil {
		t.Fatal("canceled parallel evaluation returned no error")
	}
	xe, ok := err.(*Error)
	if !ok || xe.Code != "MHXQ0002" {
		t.Fatalf("canceled parallel evaluation returned %v, want MHXQ0002", err)
	}
}

// TestParallelEarlyExitStaysLazy proves the adaptive streaming route:
// an early-exit consumer never crosses the serial phase, so no morsels
// are dispatched and the scan stays O(answer); a full drain of the same
// shape does engage.
func TestParallelEarlyExitStaysLazy(t *testing.T) {
	forceParallel(t, 4)
	d := parallelSweepDoc(t, 31, 120)
	q := MustCompile(`//w[string-length(string(.)) > 0]`)

	findScan := func(op *ExplainOp) *ExplainOp {
		var walk func(*ExplainOp) *ExplainOp
		walk = func(e *ExplainOp) *ExplainOp {
			if e.Op == "index-scan" {
				return e
			}
			for _, k := range e.Children {
				if f := walk(k); f != nil {
					return f
				}
			}
			return nil
		}
		return walk(op)
	}

	s, render := q.StreamExplain(nil, d, nil, nil)
	if _, err := s.Take(1); err != nil {
		t.Fatal(err)
	}
	scan := findScan(render())
	if scan == nil {
		t.Fatal("no index-scan in plan")
	}
	if !scan.Parallel {
		t.Fatalf("index-scan not marked parallel: %+v", scan)
	}
	if scan.Morsels != 0 {
		t.Fatalf("early-exit consumer dispatched %d morsels, want 0", scan.Morsels)
	}
	if scan.OutRows != 1 {
		t.Fatalf("early-exit consumer drained %d rows, want 1", scan.OutRows)
	}

	s2, render2 := q.StreamExplain(nil, d, nil, nil)
	if _, err := s2.Take(0); err != nil {
		t.Fatal(err)
	}
	scan2 := findScan(render2())
	if scan2.Morsels == 0 {
		t.Fatal("full drain dispatched no morsels despite forced engagement")
	}
	if scan2.Workers < 1 || !strings.Contains(scan2.Detail, "workers=") ||
		!strings.Contains(scan2.Detail, "morsels=") {
		t.Fatalf("engaged scan missing worker stats: %+v", scan2)
	}
}

// TestExplainAnalyzeShowsWorkers checks satellite wiring: an analyzed
// evaluation of an eligible query reports workers, morsels and
// per-worker rows on the scan operator.
func TestExplainAnalyzeShowsWorkers(t *testing.T) {
	forceParallel(t, 4)
	d := parallelSweepDoc(t, 37, 120)
	q := MustCompile(`//w[string-length(string(.)) > 0]`)
	_, tree, err := q.ExplainAnalyze(d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var scan *ExplainOp
	var walk func(*ExplainOp)
	walk = func(e *ExplainOp) {
		if e.Op == "index-scan" {
			scan = e
		}
		for _, k := range e.Children {
			walk(k)
		}
	}
	walk(tree)
	if scan == nil {
		t.Fatal("no index-scan in analyzed plan")
	}
	if !scan.Parallel || scan.Morsels == 0 || scan.Workers < 1 {
		t.Fatalf("analyzed scan missing parallel stats: %+v", scan)
	}
	var rows int64
	for _, r := range scan.WorkerRows {
		rows += r
	}
	if rows != scan.InRows+1 && rows < scan.InRows {
		// Every candidate row examined by the parallel pass is attributed
		// to exactly one worker slot.
		t.Fatalf("worker rows %v do not cover the scan input (%d)", scan.WorkerRows, scan.InRows)
	}
	morsels, parQ := ParallelStats()
	if morsels == 0 || parQ == 0 {
		t.Fatalf("process-wide parallel stats not advanced: morsels=%d queries=%d", morsels, parQ)
	}
}

// TestParallelPositionalShapesStaySerial checks that order-observable
// shapes are never marked for parallel execution at plan time.
func TestParallelPositionalShapesStaySerial(t *testing.T) {
	forceParallel(t, 4)
	d := parallelSweepDoc(t, 41, 120)
	for _, src := range []string{
		`//w[3]`,
		`//w[last()]`,
		`//w[position() <= 2]`,
	} {
		q := MustCompile(src)
		_, tree, err := q.ExplainAnalyze(d, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var bad *ExplainOp
		var walk func(*ExplainOp)
		walk = func(e *ExplainOp) {
			if e.Parallel || e.Morsels != 0 {
				bad = e
			}
			for _, k := range e.Children {
				walk(k)
			}
		}
		walk(tree)
		if bad != nil {
			t.Fatalf("%q: positional shape marked/ran parallel: %+v", src, bad)
		}
	}
}
