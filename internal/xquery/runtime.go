package xquery

import (
	stdctx "context"
	"math"
	"strings"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
	"mhxquery/internal/sched"
)

// This file holds the runtime shared by the two execution engines: the
// cursor engine (lower.go, stepcursor.go — the production path) and the
// AST interpreter (eval.go — the differential oracle). It owns the
// per-evaluation mutable state, the dynamic context, predicate
// application and the constructor content rules.

// evalState is the per-evaluation mutable state. The active document
// pointer advances to overlay documents as analyze-string materializes
// temporary hierarchies (Definition 4); the base document is never
// touched, so the temporaries vanish when the evaluation ends — exactly
// the lifetime rule of Definition 4(5).
type evalState struct {
	doc     *core.Document
	tempSeq int
	// resolver backs doc() and collection(); nil outside a collection
	// evaluation context.
	resolver Resolver
	// extra holds the documents pulled in by doc()/collection() during
	// this evaluation, so axis steps on their nodes dispatch to the
	// owning document rather than the active one.
	extra []*core.Document

	// plan is the physical plan driving this evaluation (nil under
	// debugNaiveSteps); explain, when non-nil, collects per-operator
	// cardinalities for EXPLAIN output. timed additionally records
	// per-operator wall time (EXPLAIN ANALYZE); it is only consulted
	// when explain is non-nil, so uninstrumented evaluations pay
	// nothing for it.
	plan    *Plan
	explain []opCard
	timed   bool

	// ctx cancels the evaluation (deadline or client disconnect); it is
	// polled every cancelStride items at the engine's chokepoints. nil
	// means uncancellable.
	ctx  stdctx.Context
	tick uint

	// pool/par enable morsel-driven intra-query parallelism
	// (parallel.go): the shared scheduler and the maximum participant
	// count of one parallel pass. pool is nil in worker states (nested
	// parallelism is structurally impossible) and in strict-only
	// evaluations. parEngaged tracks whether this evaluation has gone
	// parallel at least once, for the parallel-queries counter.
	pool       *sched.Pool
	par        int
	parEngaged bool

	// axisBuf is the reusable axis-candidate buffer of the step pipeline
	// (AppendAxis destination), shared across context nodes and steps —
	// candidates are consumed into the step output before any nested
	// evaluation can run.
	axisBuf []*dom.Node
	// ordSet is the reusable ordinal scatter buffer that restores
	// document order over interleaved step results.
	ordSet core.OrdinalSet
}

// cancelStride is how many checkCancel ticks pass between ctx.Err()
// polls; chokepoints tick per item, so cancellation latency is bounded
// by a few hundred items of work.
const cancelStride = 256

// checkCancel polls the evaluation context at a strided rate and
// converts cancellation into an evaluation error.
func (st *evalState) checkCancel() error {
	if st.ctx == nil {
		return nil
	}
	if st.tick++; st.tick%cancelStride != 0 {
		return nil
	}
	if err := st.ctx.Err(); err != nil {
		return errf("MHXQ0002", "evaluation canceled: %v", err)
	}
	return nil
}

// parallelism returns how many goroutines (caller included) one
// parallel pass of this evaluation may use; 1 means serial.
func (st *evalState) parallelism() int {
	if st.pool == nil || st.par <= 1 {
		return 1
	}
	return st.par
}

// workerState clones the evaluation state for one pool helper of a
// parallel pass: shared immutable pieces (document, plan, resolver,
// cancellation context), private scratch (buffers, cancellation tick,
// explain counters — merged back by mergeWorker) and pool=nil so a
// worker can never go parallel itself. extra is copied because docFor
// move-to-fronts it.
func (st *evalState) workerState() *evalState {
	ws := &evalState{
		doc:      st.doc,
		tempSeq:  st.tempSeq,
		resolver: st.resolver,
		plan:     st.plan,
		timed:    st.timed,
		ctx:      st.ctx,
	}
	if len(st.extra) > 0 {
		ws.extra = append([]*core.Document(nil), st.extra...)
	}
	if st.explain != nil {
		ws.explain = make([]opCard, len(st.explain))
	}
	return ws
}

// mergeWorker folds a helper's explain counters into the parent's
// after its parallel pass (single-threaded: the pass has completed).
func (st *evalState) mergeWorker(ws *evalState) {
	if st.explain == nil || ws.explain == nil {
		return
	}
	for id := range ws.explain {
		wd := &ws.explain[id]
		cd := &st.explain[id]
		cd.calls += wd.calls
		cd.in += wd.in
		cd.out += wd.out
		cd.nanos += wd.nanos
	}
}

// addExtra records a document loaded by doc()/collection().
func (st *evalState) addExtra(d *core.Document) {
	if d == st.doc {
		return
	}
	for _, e := range st.extra {
		if e == d {
			return
		}
	}
	st.extra = append(st.extra, d)
}

// docFor returns the document that owns n: the active document, one of
// the documents loaded via doc()/collection(), or — for constructed
// nodes owned by no document — the active document. Matched extra
// entries move to the front (consecutive axis steps almost always stay
// in one document, so the scan is amortized O(1) even when
// collection() loaded many documents).
func (st *evalState) docFor(n *dom.Node) *core.Document {
	if len(st.extra) == 0 || st.doc.Owns(n) {
		return st.doc
	}
	for i, e := range st.extra {
		if e.Owns(n) {
			if i > 0 {
				copy(st.extra[1:], st.extra[:i])
				st.extra[0] = e
			}
			return e
		}
	}
	return st.doc
}

// rootFor implements the XPath rule that "/" selects the root of the
// tree containing the context item: the owning document's root for a
// node item, the active document's root otherwise.
func (st *evalState) rootFor(item Item) *dom.Node {
	if n, ok := item.(*dom.Node); ok {
		return st.docFor(n).Root
	}
	return st.doc.Root
}

// context is the dynamic context: context item, position/size, variable
// bindings (an immutable linked list, so child contexts are O(1)).
type context struct {
	st        *evalState
	item      Item
	pos, size int
	vars      *frame
}

type frame struct {
	name string
	val  Seq
	next *frame
}

func (c *context) bind(name string, val Seq) *context {
	nc := *c
	nc.vars = &frame{name: name, val: val, next: c.vars}
	return &nc
}

func (c *context) lookup(name string) (Seq, bool) {
	for f := c.vars; f != nil; f = f.next {
		if f.name == name {
			return f.val, true
		}
	}
	return nil, false
}

// stringOf is the string value of a node with the document shortcut: a
// document-owned element's string value is a slice of the base text
// (node.go: TextContent of a KyGODDAG node equals S[n.Start:n.End]), so
// no tree walk and no string building. Nodes without ordinals
// (constructed trees) fall back to TextContent.
func (st *evalState) stringOf(n *dom.Node) string {
	if n.Kind == dom.Element {
		d := st.docFor(n)
		if _, ok := d.OrdinalOf(n); ok {
			return d.Text[n.Start:n.End]
		}
	}
	return n.TextContent()
}

// atomize is the context-aware atomization: nodes become their string
// value via the base-text shortcut, atomics pass through.
func (c *context) atomize(it Item) Item {
	if n, ok := it.(*dom.Node); ok {
		return c.st.stringOf(n)
	}
	return it
}

// atomizeSeq atomizes every item, context-aware.
func (c *context) atomizeSeq(s Seq) Seq {
	out := make(Seq, len(s))
	for i, it := range s {
		out[i] = c.atomize(it)
	}
	return out
}

// stringItem is stringValue with the base-text shortcut for nodes.
func stringItem(c *context, it Item) string {
	if n, ok := it.(*dom.Node); ok {
		return c.st.stringOf(n)
	}
	return stringValue(it)
}

// evalMaybeLowered evaluates e, routing lowered operators through the
// explain-accounting entry point so EXPLAIN counters cover predicates
// and operands evaluated outside the cursor routes; AST expressions
// (the interpreter oracle) evaluate directly.
func evalMaybeLowered(c *context, e expr) (Seq, error) {
	if pn, ok := e.(pnode); ok {
		return pEval(pn, c)
	}
	return e.eval(c)
}

// evalNumber evaluates an operand to a single number; empty reports the
// empty sequence (which propagates as an empty result).
func evalNumber(c *context, e expr, what string) (f float64, empty bool, err error) {
	v, err := evalMaybeLowered(c, e)
	if err != nil {
		return 0, false, err
	}
	v = c.atomizeSeq(v)
	switch len(v) {
	case 0:
		return 0, true, nil
	case 1:
		return toNumber(v[0]), false, nil
	}
	return 0, false, errf("XPTY0004", "%s operand is a sequence of %d items", what, len(v))
}

// ---- node sequences --------------------------------------------------------

func toNodes(s Seq, op string) ([]*dom.Node, error) {
	out := make([]*dom.Node, 0, len(s))
	for _, it := range s {
		n, ok := it.(*dom.Node)
		if !ok {
			return nil, errf("XPTY0004", "operand of %q contains a non-node item", op)
		}
		out = append(out, n)
	}
	return out, nil
}

func nodesToSeq(ns []*dom.Node) Seq {
	out := make(Seq, len(ns))
	for i, n := range ns {
		out[i] = n
	}
	return out
}

func sortDedupe(items Seq) Seq {
	ns := make([]*dom.Node, len(items))
	for i, it := range items {
		ns[i] = it.(*dom.Node)
	}
	return nodesToSeq(core.SortDoc(ns))
}

func allNodes(items Seq) bool {
	for _, it := range items {
		if _, ok := it.(*dom.Node); !ok {
			return false
		}
	}
	return true
}

// ---- predicates ------------------------------------------------------------

// constNumPred recognizes a predicate that is a bare numeric literal —
// in AST form (the interpreter oracle) or lowered form (the cursor
// engine). Such a predicate selects at most one item by position, so
// the per-item evaluation loop can be short-circuited entirely — in
// particular an out-of-range [7] no longer evaluates anything per item.
func constNumPred(pr expr) (float64, bool) {
	switch lit := pr.(type) {
	case *literalExpr:
		f, ok := lit.v.(float64)
		return f, ok
	case *pLiteral:
		f, ok := lit.v.(float64)
		return f, ok
	}
	return 0, false
}

// selectByConstPos applies a constant numeric predicate: the item at
// position f when f is an integral in-range position, nothing otherwise
// (the "keep iff position == f" rule evaluated once).
func selectByConstPos(items Seq, f float64) Seq {
	idx := int(f)
	if float64(idx) != f || idx < 1 || idx > len(items) {
		return items[:0]
	}
	items[0] = items[idx-1]
	return items[:1]
}

// applyPredicates filters items by each predicate in turn; a predicate
// evaluating to a single number selects by position, anything else by
// effective boolean value. The input sequence is left untouched (the
// filtering itself is delegated to the in-place variant on a copy).
func applyPredicates(c *context, items Seq, preds []expr) (Seq, error) {
	if len(preds) == 0 {
		return items, nil
	}
	return applyPredicatesInPlace(c, append(Seq(nil), items...), preds)
}

// applyPredicatesInPlace is applyPredicates compacting into the items
// slice itself (callers own the storage), so the step pipeline filters
// without a per-context-node allocation.
func applyPredicatesInPlace(c *context, items Seq, preds []expr) (Seq, error) {
	for _, pr := range preds {
		if f, ok := constNumPred(pr); ok {
			items = selectByConstPos(items, f)
			continue
		}
		size := len(items)
		w := 0
		c2 := *c // one scratch context per predicate, mutated per item
		for i, it := range items {
			c2.item, c2.pos, c2.size = it, i+1, size
			v, err := evalMaybeLowered(&c2, pr)
			if err != nil {
				return nil, err
			}
			keep := false
			if len(v) == 1 {
				if f, ok := v[0].(float64); ok {
					keep = float64(i+1) == f
				} else if keep, err = ebv(v); err != nil {
					return nil, err
				}
			} else if keep, err = ebv(v); err != nil {
				return nil, err
			}
			if keep {
				items[w] = it
				w++
			}
		}
		items = items[:w]
	}
	return items, nil
}

// evalPrimStep evaluates a primary-expression step ("$x/string(.)") once
// per input item.
func evalPrimStep(c *context, cur Seq, s *step, last bool) (Seq, error) {
	var out Seq
	size := len(cur)
	c2 := *c // one scratch context, mutated per item
	for i, it := range cur {
		c2.item, c2.pos, c2.size = it, i+1, size
		v, err := evalMaybeLowered(&c2, s.prim)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	if allNodes(out) {
		out = sortDedupe(out)
	} else if !last {
		return nil, errf("XPTY0019", "intermediate path step yields atomic values")
	}
	return out, nil
}

// ---- order-by keys ---------------------------------------------------------

func compareOrderKeys(o orderSpec, a, b Seq) (int, bool) {
	ae, be := len(a) == 0, len(b) == 0
	if ae || be {
		if ae && be {
			return 0, true
		}
		least := -1
		if o.emptyGreatest {
			least = 1
		}
		if ae {
			return least, true
		}
		return -least, true
	}
	return compareForOrder(a[0], b[0])
}

// ---- constructor content rules ---------------------------------------------

// addTextTo appends character data to el, merging with a trailing text
// node.
func addTextTo(el *dom.Node, s string) {
	if s == "" {
		return
	}
	if k := len(el.Children); k > 0 && el.Children[k-1].Kind == dom.Text {
		el.Children[k-1].Data += s
		return
	}
	el.AppendChild(dom.NewText(s))
}

// appendContent adds the items of one enclosed expression to a
// constructed element per the XQuery rules: attribute nodes become
// attributes, text and leaf nodes merge into character data, other nodes
// are deep-copied, and adjacent atomic values are joined with single
// spaces.
func appendContent(el *dom.Node, v Seq) {
	prevAtomic := false
	for _, it := range v {
		if n, ok := it.(*dom.Node); ok {
			switch n.Kind {
			case dom.Attribute:
				el.SetAttr(n.Name, n.Data)
			case dom.Text, dom.Leaf:
				addTextTo(el, n.Data)
			default:
				el.AppendChild(n.Clone())
			}
			prevAtomic = false
			continue
		}
		if prevAtomic {
			addTextTo(el, " ")
		}
		addTextTo(el, stringValue(it))
		prevAtomic = true
	}
}

// validXMLName reports whether s is a well-formed XML name.
func validXMLName(s string) bool {
	name, end, ok := scanXMLName(s, 0)
	return ok && end == len(s) && name == s
}

// joinAtomics renders a sequence as the space-joined string values of
// its atomized items.
func joinAtomics(v Seq) string {
	var b strings.Builder
	for i, it := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(stringValue(atomize(it)))
	}
	return b.String()
}

// rangeSeq materializes lo..hi with cancellation polls (a pathological
// range is the canonical runaway query).
func rangeSeq(c *context, lo, hi float64) (Seq, error) {
	if lo != math.Trunc(lo) || hi != math.Trunc(hi) {
		return nil, errf("FORG0006", "range bounds must be integers")
	}
	var out Seq
	for v := lo; v <= hi; v++ {
		if err := c.st.checkCancel(); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
