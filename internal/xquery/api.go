package xquery

import (
	"mhxquery/internal/core"
)

// Query is a compiled extended-XQuery expression. A Query is immutable
// and safe for concurrent evaluation against any number of documents.
// Evaluation is plan-driven: the first evaluation against a document
// hierarchy layout lowers the AST to physical operators (plan.go) and
// caches the plan by layout signature.
type Query struct {
	src    string
	body   expr
	nPaths int

	plans planCache
}

// Resolver supplies the documents named by the doc() and collection()
// functions. Implementations must be safe for concurrent use; the
// returned documents are evaluated against but never mutated.
type Resolver interface {
	// ResolveDoc returns the document registered under name.
	ResolveDoc(name string) (*core.Document, error)
	// ResolveCollection returns the documents whose names match the
	// glob pattern (path.Match syntax), in stable name order. The empty
	// pattern selects every document.
	ResolveCollection(pattern string) ([]*core.Document, error)
}

// Compile parses an extended-XQuery expression.
func Compile(src string) (*Query, error) {
	body, err := parseQuery(src)
	if err != nil {
		return nil, err
	}
	q := &Query{src: src, body: body}
	forEachPath(body, func(p *pathExpr) {
		q.nPaths++
		p.id = q.nPaths
	})
	return q, nil
}

// MustCompile is Compile panicking on error; for fixtures and tests.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Source returns the query text.
func (q *Query) Source() string { return q.src }

// Eval evaluates the query against a KyGODDAG document. The initial
// context item is the shared root. Temporary hierarchies created by
// analyze-string live in overlay documents private to this evaluation and
// are discarded when it returns (Definition 4(5)); the input document is
// never mutated.
func (q *Query) Eval(d *core.Document) (Seq, error) {
	return q.EvalWithVars(d, nil)
}

// EvalWithVars evaluates the query with externally bound variables.
func (q *Query) EvalWithVars(d *core.Document, vars map[string]Seq) (Seq, error) {
	return q.EvalWithResolver(d, vars, nil)
}

// EvalWithResolver evaluates the query with externally bound variables
// and a document resolver backing the doc() and collection() functions.
// With a nil resolver those functions raise FODC0002/FODC0004.
func (q *Query) EvalWithResolver(d *core.Document, vars map[string]Seq, r Resolver) (Seq, error) {
	return q.PlanFor(d).eval(d, vars, r, nil)
}

// PlanFor returns the query lowered to physical operators for d's
// hierarchy layout, reusing the per-query plan cache. Plans are
// immutable and safe for concurrent evaluation; a plan built for one
// layout still evaluates correctly against any document (bindings are
// revalidated by document pointer at run time).
func (q *Query) PlanFor(d *core.Document) *Plan {
	sig := d.Signature()
	if pl := q.plans.get(sig); pl != nil {
		return pl
	}
	return q.plans.put(sig, newPlan(q, d))
}

// Eval evaluates the plan's query against d with externally bound
// variables and an optional resolver.
func (pl *Plan) Eval(d *core.Document, vars map[string]Seq, r Resolver) (Seq, error) {
	return pl.eval(d, vars, r, nil)
}

func (pl *Plan) eval(d *core.Document, vars map[string]Seq, r Resolver, counts []opCard) (Seq, error) {
	st := &evalState{doc: d, resolver: r}
	if !debugNaiveSteps {
		st.plan = pl
		st.explain = counts
	}
	c := &context{st: st, item: d.Root, pos: 1, size: 1}
	for name, val := range vars {
		c = c.bind(name, val)
	}
	return pl.q.body.eval(c)
}

// Explain evaluates the query against d with per-operator cardinality
// instrumentation and returns the result together with the operator
// tree (index-vs-scan decisions plus observed cardinalities).
func (q *Query) Explain(d *core.Document, vars map[string]Seq, r Resolver) (Seq, *ExplainOp, error) {
	pl := q.PlanFor(d)
	counts := make([]opCard, pl.nOps)
	seq, err := pl.eval(d, vars, r, counts)
	if err != nil {
		return nil, nil, err
	}
	return seq, pl.render(counts), nil
}

// EvalString compiles and evaluates src against d and serializes the
// result the way the paper prints query outputs.
func EvalString(d *core.Document, src string) (string, error) {
	q, err := Compile(src)
	if err != nil {
		return "", err
	}
	res, err := q.Eval(d)
	if err != nil {
		return "", err
	}
	return Serialize(res), nil
}
