package xquery

import (
	"mhxquery/internal/core"
)

// Query is a compiled extended-XQuery expression. A Query is immutable
// and safe for concurrent evaluation against any number of documents.
type Query struct {
	src  string
	body expr
}

// Resolver supplies the documents named by the doc() and collection()
// functions. Implementations must be safe for concurrent use; the
// returned documents are evaluated against but never mutated.
type Resolver interface {
	// ResolveDoc returns the document registered under name.
	ResolveDoc(name string) (*core.Document, error)
	// ResolveCollection returns the documents whose names match the
	// glob pattern (path.Match syntax), in stable name order. The empty
	// pattern selects every document.
	ResolveCollection(pattern string) ([]*core.Document, error)
}

// Compile parses an extended-XQuery expression.
func Compile(src string) (*Query, error) {
	body, err := parseQuery(src)
	if err != nil {
		return nil, err
	}
	return &Query{src: src, body: body}, nil
}

// MustCompile is Compile panicking on error; for fixtures and tests.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Source returns the query text.
func (q *Query) Source() string { return q.src }

// Eval evaluates the query against a KyGODDAG document. The initial
// context item is the shared root. Temporary hierarchies created by
// analyze-string live in overlay documents private to this evaluation and
// are discarded when it returns (Definition 4(5)); the input document is
// never mutated.
func (q *Query) Eval(d *core.Document) (Seq, error) {
	return q.EvalWithVars(d, nil)
}

// EvalWithVars evaluates the query with externally bound variables.
func (q *Query) EvalWithVars(d *core.Document, vars map[string]Seq) (Seq, error) {
	return q.EvalWithResolver(d, vars, nil)
}

// EvalWithResolver evaluates the query with externally bound variables
// and a document resolver backing the doc() and collection() functions.
// With a nil resolver those functions raise FODC0002/FODC0004.
func (q *Query) EvalWithResolver(d *core.Document, vars map[string]Seq, r Resolver) (Seq, error) {
	st := &evalState{doc: d, resolver: r}
	c := &context{st: st, item: d.Root, pos: 1, size: 1}
	for name, val := range vars {
		c = c.bind(name, val)
	}
	return q.body.eval(c)
}

// EvalString compiles and evaluates src against d and serializes the
// result the way the paper prints query outputs.
func EvalString(d *core.Document, src string) (string, error) {
	q, err := Compile(src)
	if err != nil {
		return "", err
	}
	res, err := q.Eval(d)
	if err != nil {
		return "", err
	}
	return Serialize(res), nil
}
