package xquery

import (
	stdctx "context"
	"time"

	"mhxquery/internal/core"
	"mhxquery/internal/sched"
)

// Query is a compiled extended-XQuery expression. A Query is immutable
// and safe for concurrent evaluation against any number of documents.
// Evaluation is plan-driven: the first evaluation against a document
// hierarchy layout lowers the whole AST to physical operators (plan.go)
// and caches the plan by layout signature; execution pulls results
// through cursors, so early-exit consumers (and Stream with a limit)
// stop the pipeline after the items they need.
type Query struct {
	src  string
	body expr
	// strictOnly marks queries containing analyze-string, which must
	// evaluate in interpreter order (lower.go).
	strictOnly bool

	plans planCache
}

// Resolver supplies the documents named by the doc() and collection()
// functions. Implementations must be safe for concurrent use; the
// returned documents are evaluated against but never mutated.
type Resolver interface {
	// ResolveDoc returns the document registered under name.
	ResolveDoc(name string) (*core.Document, error)
	// ResolveCollection returns the documents whose names match the
	// glob pattern (path.Match syntax), in stable name order. The empty
	// pattern selects every document.
	ResolveCollection(pattern string) ([]*core.Document, error)
}

// Compile parses an extended-XQuery expression.
func Compile(src string) (*Query, error) {
	body, err := parseQuery(src)
	if err != nil {
		return nil, err
	}
	return &Query{src: src, body: body, strictOnly: hasAnalyzeString(body)}, nil
}

// MustCompile is Compile panicking on error; for fixtures and tests.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Source returns the query text.
func (q *Query) Source() string { return q.src }

// Eval evaluates the query against a KyGODDAG document. The initial
// context item is the shared root. Temporary hierarchies created by
// analyze-string live in overlay documents private to this evaluation and
// are discarded when it returns (Definition 4(5)); the input document is
// never mutated.
func (q *Query) Eval(d *core.Document) (Seq, error) {
	return q.EvalWithVars(d, nil)
}

// EvalWithVars evaluates the query with externally bound variables.
func (q *Query) EvalWithVars(d *core.Document, vars map[string]Seq) (Seq, error) {
	return q.EvalWithResolver(d, vars, nil)
}

// EvalWithResolver evaluates the query with externally bound variables
// and a document resolver backing the doc() and collection() functions.
// With a nil resolver those functions raise FODC0002/FODC0004.
func (q *Query) EvalWithResolver(d *core.Document, vars map[string]Seq, r Resolver) (Seq, error) {
	return q.PlanFor(d).eval(nil, d, vars, r, nil)
}

// EvalContext is EvalWithResolver under a cancellation context: when
// ctx is canceled (deadline, client disconnect) the evaluation stops
// within a bounded number of items and returns an MHXQ0002 error.
func (q *Query) EvalContext(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver) (Seq, error) {
	return q.PlanFor(d).eval(ctx, d, vars, r, nil)
}

// PlanFor returns the query lowered to physical operators for d's
// hierarchy layout, reusing the per-query plan cache. Plans are
// immutable and safe for concurrent evaluation; a plan built for one
// layout still evaluates correctly against any document (bindings are
// revalidated by document pointer at run time).
func (q *Query) PlanFor(d *core.Document) *Plan {
	sig := d.Signature()
	if pl := q.plans.get(sig); pl != nil {
		return pl
	}
	return q.plans.put(sig, newPlan(q, d))
}

// Eval evaluates the plan's query against d with externally bound
// variables and an optional resolver.
func (pl *Plan) Eval(d *core.Document, vars map[string]Seq, r Resolver) (Seq, error) {
	return pl.eval(nil, d, vars, r, nil)
}

// EvalContext is Eval under a cancellation context.
func (pl *Plan) EvalContext(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver) (Seq, error) {
	return pl.eval(ctx, d, vars, r, nil)
}

// eval is the strict (fully materializing) entry point: the lowered
// program evaluates through the pnode eval route, which engages
// streaming only where an early exit exists to exploit (filters,
// exists/empty/count, quantifiers). Stream is the item-at-a-time entry
// point.
func (pl *Plan) eval(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver, counts []opCard) (Seq, error) {
	c := pl.newEvalContext(ctx, d, vars, r, counts)
	if debugNaiveSteps {
		return pl.q.body.eval(c)
	}
	return pEval(pl.prog, c)
}

func (pl *Plan) newEvalContext(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver, counts []opCard) *context {
	st := &evalState{doc: d, resolver: r, ctx: ctx}
	if !debugNaiveSteps {
		st.plan = pl
		st.explain = counts
	}
	// Intra-query parallelism (parallel.go): strict-only plans
	// (analyze-string) must evaluate in interpreter order, so they never
	// get a pool.
	if !pl.strictOnly {
		if par := QueryWorkers(); par > 1 {
			st.par = par
			st.pool = sched.Default()
		}
	}
	c := &context{st: st, item: d.Root, pos: 1, size: 1}
	for name, val := range vars {
		c = c.bind(name, val)
	}
	return c
}

// Stream is a lazy, pull-based result iterator over one evaluation.
// Items are produced on demand: abandoning a Stream after n items does
// only the work those n items required (no Close is needed — cursors
// own no resources). A Stream is single-use and not safe for concurrent
// use.
type Stream struct {
	c    *context
	cur  cursor
	err  error
	done bool
	n    int
}

// Stream starts a streaming evaluation. ctx may be nil (uncancellable).
func (pl *Plan) Stream(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver) *Stream {
	return pl.stream(ctx, d, vars, r, nil)
}

// Stream starts a streaming evaluation through the cached plan for d.
func (q *Query) Stream(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver) *Stream {
	return q.PlanFor(d).Stream(ctx, d, vars, r)
}

func (pl *Plan) stream(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver, counts []opCard) *Stream {
	c := pl.newEvalContext(ctx, d, vars, r, counts)
	var cur cursor
	if debugNaiveSteps {
		body := pl.q.body
		cur = &thunkCursor{f: func() (cursor, error) {
			s, err := body.eval(c)
			if err != nil {
				return nil, err
			}
			return seqCur(s), nil
		}}
	} else {
		cur = popen(pl.prog, c)
	}
	return &Stream{c: c, cur: cur}
}

// Next returns the next result item. After an error or exhaustion it
// keeps returning (nil, false, err).
func (s *Stream) Next() (Item, bool, error) {
	if s.err != nil || s.done {
		return nil, false, s.err
	}
	// Poll cancellation here too: producers whose next() never loops
	// (range cursors, literal sequences) would otherwise let a
	// top-level drain outrun the deadline.
	if err := s.c.st.checkCancel(); err != nil {
		s.err = err
		return nil, false, err
	}
	it, ok, err := s.cur.next()
	if err != nil {
		s.err = err
		return nil, false, err
	}
	if !ok {
		s.done = true
		return nil, false, nil
	}
	s.n++
	return it, true, nil
}

// Count returns how many items Next has produced so far.
func (s *Stream) Count() int { return s.n }

// Take drains up to limit items (all remaining when limit <= 0).
// Evaluation stops once the limit is produced — the upstream operators
// do no further work.
func (s *Stream) Take(limit int) (Seq, error) {
	var out Seq
	for limit <= 0 || len(out) < limit {
		it, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, it)
	}
	return out, nil
}

// Explain evaluates the query against d with per-operator cardinality
// instrumentation and returns the result together with the operator
// tree (index-vs-scan decisions plus observed cardinalities) covering
// the whole lowered query.
func (q *Query) Explain(d *core.Document, vars map[string]Seq, r Resolver) (Seq, *ExplainOp, error) {
	pl := q.PlanFor(d)
	counts := make([]opCard, pl.nOps)
	seq, err := pl.eval(nil, d, vars, r, counts)
	if err != nil {
		return nil, nil, err
	}
	return seq, pl.render(counts), nil
}

// evalAnalyze is eval with per-operator wall-time instrumentation
// enabled; it returns the result alongside the total evaluation wall
// time. Timing rides on the same explain slots as cardinality
// accounting, so the uninstrumented hot path stays untouched.
func (pl *Plan) evalAnalyze(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver, counts []opCard) (Seq, time.Duration, error) {
	c := pl.newEvalContext(ctx, d, vars, r, counts)
	c.st.timed = true
	start := time.Now()
	var seq Seq
	var err error
	if debugNaiveSteps {
		seq, err = pl.q.body.eval(c)
	} else {
		seq, err = pEval(pl.prog, c)
	}
	return seq, time.Since(start), err
}

// ExplainAnalyze is Explain upgraded to a true EXPLAIN ANALYZE: the
// query actually runs, and the returned operator tree carries observed
// per-operator wall time (ExplainOp.Nanos, inclusive of children) in
// addition to the observed cardinalities. The root's Nanos is the total
// query wall time.
func (q *Query) ExplainAnalyze(d *core.Document, vars map[string]Seq, r Resolver) (Seq, *ExplainOp, error) {
	return q.ExplainAnalyzeContext(nil, d, vars, r)
}

// ExplainAnalyzeContext is ExplainAnalyze under a cancellation context.
func (q *Query) ExplainAnalyzeContext(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver) (Seq, *ExplainOp, error) {
	pl := q.PlanFor(d)
	return pl.ExplainAnalyze(ctx, d, vars, r)
}

// ExplainAnalyze runs the plan with timing instrumentation and returns
// the result plus the analyzed operator tree. See Query.ExplainAnalyze.
func (pl *Plan) ExplainAnalyze(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver) (Seq, *ExplainOp, error) {
	counts := make([]opCard, pl.nOps)
	seq, total, err := pl.evalAnalyze(ctx, d, vars, r, counts)
	if err != nil {
		return nil, nil, err
	}
	root := pl.render(counts)
	root.Nanos = int64(total)
	return seq, root, nil
}

// StreamExplain is Stream with per-operator instrumentation: the
// returned render function may be called once the caller has pulled
// whatever it needs, yielding the cardinalities observed so far — the
// observable proof that a limited stream stopped the upstream operators
// early.
func (q *Query) StreamExplain(ctx stdctx.Context, d *core.Document, vars map[string]Seq, r Resolver) (*Stream, func() *ExplainOp) {
	pl := q.PlanFor(d)
	counts := make([]opCard, pl.nOps)
	s := pl.stream(ctx, d, vars, r, counts)
	return s, func() *ExplainOp { return pl.render(counts) }
}

// EvalString compiles and evaluates src against d and serializes the
// result the way the paper prints query outputs.
func EvalString(d *core.Document, src string) (string, error) {
	q, err := Compile(src)
	if err != nil {
		return "", err
	}
	res, err := q.Eval(d)
	if err != nil {
		return "", err
	}
	return Serialize(res), nil
}
