package xquery

import (
	"runtime"
	"sync/atomic"
	"time"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
	"mhxquery/internal/obs"
	"mhxquery/internal/sched"
)

// This file is morsel-driven parallel execution inside one query. An
// index-scan (or fused //name[pred]) whose predicates are provably
// position-independent (plan.go marks pathOp.parallel), and a
// chain-scan's ancestor verification, partition their candidate lists
// into contiguous morsels dispatched to the process-wide worker pool
// (internal/sched, shared with collection fan-out). Workers filter
// each morsel into its own region of the candidate slice; because
// morsels partition the document-order candidate stream contiguously,
// concatenating the per-morsel survivors in morsel order reproduces
// the serial output exactly — Definition 3 document order is preserved
// by construction, with no re-sort and no ordinal scatter.
//
// Exactness rules (the differential sweep pins these):
//
//   - Predicates evaluate with their true global (position(), last())
//     focus even though eligibility guarantees they never consult it.
//   - Multi-predicate steps run pred-at-a-time with a barrier between
//     predicates (morsel-parallel within each), so the surviving
//     candidate list each later predicate sees — and therefore the
//     first error the whole filter raises — is exactly the serial
//     one's.
//   - On error, every morsel still runs to its own first error and the
//     earliest morsel's error is reported: candidates before the
//     serial route's error point are error-free, so the earliest
//     morsel error IS the serial error. Cancellation (MHXQ0002)
//     surfaces the same way from whichever worker polls it first.
//   - Order-observable shapes never parallelize: analyze-string
//     overlays (strictOnly plans), positional predicates and [k]/
//     [last()] shortcuts are excluded at plan time, and the streaming
//     route serves the first morsel serially so early-exit consumers
//     ((//w)[1], exists()) never pay for — or observe — parallelism.
//
// Workers evaluate through cloned evalStates (own scratch buffers,
// explain counters and cancellation ticks; shared immutable document,
// plan and resolver) with pool=nil, so nested parallelism inside a
// predicate is structurally impossible.

// ---- knobs -----------------------------------------------------------------

// queryWorkersN is the configured intra-query parallelism; 0 means
// "default to GOMAXPROCS".
var queryWorkersN atomic.Int32

// SetQueryWorkers sets the maximum number of workers (including the
// evaluating goroutine) one query may use for morsel execution. n <= 1
// disables intra-query parallelism; 0 restores the GOMAXPROCS default.
// Workers come from the process-wide scheduler shared with collection
// fan-out, so this never grows total concurrency past the pool budget.
func SetQueryWorkers(n int) {
	if n < 0 {
		n = 0
	}
	queryWorkersN.Store(int32(n))
	if n > 1 {
		sched.Default().Ensure(n)
	}
}

// QueryWorkers returns the effective intra-query parallelism.
func QueryWorkers() int {
	if v := queryWorkersN.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// Morsel sizing. Morsels are contiguous candidate slices; the size
// adapts to keep every worker several morsels of work (load balance)
// without dropping below parMinMorsel candidates (dispatch overhead)
// or growing past parMaxMorsel (latency of the slowest morsel). Vars,
// not consts, so tests can shrink them to exercise multi-morsel
// execution on small corpora.
var (
	parMinMorsel = 64
	parMaxMorsel = 4096
	parEngageMin = 128 // smallest candidate count worth going parallel
)

func morselSizeFor(n, par int) int {
	m := n / (4 * par)
	if m < parMinMorsel {
		m = parMinMorsel
	}
	if m > parMaxMorsel {
		m = parMaxMorsel
	}
	return m
}

// parWorthwhile reports whether a marked-parallel operator should
// actually engage morsel execution for a segment of total candidates.
func parWorthwhile(st *evalState, op *pathOp, total int) bool {
	return op.parallel && st.parallelism() > 1 &&
		total >= parEngageMin && total >= 2*parMinMorsel
}

// ---- process-wide stats ----------------------------------------------------

var (
	morselsTotal    atomic.Uint64
	parQueriesTotal atomic.Uint64
	morselHist      = obs.NewHistogram(obs.LatencyBuckets)
)

// ParallelStats returns the process-wide morsel-execution counters:
// morsels dispatched and evaluations that engaged parallelism at
// least once.
func ParallelStats() (morsels, parallelQueries uint64) {
	return morselsTotal.Load(), parQueriesTotal.Load()
}

// MorselSeconds is the process-wide morsel execution-time histogram,
// for registration into metrics registries
// (obs.Registry.RegisterHistogram).
func MorselSeconds() *obs.Histogram { return morselHist }

// ---- per-slot worker contexts ----------------------------------------------

// slotContexts builds the lazy per-participant evaluation contexts of
// one parallel pass: slot 0 is the submitting goroutine and evaluates
// through the parent state; helper slots clone it on first use.
type slotContexts struct {
	c      *context
	states []*evalState
	ctxs   []*context
}

func newSlotContexts(c *context, par int) *slotContexts {
	sc := &slotContexts{c: c, states: make([]*evalState, par), ctxs: make([]*context, par)}
	sc.states[0], sc.ctxs[0] = c.st, c
	return sc
}

// at returns slot's context. Each slot is owned by exactly one
// goroutine for the duration of the ParallelFor (sched's slot
// contract), so no locking is needed.
func (sc *slotContexts) at(slot int) *context {
	if sc.ctxs[slot] == nil {
		ws := sc.c.st.workerState()
		cc := *sc.c
		cc.st = ws
		sc.states[slot] = ws
		sc.ctxs[slot] = &cc
	}
	return sc.ctxs[slot]
}

// merge folds helper explain counters back into the parent state and
// records the pass's morsel/worker stats on the operator's slot.
func (sc *slotContexts) merge(opID int, morsels int64, slotRows []int64) {
	st := sc.c.st
	for _, ws := range sc.states[1:] {
		if ws != nil {
			st.mergeWorker(ws)
		}
	}
	if !st.parEngaged {
		st.parEngaged = true
		parQueriesTotal.Add(1)
	}
	morselsTotal.Add(uint64(morsels))
	if ex := st.explain; ex != nil && opID >= 0 && opID < len(ex) {
		cd := &ex[opID]
		cd.morsels += morsels
		if len(cd.workerRows) < len(slotRows) {
			cd.workerRows = append(cd.workerRows, make([]int64, len(slotRows)-len(cd.workerRows))...)
		}
		for i, r := range slotRows {
			cd.workerRows[i] += r
		}
	}
}

// ---- parallel predicate filtering ------------------------------------------

// predRange filters items[lo:hi) by one predicate, compacting
// survivors to items[lo:lo+kept) — the same keep rules as predCursor
// and applyPredicatesInPlace, with the item's focus position supplied
// as pos0+index+1 (pos0 = position offset of items[0] in the
// segment). Returns the survivor count and the first error.
func predRange(c *context, items Seq, lo, hi int, pr expr, pos0, size int) (int, error) {
	c2 := *c
	c2.size = size
	w := lo
	for k := lo; k < hi; k++ {
		if err := c.st.checkCancel(); err != nil {
			return w - lo, err
		}
		it := items[k]
		c2.item, c2.pos = it, pos0+k+1
		v, err := evalMaybeLowered(&c2, pr)
		if err != nil {
			return w - lo, err
		}
		keep := false
		if len(v) == 1 {
			if f, ok := v[0].(float64); ok {
				keep = float64(pos0+k+1) == f
			} else if keep, err = ebv(v); err != nil {
				return w - lo, err
			}
		} else if keep, err = ebv(v); err != nil {
			return w - lo, err
		}
		if keep {
			items[w] = it
			w++
		}
	}
	return w - lo, nil
}

// parFilterPreds filters one index segment's materialized candidates
// by preds on the shared pool, pred-at-a-time with morsel-parallel
// evaluation inside each predicate. items is compacted in place and
// the surviving prefix returned. pos0 is the 0-based offset of
// items[0] within the segment's full candidate list and size0 the
// first predicate's focus size (the full candidate count); later
// predicates see the surviving list itself as their focus, exactly
// like applyPredicatesInPlace.
func parFilterPreds(c *context, items Seq, preds []expr, pos0, size0, opID int) (Seq, error) {
	st := c.st
	par := st.parallelism()
	slots := newSlotContexts(c, par)
	slotRows := make([]int64, par)
	var nMorsels int64
	for pi, pr := range preds {
		n := len(items)
		if n == 0 {
			break
		}
		base, size := pos0, size0
		if pi > 0 {
			base, size = 0, n
		}
		if f, ok := constNumPred(pr); ok {
			// Unreachable for marked-parallel ops (predNeverNumeric), but
			// keep the serial rule for safety.
			items = selectByConstPos(items, f)
			continue
		}
		msize := morselSizeFor(n, par)
		if n <= msize {
			kept, err := predRange(c, items, 0, n, pr, base, size)
			if err != nil {
				slots.merge(opID, nMorsels, slotRows)
				return nil, err
			}
			items = items[:kept]
			continue
		}
		nm := (n + msize - 1) / msize
		counts := make([]int, nm)
		errs := make([]error, nm)
		st.pool.ParallelFor(sched.Morsel, nm, par, func(mi, slot int) {
			lo := mi * msize
			hi := lo + msize
			if hi > n {
				hi = n
			}
			t0 := time.Now()
			cw := slots.at(slot)
			counts[mi], errs[mi] = predRange(cw, items, lo, hi, pr, base, size)
			slotRows[slot] += int64(hi - lo)
			morselHist.Observe(time.Since(t0).Seconds())
		})
		nMorsels += int64(nm)
		for mi := 0; mi < nm; mi++ {
			if errs[mi] != nil {
				slots.merge(opID, nMorsels, slotRows)
				return nil, errs[mi]
			}
		}
		// Concatenate per-morsel survivors in morsel order: serial order.
		w := counts[0]
		for mi := 1; mi < nm; mi++ {
			lo := mi * msize
			copy(items[w:w+counts[mi]], items[lo:lo+counts[mi]])
			w += counts[mi]
		}
		items = items[:w]
	}
	slots.merge(opID, nMorsels, slotRows)
	return items, nil
}

// ---- parallel chain verification -------------------------------------------

// parFilterChain keeps the chain-scan candidates whose ancestor chain
// matches syms, morsel-parallel. chainAncestorsMatch reads only the
// immutable document, so workers share nothing but cancellation state.
// items is compacted in place; survivors keep candidate order.
func parFilterChain(c *context, items []*dom.Node, d *core.Document, syms []int32, opID int) ([]*dom.Node, error) {
	st := c.st
	par := st.parallelism()
	n := len(items)
	slots := newSlotContexts(c, par)
	slotRows := make([]int64, par)
	msize := morselSizeFor(n, par)
	nm := (n + msize - 1) / msize
	counts := make([]int, nm)
	errs := make([]error, nm)
	st.pool.ParallelFor(sched.Morsel, nm, par, func(mi, slot int) {
		lo := mi * msize
		hi := lo + msize
		if hi > n {
			hi = n
		}
		t0 := time.Now()
		ws := slots.at(slot).st
		w := lo
		for k := lo; k < hi; k++ {
			if err := ws.checkCancel(); err != nil {
				errs[mi] = err
				break
			}
			if chainAncestorsMatch(d, items[k], syms) {
				items[w] = items[k]
				w++
			}
		}
		counts[mi] = w - lo
		slotRows[slot] += int64(hi - lo)
		morselHist.Observe(time.Since(t0).Seconds())
	})
	slots.merge(opID, int64(nm), slotRows)
	for mi := 0; mi < nm; mi++ {
		if errs[mi] != nil {
			return nil, errs[mi]
		}
	}
	w := counts[0]
	for mi := 1; mi < nm; mi++ {
		lo := mi * msize
		copy(items[w:w+counts[mi]], items[lo:lo+counts[mi]])
		w += counts[mi]
	}
	return items[:w], nil
}

// ---- streaming route -------------------------------------------------------

// parPredCursor streams an index segment filtered by one
// position-independent predicate with adaptive parallel engagement:
// the first morsel's candidates serve lazily through the serial
// predicate route, so early-exit consumers ((//w[p])[1], exists())
// do exactly the serial route's work; a consumer that drains past
// them triggers one parallel filter pass over every remaining
// candidate, whose buffered survivors then stream out in document
// order. Deterministic errors surface identically to the serial
// cursor (phase-A errors during phase A; later errors are the
// earliest remaining candidate's, per parFilterPreds).
type parPredCursor struct {
	c     *context
	op    *pathOp
	rs    *runSegCursor
	pr    expr
	total int

	c2       context
	inited   bool
	examined int
	phaseA   int
	tail     cursor
}

func (pc *parPredCursor) next() (Item, bool, error) {
	for pc.tail == nil {
		if !pc.inited {
			pc.c2 = *pc.c
			pc.c2.size = pc.total
			pc.inited = true
		}
		if pc.examined >= pc.phaseA {
			// Crossed the first morsel with the consumer still pulling:
			// filter everything that remains in parallel.
			rest := make(Seq, 0, pc.total-pc.examined)
			for {
				it, ok, _ := pc.rs.next() // runSegCursor never errors
				if !ok {
					break
				}
				rest = append(rest, it)
			}
			out, err := parFilterPreds(pc.c, rest, []expr{pc.pr}, pc.examined, pc.total, pc.op.id)
			if err != nil {
				return nil, false, err
			}
			pc.tail = seqCur(out)
			break
		}
		if err := pc.c.st.checkCancel(); err != nil {
			return nil, false, err
		}
		it, ok, err := pc.rs.next()
		if err != nil || !ok {
			return nil, false, err
		}
		pc.examined++
		pc.c2.item, pc.c2.pos = it, pc.examined
		v, err := evalMaybeLowered(&pc.c2, pc.pr)
		if err != nil {
			return nil, false, err
		}
		keep := false
		if len(v) == 1 {
			if f, ok := v[0].(float64); ok {
				keep = float64(pc.examined) == f
			} else if keep, err = ebv(v); err != nil {
				return nil, false, err
			}
		} else if keep, err = ebv(v); err != nil {
			return nil, false, err
		}
		if keep {
			return it, true, nil
		}
	}
	return pc.tail.next()
}
