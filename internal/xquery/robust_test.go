package xquery_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mhxquery/internal/corpus"
	"mhxquery/internal/xquery"
)

// TestQuickCompileNeverPanics feeds random byte soup and random
// token-ish soup to the compiler: it must return an error or a query,
// never panic.
func TestQuickCompileNeverPanics(t *testing.T) {
	tokens := []string{
		"for", "$x", "in", "return", "let", ":=", "if", "then", "else",
		"(", ")", "[", "]", "{", "}", "/", "//", "::", "child", "xancestor",
		"overlapping", "*", "@", ",", "|", "and", "or", "1", "2.5", `"s"`,
		"'t'", "<a>", "</a>", "<br/>", "analyze-string", "text()", "leaf()",
		"..", ".", "+", "-", "=", "!=", "<", "<=", "order", "by", "some",
		"satisfies", "to", "div", "element", "attribute",
	}
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: compile panicked: %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		// Token soup.
		n := r.Intn(30)
		src := ""
		for i := 0; i < n; i++ {
			src += tokens[r.Intn(len(tokens))] + " "
		}
		_, _ = xquery.Compile(src)
		// Byte soup.
		raw := make([]byte, r.Intn(60))
		for i := range raw {
			raw[i] = byte(r.Intn(256))
		}
		_, _ = xquery.Compile(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickEvalNeverPanics evaluates every token-soup query that happens
// to compile: evaluation must return a value or an error, never panic.
func TestQuickEvalNeverPanics(t *testing.T) {
	d := corpus.MustBoethius()
	tokens := []string{
		"for $x in /descendant::w ", "return ", "string($x) ", "count(/descendant::leaf()) ",
		"if (", ") then ", "else ", "1 ", "(", ")", ",", "analyze-string(/descendant::w[1], \"e\") ",
		"/descendant::line ", "[", "]", "overlapping::w ", "xancestor::dmg ",
		"$x ", "+ ", "= ", "<b>{", "}</b> ", "position() ", "last() ",
	}
	f := func(seed int64) (ok bool) {
		var src string
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: eval panicked on %q: %v", seed, src, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		for i := 0; i < n; i++ {
			src += tokens[r.Intn(len(tokens))]
		}
		q, err := xquery.Compile(src)
		if err != nil {
			return true
		}
		_, _ = q.Eval(d)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}
