package xquery

import "mhxquery/internal/core"

// expr is a compiled expression node.
type expr interface {
	eval(c *context) (Seq, error)
}

// literalExpr is a string or number literal; seq is the precomputed
// singleton so evaluation allocates nothing.
type literalExpr struct {
	v   Item
	seq Seq
}

func newLiteral(v Item) *literalExpr { return &literalExpr{v: v, seq: Seq{v}} }

// varExpr references a bound variable.
type varExpr struct{ name string }

// contextItemExpr is ".".
type contextItemExpr struct{}

// rootExpr is a bare "/" (the KyGODDAG root of the active document).
type rootExpr struct{}

// seqExpr is the comma operator.
type seqExpr struct{ items []expr }

// rangeExpr is "a to b".
type rangeExpr struct{ lo, hi expr }

// orExpr / andExpr are the boolean connectives.
type orExpr struct{ a, b expr }
type andExpr struct{ a, b expr }

// cmpKind distinguishes general (=), value (eq) and node (is, <<, >>)
// comparisons.
type cmpKind uint8

const (
	cmpGeneral cmpKind = iota
	cmpValue
	cmpNode
)

type cmpExpr struct {
	op   string
	kind cmpKind
	a, b expr
}

// arithExpr is +, -, *, div, idiv, mod.
type arithExpr struct {
	op   string
	a, b expr
}

// unaryExpr is unary minus (+ is absorbed at parse time).
type unaryExpr struct{ x expr }

// unionExpr is "|"/"union"; intersectExpr covers intersect/except.
type unionExpr struct{ a, b expr }
type intersectExpr struct {
	except bool
	a, b   expr
}

// ifExpr is if (cond) then .. else ..
type ifExpr struct{ cond, then, els expr }

// quantExpr is some/every $v in E satisfies E.
type quantExpr struct {
	every bool
	names []string
	srcs  []expr
	sat   expr
}

// flworExpr is a FLWOR expression.
type flworExpr struct {
	clauses []flworClause
	order   []orderSpec
	ret     expr
}

type clauseKind uint8

const (
	clauseFor clauseKind = iota
	clauseLet
	clauseWhere
)

type flworClause struct {
	kind    clauseKind
	name    string // bound variable (for/let)
	posName string // "at $pos" variable, or ""
	src     expr   // binding sequence (for/let) or condition (where)
}

type orderSpec struct {
	key           expr
	descending    bool
	emptyGreatest bool
}

// callExpr is a call of a built-in function, resolved at compile time.
type callExpr struct {
	name string
	fn   *builtin
	args []expr
}

// nodeTest is a name, wildcard or kind test, optionally restricted to a
// comma-separated list of hierarchies (Definition 2 plus the
// hierarchy-qualified name test extension, DESIGN.md §3).
type testKind uint8

const (
	testName testKind = iota
	testStar
	testText
	testNode
	testComment
	testPI
	testLeaf
)

type nodeTest struct {
	kind  testKind
	name  string
	hiers []string
}

// step is one path step: either an axis step (axis, test, predicates) or,
// when prim is non-nil, a primary-expression step evaluated once per
// input node ("$x/string(.)").
type step struct {
	axis  core.Axis
	test  nodeTest
	preds []expr
	prim  expr
	// posSel is the compile-time classification of preds[0] when it is a
	// constant positional selection: k > 0 for an integer literal [k],
	// posLast for [last()], 0 otherwise. The pipeline then stops
	// candidate iteration at the selected node instead of materializing
	// and filtering the whole candidate set.
	posSel int
}

// posLast marks a [last()] first predicate in step.posSel.
const posLast = -1

// classifyPosSel recognizes the positional first predicates the step
// evaluator can shortcut: an integer literal ([1], [3], …) or a bare
// last() call.
func classifyPosSel(preds []expr) int {
	if len(preds) == 0 {
		return 0
	}
	switch p := preds[0].(type) {
	case *literalExpr:
		if f, ok := p.v.(float64); ok {
			if k := int(f); float64(k) == f && k >= 1 {
				return k
			}
		}
	case *callExpr:
		if p.name == "last" && len(p.args) == 0 {
			return posLast
		}
	}
	return 0
}

// pathExpr is a (possibly absolute) path. start is the initial-value
// expression (nil: the context item, or the root when absolute).
type pathExpr struct {
	absolute bool
	start    expr
	steps    []*step
}

// filterExpr is a primary expression with predicates.
type filterExpr struct {
	base  expr
	preds []expr
}

// elemExpr is a direct element constructor. Content items are rawTextExpr
// (literal character data), elemExpr (nested constructors) or arbitrary
// enclosed expressions.
type elemExpr struct {
	name    string
	attrs   []attrTpl
	content []expr
}

// attrTpl is an attribute value template: literal parts (rawTextExpr)
// interleaved with enclosed expressions.
type attrTpl struct {
	name  string
	parts []expr
}

// rawTextExpr is literal character data inside a constructor.
type rawTextExpr struct{ s string }

// compCtorExpr is a computed constructor: element {N} {C}, attribute,
// text or comment.
type compCtorExpr struct {
	kind     byte // 'e', 'a', 't', 'c'
	name     string
	nameExpr expr // non-nil when the name is computed
	content  expr // nil for empty content
}
