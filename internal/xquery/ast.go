package xquery

import "mhxquery/internal/core"

// expr is a compiled expression node.
type expr interface {
	eval(c *context) (Seq, error)
}

// literalExpr is a string or number literal.
type literalExpr struct{ v Item }

// varExpr references a bound variable.
type varExpr struct{ name string }

// contextItemExpr is ".".
type contextItemExpr struct{}

// rootExpr is a bare "/" (the KyGODDAG root of the active document).
type rootExpr struct{}

// seqExpr is the comma operator.
type seqExpr struct{ items []expr }

// rangeExpr is "a to b".
type rangeExpr struct{ lo, hi expr }

// orExpr / andExpr are the boolean connectives.
type orExpr struct{ a, b expr }
type andExpr struct{ a, b expr }

// cmpKind distinguishes general (=), value (eq) and node (is, <<, >>)
// comparisons.
type cmpKind uint8

const (
	cmpGeneral cmpKind = iota
	cmpValue
	cmpNode
)

type cmpExpr struct {
	op   string
	kind cmpKind
	a, b expr
}

// arithExpr is +, -, *, div, idiv, mod.
type arithExpr struct {
	op   string
	a, b expr
}

// unaryExpr is unary minus (+ is absorbed at parse time).
type unaryExpr struct{ x expr }

// unionExpr is "|"/"union"; intersectExpr covers intersect/except.
type unionExpr struct{ a, b expr }
type intersectExpr struct {
	except bool
	a, b   expr
}

// ifExpr is if (cond) then .. else ..
type ifExpr struct{ cond, then, els expr }

// quantExpr is some/every $v in E satisfies E.
type quantExpr struct {
	every bool
	names []string
	srcs  []expr
	sat   expr
}

// flworExpr is a FLWOR expression.
type flworExpr struct {
	clauses []flworClause
	order   []orderSpec
	ret     expr
}

type clauseKind uint8

const (
	clauseFor clauseKind = iota
	clauseLet
	clauseWhere
)

type flworClause struct {
	kind    clauseKind
	name    string // bound variable (for/let)
	posName string // "at $pos" variable, or ""
	src     expr   // binding sequence (for/let) or condition (where)
}

type orderSpec struct {
	key           expr
	descending    bool
	emptyGreatest bool
}

// callExpr is a call of a built-in function, resolved at compile time.
type callExpr struct {
	name string
	fn   *builtin
	args []expr
}

// nodeTest is a name, wildcard or kind test, optionally restricted to a
// comma-separated list of hierarchies (Definition 2 plus the
// hierarchy-qualified name test extension, DESIGN.md §3).
type testKind uint8

const (
	testName testKind = iota
	testStar
	testText
	testNode
	testComment
	testPI
	testLeaf
)

type nodeTest struct {
	kind  testKind
	name  string
	hiers []string
}

// step is one path step: either an axis step (axis, test, predicates) or,
// when prim is non-nil, a primary-expression step evaluated once per
// input node ("$x/string(.)").
type step struct {
	axis  core.Axis
	test  nodeTest
	preds []expr
	prim  expr
}

// pathExpr is a (possibly absolute) path. start is the initial-value
// expression (nil: the context item, or the root when absolute).
type pathExpr struct {
	absolute bool
	start    expr
	steps    []*step
}

// filterExpr is a primary expression with predicates.
type filterExpr struct {
	base  expr
	preds []expr
}

// elemExpr is a direct element constructor. Content items are rawTextExpr
// (literal character data), elemExpr (nested constructors) or arbitrary
// enclosed expressions.
type elemExpr struct {
	name    string
	attrs   []attrTpl
	content []expr
}

// attrTpl is an attribute value template: literal parts (rawTextExpr)
// interleaved with enclosed expressions.
type attrTpl struct {
	name  string
	parts []expr
}

// rawTextExpr is literal character data inside a constructor.
type rawTextExpr struct{ s string }

// compCtorExpr is a computed constructor: element {N} {C}, attribute,
// text or comment.
type compCtorExpr struct {
	kind     byte // 'e', 'a', 't', 'c'
	name     string
	nameExpr expr // non-nil when the name is computed
	content  expr // nil for empty content
}
