package xquery

import (
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token kinds. The lexer is context-free: '*' is always tStar, '<' always
// tLt, and keywords are plain tName tokens; the parser disambiguates by
// position (the standard approach for XQuery's context-sensitive grammar).
type tokKind uint8

const (
	tEOF tokKind = iota
	tName
	tVar
	tString
	tNumber
	tLParen
	tRParen
	tLBracket
	tRBracket
	tLBrace
	tRBrace
	tComma
	tSlash
	tSlashSlash
	tColonColon
	tAt
	tDot
	tDotDot
	tStar
	tPlus
	tMinus
	tEq
	tNe
	tLt
	tLe
	tGt
	tGe
	tLtLt
	tGtGt
	tPipe
	tAssign
)

type token struct {
	kind       tokKind
	text       string
	num        float64
	start, end int
}

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of query"
	case tName:
		return "name"
	case tVar:
		return "variable"
	case tString:
		return "string literal"
	case tNumber:
		return "number"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tLBracket:
		return "'['"
	case tRBracket:
		return "']'"
	case tLBrace:
		return "'{'"
	case tRBrace:
		return "'}'"
	case tComma:
		return "','"
	case tSlash:
		return "'/'"
	case tSlashSlash:
		return "'//'"
	case tColonColon:
		return "'::'"
	case tAt:
		return "'@'"
	case tDot:
		return "'.'"
	case tDotDot:
		return "'..'"
	case tStar:
		return "'*'"
	case tPlus:
		return "'+'"
	case tMinus:
		return "'-'"
	case tEq:
		return "'='"
	case tNe:
		return "'!='"
	case tLt:
		return "'<'"
	case tLe:
		return "'<='"
	case tGt:
		return "'>'"
	case tGe:
		return "'>='"
	case tLtLt:
		return "'<<'"
	case tGtGt:
		return "'>>'"
	case tPipe:
		return "'|'"
	case tAssign:
		return "':='"
	}
	return "token?"
}

type lexer struct {
	src string
	pos int
}

// lexPanic carries a compilation error through the recursive-descent
// parser; Compile recovers it.
type lexPanic struct{ err error }

func lexErr(pos int, format string, args ...any) {
	panic(lexPanic{errf("XPST0003", "at offset %d: "+format, append([]any{pos}, args...)...)})
}

func nameStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func nameChar(r rune) bool {
	return nameStart(r) || r == '-' || r == '.' || unicode.IsDigit(r)
}

// skipSpace consumes whitespace and (possibly nested) XQuery comments.
func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		case '(':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
				l.skipComment()
				continue
			}
			return
		default:
			return
		}
	}
}

func (l *lexer) skipComment() {
	start := l.pos
	depth := 0
	for l.pos < len(l.src) {
		if strings.HasPrefix(l.src[l.pos:], "(:") {
			depth++
			l.pos += 2
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], ":)") {
			depth--
			l.pos += 2
			if depth == 0 {
				return
			}
			continue
		}
		l.pos++
	}
	lexErr(start, "unterminated comment")
}

// scanNCName scans an NCName at pos, returning it and the end position,
// or ok=false if pos does not start a name.
func scanNCName(src string, pos int) (string, int, bool) {
	r, sz := utf8.DecodeRuneInString(src[pos:])
	if sz == 0 || !nameStart(r) {
		return "", pos, false
	}
	end := pos + sz
	for end < len(src) {
		r, sz = utf8.DecodeRuneInString(src[end:])
		if !nameChar(r) {
			break
		}
		end += sz
	}
	return src[pos:end], end, true
}

// next scans one token. Prefixed names ("fn:string") are scanned as a
// single tName; "::" is never consumed as part of a name.
func (l *lexer) next() token {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tEOF, start: start, end: start}
	}
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	mk := func(k tokKind, n int) token {
		l.pos += n
		return token{kind: k, text: l.src[start:l.pos], start: start, end: l.pos}
	}
	switch {
	case two == "//":
		return mk(tSlashSlash, 2)
	case two == "::":
		return mk(tColonColon, 2)
	case two == "!=":
		return mk(tNe, 2)
	case two == "<=":
		return mk(tLe, 2)
	case two == ">=":
		return mk(tGe, 2)
	case two == "<<":
		return mk(tLtLt, 2)
	case two == ">>":
		return mk(tGtGt, 2)
	case two == ":=":
		return mk(tAssign, 2)
	}
	switch c {
	case '(':
		return mk(tLParen, 1)
	case ')':
		return mk(tRParen, 1)
	case '[':
		return mk(tLBracket, 1)
	case ']':
		return mk(tRBracket, 1)
	case '{':
		return mk(tLBrace, 1)
	case '}':
		return mk(tRBrace, 1)
	case ',':
		return mk(tComma, 1)
	case '/':
		return mk(tSlash, 1)
	case '@':
		return mk(tAt, 1)
	case '*':
		return mk(tStar, 1)
	case '+':
		return mk(tPlus, 1)
	case '-':
		return mk(tMinus, 1)
	case '=':
		return mk(tEq, 1)
	case '<':
		return mk(tLt, 1)
	case '>':
		return mk(tGt, 1)
	case '|':
		return mk(tPipe, 1)
	case '$':
		name, end, ok := scanNCName(l.src, l.pos+1)
		if !ok {
			lexErr(start, "expected variable name after '$'")
		}
		// Allow one prefix colon in variable names.
		if end < len(l.src) && l.src[end] == ':' && !strings.HasPrefix(l.src[end:], "::") {
			if rest, e2, ok2 := scanNCName(l.src, end+1); ok2 {
				name, end = name+":"+rest, e2
			}
		}
		l.pos = end
		return token{kind: tVar, text: name, start: start, end: end}
	case '"', '\'':
		return l.scanString(c)
	case '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			return mk(tDotDot, 2)
		}
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			return l.scanNumber()
		}
		return mk(tDot, 1)
	}
	if c >= '0' && c <= '9' {
		return l.scanNumber()
	}
	if name, end, ok := scanNCName(l.src, l.pos); ok {
		// Optional prefix: "fn:string" — but never eat "::".
		if end < len(l.src) && l.src[end] == ':' && !strings.HasPrefix(l.src[end:], "::") {
			if rest, e2, ok2 := scanNCName(l.src, end+1); ok2 {
				name, end = name+":"+rest, e2
			}
		}
		l.pos = end
		return token{kind: tName, text: name, start: start, end: end}
	}
	lexErr(start, "unexpected character %q", rune(c))
	return token{}
}

func (l *lexer) scanString(quote byte) token {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// Doubled quote is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tString, text: b.String(), start: start, end: l.pos}
		}
		b.WriteByte(c)
		l.pos++
	}
	lexErr(start, "unterminated string literal")
	return token{}
}

func (l *lexer) scanNumber() token {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	// Exponent part (1e3, 1.5E-2).
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		lexErr(start, "malformed number %q", text)
	}
	return token{kind: tNumber, text: text, num: f, start: start, end: l.pos}
}
