package xquery

import (
	"fmt"
	"strings"

	"mhxquery/internal/dom"
)

// This file implements Definition 4 of the paper: the extended internal
// function
//
//	fn:analyze-string($node as node(), $pattern as string) as node()
//
// which (1) creates a fresh temporary KyGODDAG hierarchy ("rest",
// "rest2", …), (2) wraps the content of $node in a <res> element of that
// hierarchy, (3) matches the regular expression against the content and
// tags each matching string with <m>, (4) when the pattern is an
// XML-fragment ("xxx<a>xxx</a>xxx"), converts each start/end tag pair to
// a regex group and tags each group match with the originating element
// name, nested as in the fragment, and (5) lets the temporary hierarchy
// live until the whole query evaluation finishes.
//
// Two semantic details follow the paper's worked Example 1:
//
//   - Redundant unanchored ".*" / ".*?" heads and tails are stripped
//     before matching, so analyze-string($w, ".*unawe.*") tags exactly
//     <m>unawe</m> (as printed in the paper), not the whole content.
//   - User parentheses in the pattern are converted to non-capturing
//     groups so that group numbering corresponds 1:1 to fragment tags.

// fragGroup is one capture group derived from a fragment tag.
type fragGroup struct {
	name   string
	parent int // index of the enclosing group, or -1 for top level
}

// translateFragmentPattern converts an XML-fragment pattern into regex
// source plus a group table: "<a>" → "(", "</a>" → ")" per Definition
// 4(4). A '<' not followed by a name character (or inside a character
// class or escape) is treated as a literal.
func translateFragmentPattern(pat string) (string, []fragGroup, error) {
	var b strings.Builder
	var groups []fragGroup
	var stack []int
	inClass := false
	i := 0
	for i < len(pat) {
		c := pat[i]
		switch {
		case c == '\\' && i+1 < len(pat):
			b.WriteString(pat[i : i+2])
			i += 2
		case inClass:
			if c == ']' {
				inClass = false
			}
			b.WriteByte(c)
			i++
		case c == '[':
			inClass = true
			b.WriteByte(c)
			i++
		case c == '<':
			if i+1 < len(pat) && pat[i+1] == '/' {
				j := strings.IndexByte(pat[i:], '>')
				if j < 0 {
					return "", nil, errf("MHXQ0002", "unterminated end tag in pattern %q", pat)
				}
				name := pat[i+2 : i+j]
				if len(stack) == 0 || groups[stack[len(stack)-1]].name != name {
					return "", nil, errf("MHXQ0002", "mismatched </%s> in pattern %q", name, pat)
				}
				stack = stack[:len(stack)-1]
				b.WriteByte(')')
				i += j + 1
				continue
			}
			if name, end, ok := scanXMLName(pat, i+1); ok && end < len(pat) && pat[end] == '>' {
				parent := -1
				if len(stack) > 0 {
					parent = stack[len(stack)-1]
				}
				groups = append(groups, fragGroup{name: name, parent: parent})
				stack = append(stack, len(groups)-1)
				b.WriteByte('(')
				i = end + 1
				continue
			}
			b.WriteString(`\<`)
			i++
		case c == '(':
			if i+1 < len(pat) && pat[i+1] == '?' {
				b.WriteByte(c)
				i++
				continue
			}
			// Neutralize user groups so fragment tags own the numbering.
			b.WriteString("(?:")
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	if len(stack) != 0 {
		return "", nil, errf("MHXQ0002", "unclosed <%s> in pattern %q", groups[stack[len(stack)-1]].name, pat)
	}
	return b.String(), groups, nil
}

// stripOuterDotStar removes unanchored leading and trailing ".*"/".*?",
// matching the paper's Example 1 semantics.
func stripOuterDotStar(p string) string {
	orig := p
	for {
		switch {
		case strings.HasPrefix(p, ".*?"):
			p = p[3:]
		case strings.HasPrefix(p, ".*"):
			p = p[2:]
		default:
			goto tail
		}
	}
tail:
	for strings.HasSuffix(p, ".*") && !strings.HasSuffix(p, `\.*`) {
		p = p[:len(p)-2]
	}
	if p == "" {
		return orig
	}
	return p
}

func fnAnalyzeString(c *context, args []Seq) (Seq, error) {
	n, err := oneNode(args, 0)
	if err != nil {
		return nil, errf("MHXQ0003", "analyze-string: first argument must be a single node (%v)", err)
	}
	d := c.st.docFor(n)
	switch n.Kind {
	case dom.Element, dom.Text, dom.Leaf:
	default:
		return nil, errf("MHXQ0003", "analyze-string: cannot analyze a %s node", n.Kind)
	}
	if n != d.Root && (n.Hier == "" && n.Kind != dom.Leaf) {
		return nil, errf("MHXQ0003", "analyze-string: node is not part of the multihierarchical document")
	}
	if n.Start < 0 || n.End > len(d.Text) || n.Start > n.End {
		return nil, errf("MHXQ0003", "analyze-string: node has no valid span in the base text")
	}
	pat, err := oneString(c, args, 1)
	if err != nil {
		return nil, err
	}
	flags, err := oneString(c, args, 2)
	if err != nil {
		return nil, err
	}

	reSrc, groups, err := translateFragmentPattern(stripOuterDotStar(pat))
	if err != nil {
		return nil, err
	}
	re, err := compileRegex(reSrc, flags)
	if err != nil {
		return nil, err
	}

	content := d.Text[n.Start:n.End]
	base := n.Start

	res := dom.NewElement("res")
	res.Start, res.End = n.Start, n.End

	addText := func(parent *dom.Node, from, to int) {
		if from >= to {
			return
		}
		t := dom.NewText(content[from:to])
		t.Start, t.End = base+from, base+to
		parent.AppendChild(t)
	}

	// Children of each group index (-1 = directly under <m>).
	kids := map[int][]int{}
	for gi, g := range groups {
		kids[g.parent] = append(kids[g.parent], gi)
	}

	var assemble func(parent *dom.Node, from, to int, children []int, m []int)
	assemble = func(parent *dom.Node, from, to int, children []int, m []int) {
		cursor := from
		for _, gi := range children {
			s, e := m[2*(gi+1)], m[2*(gi+1)+1]
			if s < 0 || s == e {
				continue
			}
			addText(parent, cursor, s)
			g := dom.NewElement(groups[gi].name)
			g.Start, g.End = base+s, base+e
			parent.AppendChild(g)
			assemble(g, s, e, kids[gi], m)
			cursor = e
		}
		addText(parent, cursor, to)
	}

	cursor := 0
	for _, m := range re.FindAllStringSubmatchIndex(content, -1) {
		if m[0] == m[1] {
			continue // zero-width matches produce no markup
		}
		addText(res, cursor, m[0])
		mEl := dom.NewElement("m")
		mEl.Start, mEl.End = base+m[0], base+m[1]
		res.AppendChild(mEl)
		assemble(mEl, m[0], m[1], kids[-1], m)
		cursor = m[1]
	}
	addText(res, cursor, len(content))

	c.st.tempSeq++
	hname := "rest"
	if c.st.tempSeq > 1 {
		hname = fmt.Sprintf("rest%d", c.st.tempSeq)
	}
	nd, err := d.AddHierarchy(hname, res, true)
	if err != nil {
		return nil, err
	}
	if d == c.st.doc {
		c.st.doc = nd
	} else {
		// The analyzed node came from a doc()/collection() document:
		// advance that document's entry to its overlay so later steps on
		// its nodes (including the new temporaries) dispatch there, and
		// leave the active document alone.
		for i, e := range c.st.extra {
			if e == d {
				c.st.extra[i] = nd
				break
			}
		}
	}
	return singleton(res), nil
}
