// Package xquery implements the paper's extended XQuery over
// multihierarchical (KyGODDAG) documents: a hand-written lexer and
// recursive-descent parser for an XQuery subset (FLWOR with order by,
// quantified and conditional expressions, direct element constructors,
// full path expressions), an evaluator whose path steps understand the
// extended axes and hierarchy-qualified node tests of Definitions 1–2,
// the stable node order of Definition 3, and the analyze-string function
// of Definition 4, which materializes regular-expression matches as a
// temporary markup hierarchy overlaid on the document for the remainder
// of the query.
package xquery

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mhxquery/internal/dom"
)

// Item is one member of an XQuery sequence: a *dom.Node, string, float64
// or bool.
type Item any

// Seq is an XQuery sequence (flat, possibly empty).
type Seq []Item

// singleton wraps one item.
func singleton(it Item) Seq { return Seq{it} }

// seqTrue and seqFalse are the shared boolean singletons. Sequences
// returned by expressions are never mutated by consumers (the same
// convention that lets varExpr return the bound sequence unchanged), so
// boolean-valued expressions can avoid a per-evaluation allocation.
var (
	seqTrue  = Seq{true}
	seqFalse = Seq{false}
)

// singletonBool returns the shared singleton for b.
func singletonBool(b bool) Seq {
	if b {
		return seqTrue
	}
	return seqFalse
}

// reverseSeq reverses a sequence in place (the O(k) order restoration
// for reverse-axis step segments).
func reverseSeq(s Seq) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// Error is an evaluation or compilation error with an error-code-like tag.
type Error struct {
	Code string // e.g. "XPTY0019"-style tag or descriptive code
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return "xquery: " + e.Code + ": " + e.Msg }

func errf(code, format string, args ...any) error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// atomize converts an item to its atomic value: nodes become their string
// value, atomics pass through.
func atomize(it Item) Item {
	if n, ok := it.(*dom.Node); ok {
		return n.TextContent()
	}
	return it
}

// atomizeSeq atomizes every item.
func atomizeSeq(s Seq) Seq {
	out := make(Seq, len(s))
	for i, it := range s {
		out[i] = atomize(it)
	}
	return out
}

// stringValue renders an atomic or node item as a string per fn:string.
func stringValue(it Item) string {
	switch v := it.(type) {
	case nil:
		return ""
	case *dom.Node:
		return v.TextContent()
	case string:
		return v
	case bool:
		if v {
			return "true"
		}
		return "false"
	case float64:
		return formatNumber(v)
	}
	return fmt.Sprint(it)
}

// formatNumber renders a double the XPath way: integral values without a
// decimal point, NaN/Infinity spelled out.
func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// toNumber converts an item to a double per fn:number (NaN on failure).
func toNumber(it Item) float64 {
	switch v := atomize(it).(type) {
	case float64:
		return v
	case bool:
		if v {
			return 1
		}
		return 0
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
	return math.NaN()
}

// ebv computes the effective boolean value of a sequence.
func ebv(s Seq) (bool, error) {
	if len(s) == 0 {
		return false, nil
	}
	if _, ok := s[0].(*dom.Node); ok {
		return true, nil
	}
	if len(s) > 1 {
		return false, errf("FORG0006", "effective boolean value of a sequence of %d atomic values", len(s))
	}
	switch v := s[0].(type) {
	case bool:
		return v, nil
	case string:
		return v != "", nil
	case float64:
		return v != 0 && !math.IsNaN(v), nil
	}
	return false, errf("FORG0006", "effective boolean value of %T", s[0])
}

// compareAtomic compares two atomic values with XPath-1.0-style coercion:
// numeric if either side is (or the operator is an ordering), boolean if
// either side is a boolean (for equality), string otherwise. It returns
// -1/0/+1 and ok=false for incomparable NaN cases.
func compareAtomic(op string, a, b Item) (int, bool) {
	ordering := op == "<" || op == "<=" || op == ">" || op == ">=" ||
		op == "lt" || op == "le" || op == "gt" || op == "ge"
	if !ordering {
		if ab, ok := a.(bool); ok {
			bb := truthyAtom(b)
			return boolCmp(ab, bb), true
		}
		if bb, ok := b.(bool); ok {
			ab := truthyAtom(a)
			return boolCmp(ab, bb), true
		}
	}
	_, an := a.(float64)
	_, bn := b.(float64)
	if an || bn || ordering {
		x, y := toNumber(a), toNumber(b)
		if math.IsNaN(x) || math.IsNaN(y) {
			if !an && !bn && !ordering {
				// Neither side is a number: fall through to strings.
				return strings.Compare(stringValue(a), stringValue(b)), true
			}
			return 0, false
		}
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		}
		return 0, true
	}
	return strings.Compare(stringValue(a), stringValue(b)), true
}

// compareForOrder compares two atomic values as "order by", min() and
// max() require: numerically when both are numbers, as strings otherwise
// (unlike the XPath-1.0 "<" operator, which coerces strings to numbers).
func compareForOrder(a, b Item) (int, bool) {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if aok && bok {
		if math.IsNaN(af) || math.IsNaN(bf) {
			return 0, false
		}
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	}
	return strings.Compare(stringValue(a), stringValue(b)), true
}

func truthyAtom(it Item) bool {
	switch v := it.(type) {
	case bool:
		return v
	case string:
		return v != ""
	case float64:
		return v != 0 && !math.IsNaN(v)
	}
	return false
}

func boolCmp(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	}
	return 1
}

// applyCmp maps a comparison operator to a predicate over compareAtomic's
// result.
func applyCmp(op string, c int) bool {
	switch op {
	case "=", "eq":
		return c == 0
	case "!=", "ne":
		return c != 0
	case "<", "lt":
		return c < 0
	case "<=", "le":
		return c <= 0
	case ">", "gt":
		return c > 0
	case ">=", "ge":
		return c >= 0
	}
	return false
}

// Serialize renders a sequence the way the paper prints query results:
// nodes are serialized as XML (leaves and text nodes as escaped character
// data), atomic values as strings, with a single space inserted only
// between two adjacent atomic items.
func Serialize(s Seq) string {
	var b strings.Builder
	prevAtomic := false
	for _, it := range s {
		if n, ok := it.(*dom.Node); ok {
			b.WriteString(dom.XML(n))
			prevAtomic = false
			continue
		}
		if prevAtomic {
			b.WriteByte(' ')
		}
		b.WriteString(stringValue(it))
		prevAtomic = true
	}
	return b.String()
}

// SerializeText renders a sequence as plain text (no markup, no escaping);
// node items contribute their string value.
func SerializeText(s Seq) string {
	var b strings.Builder
	prevAtomic := false
	for _, it := range s {
		if n, ok := it.(*dom.Node); ok {
			b.WriteString(n.TextContent())
			prevAtomic = false
			continue
		}
		if prevAtomic {
			b.WriteByte(' ')
		}
		b.WriteString(stringValue(it))
		prevAtomic = true
	}
	return b.String()
}
