package xquery

import (
	"fmt"
	"math/rand"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
)

// The seeded random differential sweep: generated FLWOR, predicate and
// quantifier queries must evaluate node-identically — with identical
// error points — through the cursor engine (both its strict eval and
// full-drain stream routes) and the AST interpreter oracle
// (debugNaiveSteps). Together with TestPlanDifferentialRandomPaths
// (plan_test.go, random path shapes) this is the property suite the
// whole-query lowering rests on.

// qgen generates random queries from a seeded source. Generated queries
// always parse; evaluation may legitimately error (unknown hierarchies,
// type errors), and then both engines must fail with the same code.
type qgen struct{ r *rand.Rand }

func (g *qgen) pick(ss ...string) string { return ss[g.r.Intn(len(ss))] }

func (g *qgen) name() string {
	return g.pick("w", "line", "vline", "res", "dmg", "zzz")
}

func (g *qgen) hier() string {
	return g.pick("physical", "verse", "restoration", "damage", "structure", "nope")
}

func (g *qgen) axis() string {
	return g.pick(
		"child", "descendant", "descendant-or-self", "self",
		"parent", "ancestor", "ancestor-or-self",
		"following", "preceding", "following-sibling", "preceding-sibling",
		"xdescendant", "xancestor", "xfollowing", "xpreceding",
		"overlapping", "preceding-overlapping", "following-overlapping",
	)
}

func (g *qgen) test() string {
	switch g.r.Intn(8) {
	case 0:
		return "*"
	case 1:
		return "text()"
	case 2:
		return "node()"
	case 3:
		return "leaf()"
	case 4:
		return g.name() + "('" + g.hier() + "')"
	default:
		return g.name()
	}
}

// step emits one axis step, with a predicate at shrinking probability.
func (g *qgen) step(depth int) string {
	s := g.axis() + "::" + g.test()
	if depth > 0 && g.r.Intn(3) == 0 {
		s += "[" + g.pred(depth-1) + "]"
	}
	return s
}

// path emits an absolute or variable-rooted path of 1–3 steps.
func (g *qgen) path(depth int, varName string) string {
	n := 1 + g.r.Intn(3)
	p := ""
	for i := 0; i < n; i++ {
		p += "/" + g.step(depth)
	}
	if varName != "" && g.r.Intn(2) == 0 {
		return "$" + varName + p
	}
	if g.r.Intn(4) == 0 {
		return "//" + g.test() + p
	}
	return p
}

// pred emits one predicate expression.
func (g *qgen) pred(depth int) string {
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprint(1 + g.r.Intn(4))
	case 1:
		return "last()"
	case 2:
		return fmt.Sprintf("position() <= %d", 1+g.r.Intn(3))
	case 3:
		return fmt.Sprintf("string-length(string(.)) > %d", g.r.Intn(6))
	case 4:
		return fmt.Sprintf("string(.) = '%s'", g.pick("singallice", "folc", "a", ""))
	case 5:
		if depth > 0 {
			return g.relPath(depth-1) + " or " + g.relPath(depth-1)
		}
		return "position() = 1"
	case 6:
		if depth > 0 {
			return "exists(" + g.relPath(depth-1) + ")"
		}
		return "true()"
	default:
		return g.relPath(depth)
	}
}

// relPath emits a relative path of 1–2 steps (predicate shape).
func (g *qgen) relPath(depth int) string {
	p := g.step(depth)
	if g.r.Intn(2) == 0 {
		p += "/" + g.step(depth)
	}
	return p
}

// flwor emits a FLWOR expression.
func (g *qgen) flwor(depth int) string {
	v := g.pick("x", "y")
	q := "for $" + v
	if g.r.Intn(4) == 0 {
		q += " at $p"
	}
	q += " in " + g.path(depth, "")
	inner := v
	if g.r.Intn(3) == 0 {
		w := v + "2"
		q += " for $" + w + " in " + g.path(depth-1, v)
		inner = w
	}
	if g.r.Intn(3) == 0 {
		q += " let $l := " + g.pick("string($"+inner+")", "count($"+inner+"/child::node())")
	}
	if g.r.Intn(2) == 0 {
		q += " where " + g.pick(
			"exists($"+inner+"/"+g.step(0)+")",
			"string-length(string($"+inner+")) > 2",
			"$"+inner+"/"+g.step(0),
		)
	}
	if g.r.Intn(3) == 0 {
		q += " order by " + g.pick("string($"+inner+")", "string-length(string($"+inner+"))")
		if g.r.Intn(2) == 0 {
			q += " descending"
		}
	}
	q += " return " + g.pick(
		"$"+inner,
		"string($"+inner+")",
		"($"+inner+", '|')",
		"$"+inner+"/"+g.step(0),
	)
	return q
}

// quant emits a quantified expression.
func (g *qgen) quant(depth int) string {
	v := g.pick("q", "z")
	return g.pick("some", "every") + " $" + v + " in " + g.path(depth, "") +
		" satisfies " + g.pick(
		"exists($"+v+"/"+g.step(0)+")",
		"string-length(string($"+v+")) > 1",
		"$"+v+"/"+g.step(0),
	)
}

// query emits one top-level query.
func (g *qgen) query() string {
	switch g.r.Intn(6) {
	case 0:
		return g.flwor(2)
	case 1:
		return g.quant(2)
	case 2:
		return g.pick("count", "exists", "empty") + "(" + g.path(2, "") + ")"
	case 3:
		return "(" + g.path(2, "") + ")[" + g.pred(1) + "]"
	case 4:
		return "if (" + g.quant(1) + ") then " + g.flwor(1) + " else " + g.path(1, "")
	default:
		return g.path(2, "")
	}
}

// sweepDocs are the documents the sweep runs against: the Boethius
// fixture plus one generated manuscript with damage overlap.
func sweepDocs(t *testing.T) map[string]*core.Document {
	t.Helper()
	d, err := corpus.Generate(corpus.Params{Seed: 7, Words: 20, DamageRate: 0.3, RestoreRate: 0.3}).Document()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*core.Document{
		"boethius": corpus.MustBoethius(),
		"gen":      d,
	}
}

// TestSweepFLWORPredicatesQuantifiers is the ≥200-case seeded sweep.
func TestSweepFLWORPredicatesQuantifiers(t *testing.T) {
	docs := sweepDocs(t)
	g := &qgen{r: rand.New(rand.NewSource(20260729))}
	const cases = 300
	compiled := 0
	for i := 0; i < cases; i++ {
		src := g.query()
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("case %d: generated query does not parse: %q: %v", i, src, err)
		}
		compiled++
		for name, d := range docs {
			fast, fastErr := q.Eval(d)
			streamed, streamErr := drainStream(q.Stream(nil, d, nil, nil))

			debugNaiveSteps = true
			ref, refErr := q.Eval(d)
			debugNaiveSteps = false

			if (fastErr == nil) != (refErr == nil) {
				t.Errorf("case %d (%s): %q\n  cursor err=%v\n  oracle err=%v", i, name, src, fastErr, refErr)
				continue
			}
			if fastErr != nil {
				fe, fok := fastErr.(*Error)
				re, rok := refErr.(*Error)
				if !fok || !rok || fe.Code != re.Code {
					t.Errorf("case %d (%s): %q: error codes differ: %v vs %v", i, name, src, fastErr, refErr)
				}
				if (streamErr == nil) || streamErr.(*Error).Code != fe.Code {
					t.Errorf("case %d (%s): %q: stream error %v, eval error %v", i, name, src, streamErr, fastErr)
				}
				continue
			}
			if streamErr != nil {
				t.Errorf("case %d (%s): %q: stream err=%v, eval ok", i, name, src, streamErr)
				continue
			}
			if !sameItems(fast, ref) {
				t.Errorf("case %d (%s): %q\n  cursor: %s\n  oracle: %s", i, name, src, Serialize(fast), Serialize(ref))
			}
			if !sameItems(fast, streamed) {
				t.Errorf("case %d (%s): %q\n  eval:   %s\n  stream: %s", i, name, src, Serialize(fast), Serialize(streamed))
			}
		}
	}
	if compiled < 200 {
		t.Fatalf("only %d cases compiled; the sweep needs at least 200", compiled)
	}
}
