package xquery

import (
	"math"
	"sort"
	"time"
)

// This file is the physical expression layer of the cursor engine.
// Every AST expression kind is lowered (plan.go) into a pnode — a
// physical operator that can evaluate strictly (eval, the expr
// interface) and stream its result through a pull cursor (open).
// Streaming is what makes early-exit queries O(answer): FLWOR bindings,
// quantifier sources, filter bases and function arguments are pulled
// item by item, so a consumer that needs one item ((//w)[1], exists,
// some $x in …) stops the whole upstream pipeline after one pull.
//
// Two invariants keep the two evaluation routes equivalent:
//
//   - a fully drained cursor yields exactly the strict result (the
//     differential suites enforce node identity against the AST
//     interpreter oracle in eval.go);
//   - queries containing analyze-string run in strict mode
//     (Plan.strictOnly): analyze-string advances the evaluation's
//     active document to an overlay with a finer leaf partition, so
//     deferring a sibling expression past an analyze-string call could
//     change what it sees. popen makes every child boundary materialize
//     on first pull in that mode, which restores the interpreter's
//     evaluation order exactly.

// pnode is a lowered physical expression: an expr (strict evaluation,
// so lowered predicates plug into the shared predicate machinery) that
// can also stream.
type pnode interface {
	expr
	open(c *context) cursor
	pid() int
}

// pbase carries the explain/cardinality slot shared by all pnodes.
type pbase struct{ id int }

func (b *pbase) pid() int { return b.id }

// popen opens a child pnode for streaming. In strict-only mode
// (analyze-string present) the child instead materializes completely on
// its first pull, preserving interpreter evaluation order. Explain
// accounting wraps either route.
func popen(n pnode, c *context) cursor {
	if pl := c.st.plan; pl != nil && pl.strictOnly {
		return counted(c.st, n.pid(), &lazyCursor{n: n, c: c})
	}
	return counted(c.st, n.pid(), n.open(c))
}

// pEval materializes a child pnode (strict evaluation with explain
// accounting).
func pEval(n pnode, c *context) (Seq, error) {
	if c.st.explain != nil && n.pid() >= 0 {
		c.st.explain[n.pid()].calls++
		var start time.Time
		if c.st.timed {
			start = time.Now()
		}
		s, err := n.eval(c)
		if c.st.timed {
			c.st.explain[n.pid()].nanos += int64(time.Since(start))
		}
		if err == nil {
			c.st.explain[n.pid()].out += int64(len(s))
		}
		return s, err
	}
	return n.eval(c)
}

// lazyCursor evaluates a pnode strictly on first pull and streams the
// materialized result.
type lazyCursor struct {
	n   pnode
	c   *context
	cur cursor
}

func (lc *lazyCursor) next() (Item, bool, error) {
	if lc.cur == nil {
		s, err := lc.n.eval(lc.c)
		if err != nil {
			lc.cur = errCur(err)
		} else {
			lc.cur = seqCur(s)
		}
	}
	return lc.cur.next()
}

// thunkCursor defers cursor construction to the first pull.
type thunkCursor struct {
	f   func() (cursor, error)
	cur cursor
}

func (tc *thunkCursor) next() (Item, bool, error) {
	if tc.cur == nil {
		cur, err := tc.f()
		if err != nil {
			cur = errCur(err)
		}
		tc.cur = cur
	}
	return tc.cur.next()
}

// scalarOpen is the open implementation of operators whose results are
// single items or tiny sequences: stream the strict result lazily.
func scalarOpen(n pnode, c *context) cursor { return &lazyCursor{n: n, c: c} }

// streamWorthy reports whether opening n as a cursor can actually
// short-circuit work: its producing end is an operator that emits
// lazily (index/chain scans, downward axis steps, FLWOR pipelines,
// filters, ranges). For anything else the strict eval is both exact
// and cheaper than building a cursor chain.
func streamWorthy(n pnode) bool {
	switch x := n.(type) {
	case *pFLWOR, *pFilter, *pRange, *pSeq:
		return true
	case *pPath:
		if len(x.ops) == 0 {
			return false
		}
		switch last := x.ops[len(x.ops)-1]; last.kind {
		case opIndexScan, opChainScan:
			return true
		case opAxisStep:
			return streamableStepAxis(last.s.axis)
		}
	}
	return false
}

// strictMode reports whether the evaluation runs in interpreter order
// (analyze-string present): streaming shortcuts then only add cursor
// overhead on top of the materialization popen forces anyway.
func strictMode(c *context) bool {
	pl := c.st.plan
	return pl != nil && pl.strictOnly
}

// pEbv computes the effective boolean value of a child. Operators that
// can produce large sequences lazily are consumed through their streams
// (two pulls decide the ebv); everything else evaluates directly,
// avoiding the cursor wrappers on the hot predicate/where paths.
func pEbv(n pnode, c *context) (bool, error) {
	if streamWorthy(n) && !strictMode(c) {
		return drainBool(popen(n, c))
	}
	v, err := pEval(n, c)
	if err != nil {
		return false, err
	}
	return ebv(v)
}

// ---- leaves ----------------------------------------------------------------

type pLiteral struct {
	pbase
	v   Item
	seq Seq
}

func (e *pLiteral) eval(*context) (Seq, error) { return e.seq, nil }
func (e *pLiteral) open(c *context) cursor     { return seqCur(e.seq) }

type pRawText struct {
	pbase
	s string
}

func (e *pRawText) eval(*context) (Seq, error) { return singleton(e.s), nil }
func (e *pRawText) open(c *context) cursor     { return scalarOpen(e, c) }

type pVar struct {
	pbase
	name string
}

func (e *pVar) eval(c *context) (Seq, error) {
	v, ok := c.lookup(e.name)
	if !ok {
		return nil, errf("XPST0008", "undefined variable $%s", e.name)
	}
	return v, nil
}
func (e *pVar) open(c *context) cursor { return scalarOpen(e, c) }

type pContextItem struct{ pbase }

func (e *pContextItem) eval(c *context) (Seq, error) {
	if c.item == nil {
		return nil, errf("XPDY0002", "context item is undefined")
	}
	return singleton(c.item), nil
}
func (e *pContextItem) open(c *context) cursor { return scalarOpen(e, c) }

type pRoot struct{ pbase }

func (e *pRoot) eval(c *context) (Seq, error) {
	return singleton(c.st.rootFor(c.item)), nil
}
func (e *pRoot) open(c *context) cursor { return scalarOpen(e, c) }

// ---- sequences -------------------------------------------------------------

type pSeq struct {
	pbase
	items []pnode
}

func (e *pSeq) eval(c *context) (Seq, error) {
	var out Seq
	for _, it := range e.items {
		v, err := pEval(it, c)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}
func (e *pSeq) open(c *context) cursor { return e.stream(c) }

func (e *pSeq) stream(c *context) cursor {
	return &concatCursor{open: func(i int) (cursor, bool) {
		if i >= len(e.items) {
			return nil, false
		}
		return popen(e.items[i], c), true
	}}
}

type pRange struct {
	pbase
	lo, hi pnode
}

func (e *pRange) eval(c *context) (Seq, error) {
	lo, empty, err := evalNumber(c, e.lo, "range")
	if err != nil || empty {
		return nil, err
	}
	hi, empty, err := evalNumber(c, e.hi, "range")
	if err != nil || empty {
		return nil, err
	}
	return rangeSeq(c, lo, hi)
}
func (e *pRange) open(c *context) cursor { return e.stream(c) }

func (e *pRange) stream(c *context) cursor {
	rc := &rangeCursor{}
	return &thunkCursor{f: func() (cursor, error) {
		lo, empty, err := evalNumber(c, e.lo, "range")
		if err != nil || empty {
			return emptyCur, err
		}
		hi, empty, err := evalNumber(c, e.hi, "range")
		if err != nil || empty {
			return emptyCur, err
		}
		if lo != math.Trunc(lo) || hi != math.Trunc(hi) {
			return nil, errf("FORG0006", "range bounds must be integers")
		}
		rc.v, rc.hi = lo, hi
		return rc, nil
	}}
}

type rangeCursor struct{ v, hi float64 }

func (rc *rangeCursor) next() (Item, bool, error) {
	if rc.v > rc.hi {
		return nil, false, nil
	}
	v := rc.v
	rc.v++
	return v, true, nil
}

// ---- boolean connectives ---------------------------------------------------

type pOr struct {
	pbase
	a, b pnode
}

func (e *pOr) eval(c *context) (Seq, error) {
	ba, err := pEbv(e.a, c)
	if err != nil {
		return nil, err
	}
	if ba {
		return seqTrue, nil
	}
	bb, err := pEbv(e.b, c)
	return singletonBool(bb), err
}
func (e *pOr) open(c *context) cursor { return scalarOpen(e, c) }

type pAnd struct {
	pbase
	a, b pnode
}

func (e *pAnd) eval(c *context) (Seq, error) {
	ba, err := pEbv(e.a, c)
	if err != nil {
		return nil, err
	}
	if !ba {
		return seqFalse, nil
	}
	bb, err := pEbv(e.b, c)
	return singletonBool(bb), err
}
func (e *pAnd) open(c *context) cursor { return scalarOpen(e, c) }

// ---- comparisons and arithmetic --------------------------------------------

type pCmp struct {
	pbase
	op   string
	kind cmpKind
	a, b pnode
}

func (e *pCmp) eval(c *context) (Seq, error) {
	va, err := pEval(e.a, c)
	if err != nil {
		return nil, err
	}
	vb, err := pEval(e.b, c)
	if err != nil {
		return nil, err
	}
	return evalCmp(c, e.op, e.kind, va, vb)
}
func (e *pCmp) open(c *context) cursor { return scalarOpen(e, c) }

type pArith struct {
	pbase
	op   string
	a, b pnode
}

func (e *pArith) eval(c *context) (Seq, error) {
	x, empty, err := evalNumber(c, e.a, "arithmetic")
	if err != nil || empty {
		return nil, err
	}
	y, empty, err := evalNumber(c, e.b, "arithmetic")
	if err != nil || empty {
		return nil, err
	}
	return evalArith(e.op, x, y)
}
func (e *pArith) open(c *context) cursor { return scalarOpen(e, c) }

type pUnary struct {
	pbase
	x pnode
}

func (e *pUnary) eval(c *context) (Seq, error) {
	x, empty, err := evalNumber(c, e.x, "unary minus")
	if err != nil || empty {
		return nil, err
	}
	return singleton(-x), nil
}
func (e *pUnary) open(c *context) cursor { return scalarOpen(e, c) }

// ---- node-set operators ----------------------------------------------------

type pUnion struct {
	pbase
	a, b pnode
}

func (e *pUnion) eval(c *context) (Seq, error) {
	va, err := pEval(e.a, c)
	if err != nil {
		return nil, err
	}
	vb, err := pEval(e.b, c)
	if err != nil {
		return nil, err
	}
	return evalUnion(va, vb)
}
func (e *pUnion) open(c *context) cursor { return scalarOpen(e, c) }

type pIntersect struct {
	pbase
	except bool
	a, b   pnode
}

func (e *pIntersect) eval(c *context) (Seq, error) {
	va, err := pEval(e.a, c)
	if err != nil {
		return nil, err
	}
	vb, err := pEval(e.b, c)
	if err != nil {
		return nil, err
	}
	return evalIntersect(va, vb, e.except)
}
func (e *pIntersect) open(c *context) cursor { return scalarOpen(e, c) }

// ---- control flow ----------------------------------------------------------

type pIf struct {
	pbase
	cond, then, els pnode
}

func (e *pIf) eval(c *context) (Seq, error) {
	b, err := pEbv(e.cond, c)
	if err != nil {
		return nil, err
	}
	if b {
		return pEval(e.then, c)
	}
	return pEval(e.els, c)
}

func (e *pIf) open(c *context) cursor {
	return &thunkCursor{f: func() (cursor, error) {
		b, err := pEbv(e.cond, c)
		if err != nil {
			return nil, err
		}
		if b {
			return popen(e.then, c), nil
		}
		return popen(e.els, c), nil
	}}
}

type pQuant struct {
	pbase
	every bool
	names []string
	srcs  []pnode
	sat   pnode
}

func (e *pQuant) eval(c *context) (Seq, error) {
	b, err := e.truth(c, 0)
	if err != nil {
		return nil, err
	}
	return singletonBool(b), nil
}
func (e *pQuant) open(c *context) cursor { return scalarOpen(e, c) }

// truth walks the quantifier bindings with streaming sources: "some"
// stops at the first satisfying tuple, "every" at the first failing
// one, so the source pipelines are pulled no further than the answer
// requires.
func (e *pQuant) truth(c *context, i int) (bool, error) {
	if i == len(e.names) {
		return pEbv(e.sat, c)
	}
	if !streamWorthy(e.srcs[i]) || strictMode(c) {
		v, err := pEval(e.srcs[i], c)
		if err != nil {
			return false, err
		}
		for _, it := range v {
			b, err := e.truth(c.bind(e.names[i], singleton(it)), i+1)
			if err != nil {
				return false, err
			}
			if e.every && !b {
				return false, nil
			}
			if !e.every && b {
				return true, nil
			}
		}
		return e.every, nil
	}
	src := popen(e.srcs[i], c)
	for {
		if err := c.st.checkCancel(); err != nil {
			return false, err
		}
		it, ok, err := src.next()
		if err != nil {
			return false, err
		}
		if !ok {
			return e.every, nil
		}
		b, err := e.truth(c.bind(e.names[i], singleton(it)), i+1)
		if err != nil {
			return false, err
		}
		if e.every && !b {
			return false, nil
		}
		if !e.every && b {
			return true, nil
		}
	}
}

// ---- FLWOR -----------------------------------------------------------------

type pClause struct {
	kind    clauseKind
	name    string
	posName string
	src     pnode
}

type pOrderSpec struct {
	key           pnode
	descending    bool
	emptyGreatest bool
	spec          orderSpec // for compareOrderKeys
}

type pFLWOR struct {
	pbase
	clauses []pClause
	order   []pOrderSpec
	ret     pnode
}

// eval is the strict route: the recursive tuple walk of the
// interpreter, with streaming engaged only below (inside the lowered
// clause sources and return). Full materialization has no early exit
// to exploit, and the plain recursion beats the cursor machine on
// per-tuple overhead.
func (f *pFLWOR) eval(c *context) (Seq, error) {
	if len(f.order) > 0 {
		tups, err := f.sortedTuples(c)
		if err != nil {
			return nil, err
		}
		var out Seq
		for _, t := range tups {
			v, err := pEval(f.ret, t.c)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	}
	var out Seq
	err := f.runBindings(c, 0, func(c2 *context) error {
		v, err := pEval(f.ret, c2)
		if err != nil {
			return err
		}
		out = append(out, v...)
		return nil
	})
	return out, err
}

func (f *pFLWOR) open(c *context) cursor { return f.stream(c) }

func (f *pFLWOR) stream(c *context) cursor {
	if len(f.order) > 0 {
		return f.streamOrdered(c)
	}
	return f.clauseCursor(c, 0)
}

// clauseCursor streams the tuple pipeline from clause idx onward: let
// and where clauses resolve immediately (they are per-tuple scalars),
// for clauses pull their binding sequences lazily, so the return clause
// of the first tuple runs before the second binding is even computed.
func (f *pFLWOR) clauseCursor(c *context, idx int) cursor {
	for idx < len(f.clauses) {
		cl := &f.clauses[idx]
		switch cl.kind {
		case clauseLet:
			v, err := pEval(cl.src, c)
			if err != nil {
				return errCur(err)
			}
			c = c.bind(cl.name, v)
		case clauseWhere:
			b, err := pEbv(cl.src, c)
			if err != nil {
				return errCur(err)
			}
			if !b {
				return emptyCur
			}
		default:
			return &forCursor{f: f, c: c, cl: cl, idx: idx}
		}
		idx++
	}
	return popen(f.ret, c)
}

// forCursor streams one for clause: a lazily opened binding source, one
// inner tuple cursor at a time.
type forCursor struct {
	f     *pFLWOR
	c     *context
	cl    *pClause
	idx   int
	src   cursor
	inner cursor
	i     int
}

func (fc *forCursor) next() (Item, bool, error) {
	for {
		if err := fc.c.st.checkCancel(); err != nil {
			return nil, false, err
		}
		if fc.inner != nil {
			it, ok, err := fc.inner.next()
			if err != nil || ok {
				return it, ok, err
			}
			fc.inner = nil
		}
		if fc.src == nil {
			fc.src = popen(fc.cl.src, fc.c)
		}
		it, ok, err := fc.src.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		fc.i++
		c2 := fc.c.bind(fc.cl.name, singleton(it))
		if fc.cl.posName != "" {
			c2 = c2.bind(fc.cl.posName, singleton(float64(fc.i)))
		}
		fc.inner = fc.f.clauseCursor(c2, fc.idx+1)
	}
}

// runBindings walks the tuple pipeline strictly: binding sequences are
// materialized before iteration (the strict consumer needs every tuple
// anyway).
func (f *pFLWOR) runBindings(c *context, idx int, emit func(*context) error) error {
	if idx == len(f.clauses) {
		return emit(c)
	}
	cl := &f.clauses[idx]
	switch cl.kind {
	case clauseLet:
		v, err := pEval(cl.src, c)
		if err != nil {
			return err
		}
		return f.runBindings(c.bind(cl.name, v), idx+1, emit)
	case clauseWhere:
		b, err := pEbv(cl.src, c)
		if err != nil {
			return err
		}
		if !b {
			return nil
		}
		return f.runBindings(c, idx+1, emit)
	}
	v, err := pEval(cl.src, c)
	if err != nil {
		return err
	}
	for i, it := range v {
		if err := c.st.checkCancel(); err != nil {
			return err
		}
		c2 := c.bind(cl.name, singleton(it))
		if cl.posName != "" {
			c2 = c2.bind(cl.posName, singleton(float64(i+1)))
		}
		if err := f.runBindings(c2, idx+1, emit); err != nil {
			return err
		}
	}
	return nil
}

// flworTup is one order-by tuple: the bound context and its atomized
// sort keys.
type flworTup struct {
	c    *context
	keys []Seq
}

// sortedTuples materializes and sorts the tuple stream by the order-by
// keys (order-by needs every tuple before the first return evaluation).
func (f *pFLWOR) sortedTuples(c *context) ([]flworTup, error) {
	var tups []flworTup
	err := f.runBindings(c, 0, func(c2 *context) error {
		keys := make([]Seq, len(f.order))
		for i := range f.order {
			v, err := pEval(f.order[i].key, c2)
			if err != nil {
				return err
			}
			keys[i] = c2.atomizeSeq(v)
		}
		tups = append(tups, flworTup{c: c2, keys: keys})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(tups, func(i, j int) bool {
		for k := range f.order {
			o := &f.order[k]
			cres, ok := compareOrderKeys(o.spec, tups[i].keys[k], tups[j].keys[k])
			if !ok || cres == 0 {
				continue
			}
			if o.descending {
				return cres > 0
			}
			return cres < 0
		}
		return false
	})
	return tups, nil
}

// streamOrdered sorts the tuples, then streams the return clause tuple
// by tuple (the returns stay lazy; only the binding tuples are
// materialized).
func (f *pFLWOR) streamOrdered(c *context) cursor {
	return &thunkCursor{f: func() (cursor, error) {
		tups, err := f.sortedTuples(c)
		if err != nil {
			return nil, err
		}
		return &concatCursor{open: func(i int) (cursor, bool) {
			if i >= len(tups) {
				return nil, false
			}
			return popen(f.ret, tups[i].c), true
		}}, nil
	}}
}

// ---- function calls --------------------------------------------------------

type pCall struct {
	pbase
	name string
	fn   *builtin
	args []pnode
}

func (e *pCall) eval(c *context) (Seq, error) {
	// Streaming special cases: the aggregate-style builtins whose
	// results depend on at most the first item or two (exists, empty,
	// boolean, not) or only on the item count (count) consume their
	// argument through a cursor, so index scans and FLWOR pipelines
	// below them stop as soon as the answer is determined.
	switch e.fn {
	case bExists, bEmpty:
		if streamWorthy(e.args[0]) && !strictMode(c) {
			_, ok, err := popen(e.args[0], c).next()
			if err != nil {
				return nil, err
			}
			return singletonBool(ok == (e.fn == bExists)), nil
		}
	case bNot, bBoolean:
		b, err := pEbv(e.args[0], c)
		if err != nil {
			return nil, err
		}
		return singletonBool(b == (e.fn == bBoolean)), nil
	case bCount:
		if streamWorthy(e.args[0]) && !strictMode(c) {
			cur := popen(e.args[0], c)
			n := 0
			for {
				if err := c.st.checkCancel(); err != nil {
					return nil, err
				}
				_, ok, err := cur.next()
				if err != nil {
					return nil, err
				}
				if !ok {
					return singleton(float64(n)), nil
				}
				n++
			}
		}
	}
	if len(e.args) == 0 {
		return e.fn.fn(c, nil)
	}
	args := make([]Seq, len(e.args))
	for i, a := range e.args {
		v, err := pEval(a, c)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return e.fn.fn(c, args)
}
func (e *pCall) open(c *context) cursor { return scalarOpen(e, c) }

// Streaming-special builtins, resolved by identity after funcs.go has
// registered them (package init functions run in file order, and a
// package-level var would capture the still-empty map).
var bExists, bEmpty, bNot, bBoolean, bCount, bAnalyze *builtin

func init() {
	bExists = builtins["exists"]
	bEmpty = builtins["empty"]
	bNot = builtins["not"]
	bBoolean = builtins["boolean"]
	bCount = builtins["count"]
	bAnalyze = builtins["analyze-string"]
}

// ---- filters ---------------------------------------------------------------

type pFilter struct {
	pbase
	base  pnode
	preds []pnode
	// sized marks predicates that call last(): their position semantics
	// need the full base cardinality, so the stream materializes there.
	sized []bool
}

func (e *pFilter) eval(c *context) (Seq, error) { return drain(c, e.stream(c)) }
func (e *pFilter) open(c *context) cursor       { return e.stream(c) }

func (e *pFilter) stream(c *context) cursor {
	cur := popen(e.base, c)
	for i, pr := range e.preds {
		if f, ok := constNumPred(pr); ok {
			cur = &constPosCursor{inner: cur, c: c, want: f}
			continue
		}
		if e.sized[i] {
			// last() ahead: materialize here and finish strictly.
			rest := make([]expr, len(e.preds)-i)
			for k, p := range e.preds[i:] {
				rest[k] = p
			}
			inner := cur
			return &thunkCursor{f: func() (cursor, error) {
				items, err := drain(c, inner)
				if err != nil {
					return nil, err
				}
				items, err = applyPredicatesInPlace(c, append(Seq(nil), items...), rest)
				if err != nil {
					return nil, err
				}
				return seqCur(items), nil
			}}
		}
		cur = &predCursor{inner: cur, pr: pr, c: c}
	}
	return cur
}

// constPosCursor implements a constant numeric predicate [k]: skip k-1
// items, emit the k-th, and stop pulling — the early-exit shape of
// (//w)[1].
type constPosCursor struct {
	inner cursor
	c     *context
	want  float64
	done  bool
}

func (pc *constPosCursor) next() (Item, bool, error) {
	if pc.done {
		return nil, false, nil
	}
	pc.done = true
	k := int(pc.want)
	if float64(k) != pc.want || k < 1 {
		return nil, false, nil
	}
	for i := 1; ; i++ {
		if err := pc.c.st.checkCancel(); err != nil {
			return nil, false, err
		}
		it, ok, err := pc.inner.next()
		if err != nil || !ok {
			return nil, false, err
		}
		if i == k {
			return it, true, nil
		}
	}
}

// predCursor filters a stream by one predicate with incremental
// positions. size is the known candidate count (index segments, where
// run lengths fix it upfront) or 0 for position-only predicates whose
// base cardinality is never consulted (pFilter rejects last() here).
// The scratch context is embedded so per-item evaluation allocates
// nothing.
type predCursor struct {
	inner  cursor
	pr     expr
	c      *context
	c2     context
	inited bool
	pos    int
	size   int
}

func (pc *predCursor) next() (Item, bool, error) {
	if !pc.inited {
		pc.c2 = *pc.c
		pc.c2.size = pc.size
		pc.inited = true
	}
	for {
		if err := pc.c.st.checkCancel(); err != nil {
			return nil, false, err
		}
		it, ok, err := pc.inner.next()
		if err != nil || !ok {
			return nil, false, err
		}
		pc.pos++
		pc.c2.item, pc.c2.pos = it, pc.pos
		v, err := evalMaybeLowered(&pc.c2, pc.pr)
		if err != nil {
			return nil, false, err
		}
		keep := false
		if len(v) == 1 {
			if f, ok := v[0].(float64); ok {
				keep = float64(pc.pos) == f
			} else if keep, err = ebv(v); err != nil {
				return nil, false, err
			}
		} else if keep, err = ebv(v); err != nil {
			return nil, false, err
		}
		if keep {
			return it, true, nil
		}
	}
}

// ---- constructors ----------------------------------------------------------

type pElem struct {
	pbase
	name    string
	attrs   []attrTpl // parts hold lowered pnodes
	content []expr    // lowered pnodes (or pRawText)
}

func (e *pElem) eval(c *context) (Seq, error) {
	return buildElement(c, e.name, e.attrs, e.content)
}
func (e *pElem) open(c *context) cursor { return scalarOpen(e, c) }

type pCompCtor struct {
	pbase
	kind     byte
	name     string
	nameExpr pnode // nil when the name is literal
	content  pnode // nil for empty content
}

func (e *pCompCtor) eval(c *context) (Seq, error) {
	var nameExpr expr
	if e.nameExpr != nil {
		nameExpr = e.nameExpr
	}
	name, err := resolveCtorName(c, e.name, nameExpr)
	if err != nil {
		return nil, err
	}
	var content Seq
	if e.content != nil {
		if content, err = pEval(e.content, c); err != nil {
			return nil, err
		}
	}
	return buildComputed(e.kind, name, content)
}
func (e *pCompCtor) open(c *context) cursor { return scalarOpen(e, c) }

// ---- small local helpers ---------------------------------------------------

// usesLast reports whether the expression subtree contains a last()
// call (conservatively including nested scopes, which merely disables a
// streaming shortcut).
func usesLast(e expr) bool {
	if call, ok := e.(*callExpr); ok && call.name == "last" && len(call.args) == 0 {
		return true
	}
	found := false
	visitChildren(e, func(ch expr) {
		if !found && usesLast(ch) {
			found = true
		}
	})
	return found
}

// hasAnalyzeString reports whether the expression subtree calls
// analyze-string (which forces strict evaluation order, see the file
// comment).
func hasAnalyzeString(e expr) bool {
	if call, ok := e.(*callExpr); ok && call.fn == bAnalyze {
		return true
	}
	found := false
	visitChildren(e, func(ch expr) {
		if !found && hasAnalyzeString(ch) {
			found = true
		}
	})
	return found
}

// describeLiteral renders a literal for EXPLAIN output.
func describeLiteral(v Item) string {
	if s, ok := v.(string); ok {
		if r := []rune(s); len(r) > 20 {
			s = string(r[:20]) + "…"
		}
		return `"` + s + `"`
	}
	return stringValue(v)
}
