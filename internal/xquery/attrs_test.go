package xquery_test

import (
	"strings"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/xmlparse"
	"mhxquery/internal/xquery"
)

// attrDoc is a two-hierarchy document whose elements carry attributes,
// exercising the attribute axis across the engine.
func attrDoc(t *testing.T) *core.Document {
	t.Helper()
	a, err := xmlparse.Parse(
		`<r><zone type="recto" n="1">abcd</zone><zone type="verso" n="2">efgh</zone></r>`,
		xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := xmlparse.Parse(
		`<r>a<seg kind="greek">bcde</seg><seg kind="latin">fg</seg>h</r>`,
		xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Build([]core.NamedTree{
		{Name: "layout", Root: a},
		{Name: "lang", Root: b},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttributeAxisQueries(t *testing.T) {
	d := attrDoc(t)
	cases := []struct{ name, src, want string }{
		{"abbrev attr", `string(/descendant::zone[1]/@type)`, "recto"},
		{"explicit axis", `string(/descendant::zone[2]/attribute::n)`, "2"},
		{"attr wildcard count", `count(/descendant::zone[1]/@*)`, "2"},
		{"attr in predicate", `string(/descendant::zone[@type = 'verso'])`, "efgh"},
		{"attr missing", `count(/descendant::zone[1]/@missing)`, "0"},
		{"attr comparison number", `count(/descendant::zone[@n > 1])`, "1"},
		{"attr name()", `name(/descendant::zone[1]/@type)`, "type"},
		{"attr string value in constructor", `<z t="{/descendant::zone[1]/@type}"/>`, `<z t="recto"/>`},
		// seg "bcde" [1,5) staggers across the zone boundary at 4; seg "fg"
		// [5,7) is properly contained in zone 2.
		{"attrs across hierarchies", `string(/descendant::seg[overlapping::zone]/@kind)`, "greek"},
		{"copy element keeps attrs", `serialize(<wrap>{/descendant::seg[1]}</wrap>)`,
			`<wrap><seg kind="greek">bcde</seg></wrap>`},
		{"attr of overlap partner", `string(/descendant::zone[2]/overlapping::seg/@kind)`, "greek"},
		{"predicate on both", `count(/descendant::seg[@kind = 'latin'][xancestor::zone[@type = 'verso']])`, "1"},
	}
	for _, tc := range cases {
		got, err := xquery.EvalString(d, tc.src)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestAttributesInSerializedHierarchy(t *testing.T) {
	d := attrDoc(t)
	xml, err := d.Serialize("layout")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, `type="recto"`) || !strings.Contains(xml, `n="2"`) {
		t.Errorf("attributes lost in serialization: %s", xml)
	}
}

func TestParserDepthGuard(t *testing.T) {
	deep := strings.Repeat("(", 20001) + "1" + strings.Repeat(")", 20001)
	_, err := xquery.Compile(deep)
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Errorf("depth guard: err = %v", err)
	}
	// A reasonable depth still parses.
	ok := strings.Repeat("(", 500) + "1" + strings.Repeat(")", 500)
	if _, err := xquery.Compile(ok); err != nil {
		t.Errorf("moderate nesting rejected: %v", err)
	}
}
