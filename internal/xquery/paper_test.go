package xquery_test

import (
	"testing"

	"mhxquery/internal/corpus"
	"mhxquery/internal/xquery"
)

// This file contains the golden reproductions of Section 4 of the paper:
// every query the paper prints, with the outputs it prints (typo-corrected
// as documented in DESIGN.md §4 and EXPERIMENTS.md).

func evalStr(t *testing.T, src string) string {
	t.Helper()
	d := corpus.MustBoethius()
	out, err := xquery.EvalString(d, src)
	if err != nil {
		t.Fatalf("eval: %v\nquery: %s", err, src)
	}
	return out
}

// QueryI1 is the paper's Query I.1: "Find and display lines containing
// the word singallice." The word is split across both physical lines, so
// only the overlapping axis finds it in either.
const QueryI1 = `for $l in /descendant::line
  [xdescendant::w[string(.) = 'singallice'] or overlapping::w[string(.) = 'singallice']]
return string($l)`

func TestPaperQueryI1(t *testing.T) {
	got := evalStr(t, QueryI1)
	// The paper prints the two line strings run together across its own
	// line break: "gesceaftum unawendendne sin" + "gallice sibbe gecynde Da".
	want := "gesceaftum unawendendne sin gallice sibbe gecynde þa"
	if got != want {
		t.Errorf("I.1 = %q, want %q", got, want)
	}
}

// QueryI2Strict is the paper's Query I.2 exactly as printed (typo-fixed):
// leaves under both a <w> and a <dmg> are highlighted.
const QueryI2Strict = `for $l in /descendant::line[xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return ( for $leaf in $l/descendant::leaf() return
   if ($leaf[ancestor::w and ancestor::dmg]) then <b>{$leaf}</b> else $leaf
 , <br/> )`

func TestPaperQueryI2Strict(t *testing.T) {
	got := evalStr(t, QueryI2Strict)
	// Strict reading: only the actually damaged letters inside words are
	// bold ("w" in unawendendne; "de" of gecynde; "þa").
	want := "gesceaftum una<b>w</b>endendne sin<br/>gallice sibbe gecyn<b>de</b> <b>þa</b><br/>"
	if got != want {
		t.Errorf("I.2 strict = %q, want %q", got, want)
	}
}

// QueryI2WordLevel highlights whole damaged words, leaf by leaf — this is
// the output the paper actually prints for I.2.
const QueryI2WordLevel = `for $l in /descendant::line[xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return ( for $leaf in $l/descendant::leaf() return
   if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]) then <b>{$leaf}</b> else $leaf
 , <br/> )`

func TestPaperQueryI2WordLevel(t *testing.T) {
	got := evalStr(t, QueryI2WordLevel)
	// Paper prints: gesceaftum <b>una</b><b>w</b><b>endendne</b>sin<br/>
	//               gallice sibbe <b>gecyn</b><b>de</b><b>Da</b><br/>
	// (with the inter-word spaces typeset away); our output keeps the
	// space leaves, which are not part of any <w>.
	want := "gesceaftum <b>una</b><b>w</b><b>endendne</b> sin<br/>gallice sibbe <b>gecyn</b><b>de</b> <b>þa</b><br/>"
	if got != want {
		t.Errorf("I.2 word-level = %q, want %q", got, want)
	}
}

// TestPaperExample1 reproduces Definition 4's Example 1 byte-exactly:
// analyze-string(<w>unawendendne</w>, ".*un<a>a</a>we.*") yields
// <res><m>un<a>a</a>we</m>ndendne</res>.
func TestPaperExample1(t *testing.T) {
	got := evalStr(t, `for $w in /descendant::w[string(.) = 'unawendendne']
return serialize(analyze-string($w, ".*un<a>a</a>we.*"))`)
	want := `<res><m>un<a>a</a>we</m>ndendne</res>`
	if got != want {
		t.Errorf("Example 1 = %q, want %q", got, want)
	}
}

// QueryII1 is the paper's Query II.1 (typo-corrected: `for`, the
// matches() parenthesis, iterating child::node() with a self::m test —
// the printed `$n/parent::m` tests the parent of a child of $res, which
// is never <m>).
const QueryII1 = `for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $n in $res/child::node()
  return if ($n[self::m]) then <b>{string($n)}</b> else string($n)
  ,
  <br/>
)`

func TestPaperQueryII1(t *testing.T) {
	got := evalStr(t, QueryII1)
	want := "<b>unawe</b>ndendne<br/>" // byte-exact paper output
	if got != want {
		t.Errorf("II.1 = %q, want %q", got, want)
	}
}

// QueryIII1MatchLevel highlights whole matches and italicizes matches that
// were (partly) restored — this granularity reproduces the paper's printed
// output for III.1 byte-exactly. The hierarchy-qualified name test
// res('restoration') disambiguates the editorial <res> markup from the
// <res> wrapper that analyze-string itself creates (the paper overloads
// the name; see DESIGN.md §3).
const QueryIII1MatchLevel = `for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $n in $res/child::node()
  return
    if ($n[self::m][xancestor::res('restoration') or xdescendant::res('restoration') or overlapping::res('restoration')])
    then <i><b>{string($n)}</b></i>
    else <b>{string($n)}</b>
  ,
  <br/>
)`

func TestPaperQueryIII1MatchLevel(t *testing.T) {
	got := evalStr(t, QueryIII1MatchLevel)
	want := "<i><b>unawe</b></i><b>ndendne</b><br/>" // byte-exact paper output
	if got != want {
		t.Errorf("III.1 match-level = %q, want %q", got, want)
	}
}

// QueryIII1LeafLevel is the formal reading of the printed query: iterate
// the leaves of the analyze-string result, italicize+bold leaves inside
// both <m> and the editorial restoration, bold the remaining match
// leaves. The restoration boundary (after "una") and the damage boundary
// (the letter "w") split the match into finer leaves than the paper's
// idealized output shows.
const QueryIII1LeafLevel = `for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $leaf in $res/descendant::leaf()
  return
    if ($leaf/xancestor::m and $leaf/xancestor::res('restoration')) then <i><b>{$leaf}</b></i>
    else if ($leaf/xancestor::m) then <b>{$leaf}</b>
    else string($leaf)
  ,
  <br/>
)`

func TestPaperQueryIII1LeafLevel(t *testing.T) {
	got := evalStr(t, QueryIII1LeafLevel)
	want := "<i><b>una</b></i><b>w</b><b>e</b>ndendne<br/>"
	if got != want {
		t.Errorf("III.1 leaf-level = %q, want %q", got, want)
	}
}

// TestTempHierarchyIsEvaluationLocal checks Definition 4(5): the
// temporary hierarchies exist only during one evaluation.
func TestTempHierarchyIsEvaluationLocal(t *testing.T) {
	d := corpus.MustBoethius()
	q := xquery.MustCompile(`let $r := analyze-string(/descendant::w[1], "ge") return name($r)`)
	if _, err := q.Eval(d); err != nil {
		t.Fatal(err)
	}
	if d.HierarchyByName("rest") != nil {
		t.Fatal("temporary hierarchy leaked into the base document")
	}
	// And the same query evaluates again cleanly (no "rest already
	// registered" error).
	if _, err := q.Eval(d); err != nil {
		t.Fatalf("second evaluation: %v", err)
	}
}

// TestAnalyzeStringTwiceInOneQuery checks that multiple temp hierarchies
// coexist within one evaluation (rest, rest2, …).
func TestAnalyzeStringTwiceInOneQuery(t *testing.T) {
	got := evalStr(t, `for $w in /descendant::w[position() <= 2]
return (
  let $r := analyze-string($w, "n")
  return string(count($r/descendant::m))
, " ")`)
	// gesceaftum has no "n"; unawendendne has four.
	want := "0   4  "
	if got != want {
		t.Errorf("two analyze-string = %q, want %q", got, want)
	}
}
