package xquery

// The update half of the differential mutation sweep (the core half
// lives in core/update_test.go): seeded random update-expression
// sequences over generated corpora. After every successful batch,
//
//	(a) each hierarchy's incrementally maintained name index must be
//	    byte-identical to a from-scratch rebuild, and
//	(b) querying the mutated document must be node-identical to
//	    querying its serialize→reparse round-trip, for the paper
//	    queries I1–III* and seeded random path shapes.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
	"mhxquery/internal/xmlparse"
)

// paperSweepQueries are the paper's query shapes (I1, I2, II1, III1) as
// used by the benchmark suite; on generated corpora they may select
// nothing, which is still a comparison point.
var paperSweepQueries = []string{
	`for $l in /descendant::line
	  [xdescendant::w[string(.) = 'singallice'] or overlapping::w[string(.) = 'singallice']]
	return string($l)`,
	`for $l in /descendant::line[xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
	return ( for $leaf in $l/descendant::leaf() return
	   if ($leaf[ancestor::w and ancestor::dmg]) then <b>{$leaf}</b> else $leaf
	 , <br/> )`,
	`for $w in /descendant::w[matches(string(.), ".*unawe.*")]
	return (
	  let $res := analyze-string($w, ".*unawe.*")
	  for $n in $res/child::node()
	  return if ($n[self::m]) then <b>{string($n)}</b> else string($n)
	  ,
	  <br/>
	)`,
	`for $w in /descendant::w[matches(string(.), ".*unawe.*")]
	return (
	  let $res := analyze-string($w, ".*unawe.*")
	  for $n in $res/child::node()
	  return
	    if ($n[self::m][xancestor::res('restoration') or xdescendant::res('restoration') or overlapping::res('restoration')])
	    then <i><b>{string($n)}</b></i>
	    else <b>{string($n)}</b>
	  ,
	  <br/>
	)`,
}

// reparseRef rebuilds a document from its own hierarchy serializations.
func reparseRef(t *testing.T, d *core.Document) *core.Document {
	t.Helper()
	var trees []core.NamedTree
	for _, name := range d.HierarchyNames() {
		xml, err := d.Serialize(name)
		if err != nil {
			t.Fatalf("serialize %s: %v", name, err)
		}
		root, err := xmlparse.Parse(xml, xmlparse.Options{})
		if err != nil {
			t.Fatalf("reparse %s: %v\n%s", name, err, xml)
		}
		trees = append(trees, core.NamedTree{Name: name, Root: root})
	}
	ref, err := core.Build(trees)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return ref
}

// nodeIdentical compares result sequences across two documents: atoms
// by value, nodes by their full structural identity (kind, name,
// hierarchy, span, preorder position).
func nodeIdentical(a, b Seq) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		na, aok := a[i].(*dom.Node)
		nb, bok := b[i].(*dom.Node)
		if aok != bok {
			return false
		}
		if !aok {
			if a[i] != b[i] {
				return false
			}
			continue
		}
		if na.Kind != nb.Kind || na.Name != nb.Name || na.Hier != nb.Hier ||
			na.Start != nb.Start || na.End != nb.End ||
			na.Ord != nb.Ord || na.HierIndex != nb.HierIndex {
			return false
		}
		// Constructed nodes (result trees) have no structural identity;
		// compare their serialization.
		if na.Hier == "" && na.Kind == dom.Element && dom.XML(na) != dom.XML(nb) {
			return false
		}
	}
	return true
}

// randomWord picks the k-th w element of d's structure hierarchy, or
// nil.
func randomWord(d *core.Document, r *rand.Rand) (n *dom.Node, pos int) {
	h := d.HierarchyByName("structure")
	if h == nil {
		return nil, 0
	}
	var ws []*dom.Node
	for _, m := range h.Nodes {
		if m.Kind == dom.Element && m.Name == "w" {
			ws = append(ws, m)
		}
	}
	if len(ws) == 0 {
		return nil, 0
	}
	i := r.Intn(len(ws))
	return ws[i], i + 1
}

// genUpdate emits one random update-expression source for d. It may
// legitimately fail to apply (conflicting random edits).
func genUpdate(d *core.Document, r *rand.Rand, seq, k int) string {
	names := d.HierarchyNames()
	switch r.Intn(8) {
	case 0:
		return fmt.Sprintf(`rename node (//w)[%d] as "n%d_%d"`, 1+r.Intn(6), seq, k)
	case 1:
		return fmt.Sprintf(`delete node (//%s)[%d]`, []string{"w", "dmg", "res", "vline", "line"}[r.Intn(5)], 1+r.Intn(4))
	case 2:
		return fmt.Sprintf(`insert node i%d_%d into (//vline)[%d]`, seq, k, 1+r.Intn(3))
	case 3:
		side := "before"
		if r.Intn(2) == 0 {
			side = "after"
		}
		return fmt.Sprintf(`insert node p%d_%d %s (//w)[%d]`, seq, k, side, 1+r.Intn(6))
	case 4:
		// Same-length replacement of a word (always boundary-safe when
		// the word has no interior markup; may legitimately fail
		// otherwise — no: same length is always allowed).
		w, pos := randomWord(d, r)
		if w == nil {
			return `delete node (//dmg)[1]`
		}
		repl := make([]byte, w.End-w.Start)
		for i := range repl {
			repl[i] = byte('a' + r.Intn(6))
		}
		return fmt.Sprintf(`replace value of node (//w)[%d] with "%s"`, pos, repl)
	case 5:
		// Length-changing replacement: often crosses a boundary and
		// fails; that error path is part of the sweep.
		w, pos := randomWord(d, r)
		if w == nil {
			return `delete node (//res)[1]`
		}
		return fmt.Sprintf(`replace value of node (//w)[%d] with "%s"`, pos, strings.Repeat("z", 1+r.Intn(5)))
	case 6:
		return fmt.Sprintf(`insert hierarchy "sweep%d_%d" from analyze-string(/, "%s")/child::m`,
			seq, k, []string{"se", "ond", "e", "wi"}[r.Intn(4)])
	default:
		return fmt.Sprintf(`delete hierarchy "%s"`, names[r.Intn(len(names))])
	}
}

// TestUpdateDifferentialSweep is the ≥300-sequence language-level
// sweep.
func TestUpdateDifferentialSweep(t *testing.T) {
	pq := make([]*Query, len(paperSweepQueries))
	for i, src := range paperSweepQueries {
		pq[i] = MustCompile(src)
	}
	g := &qgen{r: rand.New(rand.NewSource(20260730))}

	const sequences = 300
	applied, failed := 0, 0
	for seq := 0; seq < sequences; seq++ {
		r := rand.New(rand.NewSource(int64(77000 + seq)))
		c := corpus.Generate(corpus.Params{Seed: uint64(40 + seq%11), Words: 16, DamageRate: 0.25, RestoreRate: 0.25})
		d, err := c.Document()
		if err != nil {
			t.Fatal(err)
		}
		// Warm every index so the incremental patch path is what the
		// sweep exercises.
		for _, h := range d.Hiers {
			h.IndexRuns()
		}
		// One batch of 1–3 primitives.
		var prims []string
		addHierUsed := false
		for k := 0; k < 1+r.Intn(3); k++ {
			p := genUpdate(d, r, seq, k)
			if strings.HasPrefix(p, "insert hierarchy") {
				if addHierUsed {
					continue // the <m> vocabulary can only join once
				}
				addHierUsed = true
			}
			prims = append(prims, p)
		}
		src := strings.Join(prims, ", ")
		u, err := CompileUpdate(src)
		if err != nil {
			t.Fatalf("seq %d: generated update does not parse: %q: %v", seq, src, err)
		}
		nd, _, err := u.Apply(d)
		if err != nil {
			// Conflicting random batches fail atomically, with a coded
			// error.
			if xe, ok := err.(*Error); !ok || xe.Code == "" {
				t.Fatalf("seq %d: %q: uncoded error %v", seq, src, err)
			}
			failed++
			continue
		}
		applied++

		// (a) incremental index maintenance == from-scratch rebuild.
		for _, h := range nd.Hiers {
			if got, want := h.IndexRuns(), h.RebuildIndexRuns(); !reflect.DeepEqual(got, want) {
				t.Fatalf("seq %d: %q: hierarchy %q incremental index diverged:\n got %v\nwant %v", seq, src, h.Name, got, want)
			}
		}

		// (b) mutated document ≡ serialize→reparse reference under the
		// paper queries and random paths.
		ref := reparseRef(t, nd)
		queries := append([]*Query{}, pq...)
		for i := 0; i < 4; i++ {
			qsrc := g.path(2, "")
			q, err := Compile(qsrc)
			if err != nil {
				t.Fatalf("seq %d: random path %q: %v", seq, qsrc, err)
			}
			queries = append(queries, q)
		}
		for _, q := range queries {
			got, gerr := q.Eval(nd)
			want, werr := q.Eval(ref)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("seq %d: %q: query %q error divergence: %v vs %v", seq, src, q.Source(), gerr, werr)
			}
			if gerr != nil {
				ge, gok := gerr.(*Error)
				we, wok := werr.(*Error)
				if !gok || !wok || ge.Code != we.Code {
					t.Fatalf("seq %d: query %q: error codes differ: %v vs %v", seq, q.Source(), gerr, werr)
				}
				continue
			}
			if !nodeIdentical(got, want) {
				t.Fatalf("seq %d: %q: query %q diverged:\n mutated: %s\n reparse: %s",
					seq, src, q.Source(), Serialize(got), Serialize(want))
			}
		}
	}
	if applied < sequences/2 {
		t.Fatalf("only %d/%d sequences applied (%d failed); generator too conflict-happy", applied, sequences, failed)
	}
	t.Logf("applied %d/%d sequences (%d legitimately failed)", applied, sequences, failed)
}
