package xquery

import (
	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// This file streams path execution: each path operator becomes a cursor
// that pulls context nodes from the operator upstream of it one at a
// time and emits its own result items lazily. Index-scan segments are
// never materialized (they iterate name-index runs through
// core.RunCursor), so a consumer that stops after one item — (//w)[1],
// exists(//dmg), a FLWOR binding under a quantifier — does O(answer)
// work instead of O(document).
//
// # Order and duplicate discipline
//
// A step's output must be ascending Definition 3 document order with no
// duplicates, exactly what the strict executors produce. Streaming
// preserves this by verifying the whole CONTEXT chain before emitting
// anything: the upstream context list (small — it is the previous
// step's result set, which the strict engine materializes anyway) is
// drained and checked, and only then do the result segments (large)
// stream lazily. The chain verifies when every adjacent context pair
// proves its segments cannot interleave or share items:
//
//   - both are ordinal-bearing element nodes of the same document;
//   - same hierarchy: the successor's preorder ordinal lies beyond the
//     predecessor's subtree (disjoint subtrees ⟹ for the downward
//     axes every item of one segment precedes every item of the next —
//     including shared leaves, whose spans inherit the subtree order);
//   - different hierarchies (in registration order): only for
//     single-kind node tests that cannot select shared leaves
//     (name/*/text()), whose segments stay inside their hierarchy's
//     document-order block;
//   - self axis: context order alone suffices (segments are the
//     contexts themselves).
//
// Anything else — atomic items, constructed or attribute contexts,
// nested subtrees, node()/leaf() tests across multiple contexts,
// cross-document mixes, out-of-order context sequences — routes the
// whole step through the strict executors with nothing yet emitted, so
// the cursor's output (and its error points) are exactly the strict
// engine's.
//
// Non-downward axes (ancestors, siblings, following/preceding, the
// extended overlap axes) always take the strict route: their results
// can precede their context, so no gating applies; the operator then
// streams its materialized result, which still lets everything
// downstream early-exit.

// streamableStepAxis reports whether the axis's results always lie
// within the context's subtree closure (the downward property segment
// gating relies on).
func streamableStepAxis(a core.Axis) bool {
	switch a {
	case core.AxisChild, core.AxisSelf, core.AxisDescendant, core.AxisDescendantOrSelf:
		return true
	}
	return false
}

// openPath builds the cursor pipeline of a lowered path.
func (p *pPath) open(c *context) cursor {
	var src cursor
	switch {
	case p.start != nil:
		src = popen(p.start, c)
	case p.absolute:
		src = seqCur(Seq{c.st.rootFor(c.item)})
	default:
		if c.item == nil {
			return errCur(errf("XPDY0002", "context item undefined at start of relative path"))
		}
		src = seqCur(Seq{c.item})
	}
	for _, op := range p.ops {
		src = newOpCursor(c, src, op)
		// Under EXPLAIN ANALYZE, time each operator at the pipeline
		// seam; the op cursors keep their own calls/in/out accounting.
		if c.st.timed && c.st.explain != nil {
			src = &opTimerCursor{inner: src, st: c.st, id: op.id}
		}
	}
	return src
}

// newOpCursor wraps one path operator around its upstream cursor.
func newOpCursor(c *context, up cursor, op *pathOp) cursor {
	switch op.kind {
	case opChainScan:
		return &chainCursor{c: c, up: up, op: op}
	case opIndexScan:
		return &stepCursor{c: c, up: up, op: op}
	case opAxisStep:
		if streamableStepAxis(op.s.axis) {
			return &stepCursor{c: c, up: up, op: op}
		}
	}
	return strictOpCursor(c, up, op)
}

// strictOpCursor drains the upstream, evaluates the operator strictly,
// and streams the materialized result.
func strictOpCursor(c *context, up cursor, op *pathOp) cursor {
	return &thunkCursor{f: func() (cursor, error) {
		cur, err := drain(c, up)
		if err != nil {
			return nil, err
		}
		out, err := evalOpStrict(c, cur, op)
		if err != nil {
			return nil, err
		}
		if ex := c.st.explain; ex != nil {
			ex[op.id].calls++
			ex[op.id].in += int64(len(cur))
			ex[op.id].out += int64(len(out))
		}
		return seqCur(out), nil
	}}
}

// stepCursor streams an index-scan or downward axis step under the
// segment-gating protocol: the upstream CONTEXT list (small) is
// materialized and verified as a whole, then the result SEGMENTS
// (large) stream lazily one context at a time. Any verification
// failure routes the whole step through the strict executors before
// anything is emitted, so the streamed output is always exactly the
// strict output.
type stepCursor struct {
	c  *context
	up cursor
	op *pathOp

	opened bool
	ctxs   []*dom.Node // verified streaming contexts
	ci     int
	seg    cursor // current segment (or the whole strict result)

	// Per-(step, document) bindings, reused across segments.
	rt      resolvedTest
	rtDoc   *core.Document
	bind    indexBinding
	bindDoc *core.Document

	// Per-cursor buffers: segments stay valid while being emitted, and
	// nested evaluation (predicates) may run between pulls, so the
	// evalState-shared buffers cannot be used here.
	segBuf  Seq
	axisBuf []*dom.Node
}

func (sc *stepCursor) next() (Item, bool, error) {
	st := sc.c.st
	for {
		if err := st.checkCancel(); err != nil {
			return nil, false, err
		}
		if sc.seg != nil {
			it, ok, err := sc.seg.next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				if st.explain != nil {
					st.explain[sc.op.id].out++
				}
				return it, true, nil
			}
			sc.seg = nil
		}
		if !sc.opened {
			sc.opened = true
			if err := sc.open(); err != nil {
				return nil, false, err
			}
			continue
		}
		if sc.ci < len(sc.ctxs) {
			n := sc.ctxs[sc.ci]
			sc.ci++
			seg, err := sc.openSeg(n, st.docFor(n))
			if err != nil {
				return nil, false, err
			}
			sc.seg = seg
			continue
		}
		return nil, false, nil
	}
}

// open drains the upstream context list and decides the route: lazy
// per-context segments when the whole chain verifies, the strict
// executor otherwise (which also reproduces the reference errors for
// atomic items, constructed nodes and interleaving-prone shapes).
func (sc *stepCursor) open() error {
	c := sc.c
	cur, err := drain(c, sc.up)
	if err != nil {
		return err
	}
	if ex := c.st.explain; ex != nil {
		ex[sc.op.id].calls++
		ex[sc.op.id].in += int64(len(cur))
	}
	if ctxs, ok := sc.streamable(cur); ok {
		sc.ctxs = ctxs
		return nil
	}
	out, err := evalOpStrict(c, cur, sc.op)
	if err != nil {
		return err
	}
	// The strict result streams through seg; out_rows accrues per
	// emitted item either way, so partial drains report what was
	// actually produced.
	sc.seg = seqCur(out)
	sc.ctxs = nil
	return nil
}

// streamable verifies the whole context chain for lazy segment
// emission (see the file comment for the case analysis).
func (sc *stepCursor) streamable(cur Seq) ([]*dom.Node, bool) {
	ctxs := make([]*dom.Node, len(cur))
	var prev *dom.Node
	for i, it := range cur {
		n, ok := it.(*dom.Node)
		if !ok || !sc.verifyCtx(n) {
			return nil, false
		}
		if prev != nil && !sc.verifyPair(prev, n) {
			return nil, false
		}
		ctxs[i] = n
		prev = n
	}
	return ctxs, true
}

// verifyCtx checks that a context node can stream: an element (or the
// shared root) carrying a document ordinal.
func (sc *stepCursor) verifyCtx(n *dom.Node) bool {
	d := sc.c.st.docFor(n)
	if n == d.Root {
		return true
	}
	if n.Kind != dom.Element {
		return false
	}
	_, ok := d.OrdinalOf(n)
	return ok
}

// verifyPair proves segment a cannot interleave with (or duplicate
// into) any segment at or after b (see the file comment).
func (sc *stepCursor) verifyPair(a, b *dom.Node) bool {
	st := sc.c.st
	da, db := st.docFor(a), st.docFor(b)
	if da != db || a == da.Root || b == da.Root {
		return false
	}
	if sc.op.s.axis == core.AxisSelf {
		// Segments are the contexts themselves: ascending context order
		// is the whole proof.
		return dom.Compare(a, b) < 0
	}
	kind := sc.op.s.test.kind
	if sc.op.kind == opIndexScan {
		kind = testName
	}
	if a.HierIndex == b.HierIndex {
		if b.Ord <= a.Last {
			return false // nested or out of order
		}
		switch kind {
		case testName, testStar, testText, testLeaf:
			return true
		}
		return false // node(): element and leaf order blocks interleave
	}
	if a.HierIndex < b.HierIndex {
		switch kind {
		case testName, testStar, testText:
			// Single-kind tests that cannot select shared leaves:
			// segments stay within their hierarchy's document-order
			// block. Leaf-capable tests are excluded — hierarchies
			// share leaves, so cross-hierarchy segments may overlap.
			return true
		}
	}
	return false
}

// openSeg opens the segment cursor for one verified context node.
func (sc *stepCursor) openSeg(n *dom.Node, d *core.Document) (cursor, error) {
	if sc.op.kind == opIndexScan {
		return sc.indexSegment(n, d)
	}
	seg, err := sc.axisSegment(n, d)
	if err != nil {
		return nil, err
	}
	return seqCur(seg), nil
}

// axisSegment materializes one context's axis-step segment (bounded by
// the axis fan-out; descendant name tests run as index scans instead)
// in ascending document order.
func (sc *stepCursor) axisSegment(n *dom.Node, d *core.Document) (Seq, error) {
	s := sc.op.s
	if sc.rtDoc != d {
		sc.rt.init(d, s)
		sc.rtDoc = d
	}
	nodes, shared := d.SharedAxis(s.axis, n)
	if !shared {
		sc.axisBuf = d.AppendAxis(sc.axisBuf[:0], s.axis, n)
		nodes = sc.axisBuf
	}
	out, err := filterStep(sc.c, sc.segBuf[:0], nodes, s, &sc.rt)
	if err != nil {
		return nil, err
	}
	sc.segBuf = out // keep the grown buffer for the next segment
	switch segOrder(out) {
	case segDescending:
		reverseSeq(out)
	case segUnordered:
		// Unreachable for document nodes on the downward axes; keep the
		// strict engine's stable order as a safety net.
		return sortDedupe(out), nil
	}
	return out, nil
}

// indexSegment opens one context's index-scan segment as a lazy run
// cursor: candidates stream straight out of the structural name index.
func (sc *stepCursor) indexSegment(n *dom.Node, d *core.Document) (cursor, error) {
	c, s := sc.c, sc.op.s
	if sc.bindDoc != d {
		if sc.op.bind.doc == d {
			sc.bind = sc.op.bind
		} else {
			sc.bind = resolveIndexBinding(d, s)
		}
		sc.bindDoc = d
	}
	bind := &sc.bind
	if bind.nameSym == 0 {
		return emptyCur, nil
	}
	inclSelf := s.axis == core.AxisDescendantOrSelf
	if bind.hierErr != nil {
		// Unknown hierarchy in the test: raised only when a kind+name
		// candidate exists (the reference evaluation point).
		if indexCandidateExists(d, n, bind.nameSym, inclSelf) {
			return nil, bind.hierErr
		}
		return emptyCur, nil
	}
	rs := &runSegCursor{}
	switch {
	case n == d.Root:
		if inclSelf && n.NameSym == bind.nameSym {
			rs.self = n
		}
		if len(bind.hierIdx) > 0 {
			for _, hi := range bind.hierIdx {
				rs.rc.Add(d.Hiers[hi], d.Hiers[hi].NameRun(bind.nameSym))
			}
		} else {
			for _, h := range d.Hiers {
				rs.rc.Add(h, h.NameRun(bind.nameSym))
			}
		}
	case n.HierIndex >= 0 && n.HierIndex < len(d.Hiers):
		if !bind.allows(n.HierIndex) {
			return emptyCur, nil
		}
		h := d.Hiers[n.HierIndex]
		if inclSelf && n.NameSym == bind.nameSym {
			rs.self = n
		}
		rs.rc.Add(h, core.SubRun(h.NameRun(bind.nameSym), n.Ord, n.Last))
	default:
		return emptyCur, nil
	}
	preds := s.preds
	if s.posSel != 0 {
		// Run-level positional shortcut: [k]/[last()] index directly
		// into the runs, O(1) instead of O(matches).
		var sel Item
		total := rs.total()
		if s.posSel > 0 {
			if total >= s.posSel {
				sel = rs.at(s.posSel - 1)
			}
		} else if total > 0 {
			sel = rs.at(total - 1)
		}
		if sel == nil {
			return emptyCur, nil
		}
		items, err := applyPredicates(c, Seq{sel}, preds[1:])
		if err != nil {
			return nil, err
		}
		return seqCur(items), nil
	}
	switch len(preds) {
	case 0:
		return rs, nil
	case 1:
		// Single predicate: stream candidates with exact (pos, size) —
		// the candidate count is known from the run lengths, so even
		// last() works without materializing. Large eligible segments
		// engage adaptively parallel filtering (parallel.go), which
		// serves the first morsel just as lazily.
		total := rs.total()
		if parWorthwhile(c.st, sc.op, total) {
			return &parPredCursor{c: c, op: sc.op, rs: rs, pr: preds[0], total: total,
				phaseA: morselSizeFor(total, c.st.parallelism())}, nil
		}
		return &predCursor{inner: rs, pr: preds[0], c: c, size: total}, nil
	}
	// Multiple predicates chain position semantics through the
	// survivors of each stage; materialize the segment.
	items, err := drain(c, rs)
	if err != nil {
		return nil, err
	}
	if parWorthwhile(c.st, sc.op, len(items)) {
		items, err = parFilterPreds(c, items, preds, 0, len(items), sc.op.id)
	} else {
		items, err = applyPredicatesInPlace(c, items, preds)
	}
	if err != nil {
		return nil, err
	}
	return seqCur(items), nil
}

// runSegCursor streams one index segment: the optional self match
// followed by the per-hierarchy subtree-restricted runs.
type runSegCursor struct {
	self *dom.Node
	rc   core.RunCursor
}

func (rs *runSegCursor) total() int {
	if rs.self != nil {
		return rs.rc.Len() + 1
	}
	return rs.rc.Len()
}

func (rs *runSegCursor) at(k int) *dom.Node {
	if rs.self != nil {
		if k == 0 {
			return rs.self
		}
		k--
	}
	return rs.rc.At(k)
}

func (rs *runSegCursor) next() (Item, bool, error) {
	if rs.self != nil {
		n := rs.self
		rs.self = nil
		return n, true, nil
	}
	if n, ok := rs.rc.Next(); ok {
		return n, true, nil
	}
	return nil, false, nil
}

// chainCursor streams a leading child:: chain: with the single shared
// root as context (the only shape the planner emits it for), candidates
// stream from the last name's index runs with lazy upward ancestor
// verification. Anything else falls back to the strict executor.
type chainCursor struct {
	c  *context
	up cursor
	op *pathOp

	opened bool
	d      *core.Document
	bind   chainBinding
	hi     int // current hierarchy
	i      int // position in current run
	run    []int32
	tail   cursor
	done   bool

	// Adaptive parallel engagement (parallel.go): candidates examined so
	// far and the serial-phase budget — one morsel's worth, after which a
	// still-pulling consumer triggers a parallel verify of the remainder.
	// phaseA < 0 disables engagement.
	examined int
	phaseA   int
}

func (cc *chainCursor) next() (Item, bool, error) {
	c := cc.c
	if cc.tail != nil {
		return cc.tail.next()
	}
	if cc.done {
		return nil, false, nil
	}
	if !cc.opened {
		cc.opened = true
		if ex := c.st.explain; ex != nil {
			ex[cc.op.id].calls++
		}
		it, ok, err := cc.up.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			cc.done = true
			return nil, false, nil
		}
		n, isNode := it.(*dom.Node)
		if !isNode {
			return nil, false, errf("XPTY0019", "%s:: step applied to an atomic value", core.AxisChild)
		}
		if ex := c.st.explain; ex != nil {
			ex[cc.op.id].in++
		}
		d := c.st.docFor(n)
		it2, more, err := cc.up.next()
		if err != nil {
			return nil, false, err
		}
		if more || n != d.Root {
			// Multiple contexts or a non-root context: strict route.
			lead := Seq{n}
			if more {
				lead = append(lead, it2)
			}
			rest, err := drain(c, cc.up)
			if err != nil {
				return nil, false, err
			}
			all := append(lead, rest...)
			out, err := evalChainScan(c, all, cc.op)
			if err != nil {
				return nil, false, err
			}
			if ex := c.st.explain; ex != nil {
				ex[cc.op.id].in += int64(len(all) - 1)
				ex[cc.op.id].out += int64(len(out))
			}
			cc.tail = seqCur(out)
			return cc.tail.next()
		}
		cc.d = d
		cc.bind = cc.op.chainBind
		if cc.bind.doc != d {
			cc.bind = resolveChainBinding(d, cc.op.chn)
		}
		if !cc.bind.ok {
			cc.done = true
			return nil, false, nil
		}
		cc.phaseA = -1
		lastSym := cc.bind.syms[len(cc.bind.syms)-1]
		total := 0
		for _, h := range d.Hiers {
			total += len(h.NameRun(lastSym))
		}
		if parWorthwhile(c.st, cc.op, total) {
			cc.phaseA = morselSizeFor(total, c.st.parallelism())
		}
	}
	last := cc.bind.syms[len(cc.bind.syms)-1]
	for {
		if err := c.st.checkCancel(); err != nil {
			return nil, false, err
		}
		if cc.phaseA >= 0 && cc.examined >= cc.phaseA {
			// The consumer drained past the serial phase: verify every
			// remaining candidate in parallel and stream the survivors.
			var rest []*dom.Node
			hi, i := cc.hi, cc.i
			if cc.run == nil {
				i = 0
			}
			for ; hi < len(cc.d.Hiers); hi++ {
				run := cc.d.Hiers[hi].NameRun(last)
				for ; i < len(run); i++ {
					rest = append(rest, cc.d.Hiers[hi].Nodes[run[i]])
				}
				i = 0
			}
			kept, err := parFilterChain(c, rest, cc.d, cc.bind.syms, cc.op.id)
			if err != nil {
				return nil, false, err
			}
			if ex := c.st.explain; ex != nil {
				ex[cc.op.id].out += int64(len(kept))
			}
			cc.tail = seqCur(nodesToSeq(kept))
			return cc.tail.next()
		}
		if cc.run == nil {
			if cc.hi >= len(cc.d.Hiers) {
				cc.done = true
				return nil, false, nil
			}
			cc.run = cc.d.Hiers[cc.hi].NameRun(last)
			cc.i = 0
			if len(cc.run) == 0 {
				cc.run = nil
				cc.hi++
				continue
			}
		}
		if cc.i >= len(cc.run) {
			cc.run = nil
			cc.hi++
			continue
		}
		m := cc.d.Hiers[cc.hi].Nodes[cc.run[cc.i]]
		cc.i++
		cc.examined++
		if chainAncestorsMatch(cc.d, m, cc.bind.syms) {
			if ex := c.st.explain; ex != nil {
				ex[cc.op.id].out++
			}
			return m, true, nil
		}
	}
}
