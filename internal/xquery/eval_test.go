package xquery_test

import (
	"strings"
	"testing"

	"mhxquery/internal/corpus"
	"mhxquery/internal/xquery"
)

// evalCase runs src against the Boethius fixture and compares the
// serialized result.
type evalCase struct {
	name string
	src  string
	want string
}

func runCases(t *testing.T, cases []evalCase) {
	t.Helper()
	d := corpus.MustBoethius()
	for _, tc := range cases {
		got, err := xquery.EvalString(d, tc.src)
		if err != nil {
			t.Errorf("%s: error %v\n  query: %s", tc.name, err, tc.src)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %q, want %q\n  query: %s", tc.name, got, tc.want, tc.src)
		}
	}
}

func TestLiteralsAndArithmetic(t *testing.T) {
	runCases(t, []evalCase{
		{"int", `42`, "42"},
		{"decimal", `3.5`, "3.5"},
		{"exponent", `2e3`, "2000"},
		{"string dq", `"hi"`, "hi"},
		{"string sq", `'hi'`, "hi"},
		{"escaped quotes", `"a""b"`, `a"b`},
		{"add", `1 + 2`, "3"},
		{"sub", `5 - 2`, "3"},
		{"mul", `3 * 4`, "12"},
		{"div", `7 div 2`, "3.5"},
		{"idiv", `7 idiv 2`, "3"},
		{"idiv negative", `-7 idiv 2`, "-3"},
		{"mod", `7 mod 3`, "1"},
		{"precedence", `1 + 2 * 3`, "7"},
		{"parens", `(1 + 2) * 3`, "9"},
		{"unary", `-(3)`, "-3"},
		{"double unary", `--3`, "3"},
		{"string to number", `"4" + 1`, "5"},
		{"nan", `"x" + 1`, "NaN"},
		{"div by zero", `1 div 0`, "Infinity"},
		{"neg div by zero", `-1 div 0`, "-Infinity"},
	})
}

func TestComparisons(t *testing.T) {
	runCases(t, []evalCase{
		{"eq true", `1 = 1`, "true"},
		{"eq false", `1 = 2`, "false"},
		{"ne", `1 != 2`, "true"},
		{"lt", `1 < 2`, "true"},
		{"le", `2 <= 2`, "true"},
		{"gt", `3 > 2`, "true"},
		{"ge", `1 >= 2`, "false"},
		{"string eq", `"ab" = "ab"`, "true"},
		{"string lt numeric coercion", `"10" < "9"`, "false"}, // ordering coerces to numbers: 10 < 9
		{"value eq", `1 eq 1`, "true"},
		{"value ne", `"a" ne "b"`, "true"},
		{"value lt", `1 lt 2`, "true"},
		{"general over seq", `(1,2,3) = 2`, "true"},
		{"general none", `(1,2,3) = 9`, "false"},
		{"general both seqs", `(1,2) = (2,3)`, "true"},
		{"empty seq comparison", `() = 1`, "false"},
		{"bool comparison", `true() = 1`, "true"},
		{"node eq by string value", `/descendant::w[1] = "gesceaftum"`, "true"},
	})
}

func TestNodeComparisons(t *testing.T) {
	runCases(t, []evalCase{
		{"is self", `let $w := /descendant::w[1] return $w is $w`, "true"},
		{"is distinct", `/descendant::w[1] is /descendant::w[2]`, "false"},
		{"before", `/descendant::w[1] << /descendant::w[2]`, "true"},
		{"after", `/descendant::w[2] >> /descendant::w[1]`, "true"},
		{"cross-hierarchy order", `/descendant::line[1] << /descendant::w[1]`, "true"},
		{"empty node cmp", `() is /descendant::w[1]`, ""},
	})
}

func TestLogic(t *testing.T) {
	runCases(t, []evalCase{
		{"and", `true() and false()`, "false"},
		{"or", `true() or false()`, "true"},
		{"or shortcircuit", `1 = 1 or (1 div 0 = 5)`, "true"},
		{"node set ebv", `boolean(/descendant::w)`, "true"},
		{"empty ebv", `boolean(())`, "false"},
		{"string ebv", `boolean("")`, "false"},
		{"not", `not("x")`, "false"},
	})
}

func TestSequencesAndRanges(t *testing.T) {
	runCases(t, []evalCase{
		{"comma", `(1, 2, 3)`, "1 2 3"},
		{"nested flatten", `(1, (2, 3), ())`, "1 2 3"},
		{"range", `1 to 4`, "1 2 3 4"},
		{"range single", `2 to 2`, "2"},
		{"range empty", `3 to 1`, ""},
		{"range expr bounds", `1 + 1 to 2 + 2`, "2 3 4"},
		{"empty parens", `()`, ""},
	})
}

func TestIfAndQuantified(t *testing.T) {
	runCases(t, []evalCase{
		{"if true", `if (1 < 2) then "y" else "n"`, "y"},
		{"if false", `if (1 > 2) then "y" else "n"`, "n"},
		{"if node set", `if (/descendant::dmg) then "damaged" else "clean"`, "damaged"},
		{"some", `some $x in (1,2,3) satisfies $x > 2`, "true"},
		{"some false", `some $x in (1,2,3) satisfies $x > 5`, "false"},
		{"every", `every $x in (1,2,3) satisfies $x > 0`, "true"},
		{"every false", `every $x in (1,2,3) satisfies $x > 1`, "false"},
		{"some empty", `some $x in () satisfies $x`, "false"},
		{"every empty", `every $x in () satisfies $x`, "true"},
		{"multi binding", `some $x in (1,2), $y in (3,4) satisfies $x + $y = 6`, "true"},
	})
}

func TestFLWOR(t *testing.T) {
	runCases(t, []evalCase{
		{"for", `for $x in (1,2,3) return $x * 2`, "2 4 6"},
		{"for at", `for $x at $i in ("a","b") return concat($i, ":", $x)`, "1:a 2:b"},
		{"let", `let $x := 5 return $x + 1`, "6"},
		{"let seq", `let $x := (1,2) return count($x)`, "2"},
		{"where", `for $x in 1 to 6 where $x mod 2 = 0 return $x`, "2 4 6"},
		{"nested for", `for $x in (1,2), $y in (10,20) return $x + $y`, "11 21 12 22"},
		{"for let mix", `for $x in (1,2) let $y := $x * 10 return $y`, "10 20"},
		{"order by", `for $x in (3,1,2) order by $x return $x`, "1 2 3"},
		{"order by desc", `for $x in (3,1,2) order by $x descending return $x`, "3 2 1"},
		{"order by string", `for $w in /descendant::w order by string($w) return string($w)`,
			"gecynde gesceaftum sibbe singallice unawendendne þa"},
		{"order by key expr", `for $x in (1,2,3) order by -$x return $x`, "3 2 1"},
		{"order by two keys", `for $x in (("b"),("a"),("b")) , $y in 1 to 1 order by $x, $y return $x`, "a b b"},
		{"order empty least", `for $x in (2,1,3) order by $x[. < 3] return $x`, "3 1 2"},
		{"order empty greatest", `for $x in (2,1,3) order by $x[. < 3] empty greatest return $x`, "1 2 3"},
	})
}

func TestFLWORStableOrder(t *testing.T) {
	d := corpus.MustBoethius()
	got, err := xquery.EvalString(d, `for $x in ("b1","a1","b2","a2")
stable order by substring($x, 1, 1) return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "a1 a2 b1 b2" {
		t.Errorf("stable order = %q", got)
	}
}

func TestPathsAndPredicates(t *testing.T) {
	runCases(t, []evalCase{
		{"count words", `count(/descendant::w)`, "6"},
		{"positional", `string(/descendant::w[3])`, "singallice"},
		{"last", `string(/descendant::w[last()])`, "þa"},
		{"predicate expr", `count(/descendant::w[string-length(string(.)) > 5])`, "4"},
		{"descendant-or-self root", `count(/descendant-or-self::r)`, "1"},
		{"abbrev //", `count(//w)`, "6"},
		{"child default axis", `count(/vline)`, "3"},
		{"nested path", `string(/vline[2]/w[1])`, "singallice"},
		{"parent", `name(/descendant::w[1]/parent::*)`, "vline"},
		{"dotdot", `name(/descendant::w[1]/..)`, "vline"},
		{"ancestor", `count(/descendant::w[1]/ancestor::*)`, "2"},
		{"attribute missing", `count(/descendant::w[1]/@x)`, "0"},
		{"self test", `count(/descendant::w[1]/self::w)`, "1"},
		{"self test fail", `count(/descendant::w[1]/self::line)`, "0"},
		{"union", `count(/descendant::w union /descendant::line)`, "8"},
		{"union dedupe", `count(/descendant::w | /descendant::w)`, "6"},
		{"intersect", `count((/descendant::w | /descendant::line) intersect /descendant::w)`, "6"},
		{"except", `count((/descendant::w | /descendant::line) except /descendant::w)`, "2"},
		{"path from var", `let $v := /vline[1] return count($v/w)`, "2"},
		{"primary step map", `string-join(/descendant::w/string(.), "|")`,
			"gesceaftum|unawendendne|singallice|sibbe|gecynde|þa"},
		{"filter on parens", `string((/descendant::w)[2])`, "unawendendne"},
		{"doc order after union", `name((/descendant::dmg | /descendant::line)[1])`, "line"},
		{"multiple predicates", `count(/descendant::w[string-length(string(.)) > 4][2])`, "1"},
		{"leaf kindtest", `count(/descendant::leaf())`, "16"},
		{"text kindtest", `count(/descendant::text('damage'))`, "4"},
		// node(H) counts the hierarchy's 2 elements + 2 texts plus all 16
		// leaves: a leaf belongs to every hierarchy covering it (Def. 2).
		{"node hier test", `count(/descendant::node('physical'))`, "20"},
		{"star hier test", `count(/descendant::*('structure'))`, "9"},
		{"name hier test", `count(/descendant::res('restoration'))`, "3"},
		{"wildcard", `count(/descendant::*)`, "16"},
		{"root expr", `name(/)`, "r"},
		{"path from root expr", `count((/)/descendant::w)`, "6"},
	})
}

func TestExtendedAxesInQueries(t *testing.T) {
	runCases(t, []evalCase{
		{"xdescendant", `count(/descendant::line[1]/xdescendant::w)`, "2"},
		{"xancestor", `count(/descendant::dmg[1]/xancestor::w)`, "1"},
		{"xfollowing", `count(/descendant::w[1]/xfollowing::dmg)`, "2"},
		{"xpreceding", `count(/descendant::w[last()]/xpreceding::res('restoration'))`, "3"},
		{"overlapping", `string(/descendant::line[1]/overlapping::w)`, "singallice"},
		{"preceding-overlapping", `string(/descendant::line[2]/preceding-overlapping::w)`, "singallice"},
		{"following-overlapping", `string(/descendant::line[1]/following-overlapping::w)`, "singallice"},
		{"overlap none", `count(/descendant::w[1]/overlapping::dmg)`, "0"},
		{"xdescendant leaf", `count(/descendant::w[2]/xdescendant::leaf())`, "3"},
		// leaf "w" sits under line1, vline1, w2, dmg1 and the shared root.
		{"xancestor from leaf via path", `count(/descendant::leaf()[4]/xancestor::*)`, "5"},
	})
}

func TestConstructors(t *testing.T) {
	runCases(t, []evalCase{
		{"empty element", `<br/>`, "<br/>"},
		{"text content", `<b>hi</b>`, "<b>hi</b>"},
		{"enclosed", `<b>{1 + 1}</b>`, "<b>2</b>"},
		{"enclosed seq spacing", `<b>{1, 2}</b>`, "<b>1 2</b>"},
		{"mixed content", `<b>x{1}y</b>`, "<b>x1y</b>"},
		{"nested", `<i><b>{"x"}</b></i>`, "<i><b>x</b></i>"},
		{"attr literal", `<a href="x"/>`, `<a href="x"/>`},
		{"attr template", `<a n="{1+1}"/>`, `<a n="2"/>`},
		{"attr mixed", `<a n="v{1}w"/>`, `<a n="v1w"/>`},
		{"node copy", `<out>{/descendant::dmg[1]}</out>`, "<out><dmg>w</dmg></out>"},
		{"leaf into constructor", `<b>{/descendant::leaf()[1]}</b>`, "<b>gesceaftum</b>"},
		{"escape in output", `<b>{"a < b"}</b>`, "<b>a &lt; b</b>"},
		{"curly escape", `<b>{{x}}</b>`, "<b>{x}</b>"},
		{"entity in constructor", `<b>&amp;&#65;</b>`, "<b>&amp;A</b>"},
		{"boundary ws stripped", `<b>  {"x"}  </b>`, "<b>x</b>"},
		{"inner ws kept", `<b> a {"x"}</b>`, "<b> a x</b>"},
		{"string value of constructed", `string(<b>a<i>b</i>c</b>)`, "abc"},
	})
}

func TestVariablesAndScope(t *testing.T) {
	runCases(t, []evalCase{
		{"shadowing", `let $x := 1 return (let $x := 2 return $x)`, "2"},
		{"outer after inner", `let $x := 1 return ((let $x := 2 return $x), $x)`, "2 1"},
		{"var in predicate", `let $n := 2 return string(/descendant::w[$n])`, "unawendendne"},
	})
}

func TestEvalWithVars(t *testing.T) {
	d := corpus.MustBoethius()
	q, err := xquery.Compile(`$target * 2`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.EvalWithVars(d, map[string]xquery.Seq{"target": {21.0}})
	if err != nil {
		t.Fatal(err)
	}
	if xquery.Serialize(res) != "42" {
		t.Errorf("got %v", res)
	}
}

func TestEvalErrors(t *testing.T) {
	d := corpus.MustBoethius()
	cases := []struct {
		name, src, want string
	}{
		{"undefined var", `$nope`, "undefined variable"},
		{"step on atomic", `(1)/child::a`, "atomic"},
		{"unknown hierarchy", `count(/descendant::text('bogus'))`, "unknown hierarchy"},
		{"union atomics", `1 | 2`, "non-node"},
		{"ebv multi atomic", `not((1,2))`, "effective boolean"},
		{"value cmp seq", `(1,2) eq 1`, "single"},
		{"idiv zero", `1 idiv 0`, "division by zero"},
		{"is non-node", `1 is 2`, "single nodes"},
		{"bad regex", `matches("x", "(")`, "invalid regular expression"},
		{"bad flags", `matches("x", "x", "q")`, "unsupported regex flag"},
	}
	for _, tc := range cases {
		_, err := xquery.EvalString(d, tc.src)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ``},
		{"unclosed paren", `(1`},
		{"bad token", `1 ~ 2`},
		{"unterminated string", `"abc`},
		{"unknown function", `nope(1, 2)`},
		{"bad axis", `/foo::bar`},
		{"missing return", `for $x in (1,2)`},
		{"missing in", `for $x return 1`},
		{"bad var", `let $ := 1 return 2`},
		{"unclosed constructor", `<a>`},
		{"mismatched constructor", `<a></b>`},
		{"bare brace", `<a>}</a>`},
		{"unclosed comment", `1 (: comment`},
		{"trailing junk", `1 2`},
		{"arity", `concat("a")`},
		{"empty hier list", `/descendant::w[text('')]`},
		{"unknown entity in ctor", `<a>&nope;</a>`},
	}
	for _, tc := range cases {
		if _, err := xquery.Compile(tc.src); err == nil {
			t.Errorf("%s: Compile(%q) should fail", tc.name, tc.src)
		}
	}
}

func TestComments(t *testing.T) {
	runCases(t, []evalCase{
		{"simple", `1 (: plus :) + 2`, "3"},
		{"nested", `1 (: a (: b :) c :) + 2`, "3"},
		{"at start", `(: header :) 42`, "42"},
	})
}

func TestConcurrentEval(t *testing.T) {
	d := corpus.MustBoethius()
	q := xquery.MustCompile(`let $r := analyze-string(/descendant::w[2], "unawe")
return serialize($r)`)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				res, err := q.Eval(d)
				if err == nil && xquery.Serialize(res) != "<res><m>unawe</m>ndendne</res>" {
					err = &failErr{}
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type failErr struct{}

func (*failErr) Error() string { return "wrong concurrent result" }

func TestComputedConstructors(t *testing.T) {
	runCases(t, []evalCase{
		{"element static name", `element out {"x"}`, "<out>x</out>"},
		{"element computed name", `element {concat("a","b")} {1+1}`, "<ab>2</ab>"},
		{"element empty content", `element hollow {}`, "<hollow/>"},
		{"element with node content", `element box {/descendant::dmg[1]}`, "<box><dmg>w</dmg></box>"},
		{"attribute into element", `element e {attribute k {"v"}, "body"}`, `<e k="v">body</e>`},
		{"attribute computed name", `element e {attribute {"n"} {1,2}}`, `<e n="1 2"/>`},
		{"text ctor", `element e {text {"a", "b"}}`, "<e>a b</e>"},
		{"comment ctor", `element e {comment {"note"}}`, "<e><!--note--></e>"},
		{"nested computed", `element outer {element inner {"x"}}`, "<outer><inner>x</inner></outer>"},
		{"computed in direct", `<o>{element i {"y"}}</o>`, "<o><i>y</i></o>"},
		{"name test still works", `count(/descendant::text('structure'))`, "11"},
	})
}

func TestComputedConstructorErrors(t *testing.T) {
	d := corpus.MustBoethius()
	for _, src := range []string{
		`element {"not a name!"} {1}`,
		`element {()} {1}`,
		`attribute {"1bad"} {"v"}`,
	} {
		if _, err := xquery.EvalString(d, src); err == nil {
			t.Errorf("EvalString(%q) should fail", src)
		}
	}
	if _, err := xquery.Compile(`text foo`); err != nil {
		// "text foo" is a name-test path step followed by junk — a
		// compile error is fine; just ensure no panic escaped.
		_ = err
	}
}

func TestLeafHierarchyTest(t *testing.T) {
	runCases(t, []evalCase{
		// leaf(H): leaves covered by a text node of hierarchy H — here
		// the damage hierarchy covers every leaf (its plain text spans
		// the rest of S), so restrict to leaves under <dmg> elements.
		{"leaf covered by hierarchy", `count(/descendant::leaf('damage'))`, "16"},
		{"leaf under dmg elements", `count(/descendant::dmg/descendant::leaf())`, "4"},
		{"leaf under temp hierarchy", `count(analyze-string(/descendant::w[2], "n")/descendant::leaf('rest'))`, "11"},
	})
}
