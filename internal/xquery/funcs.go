package xquery

import (
	"math"
	"regexp"
	"strings"
	"sync"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// builtin is an internal (built-in) function. The paper treats all
// functions as internal and drops the fn: namespace; we accept both
// spellings.
type builtin struct {
	name     string
	min, max int // max = -1: variadic
	fn       func(c *context, args []Seq) (Seq, error)
}

var builtins = map[string]*builtin{}

func register(name string, min, max int, fn func(*context, []Seq) (Seq, error)) {
	builtins[name] = &builtin{name: name, min: min, max: max, fn: fn}
}

// registerExt registers an extension function under both its bare name
// and the mh: prefix.
func registerExt(name string, min, max int, fn func(*context, []Seq) (Seq, error)) {
	register(name, min, max, fn)
	builtins["mh:"+name] = builtins[name]
}

// ---- argument helpers -----------------------------------------------------

// argOrContext returns argument i, or the context item when the argument
// is absent (the fn:string() zero-argument pattern).
func argOrContext(c *context, args []Seq, i int) (Seq, error) {
	if i < len(args) {
		return args[i], nil
	}
	if c.item == nil {
		return nil, errf("XPDY0002", "context item is undefined")
	}
	return singleton(c.item), nil
}

// oneString extracts argument i as a string; the empty sequence yields "".
func oneString(c *context, args []Seq, i int) (string, error) {
	if i >= len(args) || len(args[i]) == 0 {
		return "", nil
	}
	if len(args[i]) > 1 {
		return "", errf("XPTY0004", "expected a single value, got a sequence of %d", len(args[i]))
	}
	return stringItem(c, args[i][0]), nil
}

// oneNode extracts argument i as a single node.
func oneNode(args []Seq, i int) (*dom.Node, error) {
	if i >= len(args) || len(args[i]) != 1 {
		return nil, errf("XPTY0004", "expected a single node argument")
	}
	n, ok := args[i][0].(*dom.Node)
	if !ok {
		return nil, errf("XPTY0004", "expected a node argument, got %T", args[i][0])
	}
	return n, nil
}

// ---- regex compilation with a small cache ----------------------------------

var (
	reMu    sync.Mutex
	reCache = map[string]*regexp.Regexp{}
)

// compileRegex compiles an XPath-style regular expression with optional
// flags (i, s, m; x is not supported). XPath regex syntax is close enough
// to RE2 for the constructs the paper uses; differences (backreferences,
// lazy semantics nuances) are documented in README.
func compileRegex(pattern, flags string) (*regexp.Regexp, error) {
	prefix := ""
	for _, f := range flags {
		switch f {
		case 'i':
			prefix += "i"
		case 's':
			prefix += "s"
		case 'm':
			prefix += "m"
		default:
			return nil, errf("FORX0001", "unsupported regex flag %q", string(f))
		}
	}
	src := pattern
	if prefix != "" {
		src = "(?" + prefix + ")" + pattern
	}
	reMu.Lock()
	re, ok := reCache[src]
	reMu.Unlock()
	if ok {
		return re, nil
	}
	re, err := regexp.Compile(src)
	if err != nil {
		return nil, errf("FORX0002", "invalid regular expression %q: %v", pattern, err)
	}
	reMu.Lock()
	reCache[src] = re
	reMu.Unlock()
	return re, nil
}

// ---- registration -----------------------------------------------------------

func init() {
	registerStringFuncs()
	registerSequenceFuncs()
	registerNumericFuncs()
	registerNodeFuncs()
	registerDocFuncs()
	register("analyze-string", 2, 3, fnAnalyzeString)
}

// contextDoc returns the document of the context item, so the 0-arg
// doc-scoped extensions (hierarchies, base-text) answer for the
// document the evaluation is currently inside — which differs from the
// active document inside a doc()/collection() subtree.
func contextDoc(c *context) *core.Document {
	if n, ok := c.item.(*dom.Node); ok {
		return c.st.docFor(n)
	}
	return c.st.doc
}

// registerDocFuncs wires the multi-document input functions. Both
// require a Resolver (supplied by Query.EvalWithResolver, normally a
// collection.Collection); without one they raise the standard
// FODC0002/FODC0004 errors.
func registerDocFuncs() {
	register("doc", 1, 1, func(c *context, args []Seq) (Seq, error) {
		name, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		if c.st.resolver == nil {
			return nil, errf("FODC0002", "doc(%q): no document resolver in this evaluation context", name)
		}
		d, err := c.st.resolver.ResolveDoc(name)
		if err != nil {
			return nil, errf("FODC0002", "doc(%q): %v", name, err)
		}
		c.st.addExtra(d)
		return singleton(d.Root), nil
	})
	register("collection", 0, 1, func(c *context, args []Seq) (Seq, error) {
		pattern, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		if c.st.resolver == nil {
			return nil, errf("FODC0004", "collection(): no document resolver in this evaluation context")
		}
		docs, err := c.st.resolver.ResolveCollection(pattern)
		if err != nil {
			return nil, errf("FODC0004", "collection(%q): %v", pattern, err)
		}
		var out Seq
		for _, d := range docs {
			c.st.addExtra(d)
			out = append(out, d.Root)
		}
		return out, nil
	})
}

func registerStringFuncs() {
	register("string", 0, 1, func(c *context, args []Seq) (Seq, error) {
		v, err := argOrContext(c, args, 0)
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return singleton(""), nil
		}
		if len(v) > 1 {
			return nil, errf("XPTY0004", "string() of a sequence of %d items", len(v))
		}
		return singleton(stringItem(c, v[0])), nil
	})
	register("string-length", 0, 1, func(c *context, args []Seq) (Seq, error) {
		v, err := argOrContext(c, args, 0)
		if err != nil {
			return nil, err
		}
		s := ""
		if len(v) > 0 {
			s = stringItem(c, v[0])
		}
		return singleton(float64(len([]rune(s)))), nil
	})
	register("normalize-space", 0, 1, func(c *context, args []Seq) (Seq, error) {
		v, err := argOrContext(c, args, 0)
		if err != nil {
			return nil, err
		}
		s := ""
		if len(v) > 0 {
			s = stringItem(c, v[0])
		}
		return singleton(strings.Join(strings.Fields(s), " ")), nil
	})
	register("concat", 2, -1, func(c *context, args []Seq) (Seq, error) {
		var b strings.Builder
		for i := range args {
			s, err := oneString(c, args, i)
			if err != nil {
				return nil, err
			}
			b.WriteString(s)
		}
		return singleton(b.String()), nil
	})
	register("string-join", 1, 2, func(c *context, args []Seq) (Seq, error) {
		sep := ""
		if len(args) == 2 {
			s, err := oneString(c, args, 1)
			if err != nil {
				return nil, err
			}
			sep = s
		}
		parts := make([]string, len(args[0]))
		for i, it := range args[0] {
			parts[i] = stringItem(c, it)
		}
		return singleton(strings.Join(parts, sep)), nil
	})
	register("upper-case", 1, 1, func(c *context, args []Seq) (Seq, error) {
		s, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		return singleton(strings.ToUpper(s)), nil
	})
	register("lower-case", 1, 1, func(c *context, args []Seq) (Seq, error) {
		s, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		return singleton(strings.ToLower(s)), nil
	})
	register("translate", 3, 3, func(c *context, args []Seq) (Seq, error) {
		s, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		from, err := oneString(c, args, 1)
		if err != nil {
			return nil, err
		}
		to, err := oneString(c, args, 2)
		if err != nil {
			return nil, err
		}
		fromR, toR := []rune(from), []rune(to)
		repl := make(map[rune]rune, len(fromR))
		drop := make(map[rune]bool)
		for i, r := range fromR {
			if _, seen := repl[r]; seen || drop[r] {
				continue
			}
			if i < len(toR) {
				repl[r] = toR[i]
			} else {
				drop[r] = true
			}
		}
		var b strings.Builder
		for _, r := range s {
			if drop[r] {
				continue
			}
			if rr, ok := repl[r]; ok {
				b.WriteRune(rr)
				continue
			}
			b.WriteRune(r)
		}
		return singleton(b.String()), nil
	})
	register("contains", 2, 2, strPredicate(strings.Contains))
	register("starts-with", 2, 2, strPredicate(strings.HasPrefix))
	register("ends-with", 2, 2, strPredicate(strings.HasSuffix))
	register("substring", 2, 3, func(c *context, args []Seq) (Seq, error) {
		s, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		runes := []rune(s)
		start, _, err := argNumber(args, 1)
		if err != nil {
			return nil, err
		}
		start = math.Round(start)
		end := float64(len(runes)) + 1
		if len(args) == 3 {
			length, _, err := argNumber(args, 2)
			if err != nil {
				return nil, err
			}
			end = start + math.Round(length)
		}
		var b strings.Builder
		for i, r := range runes {
			p := float64(i + 1)
			if p >= start && p < end {
				b.WriteRune(r)
			}
		}
		return singleton(b.String()), nil
	})
	register("substring-before", 2, 2, func(c *context, args []Seq) (Seq, error) {
		s, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		t, err := oneString(c, args, 1)
		if err != nil {
			return nil, err
		}
		if i := strings.Index(s, t); i >= 0 {
			return singleton(s[:i]), nil
		}
		return singleton(""), nil
	})
	register("substring-after", 2, 2, func(c *context, args []Seq) (Seq, error) {
		s, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		t, err := oneString(c, args, 1)
		if err != nil {
			return nil, err
		}
		if i := strings.Index(s, t); i >= 0 {
			return singleton(s[i+len(t):]), nil
		}
		return singleton(""), nil
	})
	register("matches", 2, 3, func(c *context, args []Seq) (Seq, error) {
		s, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		pat, err := oneString(c, args, 1)
		if err != nil {
			return nil, err
		}
		flags, err := oneString(c, args, 2)
		if err != nil {
			return nil, err
		}
		re, err := compileRegex(pat, flags)
		if err != nil {
			return nil, err
		}
		return singletonBool(re.MatchString(s)), nil
	})
	register("replace", 3, 4, func(c *context, args []Seq) (Seq, error) {
		s, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		pat, err := oneString(c, args, 1)
		if err != nil {
			return nil, err
		}
		repl, err := oneString(c, args, 2)
		if err != nil {
			return nil, err
		}
		flags, err := oneString(c, args, 3)
		if err != nil {
			return nil, err
		}
		re, err := compileRegex(pat, flags)
		if err != nil {
			return nil, err
		}
		return singleton(re.ReplaceAllString(s, repl)), nil
	})
	register("tokenize", 2, 3, func(c *context, args []Seq) (Seq, error) {
		s, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		pat, err := oneString(c, args, 1)
		if err != nil {
			return nil, err
		}
		flags, err := oneString(c, args, 2)
		if err != nil {
			return nil, err
		}
		re, err := compileRegex(pat, flags)
		if err != nil {
			return nil, err
		}
		var out Seq
		for _, tok := range re.Split(s, -1) {
			out = append(out, tok)
		}
		return out, nil
	})
}

func strPredicate(pred func(string, string) bool) func(*context, []Seq) (Seq, error) {
	return func(c *context, args []Seq) (Seq, error) {
		a, err := oneString(c, args, 0)
		if err != nil {
			return nil, err
		}
		b, err := oneString(c, args, 1)
		if err != nil {
			return nil, err
		}
		return singletonBool(pred(a, b)), nil
	}
}

// argNumber extracts argument i as a number.
func argNumber(args []Seq, i int) (float64, bool, error) {
	if i >= len(args) || len(args[i]) == 0 {
		return 0, true, nil
	}
	if len(args[i]) > 1 {
		return 0, false, errf("XPTY0004", "expected a single numeric value")
	}
	return toNumber(args[i][0]), false, nil
}

func registerSequenceFuncs() {
	register("count", 1, 1, func(c *context, args []Seq) (Seq, error) {
		return singleton(float64(len(args[0]))), nil
	})
	register("empty", 1, 1, func(c *context, args []Seq) (Seq, error) {
		return singletonBool(len(args[0]) == 0), nil
	})
	register("exists", 1, 1, func(c *context, args []Seq) (Seq, error) {
		return singletonBool(len(args[0]) > 0), nil
	})
	register("not", 1, 1, func(c *context, args []Seq) (Seq, error) {
		b, err := ebv(args[0])
		if err != nil {
			return nil, err
		}
		return singletonBool(!b), nil
	})
	register("boolean", 1, 1, func(c *context, args []Seq) (Seq, error) {
		b, err := ebv(args[0])
		if err != nil {
			return nil, err
		}
		return singleton(b), nil
	})
	register("true", 0, 0, func(c *context, args []Seq) (Seq, error) {
		return singleton(true), nil
	})
	register("false", 0, 0, func(c *context, args []Seq) (Seq, error) {
		return singleton(false), nil
	})
	register("distinct-values", 1, 1, func(c *context, args []Seq) (Seq, error) {
		seen := map[string]bool{}
		var out Seq
		for _, it := range args[0] {
			v := c.atomize(it)
			key := stringValue(v)
			if _, isNum := v.(float64); isNum {
				key = "#n:" + key
			}
			if !seen[key] {
				seen[key] = true
				out = append(out, v)
			}
		}
		return out, nil
	})
	register("reverse", 1, 1, func(c *context, args []Seq) (Seq, error) {
		in := args[0]
		out := make(Seq, len(in))
		for i, it := range in {
			out[len(in)-1-i] = it
		}
		return out, nil
	})
	register("subsequence", 2, 3, func(c *context, args []Seq) (Seq, error) {
		in := args[0]
		start, _, err := argNumber(args, 1)
		if err != nil {
			return nil, err
		}
		start = math.Round(start)
		end := math.Inf(1)
		if len(args) == 3 {
			length, _, err := argNumber(args, 2)
			if err != nil {
				return nil, err
			}
			end = start + math.Round(length)
		}
		var out Seq
		for i, it := range in {
			p := float64(i + 1)
			if p >= start && p < end {
				out = append(out, it)
			}
		}
		return out, nil
	})
	register("index-of", 2, 2, func(c *context, args []Seq) (Seq, error) {
		if len(args[1]) != 1 {
			return nil, errf("XPTY0004", "index-of: search target must be a single value")
		}
		target := c.atomize(args[1][0])
		var out Seq
		for i, it := range args[0] {
			cres, ok := compareAtomic("=", c.atomize(it), target)
			if ok && cres == 0 {
				out = append(out, float64(i+1))
			}
		}
		return out, nil
	})
	register("insert-before", 3, 3, func(c *context, args []Seq) (Seq, error) {
		pos, _, err := argNumber(args, 1)
		if err != nil {
			return nil, err
		}
		p := int(math.Round(pos))
		if p < 1 {
			p = 1
		}
		if p > len(args[0])+1 {
			p = len(args[0]) + 1
		}
		out := make(Seq, 0, len(args[0])+len(args[2]))
		out = append(out, args[0][:p-1]...)
		out = append(out, args[2]...)
		out = append(out, args[0][p-1:]...)
		return out, nil
	})
	register("remove", 2, 2, func(c *context, args []Seq) (Seq, error) {
		pos, _, err := argNumber(args, 1)
		if err != nil {
			return nil, err
		}
		p := int(math.Round(pos))
		var out Seq
		for i, it := range args[0] {
			if i+1 != p {
				out = append(out, it)
			}
		}
		return out, nil
	})
	register("position", 0, 0, func(c *context, args []Seq) (Seq, error) {
		if c.pos == 0 {
			return nil, errf("XPDY0002", "position() outside of a predicate or iteration")
		}
		return singleton(float64(c.pos)), nil
	})
	register("last", 0, 0, func(c *context, args []Seq) (Seq, error) {
		if c.size == 0 {
			return nil, errf("XPDY0002", "last() outside of a predicate or iteration")
		}
		return singleton(float64(c.size)), nil
	})
}

func registerNumericFuncs() {
	register("number", 0, 1, func(c *context, args []Seq) (Seq, error) {
		v, err := argOrContext(c, args, 0)
		if err != nil {
			return nil, err
		}
		if len(v) != 1 {
			return singleton(math.NaN()), nil
		}
		return singleton(toNumber(v[0])), nil
	})
	fold := func(name string, f func(acc, x float64) float64) func(*context, []Seq) (Seq, error) {
		return func(c *context, args []Seq) (Seq, error) {
			if len(args[0]) == 0 {
				if name == "sum" {
					return singleton(0.0), nil
				}
				return Seq{}, nil
			}
			acc := toNumber(args[0][0])
			for _, it := range args[0][1:] {
				acc = f(acc, toNumber(it))
			}
			return singleton(acc), nil
		}
	}
	register("sum", 1, 1, fold("sum", func(a, x float64) float64 { return a + x }))
	register("avg", 1, 1, func(c *context, args []Seq) (Seq, error) {
		if len(args[0]) == 0 {
			return Seq{}, nil
		}
		sum := 0.0
		for _, it := range args[0] {
			sum += toNumber(it)
		}
		return singleton(sum / float64(len(args[0]))), nil
	})
	register("min", 1, 1, minMaxFn(true))
	register("max", 1, 1, minMaxFn(false))
	unary := func(f func(float64) float64) func(*context, []Seq) (Seq, error) {
		return func(c *context, args []Seq) (Seq, error) {
			if len(args[0]) == 0 {
				return Seq{}, nil
			}
			if len(args[0]) > 1 {
				return nil, errf("XPTY0004", "expected a single numeric value")
			}
			return singleton(f(toNumber(args[0][0]))), nil
		}
	}
	register("floor", 1, 1, unary(math.Floor))
	register("ceiling", 1, 1, unary(math.Ceil))
	register("round", 1, 1, unary(func(x float64) float64 { return math.Floor(x + 0.5) }))
	register("abs", 1, 1, unary(math.Abs))
}

func minMaxFn(wantMin bool) func(*context, []Seq) (Seq, error) {
	return func(c *context, args []Seq) (Seq, error) {
		if len(args[0]) == 0 {
			return Seq{}, nil
		}
		best := c.atomize(args[0][0])
		for _, it := range args[0][1:] {
			v := c.atomize(it)
			cres, ok := compareForOrder(v, best)
			if !ok {
				continue
			}
			if (wantMin && cres < 0) || (!wantMin && cres > 0) {
				best = v
			}
		}
		return singleton(best), nil
	}
}

func registerNodeFuncs() {
	register("name", 0, 1, func(c *context, args []Seq) (Seq, error) {
		v, err := argOrContext(c, args, 0)
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return singleton(""), nil
		}
		n, ok := v[0].(*dom.Node)
		if !ok {
			return nil, errf("XPTY0004", "name() requires a node")
		}
		return singleton(n.Name), nil
	})
	register("local-name", 0, 1, func(c *context, args []Seq) (Seq, error) {
		v, err := argOrContext(c, args, 0)
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return singleton(""), nil
		}
		n, ok := v[0].(*dom.Node)
		if !ok {
			return nil, errf("XPTY0004", "local-name() requires a node")
		}
		name := n.Name
		if i := strings.LastIndexByte(name, ':'); i >= 0 {
			name = name[i+1:]
		}
		return singleton(name), nil
	})
	register("root", 0, 1, func(c *context, args []Seq) (Seq, error) {
		v, err := argOrContext(c, args, 0)
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return Seq{}, nil
		}
		n, ok := v[0].(*dom.Node)
		if !ok {
			return nil, errf("XPTY0004", "root() requires a node")
		}
		if d := c.st.docFor(n); d.Owns(n) || n == d.Root {
			return singleton(d.Root), nil
		}
		return singleton((*dom.Node)(n.Root())), nil
	})
	register("data", 1, 1, func(c *context, args []Seq) (Seq, error) {
		return c.atomizeSeq(args[0]), nil
	})
	register("deep-equal", 2, 2, func(c *context, args []Seq) (Seq, error) {
		if len(args[0]) != len(args[1]) {
			return singleton(false), nil
		}
		for i := range args[0] {
			a, aok := args[0][i].(*dom.Node)
			b, bok := args[1][i].(*dom.Node)
			if aok != bok {
				return singleton(false), nil
			}
			if aok {
				if dom.XML(a) != dom.XML(b) {
					return singleton(false), nil
				}
				continue
			}
			cres, ok := compareAtomic("=", args[0][i], args[1][i])
			if !ok || cres != 0 {
				return singleton(false), nil
			}
		}
		return singleton(true), nil
	})
	register("serialize", 1, 1, func(c *context, args []Seq) (Seq, error) {
		return singleton(Serialize(args[0])), nil
	})

	// Multihierarchical extension functions (documented in README).
	registerExt("hierarchy", 1, 1, func(c *context, args []Seq) (Seq, error) {
		n, err := oneNode(args, 0)
		if err != nil {
			return nil, err
		}
		if n == c.st.docFor(n).Root {
			return Seq{}, nil
		}
		if n.Kind == dom.Leaf {
			var out Seq
			for _, p := range c.st.docFor(n).LeafParents(n) {
				out = append(out, p.Hier)
			}
			return out, nil
		}
		if n.Hier == "" {
			return Seq{}, nil
		}
		return singleton(n.Hier), nil
	})
	registerExt("hierarchies", 0, 0, func(c *context, args []Seq) (Seq, error) {
		var out Seq
		for _, name := range contextDoc(c).HierarchyNames() {
			out = append(out, name)
		}
		return out, nil
	})
	registerExt("leaves", 1, 1, func(c *context, args []Seq) (Seq, error) {
		n, err := oneNode(args, 0)
		if err != nil {
			return nil, err
		}
		var out Seq
		for _, l := range c.st.docFor(n).LeavesOf(n) {
			out = append(out, l)
		}
		return out, nil
	})
	registerExt("base-text", 0, 0, func(c *context, args []Seq) (Seq, error) {
		return singleton(contextDoc(c).Text), nil
	})
	registerExt("span-start", 1, 1, func(c *context, args []Seq) (Seq, error) {
		n, err := oneNode(args, 0)
		if err != nil {
			return nil, err
		}
		return singleton(float64(n.Start)), nil
	})
	registerExt("span-end", 1, 1, func(c *context, args []Seq) (Seq, error) {
		n, err := oneNode(args, 0)
		if err != nil {
			return nil, err
		}
		return singleton(float64(n.End)), nil
	})
}
