package xquery

import (
	"testing"

	"mhxquery/internal/corpus"
)

// TestExplainAnalyzeMatchesExplain proves EXPLAIN ANALYZE is the same
// evaluation as EXPLAIN plus timing: operator for operator, the
// analyzed tree reports identical calls/in/out cardinalities, and the
// timed run populates wall time where work happened.
func TestExplainAnalyzeMatchesExplain(t *testing.T) {
	d, err := corpus.Generate(corpus.Params{Seed: 11, Words: 500, DamageRate: 0.2, RestoreRate: 0.2}).Document()
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`count(/descendant::w)`,
		`for $s in //seg return count($s/descendant::w)`,
		`//w[@n]`,
	}
	for _, src := range queries {
		q := MustCompile(src)
		seqE, plain, err := q.Explain(d, nil, nil)
		if err != nil {
			t.Fatalf("%s: explain: %v", src, err)
		}
		seqA, analyzed, err := q.ExplainAnalyze(d, nil, nil)
		if err != nil {
			t.Fatalf("%s: analyze: %v", src, err)
		}
		if len(seqE) != len(seqA) {
			t.Fatalf("%s: result diverged: %d vs %d items", src, len(seqE), len(seqA))
		}
		var compare func(a, b *ExplainOp, path string)
		compare = func(a, b *ExplainOp, path string) {
			p := path + "/" + a.Op
			if a.Op != b.Op || a.Detail != b.Detail {
				t.Fatalf("%s: tree shape diverged at %s", src, p)
			}
			if a.Calls != b.Calls || a.InRows != b.InRows || a.OutRows != b.OutRows {
				t.Errorf("%s: cardinalities diverged at %s: explain {%d %d %d} analyze {%d %d %d}",
					src, p, a.Calls, a.InRows, a.OutRows, b.Calls, b.InRows, b.OutRows)
			}
			if a.Nanos != 0 {
				t.Errorf("%s: plain EXPLAIN reported time at %s", src, p)
			}
			if len(a.Children) != len(b.Children) {
				t.Fatalf("%s: child count diverged at %s", src, p)
			}
			for i := range a.Children {
				compare(a.Children[i], b.Children[i], p)
			}
		}
		compare(plain, analyzed, "")
		if analyzed.Nanos <= 0 {
			t.Errorf("%s: root Nanos = %d, want total query wall time > 0", src, analyzed.Nanos)
		}
		// At least one operator below the root must have observed time:
		// the query did real work over 500 words.
		var timed int
		var walk func(op *ExplainOp)
		walk = func(op *ExplainOp) {
			if op.Nanos > 0 {
				timed++
			}
			for _, k := range op.Children {
				walk(k)
			}
		}
		for _, k := range analyzed.Children {
			walk(k)
		}
		if timed == 0 {
			t.Errorf("%s: no operator below the root recorded wall time", src)
		}
	}
}

// TestExplainAnalyzeInclusiveTimes checks the documented inclusion
// property at the root: total query time bounds every operator's time.
func TestExplainAnalyzeInclusiveTimes(t *testing.T) {
	d, err := corpus.Generate(corpus.Params{Seed: 3, Words: 400}).Document()
	if err != nil {
		t.Fatal(err)
	}
	_, tree, err := MustCompile(`for $w in //w return string($w)`).ExplainAnalyze(d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(op *ExplainOp)
	walk = func(op *ExplainOp) {
		for _, k := range op.Children {
			if k.Nanos > tree.Nanos {
				t.Errorf("operator %s/%s reports %dns, more than the %dns total", k.Op, k.Detail, k.Nanos, tree.Nanos)
			}
			walk(k)
		}
	}
	walk(tree)
}
