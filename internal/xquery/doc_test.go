package xquery_test

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/xmlparse"
	"mhxquery/internal/xquery"
)

// mapResolver is a minimal Resolver over a fixed name → document map,
// mirroring what collection.Collection provides in production.
type mapResolver map[string]*core.Document

func (m mapResolver) ResolveDoc(name string) (*core.Document, error) {
	d, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("no document %q", name)
	}
	return d, nil
}

func (m mapResolver) ResolveCollection(pattern string) ([]*core.Document, error) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*core.Document
	for _, name := range names {
		if pattern != "" {
			ok, err := path.Match(pattern, name)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, m[name])
	}
	return out, nil
}

// resolverDoc builds a two-hierarchy document over the given words: a
// "pages" hierarchy splitting the text in two, and a "words" hierarchy
// marking each word.
func resolverDoc(t *testing.T, words ...string) *core.Document {
	t.Helper()
	text := strings.Join(words, " ")
	mid := len(text) / 2
	pages := fmt.Sprintf("<r><page>%s</page><page>%s</page></r>", text[:mid], text[mid:])
	var b strings.Builder
	b.WriteString("<r>")
	for i, w := range words {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString("<w>" + w + "</w>")
	}
	b.WriteString("</r>")
	var trees []core.NamedTree
	for _, h := range []struct{ name, xml string }{{"pages", pages}, {"words", b.String()}} {
		root, err := xmlparse.Parse(h.xml, xmlparse.Options{})
		if err != nil {
			t.Fatalf("parse %s: %v", h.name, err)
		}
		trees = append(trees, core.NamedTree{Name: h.name, Root: root})
	}
	d, err := core.Build(trees)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return d
}

func resolverFixture(t *testing.T) (mapResolver, *core.Document) {
	t.Helper()
	r := mapResolver{
		"alpha": resolverDoc(t, "alpha", "one", "two"),
		"beta":  resolverDoc(t, "beta", "three"),
		"extra": resolverDoc(t, "extra", "four", "five", "six"),
	}
	return r, r["alpha"]
}

func evalResolver(t *testing.T, base *core.Document, r xquery.Resolver, src string) (string, error) {
	t.Helper()
	q, err := xquery.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	res, err := q.EvalWithResolver(base, nil, r)
	if err != nil {
		return "", err
	}
	return xquery.Serialize(res), nil
}

func TestDocFunction(t *testing.T) {
	r, base := resolverFixture(t)
	cases := []struct{ name, src, want string }{
		{"doc path", `for $w in doc("beta")/descendant::w return string($w)`, "beta three"},
		{"doc count", `count(doc("extra")/descendant::w)`, "4"},
		{"doc same doc", `count(doc("alpha")/descendant::w)`, "3"},
		{"doc extended axis", `count(doc("extra")/descendant::w[overlapping::page])`, "1"},
		{"doc hier test", `count(doc("beta")/descendant::text('words'))`, "3"},
		{"mix base and doc", `count(/descendant::w) + count(doc("beta")/descendant::w)`, "5"},
		// "/" inside a predicate on a foreign node is that node's own
		// tree root (XPath), not the active document's: beta has 2 w's,
		// so the predicate holds for both of them.
		{"absolute path in foreign context", `count(doc("beta")/descendant::w[count(/descendant::w) = 2])`, "2"},
		// The 0-arg doc-scoped extensions follow the context item too
		// (a path step sets the context item; a for-binding does not).
		{"base-text in foreign context", `doc("beta")/descendant::w[1]/base-text()`, "beta three"},
		{"root() equals / in foreign context", `count(doc("beta")/descendant::w[root(.) is /])`, "2"},
	}
	for _, tc := range cases {
		got, err := evalResolver(t, base, r, tc.src)
		if err != nil {
			t.Errorf("%s: error %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestCollectionFunction(t *testing.T) {
	r, base := resolverFixture(t)
	cases := []struct{ name, src, want string }{
		{"all roots", `count(collection())`, "3"},
		{"glob", `count(collection("a*"))`, "1"},
		{"words across docs", `sum(for $d in collection() return count($d/descendant::w))`, "9"},
		{"direct path from collection", `count(collection()/descendant::w)`, "9"},
		{"glob words", `for $w in collection("beta")/descendant::w return string($w)`, "beta three"},
	}
	for _, tc := range cases {
		got, err := evalResolver(t, base, r, tc.src)
		if err != nil {
			t.Errorf("%s: error %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestAnalyzeStringOnForeignDoc: analyze-string must run over the
// analyzed node's own document (its spans index that document's base
// text), and must not clobber the active document for later steps.
func TestAnalyzeStringOnForeignDoc(t *testing.T) {
	r, base := resolverFixture(t)
	// beta's first word is "beta"; the match is against beta's text,
	// not alpha's. The trailing count runs against the active document
	// (alpha, 3 words) after the overlay was created.
	got, err := evalResolver(t, base, r,
		`(serialize(analyze-string(doc("beta")/descendant::w[1], ".*et.*")), count(/descendant::w))`)
	if err != nil {
		t.Fatal(err)
	}
	if want := `<res>b<m>et</m>a</res> 3`; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	// Navigating from the temporary hierarchy's nodes still works.
	got, err = evalResolver(t, base, r,
		`string(analyze-string(doc("beta")/descendant::w[1], ".*et.*")/child::m)`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "et" {
		t.Errorf("child::m of overlay = %q, want %q", got, "et")
	}
}

func TestDocFunctionErrors(t *testing.T) {
	r, base := resolverFixture(t)

	// Unknown document name.
	if _, err := evalResolver(t, base, r, `doc("nope")`); err == nil || !strings.Contains(err.Error(), "FODC0002") {
		t.Errorf("doc(unknown): got %v, want FODC0002", err)
	}
	// Bad glob pattern.
	if _, err := evalResolver(t, base, r, `collection("[")`); err == nil || !strings.Contains(err.Error(), "FODC0004") {
		t.Errorf("collection(bad glob): got %v, want FODC0004", err)
	}
	// No resolver: both functions are unavailable.
	if _, err := xquery.EvalString(base, `doc("alpha")`); err == nil || !strings.Contains(err.Error(), "FODC0002") {
		t.Errorf("doc without resolver: got %v, want FODC0002", err)
	}
	if _, err := xquery.EvalString(base, `collection()`); err == nil || !strings.Contains(err.Error(), "FODC0004") {
		t.Errorf("collection without resolver: got %v, want FODC0004", err)
	}
}
