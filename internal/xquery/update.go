package xquery

// This file implements the update-expression layer over the core
// copy-on-write engine (core/update.go): a small XQuery-Update-style
// language whose target expressions are full extended-XQuery paths.
//
//	UpdateExpr  := UpdatePrim ("," UpdatePrim)*
//	UpdatePrim  := "insert" "node" Name ("into"|"before"|"after") ExprSingle
//	             | "delete" "node" ExprSingle
//	             | "rename" "node" ExprSingle "as" ExprSingle
//	             | "replace" "value" "of" "node" ExprSingle "with" ExprSingle
//	             | "insert" "hierarchy" StringLiteral "from" ExprSingle
//	             | "delete" "hierarchy" StringLiteral
//
// Semantics follow the XQuery Update Facility's pending-update-list
// model, adapted to multihierarchical documents: every target
// expression is evaluated against the SAME pre-update document version,
// the resulting primitives form one batch, and the batch applies
// atomically — either a whole new version is produced or nothing
// changes. Because base text is the document's backbone, "insert node"
// never adds text: "into" wraps the target's children in the new
// element, "before"/"after" insert an empty element at the target's
// edge. "insert hierarchy … from E" persists span-carrying nodes —
// typically the <m> matches of an analyze-string overlay — as a new
// named hierarchy, the durable form of the paper's temporary
// hierarchies.
//
// Error codes: XPST0003 for parse errors (the shared lexer), MHXQ0101
// for target-shape errors (non-node targets, multiple items where one
// is required), MHXQ0102 for update application errors (CMH vocabulary
// conflicts, boundary violations, conflicting edits).

import (
	stdctx "context"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// updKind identifies one update primitive form.
type updKind uint8

const (
	updInsertNode updKind = iota
	updDeleteNode
	updRenameNode
	updReplaceValue
	updAddHier
	updRemoveHier
)

// updOp is one compiled update primitive. Target and with are compiled
// as self-contained queries so they reuse the plan cache, cursors and
// EXPLAIN machinery of the read side.
type updOp struct {
	kind   updKind
	mode   byte   // insert node: 'i' into, 'b' before, 'a' after
	name   string // element name (insert node) or hierarchy name
	target *Query
	with   *Query
}

// Update is a compiled update expression: an ordered list of
// primitives. An Update is immutable and safe for concurrent Apply
// against any number of documents.
type Update struct {
	src string
	ops []*updOp
}

// Source returns the update expression text.
func (u *Update) Source() string { return u.src }

// CompileUpdate parses an update expression.
func CompileUpdate(src string) (u *Update, err error) {
	defer func() {
		if r := recover(); r != nil {
			lp, ok := r.(lexPanic)
			if !ok {
				panic(r)
			}
			u, err = nil, lp.err
		}
	}()
	p := &parser{src: src, lex: &lexer{src: src}}
	p.advance()
	u = &Update{src: src}
	for {
		u.ops = append(u.ops, p.parseUpdatePrim(src))
		if p.tok.kind != tComma {
			break
		}
		p.advance()
	}
	if p.tok.kind != tEOF {
		p.fail("unexpected %s after update expression", p.tok.kind)
	}
	return u, nil
}

// subQuery wraps a parsed sub-expression as a standalone compiled
// query (plan-cached, cursor-executed like any read query).
func subQuery(src string, e expr) *Query {
	return &Query{src: src, body: e, strictOnly: hasAnalyzeString(e)}
}

// parseUpdatePrim parses one update primitive at the current token.
func (p *parser) parseUpdatePrim(src string) *updOp {
	switch {
	case p.eatName("insert"):
		if p.eatName("node") {
			op := &updOp{kind: updInsertNode}
			op.name = p.expect(tName).text
			switch {
			case p.eatName("into"):
				op.mode = 'i'
			case p.eatName("before"):
				op.mode = 'b'
			case p.eatName("after"):
				op.mode = 'a'
			default:
				p.fail(`expected "into", "before" or "after"`)
			}
			op.target = subQuery(src, p.parseExprSingle())
			return op
		}
		if p.eatName("hierarchy") {
			op := &updOp{kind: updAddHier}
			op.name = p.expect(tString).text
			p.expectName("from")
			op.with = subQuery(src, p.parseExprSingle())
			return op
		}
		p.fail(`expected "node" or "hierarchy" after "insert"`)
	case p.eatName("delete"):
		if p.eatName("node") {
			return &updOp{kind: updDeleteNode, target: subQuery(src, p.parseExprSingle())}
		}
		if p.eatName("hierarchy") {
			return &updOp{kind: updRemoveHier, name: p.expect(tString).text}
		}
		p.fail(`expected "node" or "hierarchy" after "delete"`)
	case p.eatName("rename"):
		p.expectName("node")
		op := &updOp{kind: updRenameNode}
		op.target = subQuery(src, p.parseExprSingle())
		p.expectName("as")
		op.with = subQuery(src, p.parseExprSingle())
		return op
	case p.eatName("replace"):
		p.expectName("value")
		p.expectName("of")
		p.expectName("node")
		op := &updOp{kind: updReplaceValue}
		op.target = subQuery(src, p.parseExprSingle())
		p.expectName("with")
		op.with = subQuery(src, p.parseExprSingle())
		return op
	}
	p.fail("expected an update expression (insert/delete/rename/replace)")
	return nil
}

// UpdateReport summarizes one applied update: the primitive count, the
// resolved edit count, and the core engine's copy-on-write statistics.
type UpdateReport struct {
	Ops   int
	Edits int
	Stats core.UpdateStats
}

// Apply evaluates the update's target expressions against d (one
// snapshot — the pending-update-list model) and applies the resulting
// batch, returning the new document version. d itself is never
// mutated. A no-op update (all targets empty) returns d unchanged.
func (u *Update) Apply(d *core.Document) (*core.Document, *UpdateReport, error) {
	return u.ApplyContext(nil, d, nil)
}

// ApplyContext is Apply under a cancellation context and an optional
// resolver backing doc()/collection() inside target expressions.
func (u *Update) ApplyContext(ctx stdctx.Context, d *core.Document, r Resolver) (*core.Document, *UpdateReport, error) {
	var edits []core.Edit
	for _, op := range u.ops {
		ops, err := op.resolve(ctx, d, r)
		if err != nil {
			return nil, nil, err
		}
		edits = append(edits, ops...)
	}
	nd, stats, err := d.Apply(edits)
	if err != nil {
		return nil, nil, errf("MHXQ0102", "%v", err)
	}
	return nd, &UpdateReport{Ops: len(u.ops), Edits: len(edits), Stats: *stats}, nil
}

// evalNodes evaluates a target query to element (or, when allowText,
// text) nodes.
func (op *updOp) evalNodes(ctx stdctx.Context, d *core.Document, r Resolver, q *Query, allowText bool) ([]*dom.Node, error) {
	seq, err := q.EvalContext(ctx, d, nil, r)
	if err != nil {
		return nil, err
	}
	out := make([]*dom.Node, 0, len(seq))
	for _, it := range seq {
		n, ok := it.(*dom.Node)
		if !ok {
			return nil, errf("MHXQ0101", "update target yields a non-node item (%T)", it)
		}
		if n.Kind != dom.Element && !(allowText && n.Kind == dom.Text) {
			return nil, errf("MHXQ0101", "update target yields a %s node", n.Kind)
		}
		out = append(out, n)
	}
	return out, nil
}

// evalString evaluates a with-query to a single string.
func (op *updOp) evalString(ctx stdctx.Context, d *core.Document, r Resolver, q *Query, what string) (string, error) {
	seq, err := q.EvalContext(ctx, d, nil, r)
	if err != nil {
		return "", err
	}
	if len(seq) != 1 {
		return "", errf("MHXQ0101", "%s requires exactly one item, got %d", what, len(seq))
	}
	return stringValue(atomize(seq[0])), nil
}

// resolve turns one primitive into its core edits.
func (op *updOp) resolve(ctx stdctx.Context, d *core.Document, r Resolver) ([]core.Edit, error) {
	switch op.kind {
	case updDeleteNode:
		targets, err := op.evalNodes(ctx, d, r, op.target, false)
		if err != nil {
			return nil, err
		}
		edits := make([]core.Edit, len(targets))
		for i, t := range targets {
			edits[i] = core.Edit{Kind: core.EditDelete, Target: t}
		}
		return edits, nil
	case updRenameNode:
		targets, err := op.evalNodes(ctx, d, r, op.target, false)
		if err != nil {
			return nil, err
		}
		if len(targets) == 0 {
			return nil, nil
		}
		name, err := op.evalString(ctx, d, r, op.with, "rename")
		if err != nil {
			return nil, err
		}
		edits := make([]core.Edit, len(targets))
		for i, t := range targets {
			edits[i] = core.Edit{Kind: core.EditRename, Target: t, Name: name}
		}
		return edits, nil
	case updInsertNode:
		targets, err := op.evalNodes(ctx, d, r, op.target, false)
		if err != nil {
			return nil, err
		}
		edits := make([]core.Edit, len(targets))
		for i, t := range targets {
			switch op.mode {
			case 'i':
				edits[i] = core.Edit{Kind: core.EditWrap, Target: t, Name: op.name, From: 0, To: -1}
			case 'b':
				edits[i] = core.Edit{Kind: core.EditInsertBefore, Target: t, Name: op.name}
			default:
				edits[i] = core.Edit{Kind: core.EditInsertAfter, Target: t, Name: op.name}
			}
		}
		return edits, nil
	case updReplaceValue:
		targets, err := op.evalNodes(ctx, d, r, op.target, true)
		if err != nil {
			return nil, err
		}
		if len(targets) == 0 {
			return nil, nil
		}
		text, err := op.evalString(ctx, d, r, op.with, "replace value")
		if err != nil {
			return nil, err
		}
		edits := make([]core.Edit, len(targets))
		for i, t := range targets {
			edits[i] = core.Edit{Kind: core.EditReplaceText, Target: t, Text: text}
		}
		return edits, nil
	case updAddHier:
		// The source expression typically contains analyze-string: its
		// overlay lives only for this evaluation, but the span trees we
		// clone out of it survive as the new persistent hierarchy.
		nodes, err := op.evalNodes(ctx, d, r, op.with, false)
		if err != nil {
			return nil, err
		}
		if len(nodes) == 0 {
			return nil, errf("MHXQ0101", "insert hierarchy %q: source expression selected no elements", op.name)
		}
		tops := make([]*dom.Node, len(nodes))
		for i, n := range nodes {
			tops[i] = n.CloneSpan()
		}
		return []core.Edit{{Kind: core.EditAddHierarchy, Name: op.name, Tops: tops}}, nil
	case updRemoveHier:
		return []core.Edit{{Kind: core.EditRemoveHierarchy, Name: op.name}}, nil
	}
	return nil, errf("MHXQ0101", "unknown update primitive")
}

// Describe returns the update's physical operator tree for d: one node
// per primitive, with the lowered plan of each target/source expression
// beneath it — the EXPLAIN surface of the write path.
func (u *Update) Describe(d *core.Document) *ExplainOp {
	root := &ExplainOp{Op: "update"}
	for _, op := range u.ops {
		var detail string
		switch op.kind {
		case updInsertNode:
			detail = "insert node " + op.name + " " + map[byte]string{'i': "into", 'b': "before", 'a': "after"}[op.mode]
		case updDeleteNode:
			detail = "delete node"
		case updRenameNode:
			detail = "rename node"
		case updReplaceValue:
			detail = "replace value"
		case updAddHier:
			detail = "insert hierarchy " + op.name
		case updRemoveHier:
			detail = "delete hierarchy " + op.name
		}
		en := &ExplainOp{Op: "update-prim", Detail: detail}
		if op.target != nil {
			en.Children = append(en.Children, op.target.PlanFor(d).Describe())
		}
		if op.with != nil {
			en.Children = append(en.Children, op.with.PlanFor(d).Describe())
		}
		root.Children = append(root.Children, en)
	}
	return root
}
