package xquery

import (
	"bytes"
	"strings"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/store"
)

// mustEval evaluates src against d and serializes the result.
func mustEval(t *testing.T, d *core.Document, src string) string {
	t.Helper()
	out, err := EvalString(d, src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return out
}

// mustUpdate compiles and applies an update, returning the new version.
func mustUpdate(t *testing.T, d *core.Document, src string) (*core.Document, *UpdateReport) {
	t.Helper()
	u, err := CompileUpdate(src)
	if err != nil {
		t.Fatalf("CompileUpdate(%s): %v", src, err)
	}
	nd, rep, err := u.Apply(d)
	if err != nil {
		t.Fatalf("Apply(%s): %v", src, err)
	}
	return nd, rep
}

func TestUpdateParseErrors(t *testing.T) {
	cases := []string{
		"",
		"insert",
		"insert node",
		"insert node 123 into //w",
		"insert node x sideways //w",
		"delete //w",
		"rename node //w",
		"replace node //w with 'x'",
		"delete node //w extra",
		"insert hierarchy marks from //w", // name must be a string literal
	}
	for _, src := range cases {
		if _, err := CompileUpdate(src); err == nil {
			t.Errorf("CompileUpdate(%q): expected error", src)
		} else if xe, ok := err.(*Error); !ok || xe.Code == "" {
			t.Errorf("CompileUpdate(%q): error without code: %v", src, err)
		}
	}
}

func TestUpdateDeleteRenameInsert(t *testing.T) {
	d := corpus.MustBoethius()
	before := mustEval(t, d, `count(//dmg)`)

	nd, rep := mustUpdate(t, d, `delete node (//dmg)[1]`)
	if rep.Edits != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if got, want := mustEval(t, nd, `count(//dmg)`), "1"; got != want {
		t.Fatalf("count(//dmg) after delete = %s, want %s (before: %s)", got, want, before)
	}
	// The original version is untouched — snapshot semantics.
	if got := mustEval(t, d, `count(//dmg)`); got != before {
		t.Fatalf("original version changed: %s -> %s", before, got)
	}

	nd2, _ := mustUpdate(t, nd, `rename node //dmg as "damage-span"`)
	if got := mustEval(t, nd2, `count(//damage-span)`); got != "1" {
		t.Fatalf("count(//damage-span) = %s", got)
	}
	if nd2.Rev != 2 {
		t.Fatalf("Rev = %d, want 2", nd2.Rev)
	}

	// A single compiled query follows version signatures: the name
	// "damage-span" did not exist in nd, so a stale plan would
	// hard-code an empty index run.
	q := MustCompile(`count(//damage-span)`)
	if res, err := q.Eval(nd); err != nil || Serialize(res) != "0" {
		t.Fatalf("on v1: %v %v", res, err)
	}
	if res, err := q.Eval(nd2); err != nil || Serialize(res) != "1" {
		t.Fatalf("on v2: %v %v", res, err)
	}

	// Wrap all children of a w element; then point inserts around it.
	nd3, _ := mustUpdate(t, nd2, `insert node stem into (//w)[2], insert node anchor before (//w)[2]`)
	if got := mustEval(t, nd3, `count(//stem)`); got != "1" {
		t.Fatalf("count(//stem) = %s", got)
	}
	if got := mustEval(t, nd3, `count(//anchor)`); got != "1" {
		t.Fatalf("count(//anchor) = %s", got)
	}
	// The wrap preserves the text exactly.
	if got, want := mustEval(t, nd3, `string((//w)[2])`), mustEval(t, d, `string((//w)[2])`); got != want {
		t.Fatalf("wrapped word = %q, want %q", got, want)
	}
}

func TestUpdateReplaceValue(t *testing.T) {
	d := corpus.MustBoethius()
	orig := mustEval(t, d, `string((//w)[1])`)
	repl := strings.Repeat("x", len(orig))
	nd, _ := mustUpdate(t, d, `replace value of node (//w)[1] with "`+repl+`"`)
	if got := mustEval(t, nd, `string((//w)[1])`); got != repl {
		t.Fatalf("replaced word = %q, want %q", got, repl)
	}
	if got := mustEval(t, d, `string((//w)[1])`); got != orig {
		t.Fatalf("original mutated: %q", got)
	}
}

func TestUpdatePersistAnalyzeStringOverlay(t *testing.T) {
	d := corpus.MustBoethius()
	// Persist the matches of an analyze-string overlay as a durable
	// hierarchy, then query it like any other hierarchy — including
	// through a binary store round-trip.
	nd, rep := mustUpdate(t, d, `insert hierarchy "marks" from analyze-string(/, "gecynde")/child::m`)
	if rep.Stats.HierarchiesAdded != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if got := nd.HierarchyNames(); got[len(got)-1] != "marks" {
		t.Fatalf("hierarchies = %v", got)
	}
	if got := mustEval(t, nd, `string(/descendant::m)`); got != "gecynde" {
		t.Fatalf("persisted match = %q", got)
	}
	if got := mustEval(t, nd, `count(/descendant::node('marks'))`); got == "0" {
		t.Fatal("hierarchy-qualified test found nothing in marks")
	}
	// The persisted overlay interacts with the other hierarchies.
	if got := mustEval(t, nd, `count(//m[xdescendant::w or xancestor::w or overlapping::w])`); got != "1" {
		t.Fatalf("m vs w interaction = %q", got)
	}

	var img bytes.Buffer
	if err := store.Encode(&img, nd); err != nil {
		t.Fatal(err)
	}
	rd, err := store.Decode(&img)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, rd, `string(/descendant::m)`); got != "gecynde" {
		t.Fatalf("after store round-trip: %q", got)
	}

	// And remove it again.
	nd2, _ := mustUpdate(t, nd, `delete hierarchy "marks"`)
	if got := mustEval(t, nd2, `count(//m)`); got != "0" {
		t.Fatalf("count(//m) after removal = %s", got)
	}
}

func TestUpdateErrorCodes(t *testing.T) {
	d := corpus.MustBoethius()
	cases := []struct {
		src  string
		code string
	}{
		{`delete node 42`, "MHXQ0101"},
		{`rename node //w as ("a","b")`, "MHXQ0101"},
		{`rename node //w as "line"`, "MHXQ0102"},           // vocabulary of another hierarchy
		{`delete node /`, "MHXQ0102"},                       // the shared root cannot be edited
		{`delete hierarchy "nope"`, "MHXQ0102"},             // unknown hierarchy
		{`insert hierarchy "x" from (//w)[99]`, "MHXQ0101"}, // empty source
		{`insert node w into (//line)[1]`, "MHXQ0102"},      // w belongs to structure, not physical
	}
	for _, c := range cases {
		u, err := CompileUpdate(c.src)
		if err != nil {
			t.Fatalf("CompileUpdate(%s): %v", c.src, err)
		}
		_, _, err = u.Apply(d)
		if err == nil {
			t.Errorf("%s: expected error", c.src)
			continue
		}
		xe, ok := err.(*Error)
		if !ok || xe.Code != c.code {
			t.Errorf("%s: error %v, want code %s", c.src, err, c.code)
		}
	}
}

func TestUpdateDescribe(t *testing.T) {
	d := corpus.MustBoethius()
	u, err := CompileUpdate(`rename node (//w)[1] as "word", delete hierarchy "damage"`)
	if err != nil {
		t.Fatal(err)
	}
	tree := u.Describe(d)
	if tree.Op != "update" || len(tree.Children) != 2 {
		t.Fatalf("describe tree = %+v", tree)
	}
	if tree.Children[0].Op != "update-prim" || len(tree.Children[0].Children) == 0 {
		t.Fatalf("first primitive has no lowered plan: %+v", tree.Children[0])
	}
}
