package xquery

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/xmlparse"
)

// ---- EXPLAIN / operator selection -----------------------------------------

// findOps returns every node of the explain tree with the given op.
func findOps(n *ExplainOp, op string) []*ExplainOp {
	var out []*ExplainOp
	if n.Op == op {
		out = append(out, n)
	}
	for _, k := range n.Children {
		out = append(out, findOps(k, op)...)
	}
	return out
}

// TestExplainIndexScanSelected checks that //name-leading paths run as
// index-scan operators and that the observed cardinalities match the
// query result.
func TestExplainIndexScanSelected(t *testing.T) {
	d := corpus.MustBoethius()
	for _, tc := range []struct {
		src    string
		detail string
		rows   int64
	}{
		{`/descendant::line`, "descendant::line", 2},
		{`//w`, "descendant::w", 6}, // the // abbreviation is fused at plan time
		{`/descendant-or-self::dmg`, "descendant-or-self::dmg", 2},
	} {
		q := MustCompile(tc.src)
		seq, tree, err := q.Explain(d, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		scans := findOps(tree, "index-scan")
		if len(scans) != 1 {
			t.Fatalf("%s: %d index-scan ops, want 1", tc.src, len(scans))
		}
		sc := scans[0]
		if !sc.Index || !strings.HasPrefix(sc.Detail, tc.detail) {
			t.Errorf("%s: index-scan = %+v", tc.src, sc)
		}
		if sc.OutRows != tc.rows || int64(len(seq)) != tc.rows {
			t.Errorf("%s: out_rows=%d len=%d, want %d", tc.src, sc.OutRows, len(seq), tc.rows)
		}
		if sc.Calls != 1 {
			t.Errorf("%s: calls=%d, want 1", tc.src, sc.Calls)
		}
	}
}

// TestExplainPaperQueryI1 checks the paper's Query I.1 runs its leading
// step as an index scan and nests the predicate's axis steps under it.
func TestExplainPaperQueryI1(t *testing.T) {
	d := corpus.MustBoethius()
	q := MustCompile(`for $l in /descendant::line
  [xdescendant::w[string(.) = 'singallice'] or overlapping::w[string(.) = 'singallice']]
return string($l)`)
	_, tree, err := q.Explain(d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	scans := findOps(tree, "index-scan")
	if len(scans) != 1 || !strings.HasPrefix(scans[0].Detail, "descendant::line") {
		t.Fatalf("index-scan ops = %+v", scans)
	}
	if len(findOps(scans[0], "axis-step")) == 0 {
		t.Error("predicate axis steps not nested under the index scan")
	}
	if scans[0].OutRows != 2 {
		t.Errorf("index scan out_rows = %d, want 2 (both lines pass)", scans[0].OutRows)
	}
}

// chainDoc builds a two-hierarchy document with nested uniform markup
// for chain-scan tests.
func chainDoc(t testing.TB) *core.Document {
	t.Helper()
	trees := make([]core.NamedTree, 0, 2)
	for _, h := range []struct{ name, xml string }{
		{"str", `<r><s><p>ab</p><p>cd</p></s><s><p>ef</p></s></r>`},
		{"phys", `<r><pg>abc</pg><pg>def</pg></r>`},
	} {
		root, err := xmlparse.Parse(h.xml, xmlparse.Options{})
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, core.NamedTree{Name: h.name, Root: root})
	}
	d, err := core.Build(trees)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestExplainChainScan checks a leading child:: chain is lowered to one
// chain-scan operator and selects the right nodes.
func TestExplainChainScan(t *testing.T) {
	d := chainDoc(t)
	for _, tc := range []struct {
		src  string
		rows int64
	}{
		{`/child::s/child::p`, 3},
		{`/child::s/child::s`, 0},  // wrong nesting: parent check fails
		{`/child::p/child::ab`, 0}, // absent name: empty without scanning
	} {
		q := MustCompile(tc.src)
		seq, tree, err := q.Explain(d, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		chains := findOps(tree, "chain-scan")
		if len(chains) != 1 || !chains[0].Index {
			t.Fatalf("%s: chain-scan ops = %+v", tc.src, chains)
		}
		if int64(len(seq)) != tc.rows || chains[0].OutRows != tc.rows {
			t.Errorf("%s: len=%d out_rows=%d, want %d", tc.src, len(seq), chains[0].OutRows, tc.rows)
		}
	}
}

// TestPlanCache checks plans are cached per hierarchy signature and not
// shared across different layouts.
func TestPlanCache(t *testing.T) {
	q := MustCompile(`/descendant::w`)
	b := corpus.MustBoethius()
	if q.PlanFor(b) != q.PlanFor(b) {
		t.Error("same document: plan not reused")
	}
	other := chainDoc(t)
	if q.PlanFor(b) == q.PlanFor(other) {
		t.Error("different hierarchy layouts share one plan")
	}
	if q.PlanFor(b).Signature() == q.PlanFor(other).Signature() {
		t.Error("signatures collide")
	}
}

// ---- differential sweep: planner vs reference oracle ----------------------

// planPaperQueries mirrors the paper-query sources of paper_test.go and
// the P9 fixtures of bench_test.go (both live in external test packages
// and cannot be imported here); keep them in sync.
var planPaperQueries = []string{
	// Query I.1
	`for $l in /descendant::line
  [xdescendant::w[string(.) = 'singallice'] or overlapping::w[string(.) = 'singallice']]
return string($l)`,
	// Query I.2 strict
	`for $l in /descendant::line[xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return ( for $leaf in $l/descendant::leaf() return
   if ($leaf[ancestor::w and ancestor::dmg]) then <b>{$leaf}</b> else $leaf
 , <br/> )`,
	// Query I.2 word-level
	`for $l in /descendant::line[xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return ( for $leaf in $l/descendant::leaf() return
   if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]) then <b>{$leaf}</b> else $leaf
 , <br/> )`,
	// Definition 4, Example 1
	`for $w in /descendant::w[string(.) = 'unawendendne']
return serialize(analyze-string($w, ".*un<a>a</a>we.*"))`,
	// Query II.1
	`for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $n in $res/child::node()
  return if ($n[self::m]) then <b>{string($n)}</b> else string($n)
  ,
  <br/>
)`,
	// Query III.1 match-level
	`for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $n in $res/child::node()
  return
    if ($n[self::m][xancestor::res('restoration') or xdescendant::res('restoration') or overlapping::res('restoration')])
    then <i><b>{string($n)}</b></i>
    else <b>{string($n)}</b>
  ,
  <br/>
)`,
	// Query III.1 leaf-level
	`for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $leaf in $res/descendant::leaf()
  return
    if ($leaf/xancestor::m and $leaf/xancestor::res('restoration')) then <i><b>{$leaf}</b></i>
    else if ($leaf/xancestor::m) then <b>{$leaf}</b>
    else string($leaf)
  ,
  <br/>
)`,
	// P9 path-pipeline fixtures
	`count(/descendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg])`,
	`count(/descendant::w[overlapping::line])`,
	`count(/descendant::vline/child::w/descendant::leaf())`,
	`count(/descendant::vline/child::w[1])`,
}

// TestPlanDifferentialPaperQueries runs every paper query and P9
// fixture through the planner and requires the oracle's result.
// Constructors and analyze-string rebuild nodes per evaluation, so the
// comparison is serialization (pure path queries are additionally
// node-identity-checked by the fuzz sweep below).
func TestPlanDifferentialPaperQueries(t *testing.T) {
	for name, d := range diffDocs(t) {
		for _, src := range planPaperQueries {
			fast, ref, fastErr, refErr := evalBoth(t, d, src)
			if (fastErr == nil) != (refErr == nil) {
				t.Errorf("%s: %q: planner err=%v, reference err=%v", name, src, fastErr, refErr)
				continue
			}
			if fastErr != nil {
				continue
			}
			if Serialize(fast) != Serialize(ref) {
				t.Errorf("%s: %q:\n  planner:   %s\n  reference: %s",
					name, src, Serialize(fast), Serialize(ref))
			}
		}
	}
}

// ---- fuzz: random path expressions ----------------------------------------

var fuzzAxes = []string{
	"child", "descendant", "descendant-or-self", "parent", "ancestor",
	"ancestor-or-self", "following", "preceding", "following-sibling",
	"preceding-sibling", "self", "xdescendant", "xancestor", "xfollowing",
	"xpreceding", "overlapping", "preceding-overlapping", "following-overlapping",
}

var fuzzTests = []string{
	"w", "line", "vline", "dmg", "res", "zzz", "node()", "text()", "leaf()",
	"*", "w('structure')", "node('physical')", "leaf('physical,damage')",
	"line('nope')", "w('structure,damage')", "dmg('damage,damage')",
}

var fuzzPreds = []string{
	"", "", "", "[1]", "[2]", "[last()]", "[position() <= 2]", "[xdescendant::w]",
}

// randomPath generates one random (possibly abbreviated) absolute path
// expression.
func randomPath(r *rand.Rand) string {
	var b strings.Builder
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		if r.Intn(4) == 0 {
			b.WriteString("//")
			// After // an abbreviated name test half the time (the
			// fusion path), a full axis step otherwise.
			if r.Intn(2) == 0 {
				b.WriteString(fuzzTests[r.Intn(len(fuzzTests))])
				b.WriteString(fuzzPreds[r.Intn(len(fuzzPreds))])
				continue
			}
		} else {
			b.WriteString("/")
		}
		b.WriteString(fuzzAxes[r.Intn(len(fuzzAxes))])
		b.WriteString("::")
		b.WriteString(fuzzTests[r.Intn(len(fuzzTests))])
		b.WriteString(fuzzPreds[r.Intn(len(fuzzPreds))])
	}
	return b.String()
}

// randomChain generates a leading child:: chain (the chain-scan shape).
func randomChain(r *rand.Rand) string {
	names := []string{"cotext", "text", "line", "vline", "w", "dmg", "res", "zzz"}
	var b strings.Builder
	n := 2 + r.Intn(3)
	for i := 0; i < n; i++ {
		b.WriteString("/child::")
		b.WriteString(names[r.Intn(len(names))])
	}
	if r.Intn(3) == 0 {
		b.WriteString("/descendant::leaf()")
	}
	return b.String()
}

// TestPlanDifferentialRandomPaths is the fuzz-style sweep: hundreds of
// seeded random path expressions, planner vs oracle, node-identical.
func TestPlanDifferentialRandomPaths(t *testing.T) {
	r := rand.New(rand.NewSource(20260729))
	docs := diffDocs(t)
	queries := make([]string, 0, 260)
	for i := 0; i < 220; i++ {
		queries = append(queries, randomPath(r))
	}
	for i := 0; i < 40; i++ {
		queries = append(queries, randomChain(r))
	}
	for _, src := range queries {
		for name, d := range docs {
			fast, ref, fastErr, refErr := evalBoth(t, d, src)
			if (fastErr == nil) != (refErr == nil) {
				t.Errorf("%s: %q: planner err=%v, reference err=%v", name, src, fastErr, refErr)
				continue
			}
			if fastErr != nil {
				fe, fok := fastErr.(*Error)
				re, rok := refErr.(*Error)
				if !fok || !rok || fe.Code != re.Code {
					t.Errorf("%s: %q: planner err=%v, reference err=%v", name, src, fastErr, refErr)
				}
				continue
			}
			if !sameItems(fast, ref) {
				t.Errorf("%s: %q:\n  planner:   %s\n  reference: %s",
					name, src, Serialize(fast), Serialize(ref))
			}
		}
	}
}

// ---- race: index build vs analyze-string overlays -------------------------

// TestNameIndexConcurrentWithOverlays queries a document (building its
// structural name indexes lazily) while other goroutines run
// analyze-string queries that create overlay documents sharing the same
// hierarchies — the lazy index build must be race-free (run with
// -race, as CI does).
func TestNameIndexConcurrentWithOverlays(t *testing.T) {
	trees, err := corpus.BoethiusTrees()
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Build(trees) // fresh document: indexes not yet built
	if err != nil {
		t.Fatal(err)
	}
	qIndex := MustCompile(`count(/descendant::w) + count(/descendant::line) + count(/descendant::dmg)`)
	// The overlay query advances its evaluation to an overlay document
	// and then index-scans through it, touching the shared base
	// hierarchies' indexes from the overlay side.
	qOverlay := MustCompile(`let $r := analyze-string(/descendant::w[2], "e")
return count(/descendant::line) + count($r/descendant::m)`)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := qIndex.Eval(d); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := qOverlay.Eval(d); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPlanOverlayIndexScan pins the single-evaluation overlay behavior:
// after analyze-string the active document is an overlay whose layout
// differs from the planned one, and the index scan must rebind and
// still produce oracle results.
func TestPlanOverlayIndexScan(t *testing.T) {
	d := corpus.MustBoethius()
	for _, src := range []string{
		// <m> exists only in the overlay: the plan-time binding (symbol
		// 0 in the base document) must not leak into the overlay scan.
		`let $r := analyze-string(/descendant::w[2], "en") return count($r/descendant::m)`,
		`let $r := analyze-string(/descendant::w[2], "en") return count(/descendant::m)`,
		// Base-hierarchy scan through the overlay document.
		`let $r := analyze-string(/descendant::w[2], "en") return count(/descendant::line)`,
	} {
		fast, ref, fastErr, refErr := evalBoth(t, d, src)
		if fastErr != nil || refErr != nil {
			t.Fatalf("%q: err %v / %v", src, fastErr, refErr)
		}
		if Serialize(fast) != Serialize(ref) {
			t.Errorf("%q: planner %s, reference %s", src, Serialize(fast), Serialize(ref))
		}
	}
}

// TestPlanExplainAcrossDocs checks a plan evaluates correctly against a
// document of a different layout than it was planned for (bindings
// revalidate by document pointer).
func TestPlanExplainAcrossDocs(t *testing.T) {
	q := MustCompile(`count(/descendant::p) , count(/descendant::w)`)
	b := corpus.MustBoethius()
	other := chainDoc(t)
	pl := q.PlanFor(b)
	seq, err := pl.Eval(other, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Serialize(seq); got != "3 0" {
		t.Fatalf("cross-document plan eval = %q, want \"3 0\"", got)
	}
}

func TestPlanDescribe(t *testing.T) {
	q := MustCompile(`/descendant::line[1]/child::node()`)
	tree := q.PlanFor(corpus.MustBoethius()).Describe()
	if tree.Op != "query" || len(findOps(tree, "index-scan")) != 1 || len(findOps(tree, "axis-step")) != 1 {
		t.Fatalf("describe tree = %+v", tree)
	}
}
