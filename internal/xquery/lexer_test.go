package xquery

import (
	"reflect"
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	var out []token
	defer func() {
		if r := recover(); r != nil {
			if lp, ok := r.(lexPanic); ok {
				t.Fatalf("lex %q: %v", src, lp.err)
			}
			panic(r)
		}
	}()
	l := &lexer{src: src}
	for {
		tok := l.next()
		if tok.kind == tEOF {
			return out
		}
		out = append(out, tok)
	}
}

func kinds(toks []token) []tokKind {
	out := make([]tokKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexerBasicTokens(t *testing.T) {
	toks := lexAll(t, `for $x in /descendant::w[. = 'y'] return count($x) + 1.5`)
	want := []tokKind{
		tName, tVar, tName, tSlash, tName, tColonColon, tName, tLBracket,
		tDot, tEq, tString, tRBracket, tName, tName, tLParen, tVar,
		tRParen, tPlus, tNumber,
	}
	if !reflect.DeepEqual(kinds(toks), want) {
		t.Errorf("kinds = %v, want %v", kinds(toks), want)
	}
}

func TestLexerTwoCharOperators(t *testing.T) {
	toks := lexAll(t, `// :: != <= >= << >> :=`)
	want := []tokKind{tSlashSlash, tColonColon, tNe, tLe, tGe, tLtLt, tGtGt, tAssign}
	if !reflect.DeepEqual(kinds(toks), want) {
		t.Errorf("kinds = %v", kinds(toks))
	}
}

func TestLexerNames(t *testing.T) {
	toks := lexAll(t, `analyze-string preceding-overlapping fn:string a.b _x`)
	if len(toks) != 5 {
		t.Fatalf("tokens = %v", toks)
	}
	wantTexts := []string{"analyze-string", "preceding-overlapping", "fn:string", "a.b", "_x"}
	for i, w := range wantTexts {
		if toks[i].kind != tName || toks[i].text != w {
			t.Errorf("token %d = %v %q, want name %q", i, toks[i].kind, toks[i].text, w)
		}
	}
	// "child::x" must not eat the '::'.
	toks = lexAll(t, `child::x`)
	if len(toks) != 3 || toks[0].text != "child" || toks[1].kind != tColonColon || toks[2].text != "x" {
		t.Errorf("child::x = %v", toks)
	}
}

func TestLexerNumbers(t *testing.T) {
	toks := lexAll(t, `1 2.5 .75 1e3 1.5E-2 3.`)
	wantNums := []float64{1, 2.5, 0.75, 1000, 0.015, 3}
	if len(toks) != len(wantNums) {
		t.Fatalf("tokens = %v", toks)
	}
	for i, w := range wantNums {
		if toks[i].kind != tNumber || toks[i].num != w {
			t.Errorf("num %d = %v %v, want %v", i, toks[i].kind, toks[i].num, w)
		}
	}
	// '.' then non-digit is a dot token; "1e" without exponent digits
	// falls back to "1" followed by name "e".
	toks = lexAll(t, `1e .`)
	if toks[0].kind != tNumber || toks[0].num != 1 || toks[1].kind != tName || toks[2].kind != tDot {
		t.Errorf("fallback = %v", toks)
	}
}

func TestLexerStrings(t *testing.T) {
	toks := lexAll(t, `"a""b" 'c''d' ""`)
	wantTexts := []string{`a"b`, "c'd", ""}
	for i, w := range wantTexts {
		if toks[i].kind != tString || toks[i].text != w {
			t.Errorf("string %d = %q", i, toks[i].text)
		}
	}
}

func TestLexerVariables(t *testing.T) {
	toks := lexAll(t, `$x $long-name $ns:v`)
	wantTexts := []string{"x", "long-name", "ns:v"}
	for i, w := range wantTexts {
		if toks[i].kind != tVar || toks[i].text != w {
			t.Errorf("var %d = %q", i, toks[i].text)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks := lexAll(t, `1 (: outer (: inner :) still :) 2`)
	if len(toks) != 2 || toks[0].num != 1 || toks[1].num != 2 {
		t.Errorf("comment handling = %v", toks)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `$`, `#`, `(: open`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("lex %q should panic", src)
				}
			}()
			l := &lexer{src: src}
			for {
				if l.next().kind == tEOF {
					return
				}
			}
		}()
	}
}

func TestTokenKindStrings(t *testing.T) {
	all := []tokKind{tEOF, tName, tVar, tString, tNumber, tLParen, tRParen,
		tLBracket, tRBracket, tLBrace, tRBrace, tComma, tSlash, tSlashSlash,
		tColonColon, tAt, tDot, tDotDot, tStar, tPlus, tMinus, tEq, tNe,
		tLt, tLe, tGt, tGe, tLtLt, tGtGt, tPipe, tAssign}
	for _, k := range all {
		if k.String() == "token?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
