package xquery

import (
	"sort"
	"strings"
	"sync"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// This file is the compile→plan→execute layer. Compile parses a query
// into an AST once; PlanFor lowers every path expression of that AST
// into explicit physical operators for one document hierarchy layout
// (core.Document.Signature), binding node tests to interned name
// symbols and hierarchy indices at plan time instead of per (step,
// document) during evaluation. Three physical operators exist beyond
// the generic pipeline step:
//
//   - index-scan: descendant::name and descendant-or-self::name steps
//     (including the //name abbreviation, whose descendant-or-self::
//     node()/child::name pair is fused at plan time) read the
//     structural name index (core nameindex.go) instead of walking the
//     GODDAG: per hierarchy, the ascending ordinal run of elements
//     bearing the name, restricted to the context subtree by binary
//     search, emitted in document order with no per-candidate test.
//   - chain-scan: a leading /child::a/child::b/… chain over an
//     absolute path scans the index run of the last name and verifies
//     each candidate's ancestor chain upward to the shared root —
//     O(matches · chain length) instead of a level-by-level walk.
//   - axis-step: everything else runs through the order-aware pipeline
//     (evalStep), unchanged.
//
// Plans are immutable and shared: all mutable evaluation state lives in
// evalState, and per-document bindings are revalidated by document
// pointer at run time, so a plan built against one document evaluates
// correctly against any other (overlay documents created by
// analyze-string included) — it is merely fastest on the layout it was
// planned for. Explain runs a plan with per-operator cardinality
// counters and renders the operator tree.

// ---- plan structure --------------------------------------------------------

// Plan is a query lowered to physical operators for one document
// hierarchy signature. A Plan is immutable and safe for concurrent
// evaluation.
type Plan struct {
	q     *Query
	doc   *core.Document
	sig   string
	paths []*pathPlan // indexed by pathExpr.id-1
	nOps  int
	root  *explainNode
}

// Query returns the compiled query this plan lowers.
func (pl *Plan) Query() *Query { return pl.q }

// Signature returns the document hierarchy signature the plan was built
// for.
func (pl *Plan) Signature() string { return pl.sig }

// pathPlan is the operator list of one path expression.
type pathPlan struct {
	p   *pathExpr
	ops []*pathOp
}

// Operator kinds.
const (
	opAxisStep  = iota // generic pipeline step (evalStep)
	opIndexScan        // structural name index scan
	opChainScan        // leading child:: chain via index + ancestor check
	opPrimStep         // primary-expression step (evalPrimStep)
)

// pathOp is one physical operator of a path plan.
type pathOp struct {
	kind int
	s    *step   // axis/index/primary operator: the underlying step
	chn  []*step // chain-scan: the consumed child:: steps
	id   int     // cardinality counter slot

	// Plan-time bindings for the planned document; revalidated by
	// document pointer at run time.
	bind      indexBinding
	chainBind chainBinding
}

// indexBinding is a node test resolved against one document at plan
// time: the interned name symbol and the hierarchy restriction as
// sorted, deduplicated indices.
type indexBinding struct {
	doc     *core.Document
	nameSym int32
	hierIdx []int
	hierErr error
}

// resolveIndexBinding binds a name-test step to d. The unknown-
// hierarchy error is recorded, not raised: the reference evaluator
// raises it only when a candidate actually reaches the hierarchy check.
func resolveIndexBinding(d *core.Document, s *step) indexBinding {
	b := indexBinding{doc: d, nameSym: d.NameSymOf(s.test.name)}
	for _, name := range s.test.hiers {
		h := d.HierarchyByName(name)
		if h == nil {
			b.hierErr = errf("MHXQ0001", "unknown hierarchy %q in node test", name)
			return b
		}
		b.hierIdx = append(b.hierIdx, h.Index)
	}
	if len(b.hierIdx) > 1 {
		// Scan runs in index order (document order) and only once each.
		sort.Ints(b.hierIdx)
		w := 1
		for _, hi := range b.hierIdx[1:] {
			if hi != b.hierIdx[w-1] {
				b.hierIdx[w] = hi
				w++
			}
		}
		b.hierIdx = b.hierIdx[:w]
	}
	return b
}

func (b *indexBinding) allows(hierIndex int) bool {
	if len(b.hierIdx) == 0 {
		return true
	}
	for _, hi := range b.hierIdx {
		if hi == hierIndex {
			return true
		}
	}
	return false
}

// chainBinding is a child:: chain resolved against one document: the
// interned symbol of every chain name. ok is false when any name occurs
// nowhere in the document (the chain selects nothing).
type chainBinding struct {
	doc  *core.Document
	syms []int32
	ok   bool
}

func resolveChainBinding(d *core.Document, chain []*step) chainBinding {
	b := chainBinding{doc: d, syms: make([]int32, len(chain)), ok: true}
	for i, s := range chain {
		if b.syms[i] = d.NameSymOf(s.test.name); b.syms[i] == 0 {
			b.ok = false
		}
	}
	return b
}

// ---- planner ---------------------------------------------------------------

type planner struct {
	pl *Plan
}

// newPlan lowers q's path expressions against d's hierarchy layout.
func newPlan(q *Query, d *core.Document) *Plan {
	pl := &Plan{q: q, doc: d, sig: d.Signature(), paths: make([]*pathPlan, q.nPaths)}
	pn := &planner{pl: pl}
	root := &explainNode{op: "query", id: -1}
	pn.walk(q.body, root)
	pl.root = root
	return pl
}

func (pn *planner) newOpID() int {
	id := pn.pl.nOps
	pn.pl.nOps++
	return id
}

func (pn *planner) walk(e expr, parent *explainNode) {
	if e == nil {
		return
	}
	if p, ok := e.(*pathExpr); ok {
		pn.planPath(p, parent)
		return
	}
	visitChildren(e, func(ch expr) { pn.walk(ch, parent) })
}

// indexableStep reports whether the step can run as an index scan: a
// descendant(-or-self) axis step with a plain name test. Predicates are
// allowed (they filter index candidates exactly as they filter axis
// candidates).
func indexableStep(s *step) bool {
	return s.prim == nil && s.test.kind == testName &&
		(s.axis == core.AxisDescendant || s.axis == core.AxisDescendantOrSelf)
}

// chainableStep reports whether the step can join a leading child::
// chain: child axis, plain unqualified name test, no predicates.
func chainableStep(s *step) bool {
	return s.prim == nil && s.axis == core.AxisChild && s.test.kind == testName &&
		len(s.test.hiers) == 0 && len(s.preds) == 0
}

// fusibleDOS reports whether the step is the bare descendant-or-self::
// node() that the // abbreviation expands to, with nothing attached.
func fusibleDOS(s *step) bool {
	return s.prim == nil && s.axis == core.AxisDescendantOrSelf &&
		s.test.kind == testNode && len(s.test.hiers) == 0 && len(s.preds) == 0
}

func (pn *planner) planPath(p *pathExpr, parent *explainNode) {
	if p.start != nil {
		pn.walk(p.start, parent)
	}
	node := &explainNode{op: "path", detail: describePath(p), id: -1}
	parent.kids = append(parent.kids, node)
	pp := &pathPlan{p: p}
	steps := p.steps
	i := 0
	// A leading chain of child::name steps over an absolute path. A
	// single child step stays on the (already cheap) axis pipeline.
	if p.absolute && p.start == nil {
		k := 0
		for k < len(steps) && chainableStep(steps[k]) {
			k++
		}
		if k >= 2 {
			op := &pathOp{kind: opChainScan, chn: steps[:k], id: pn.newOpID()}
			op.chainBind = resolveChainBinding(pn.pl.doc, op.chn)
			node.kids = append(node.kids, &explainNode{
				op: "chain-scan", detail: describeChain(op.chn), index: true, id: op.id,
			})
			pp.ops = append(pp.ops, op)
			i = k
		}
	}
	for ; i < len(steps); i++ {
		s := steps[i]
		// Fuse the // abbreviation (descendant-or-self::node()/
		// child::name with no predicates) into one descendant::name
		// index scan: the two select the same node set in the same
		// document order.
		if fusibleDOS(s) && i+1 < len(steps) {
			next := steps[i+1]
			if next.prim == nil && next.axis == core.AxisChild &&
				next.test.kind == testName && len(next.preds) == 0 {
				s = &step{axis: core.AxisDescendant, test: next.test}
				i++
			}
		}
		var op *pathOp
		var en *explainNode
		switch {
		case s.prim != nil:
			op = &pathOp{kind: opPrimStep, s: s, id: pn.newOpID()}
			en = &explainNode{op: "primary", detail: "expr()", id: op.id}
			node.kids = append(node.kids, en)
			pn.walk(s.prim, en)
			pp.ops = append(pp.ops, op)
			continue
		case indexableStep(s):
			op = &pathOp{kind: opIndexScan, s: s, id: pn.newOpID()}
			op.bind = resolveIndexBinding(pn.pl.doc, s)
			en = &explainNode{op: "index-scan", detail: describeStep(s), index: true, id: op.id}
		default:
			op = &pathOp{kind: opAxisStep, s: s, id: pn.newOpID()}
			en = &explainNode{op: "axis-step", detail: describeStep(s), id: op.id}
		}
		node.kids = append(node.kids, en)
		for _, pr := range s.preds {
			pn.walk(pr, en)
		}
		pp.ops = append(pp.ops, op)
	}
	if p.id > 0 && p.id <= len(pn.pl.paths) {
		pn.pl.paths[p.id-1] = pp
	}
}

// visitChildren invokes visit for every direct child expression of e.
// For path expressions this includes the start expression, every step
// predicate and every primary step body.
func visitChildren(e expr, visit func(expr)) {
	switch x := e.(type) {
	case *seqExpr:
		for _, it := range x.items {
			visit(it)
		}
	case *rangeExpr:
		visit(x.lo)
		visit(x.hi)
	case *orExpr:
		visit(x.a)
		visit(x.b)
	case *andExpr:
		visit(x.a)
		visit(x.b)
	case *cmpExpr:
		visit(x.a)
		visit(x.b)
	case *arithExpr:
		visit(x.a)
		visit(x.b)
	case *unaryExpr:
		visit(x.x)
	case *unionExpr:
		visit(x.a)
		visit(x.b)
	case *intersectExpr:
		visit(x.a)
		visit(x.b)
	case *ifExpr:
		visit(x.cond)
		visit(x.then)
		visit(x.els)
	case *quantExpr:
		for _, s := range x.srcs {
			visit(s)
		}
		visit(x.sat)
	case *flworExpr:
		for _, cl := range x.clauses {
			visit(cl.src)
		}
		for _, o := range x.order {
			visit(o.key)
		}
		visit(x.ret)
	case *callExpr:
		for _, a := range x.args {
			visit(a)
		}
	case *filterExpr:
		visit(x.base)
		for _, pr := range x.preds {
			visit(pr)
		}
	case *pathExpr:
		if x.start != nil {
			visit(x.start)
		}
		for _, s := range x.steps {
			for _, pr := range s.preds {
				visit(pr)
			}
			if s.prim != nil {
				visit(s.prim)
			}
		}
	case *elemExpr:
		for _, a := range x.attrs {
			for _, part := range a.parts {
				visit(part)
			}
		}
		for _, ce := range x.content {
			visit(ce)
		}
	case *compCtorExpr:
		if x.nameExpr != nil {
			visit(x.nameExpr)
		}
		if x.content != nil {
			visit(x.content)
		}
	}
}

// forEachPath invokes fn for every path expression in e, outermost
// first (Compile uses it to assign dense path ids).
func forEachPath(e expr, fn func(*pathExpr)) {
	if e == nil {
		return
	}
	if p, ok := e.(*pathExpr); ok {
		fn(p)
	}
	visitChildren(e, func(ch expr) { forEachPath(ch, fn) })
}

// ---- execution -------------------------------------------------------------

// opCard is one operator's observed cardinalities during an
// instrumented (Explain) evaluation.
type opCard struct {
	calls, in, out int64
}

func (pp *pathPlan) eval(c *context) (Seq, error) {
	p := pp.p
	var cur Seq
	switch {
	case p.start != nil:
		v, err := p.start.eval(c)
		if err != nil {
			return nil, err
		}
		cur = v
	case p.absolute:
		cur = Seq{c.st.rootFor(c.item)}
	default:
		if c.item == nil {
			return nil, errf("XPDY0002", "context item undefined at start of relative path")
		}
		cur = Seq{c.item}
	}
	for oi, op := range pp.ops {
		in := int64(len(cur))
		var err error
		switch op.kind {
		case opPrimStep:
			cur, err = evalPrimStep(c, cur, op.s, oi == len(pp.ops)-1)
		case opIndexScan:
			cur, err = evalIndexScan(c, cur, op)
		case opChainScan:
			cur, err = evalChainScan(c, cur, op)
		default:
			cur, err = evalStep(c, cur, op.s)
		}
		if err != nil {
			return nil, err
		}
		if ex := c.st.explain; ex != nil {
			ex[op.id].calls++
			ex[op.id].in += in
			ex[op.id].out += int64(len(cur))
		}
	}
	return cur, nil
}

// evalIndexScan evaluates a descendant(-or-self)::name step through the
// structural name index: per context node, the ascending ordinal run of
// matching elements (restricted to the context subtree), then the same
// positional shortcut, predicate filtering and segment merging as the
// generic pipeline. Atomic items and constructed (unindexed) context
// nodes delegate the whole step to the pipeline, which reproduces the
// reference semantics for them.
func evalIndexScan(c *context, cur Seq, op *pathOp) (Seq, error) {
	st := c.st
	s := op.s
	for _, it := range cur {
		n, ok := it.(*dom.Node)
		if !ok {
			return evalStep(c, cur, s) // raises XPTY0019 at the reference point
		}
		if n.Kind == dom.Attribute {
			continue // no descendants; indexable as an empty contribution
		}
		if _, ok := st.docFor(n).OrdinalOf(n); !ok {
			return evalStep(c, cur, s) // constructed tree: no index
		}
	}
	inclSelf := s.axis == core.AxisDescendantOrSelf
	var out Seq
	sorted := true
	var bind indexBinding
	for _, it := range cur {
		n := it.(*dom.Node)
		d := st.docFor(n)
		if bind.doc != d {
			if op.bind.doc == d {
				bind = op.bind
			} else {
				bind = resolveIndexBinding(d, s)
			}
		}
		if bind.nameSym == 0 {
			// The name occurs nowhere in this document: no candidate
			// matches, so not even an unknown-hierarchy error can
			// surface (the reference checks kind and name first).
			continue
		}
		segStart := len(out)
		var err error
		out, err = appendIndexSeg(c, out, d, n, s, &bind, inclSelf)
		if err != nil {
			return nil, err
		}
		seg := out[segStart:]
		if sorted && len(seg) > 0 && segStart > 0 &&
			dom.Compare(out[segStart-1].(*dom.Node), seg[0].(*dom.Node)) >= 0 {
			sorted = false
		}
	}
	if !sorted {
		return st.mergeDocOrder(out), nil
	}
	return out, nil
}

// appendIndexSeg appends one context node's result segment: index
// candidates (every one already passes the node test), the positional
// shortcut, then the remaining predicates — filterStep with the
// per-candidate test replaced by run selection.
func appendIndexSeg(c *context, out Seq, d *core.Document, n *dom.Node, s *step, bind *indexBinding, inclSelf bool) (Seq, error) {
	if bind.hierErr != nil {
		// Unknown hierarchy in the test: the reference raises the error
		// only when a candidate reaches the hierarchy check, i.e. when
		// a kind+name match exists among this context's candidates.
		if indexCandidateExists(d, n, bind.nameSym, inclSelf) {
			return nil, bind.hierErr
		}
		return out, nil
	}
	segStart := len(out)
	out = appendIndexCandidates(out, d, n, bind, inclSelf)
	preds := s.preds
	if s.posSel != 0 {
		seg := out[segStart:]
		var sel Item
		if s.posSel > 0 {
			if len(seg) >= s.posSel {
				sel = seg[s.posSel-1]
			}
		} else if len(seg) > 0 { // [last()]
			sel = seg[len(seg)-1]
		}
		out = out[:segStart]
		if sel == nil {
			return out, nil
		}
		out = append(out, sel)
		preds = preds[1:]
	}
	if len(preds) > 0 {
		kept, err := applyPredicatesInPlace(c, out[segStart:], preds)
		if err != nil {
			return nil, err
		}
		out = out[:segStart+len(kept)]
	}
	return out, nil
}

// appendIndexCandidates appends the index-selected candidates for one
// context node in ascending document order. Only the shared root and
// hierarchy elements can have element descendants; text, leaf and
// attribute contexts contribute nothing to a name test.
func appendIndexCandidates(out Seq, d *core.Document, n *dom.Node, bind *indexBinding, inclSelf bool) Seq {
	switch {
	case n == d.Root:
		if inclSelf && n.NameSym == bind.nameSym {
			out = append(out, n) // the root belongs to every hierarchy
		}
		if len(bind.hierIdx) > 0 {
			for _, hi := range bind.hierIdx {
				out = appendRun(out, d.Hiers[hi], d.Hiers[hi].NameRun(bind.nameSym))
			}
		} else {
			for _, h := range d.Hiers {
				out = appendRun(out, h, h.NameRun(bind.nameSym))
			}
		}
	case n.Kind == dom.Element && n.HierIndex >= 0 && n.HierIndex < len(d.Hiers):
		if !bind.allows(n.HierIndex) {
			return out // descendants stay in the context's hierarchy
		}
		h := d.Hiers[n.HierIndex]
		if inclSelf && n.NameSym == bind.nameSym {
			out = append(out, n)
		}
		out = appendRun(out, h, core.SubRun(h.NameRun(bind.nameSym), n.Ord, n.Last))
	}
	return out
}

func appendRun(out Seq, h *core.Hierarchy, run []int32) Seq {
	for _, ord := range run {
		out = append(out, h.Nodes[ord])
	}
	return out
}

// indexCandidateExists probes whether any kind+name match exists among
// the context's descendant(-or-self) candidates, across all hierarchies
// (the hierarchy restriction is what failed to resolve).
func indexCandidateExists(d *core.Document, n *dom.Node, sym int32, inclSelf bool) bool {
	switch {
	case n == d.Root:
		if inclSelf && n.NameSym == sym {
			return true
		}
		for _, h := range d.Hiers {
			if len(h.NameRun(sym)) > 0 {
				return true
			}
		}
	case n.Kind == dom.Element && n.HierIndex >= 0 && n.HierIndex < len(d.Hiers):
		if inclSelf && n.NameSym == sym {
			return true
		}
		if len(core.SubRun(d.Hiers[n.HierIndex].NameRun(sym), n.Ord, n.Last)) > 0 {
			return true
		}
	}
	return false
}

// evalChainScan evaluates a leading /child::a/child::b/… chain: scan
// the index run of the chain's last name in every hierarchy (ascending
// ordinals per hierarchy in hierarchy order — document order) and keep
// the candidates whose ancestor chain matches the remaining names up to
// the shared root.
func evalChainScan(c *context, cur Seq, op *pathOp) (Seq, error) {
	st := c.st
	var out Seq
	for _, it := range cur {
		n, ok := it.(*dom.Node)
		if !ok {
			return nil, errf("XPTY0019", "%s:: step applied to an atomic value", core.AxisChild)
		}
		d := st.docFor(n)
		if n != d.Root {
			// Only the shared root reaches a leading chain of an
			// absolute path; be safe and evaluate stepwise otherwise.
			return evalChainSteps(c, cur, op.chn)
		}
		bind := op.chainBind
		if bind.doc != d {
			bind = resolveChainBinding(d, op.chn)
		}
		if !bind.ok {
			continue // some chain name occurs nowhere in the document
		}
		last := bind.syms[len(bind.syms)-1]
		for _, h := range d.Hiers {
			for _, ord := range h.NameRun(last) {
				m := h.Nodes[ord]
				q := m.Parent
				match := true
				for i := len(bind.syms) - 2; i >= 0; i-- {
					if q == nil || q == d.Root || q.Kind != dom.Element || q.NameSym != bind.syms[i] {
						match = false
						break
					}
					q = q.Parent
				}
				if match && q == d.Root {
					out = append(out, m)
				}
			}
		}
	}
	if len(cur) > 1 {
		return sortDedupe(out), nil // multiple (identical) roots: restore the set property
	}
	return out, nil
}

func evalChainSteps(c *context, cur Seq, chain []*step) (Seq, error) {
	var err error
	for _, s := range chain {
		if cur, err = evalStep(c, cur, s); err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// ---- EXPLAIN ---------------------------------------------------------------

// ExplainOp is one node of the operator tree Explain returns: the
// physical operator, its rendered step, whether it is index-backed, and
// the cardinalities observed during the instrumented evaluation (Calls
// invocations consuming InRows context items and emitting OutRows
// result items in total).
type ExplainOp struct {
	Op       string       `json:"op"`
	Detail   string       `json:"detail,omitempty"`
	Index    bool         `json:"index"`
	Calls    int64        `json:"calls,omitempty"`
	InRows   int64        `json:"in_rows,omitempty"`
	OutRows  int64        `json:"out_rows,omitempty"`
	Children []*ExplainOp `json:"children,omitempty"`
}

// explainNode is the plan-time skeleton of the operator tree; id indexes
// the cardinality counter slot (-1 for structural nodes).
type explainNode struct {
	op, detail string
	index      bool
	id         int
	kids       []*explainNode
}

// Describe renders the operator tree without cardinalities (no
// evaluation happens).
func (pl *Plan) Describe() *ExplainOp { return pl.render(nil) }

func (pl *Plan) render(counts []opCard) *ExplainOp { return renderExplain(pl.root, counts) }

func renderExplain(n *explainNode, counts []opCard) *ExplainOp {
	out := &ExplainOp{Op: n.op, Detail: n.detail, Index: n.index}
	if n.id >= 0 && n.id < len(counts) {
		cd := counts[n.id]
		out.Calls, out.InRows, out.OutRows = cd.calls, cd.in, cd.out
	}
	for _, k := range n.kids {
		out.Children = append(out.Children, renderExplain(k, counts))
	}
	return out
}

func describeTest(t *nodeTest) string {
	qual := ""
	if len(t.hiers) > 0 {
		qual = "('" + strings.Join(t.hiers, ",") + "')"
	}
	switch t.kind {
	case testName:
		return t.name + qual
	case testStar:
		return "*" + qual
	case testText:
		return "text()" + qual
	case testNode:
		return "node()" + qual
	case testComment:
		return "comment()"
	case testPI:
		if t.name != "" {
			return "processing-instruction(" + t.name + ")"
		}
		return "processing-instruction()"
	case testLeaf:
		return "leaf()" + qual
	}
	return "?"
}

func describeStep(s *step) string {
	if s.prim != nil {
		return "expr()"
	}
	d := s.axis.String() + "::" + describeTest(&s.test)
	if n := len(s.preds); n > 0 {
		d += strings.Repeat("[…]", n)
	}
	return d
}

func describeChain(chain []*step) string {
	var b strings.Builder
	for _, s := range chain {
		b.WriteByte('/')
		b.WriteString("child::")
		b.WriteString(s.test.name)
	}
	return b.String()
}

func describePath(p *pathExpr) string {
	var b strings.Builder
	if p.start != nil {
		b.WriteString("(…)")
	}
	for i, s := range p.steps {
		if i > 0 || p.absolute || p.start != nil {
			b.WriteByte('/')
		}
		b.WriteString(describeStep(s))
	}
	return b.String()
}

// ---- plan cache ------------------------------------------------------------

// maxCachedPlans bounds the per-query plan cache; the distinct
// hierarchy signatures one query meets are few (the corpus layouts plus
// analyze-string overlay layouts).
const maxCachedPlans = 16

// planCache is the per-query plan table keyed by document hierarchy
// signature.
type planCache struct {
	mu    sync.RWMutex
	plans map[string]*Plan
}

func (pc *planCache) get(sig string) *Plan {
	pc.mu.RLock()
	pl := pc.plans[sig]
	pc.mu.RUnlock()
	return pl
}

func (pc *planCache) put(sig string, pl *Plan) *Plan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if prev, ok := pc.plans[sig]; ok {
		return prev // a concurrent planner won the race; share its plan
	}
	if pc.plans == nil {
		pc.plans = make(map[string]*Plan, 4)
	}
	if len(pc.plans) >= maxCachedPlans {
		clear(pc.plans)
	}
	pc.plans[sig] = pl
	return pl
}
