package xquery

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// This file is the compile→plan→execute layer. Compile parses a query
// into an AST once; PlanFor lowers the ENTIRE AST — every expression
// kind, not just paths — into physical operators (pnode, lower.go) for
// one document hierarchy layout (core.Document.Signature), binding node
// tests to interned name symbols and hierarchy indices at plan time.
// Execution is cursor-based (stepcursor.go): results stream from
// name-index runs and axis steps through predicates, FLWOR bindings and
// aggregation, so early-exit consumers stop the pipeline after the
// items they need.
//
// Within a path, three physical operators exist beyond the generic
// pipeline step:
//
//   - index-scan: descendant::name and descendant-or-self::name steps
//     (including the //name abbreviation, whose descendant-or-self::
//     node()/child::name pair is fused at plan time) read the
//     structural name index (core nameindex.go) instead of walking the
//     GODDAG: per hierarchy, the ascending ordinal run of elements
//     bearing the name, restricted to the context subtree by binary
//     search, emitted in document order with no per-candidate test.
//   - chain-scan: a leading /child::a/child::b/… chain over an
//     absolute path scans the index run of the last name and verifies
//     each candidate's ancestor chain upward to the shared root —
//     O(matches · chain length) instead of a level-by-level walk.
//   - axis-step: everything else runs through the order-aware pipeline
//     (evalStep), streamed per context segment for the downward axes.
//
// Plans are immutable and shared: all mutable evaluation state lives in
// evalState, and per-document bindings are revalidated by document
// pointer at run time, so a plan built against one document evaluates
// correctly against any other (overlay documents created by
// analyze-string included) — it is merely fastest on the layout it was
// planned for. Explain runs a plan with per-operator cardinality
// counters and renders the full operator tree.
//
// Physical choice among those operators is cost-based (estimate.go):
// the planner estimates per-operator cardinality from the planned
// document's path synopses, prices chain-scan against level-by-level
// stepping, orders position-independent infallible predicates by
// estimated selectivity, and orders independent quantifier/FLWOR
// bindings by estimated input size. Every reorder is gated so the plan
// stays result- and error-identical to the canonical order; estimates
// annotate the explain tree as "est=N" next to observed rows.

// Plan-forcing knobs for the differential test harness: forcePlan
// overrides the chain-scan/index-scan choice ("" cost-based, "chain"
// always chain when shape-eligible, "nochain" never chain, "noindex"
// neither chain nor index scans), forceNoReorder disables every
// cost-based reorder. Package-private and test-only: production code
// never sets them, and plans are cached per query, so tests compile a
// fresh Query per setting.
var (
	forcePlan      = ""
	forceNoReorder = false
)

// ---- plan structure --------------------------------------------------------

// Plan is a query lowered to physical operators for one document
// hierarchy signature. A Plan is immutable and safe for concurrent
// evaluation.
type Plan struct {
	q    *Query
	doc  *core.Document
	sig  string
	prog pnode
	nOps int
	root *explainNode
	// strictOnly forces materialized (interpreter-order) evaluation:
	// set for queries containing analyze-string, whose overlay side
	// effects make deferred evaluation observable (lower.go).
	strictOnly bool
}

// Query returns the compiled query this plan lowers.
func (pl *Plan) Query() *Query { return pl.q }

// Signature returns the document hierarchy signature the plan was built
// for.
func (pl *Plan) Signature() string { return pl.sig }

// Operator kinds.
const (
	opAxisStep  = iota // generic pipeline step (evalStep)
	opIndexScan        // structural name index scan
	opChainScan        // leading child:: chain via index + ancestor check
	opPrimStep         // primary-expression step (evalPrimStep)
)

// pathOp is one physical operator of a path plan. Its step is a plan
// copy of the AST step whose predicates and primary expression are
// themselves lowered pnodes, so predicate evaluation inside the
// operator runs through the physical engine too.
type pathOp struct {
	kind     int
	s        *step   // axis/index/primary operator: the lowered step
	chn      []*step // chain-scan: the consumed child:: steps
	id       int     // cardinality counter slot
	primLast bool    // primary step: last op of its path
	// parallel marks the operator eligible for morsel-driven execution
	// (parallel.go): index scans whose predicates are provably
	// position-independent and never numeric, and chain scans (their
	// per-candidate ancestor check is position-independent by
	// construction). Order-observable shapes — positional shortcuts,
	// strict-only plans — are never marked.
	parallel bool

	// Plan-time bindings for the planned document; revalidated by
	// document pointer at run time.
	bind      indexBinding
	chainBind chainBinding
}

// indexBinding is a node test resolved against one document at plan
// time: the interned name symbol and the hierarchy restriction as
// sorted, deduplicated indices.
type indexBinding struct {
	doc     *core.Document
	nameSym int32
	hierIdx []int
	hierErr error
}

// resolveIndexBinding binds a name-test step to d. The unknown-
// hierarchy error is recorded, not raised: the reference evaluator
// raises it only when a candidate actually reaches the hierarchy check.
func resolveIndexBinding(d *core.Document, s *step) indexBinding {
	b := indexBinding{doc: d, nameSym: d.NameSymOf(s.test.name)}
	for _, name := range s.test.hiers {
		h := d.HierarchyByName(name)
		if h == nil {
			b.hierErr = errf("MHXQ0001", "unknown hierarchy %q in node test", name)
			return b
		}
		b.hierIdx = append(b.hierIdx, h.Index)
	}
	if len(b.hierIdx) > 1 {
		// Scan runs in index order (document order) and only once each.
		sort.Ints(b.hierIdx)
		w := 1
		for _, hi := range b.hierIdx[1:] {
			if hi != b.hierIdx[w-1] {
				b.hierIdx[w] = hi
				w++
			}
		}
		b.hierIdx = b.hierIdx[:w]
	}
	return b
}

func (b *indexBinding) allows(hierIndex int) bool {
	if len(b.hierIdx) == 0 {
		return true
	}
	for _, hi := range b.hierIdx {
		if hi == hierIndex {
			return true
		}
	}
	return false
}

// chainBinding is a child:: chain resolved against one document: the
// interned symbol of every chain name. ok is false when any name occurs
// nowhere in the document (the chain selects nothing).
type chainBinding struct {
	doc  *core.Document
	syms []int32
	ok   bool
}

func resolveChainBinding(d *core.Document, chain []*step) chainBinding {
	b := chainBinding{doc: d, syms: make([]int32, len(chain)), ok: true}
	for i, s := range chain {
		if b.syms[i] = d.NameSymOf(s.test.name); b.syms[i] == 0 {
			b.ok = false
		}
	}
	return b
}

// ---- planner ---------------------------------------------------------------

type planner struct {
	pl  *Plan
	est *estimator
	// orderFree is set while lowering a FLWOR that feeds an
	// order-insensitive consumer (exists/empty/count); it licenses
	// for-binding reorder inside that FLWOR only.
	orderFree bool
}

// newPlan lowers q's whole expression tree against d's hierarchy
// layout.
func newPlan(q *Query, d *core.Document) *Plan {
	pl := &Plan{q: q, doc: d, sig: d.Signature(), strictOnly: q.strictOnly}
	pn := &planner{pl: pl}
	root := &explainNode{op: "query", id: -1, est: -1}
	pl.prog = pn.lower(q.body, root)
	pl.root = root
	return pl
}

// estimate returns the planner's cardinality estimator, built once per
// plan from the planned document's path synopses.
func (pn *planner) estimate() *estimator {
	if pn.est == nil {
		pn.est = newEstimator(pn.pl.doc)
	}
	return pn.est
}

func (pn *planner) newOpID() int {
	id := pn.pl.nOps
	pn.pl.nOps++
	return id
}

// enode creates an explain-tree node under parent and the pbase that
// ties a pnode to its cardinality slot.
func (pn *planner) enode(parent *explainNode, op, detail string) (*explainNode, pbase) {
	id := pn.newOpID()
	en := &explainNode{op: op, detail: detail, id: id, est: -1}
	parent.kids = append(parent.kids, en)
	return en, pbase{id: id}
}

// group creates a structural explain node (no cardinality slot of its
// own) under parent.
func (pn *planner) group(parent *explainNode, op, detail string) *explainNode {
	en := &explainNode{op: op, detail: detail, id: -1, est: -1}
	parent.kids = append(parent.kids, en)
	return en
}

// lower translates one AST expression into its physical operator,
// recording the operator (and its lowered children) in the explain
// tree.
func (pn *planner) lower(e expr, parent *explainNode) pnode {
	switch x := e.(type) {
	case *literalExpr:
		_, pb := pn.enode(parent, "literal", describeLiteral(x.v))
		return &pLiteral{pbase: pb, v: x.v, seq: x.seq}
	case *rawTextExpr:
		return &pRawText{pbase: pbase{id: -1}, s: x.s}
	case *varExpr:
		_, pb := pn.enode(parent, "var", "$"+x.name)
		return &pVar{pbase: pb, name: x.name}
	case *contextItemExpr:
		_, pb := pn.enode(parent, "context-item", ".")
		return &pContextItem{pbase: pb}
	case *rootExpr:
		_, pb := pn.enode(parent, "root", "/")
		return &pRoot{pbase: pb}
	case *seqExpr:
		en, pb := pn.enode(parent, "sequence", "")
		items := make([]pnode, len(x.items))
		for i, it := range x.items {
			items[i] = pn.lower(it, en)
		}
		return &pSeq{pbase: pb, items: items}
	case *rangeExpr:
		en, pb := pn.enode(parent, "range", "to")
		return &pRange{pbase: pb, lo: pn.lower(x.lo, en), hi: pn.lower(x.hi, en)}
	case *orExpr:
		en, pb := pn.enode(parent, "or", "")
		return &pOr{pbase: pb, a: pn.lower(x.a, en), b: pn.lower(x.b, en)}
	case *andExpr:
		en, pb := pn.enode(parent, "and", "")
		return &pAnd{pbase: pb, a: pn.lower(x.a, en), b: pn.lower(x.b, en)}
	case *cmpExpr:
		en, pb := pn.enode(parent, "compare", x.op)
		return &pCmp{pbase: pb, op: x.op, kind: x.kind, a: pn.lower(x.a, en), b: pn.lower(x.b, en)}
	case *arithExpr:
		en, pb := pn.enode(parent, "arith", x.op)
		return &pArith{pbase: pb, op: x.op, a: pn.lower(x.a, en), b: pn.lower(x.b, en)}
	case *unaryExpr:
		en, pb := pn.enode(parent, "unary", "-")
		return &pUnary{pbase: pb, x: pn.lower(x.x, en)}
	case *unionExpr:
		en, pb := pn.enode(parent, "union", "|")
		return &pUnion{pbase: pb, a: pn.lower(x.a, en), b: pn.lower(x.b, en)}
	case *intersectExpr:
		op := "intersect"
		if x.except {
			op = "except"
		}
		en, pb := pn.enode(parent, op, "")
		return &pIntersect{pbase: pb, except: x.except, a: pn.lower(x.a, en), b: pn.lower(x.b, en)}
	case *ifExpr:
		en, pb := pn.enode(parent, "if", "")
		return &pIf{
			pbase: pb,
			cond:  pn.lower(x.cond, pn.group(en, "condition", "")),
			then:  pn.lower(x.then, pn.group(en, "then", "")),
			els:   pn.lower(x.els, pn.group(en, "else", "")),
		}
	case *quantExpr:
		kw := "some"
		if x.every {
			kw = "every"
		}
		names, srcs := pn.quantOrder(x)
		en, pb := pn.enode(parent, "quantified", kw+" $"+strings.Join(names, ", $"))
		q := &pQuant{pbase: pb, every: x.every, names: names}
		for _, s := range srcs {
			q.srcs = append(q.srcs, pn.lower(s, en))
		}
		q.sat = pn.lower(x.sat, pn.group(en, "satisfies", ""))
		return q
	case *flworExpr:
		of := pn.orderFree
		pn.orderFree = false
		return pn.lowerFLWOR(x, parent, of)
	case *callExpr:
		en, pb := pn.enode(parent, "call", x.name+"()")
		call := &pCall{pbase: pb, name: x.name, fn: x.fn}
		for _, a := range x.args {
			// A FLWOR feeding exists/empty/count is consumed
			// order-insensitively: license for-binding reorder inside it.
			if len(x.args) == 1 && (x.fn == bExists || x.fn == bEmpty || x.fn == bCount) {
				if _, isFLWOR := a.(*flworExpr); isFLWOR {
					pn.orderFree = true
				}
			}
			call.args = append(call.args, pn.lower(a, en))
		}
		return call
	case *filterExpr:
		en, pb := pn.enode(parent, "filter", strings.Repeat("[…]", len(x.preds)))
		f := &pFilter{pbase: pb, base: pn.lower(x.base, en)}
		for _, pr := range x.preds {
			f.preds = append(f.preds, pn.lower(pr, pn.group(en, "predicate", "")))
			f.sized = append(f.sized, usesLast(pr))
		}
		return f
	case *pathExpr:
		return pn.lowerPath(x, parent)
	case *elemExpr:
		en, pb := pn.enode(parent, "element", "<"+x.name+">")
		pe := &pElem{pbase: pb, name: x.name}
		for _, a := range x.attrs {
			tpl := attrTpl{name: a.name}
			for _, part := range a.parts {
				tpl.parts = append(tpl.parts, pn.lower(part, en))
			}
			pe.attrs = append(pe.attrs, tpl)
		}
		for _, ce := range x.content {
			pe.content = append(pe.content, pn.lower(ce, en))
		}
		return pe
	case *compCtorExpr:
		en, pb := pn.enode(parent, "constructor", string(x.kind)+" "+x.name)
		cc := &pCompCtor{pbase: pb, kind: x.kind, name: x.name}
		if x.nameExpr != nil {
			cc.nameExpr = pn.lower(x.nameExpr, en)
		}
		if x.content != nil {
			cc.content = pn.lower(x.content, en)
		}
		return cc
	}
	// Unreachable: the parser produces only the kinds above. A literal
	// empty sequence keeps the engine total.
	_, pb := pn.enode(parent, "unknown", "")
	return &pLiteral{pbase: pb, seq: Seq{}}
}

// quantOrder returns the quantifier's binding lists, reordered
// ascending by estimated source cardinality when that is provably
// unobservable: every source must be independently evaluable (no
// references to the quantifier's own variables), both sources and the
// satisfies clause must be infallible (so no error order can diverge),
// and every source must be estimable. The tuple set is then a cartesian
// product whose quantified truth is order-insensitive; putting the
// smallest source outermost minimizes inner re-evaluations.
func (pn *planner) quantOrder(x *quantExpr) ([]string, []expr) {
	if forceNoReorder || len(x.srcs) < 2 || !predInfallible(x.sat) {
		return x.names, x.srcs
	}
	bound := make(map[string]bool, len(x.names))
	for _, n := range x.names {
		bound[n] = true
	}
	est := pn.estimate()
	rows := make([]float64, len(x.srcs))
	for i, s := range x.srcs {
		if !predInfallible(s) || referencesVars(s, bound) {
			return x.names, x.srcs
		}
		r, ok := est.exprRows(s)
		if !ok {
			return x.names, x.srcs
		}
		rows[i] = r
	}
	idx := make([]int, len(x.srcs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rows[idx[a]] < rows[idx[b]] })
	names := make([]string, len(idx))
	srcs := make([]expr, len(idx))
	for i, j := range idx {
		names[i], srcs[i] = x.names[j], x.srcs[j]
	}
	return names, srcs
}

// flworClauseOrder returns the FLWOR's clause list with the leading run
// of for-clauses reordered ascending by estimated source cardinality.
// Licensed only when the whole FLWOR feeds an order-insensitive
// consumer (orderFree), carries no order-by, the run's clauses bind no
// position variables, the run's sources are independent (reference no
// name bound by any clause), and every source downstream plus the
// return clause is infallible — so neither the result set nor any error
// can observe the changed tuple enumeration order.
func (pn *planner) flworClauseOrder(x *flworExpr, orderFree bool) []flworClause {
	if !orderFree || forceNoReorder || len(x.order) > 0 {
		return x.clauses
	}
	run := 0
	for run < len(x.clauses) && x.clauses[run].kind == clauseFor && x.clauses[run].posName == "" {
		run++
	}
	if run < 2 {
		return x.clauses
	}
	bound := make(map[string]bool, len(x.clauses))
	for _, cl := range x.clauses {
		if cl.name != "" {
			bound[cl.name] = true
		}
		if cl.posName != "" {
			bound[cl.posName] = true
		}
	}
	est := pn.estimate()
	rows := make([]float64, run)
	for i := 0; i < run; i++ {
		src := x.clauses[i].src
		if !predInfallible(src) || referencesVars(src, bound) {
			return x.clauses
		}
		r, ok := est.exprRows(src)
		if !ok {
			return x.clauses
		}
		rows[i] = r
	}
	for _, cl := range x.clauses[run:] {
		if !predInfallible(cl.src) {
			return x.clauses
		}
	}
	if !predInfallible(x.ret) {
		return x.clauses
	}
	idx := make([]int, run)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rows[idx[a]] < rows[idx[b]] })
	out := make([]flworClause, len(x.clauses))
	for i, j := range idx {
		out[i] = x.clauses[j]
	}
	copy(out[run:], x.clauses[run:])
	return out
}

func (pn *planner) lowerFLWOR(x *flworExpr, parent *explainNode, orderFree bool) pnode {
	en, pb := pn.enode(parent, "flwor", "")
	f := &pFLWOR{pbase: pb}
	for _, cl := range pn.flworClauseOrder(x, orderFree) {
		var g *explainNode
		switch cl.kind {
		case clauseFor:
			detail := "$" + cl.name
			if cl.posName != "" {
				detail += " at $" + cl.posName
			}
			g = pn.group(en, "for", detail)
		case clauseLet:
			g = pn.group(en, "let", "$"+cl.name)
		default:
			g = pn.group(en, "where", "")
		}
		f.clauses = append(f.clauses, pClause{
			kind:    cl.kind,
			name:    cl.name,
			posName: cl.posName,
			src:     pn.lower(cl.src, g),
		})
	}
	for _, o := range x.order {
		detail := "ascending"
		if o.descending {
			detail = "descending"
		}
		g := pn.group(en, "order-by", detail)
		f.order = append(f.order, pOrderSpec{
			key:           pn.lower(o.key, g),
			descending:    o.descending,
			emptyGreatest: o.emptyGreatest,
			spec:          orderSpec{descending: o.descending, emptyGreatest: o.emptyGreatest},
		})
	}
	f.ret = pn.lower(x.ret, pn.group(en, "return", ""))
	return f
}

// indexableStep reports whether the step can run as an index scan: a
// descendant(-or-self) axis step with a plain name test. Predicates are
// allowed (they filter index candidates exactly as they filter axis
// candidates).
func indexableStep(s *step) bool {
	return s.prim == nil && s.test.kind == testName &&
		(s.axis == core.AxisDescendant || s.axis == core.AxisDescendantOrSelf)
}

// chainableStep reports whether the step can join a leading child::
// chain: child axis, plain unqualified name test, no predicates.
func chainableStep(s *step) bool {
	return s.prim == nil && s.axis == core.AxisChild && s.test.kind == testName &&
		len(s.test.hiers) == 0 && len(s.preds) == 0
}

// fusibleDOS reports whether the step is the bare descendant-or-self::
// node() that the // abbreviation expands to, with nothing attached.
func fusibleDOS(s *step) bool {
	return s.prim == nil && s.axis == core.AxisDescendantOrSelf &&
		s.test.kind == testNode && len(s.test.hiers) == 0 && len(s.preds) == 0
}

// fusablePreds reports whether a child::name step's predicates survive
// the //name fusion: descendant-or-self::node()/child::name[p] equals
// descendant::name[p] only when p is position-independent — predicate
// positions are per parent before fusion and per subtree after. A
// predicate is fusable when it cannot select by position: it never
// evaluates to a single number (predNeverNumeric) and never consults
// position()/last() in the step's own focus (usesFocusPosition).
func fusablePreds(preds []expr) bool {
	for _, pr := range preds {
		if !predNeverNumeric(pr) || usesFocusPosition(pr) {
			return false
		}
	}
	return true
}

// predNeverNumeric reports (conservatively) that the predicate's value
// can never be a single number: boolean connectives and comparisons,
// quantifiers, node-valued paths and the boolean builtins.
func predNeverNumeric(e expr) bool {
	switch x := e.(type) {
	case *orExpr, *andExpr, *cmpExpr, *quantExpr:
		return true
	case *pathExpr:
		// A path ending in an axis step yields nodes; a trailing
		// primary step could yield anything.
		return len(x.steps) > 0 && x.steps[len(x.steps)-1].prim == nil
	case *callExpr:
		switch x.fn {
		case bExists, bEmpty, bNot, bBoolean:
			return true
		}
	}
	return false
}

// usesFocusPosition reports whether e reads position() or last() in the
// focus it is evaluated in. Nested step and filter predicates rebind
// the focus, so their bodies do not count; everything else (function
// arguments, quantifier satisfies clauses, FLWOR bodies, operands)
// shares the outer focus.
func usesFocusPosition(e expr) bool {
	switch x := e.(type) {
	case *callExpr:
		if (x.name == "position" || x.name == "last") && len(x.args) == 0 {
			return true
		}
		for _, a := range x.args {
			if usesFocusPosition(a) {
				return true
			}
		}
		return false
	case *pathExpr:
		// Steps evaluate in their own focus; only the start expression
		// sees ours.
		return x.start != nil && usesFocusPosition(x.start)
	case *filterExpr:
		return usesFocusPosition(x.base)
	case *flworExpr:
		for _, cl := range x.clauses {
			if usesFocusPosition(cl.src) {
				return true
			}
		}
		for _, o := range x.order {
			if usesFocusPosition(o.key) {
				return true
			}
		}
		return usesFocusPosition(x.ret)
	case *quantExpr:
		for _, s := range x.srcs {
			if usesFocusPosition(s) {
				return true
			}
		}
		return usesFocusPosition(x.sat)
	}
	found := false
	visitChildren(e, func(ch expr) {
		if !found && usesFocusPosition(ch) {
			found = true
		}
	})
	return found
}

// useChainScan decides chain-scan versus level-by-level stepping for a
// leading child chain, by estimated cost. The chain-scan touches every
// document-wide instance of the chain's last name; the axis route
// touches the children of every node actually on the chain prefix. The
// chain-scan keeps its historical edge except when the synopsis proves
// the last name globally common but the prefix selective; without a
// synopsis the historical default (chain) stands.
func (pn *planner) useChainScan(chain []*step) bool {
	switch forcePlan {
	case "chain":
		return true
	case "nochain", "noindex":
		return false
	}
	axisCost, chainCost, ok := pn.estimate().chainCosts(chain)
	return !ok || chainCost <= 3*axisCost+64
}

// orderPreds returns the step's predicates ordered ascending by
// estimated selectivity, so the cheapest-to-fail filter runs first.
// Licensed only when reordering is provably unobservable: no positional
// shortcut consumes preds[0], every predicate is position-independent
// (the fusablePreds criterion — predicate order changes each
// predicate's input positions) and infallible (so no error order can
// diverge). The AST slice is never mutated; callers get a copy.
func (pn *planner) orderPreds(ctx estCtx, s *step) []expr {
	if forceNoReorder || len(s.preds) < 2 || s.posSel != 0 || !fusablePreds(s.preds) {
		return s.preds
	}
	for _, pr := range s.preds {
		if !predInfallible(pr) {
			return s.preds
		}
	}
	base := pn.estimate().stepBase(ctx, s)
	if !base.known {
		return s.preds
	}
	sels := make([]float64, len(s.preds))
	for i, pr := range s.preds {
		sels[i] = pn.estimate().predSel(base, pr)
	}
	idx := make([]int, len(s.preds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return sels[idx[a]] < sels[idx[b]] })
	out := make([]expr, len(idx))
	for i, j := range idx {
		out[i] = s.preds[j]
	}
	return out
}

func (pn *planner) lowerPath(p *pathExpr, parent *explainNode) pnode {
	node, pb := pn.enode(parent, "path", describePath(p))
	pp := &pPath{pbase: pb, absolute: p.absolute}
	est := pn.estimate()
	// ctx is the estimated context flowing between operators; only an
	// absolute path from the shared root starts known.
	ctx := estUnknown
	if p.start != nil {
		pp.start = pn.lower(p.start, node)
	} else if p.absolute {
		ctx = est.rootCtx()
	}
	steps := p.steps
	i := 0
	// A leading chain of child::name steps over an absolute path. A
	// single child step stays on the (already cheap) axis pipeline.
	if p.absolute && p.start == nil {
		k := 0
		for k < len(steps) && chainableStep(steps[k]) {
			k++
		}
		if k >= 2 && pn.useChainScan(steps[:k]) {
			op := &pathOp{kind: opChainScan, chn: steps[:k], id: pn.newOpID()}
			op.parallel = !pn.pl.strictOnly
			op.chainBind = resolveChainBinding(pn.pl.doc, op.chn)
			ctx = est.chainEst(op.chn)
			node.kids = append(node.kids, &explainNode{
				op: "chain-scan", detail: describeChain(op.chn), index: true,
				parallel: op.parallel, id: op.id, est: ctx.estInt(),
			})
			pp.ops = append(pp.ops, op)
			i = k
		}
	}
	for ; i < len(steps); i++ {
		s := steps[i]
		// Fuse the // abbreviation (descendant-or-self::node()/
		// child::name) into one descendant::name index scan: the two
		// select the same node set in the same document order. The
		// child step's predicates ride along when they are provably
		// position-independent (positions are per parent before the
		// fusion and per subtree after it).
		if fusibleDOS(s) && i+1 < len(steps) {
			next := steps[i+1]
			if next.prim == nil && next.axis == core.AxisChild &&
				next.test.kind == testName && fusablePreds(next.preds) {
				s = &step{axis: core.AxisDescendant, test: next.test, preds: next.preds}
				i++
			}
		}
		var op *pathOp
		var en *explainNode
		switch {
		case s.prim != nil:
			op = &pathOp{kind: opPrimStep, id: pn.newOpID()}
			en = &explainNode{op: "primary", detail: "expr()", id: op.id, est: -1}
			node.kids = append(node.kids, en)
			op.s = &step{axis: s.axis, test: s.test, posSel: s.posSel, prim: pn.lower(s.prim, en)}
			pp.ops = append(pp.ops, op)
			ctx = estUnknown
			continue
		case indexableStep(s) && forcePlan != "noindex":
			op = &pathOp{kind: opIndexScan, id: pn.newOpID()}
			// Eligible for morsel-parallel predicate filtering when every
			// predicate is provably position-independent (the fusablePreds
			// criterion, applied to the AST predicates) and no positional
			// shortcut reorders the work. Without predicates there is no
			// per-candidate work worth parallelizing.
			op.parallel = !pn.pl.strictOnly && s.posSel == 0 &&
				len(s.preds) > 0 && fusablePreds(s.preds)
			op.bind = resolveIndexBinding(pn.pl.doc, s)
			en = &explainNode{op: "index-scan", detail: describeStep(s), index: true,
				parallel: op.parallel, id: op.id, est: -1}
		default:
			op = &pathOp{kind: opAxisStep, id: pn.newOpID()}
			en = &explainNode{op: "axis-step", detail: describeStep(s), id: op.id, est: -1}
		}
		node.kids = append(node.kids, en)
		preds := pn.orderPreds(ctx, s)
		ctx = est.estStep(ctx, s)
		en.est = ctx.estInt()
		// Plan copy of the step: the same axis/test/positional shortcut,
		// with predicates lowered into the physical engine.
		cs := &step{axis: s.axis, test: s.test, posSel: s.posSel}
		for _, pr := range preds {
			cs.preds = append(cs.preds, pn.lower(pr, en))
		}
		op.s = cs
		pp.ops = append(pp.ops, op)
	}
	node.est = ctx.estInt()
	for oi, op := range pp.ops {
		if op.kind == opPrimStep {
			op.primLast = oi == len(pp.ops)-1
		}
	}
	return pp
}

// visitChildren invokes visit for every direct child expression of e.
// For path expressions this includes the start expression, every step
// predicate and every primary step body.
func visitChildren(e expr, visit func(expr)) {
	switch x := e.(type) {
	case *seqExpr:
		for _, it := range x.items {
			visit(it)
		}
	case *rangeExpr:
		visit(x.lo)
		visit(x.hi)
	case *orExpr:
		visit(x.a)
		visit(x.b)
	case *andExpr:
		visit(x.a)
		visit(x.b)
	case *cmpExpr:
		visit(x.a)
		visit(x.b)
	case *arithExpr:
		visit(x.a)
		visit(x.b)
	case *unaryExpr:
		visit(x.x)
	case *unionExpr:
		visit(x.a)
		visit(x.b)
	case *intersectExpr:
		visit(x.a)
		visit(x.b)
	case *ifExpr:
		visit(x.cond)
		visit(x.then)
		visit(x.els)
	case *quantExpr:
		for _, s := range x.srcs {
			visit(s)
		}
		visit(x.sat)
	case *flworExpr:
		for _, cl := range x.clauses {
			visit(cl.src)
		}
		for _, o := range x.order {
			visit(o.key)
		}
		visit(x.ret)
	case *callExpr:
		for _, a := range x.args {
			visit(a)
		}
	case *filterExpr:
		visit(x.base)
		for _, pr := range x.preds {
			visit(pr)
		}
	case *pathExpr:
		if x.start != nil {
			visit(x.start)
		}
		for _, s := range x.steps {
			for _, pr := range s.preds {
				visit(pr)
			}
			if s.prim != nil {
				visit(s.prim)
			}
		}
	case *elemExpr:
		for _, a := range x.attrs {
			for _, part := range a.parts {
				visit(part)
			}
		}
		for _, ce := range x.content {
			visit(ce)
		}
	case *compCtorExpr:
		if x.nameExpr != nil {
			visit(x.nameExpr)
		}
		if x.content != nil {
			visit(x.content)
		}
	}
}

// ---- strict path execution -------------------------------------------------

// opCard is one operator's observed cardinalities during an
// instrumented (Explain) evaluation. nanos accrues observed wall time
// only under EXPLAIN ANALYZE (evalState.timed); it is inclusive — an
// operator's time contains the time of the operators it pulled from —
// matching the convention of PostgreSQL's "actual time".
type opCard struct {
	calls, in, out int64
	nanos          int64
	// Morsel-execution stats (parallel.go): morsels dispatched by this
	// operator and candidate rows examined per worker slot (slot 0 is
	// the evaluating goroutine). Zero/nil when the operator ran serially.
	morsels    int64
	workerRows []int64
}

// pPath is the lowered path expression: the operator list plus the
// lowered start expression. Strict evaluation (eval) materializes step
// by step; streaming (open, stepcursor.go) pipelines the operators as
// cursors.
type pPath struct {
	pbase
	absolute bool
	start    pnode
	ops      []*pathOp
}

func (p *pPath) eval(c *context) (Seq, error) {
	var cur Seq
	switch {
	case p.start != nil:
		v, err := pEval(p.start, c)
		if err != nil {
			return nil, err
		}
		cur = v
	case p.absolute:
		cur = Seq{c.st.rootFor(c.item)}
	default:
		if c.item == nil {
			return nil, errf("XPDY0002", "context item undefined at start of relative path")
		}
		cur = Seq{c.item}
	}
	for _, op := range p.ops {
		in := int64(len(cur))
		var start time.Time
		if c.st.timed {
			start = time.Now()
		}
		var err error
		cur, err = evalOpStrict(c, cur, op)
		if err != nil {
			return nil, err
		}
		if ex := c.st.explain; ex != nil {
			ex[op.id].calls++
			ex[op.id].in += in
			ex[op.id].out += int64(len(cur))
			if c.st.timed {
				ex[op.id].nanos += int64(time.Since(start))
			}
		}
	}
	return cur, nil
}

// evalOpStrict evaluates one path operator over a materialized context
// sequence (shared by strict path evaluation and the step cursors'
// fallback route).
func evalOpStrict(c *context, cur Seq, op *pathOp) (Seq, error) {
	switch op.kind {
	case opPrimStep:
		return evalPrimStep(c, cur, op.s, op.primLast)
	case opIndexScan:
		return evalIndexScan(c, cur, op)
	case opChainScan:
		return evalChainScan(c, cur, op)
	default:
		return evalStep(c, cur, op.s)
	}
}

// evalIndexScan evaluates a descendant(-or-self)::name step through the
// structural name index: per context node, the ascending ordinal run of
// matching elements (restricted to the context subtree), then the same
// positional shortcut, predicate filtering and segment merging as the
// generic pipeline. Atomic items and constructed (unindexed) context
// nodes delegate the whole step to the pipeline, which reproduces the
// reference semantics for them.
func evalIndexScan(c *context, cur Seq, op *pathOp) (Seq, error) {
	st := c.st
	s := op.s
	for _, it := range cur {
		n, ok := it.(*dom.Node)
		if !ok {
			return evalStep(c, cur, s) // raises XPTY0019 at the reference point
		}
		if n.Kind == dom.Attribute {
			continue // no descendants; indexable as an empty contribution
		}
		if _, ok := st.docFor(n).OrdinalOf(n); !ok {
			return evalStep(c, cur, s) // constructed tree: no index
		}
	}
	inclSelf := s.axis == core.AxisDescendantOrSelf
	var out Seq
	sorted := true
	var bind indexBinding
	for _, it := range cur {
		n := it.(*dom.Node)
		d := st.docFor(n)
		if bind.doc != d {
			if op.bind.doc == d {
				bind = op.bind
			} else {
				bind = resolveIndexBinding(d, s)
			}
		}
		if bind.nameSym == 0 {
			// The name occurs nowhere in this document: no candidate
			// matches, so not even an unknown-hierarchy error can
			// surface (the reference checks kind and name first).
			continue
		}
		segStart := len(out)
		var err error
		out, err = appendIndexSeg(c, out, d, n, s, &bind, inclSelf, op)
		if err != nil {
			return nil, err
		}
		seg := out[segStart:]
		if sorted && len(seg) > 0 && segStart > 0 &&
			dom.Compare(out[segStart-1].(*dom.Node), seg[0].(*dom.Node)) >= 0 {
			sorted = false
		}
	}
	if !sorted {
		return st.mergeDocOrder(out), nil
	}
	return out, nil
}

// appendIndexSeg appends one context node's result segment: index
// candidates (every one already passes the node test), the positional
// shortcut, then the remaining predicates — filterStep with the
// per-candidate test replaced by run selection.
func appendIndexSeg(c *context, out Seq, d *core.Document, n *dom.Node, s *step, bind *indexBinding, inclSelf bool, op *pathOp) (Seq, error) {
	if bind.hierErr != nil {
		// Unknown hierarchy in the test: the reference raises the error
		// only when a candidate reaches the hierarchy check, i.e. when
		// a kind+name match exists among this context's candidates.
		if indexCandidateExists(d, n, bind.nameSym, inclSelf) {
			return nil, bind.hierErr
		}
		return out, nil
	}
	segStart := len(out)
	out = appendIndexCandidates(out, d, n, bind, inclSelf)
	preds := s.preds
	if s.posSel != 0 {
		seg := out[segStart:]
		var sel Item
		if s.posSel > 0 {
			if len(seg) >= s.posSel {
				sel = seg[s.posSel-1]
			}
		} else if len(seg) > 0 { // [last()]
			sel = seg[len(seg)-1]
		}
		out = out[:segStart]
		if sel == nil {
			return out, nil
		}
		out = append(out, sel)
		preds = preds[1:]
	}
	if len(preds) > 0 {
		seg := out[segStart:]
		var kept Seq
		var err error
		if op != nil && parWorthwhile(c.st, op, len(seg)) {
			kept, err = parFilterPreds(c, seg, preds, 0, len(seg), op.id)
		} else {
			kept, err = applyPredicatesInPlace(c, seg, preds)
		}
		if err != nil {
			return nil, err
		}
		out = out[:segStart+len(kept)]
	}
	return out, nil
}

// appendIndexCandidates appends the index-selected candidates for one
// context node in ascending document order. Only the shared root and
// hierarchy elements can have element descendants; text, leaf and
// attribute contexts contribute nothing to a name test.
func appendIndexCandidates(out Seq, d *core.Document, n *dom.Node, bind *indexBinding, inclSelf bool) Seq {
	switch {
	case n == d.Root:
		if inclSelf && n.NameSym == bind.nameSym {
			out = append(out, n) // the root belongs to every hierarchy
		}
		if len(bind.hierIdx) > 0 {
			for _, hi := range bind.hierIdx {
				out = appendRun(out, d.Hiers[hi], d.Hiers[hi].NameRun(bind.nameSym))
			}
		} else {
			for _, h := range d.Hiers {
				out = appendRun(out, h, h.NameRun(bind.nameSym))
			}
		}
	case n.Kind == dom.Element && n.HierIndex >= 0 && n.HierIndex < len(d.Hiers):
		if !bind.allows(n.HierIndex) {
			return out // descendants stay in the context's hierarchy
		}
		h := d.Hiers[n.HierIndex]
		if inclSelf && n.NameSym == bind.nameSym {
			out = append(out, n)
		}
		out = appendRun(out, h, core.SubRun(h.NameRun(bind.nameSym), n.Ord, n.Last))
	}
	return out
}

func appendRun(out Seq, h *core.Hierarchy, run []int32) Seq {
	for _, ord := range run {
		out = append(out, h.Nodes[ord])
	}
	return out
}

// indexCandidateExists probes whether any kind+name match exists among
// the context's descendant(-or-self) candidates, across all hierarchies
// (the hierarchy restriction is what failed to resolve).
func indexCandidateExists(d *core.Document, n *dom.Node, sym int32, inclSelf bool) bool {
	switch {
	case n == d.Root:
		if inclSelf && n.NameSym == sym {
			return true
		}
		for _, h := range d.Hiers {
			if len(h.NameRun(sym)) > 0 {
				return true
			}
		}
	case n.Kind == dom.Element && n.HierIndex >= 0 && n.HierIndex < len(d.Hiers):
		if inclSelf && n.NameSym == sym {
			return true
		}
		if len(core.SubRun(d.Hiers[n.HierIndex].NameRun(sym), n.Ord, n.Last)) > 0 {
			return true
		}
	}
	return false
}

// evalChainScan evaluates a leading /child::a/child::b/… chain: scan
// the index run of the chain's last name in every hierarchy (ascending
// ordinals per hierarchy in hierarchy order — document order) and keep
// the candidates whose ancestor chain matches the remaining names up to
// the shared root.
func evalChainScan(c *context, cur Seq, op *pathOp) (Seq, error) {
	st := c.st
	var out Seq
	for _, it := range cur {
		n, ok := it.(*dom.Node)
		if !ok {
			return nil, errf("XPTY0019", "%s:: step applied to an atomic value", core.AxisChild)
		}
		d := st.docFor(n)
		if n != d.Root {
			// Only the shared root reaches a leading chain of an
			// absolute path; be safe and evaluate stepwise otherwise.
			return evalChainSteps(c, cur, op.chn)
		}
		bind := op.chainBind
		if bind.doc != d {
			bind = resolveChainBinding(d, op.chn)
		}
		if !bind.ok {
			continue // some chain name occurs nowhere in the document
		}
		last := bind.syms[len(bind.syms)-1]
		total := 0
		for _, h := range d.Hiers {
			total += len(h.NameRun(last))
		}
		if parWorthwhile(st, op, total) {
			// Morsel-parallel ancestor verification over the materialized
			// candidate list (already in document order).
			cand := make([]*dom.Node, 0, total)
			for _, h := range d.Hiers {
				for _, ord := range h.NameRun(last) {
					cand = append(cand, h.Nodes[ord])
				}
			}
			kept, err := parFilterChain(c, cand, d, bind.syms, op.id)
			if err != nil {
				return nil, err
			}
			for _, m := range kept {
				out = append(out, m)
			}
			continue
		}
		for _, h := range d.Hiers {
			for _, ord := range h.NameRun(last) {
				m := h.Nodes[ord]
				if chainAncestorsMatch(d, m, bind.syms) {
					out = append(out, m)
				}
			}
		}
	}
	if len(cur) > 1 {
		return sortDedupe(out), nil // multiple (identical) roots: restore the set property
	}
	return out, nil
}

// chainAncestorsMatch verifies one chain-scan candidate: its ancestor
// names must match the chain bottom-up, ending exactly at the shared
// root.
func chainAncestorsMatch(d *core.Document, m *dom.Node, syms []int32) bool {
	q := m.Parent
	for i := len(syms) - 2; i >= 0; i-- {
		if q == nil || q == d.Root || q.Kind != dom.Element || q.NameSym != syms[i] {
			return false
		}
		q = q.Parent
	}
	return q == d.Root
}

func evalChainSteps(c *context, cur Seq, chain []*step) (Seq, error) {
	var err error
	for _, s := range chain {
		if cur, err = evalStep(c, cur, s); err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// ---- EXPLAIN ---------------------------------------------------------------

// ExplainOp is one node of the operator tree Explain returns: the
// physical operator, its rendered detail, whether it is index-backed,
// and the cardinalities observed during the instrumented evaluation
// (Calls invocations consuming InRows context items and emitting
// OutRows result items in total). The tree covers the whole lowered
// query — FLWOR clauses, predicates, function calls — not only paths.
type ExplainOp struct {
	Op      string `json:"op"`
	Detail  string `json:"detail,omitempty"`
	Index   bool   `json:"index"`
	Calls   int64  `json:"calls,omitempty"`
	InRows  int64  `json:"in_rows,omitempty"`
	OutRows int64  `json:"out_rows,omitempty"`
	// EstRows is the planner's synopsis-based output-cardinality
	// estimate (nil: the planner had no estimate for this operator); the
	// detail line gains an "est=N" suffix. Compare against OutRows from
	// an instrumented run to judge estimate accuracy.
	EstRows *int64 `json:"est_rows,omitempty"`
	// Nanos is the operator's observed wall time under EXPLAIN ANALYZE
	// (zero under plain EXPLAIN). Times are inclusive: an operator's
	// Nanos contains the time of the operators it pulled from. At the
	// root it is the total query wall time.
	Nanos int64 `json:"nanos,omitempty"`
	// Parallel marks operators the planner deemed eligible for
	// morsel-driven execution. When an instrumented evaluation actually
	// engaged it, Morsels counts the morsels dispatched, WorkerRows the
	// candidate rows examined per worker slot (slot 0 is the evaluating
	// goroutine) and Workers the slots that did any work; the detail line
	// gains a "workers=N morsels=M" suffix.
	Parallel   bool         `json:"parallel,omitempty"`
	Workers    int          `json:"workers,omitempty"`
	Morsels    int64        `json:"morsels,omitempty"`
	WorkerRows []int64      `json:"worker_rows,omitempty"`
	Children   []*ExplainOp `json:"children,omitempty"`
}

// explainNode is the plan-time skeleton of the operator tree; id indexes
// the cardinality counter slot (-1 for structural nodes) and est is the
// planner's estimated output cardinality (-1: no estimate).
type explainNode struct {
	op, detail string
	index      bool
	parallel   bool
	id         int
	est        int64
	kids       []*explainNode
}

// Describe renders the operator tree without cardinalities (no
// evaluation happens).
func (pl *Plan) Describe() *ExplainOp { return pl.render(nil) }

func (pl *Plan) render(counts []opCard) *ExplainOp { return renderExplain(pl.root, counts) }

func renderExplain(n *explainNode, counts []opCard) *ExplainOp {
	out := &ExplainOp{Op: n.op, Detail: n.detail, Index: n.index, Parallel: n.parallel}
	if n.est >= 0 {
		est := n.est
		out.EstRows = &est
		out.Detail += " est=" + strconv.FormatInt(est, 10)
	}
	if n.id >= 0 && n.id < len(counts) {
		cd := counts[n.id]
		out.Calls, out.InRows, out.OutRows = cd.calls, cd.in, cd.out
		out.Nanos = cd.nanos
		if cd.morsels > 0 {
			out.Morsels = cd.morsels
			for _, r := range cd.workerRows {
				if r > 0 {
					out.Workers++
				}
			}
			out.WorkerRows = append([]int64(nil), cd.workerRows...)
			out.Detail += " workers=" + strconv.Itoa(out.Workers) +
				" morsels=" + strconv.FormatInt(cd.morsels, 10)
		}
	}
	for _, k := range n.kids {
		out.Children = append(out.Children, renderExplain(k, counts))
	}
	return out
}

func describeTest(t *nodeTest) string {
	qual := ""
	if len(t.hiers) > 0 {
		qual = "('" + strings.Join(t.hiers, ",") + "')"
	}
	switch t.kind {
	case testName:
		return t.name + qual
	case testStar:
		return "*" + qual
	case testText:
		return "text()" + qual
	case testNode:
		return "node()" + qual
	case testComment:
		return "comment()"
	case testPI:
		if t.name != "" {
			return "processing-instruction(" + t.name + ")"
		}
		return "processing-instruction()"
	case testLeaf:
		return "leaf()" + qual
	}
	return "?"
}

func describeStep(s *step) string {
	if s.prim != nil {
		return "expr()"
	}
	d := s.axis.String() + "::" + describeTest(&s.test)
	if n := len(s.preds); n > 0 {
		d += strings.Repeat("[…]", n)
	}
	return d
}

func describeChain(chain []*step) string {
	var b strings.Builder
	for _, s := range chain {
		b.WriteByte('/')
		b.WriteString("child::")
		b.WriteString(s.test.name)
	}
	return b.String()
}

func describePath(p *pathExpr) string {
	var b strings.Builder
	if p.start != nil {
		b.WriteString("(…)")
	}
	for i, s := range p.steps {
		if i > 0 || p.absolute || p.start != nil {
			b.WriteByte('/')
		}
		b.WriteString(describeStep(s))
	}
	return b.String()
}

// ---- plan cache ------------------------------------------------------------

// maxCachedPlans bounds the per-query plan cache; the distinct
// hierarchy signatures one query meets are few (the corpus layouts plus
// analyze-string overlay layouts).
const maxCachedPlans = 16

// planCache is the per-query plan table keyed by document hierarchy
// signature.
type planCache struct {
	mu    sync.RWMutex
	plans map[string]*Plan
}

func (pc *planCache) get(sig string) *Plan {
	pc.mu.RLock()
	pl := pc.plans[sig]
	pc.mu.RUnlock()
	return pl
}

func (pc *planCache) put(sig string, pl *Plan) *Plan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if prev, ok := pc.plans[sig]; ok {
		return prev // a concurrent planner won the race; share its plan
	}
	if pc.plans == nil {
		pc.plans = make(map[string]*Plan, 4)
	}
	if len(pc.plans) >= maxCachedPlans {
		clear(pc.plans)
	}
	pc.plans[sig] = pl
	return pl
}
