package xquery

import (
	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// This file is the order-aware step-evaluation pipeline. The reference
// evaluator (evalStepRef) re-sorts and re-dedupes the whole intermediate
// node set after every step — an O(k log k) comparison sort even when
// the axis already emitted document order. The pipeline instead:
//
//   - relies on the axis order contracts (core.Axis.Order): every axis
//     emits a duplicate-free run that is either ascending or descending
//     document order, verified per segment in one O(k) pass, so a
//     reverse-axis run is restored to document order by an O(k)
//     reversal and an ascending run costs nothing;
//   - threads a "sorted and duplicate-free" invariant through the
//     steps: each step's output is in document order, so a step whose
//     input is a single node (the overwhelmingly common case inside
//     predicates and FLWOR bindings) skips merging entirely, and
//     multi-context steps only merge when segment junctions actually
//     interleave;
//   - merges interleaved segments with an O(k) ordinal scatter
//     (core.OrdinalSet) keyed on the document's dense Definition 3
//     ordinals — no comparator, no hashing — falling back to the
//     comparison sort only for nodes without ordinals (attributes,
//     constructed trees), where it reproduces the reference evaluator's
//     stable-sort semantics exactly;
//   - resolves node tests once per (step, document) into interned name
//     symbols and hierarchy indices (resolvedTest), replacing the
//     per-candidate string comparisons and hierarchy map lookups of
//     matchTest;
//   - shortcuts constant positional predicates ([k], [last()]) by
//     stopping candidate iteration at the selected node; and
//   - reuses the axis candidate buffer across context nodes
//     (evalState.axisBuf) and filters predicate results in place, so a
//     steady-state step allocates only its output.
//
// debugNaiveSteps forces the reference evaluator; the differential
// property tests flip it and require byte-identical results.
var debugNaiveSteps = false

// resolvedTest is a node test resolved against one document: the name as
// an interned symbol, hierarchy restrictions as indices. Hierarchy
// resolution stays lazy so that the unknown-hierarchy error is raised at
// exactly the same evaluation point as the reference matchTest (only
// when a candidate actually reaches the hierarchy check).
type resolvedTest struct {
	doc       *core.Document
	t         *nodeTest
	principal dom.Kind
	nameSym   int32
	hierIdx   []int
	hierDone  bool
	hierErr   error
}

func (rt *resolvedTest) init(d *core.Document, s *step) {
	rt.doc = d
	rt.t = &s.test
	rt.principal = dom.Element
	if s.axis == core.AxisAttribute {
		rt.principal = dom.Attribute
	}
	rt.nameSym = 0
	if s.test.kind == testName {
		rt.nameSym = d.NameSymOf(s.test.name)
	}
	rt.hierIdx = rt.hierIdx[:0]
	rt.hierDone = false
	rt.hierErr = nil
}

// match reports whether candidate n passes the test; the check order
// (kind, name, hierarchy) mirrors matchTest so errors surface at the
// same point.
func (rt *resolvedTest) match(n *dom.Node) (bool, error) {
	t := rt.t
	switch t.kind {
	case testName:
		if n.Kind != rt.principal {
			return false, nil
		}
		if n.NameSym != 0 {
			// Document node: symbols decide (rt.nameSym is 0 when the
			// name occurs nowhere in the document, matching no symbol).
			if n.NameSym != rt.nameSym {
				return false, nil
			}
		} else if n.Name != t.name {
			return false, nil
		}
		return rt.hierOK(n)
	case testStar:
		if n.Kind != rt.principal {
			return false, nil
		}
		return rt.hierOK(n)
	case testText:
		if n.Kind != dom.Text {
			return false, nil
		}
		return rt.hierOK(n)
	case testNode:
		if len(t.hiers) == 0 {
			return true, nil
		}
		return rt.hierOK(n)
	case testComment:
		return n.Kind == dom.Comment, nil
	case testPI:
		return n.Kind == dom.ProcInst && (t.name == "" || n.Name == t.name), nil
	case testLeaf:
		if n.Kind != dom.Leaf {
			return false, nil
		}
		return rt.hierOK(n)
	}
	return false, nil
}

// hierOK is hierOK of the reference evaluator with the per-candidate
// string comparisons and map lookups replaced by integer hierarchy
// indices resolved once per (step, document).
func (rt *resolvedTest) hierOK(n *dom.Node) (bool, error) {
	hiers := rt.t.hiers
	if len(hiers) == 0 {
		return true, nil
	}
	if !rt.hierDone {
		rt.hierDone = true
		for _, name := range hiers {
			h := rt.doc.HierarchyByName(name)
			if h == nil {
				rt.hierErr = errf("MHXQ0001", "unknown hierarchy %q in node test", name)
				break
			}
			rt.hierIdx = append(rt.hierIdx, h.Index)
		}
	}
	if rt.hierErr != nil {
		return false, rt.hierErr
	}
	if n == rt.doc.Root {
		return true, nil
	}
	if n.Kind == dom.Leaf {
		for _, p := range rt.doc.LeafParents(n) {
			for _, hi := range rt.hierIdx {
				if p.HierIndex == hi {
					return true, nil
				}
			}
		}
		return false, nil
	}
	if n.Hier == "" { // constructed node: belongs to no hierarchy
		return false, nil
	}
	for _, hi := range rt.hierIdx {
		if n.HierIndex == hi {
			return true, nil
		}
	}
	return false, nil
}

// Segment order classification (one O(k) pass of dom.Compare).
const (
	segAscending  = iota // strictly ascending document order (or < 2 items)
	segDescending        // strictly descending
	segUnordered         // neither (order-degenerate constructed trees, duplicates)
)

func segOrder(seg Seq) int {
	if len(seg) < 2 {
		return segAscending
	}
	asc, desc := true, true
	for i := 1; i < len(seg); i++ {
		c := dom.Compare(seg[i-1].(*dom.Node), seg[i].(*dom.Node))
		if c >= 0 {
			asc = false
		}
		if c <= 0 {
			desc = false
		}
		if !asc && !desc {
			return segUnordered
		}
	}
	if asc {
		return segAscending
	}
	return segDescending
}

// evalStep evaluates one axis step over the context sequence cur,
// returning the result in document order without duplicates (the same
// output as evalStepRef, without its per-step comparison sort).
func evalStep(c *context, cur Seq, s *step) (Seq, error) {
	st := c.st
	var out Seq
	sorted := true      // out is strictly ascending across segment junctions
	degenerate := false // saw an order-degenerate segment: finish with sortDedupe
	var rt resolvedTest
	for _, it := range cur {
		n, ok := it.(*dom.Node)
		if !ok {
			return nil, errf("XPTY0019", "%s:: step applied to an atomic value", s.axis)
		}
		d := st.docFor(n)
		if rt.doc != d {
			rt.init(d, s)
		}
		// Axis candidates: a shared view of the document's internal
		// arrays when one exists, else the reusable evalState buffer.
		nodes, shared := d.SharedAxis(s.axis, n)
		if !shared {
			if cap(st.axisBuf) == 0 {
				// Start modestly and let append grow: descendant name
				// steps run as index scans now, so most axis fans are
				// small and a full OrdinalSpace buffer per evaluation
				// would dominate short queries.
				st.axisBuf = make([]*dom.Node, 0, min(d.OrdinalSpace(), 512))
			}
			st.axisBuf = d.AppendAxis(st.axisBuf[:0], s.axis, n)
			nodes = st.axisBuf
		}
		if out == nil && len(nodes) > 0 {
			out = make(Seq, 0, min(len(nodes), 32))
		}
		segStart := len(out)
		var err error
		if out, err = filterStep(c, out, nodes, s, &rt); err != nil {
			return nil, err
		}
		if degenerate {
			continue
		}
		// Normalize the segment to ascending document order and check
		// the junction with the previous segment.
		seg := out[segStart:]
		switch segOrder(seg) {
		case segDescending:
			reverseSeq(seg)
		case segUnordered:
			degenerate = true
			continue
		}
		if sorted && len(seg) > 0 && segStart > 0 &&
			dom.Compare(out[segStart-1].(*dom.Node), seg[0].(*dom.Node)) >= 0 {
			sorted = false
		}
	}
	if degenerate {
		// Order-degenerate nodes have no document ordinals; reproduce
		// the reference stable sort. (Reversed segments were strictly
		// ordered, so reversal cannot perturb stable-sort ties.)
		return sortDedupe(out), nil
	}
	if !sorted {
		return st.mergeDocOrder(out), nil
	}
	return out, nil
}

// filterStep appends the candidates passing the step's node test and
// predicates to out. Constant positional first predicates ([k],
// [last()]) stop candidate iteration at the selected node.
func filterStep(c *context, out Seq, nodes []*dom.Node, s *step, rt *resolvedTest) (Seq, error) {
	segStart := len(out)
	preds := s.preds
	if s.posSel != 0 {
		var sel *dom.Node
		if s.posSel > 0 {
			count := 0
			for _, m := range nodes {
				ok, err := rt.match(m)
				if err != nil {
					return nil, err
				}
				if ok {
					if count++; count == s.posSel {
						sel = m
						break
					}
				}
			}
		} else { // [last()]
			for i := len(nodes) - 1; i >= 0; i-- {
				ok, err := rt.match(nodes[i])
				if err != nil {
					return nil, err
				}
				if ok {
					sel = nodes[i]
					break
				}
			}
		}
		if sel == nil {
			return out, nil
		}
		out = append(out, sel)
		preds = preds[1:]
	} else {
		for _, m := range nodes {
			ok, err := rt.match(m)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, m)
			}
		}
	}
	if len(preds) > 0 {
		kept, err := applyPredicatesInPlace(c, out[segStart:], preds)
		if err != nil {
			return nil, err
		}
		out = out[:segStart+len(kept)]
	}
	return out, nil
}

// mergeDocOrder restores document order over an interleaved step result
// via the ordinal scatter; nodes without ordinals fall back to the
// reference comparison sort.
func (st *evalState) mergeDocOrder(out Seq) Seq {
	if len(out) == 0 {
		return out
	}
	d := st.docFor(out[0].(*dom.Node))
	st.ordSet.Reset(d)
	for _, it := range out {
		if !st.ordSet.Add(it.(*dom.Node)) {
			st.ordSet.Clear()
			return sortDedupe(out)
		}
	}
	merged := out[:0]
	st.ordSet.Drain(func(n *dom.Node) { merged = append(merged, n) })
	return merged
}
