package xquery

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"strings"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
)

// This file proves the cost-based planner correct and calibrated:
//
//   - TestPlanChoiceDifferential forces every physical alternative the
//     cost model chooses among (chain-scan / no chain / no index scans,
//     reorder disabled) and requires the cost-chosen plan to produce
//     node- and error-code-identical results over both cursor routes —
//     for the paper queries and hundreds of seeded random path, FLWOR
//     and quantifier shapes. Whatever the estimates say, they may only
//     ever change the plan's shape, never its answer.
//
//   - TestEstimateAccuracyQError runs EXPLAIN ANALYZE over the paper
//     corpus at three scales and bounds the q-error
//     (max(est,obs)/min(est,obs)) of every estimated operator: pure
//     structural paths answer from exact per-path synopsis counts and
//     must stay within q-error 2; predicated shapes fall back to
//     heuristic selectivities and must merely stay finite.

// planKnob is one forced planner configuration of the differential.
type planKnob struct {
	name      string
	force     string
	noReorder bool
}

var planKnobs = []planKnob{
	{name: "cost"}, // the cost-based choice, the baseline
	{name: "chain", force: "chain"},
	{name: "nochain", force: "nochain"},
	{name: "noindex", force: "noindex"},
	{name: "noreorder", noReorder: true},
	{name: "noindex-noreorder", force: "noindex", noReorder: true},
}

// evalForced compiles src fresh under one forced configuration (plans
// are cached per query and signature, so every knob needs its own
// Query) and evaluates it over both cursor routes, which must agree
// exactly before the caller compares configurations.
func evalForced(t *testing.T, d *core.Document, src string, k planKnob) (Seq, error) {
	t.Helper()
	forcePlan, forceNoReorder = k.force, k.noReorder
	defer func() { forcePlan, forceNoReorder = "", false }()
	q, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	fast, fastErr := q.Eval(d)
	streamed, streamErr := drainStream(q.Stream(nil, d, nil, nil))
	switch {
	case (fastErr == nil) != (streamErr == nil):
		t.Errorf("[%s] %q: eval err=%v, stream err=%v", k.name, src, fastErr, streamErr)
	case fastErr != nil:
		fe, fok := fastErr.(*Error)
		se, sok := streamErr.(*Error)
		if !fok || !sok || fe.Code != se.Code {
			t.Errorf("[%s] %q: eval and stream error codes differ: %v vs %v", k.name, src, fastErr, streamErr)
		}
	case !sameItems(fast, streamed) && Serialize(fast) != Serialize(streamed):
		t.Errorf("[%s] %q: eval and stream disagree:\n  eval:   %s\n  stream: %s",
			k.name, src, Serialize(fast), Serialize(streamed))
	}
	return fast, fastErr
}

// orderableQueries are hand-picked shapes where the cost model actually
// reorders: multi-predicate steps, multi-binding quantifiers, and FLWOR
// binding runs under order-insensitive consumers.
var orderableQueries = []string{
	// Predicate-selectivity ordering (both infallible, position-free).
	`/descendant::line[descendant::text()][descendant::zzz]`,
	`/descendant::vline[child::w][child::zzz]`,
	`/descendant::w[child::node()][descendant::text()][self::w]`,
	`//vline[child::w][descendant::text()]`,
	// Quantifier binding order (independent, infallible sources).
	`some $a in /descendant::w, $b in /descendant::line satisfies exists($a/child::node())`,
	`every $a in /descendant::zzz, $b in /descendant::w satisfies exists($b/child::node())`,
	`some $a in /descendant::line, $b in /descendant::vline, $c in /descendant::w satisfies $c/child::text()`,
	`some $a in /descendant::w, $b in /descendant::line satisfies exists(child::zzz)`,
	`every $a in /descendant::w, $b in /descendant::zzz satisfies descendant::text()`,
	// FLWOR for-binding order under exists/empty/count.
	`count(for $a in /descendant::w for $b in /descendant::line return 1)`,
	`exists(for $a in /descendant::line for $b in /descendant::w return $b)`,
	`empty(for $a in /descendant::zzz for $b in /descendant::w return $a)`,
	`count(for $a in /descendant::vline for $b in /descendant::line for $c in /descendant::dmg return ($a, $c))`,
	// Chain cost choice.
	`/child::vline/child::w`,
	`/child::line/child::w/child::zzz`,
	// Reorder gates must hold back: dependent, fallible or positional.
	`some $a in /descendant::vline, $b in $a/child::w satisfies exists($b/child::node())`,
	`count(for $a in /descendant::line for $b in /descendant::w return string($a))`,
	`/descendant::vline[child::w][1]`,
	`/descendant::line[child::w('nope')][descendant::text()]`,
}

// planChoiceDocs is the differential corpus: the Boethius fixture, a
// generated manuscript with heavy markup overlap, and the chain-test
// document (whose tiny uniform shape exercises the chain cost bound).
func planChoiceDocs(t *testing.T) map[string]*core.Document {
	t.Helper()
	gen, err := corpus.Generate(corpus.Params{Seed: 9, Words: 25, DamageRate: 0.3, RestoreRate: 0.3}).Document()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*core.Document{
		"boethius": corpus.MustBoethius(),
		"gen":      gen,
		"chain":    chainDoc(t),
	}
}

// TestPlanChoiceDifferential is the plan-forcing sweep: for every query
// and document, every forced physical alternative must agree with the
// cost-chosen plan — same nodes (by identity where the query yields
// nodes) or the same error code.
func TestPlanChoiceDifferential(t *testing.T) {
	docs := planChoiceDocs(t)

	queries := append([]string{}, orderableQueries...)
	queries = append(queries, planPaperQueries...)
	r := rand.New(rand.NewSource(20260808))
	for i := 0; i < 130; i++ {
		queries = append(queries, randomPath(r))
	}
	for i := 0; i < 30; i++ {
		queries = append(queries, randomChain(r))
	}
	g := &qgen{r: rand.New(rand.NewSource(20260808))}
	for i := 0; i < 90; i++ {
		queries = append(queries, g.query())
	}
	if len(queries) < 200+len(orderableQueries)+len(planPaperQueries) {
		t.Fatalf("only %d queries; the sweep needs at least 200 random shapes", len(queries))
	}

	for _, src := range queries {
		for name, d := range docs {
			var base Seq
			var baseErr error
			for ki, k := range planKnobs {
				got, err := evalForced(t, d, src, k)
				if ki == 0 {
					base, baseErr = got, err
					continue
				}
				if (err == nil) != (baseErr == nil) {
					t.Errorf("%s: %q: [%s] err=%v, [cost] err=%v", name, src, k.name, err, baseErr)
					continue
				}
				if err != nil {
					fe, fok := err.(*Error)
					be, bok := baseErr.(*Error)
					if !fok || !bok || fe.Code != be.Code {
						t.Errorf("%s: %q: [%s] error %v, [cost] error %v", name, src, k.name, err, baseErr)
					}
					continue
				}
				if !sameItems(got, base) && Serialize(got) != Serialize(base) {
					t.Errorf("%s: %q: [%s] and [cost] disagree:\n  %s: %s\n  cost: %s",
						name, src, k.name, k.name, Serialize(got), Serialize(base))
				}
			}
		}
	}
}

// TestPlanChoiceAgainstOracle anchors the forced-plan sweep to the AST
// interpreter: for the orderable shapes, every forced configuration
// must also match the naive oracle, not just each other.
func TestPlanChoiceAgainstOracle(t *testing.T) {
	docs := planChoiceDocs(t)
	for _, src := range orderableQueries {
		q := MustCompile(src)
		for name, d := range docs {
			debugNaiveSteps = true
			ref, refErr := q.Eval(d)
			debugNaiveSteps = false
			for _, k := range planKnobs {
				got, err := evalForced(t, d, src, k)
				if (err == nil) != (refErr == nil) {
					t.Errorf("%s: %q: [%s] err=%v, oracle err=%v", name, src, k.name, err, refErr)
					continue
				}
				if err != nil {
					fe, fok := err.(*Error)
					re, rok := refErr.(*Error)
					if !fok || !rok || fe.Code != re.Code {
						t.Errorf("%s: %q: [%s] error %v, oracle error %v", name, src, k.name, err, refErr)
					}
					continue
				}
				if !sameItems(got, ref) && Serialize(got) != Serialize(ref) {
					t.Errorf("%s: %q: [%s] vs oracle:\n  %s: %s\n  oracle: %s",
						name, src, k.name, k.name, Serialize(got), Serialize(ref))
				}
			}
		}
	}
}

// TestCostChoicesFire pins that the cost model actually changes plan
// shapes on the paper fixture — a regression that silently disables
// cost-based ordering would still pass the differential (all orders are
// correct) but fail here.
func TestCostChoicesFire(t *testing.T) {
	d := corpus.MustBoethius()

	// FLWOR under count(): line (2 rows) must bind before w (6 rows).
	tree := MustCompile(`count(for $a in /descendant::w for $b in /descendant::line return 1)`).
		PlanFor(d).Describe()
	fors := findOps(tree, "for")
	if len(fors) != 2 || fors[0].Detail != "$b" || fors[1].Detail != "$a" {
		t.Errorf("FLWOR bindings not reordered by size: %+v", fors)
	}

	// Quantifier bindings likewise.
	quants := findOps(MustCompile(`some $a in /descendant::w, $b in /descendant::line satisfies exists(child::zzz)`).
		PlanFor(d).Describe(), "quantified")
	if len(quants) != 1 || quants[0].Detail != "some $b, $a" {
		t.Errorf("quantifier bindings not reordered by size: %+v", quants)
	}

	// Predicates: the empty-name predicate (selectivity 0) runs first.
	scans := findOps(MustCompile(`/descendant::vline[child::w][child::zzz]`).
		PlanFor(d).Describe(), "index-scan")
	if len(scans) != 1 || len(scans[0].Children) != 2 ||
		!strings.HasPrefix(scans[0].Children[0].Detail, "child::zzz") {
		t.Errorf("predicates not reordered by selectivity: %+v", scans)
	}

	// forceNoReorder restores the canonical order (the differential
	// depends on the knob actually forcing the alternative).
	forceNoReorder = true
	canonical := MustCompile(`count(for $a in /descendant::w for $b in /descendant::line return 1)`).
		PlanFor(d).Describe()
	forceNoReorder = false
	fors = findOps(canonical, "for")
	if len(fors) != 2 || fors[0].Detail != "$a" || fors[1].Detail != "$b" {
		t.Errorf("forceNoReorder did not restore canonical binding order: %+v", fors)
	}

	// Exact estimates annotate the operators.
	scans = findOps(MustCompile(`/descendant::w`).PlanFor(d).Describe(), "index-scan")
	if len(scans) != 1 || scans[0].EstRows == nil || *scans[0].EstRows != 6 {
		t.Errorf("index-scan estimate missing or wrong: %+v", scans)
	}
}

// ---- estimate accuracy -----------------------------------------------------

// qerror is the standard estimation-accuracy metric:
// max(est,obs)/min(est,obs), clamping both sides to at least one row so
// an exact zero estimate of an empty result scores a perfect 1.
func qerror(est, obs int64) float64 {
	e := math.Max(float64(est), 1)
	o := math.Max(float64(obs), 1)
	return math.Max(e/o, o/e)
}

type estSample struct {
	query  string
	op     string
	detail string
	est    int64
	obs    int64
	q      float64
}

// collectEstimates runs src under EXPLAIN ANALYZE and returns one
// sample per estimated operator that ran exactly once (multi-call
// operators total their observed rows across calls, which is not what a
// single root-context estimate predicts).
func collectEstimates(t *testing.T, d *core.Document, src string) []estSample {
	t.Helper()
	q := MustCompile(src)
	_, tree, err := q.ExplainAnalyze(d, nil, nil)
	if err != nil {
		t.Fatalf("%q: %v", src, err)
	}
	var out []estSample
	var walk func(op *ExplainOp)
	walk = func(op *ExplainOp) {
		if op.EstRows != nil && op.Calls == 1 {
			out = append(out, estSample{
				query: src, op: op.Op, detail: op.Detail,
				est: *op.EstRows, obs: op.OutRows,
				q: qerror(*op.EstRows, op.OutRows),
			})
		}
		for _, k := range op.Children {
			walk(k)
		}
	}
	walk(tree)
	return out
}

// purePathQueries are unpredicated rooted structural paths: the synopsis
// answers these exactly, so their q-error bound is tight.
var purePathQueries = []string{
	`/descendant::w`,
	`/descendant::line`,
	`/descendant::vline`,
	`/descendant::dmg`,
	`/descendant::res`,
	`/descendant::zzz`,
	`//w`,
	`//line`,
	`/descendant::*`,
	`/child::*`,
	`/child::vline/child::w`,
	`/child::line/child::w`,
	`/descendant::vline/child::w`,
	`/descendant::vline/child::zzz`,
	`/descendant-or-self::w`,
	`/descendant::w/child::text()`,
	`/descendant::line/child::node()`,
}

// predicatedQueries carry predicates or estimator-opaque axes: their
// estimates are heuristic and need only stay finite (every estimated
// operator reports a number, never garbage).
var predicatedQueries = []string{
	`/descendant::w[child::node()]`,
	`/descendant::line[descendant::w]`,
	`/descendant::vline[child::w][child::zzz]`,
	`/descendant::w[string(.) = 'singallice']`,
	`/descendant::line[xdescendant::w]`,
	`/descendant::vline[child::w]/child::w`,
	`//w[self::w]`,
	`/descendant::vline/child::w[1]`,
	`/descendant::line[descendant::text()][position() <= 2]`,
}

// qerrorDocs is the accuracy corpus: the paper fixture plus generated
// manuscripts at 1×, 10× and 100× scale.
func qerrorDocs(t *testing.T) map[string]*core.Document {
	t.Helper()
	docs := map[string]*core.Document{"boethius": corpus.MustBoethius()}
	for _, scale := range []int{1, 10, 100} {
		p := corpus.Params{Seed: 17, Words: 20 * scale, DamageRate: 0.25, RestoreRate: 0.25}
		d, err := corpus.Generate(p).Document()
		if err != nil {
			t.Fatal(err)
		}
		docs[fmt.Sprintf("gen-%dx", scale)] = d
	}
	return docs
}

// TestEstimateAccuracyQError bounds the planner's estimate quality. On
// failure the message lists the worst offenders with their query,
// operator, estimate and observation.
func TestEstimateAccuracyQError(t *testing.T) {
	const pureBound = 2.0
	for name, d := range qerrorDocs(t) {
		var pure, pred []estSample
		for _, src := range purePathQueries {
			pure = append(pure, collectEstimates(t, d, src)...)
		}
		for _, src := range predicatedQueries {
			pred = append(pred, collectEstimates(t, d, src)...)
		}
		if len(pure) == 0 {
			t.Fatalf("%s: no estimated operators on pure paths — estimation is not wired in", name)
		}
		sort.Slice(pure, func(i, j int) bool { return pure[i].q > pure[j].q })
		if worst := pure[0].q; worst > pureBound {
			n := len(pure)
			if n > 5 {
				n = 5
			}
			msg := ""
			for _, s := range pure[:n] {
				msg += fmt.Sprintf("\n  q=%.2f est=%d obs=%d %s %q (%s)", s.q, s.est, s.obs, s.op, s.detail, s.query)
			}
			t.Errorf("%s: pure-path max q-error %.2f exceeds %.1f; worst offenders:%s", name, worst, pureBound, msg)
		}
		for _, s := range pred {
			if math.IsNaN(s.q) || math.IsInf(s.q, 0) || s.est < 0 {
				t.Errorf("%s: non-finite estimate: est=%d obs=%d %s %q (%s)", name, s.est, s.obs, s.op, s.detail, s.query)
			}
		}
	}
}

// TestEstimatesSurviveUpdates pins the incremental-synopsis → planner
// contract: after document edits, a fresh plan's estimates come from the
// patched synopsis and stay exact on pure paths.
func TestEstimatesSurviveUpdates(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 23, Words: 30, DamageRate: 0.3})
	d, err := c.Document()
	if err != nil {
		t.Fatal(err)
	}
	// Warm the synopses, then edit, so Apply maintains them
	// incrementally rather than deferring to a fresh build.
	for _, h := range d.Hiers {
		h.Synopsis()
	}
	var target *dom.Node
	for _, n := range d.Hiers[0].Nodes {
		if n.Kind == dom.Element {
			target = n
			break
		}
	}
	d2, st, err := d.Apply([]core.Edit{
		{Kind: core.EditRename, Target: target, Name: "renamed"},
		{Kind: core.EditWrap, Target: target, Name: "wrapped", From: 0, To: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SynopsesPatched == 0 {
		t.Fatalf("update patched no synopses (stats %+v): the incremental path is not under test", st)
	}
	for _, src := range purePathQueries {
		for _, s := range collectEstimates(t, d2, src) {
			if s.q > 2.0 {
				t.Errorf("post-update q=%.2f est=%d obs=%d %s %q (%s)", s.q, s.est, s.obs, s.op, s.detail, s.query)
			}
		}
	}
}
