package xquery

import (
	"time"

	"mhxquery/internal/dom"
)

// This file defines the pull-based execution primitives of the cursor
// engine: the cursor interface every physical operator streams items
// through, adapters between cursors and materialized sequences, and the
// drain helpers the evaluation entry points use. The design rule is that
// a cursor owns no resources — abandoning one (an early-exit consumer
// stopping after its first item) needs no Close, which is what makes
// streaming with limits safe to expose over HTTP.

// cursor is a pull-based item stream. next returns the next item and
// true, or (nil, false, nil) when the stream is exhausted. After an
// error or exhaustion the cursor must keep returning (nil, false, err).
type cursor interface {
	next() (Item, bool, error)
}

// emptyCur is the shared empty cursor.
var emptyCur cursor = seqCur(nil)

// seqCursor streams a materialized sequence.
type seqCursor struct {
	s Seq
	i int
}

func (sc *seqCursor) next() (Item, bool, error) {
	if sc.i >= len(sc.s) {
		return nil, false, nil
	}
	it := sc.s[sc.i]
	sc.i++
	return it, true, nil
}

// seqCur wraps a sequence as a cursor.
func seqCur(s Seq) cursor { return &seqCursor{s: s} }

// errCursor yields one error and nothing else.
type errCursor struct{ err error }

func (ec *errCursor) next() (Item, bool, error) { return nil, false, ec.err }

func errCur(err error) cursor { return &errCursor{err: err} }

// drain materializes a cursor. Cancellation is checked here so every
// strict consumer of a streaming operator honors the evaluation
// deadline.
func drain(c *context, cur cursor) (Seq, error) {
	// Fast path: a sequence-backed cursor materializes by slicing.
	if sc, ok := cur.(*seqCursor); ok {
		s := sc.s[sc.i:]
		sc.i = len(sc.s)
		return s, nil
	}
	var out Seq
	for {
		if err := c.st.checkCancel(); err != nil {
			return nil, err
		}
		it, ok, err := cur.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, it)
	}
}

// drainBool computes the effective boolean value of a cursor, pulling
// at most two items (the ebv rules need no more: an empty stream is
// false, a stream whose first item is a node is true, and a second item
// after a non-node first is the FORG0006 error). An error the producer
// would only raise beyond the pulled prefix is not raised — XQuery's
// errors-and-optimization rules expressly permit not evaluating the
// unneeded remainder of an operand.
func drainBool(cur cursor) (bool, error) {
	first, ok, err := cur.next()
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	if _, isNode := first.(*dom.Node); isNode {
		return true, nil
	}
	if _, more, err := cur.next(); err != nil {
		return false, err
	} else if more {
		return false, errf("FORG0006", "effective boolean value of a sequence of 2 or more atomic values")
	}
	return ebv(Seq{first})
}

// countingCursor counts items through an explain slot: out_rows grows
// per emitted item, so a partially drained (limit-stopped) evaluation
// records exactly how many items each operator produced. Under EXPLAIN
// ANALYZE (st.timed) each pull is also timed; the recorded time is
// inclusive of upstream work, since pulling this cursor pulls its
// producers.
type countingCursor struct {
	inner cursor
	st    *evalState
	id    int
}

func (cc *countingCursor) next() (Item, bool, error) {
	if cc.st.timed {
		start := time.Now()
		it, ok, err := cc.inner.next()
		cc.st.explain[cc.id].nanos += int64(time.Since(start))
		if ok {
			cc.st.explain[cc.id].out++
		}
		return it, ok, err
	}
	it, ok, err := cc.inner.next()
	if ok && cc.st.explain != nil {
		cc.st.explain[cc.id].out++
	}
	return it, ok, err
}

// counted wraps cur with explain accounting when instrumentation is
// active; calls is bumped once per open.
func counted(st *evalState, id int, cur cursor) cursor {
	if st.explain == nil || id < 0 {
		return cur
	}
	st.explain[id].calls++
	return &countingCursor{inner: cur, st: st, id: id}
}

// opTimerCursor adds wall time to a path operator's explain slot under
// EXPLAIN ANALYZE. The step cursors (stepcursor.go) already record
// calls/in/out at their natural accounting points; timing lives in this
// separate wrapper so the hot cursor loops never touch the clock when
// instrumentation is off. Times are inclusive of upstream operators.
type opTimerCursor struct {
	inner cursor
	st    *evalState
	id    int
}

func (tc *opTimerCursor) next() (Item, bool, error) {
	start := time.Now()
	it, ok, err := tc.inner.next()
	tc.st.explain[tc.id].nanos += int64(time.Since(start))
	return it, ok, err
}

// concatCursor streams the concatenation of lazily opened sub-cursors.
type concatCursor struct {
	open func(i int) (cursor, bool) // i-th sub-cursor, ok=false when done
	cur  cursor
	i    int
}

func (cc *concatCursor) next() (Item, bool, error) {
	for {
		if cc.cur == nil {
			sub, ok := cc.open(cc.i)
			if !ok {
				return nil, false, nil
			}
			cc.i++
			cc.cur = sub
		}
		it, ok, err := cc.cur.next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return it, true, nil
		}
		cc.cur = nil
	}
}
