package xquery

import (
	"math"
	"sort"
	"strings"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// This file is the AST interpreter: the recursive eval methods that
// define the semantics of every expression kind directly over the
// syntax tree. Production evaluation runs through the cursor engine
// (plan.go lowers the AST to physical operators, lower.go/stepcursor.go
// execute them); the interpreter is retained as the differential oracle
// the cursor engine is property-tested against — with debugNaiveSteps
// set it evaluates every query with the reference step evaluator
// (evalStepRef) and no physical plan, and the differential suites
// require node-identical results between the two engines.

// ---- leaf expressions ----------------------------------------------------

func (e *literalExpr) eval(*context) (Seq, error) { return e.seq, nil }

func (e *rawTextExpr) eval(*context) (Seq, error) { return singleton(e.s), nil }

func (e *varExpr) eval(c *context) (Seq, error) {
	v, ok := c.lookup(e.name)
	if !ok {
		return nil, errf("XPST0008", "undefined variable $%s", e.name)
	}
	return v, nil
}

func (e *contextItemExpr) eval(c *context) (Seq, error) {
	if c.item == nil {
		return nil, errf("XPDY0002", "context item is undefined")
	}
	return singleton(c.item), nil
}

func (e *rootExpr) eval(c *context) (Seq, error) {
	return singleton(c.st.rootFor(c.item)), nil
}

func (e *seqExpr) eval(c *context) (Seq, error) {
	var out Seq
	for _, it := range e.items {
		v, err := it.eval(c)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func (e *rangeExpr) eval(c *context) (Seq, error) {
	lo, empty, err := evalNumber(c, e.lo, "range")
	if err != nil || empty {
		return nil, err
	}
	hi, empty, err := evalNumber(c, e.hi, "range")
	if err != nil || empty {
		return nil, err
	}
	return rangeSeq(c, lo, hi)
}

// ---- boolean and comparison ------------------------------------------------

func (e *orExpr) eval(c *context) (Seq, error) {
	va, err := e.a.eval(c)
	if err != nil {
		return nil, err
	}
	ba, err := ebv(va)
	if err != nil {
		return nil, err
	}
	if ba {
		return seqTrue, nil
	}
	vb, err := e.b.eval(c)
	if err != nil {
		return nil, err
	}
	bb, err := ebv(vb)
	return singletonBool(bb), err
}

func (e *andExpr) eval(c *context) (Seq, error) {
	va, err := e.a.eval(c)
	if err != nil {
		return nil, err
	}
	ba, err := ebv(va)
	if err != nil {
		return nil, err
	}
	if !ba {
		return seqFalse, nil
	}
	vb, err := e.b.eval(c)
	if err != nil {
		return nil, err
	}
	bb, err := ebv(vb)
	return singletonBool(bb), err
}

// evalCmp implements every comparison kind over two materialized
// operands (shared with the lowered comparison operator).
func evalCmp(c *context, op string, kind cmpKind, va, vb Seq) (Seq, error) {
	switch kind {
	case cmpNode:
		if len(va) == 0 || len(vb) == 0 {
			return Seq{}, nil
		}
		na, aok := va[0].(*dom.Node)
		nb, bok := vb[0].(*dom.Node)
		if len(va) > 1 || len(vb) > 1 || !aok || !bok {
			return nil, errf("XPTY0004", "operands of %q must be single nodes", op)
		}
		switch op {
		case "is":
			return singletonBool(na == nb), nil
		case "<<":
			return singletonBool(dom.Compare(na, nb) < 0), nil
		default:
			return singletonBool(dom.Compare(na, nb) > 0), nil
		}
	case cmpValue:
		if len(va) == 0 || len(vb) == 0 {
			return Seq{}, nil
		}
		if len(va) > 1 || len(vb) > 1 {
			return nil, errf("XPTY0004", "operands of %q must be single values", op)
		}
		cres, ok := compareAtomic(op, c.atomize(va[0]), c.atomize(vb[0]))
		if !ok {
			return seqFalse, nil
		}
		return singletonBool(applyCmp(op, cres)), nil
	}
	// General comparison: existential over both sequences.
	for _, ia := range va {
		for _, ib := range vb {
			cres, ok := compareAtomic(op, c.atomize(ia), c.atomize(ib))
			if ok && applyCmp(op, cres) {
				return seqTrue, nil
			}
		}
	}
	return seqFalse, nil
}

func (e *cmpExpr) eval(c *context) (Seq, error) {
	va, err := e.a.eval(c)
	if err != nil {
		return nil, err
	}
	vb, err := e.b.eval(c)
	if err != nil {
		return nil, err
	}
	return evalCmp(c, e.op, e.kind, va, vb)
}

// ---- arithmetic ------------------------------------------------------------

// evalArith applies one arithmetic operator (shared with the lowered
// arithmetic operator).
func evalArith(op string, x, y float64) (Seq, error) {
	switch op {
	case "+":
		return singleton(x + y), nil
	case "-":
		return singleton(x - y), nil
	case "*":
		return singleton(x * y), nil
	case "div":
		return singleton(x / y), nil
	case "idiv":
		if y == 0 {
			return nil, errf("FOAR0001", "integer division by zero")
		}
		return singleton(math.Trunc(x / y)), nil
	case "mod":
		return singleton(math.Mod(x, y)), nil
	}
	return nil, errf("XPST0003", "unknown arithmetic operator %q", op)
}

func (e *arithExpr) eval(c *context) (Seq, error) {
	x, empty, err := evalNumber(c, e.a, "arithmetic")
	if err != nil || empty {
		return nil, err
	}
	y, empty, err := evalNumber(c, e.b, "arithmetic")
	if err != nil || empty {
		return nil, err
	}
	return evalArith(e.op, x, y)
}

func (e *unaryExpr) eval(c *context) (Seq, error) {
	x, empty, err := evalNumber(c, e.x, "unary minus")
	if err != nil || empty {
		return nil, err
	}
	return singleton(-x), nil
}

// ---- node-set operators ------------------------------------------------------

// evalUnion merges two node sequences in document order (shared with
// the lowered union operator).
func evalUnion(va, vb Seq) (Seq, error) {
	na, err := toNodes(va, "union")
	if err != nil {
		return nil, err
	}
	nb, err := toNodes(vb, "union")
	if err != nil {
		return nil, err
	}
	return nodesToSeq(core.SortDoc(append(na, nb...))), nil
}

func (e *unionExpr) eval(c *context) (Seq, error) {
	va, err := e.a.eval(c)
	if err != nil {
		return nil, err
	}
	vb, err := e.b.eval(c)
	if err != nil {
		return nil, err
	}
	return evalUnion(va, vb)
}

// evalIntersect implements intersect/except (shared with the lowered
// operator).
func evalIntersect(va, vb Seq, except bool) (Seq, error) {
	op := "intersect"
	if except {
		op = "except"
	}
	na, err := toNodes(va, op)
	if err != nil {
		return nil, err
	}
	nb, err := toNodes(vb, op)
	if err != nil {
		return nil, err
	}
	inB := make(map[*dom.Node]bool, len(nb))
	for _, n := range nb {
		inB[n] = true
	}
	var out []*dom.Node
	for _, n := range na {
		if inB[n] != except {
			out = append(out, n)
		}
	}
	return nodesToSeq(core.SortDoc(out)), nil
}

func (e *intersectExpr) eval(c *context) (Seq, error) {
	va, err := e.a.eval(c)
	if err != nil {
		return nil, err
	}
	vb, err := e.b.eval(c)
	if err != nil {
		return nil, err
	}
	return evalIntersect(va, vb, e.except)
}

// ---- control flow -------------------------------------------------------------

func (e *ifExpr) eval(c *context) (Seq, error) {
	v, err := e.cond.eval(c)
	if err != nil {
		return nil, err
	}
	b, err := ebv(v)
	if err != nil {
		return nil, err
	}
	if b {
		return e.then.eval(c)
	}
	return e.els.eval(c)
}

func (q *quantExpr) eval(c *context) (Seq, error) {
	b, err := q.walk(c, 0)
	if err != nil {
		return nil, err
	}
	return singletonBool(b), nil
}

func (q *quantExpr) walk(c *context, i int) (bool, error) {
	if i == len(q.names) {
		v, err := q.sat.eval(c)
		if err != nil {
			return false, err
		}
		return ebv(v)
	}
	src, err := q.srcs[i].eval(c)
	if err != nil {
		return false, err
	}
	for _, it := range src {
		b, err := q.walk(c.bind(q.names[i], singleton(it)), i+1)
		if err != nil {
			return false, err
		}
		if q.every && !b {
			return false, nil
		}
		if !q.every && b {
			return true, nil
		}
	}
	return q.every, nil
}

// ---- FLWOR ----------------------------------------------------------------------

func (f *flworExpr) eval(c *context) (Seq, error) {
	if len(f.order) == 0 {
		var out Seq
		err := f.run(c, 0, func(c2 *context) error {
			v, err := f.ret.eval(c2)
			if err != nil {
				return err
			}
			out = append(out, v...)
			return nil
		})
		return out, err
	}
	type tup struct {
		c    *context
		keys []Seq
	}
	var tups []tup
	err := f.run(c, 0, func(c2 *context) error {
		keys := make([]Seq, len(f.order))
		for i, o := range f.order {
			v, err := o.key.eval(c2)
			if err != nil {
				return err
			}
			keys[i] = c2.atomizeSeq(v)
		}
		tups = append(tups, tup{c: c2, keys: keys})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(tups, func(i, j int) bool {
		for k, o := range f.order {
			cres, ok := compareOrderKeys(o, tups[i].keys[k], tups[j].keys[k])
			if !ok || cres == 0 {
				continue
			}
			if o.descending {
				return cres > 0
			}
			return cres < 0
		}
		return false
	})
	var out Seq
	for _, t := range tups {
		v, err := f.ret.eval(t.c)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func (f *flworExpr) run(c *context, idx int, emit func(*context) error) error {
	if idx == len(f.clauses) {
		return emit(c)
	}
	cl := f.clauses[idx]
	switch cl.kind {
	case clauseLet:
		v, err := cl.src.eval(c)
		if err != nil {
			return err
		}
		return f.run(c.bind(cl.name, v), idx+1, emit)
	case clauseWhere:
		v, err := cl.src.eval(c)
		if err != nil {
			return err
		}
		b, err := ebv(v)
		if err != nil {
			return err
		}
		if !b {
			return nil
		}
		return f.run(c, idx+1, emit)
	}
	// for clause
	v, err := cl.src.eval(c)
	if err != nil {
		return err
	}
	for i, it := range v {
		c2 := c.bind(cl.name, singleton(it))
		if cl.posName != "" {
			c2 = c2.bind(cl.posName, singleton(float64(i+1)))
		}
		if err := f.run(c2, idx+1, emit); err != nil {
			return err
		}
	}
	return nil
}

// ---- function calls ---------------------------------------------------------------

func (e *callExpr) eval(c *context) (Seq, error) {
	if len(e.args) == 0 { // position(), last(), true(), …: no arg slice
		return e.fn.fn(c, nil)
	}
	args := make([]Seq, len(e.args))
	for i, a := range e.args {
		v, err := a.eval(c)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return e.fn.fn(c, args)
}

// ---- filters and paths --------------------------------------------------------------

func (e *filterExpr) eval(c *context) (Seq, error) {
	v, err := e.base.eval(c)
	if err != nil {
		return nil, err
	}
	return applyPredicates(c, v, e.preds)
}

func (p *pathExpr) eval(c *context) (Seq, error) {
	var cur Seq
	switch {
	case p.start != nil:
		v, err := p.start.eval(c)
		if err != nil {
			return nil, err
		}
		cur = v
	case p.absolute:
		cur = Seq{c.st.rootFor(c.item)}
	default:
		if c.item == nil {
			return nil, errf("XPDY0002", "context item undefined at start of relative path")
		}
		cur = Seq{c.item}
	}
	for si, s := range p.steps {
		var err error
		switch {
		case s.prim != nil:
			cur, err = evalPrimStep(c, cur, s, si == len(p.steps)-1)
		case debugNaiveSteps:
			cur, err = evalStepRef(c, cur, s)
		default:
			cur, err = evalStep(c, cur, s)
		}
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// evalStepRef is the reference axis-step evaluator: filter every
// candidate with matchTest, apply predicates, and restore document order
// with a full comparison sort after the step. It is the semantic oracle
// the pipeline (evalStep) and the streaming step cursors are
// differential-tested against.
func evalStepRef(c *context, cur Seq, s *step) (Seq, error) {
	var out Seq
	for _, it := range cur {
		n, ok := it.(*dom.Node)
		if !ok {
			return nil, errf("XPTY0019", "%s:: step applied to an atomic value", s.axis)
		}
		nodes := c.st.docFor(n).Eval(s.axis, n)
		filtered := make(Seq, 0, len(nodes))
		for _, m := range nodes {
			match, err := matchTest(c, s.axis, m, s.test)
			if err != nil {
				return nil, err
			}
			if match {
				filtered = append(filtered, m)
			}
		}
		filtered, err := applyPredicates(c, filtered, s.preds)
		if err != nil {
			return nil, err
		}
		out = append(out, filtered...)
	}
	return sortDedupe(out), nil
}

// matchTest applies a node test (Definition 2, plus hierarchy-qualified
// name tests) to a candidate node.
func matchTest(c *context, ax core.Axis, n *dom.Node, t nodeTest) (bool, error) {
	principal := dom.Element
	if ax == core.AxisAttribute {
		principal = dom.Attribute
	}
	switch t.kind {
	case testName:
		if n.Kind != principal || n.Name != t.name {
			return false, nil
		}
		return hierOK(c, n, t.hiers)
	case testStar:
		if n.Kind != principal {
			return false, nil
		}
		return hierOK(c, n, t.hiers)
	case testText:
		if n.Kind != dom.Text {
			return false, nil
		}
		return hierOK(c, n, t.hiers)
	case testNode:
		if len(t.hiers) == 0 {
			return true, nil
		}
		return hierOK(c, n, t.hiers)
	case testComment:
		return n.Kind == dom.Comment, nil
	case testPI:
		return n.Kind == dom.ProcInst && (t.name == "" || n.Name == t.name), nil
	case testLeaf:
		if n.Kind != dom.Leaf {
			return false, nil
		}
		return hierOK(c, n, t.hiers)
	}
	return false, nil
}

// hierOK implements the hierarchy restriction of Definition 2: the node
// must belong to one of the named hierarchies. The shared root belongs to
// all hierarchies; a leaf belongs to every hierarchy covering it.
func hierOK(c *context, n *dom.Node, hiers []string) (bool, error) {
	if len(hiers) == 0 {
		return true, nil
	}
	d := c.st.docFor(n)
	for _, h := range hiers {
		if d.HierarchyByName(h) == nil {
			return false, errf("MHXQ0001", "unknown hierarchy %q in node test", h)
		}
	}
	if n == d.Root {
		return true, nil
	}
	if n.Kind == dom.Leaf {
		for _, p := range d.LeafParents(n) {
			for _, h := range hiers {
				if p.Hier == h {
					return true, nil
				}
			}
		}
		return false, nil
	}
	for _, h := range hiers {
		if n.Hier == h {
			return true, nil
		}
	}
	return false, nil
}

// ---- constructors ---------------------------------------------------------------------

// buildElement constructs a direct element: attribute value templates,
// then content items (shared with the lowered constructor operator —
// the attrs/content expressions may be AST or lowered nodes).
func buildElement(c *context, name string, attrs []attrTpl, content []expr) (Seq, error) {
	el := dom.NewElement(name)
	for _, a := range attrs {
		var b strings.Builder
		for _, part := range a.parts {
			if rt, ok := rawText(part); ok {
				b.WriteString(rt)
				continue
			}
			v, err := part.eval(c)
			if err != nil {
				return nil, err
			}
			for i, it := range v {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(stringItem(c, it))
			}
		}
		el.SetAttr(a.name, b.String())
	}
	for _, ce := range content {
		if rt, ok := rawText(ce); ok {
			addTextTo(el, rt)
			continue
		}
		v, err := ce.eval(c)
		if err != nil {
			return nil, err
		}
		appendContent(el, v)
	}
	return singleton(el), nil
}

// rawText recognizes literal character data inside a constructor, in
// AST or lowered form.
func rawText(e expr) (string, bool) {
	switch rt := e.(type) {
	case *rawTextExpr:
		return rt.s, true
	case *pRawText:
		return rt.s, true
	}
	return "", false
}

func (e *elemExpr) eval(c *context) (Seq, error) {
	return buildElement(c, e.name, e.attrs, e.content)
}

// buildComputed constructs a computed element/attribute/text/comment
// node from an already-resolved name and content (shared with the
// lowered constructor operator).
func buildComputed(kind byte, name string, content Seq) (Seq, error) {
	if (kind == 'e' || kind == 'a') && !validXMLName(name) {
		return nil, errf("XQDY0074", "computed constructor: invalid name %q", name)
	}
	switch kind {
	case 'e':
		el := dom.NewElement(name)
		appendContent(el, content)
		return singleton(el), nil
	case 'a':
		return singleton(&dom.Node{Kind: dom.Attribute, Name: name, Data: joinAtomics(content)}), nil
	case 't':
		return singleton(dom.NewText(joinAtomics(content))), nil
	}
	return singleton(&dom.Node{Kind: dom.Comment, Data: joinAtomics(content)}), nil
}

// resolveCtorName evaluates a computed constructor's name expression.
func resolveCtorName(c *context, name string, nameExpr expr) (string, error) {
	if nameExpr == nil {
		return name, nil
	}
	v, err := nameExpr.eval(c)
	if err != nil {
		return "", err
	}
	v = c.atomizeSeq(v)
	if len(v) != 1 {
		return "", errf("XPTY0004", "computed constructor name must be a single value")
	}
	return stringValue(v[0]), nil
}

func (e *compCtorExpr) eval(c *context) (Seq, error) {
	name, err := resolveCtorName(c, e.name, e.nameExpr)
	if err != nil {
		return nil, err
	}
	var content Seq
	if e.content != nil {
		v, err := e.content.eval(c)
		if err != nil {
			return nil, err
		}
		content = v
	}
	return buildComputed(e.kind, name, content)
}
