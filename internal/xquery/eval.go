package xquery

import (
	"math"
	"sort"
	"strings"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
)

// evalState is the per-evaluation mutable state. The active document
// pointer advances to overlay documents as analyze-string materializes
// temporary hierarchies (Definition 4); the base document is never
// touched, so the temporaries vanish when the evaluation ends — exactly
// the lifetime rule of Definition 4(5).
type evalState struct {
	doc     *core.Document
	tempSeq int
	// resolver backs doc() and collection(); nil outside a collection
	// evaluation context.
	resolver Resolver
	// extra holds the documents pulled in by doc()/collection() during
	// this evaluation, so axis steps on their nodes dispatch to the
	// owning document rather than the active one.
	extra []*core.Document

	// plan is the physical plan driving this evaluation (nil under
	// debugNaiveSteps); explain, when non-nil, collects per-operator
	// cardinalities for EXPLAIN output.
	plan    *Plan
	explain []opCard

	// axisBuf is the reusable axis-candidate buffer of the step pipeline
	// (AppendAxis destination), shared across context nodes and steps —
	// candidates are consumed into the step output before any nested
	// evaluation can run.
	axisBuf []*dom.Node
	// ordSet is the reusable ordinal scatter buffer that restores
	// document order over interleaved step results.
	ordSet core.OrdinalSet
}

// addExtra records a document loaded by doc()/collection().
func (st *evalState) addExtra(d *core.Document) {
	if d == st.doc {
		return
	}
	for _, e := range st.extra {
		if e == d {
			return
		}
	}
	st.extra = append(st.extra, d)
}

// docFor returns the document that owns n: the active document, one of
// the documents loaded via doc()/collection(), or — for constructed
// nodes owned by no document — the active document. Matched extra
// entries move to the front (consecutive axis steps almost always stay
// in one document, so the scan is amortized O(1) even when
// collection() loaded many documents).
func (st *evalState) docFor(n *dom.Node) *core.Document {
	if len(st.extra) == 0 || st.doc.Owns(n) {
		return st.doc
	}
	for i, e := range st.extra {
		if e.Owns(n) {
			if i > 0 {
				copy(st.extra[1:], st.extra[:i])
				st.extra[0] = e
			}
			return e
		}
	}
	return st.doc
}

// rootFor implements the XPath rule that "/" selects the root of the
// tree containing the context item: the owning document's root for a
// node item, the active document's root otherwise.
func (st *evalState) rootFor(item Item) *dom.Node {
	if n, ok := item.(*dom.Node); ok {
		return st.docFor(n).Root
	}
	return st.doc.Root
}

// context is the dynamic context: context item, position/size, variable
// bindings (an immutable linked list, so child contexts are O(1)).
type context struct {
	st        *evalState
	item      Item
	pos, size int
	vars      *frame
}

type frame struct {
	name string
	val  Seq
	next *frame
}

func (c *context) bind(name string, val Seq) *context {
	nc := *c
	nc.vars = &frame{name: name, val: val, next: c.vars}
	return &nc
}

func (c *context) lookup(name string) (Seq, bool) {
	for f := c.vars; f != nil; f = f.next {
		if f.name == name {
			return f.val, true
		}
	}
	return nil, false
}

// stringOf is the string value of a node with the document shortcut: a
// document-owned element's string value is a slice of the base text
// (node.go: TextContent of a KyGODDAG node equals S[n.Start:n.End]), so
// no tree walk and no string building. Nodes without ordinals
// (constructed trees) fall back to TextContent.
func (st *evalState) stringOf(n *dom.Node) string {
	if n.Kind == dom.Element {
		d := st.docFor(n)
		if _, ok := d.OrdinalOf(n); ok {
			return d.Text[n.Start:n.End]
		}
	}
	return n.TextContent()
}

// atomize is the context-aware atomization: nodes become their string
// value via the base-text shortcut, atomics pass through.
func (c *context) atomize(it Item) Item {
	if n, ok := it.(*dom.Node); ok {
		return c.st.stringOf(n)
	}
	return it
}

// atomizeSeq atomizes every item, context-aware.
func (c *context) atomizeSeq(s Seq) Seq {
	out := make(Seq, len(s))
	for i, it := range s {
		out[i] = c.atomize(it)
	}
	return out
}

// stringItem is stringValue with the base-text shortcut for nodes.
func stringItem(c *context, it Item) string {
	if n, ok := it.(*dom.Node); ok {
		return c.st.stringOf(n)
	}
	return stringValue(it)
}

// ---- leaf expressions ----------------------------------------------------

func (e *literalExpr) eval(*context) (Seq, error) { return e.seq, nil }

func (e *rawTextExpr) eval(*context) (Seq, error) { return singleton(e.s), nil }

func (e *varExpr) eval(c *context) (Seq, error) {
	v, ok := c.lookup(e.name)
	if !ok {
		return nil, errf("XPST0008", "undefined variable $%s", e.name)
	}
	return v, nil
}

func (e *contextItemExpr) eval(c *context) (Seq, error) {
	if c.item == nil {
		return nil, errf("XPDY0002", "context item is undefined")
	}
	return singleton(c.item), nil
}

func (e *rootExpr) eval(c *context) (Seq, error) {
	return singleton(c.st.rootFor(c.item)), nil
}

func (e *seqExpr) eval(c *context) (Seq, error) {
	var out Seq
	for _, it := range e.items {
		v, err := it.eval(c)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func (e *rangeExpr) eval(c *context) (Seq, error) {
	lo, empty, err := evalNumber(c, e.lo, "range")
	if err != nil || empty {
		return nil, err
	}
	hi, empty, err := evalNumber(c, e.hi, "range")
	if err != nil || empty {
		return nil, err
	}
	if lo != math.Trunc(lo) || hi != math.Trunc(hi) {
		return nil, errf("FORG0006", "range bounds must be integers")
	}
	var out Seq
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out, nil
}

// evalNumber evaluates an operand to a single number; empty reports the
// empty sequence (which propagates as an empty result).
func evalNumber(c *context, e expr, what string) (f float64, empty bool, err error) {
	v, err := e.eval(c)
	if err != nil {
		return 0, false, err
	}
	v = c.atomizeSeq(v)
	switch len(v) {
	case 0:
		return 0, true, nil
	case 1:
		return toNumber(v[0]), false, nil
	}
	return 0, false, errf("XPTY0004", "%s operand is a sequence of %d items", what, len(v))
}

// ---- boolean and comparison ------------------------------------------------

func (e *orExpr) eval(c *context) (Seq, error) {
	va, err := e.a.eval(c)
	if err != nil {
		return nil, err
	}
	ba, err := ebv(va)
	if err != nil {
		return nil, err
	}
	if ba {
		return seqTrue, nil
	}
	vb, err := e.b.eval(c)
	if err != nil {
		return nil, err
	}
	bb, err := ebv(vb)
	return singletonBool(bb), err
}

func (e *andExpr) eval(c *context) (Seq, error) {
	va, err := e.a.eval(c)
	if err != nil {
		return nil, err
	}
	ba, err := ebv(va)
	if err != nil {
		return nil, err
	}
	if !ba {
		return seqFalse, nil
	}
	vb, err := e.b.eval(c)
	if err != nil {
		return nil, err
	}
	bb, err := ebv(vb)
	return singletonBool(bb), err
}

func (e *cmpExpr) eval(c *context) (Seq, error) {
	va, err := e.a.eval(c)
	if err != nil {
		return nil, err
	}
	vb, err := e.b.eval(c)
	if err != nil {
		return nil, err
	}
	switch e.kind {
	case cmpNode:
		if len(va) == 0 || len(vb) == 0 {
			return Seq{}, nil
		}
		na, aok := va[0].(*dom.Node)
		nb, bok := vb[0].(*dom.Node)
		if len(va) > 1 || len(vb) > 1 || !aok || !bok {
			return nil, errf("XPTY0004", "operands of %q must be single nodes", e.op)
		}
		switch e.op {
		case "is":
			return singletonBool(na == nb), nil
		case "<<":
			return singletonBool(dom.Compare(na, nb) < 0), nil
		default:
			return singletonBool(dom.Compare(na, nb) > 0), nil
		}
	case cmpValue:
		if len(va) == 0 || len(vb) == 0 {
			return Seq{}, nil
		}
		if len(va) > 1 || len(vb) > 1 {
			return nil, errf("XPTY0004", "operands of %q must be single values", e.op)
		}
		cres, ok := compareAtomic(e.op, c.atomize(va[0]), c.atomize(vb[0]))
		if !ok {
			return seqFalse, nil
		}
		return singletonBool(applyCmp(e.op, cres)), nil
	}
	// General comparison: existential over both sequences.
	for _, ia := range va {
		for _, ib := range vb {
			cres, ok := compareAtomic(e.op, c.atomize(ia), c.atomize(ib))
			if ok && applyCmp(e.op, cres) {
				return seqTrue, nil
			}
		}
	}
	return seqFalse, nil
}

// ---- arithmetic ------------------------------------------------------------

func (e *arithExpr) eval(c *context) (Seq, error) {
	x, empty, err := evalNumber(c, e.a, "arithmetic")
	if err != nil || empty {
		return nil, err
	}
	y, empty, err := evalNumber(c, e.b, "arithmetic")
	if err != nil || empty {
		return nil, err
	}
	switch e.op {
	case "+":
		return singleton(x + y), nil
	case "-":
		return singleton(x - y), nil
	case "*":
		return singleton(x * y), nil
	case "div":
		return singleton(x / y), nil
	case "idiv":
		if y == 0 {
			return nil, errf("FOAR0001", "integer division by zero")
		}
		return singleton(math.Trunc(x / y)), nil
	case "mod":
		return singleton(math.Mod(x, y)), nil
	}
	return nil, errf("XPST0003", "unknown arithmetic operator %q", e.op)
}

func (e *unaryExpr) eval(c *context) (Seq, error) {
	x, empty, err := evalNumber(c, e.x, "unary minus")
	if err != nil || empty {
		return nil, err
	}
	return singleton(-x), nil
}

// ---- node-set operators ------------------------------------------------------

func toNodes(s Seq, op string) ([]*dom.Node, error) {
	out := make([]*dom.Node, 0, len(s))
	for _, it := range s {
		n, ok := it.(*dom.Node)
		if !ok {
			return nil, errf("XPTY0004", "operand of %q contains a non-node item", op)
		}
		out = append(out, n)
	}
	return out, nil
}

func nodesToSeq(ns []*dom.Node) Seq {
	out := make(Seq, len(ns))
	for i, n := range ns {
		out[i] = n
	}
	return out
}

func (e *unionExpr) eval(c *context) (Seq, error) {
	va, err := e.a.eval(c)
	if err != nil {
		return nil, err
	}
	vb, err := e.b.eval(c)
	if err != nil {
		return nil, err
	}
	na, err := toNodes(va, "union")
	if err != nil {
		return nil, err
	}
	nb, err := toNodes(vb, "union")
	if err != nil {
		return nil, err
	}
	return nodesToSeq(core.SortDoc(append(na, nb...))), nil
}

func (e *intersectExpr) eval(c *context) (Seq, error) {
	op := "intersect"
	if e.except {
		op = "except"
	}
	va, err := e.a.eval(c)
	if err != nil {
		return nil, err
	}
	vb, err := e.b.eval(c)
	if err != nil {
		return nil, err
	}
	na, err := toNodes(va, op)
	if err != nil {
		return nil, err
	}
	nb, err := toNodes(vb, op)
	if err != nil {
		return nil, err
	}
	inB := make(map[*dom.Node]bool, len(nb))
	for _, n := range nb {
		inB[n] = true
	}
	var out []*dom.Node
	for _, n := range na {
		if inB[n] != e.except {
			out = append(out, n)
		}
	}
	return nodesToSeq(core.SortDoc(out)), nil
}

// ---- control flow -------------------------------------------------------------

func (e *ifExpr) eval(c *context) (Seq, error) {
	v, err := e.cond.eval(c)
	if err != nil {
		return nil, err
	}
	b, err := ebv(v)
	if err != nil {
		return nil, err
	}
	if b {
		return e.then.eval(c)
	}
	return e.els.eval(c)
}

func (q *quantExpr) eval(c *context) (Seq, error) {
	b, err := q.walk(c, 0)
	if err != nil {
		return nil, err
	}
	return singletonBool(b), nil
}

func (q *quantExpr) walk(c *context, i int) (bool, error) {
	if i == len(q.names) {
		v, err := q.sat.eval(c)
		if err != nil {
			return false, err
		}
		return ebv(v)
	}
	src, err := q.srcs[i].eval(c)
	if err != nil {
		return false, err
	}
	for _, it := range src {
		b, err := q.walk(c.bind(q.names[i], singleton(it)), i+1)
		if err != nil {
			return false, err
		}
		if q.every && !b {
			return false, nil
		}
		if !q.every && b {
			return true, nil
		}
	}
	return q.every, nil
}

// ---- FLWOR ----------------------------------------------------------------------

func (f *flworExpr) eval(c *context) (Seq, error) {
	if len(f.order) == 0 {
		var out Seq
		err := f.run(c, 0, func(c2 *context) error {
			v, err := f.ret.eval(c2)
			if err != nil {
				return err
			}
			out = append(out, v...)
			return nil
		})
		return out, err
	}
	type tup struct {
		c    *context
		keys []Seq
	}
	var tups []tup
	err := f.run(c, 0, func(c2 *context) error {
		keys := make([]Seq, len(f.order))
		for i, o := range f.order {
			v, err := o.key.eval(c2)
			if err != nil {
				return err
			}
			keys[i] = c2.atomizeSeq(v)
		}
		tups = append(tups, tup{c: c2, keys: keys})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(tups, func(i, j int) bool {
		for k, o := range f.order {
			cres, ok := compareOrderKeys(o, tups[i].keys[k], tups[j].keys[k])
			if !ok || cres == 0 {
				continue
			}
			if o.descending {
				return cres > 0
			}
			return cres < 0
		}
		return false
	})
	var out Seq
	for _, t := range tups {
		v, err := f.ret.eval(t.c)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func compareOrderKeys(o orderSpec, a, b Seq) (int, bool) {
	ae, be := len(a) == 0, len(b) == 0
	if ae || be {
		if ae && be {
			return 0, true
		}
		least := -1
		if o.emptyGreatest {
			least = 1
		}
		if ae {
			return least, true
		}
		return -least, true
	}
	return compareForOrder(a[0], b[0])
}

func (f *flworExpr) run(c *context, idx int, emit func(*context) error) error {
	if idx == len(f.clauses) {
		return emit(c)
	}
	cl := f.clauses[idx]
	switch cl.kind {
	case clauseLet:
		v, err := cl.src.eval(c)
		if err != nil {
			return err
		}
		return f.run(c.bind(cl.name, v), idx+1, emit)
	case clauseWhere:
		v, err := cl.src.eval(c)
		if err != nil {
			return err
		}
		b, err := ebv(v)
		if err != nil {
			return err
		}
		if !b {
			return nil
		}
		return f.run(c, idx+1, emit)
	}
	// for clause
	v, err := cl.src.eval(c)
	if err != nil {
		return err
	}
	for i, it := range v {
		c2 := c.bind(cl.name, singleton(it))
		if cl.posName != "" {
			c2 = c2.bind(cl.posName, singleton(float64(i+1)))
		}
		if err := f.run(c2, idx+1, emit); err != nil {
			return err
		}
	}
	return nil
}

// ---- function calls ---------------------------------------------------------------

func (e *callExpr) eval(c *context) (Seq, error) {
	if len(e.args) == 0 { // position(), last(), true(), …: no arg slice
		return e.fn.fn(c, nil)
	}
	args := make([]Seq, len(e.args))
	for i, a := range e.args {
		v, err := a.eval(c)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return e.fn.fn(c, args)
}

// ---- filters and paths --------------------------------------------------------------

// constNumPred recognizes a predicate that is a bare numeric literal.
// Such a predicate selects at most one item by position, so the per-item
// evaluation loop can be short-circuited entirely — in particular an
// out-of-range [7] no longer evaluates anything per item.
func constNumPred(pr expr) (float64, bool) {
	if lit, ok := pr.(*literalExpr); ok {
		f, ok := lit.v.(float64)
		return f, ok
	}
	return 0, false
}

// selectByConstPos applies a constant numeric predicate: the item at
// position f when f is an integral in-range position, nothing otherwise
// (the "keep iff position == f" rule evaluated once).
func selectByConstPos(items Seq, f float64) Seq {
	idx := int(f)
	if float64(idx) != f || idx < 1 || idx > len(items) {
		return items[:0]
	}
	items[0] = items[idx-1]
	return items[:1]
}

// applyPredicates filters items by each predicate in turn; a predicate
// evaluating to a single number selects by position, anything else by
// effective boolean value. The input sequence is left untouched (the
// filtering itself is delegated to the in-place variant on a copy).
func applyPredicates(c *context, items Seq, preds []expr) (Seq, error) {
	if len(preds) == 0 {
		return items, nil
	}
	return applyPredicatesInPlace(c, append(Seq(nil), items...), preds)
}

// applyPredicatesInPlace is applyPredicates compacting into the items
// slice itself (callers own the storage), so the step pipeline filters
// without a per-context-node allocation.
func applyPredicatesInPlace(c *context, items Seq, preds []expr) (Seq, error) {
	for _, pr := range preds {
		if f, ok := constNumPred(pr); ok {
			items = selectByConstPos(items, f)
			continue
		}
		size := len(items)
		w := 0
		c2 := *c // one scratch context per predicate, mutated per item
		for i, it := range items {
			c2.item, c2.pos, c2.size = it, i+1, size
			v, err := pr.eval(&c2)
			if err != nil {
				return nil, err
			}
			keep := false
			if len(v) == 1 {
				if f, ok := v[0].(float64); ok {
					keep = float64(i+1) == f
				} else if keep, err = ebv(v); err != nil {
					return nil, err
				}
			} else if keep, err = ebv(v); err != nil {
				return nil, err
			}
			if keep {
				items[w] = it
				w++
			}
		}
		items = items[:w]
	}
	return items, nil
}

func (e *filterExpr) eval(c *context) (Seq, error) {
	v, err := e.base.eval(c)
	if err != nil {
		return nil, err
	}
	return applyPredicates(c, v, e.preds)
}

func sortDedupe(items Seq) Seq {
	ns := make([]*dom.Node, len(items))
	for i, it := range items {
		ns[i] = it.(*dom.Node)
	}
	return nodesToSeq(core.SortDoc(ns))
}

func allNodes(items Seq) bool {
	for _, it := range items {
		if _, ok := it.(*dom.Node); !ok {
			return false
		}
	}
	return true
}

func (p *pathExpr) eval(c *context) (Seq, error) {
	// Plan-driven evaluation: the physical operator list lowered for
	// this path (index scans, chain scans, pipeline steps). The generic
	// body below remains as the unplanned fallback and as the
	// debugNaiveSteps oracle route.
	if st := c.st; st.plan != nil && !debugNaiveSteps && p.id > 0 && p.id <= len(st.plan.paths) {
		if pp := st.plan.paths[p.id-1]; pp != nil {
			return pp.eval(c)
		}
	}
	var cur Seq
	switch {
	case p.start != nil:
		v, err := p.start.eval(c)
		if err != nil {
			return nil, err
		}
		cur = v
	case p.absolute:
		cur = Seq{c.st.rootFor(c.item)}
	default:
		if c.item == nil {
			return nil, errf("XPDY0002", "context item undefined at start of relative path")
		}
		cur = Seq{c.item}
	}
	for si, s := range p.steps {
		var err error
		switch {
		case s.prim != nil:
			cur, err = evalPrimStep(c, cur, s, si == len(p.steps)-1)
		case debugNaiveSteps:
			cur, err = evalStepRef(c, cur, s)
		default:
			cur, err = evalStep(c, cur, s)
		}
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// evalPrimStep evaluates a primary-expression step ("$x/string(.)") once
// per input item.
func evalPrimStep(c *context, cur Seq, s *step, last bool) (Seq, error) {
	var out Seq
	size := len(cur)
	c2 := *c // one scratch context, mutated per item
	for i, it := range cur {
		c2.item, c2.pos, c2.size = it, i+1, size
		v, err := s.prim.eval(&c2)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	if allNodes(out) {
		out = sortDedupe(out)
	} else if !last {
		return nil, errf("XPTY0019", "intermediate path step yields atomic values")
	}
	return out, nil
}

// evalStepRef is the reference axis-step evaluator: filter every
// candidate with matchTest, apply predicates, and restore document order
// with a full comparison sort after the step. It is the semantic oracle
// the pipeline (evalStep) is differential-tested against.
func evalStepRef(c *context, cur Seq, s *step) (Seq, error) {
	var out Seq
	for _, it := range cur {
		n, ok := it.(*dom.Node)
		if !ok {
			return nil, errf("XPTY0019", "%s:: step applied to an atomic value", s.axis)
		}
		nodes := c.st.docFor(n).Eval(s.axis, n)
		filtered := make(Seq, 0, len(nodes))
		for _, m := range nodes {
			match, err := matchTest(c, s.axis, m, s.test)
			if err != nil {
				return nil, err
			}
			if match {
				filtered = append(filtered, m)
			}
		}
		filtered, err := applyPredicates(c, filtered, s.preds)
		if err != nil {
			return nil, err
		}
		out = append(out, filtered...)
	}
	return sortDedupe(out), nil
}

// matchTest applies a node test (Definition 2, plus hierarchy-qualified
// name tests) to a candidate node.
func matchTest(c *context, ax core.Axis, n *dom.Node, t nodeTest) (bool, error) {
	principal := dom.Element
	if ax == core.AxisAttribute {
		principal = dom.Attribute
	}
	switch t.kind {
	case testName:
		if n.Kind != principal || n.Name != t.name {
			return false, nil
		}
		return hierOK(c, n, t.hiers)
	case testStar:
		if n.Kind != principal {
			return false, nil
		}
		return hierOK(c, n, t.hiers)
	case testText:
		if n.Kind != dom.Text {
			return false, nil
		}
		return hierOK(c, n, t.hiers)
	case testNode:
		if len(t.hiers) == 0 {
			return true, nil
		}
		return hierOK(c, n, t.hiers)
	case testComment:
		return n.Kind == dom.Comment, nil
	case testPI:
		return n.Kind == dom.ProcInst && (t.name == "" || n.Name == t.name), nil
	case testLeaf:
		if n.Kind != dom.Leaf {
			return false, nil
		}
		return hierOK(c, n, t.hiers)
	}
	return false, nil
}

// hierOK implements the hierarchy restriction of Definition 2: the node
// must belong to one of the named hierarchies. The shared root belongs to
// all hierarchies; a leaf belongs to every hierarchy covering it.
func hierOK(c *context, n *dom.Node, hiers []string) (bool, error) {
	if len(hiers) == 0 {
		return true, nil
	}
	d := c.st.docFor(n)
	for _, h := range hiers {
		if d.HierarchyByName(h) == nil {
			return false, errf("MHXQ0001", "unknown hierarchy %q in node test", h)
		}
	}
	if n == d.Root {
		return true, nil
	}
	if n.Kind == dom.Leaf {
		for _, p := range n.LeafParents {
			for _, h := range hiers {
				if p.Hier == h {
					return true, nil
				}
			}
		}
		return false, nil
	}
	for _, h := range hiers {
		if n.Hier == h {
			return true, nil
		}
	}
	return false, nil
}

// ---- constructors ---------------------------------------------------------------------

func (e *elemExpr) eval(c *context) (Seq, error) {
	el := dom.NewElement(e.name)
	for _, a := range e.attrs {
		var b strings.Builder
		for _, part := range a.parts {
			if rt, ok := part.(*rawTextExpr); ok {
				b.WriteString(rt.s)
				continue
			}
			v, err := part.eval(c)
			if err != nil {
				return nil, err
			}
			for i, it := range v {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(stringItem(c, it))
			}
		}
		el.SetAttr(a.name, b.String())
	}
	for _, ce := range e.content {
		if rt, ok := ce.(*rawTextExpr); ok {
			addTextTo(el, rt.s)
			continue
		}
		v, err := ce.eval(c)
		if err != nil {
			return nil, err
		}
		appendContent(el, v)
	}
	return singleton(el), nil
}

// addTextTo appends character data to el, merging with a trailing text
// node.
func addTextTo(el *dom.Node, s string) {
	if s == "" {
		return
	}
	if k := len(el.Children); k > 0 && el.Children[k-1].Kind == dom.Text {
		el.Children[k-1].Data += s
		return
	}
	el.AppendChild(dom.NewText(s))
}

// appendContent adds the items of one enclosed expression to a
// constructed element per the XQuery rules: attribute nodes become
// attributes, text and leaf nodes merge into character data, other nodes
// are deep-copied, and adjacent atomic values are joined with single
// spaces.
func appendContent(el *dom.Node, v Seq) {
	prevAtomic := false
	for _, it := range v {
		if n, ok := it.(*dom.Node); ok {
			switch n.Kind {
			case dom.Attribute:
				el.SetAttr(n.Name, n.Data)
			case dom.Text, dom.Leaf:
				addTextTo(el, n.Data)
			default:
				el.AppendChild(n.Clone())
			}
			prevAtomic = false
			continue
		}
		if prevAtomic {
			addTextTo(el, " ")
		}
		addTextTo(el, stringValue(it))
		prevAtomic = true
	}
}

// validXMLName reports whether s is a well-formed XML name.
func validXMLName(s string) bool {
	name, end, ok := scanXMLName(s, 0)
	return ok && end == len(s) && name == s
}

func (e *compCtorExpr) eval(c *context) (Seq, error) {
	name := e.name
	if e.nameExpr != nil {
		v, err := e.nameExpr.eval(c)
		if err != nil {
			return nil, err
		}
		v = c.atomizeSeq(v)
		if len(v) != 1 {
			return nil, errf("XPTY0004", "computed constructor name must be a single value")
		}
		name = stringValue(v[0])
	}
	if (e.kind == 'e' || e.kind == 'a') && !validXMLName(name) {
		return nil, errf("XQDY0074", "computed constructor: invalid name %q", name)
	}
	var content Seq
	if e.content != nil {
		v, err := e.content.eval(c)
		if err != nil {
			return nil, err
		}
		content = v
	}
	switch e.kind {
	case 'e':
		el := dom.NewElement(name)
		appendContent(el, content)
		return singleton(el), nil
	case 'a':
		return singleton(&dom.Node{Kind: dom.Attribute, Name: name, Data: joinAtomics(content)}), nil
	case 't':
		return singleton(dom.NewText(joinAtomics(content))), nil
	}
	return singleton(&dom.Node{Kind: dom.Comment, Data: joinAtomics(content)}), nil
}

// joinAtomics renders a sequence as the space-joined string values of
// its atomized items.
func joinAtomics(v Seq) string {
	var b strings.Builder
	for i, it := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(stringValue(atomize(it)))
	}
	return b.String()
}
