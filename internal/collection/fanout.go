package collection

import (
	"sync"

	"mhxquery/internal/core"
	"mhxquery/internal/xquery"
)

// Result is the outcome of evaluating one query against one member
// document during a fan-out.
type Result struct {
	// Name is the document's registry name.
	Name string
	// Doc is the document the evaluation ran against (the snapshot
	// member, even if the registry entry was concurrently replaced).
	Doc *core.Document
	// Seq is the query result; nil when Err is set.
	Seq xquery.Seq
	// Err is the per-document evaluation error, if any. One document
	// failing does not abort the fan-out.
	Err error
}

// QueryAll evaluates src once-compiled against every member document
// whose name matches pattern ("" = all), fanning evaluations out over a
// worker pool bounded by Options.Workers. Results are returned in
// document name order regardless of completion order. The whole
// fan-out — including doc()/collection() calls inside the query — sees
// one registry epoch: a concurrent Put neither blocks the fan-out nor
// joins it, in any of its rows.
func (c *Collection) QueryAll(src, pattern string) ([]Result, error) {
	q, err := c.Compile(src)
	if err != nil {
		return nil, err
	}
	v := c.view()
	names, docs, err := v.match(pattern)
	if err != nil {
		return nil, err
	}
	return runPool(c.workers, len(docs), func(i int) Result {
		return evalOne(q, v, names[i], docs[i])
	}), nil
}

// runPool runs jobs 0..n-1 on at most workers goroutines and returns
// the i-th job's result at index i.
func runPool(workers, n int, job func(int) Result) []Result {
	results := make([]Result, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range results {
			results[i] = job(i)
		}
		return results
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

func evalOne(q *xquery.Query, r xquery.Resolver, name string, d *core.Document) Result {
	seq, err := q.EvalWithResolver(d, nil, r)
	if err != nil {
		return Result{Name: name, Doc: d, Err: err}
	}
	return Result{Name: name, Doc: d, Seq: seq}
}
