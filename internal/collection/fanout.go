package collection

import (
	"context"
	"time"

	"mhxquery/internal/core"
	"mhxquery/internal/sched"
	"mhxquery/internal/xquery"
)

// Result is the outcome of evaluating one query against one member
// document during a fan-out.
type Result struct {
	// Name is the document's registry name.
	Name string
	// Doc is the document the evaluation ran against (the snapshot
	// member, even if the registry entry was concurrently replaced).
	Doc *core.Document
	// Seq is the query result; nil when Err is set.
	Seq xquery.Seq
	// Err is the per-document evaluation error, if any. One document
	// failing does not abort the fan-out.
	Err error
}

// QueryAll evaluates src once-compiled against every member document
// whose name matches pattern ("" = all), fanning evaluations out over a
// worker pool bounded by Options.Workers. Results are returned in
// document name order regardless of completion order. The whole
// fan-out — including doc()/collection() calls inside the query — sees
// one registry epoch: a concurrent Put neither blocks the fan-out nor
// joins it, in any of its rows.
func (c *Collection) QueryAll(src, pattern string) ([]Result, error) {
	return c.QueryAllLimit(context.Background(), src, pattern, 0)
}

// QueryAllLimit is QueryAll under a cancellation context and a global
// result budget: limit > 0 bounds the TOTAL number of items across the
// fan-out in document name order. Each worker evaluates its document
// through a cursor capped at limit items (an upper bound for any single
// row), so no document is drained past what the budget can possibly
// use; a final name-order pass truncates to the global budget, leaving
// later rows empty once it is spent.
func (c *Collection) QueryAllLimit(ctx context.Context, src, pattern string, limit int) ([]Result, error) {
	q, err := c.Compile(src)
	if err != nil {
		return nil, err
	}
	v := c.view()
	names, docs, err := v.match(pattern)
	if err != nil {
		return nil, err
	}
	results := c.runPool(len(docs), func(i int) Result {
		return c.evalOne(ctx, q, src, v, names[i], docs[i], limit)
	})
	if limit > 0 {
		remaining := limit
		for i := range results {
			if results[i].Err != nil {
				continue
			}
			if len(results[i].Seq) > remaining {
				results[i].Seq = results[i].Seq[:remaining]
			}
			remaining -= len(results[i].Seq)
		}
	}
	return results, nil
}

// runPool runs jobs 0..n-1 with at most c.workers participants on the
// process-wide scheduler (internal/sched) shared with intra-query
// morsel execution; fan-out jobs carry the higher priority class, so
// queued morsels never starve a collection fan-out. The whole job list
// is accounted up front, so mhx_fanout_queue_depth reads as "accepted
// but not yet started" and mhx_fanout_busy_workers as "currently
// evaluating" — whichever goroutine (caller or pool helper) runs the
// job, exactly one depth decrement and one busy increment/decrement
// pair fires per job.
func (c *Collection) runPool(n int, job func(int) Result) []Result {
	results := make([]Result, n)
	m := c.metrics
	m.queueDepth.Add(int64(n))
	sched.Default().ParallelFor(sched.Fanout, n, c.workers, func(i, slot int) {
		m.queueDepth.Dec()
		m.busyWorkers.Inc()
		results[i] = job(i)
		m.busyWorkers.Dec()
	})
	return results
}

// evalOne evaluates one fan-out row through the shared plan cache.
// With a limit the evaluation streams and stops at the cap instead of
// draining the document.
func (c *Collection) evalOne(ctx context.Context, q *xquery.Query, src string, v *view, name string, d *core.Document, limit int) Result {
	pl := c.planFor(src, q, d)
	start := time.Now()
	if limit <= 0 {
		seq, err := pl.EvalContext(ctx, d, nil, v)
		if err != nil {
			return Result{Name: name, Doc: d, Err: err}
		}
		c.metrics.observeQuery(start)
		return Result{Name: name, Doc: d, Seq: seq}
	}
	seq, err := pl.Stream(ctx, d, nil, v).Take(limit)
	if err != nil {
		return Result{Name: name, Doc: d, Err: err}
	}
	c.metrics.observeQuery(start)
	return Result{Name: name, Doc: d, Seq: seq}
}

// Event is one outcome of a collection stream: one result item of one
// document's evaluation, or a per-document error (which, like a
// QueryAll row error, does not abort the remaining documents).
type Event struct {
	// Name is the document's registry name.
	Name string
	// Doc is the document the item belongs to.
	Doc *core.Document
	// Item is the result item; nil when Err is set.
	Item xquery.Item
	// Err is the document's evaluation error, if any.
	Err error
}

// Rows is a lazy cursor over one query evaluated across member
// documents in name order: document k+1's evaluation does not start
// until document k's stream is exhausted, and abandoning the cursor
// (a satisfied limit, a disconnected client) stops all remaining work.
// Rows is single-use and not safe for concurrent use.
type Rows struct {
	ctx   context.Context
	coll  *Collection
	src   string
	q     *xquery.Query
	v     *view
	names []string
	docs  []*core.Document
	i     int
	cur   *xquery.Stream
}

// StreamAll evaluates src across every member document whose name
// matches pattern ("" = all) as a lazy name-order stream. Unlike
// QueryAll it trades fan-out parallelism for bounded memory: at most
// one document evaluates at a time and nothing is materialized beyond
// the item in flight.
func (c *Collection) StreamAll(ctx context.Context, src, pattern string) (*Rows, error) {
	q, err := c.Compile(src)
	if err != nil {
		return nil, err
	}
	v := c.view()
	names, docs, err := v.match(pattern)
	if err != nil {
		return nil, err
	}
	return &Rows{ctx: ctx, coll: c, src: src, q: q, v: v, names: names, docs: docs}, nil
}

// Next returns the next event, or ok=false when every document is
// exhausted.
func (r *Rows) Next() (Event, bool) {
	for {
		if r.cur == nil {
			if r.i >= len(r.docs) {
				return Event{}, false
			}
			d := r.docs[r.i]
			r.cur = r.coll.planFor(r.src, r.q, d).Stream(r.ctx, d, nil, r.v)
		}
		it, ok, err := r.cur.Next()
		name, d := r.names[r.i], r.docs[r.i]
		if err != nil {
			r.cur = nil
			r.i++
			return Event{Name: name, Doc: d, Err: err}, true
		}
		if !ok {
			r.cur = nil
			r.i++
			continue
		}
		return Event{Name: name, Doc: d, Item: it}, true
	}
}
