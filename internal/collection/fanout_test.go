package collection

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunPoolParallelism proves the pool really runs jobs concurrently:
// with 4 workers and 4 jobs that each block on a shared barrier until
// all 4 have started, the pool completes only if all jobs overlap in
// time. A sequential pool would deadlock (caught by the timeout).
func TestRunPoolParallelism(t *testing.T) {
	const n = 4
	var barrier sync.WaitGroup
	barrier.Add(n)
	done := make(chan []Result, 1)
	go func() {
		done <- New(Options{Workers: n}).runPool(n, func(i int) Result {
			barrier.Done()
			barrier.Wait() // blocks until every job has started
			return Result{Name: fmt.Sprint(i)}
		})
	}()
	select {
	case results := <-done:
		for i, r := range results {
			if r.Name != fmt.Sprint(i) {
				t.Fatalf("result %d = %q", i, r.Name)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not run jobs concurrently (barrier deadlock)")
	}
}

// TestRunPoolBounded proves the pool never exceeds its worker bound.
func TestRunPoolBounded(t *testing.T) {
	const workers, jobs = 3, 20
	var running, peak atomic.Int32
	New(Options{Workers: workers}).runPool(jobs, func(i int) Result {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		running.Add(-1)
		return Result{}
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", p, workers)
	}
}

// TestRunPoolOrdering: results come back indexed by job, not by
// completion order.
func TestRunPoolOrdering(t *testing.T) {
	results := New(Options{Workers: 4}).runPool(12, func(i int) Result {
		time.Sleep(time.Duration(12-i) * time.Millisecond) // later jobs finish first
		return Result{Name: fmt.Sprint(i)}
	})
	for i, r := range results {
		if r.Name != fmt.Sprint(i) {
			t.Fatalf("result %d = %q, want completion-order independence", i, r.Name)
		}
	}
}

// TestRunPoolSmall covers the degenerate sizes.
func TestRunPoolSmall(t *testing.T) {
	if got := New(Options{Workers: 4}).runPool(0, func(int) Result { panic("no jobs") }); len(got) != 0 {
		t.Fatalf("0 jobs: %v", got)
	}
	got := New(Options{Workers: 1}).runPool(3, func(i int) Result { return Result{Name: fmt.Sprint(i)} })
	if len(got) != 3 || got[2].Name != "2" {
		t.Fatalf("sequential path: %v", got)
	}
}

// TestStreamAllNameOrder checks the lazy collection stream: items come
// grouped by document in name order and abandoning the stream is safe.
func TestStreamAllNameOrder(t *testing.T) {
	c := New(Options{})
	for _, name := range []string{"bb", "aa", "cc"} {
		if _, err := c.Put(name, genDoc(t, 3, 8)); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := c.StreamAll(context.Background(), `/descendant::w`, "")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for {
		ev, ok := rows.Next()
		if !ok {
			break
		}
		if ev.Err != nil {
			t.Fatalf("%s: %v", ev.Name, ev.Err)
		}
		if len(names) == 0 || names[len(names)-1] != ev.Name {
			names = append(names, ev.Name)
		}
	}
	if fmt.Sprint(names) != "[aa bb cc]" {
		t.Fatalf("document order = %v", names)
	}

	// Per-document errors do not abort the remaining documents.
	rows, err = c.StreamAll(context.Background(), `/descendant::w('nope')`, "")
	if err != nil {
		t.Fatal(err)
	}
	errs, docs := 0, 0
	for {
		ev, ok := rows.Next()
		if !ok {
			break
		}
		docs++
		if ev.Err != nil {
			errs++
		}
	}
	if errs != 3 || docs != 3 {
		t.Fatalf("errs=%d docs=%d, want 3/3", errs, docs)
	}
}

// TestQueryAllLimit checks the global fan-out budget: name-order
// truncation, later rows left empty.
func TestQueryAllLimit(t *testing.T) {
	c := New(Options{})
	for _, name := range []string{"a", "b", "c"} {
		if _, err := c.Put(name, genDoc(t, 4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	all, err := c.QueryAll(`/descendant::w`, "")
	if err != nil {
		t.Fatal(err)
	}
	perDoc := len(all[0].Seq)
	if perDoc < 2 {
		t.Fatalf("fixture too small: %d words/doc", perDoc)
	}
	limit := perDoc + 1 // all of a, one item of b, nothing of c
	results, err := c.QueryAllLimit(context.Background(), `/descendant::w`, "", limit)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(results[0].Seq); got != perDoc {
		t.Fatalf("row a = %d items, want %d", got, perDoc)
	}
	if got := len(results[1].Seq); got != 1 {
		t.Fatalf("row b = %d items, want 1", got)
	}
	if got := len(results[2].Seq); got != 0 {
		t.Fatalf("row c = %d items, want 0", got)
	}
}
