package collection

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"mhxquery/internal/core"
	"mhxquery/internal/dom"
	"mhxquery/internal/wal"
)

// requireDocsEqual asserts got is field-identical to want: text,
// revision, bounds, leaf layout, every node of every hierarchy — and
// that got's incrementally maintained name indexes match a
// from-scratch rebuild (the differential oracle of the update engine).
func requireDocsEqual(t *testing.T, name string, got, want *core.Document) {
	t.Helper()
	// The comparison below reads node storage directly; a lazily opened
	// (slab-backed) document materializes first.
	got.Materialize()
	want.Materialize()
	if got.Rev != want.Rev {
		t.Fatalf("%s: rev %d, want %d", name, got.Rev, want.Rev)
	}
	if got.Text != want.Text {
		t.Fatalf("%s: text diverged:\n got %q\nwant %q", name, got.Text, want.Text)
	}
	if !reflect.DeepEqual(got.Bounds, want.Bounds) {
		t.Fatalf("%s: bounds diverged", name)
	}
	if len(got.Leaves) != len(want.Leaves) {
		t.Fatalf("%s: %d leaves, want %d", name, len(got.Leaves), len(want.Leaves))
	}
	for i := range got.Leaves {
		g, w := got.Leaves[i], want.Leaves[i]
		if g.Data != w.Data || g.Start != w.Start || g.End != w.End ||
			len(got.LeafParents(g)) != len(want.LeafParents(w)) {
			t.Fatalf("%s: leaf %d diverged", name, i)
		}
	}
	if len(got.Hiers) != len(want.Hiers) {
		t.Fatalf("%s: %d hierarchies, want %d", name, len(got.Hiers), len(want.Hiers))
	}
	for hi, h := range got.Hiers {
		wh := want.Hiers[hi]
		if h.Name != wh.Name || len(h.Nodes) != len(wh.Nodes) {
			t.Fatalf("%s: hierarchy %d: %q/%d nodes, want %q/%d",
				name, hi, h.Name, len(h.Nodes), wh.Name, len(wh.Nodes))
		}
		for i, n := range h.Nodes {
			m := wh.Nodes[i]
			if n.Kind != m.Kind || n.Name != m.Name || n.Start != m.Start || n.End != m.End ||
				n.Ord != m.Ord || n.Last != m.Last {
				t.Fatalf("%s: hierarchy %q node %d diverged: got %s %q [%d,%d), want %s %q [%d,%d)",
					name, h.Name, i, n.Kind, n.Name, n.Start, n.End, m.Kind, m.Name, m.Start, m.End)
			}
			if n.Kind == dom.Text && n.Data != m.Data {
				t.Fatalf("%s: hierarchy %q text %d: %q, want %q", name, h.Name, i, n.Data, m.Data)
			}
			if n.Kind == dom.Element {
				if len(n.Attrs) != len(m.Attrs) {
					t.Fatalf("%s: hierarchy %q node %d: %d attrs, want %d",
						name, h.Name, i, len(n.Attrs), len(m.Attrs))
				}
				for _, a := range m.Attrs {
					if v, ok := n.Attr(a.Name); !ok || v != a.Data {
						t.Fatalf("%s: hierarchy %q node %d: attr %s lost", name, h.Name, i, a.Name)
					}
				}
			}
		}
		if gotRuns, wantRuns := h.IndexRuns(), h.RebuildIndexRuns(); !reflect.DeepEqual(gotRuns, wantRuns) {
			t.Fatalf("%s: hierarchy %q: recovered index diverged from rebuild", name, h.Name)
		}
	}
}

// TestCrashAtEverySyscall is the crash-simulation suite of the durable
// write path: for every syscall boundary k reached during an update
// burst, and for both fault modes (clean error, torn short write), it
// injects a failure at operation k, powers the filesystem off, crashes
// with a varying amount of surviving unsynced tail, reopens, and
// asserts (a) recovery itself never fails, (b) no acknowledged commit
// is lost, (c) at most the one in-flight unacknowledged commit may
// additionally survive, and (d) every recovered document is field- and
// index-identical to the corresponding pre-crash in-memory version.
func TestCrashAtEverySyscall(t *testing.T) {
	const (
		nDocs = 2
		burst = 16
		words = 25
	)
	for _, short := range []bool{false, true} {
		mode := "error"
		if short {
			mode = "short-write"
		}
		// Shadow chain: the same updates applied through a fault-free
		// memory-only collection give the expected version at every
		// revision. Apply is a pure function of (document, source), so
		// the chains are directly comparable.
		shadow := New(Options{})
		versions := map[string][]*core.Document{}
		for i := 0; i < nDocs; i++ {
			name := fmt.Sprintf("doc%02d", i)
			d := genDoc(t, uint64(i+1), words)
			if _, err := shadow.Put(name, d); err != nil {
				t.Fatal(err)
			}
			versions[name] = []*core.Document{d}
		}
		for i := 0; i < burst; i++ {
			name := fmt.Sprintf("doc%02d", i%nDocs)
			nd, _, err := shadow.Update(name, fmt.Sprintf(`rename node (//w)[1] as "u%d"`, i))
			if err != nil {
				t.Fatalf("shadow update %d: %v", i, err)
			}
			versions[name] = append(versions[name], nd)
		}

		for k := 1; ; k++ {
			fs := wal.NewCrashFS()
			opts := Options{
				Workers: 1, FS: fs,
				SnapshotEvery: 3, // snapshot + compact often, to put those paths in the blast radius
			}
			c, err := Open(t.TempDir(), opts)
			if err != nil {
				t.Fatalf("[%s k=%d] open: %v", mode, k, err)
			}
			dir := c.Dir()
			for i := 0; i < nDocs; i++ {
				if _, err := c.Put(fmt.Sprintf("doc%02d", i), versions[fmt.Sprintf("doc%02d", i)][0]); err != nil {
					t.Fatalf("[%s k=%d] put: %v", mode, k, err)
				}
			}

			fs.FailAt(k, short)
			acked := map[string]int{}
			attempted := map[string]int{}
			for i := 0; i < burst; i++ {
				name := fmt.Sprintf("doc%02d", i%nDocs)
				attempted[name]++
				if _, _, err := c.Update(name, fmt.Sprintf(`rename node (//w)[1] as "u%d"`, i)); err != nil {
					break
				}
				acked[name]++
				attempted[name] = acked[name]
			}
			opsUsed := fs.OpCount()
			fs.Kill()
			c.Close() // best effort on a dead filesystem

			fs.Crash(k % 3) // vary the surviving torn-tail bytes
			c2, err := Open(dir, Options{Workers: 1, FS: fs, SnapshotEvery: 3})
			if err != nil {
				t.Fatalf("[%s k=%d] recovery failed: %v", mode, k, err)
			}
			for i := 0; i < nDocs; i++ {
				name := fmt.Sprintf("doc%02d", i)
				d, ok := c2.Get(name)
				if !ok {
					t.Fatalf("[%s k=%d] %s lost", mode, k, name)
				}
				rev := int(d.Rev)
				if rev < acked[name] || rev > attempted[name] {
					t.Fatalf("[%s k=%d] %s recovered at rev %d, acked %d, attempted %d (stats %+v)",
						mode, k, name, rev, acked[name], attempted[name], c2.Recovery())
				}
				requireDocsEqual(t, fmt.Sprintf("[%s k=%d] %s", mode, k, name), d, versions[name][rev])
			}
			c2.Close()

			if opsUsed < k {
				// The whole burst (and everything after it) completed
				// without reaching operation k: every syscall boundary
				// has been exercised.
				break
			}
			if k > 2000 {
				t.Fatalf("[%s] failpoint sweep did not terminate", mode)
			}
		}
	}
}

// TestConcurrentDurableUpdates races committers against the real
// filesystem: group commit must batch multiple acknowledged updates
// into fewer fsyncs, keep a totally ordered log, and lose nothing
// across reopen. Run with -race.
func TestConcurrentDurableUpdates(t *testing.T) {
	const (
		goroutines = 8
		perG       = 4
	)
	dir := t.TempDir()
	c, err := Open(dir, Options{FlushWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	last := make([]*core.Document, goroutines)
	for g := 0; g < goroutines; g++ {
		if _, err := c.Put(fmt.Sprintf("doc%02d", g), genDoc(t, uint64(g+1), 40)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("doc%02d", g)
			for i := 0; i < perG; i++ {
				nd, _, err := c.Update(name, fmt.Sprintf(`rename node (//w)[1] as "g%d_%d"`, g, i))
				if err != nil {
					errs[g] = err
					return
				}
				last[g] = nd
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	st := c.WALStats()
	if st.Appends != goroutines*perG {
		t.Fatalf("appends = %d, want %d", st.Appends, goroutines*perG)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("syncs = %d for %d acks: group commit did not batch", st.Syncs, st.Appends)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The log on disk is totally ordered (Scan rejects non-increasing
	// sequence numbers) and complete.
	recs, torn, err := wal.Load(wal.OS, filepath.Join(dir, "wal.log"))
	if err != nil || torn != 0 {
		t.Fatalf("log after close: %v, torn %d", err, torn)
	}
	if len(recs) != goroutines*perG {
		t.Fatalf("log holds %d records, want %d", len(recs), goroutines*perG)
	}

	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if got := c2.Recovery().Replayed; got != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		name := fmt.Sprintf("doc%02d", g)
		d, ok := c2.Get(name)
		if !ok {
			t.Fatalf("%s lost", name)
		}
		requireDocsEqual(t, name, d, last[g])
	}
}

// TestDeleteDurability exercises the tombstone path: a deletion whose
// image removal is interrupted must stay deleted after recovery, and a
// document re-created after a deletion must survive it.
func TestDeleteDurability(t *testing.T) {
	fs := wal.NewCrashFS()
	opts := Options{Workers: 1, FS: fs, SnapshotEvery: -1} // no background snapshots: op counts stay deterministic
	c, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := c.Dir()
	d0 := genDoc(t, 1, 30)
	for i, name := range []string{"gone", "kept", "reborn"} {
		if _, err := c.Put(name, genDoc(t, uint64(i+1), 30)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Update("gone", `rename node (//w)[1] as "zz"`); err != nil {
		t.Fatal(err)
	}
	// Delete "gone", failing the image removal (op 1 = log write, op 2 =
	// log sync, op 3 = remove): the tombstone is durable, the stale
	// image survives — recovery must honor the tombstone.
	fs.FailAt(3, false)
	if err := c.Delete("gone"); err == nil {
		t.Fatal("Delete succeeded despite injected remove failure")
	}
	// Delete and re-create "reborn": the later image outranks the
	// tombstone.
	if err := c.Delete("reborn"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("reborn", d0); err != nil {
		t.Fatal(err)
	}
	fs.Kill()
	c.Close()
	fs.Crash(0)

	c2, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer c2.Close()
	if _, ok := c2.Get("gone"); ok {
		t.Fatal("tombstoned document resurrected")
	}
	if _, ok := c2.Get("kept"); !ok {
		t.Fatal("unrelated document lost")
	}
	d, ok := c2.Get("reborn")
	if !ok {
		t.Fatal("re-created document lost")
	}
	requireDocsEqual(t, "reborn", d, d0)
	if c2.Recovery().Tombstones != 2 {
		t.Fatalf("recovery stats %+v: want 2 tombstones", c2.Recovery())
	}
	// Recovery's checkpoint removed the stale image.
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "gone"+imageExt {
			t.Fatal("stale image of tombstoned document survived recovery")
		}
	}
}
