package collection

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestMetricsCatalog checks that ordinary collection traffic populates
// every metric family the README catalogs, and that the Prometheus
// encoding of the registry carries them.
func TestMetricsCatalog(t *testing.T) {
	c := New(Options{Workers: 4})
	for i := 0; i < 4; i++ {
		if _, err := c.Put(fmt.Sprintf("doc%d", i), genDoc(t, uint64(i+1), 40)); err != nil {
			t.Fatal(err)
		}
	}
	// Same query twice: first compile+plan miss, then hits.
	for i := 0; i < 2; i++ {
		if _, err := c.QueryAll(`count(//w)`, ""); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Update("doc0", `delete node (//w)[1]`); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.ExplainAnalyzeDoc(context.Background(), "doc1", `//w`); err != nil {
		t.Fatal(err)
	}

	snap := c.Metrics().Snapshot()
	if snap["mhx_query_seconds_count"] < 9 { // 2 fan-outs x 4 docs + 1 analyze
		t.Errorf("query histogram count = %v, want >= 9", snap["mhx_query_seconds_count"])
	}
	if snap["mhx_update_commit_seconds_count"] != 1 {
		t.Errorf("update histogram count = %v, want 1", snap["mhx_update_commit_seconds_count"])
	}
	if snap[`mhx_cache_requests_total{cache="compile",result="hit"}`] < 1 ||
		snap[`mhx_cache_requests_total{cache="compile",result="miss"}`] < 1 {
		t.Errorf("compile cache counters not populated: %v", snap)
	}
	if snap[`mhx_cache_requests_total{cache="plan",result="hit"}`] < 1 ||
		snap[`mhx_cache_requests_total{cache="plan",result="miss"}`] < 1 {
		t.Errorf("plan cache counters not populated: %v", snap)
	}
	if snap["mhx_documents"] != 4 {
		t.Errorf("mhx_documents = %v, want 4", snap["mhx_documents"])
	}
	if snap["mhx_nameindex_builds_total"] < 1 {
		t.Errorf("name-index build counter = %v, want >= 1", snap["mhx_nameindex_builds_total"])
	}
	// Gauges return to zero once the fan-out completes.
	if snap["mhx_fanout_queue_depth"] != 0 || snap["mhx_fanout_busy_workers"] != 0 {
		t.Errorf("fan-out gauges nonzero at rest: %v", snap)
	}

	var sb strings.Builder
	if err := c.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, family := range []string{
		"mhx_query_seconds", "mhx_update_commit_seconds", "mhx_cache_requests_total",
		"mhx_fanout_queue_depth", "mhx_fanout_busy_workers", "mhx_documents",
		"mhx_nameindex_builds_total", "mhx_nameindex_build_seconds_total",
		"mhx_index_maintenance_total",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("scrape missing family %s", family)
		}
	}
	// Cache stats agree between the legacy accessors and the registry.
	cs := c.CacheStats()
	if float64(cs.Hits) != snap[`mhx_cache_requests_total{cache="compile",result="hit"}`] {
		t.Errorf("compile hits diverge: CacheStats %d vs registry %v", cs.Hits,
			snap[`mhx_cache_requests_total{cache="compile",result="hit"}`])
	}
	ps := c.PlanCacheStats()
	if float64(ps.Hits) != snap[`mhx_cache_requests_total{cache="plan",result="hit"}`] {
		t.Errorf("plan hits diverge: PlanCacheStats %d vs registry %v", ps.Hits,
			snap[`mhx_cache_requests_total{cache="plan",result="hit"}`])
	}
}

// TestMetricsRace hammers the registry from concurrent fan-outs,
// updates and scrapes; under -race this is the proof the observability
// layer adds no data races to the query paths.
func TestMetricsRace(t *testing.T) {
	c := New(Options{Workers: 4})
	for i := 0; i < 3; i++ {
		if _, err := c.Put(fmt.Sprintf("doc%d", i), genDoc(t, uint64(i+7), 24)); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 8
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := c.QueryAll(fmt.Sprintf(`count(//w[%d >= 0])`, g), ""); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, _, err := c.Update("doc0", `delete node (//w)[1]`); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*4; i++ {
			var sb strings.Builder
			if err := c.Metrics().WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	snap := c.Metrics().Snapshot()
	if got := snap["mhx_query_seconds_count"]; got < 3*rounds*3 {
		t.Errorf("query count = %v, want >= %d", got, 3*rounds*3)
	}
	if got := snap["mhx_update_commit_seconds_count"]; got != rounds {
		t.Errorf("update count = %v, want %d", got, rounds)
	}
}
