package collection

import (
	"sync/atomic"
	"time"

	"mhxquery/internal/core"
	"mhxquery/internal/obs"
	"mhxquery/internal/sched"
	"mhxquery/internal/xquery"
)

// collMetrics holds the collection's metric handles, looked up once at
// construction so the hot paths (per-document evaluation, cache gets,
// fan-out scheduling) update atomics without touching the registry map.
//
// The catalog:
//
//	mhx_query_seconds                 histogram  per-document query evaluation latency
//	mhx_update_commit_seconds         histogram  update apply+persist+publish latency
//	mhx_cache_requests_total          counter    {cache="compile"|"plan", result="hit"|"miss"}
//	mhx_fanout_queue_depth            gauge      fan-out jobs accepted but not yet started
//	mhx_fanout_busy_workers           gauge      fan-out workers currently evaluating
//	mhx_documents                     gauge      member documents in the registry
//	mhx_nameindex_builds_total        counter    from-scratch name-index builds (process-wide)
//	mhx_nameindex_build_seconds_total counter    wall time spent in those builds (process-wide)
//	mhx_index_maintenance_total       counter    {outcome="patched"|"lazy_rebuild"} update index outcomes (process-wide)
//	mhx_wal_fsync_seconds             histogram  WAL group-commit write+fsync latency
//	mhx_wal_commit_batch_records      histogram  commits covered by one fsync batch
//	mhx_wal_appends_total             counter    records acknowledged by the log
//	mhx_wal_bytes_total               counter    framed bytes written to the log
//	mhx_wal_syncs_total               counter    fsync batches
//	mhx_wal_resets_total              counter    log compactions (snapshot-covered truncations)
//	mhx_snapshots_total               counter    background document snapshots written
//	mhx_snapshot_errors_total         counter    failed background snapshots
//	mhx_recovery_replayed_total       counter    log records re-applied by the last Open
//	mhx_recovery_torn_bytes           gauge      torn tail truncated by the last Open
//	mhx_query_morsels_total           counter    morsels dispatched by parallel intra-query execution (process-wide)
//	mhx_query_parallel_queries_total  counter    evaluations that engaged intra-query parallelism (process-wide)
//	mhx_query_morsel_seconds          histogram  morsel execution latency (process-wide)
//	mhx_pool_busy_workers             gauge      shared-scheduler workers currently running a job
//	mhx_pool_queued_jobs              gauge      {class="fanout"|"morsel"} tickets waiting in the shared scheduler
//
// The name-index families sample process-wide core counters (builds
// happen lazily inside Hierarchy methods where no registry is in
// scope), so with several Collections in one process each reports the
// same process totals; the morsel and pool families likewise sample
// the process-wide query engine and scheduler.
type collMetrics struct {
	reg           *obs.Registry
	querySeconds  *obs.Histogram
	updateSeconds *obs.Histogram
	queueDepth    *obs.Gauge
	busyWorkers   *obs.Gauge

	fsyncSeconds *obs.Histogram
	commitBatch  *obs.Histogram
	snapshots    atomic.Uint64
	snapshotErrs atomic.Uint64
	logResets    atomic.Uint64
}

func newCollMetrics(c *Collection) *collMetrics {
	reg := obs.NewRegistry()
	m := &collMetrics{
		reg: reg,
		querySeconds: reg.Histogram("mhx_query_seconds",
			"Per-document query evaluation latency in seconds.", obs.LatencyBuckets),
		updateSeconds: reg.Histogram("mhx_update_commit_seconds",
			"Update commit latency in seconds: apply, persist, publish.", obs.LatencyBuckets),
		queueDepth: reg.Gauge("mhx_fanout_queue_depth",
			"Fan-out jobs accepted but not yet picked up by a worker."),
		busyWorkers: reg.Gauge("mhx_fanout_busy_workers",
			"Fan-out workers currently evaluating a document."),
	}
	const cacheHelp = "Cache lookups by cache (compile = source->Query, plan = source+signature->Plan) and result."
	if c.cache != nil {
		c.cache.hitC = reg.Counter("mhx_cache_requests_total", cacheHelp,
			obs.L("cache", "compile"), obs.L("result", "hit"))
		c.cache.missC = reg.Counter("mhx_cache_requests_total", cacheHelp,
			obs.L("cache", "compile"), obs.L("result", "miss"))
	}
	if c.plans != nil {
		c.plans.hitC = reg.Counter("mhx_cache_requests_total", cacheHelp,
			obs.L("cache", "plan"), obs.L("result", "hit"))
		c.plans.missC = reg.Counter("mhx_cache_requests_total", cacheHelp,
			obs.L("cache", "plan"), obs.L("result", "miss"))
	}
	reg.GaugeFunc("mhx_documents",
		"Member documents in the registry.",
		func() float64 { return float64(c.Len()) })
	reg.CounterFunc("mhx_nameindex_builds_total",
		"From-scratch structural name-index builds (process-wide).",
		func() float64 { return float64(core.GlobalIndexStats().Builds) })
	reg.CounterFunc("mhx_nameindex_build_seconds_total",
		"Wall time spent building structural name indexes, in seconds (process-wide).",
		func() float64 { return float64(core.GlobalIndexStats().BuildNanos) / 1e9 })
	m.fsyncSeconds = reg.Histogram("mhx_wal_fsync_seconds",
		"WAL group-commit write+fsync latency in seconds.", obs.LatencyBuckets)
	m.commitBatch = reg.Histogram("mhx_wal_commit_batch_records",
		"Commits covered by one WAL fsync batch.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	reg.CounterFunc("mhx_wal_appends_total",
		"Update/tombstone records acknowledged by the write-ahead log.",
		func() float64 { return float64(c.WALStats().Appends) })
	reg.CounterFunc("mhx_wal_bytes_total",
		"Framed bytes written to the write-ahead log.",
		func() float64 { return float64(c.WALStats().Bytes) })
	reg.CounterFunc("mhx_wal_syncs_total",
		"Write-ahead log fsync batches.",
		func() float64 { return float64(c.WALStats().Syncs) })
	reg.CounterFunc("mhx_wal_resets_total",
		"Write-ahead log compactions: truncations after snapshots covered every record.",
		func() float64 { return float64(m.logResets.Load()) })
	reg.CounterFunc("mhx_snapshots_total",
		"Background document snapshots written.",
		func() float64 { return float64(m.snapshots.Load()) })
	reg.CounterFunc("mhx_snapshot_errors_total",
		"Background document snapshots that failed.",
		func() float64 { return float64(m.snapshotErrs.Load()) })
	reg.CounterFunc("mhx_recovery_replayed_total",
		"Log records re-applied by the last recovery (Open).",
		func() float64 { return float64(c.recovery.Replayed) })
	reg.GaugeFunc("mhx_recovery_torn_bytes",
		"Torn log tail truncated (and tolerated) by the last recovery.",
		func() float64 { return float64(c.recovery.TornTailBytes) })
	reg.CounterFunc("mhx_query_morsels_total",
		"Morsels dispatched by parallel intra-query execution (process-wide).",
		func() float64 { m, _ := xquery.ParallelStats(); return float64(m) })
	reg.CounterFunc("mhx_query_parallel_queries_total",
		"Query evaluations that engaged intra-query parallelism at least once (process-wide).",
		func() float64 { _, q := xquery.ParallelStats(); return float64(q) })
	reg.RegisterHistogram("mhx_query_morsel_seconds",
		"Morsel execution latency in seconds (process-wide).", xquery.MorselSeconds())
	reg.GaugeFunc("mhx_pool_busy_workers",
		"Shared-scheduler workers currently running a job (fan-out or morsel).",
		func() float64 { return float64(sched.Default().Busy()) })
	const queuedHelp = "Job tickets waiting in the shared scheduler, by priority class."
	reg.GaugeFunc("mhx_pool_queued_jobs", queuedHelp,
		func() float64 { return float64(sched.Default().Queued(sched.Fanout)) },
		obs.L("class", "fanout"))
	reg.GaugeFunc("mhx_pool_queued_jobs", queuedHelp,
		func() float64 { return float64(sched.Default().Queued(sched.Morsel)) },
		obs.L("class", "morsel"))
	const maintHelp = "Name-index outcomes of document updates: patched incrementally or discarded for a lazy rebuild (process-wide)."
	reg.CounterFunc("mhx_index_maintenance_total", maintHelp,
		func() float64 { return float64(core.GlobalIndexStats().Patched) },
		obs.L("outcome", "patched"))
	reg.CounterFunc("mhx_index_maintenance_total", maintHelp,
		func() float64 { return float64(core.GlobalIndexStats().LazyReset) },
		obs.L("outcome", "lazy_rebuild"))
	return m
}

// observeQuery records one per-document evaluation latency.
func (m *collMetrics) observeQuery(start time.Time) {
	m.querySeconds.Observe(time.Since(start).Seconds())
}

// observeUpdate records one update commit latency.
func (m *collMetrics) observeUpdate(start time.Time) {
	m.updateSeconds.Observe(time.Since(start).Seconds())
}

// ObserveCommit implements wal.Observer: one fsync batch of the log
// writer.
func (m *collMetrics) ObserveCommit(records, bytes int, latency time.Duration) {
	m.fsyncSeconds.Observe(latency.Seconds())
	m.commitBatch.Observe(float64(records))
}

// Metrics returns the collection's metrics registry, for scraping
// (obs.Registry.WritePrometheus) or programmatic inspection
// (obs.Registry.Snapshot).
func (c *Collection) Metrics() *obs.Registry { return c.metrics.reg }
