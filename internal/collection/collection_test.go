package collection

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/xmlparse"
	"mhxquery/internal/xquery"
)

// genDoc builds a deterministic synthetic document.
func genDoc(t testing.TB, seed uint64, words int) *core.Document {
	t.Helper()
	d, err := corpus.Generate(corpus.Params{Seed: seed, Words: words}).Document()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fill populates c with n generated documents named doc00, doc01, ...
func fill(t testing.TB, c *Collection, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := c.Put(fmt.Sprintf("doc%02d", i), genDoc(t, uint64(i+1), 60)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegistryBasics(t *testing.T) {
	c := New(Options{})
	fill(t, c, 3)
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	want := []string{"doc00", "doc01", "doc02"}
	if got := c.Names(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	if _, ok := c.Get("doc01"); !ok {
		t.Fatal("Get(doc01) not found")
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get(nope) unexpectedly found")
	}
	// Replacement keeps the name unique and is reported.
	replaced, err := c.Put("doc01", genDoc(t, 99, 40))
	if err != nil {
		t.Fatal(err)
	}
	if !replaced {
		t.Fatal("Put over an existing name did not report replaced")
	}
	if replaced, err := c.Put("fresh", genDoc(t, 98, 40)); err != nil || replaced {
		t.Fatalf("Put(fresh): replaced=%v err=%v", replaced, err)
	}
	if err := c.Delete("fresh"); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("Len after replace = %d, want 3", got)
	}
	if err := c.Delete("doc01"); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len after delete = %d, want 2", got)
	}
}

func TestPutRejectsBadNames(t *testing.T) {
	c := New(Options{})
	d := genDoc(t, 1, 20)
	for _, name := range []string{"", ".", "..", "a/b", "../escape", ".hidden", "sp ace", "a\x00b"} {
		if _, err := c.Put(name, d); err == nil {
			t.Errorf("Put(%q) succeeded, want error", name)
		}
	}
	for _, name := range []string{"a", "doc-1", "doc_1", "Doc.v2"} {
		if _, err := c.Put(name, d); err != nil {
			t.Errorf("Put(%q): %v", name, err)
		}
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, 3)
	// Images land in dir immediately (write-through).
	for _, name := range c.Names() {
		if _, err := os.Stat(filepath.Join(dir, name+imageExt)); err != nil {
			t.Fatalf("image for %s: %v", name, err)
		}
	}
	if err := c.Delete("doc02"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "doc02"+imageExt)); !os.IsNotExist(err) {
		t.Fatalf("image for doc02 survived delete: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("late", genDoc(t, 7, 20)); err == nil {
		t.Fatal("Put after Close succeeded")
	}

	// A fresh Open sees the persisted corpus.
	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(c2.Names(), ","), "doc00,doc01"; got != want {
		t.Fatalf("reopened Names = %q, want %q", got, want)
	}
	// And the reloaded documents answer queries identically.
	for _, name := range c2.Names() {
		a, err := c.Query(name, `count(/descendant::w)`)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c2.Query(name, `count(/descendant::w)`)
		if err != nil {
			t.Fatal(err)
		}
		if xquery.Serialize(a) != xquery.Serialize(b) {
			t.Fatalf("%s: reloaded answer %q != original %q", name, xquery.Serialize(b), xquery.Serialize(a))
		}
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not an image"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.mhxg"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A stale temp file (crash mid-Put) is swept on Open.
	stale := filepath.Join(dir, "doc00.12345.tmp")
	if err := os.WriteFile(stale, []byte("torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived Open: %v", err)
	}
}

func TestNotFoundErrors(t *testing.T) {
	c := New(Options{})
	fill(t, c, 1)
	if _, _, err := c.QueryDoc("nope", `1`); !errors.Is(err, ErrNotFound) {
		t.Fatalf("QueryDoc(nope) = %v, want ErrNotFound", err)
	}
	if _, err := c.ResolveDoc("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ResolveDoc(nope) = %v, want ErrNotFound", err)
	}
	if _, _, err := c.QueryDoc("doc00", `1`); err != nil {
		t.Fatalf("QueryDoc(doc00) = %v", err)
	}
}

func TestQueryAllFanOut(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := New(Options{Workers: workers})
			fill(t, c, 6)
			results, err := c.QueryAll(`count(/descendant::w)`, "")
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 6 {
				t.Fatalf("got %d results, want 6", len(results))
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Name, r.Err)
				}
				if want := fmt.Sprintf("doc%02d", i); r.Name != want {
					t.Fatalf("result %d is %q, want %q (name order)", i, r.Name, want)
				}
				if got := xquery.Serialize(r.Seq); got != "60" {
					t.Fatalf("%s: got %q, want 60 words", r.Name, got)
				}
			}
		})
	}
}

func TestQueryAllGlob(t *testing.T) {
	c := New(Options{})
	fill(t, c, 4)
	if _, err := c.Put("other", genDoc(t, 50, 30)); err != nil {
		t.Fatal(err)
	}
	results, err := c.QueryAll(`1`, "doc*")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("glob doc*: %d results, want 4", len(results))
	}
	if _, err := c.QueryAll(`1`, "["); err == nil {
		t.Fatal("bad glob accepted")
	}
	results, err = c.QueryAll(`1`, "zzz*")
	if err != nil || len(results) != 0 {
		t.Fatalf("non-matching glob: results=%v err=%v", results, err)
	}
}

func TestQueryAllPerDocumentErrors(t *testing.T) {
	c := New(Options{})
	fill(t, c, 2)
	// structure/physical exist in generated docs; querying a hierarchy
	// test that names a missing hierarchy fails per-document.
	results, err := c.QueryAll(`count(/descendant::node('nosuch'))`, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Fatalf("%s: expected per-document error", r.Name)
		}
	}
	// Compile errors surface as the fan-out error, before any evaluation.
	if _, err := c.QueryAll(`for $x in`, ""); err == nil {
		t.Fatal("compile error not surfaced")
	}
}

func TestDocAndCollectionInsideQueries(t *testing.T) {
	c := New(Options{})
	fill(t, c, 3)
	// doc() reaches a sibling document from a single-doc query.
	got, err := c.Query("doc00", `count(doc("doc01")/descendant::w)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.Serialize(got) != "60" {
		t.Fatalf("doc() = %q, want 60", xquery.Serialize(got))
	}
	// collection() ranges over the whole registry.
	got, err = c.Query("doc00", `sum(for $d in collection() return count($d/descendant::w))`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.Serialize(got) != "180" {
		t.Fatalf("collection() sum = %q, want 180", xquery.Serialize(got))
	}
}

func TestCompileCache(t *testing.T) {
	c := New(Options{CacheSize: 2})
	q1, err := c.Compile(`1 + 1`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.Compile(`1 + 1`)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("cache did not reuse the compiled query")
	}
	st := c.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	// Eviction: capacity 2, third distinct query evicts the LRU.
	if _, err := c.Compile(`2 + 2`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(`3 + 3`); err != nil {
		t.Fatal(err)
	}
	st = c.CacheStats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want capacity 2", st.Entries)
	}
	q4, err := c.Compile(`1 + 1`) // evicted; recompiles
	if err != nil {
		t.Fatal(err)
	}
	if q4 == q1 {
		t.Fatal("evicted query unexpectedly reused")
	}
	// Compile errors are not cached.
	if _, err := c.Compile(`for $x in`); err == nil {
		t.Fatal("compile error not surfaced")
	}
	// Disabled cache still compiles.
	c2 := New(Options{CacheSize: -1})
	if _, err := c2.Compile(`1`); err != nil {
		t.Fatal(err)
	}
	if st := c2.CacheStats(); st.Capacity != 0 {
		t.Fatalf("disabled cache stats = %+v", st)
	}
}

// otherLayoutDoc builds a single-hierarchy document whose hierarchy
// names differ from the generated corpus layout.
func otherLayoutDoc(t testing.TB) *core.Document {
	t.Helper()
	root, err := xmlparse.Parse(`<r><col>q</col></r>`, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Build([]core.NamedTree{{Name: "cols", Root: root}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPlanCacheKeyedBySignature(t *testing.T) {
	c := New(Options{CacheSize: 4})
	// Two documents with the same hierarchy layout (the generated
	// corpus always registers the same hierarchy names).
	if _, err := c.Put("a", genDoc(t, 1, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("b", genDoc(t, 2, 30)); err != nil {
		t.Fatal(err)
	}

	const src = `count(/descendant::w)`
	for _, name := range []string{"a", "b", "a", "b"} {
		if _, err := c.Query(name, src); err != nil {
			t.Fatal(err)
		}
	}
	st := c.PlanCacheStats()
	// One layout signature shared by both documents: one miss (the
	// first evaluation plans), three hits.
	if st.Misses != 1 || st.Hits != 3 || st.Entries != 1 {
		t.Fatalf("plan cache stats = %+v, want 1 miss / 3 hits / 1 entry", st)
	}

	// ExplainDoc reports the index-scan decision and shares the cache.
	_, plan, _, err := c.ExplainDoc("a", src)
	if err != nil {
		t.Fatal(err)
	}
	var hasIndexScan func(op *xquery.ExplainOp) bool
	hasIndexScan = func(op *xquery.ExplainOp) bool {
		if op.Op == "index-scan" && op.Index {
			return true
		}
		for _, k := range op.Children {
			if hasIndexScan(k) {
				return true
			}
		}
		return false
	}
	if !hasIndexScan(plan) {
		t.Fatalf("ExplainDoc plan lacks an index-scan operator: %+v", plan)
	}

	// A different hierarchy layout keys a second plan entry.
	if _, err := c.Put("c", otherLayoutDoc(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("c", src); err != nil {
		t.Fatal(err)
	}
	if st := c.PlanCacheStats(); st.Entries != 2 {
		t.Fatalf("plan cache entries = %d, want 2 (one per layout)", st.Entries)
	}

	// A disabled cache still evaluates (plans come from the per-query
	// cache instead).
	c2 := New(Options{CacheSize: -1})
	if _, err := c2.Put("a", genDoc(t, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Query("a", src); err != nil {
		t.Fatal(err)
	}
	if st := c2.PlanCacheStats(); st.Capacity != 0 {
		t.Fatalf("disabled plan cache stats = %+v", st)
	}
}

func TestUpdatePublishesNewVersion(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fill(t, c, 1)

	old, _ := c.Get("doc00")
	before, err := c.Query("doc00", `count(//dmg)`)
	if err != nil {
		t.Fatal(err)
	}

	nd, rep, err := c.Update("doc00", `rename node //dmg as "worm"`)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Rev != 1 || rep.Ops != 1 {
		t.Fatalf("rev=%d report=%+v", nd.Rev, rep)
	}
	// The registry serves the new version; the old handle still answers.
	got, _ := c.Get("doc00")
	if got != nd {
		t.Fatal("registry did not publish the new version")
	}
	after, err := c.Query("doc00", `count(//worm)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.Serialize(after) != xquery.Serialize(before) {
		t.Fatalf("count(//worm)=%s, want %s", xquery.Serialize(after), xquery.Serialize(before))
	}
	if res, err := xquery.EvalString(old, `count(//worm)`); err != nil || res != "0" {
		t.Fatalf("old snapshot sees worm: %q %v", res, err)
	}

	// Unknown documents 404 with ErrNotFound; bad expressions fail
	// without publishing anything.
	if _, _, err := c.Update("nope", `delete node //w`); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown doc: %v", err)
	}
	if _, _, err := c.Update("doc00", `rename node //worm as "line"`); err == nil {
		t.Fatal("vocabulary conflict must fail")
	}
	if got2, _ := c.Get("doc00"); got2 != nd {
		t.Fatal("failed update must not publish")
	}

	// Write-through: a fresh collection over the directory has the
	// updated content.
	c.Close()
	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Query("doc00", `count(//worm)`)
	if err != nil {
		t.Fatal(err)
	}
	if xquery.Serialize(res) != xquery.Serialize(before) {
		t.Fatalf("reloaded count(//worm) = %s", xquery.Serialize(res))
	}
}

// TestOpenServesIndexQueriesWithoutBuilds: v3 snapshot images persist
// the per-hierarchy name-index runs, so a fresh Open followed by
// index-served queries performs zero index builds — in both the mmap
// and the read-into-memory open paths.
func TestOpenServesIndexQueriesWithoutBuilds(t *testing.T) {
	for _, tc := range []struct {
		name   string
		noMmap bool
	}{{"mmap", false}, {"fallback", true}} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(dir, Options{NoMmap: tc.noMmap})
			if err != nil {
				t.Fatal(err)
			}
			fill(t, c, 3)
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}

			before := core.GlobalIndexStats().Builds
			c2, err := Open(dir, Options{NoMmap: tc.noMmap})
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			for _, name := range c2.Names() {
				res, err := c2.Query(name, `count(//w)`)
				if err != nil {
					t.Fatal(err)
				}
				if xquery.Serialize(res) == "0" {
					t.Fatalf("%s: no words found", name)
				}
			}
			if builds := core.GlobalIndexStats().Builds - before; builds != 0 {
				t.Fatalf("open + index queries performed %d index builds, want 0", builds)
			}
		})
	}
}
