package collection

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"mhxquery/internal/core"
	"mhxquery/internal/store"
	"mhxquery/internal/wal"
	"mhxquery/internal/xquery"
)

// walFile is the per-collection write-ahead log filename.
const walFile = "wal.log"

// docState tracks, per document, how far the on-disk snapshot lags the
// log. Guarded by Collection.mu.
type docState struct {
	lastSeq      uint64 // highest log sequence applied to the live version
	snapSeq      uint64 // coverage recorded in the on-disk image
	pendingRecs  int    // records since the last snapshot
	pendingBytes int64  // framed bytes since the last snapshot
}

// RecoveryStats describes what Open had to do to bring a durable
// collection back: how much was already in snapshots, how much was
// replayed from the log, and what damage was tolerated.
type RecoveryStats struct {
	// Snapshots is the number of document images loaded.
	Snapshots int
	// Replayed is the number of update records re-applied from the log.
	Replayed int
	// Skipped is the number of log records already covered by snapshots.
	Skipped int
	// Tombstones is the number of deletion records processed.
	Tombstones int
	// TornTailBytes is the size of the interrupted final write truncated
	// from the log tail (0 after a clean shutdown).
	TornTailBytes int
	// CheckpointDocs is the number of documents re-snapshotted to
	// compact the log away at the end of recovery.
	CheckpointDocs int
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// Recovery returns what Open had to replay (zero value for memory-only
// and write-through collections).
func (c *Collection) Recovery() RecoveryStats { return c.recovery }

// WALStats exposes the log's lifetime counters (zero value when the
// collection has no WAL).
func (c *Collection) WALStats() wal.Stats {
	if c.wal == nil {
		return wal.Stats{}
	}
	return c.wal.Stats()
}

// imagePath returns the snapshot path for a document name.
func (c *Collection) imagePath(name string) string {
	return filepath.Join(c.dir, name+imageExt)
}

// recover replays the write-ahead log over the loaded snapshots,
// re-snapshots every document the log was ahead of, and swaps in a
// fresh empty log — so recovery is idempotent: a crash during recovery
// just replays again. Called from Open with the collection still
// private to the caller (no locking).
func (c *Collection) recover(opts Options) error {
	start := time.Now()
	maxSeq := uint64(0)
	for _, st := range c.logState {
		if st.snapSeq > maxSeq {
			maxSeq = st.snapSeq
		}
	}
	walPath := filepath.Join(c.dir, walFile)
	recs, torn, err := wal.Load(c.fs, walPath)
	if err != nil {
		return fmt.Errorf("collection: %w", err)
	}
	c.recovery.Snapshots = len(c.docs)
	c.recovery.TornTailBytes = torn

	// Latest tombstone per name: an update record older than the
	// document's deletion never needs applying (a later re-Put would
	// carry a snapshot covering it anyway).
	tomb := map[string]uint64{}
	for _, r := range recs {
		if r.Kind == wal.Tombstone {
			tomb[r.Name] = r.Seq
		}
	}
	replayed := map[string]bool{}
	for _, r := range recs {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		switch r.Kind {
		case wal.Tombstone:
			c.recovery.Tombstones++
			if st, ok := c.logState[r.Name]; ok && st.snapSeq < r.Seq {
				delete(c.docs, r.Name)
				delete(c.logState, r.Name)
				delete(replayed, r.Name)
			}
		case wal.Update:
			st, ok := c.logState[r.Name]
			if ok && r.Seq <= st.snapSeq || r.Seq < tomb[r.Name] {
				c.recovery.Skipped++
				continue
			}
			if !ok {
				return fmt.Errorf("collection: log record %d updates unknown document %q: %w", r.Seq, r.Name, wal.ErrCorrupt)
			}
			d := c.docs[r.Name]
			if r.Base != d.Rev {
				return fmt.Errorf("collection: log record %d for %q applies to revision %d but the document is at %d: %w",
					r.Seq, r.Name, r.Base, d.Rev, wal.ErrCorrupt)
			}
			u, err := xquery.CompileUpdate(r.Src)
			if err != nil {
				return fmt.Errorf("collection: log record %d for %q: %v: %w", r.Seq, r.Name, err, wal.ErrCorrupt)
			}
			nd, _, err := u.ApplyContext(context.Background(), d, c.viewUnlocked())
			if err != nil {
				// The batch was acknowledged, so it applied cleanly once;
				// failing now means the snapshot or log is damaged.
				return fmt.Errorf("collection: replaying record %d for %q: %v: %w", r.Seq, r.Name, err, wal.ErrCorrupt)
			}
			c.docs[r.Name] = nd
			st.lastSeq = r.Seq
			replayed[r.Name] = true
			c.recovery.Replayed++
		}
	}

	// Checkpoint: persist everything the log was ahead of, then the log
	// itself can start empty. Images are fsynced individually and the
	// directory once, before the log swap — so a crash anywhere in
	// between leaves old-log + some-new-images, which replays to the
	// same state.
	for name := range replayed {
		if err := c.writeImage(name, c.docs[name], maxSeq); err != nil {
			return err
		}
		c.logState[name].snapSeq = maxSeq
		c.logState[name].lastSeq = maxSeq
		c.recovery.CheckpointDocs++
	}
	for name := range tomb {
		if _, live := c.docs[name]; !live {
			if err := c.fs.Remove(c.imagePath(name)); err != nil {
				return fmt.Errorf("collection: %w", err)
			}
		}
	}
	if err := c.fs.SyncDir(c.dir); err != nil {
		return fmt.Errorf("collection: %w", err)
	}

	l, err := wal.Create(c.fs, walPath, maxSeq, wal.Options{
		Flush:    opts.FlushWindow,
		Observer: c.metrics,
	})
	if err != nil {
		return err
	}
	c.wal = l
	c.pubSeq = maxSeq
	c.recovery.Elapsed = time.Since(start)

	c.snapKick = make(chan struct{}, 1)
	c.snapStop = make(chan struct{})
	c.snapDone = make(chan struct{})
	go c.snapshotLoop()
	return nil
}

// viewUnlocked builds a resolver view without taking c.mu, for use
// during Open when the collection is still private.
func (c *Collection) viewUnlocked() *view {
	v := &view{docs: c.docs, names: make([]string, 0, len(c.docs))}
	for name := range c.docs {
		v.names = append(v.names, name)
	}
	sort.Strings(v.names)
	return v
}

// writeImage persists one document snapshot (temp file, file fsync,
// rename). Directory durability is the caller's one SyncDir.
func (c *Collection) writeImage(name string, d *core.Document, snapSeq uint64) error {
	tmp, err := c.encodeTemp(name, d, snapSeq)
	if err != nil {
		return err
	}
	if err := c.fs.Rename(tmp, c.imagePath(name)); err != nil {
		c.fs.Remove(tmp)
		return fmt.Errorf("collection: %w", err)
	}
	return nil
}

// ---- durable write path ---------------------------------------------------

// updateDurable is the WAL-mode commit path: apply under the writer
// lock, append to the log, publish in memory, then release the writer
// lock and wait for the group-commit fsync before acknowledging. The
// wait happens outside updateMu, so concurrent committers pile into
// one fsync batch — that is what group commit buys.
func (c *Collection) updateDurable(ctx context.Context, name, src string, u *xquery.Update) (*core.Document, *xquery.UpdateReport, error) {
	start := time.Now()
	c.updateMu.Lock()
	v := c.view()
	d, err := v.ResolveDoc(name)
	if err != nil {
		c.updateMu.Unlock()
		return nil, nil, fmt.Errorf("collection: %w", err)
	}
	nd, rep, err := u.ApplyContext(ctx, d, v)
	if err != nil {
		c.updateMu.Unlock()
		return nil, nil, err
	}
	commit, err := c.wal.Append(wal.Record{Kind: wal.Update, Name: name, Base: d.Rev, Src: src})
	if err != nil {
		c.updateMu.Unlock()
		return nil, nil, fmt.Errorf("collection: %w", err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.updateMu.Unlock()
		return nil, nil, fmt.Errorf("collection: closed")
	}
	c.docs[name] = nd
	c.pubSeq = commit.Seq()
	st := c.logState[name]
	if st == nil {
		st = &docState{}
		c.logState[name] = st
	}
	st.lastSeq = commit.Seq()
	st.pendingRecs++
	st.pendingBytes += int64(len(src))
	if st.pendingRecs >= c.snapEvery || st.pendingBytes >= c.snapBytes {
		c.snapRequest(name)
	}
	c.mu.Unlock()
	c.updateMu.Unlock()

	if err := commit.Wait(); err != nil {
		// The new version is already visible in memory but is NOT
		// durable: the log is poisoned and refuses further commits
		// rather than risk acknowledging updates it cannot persist.
		return nil, nil, fmt.Errorf("collection: %w", err)
	}
	c.metrics.observeUpdate(start)
	return nd, rep, nil
}

// putDurable registers a whole document in WAL mode. The image itself
// is the durable record: it claims coverage of every log sequence
// assigned so far, so older update records for this name are dead on
// replay. Serialized with updates via updateMu so that claim is sound.
func (c *Collection) putDurable(name string, d *core.Document) (replaced bool, err error) {
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	seq := c.wal.LastSeq()
	tmp, err := c.encodeTemp(name, d, seq)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		c.fs.Remove(tmp)
		return false, fmt.Errorf("collection: closed")
	}
	if err := c.fs.Rename(tmp, c.imagePath(name)); err != nil {
		c.fs.Remove(tmp)
		return false, fmt.Errorf("collection: %w", err)
	}
	if err := c.fs.SyncDir(c.dir); err != nil {
		return false, fmt.Errorf("collection: %w", err)
	}
	_, replaced = c.docs[name]
	c.docs[name] = d
	c.logState[name] = &docState{lastSeq: seq, snapSeq: seq}
	delete(c.snapPending, name)
	return replaced, nil
}

// deleteDurable removes a document in WAL mode: a tombstone record
// makes the deletion durable (and replayable) before the image is
// removed, so a crash in between cannot resurrect the document.
func (c *Collection) deleteDurable(name string) error {
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	c.mu.Lock()
	d, ok := c.docs[name]
	c.mu.Unlock()
	if !ok {
		return nil
	}
	commit, err := c.wal.Append(wal.Record{Kind: wal.Tombstone, Name: name, Base: d.Rev})
	if err != nil {
		return fmt.Errorf("collection: %w", err)
	}
	c.mu.Lock()
	delete(c.docs, name)
	delete(c.logState, name)
	delete(c.snapPending, name)
	c.pubSeq = commit.Seq()
	c.mu.Unlock()
	if err := commit.Wait(); err != nil {
		return fmt.Errorf("collection: %w", err)
	}
	// The tombstone is durable; removing the image is cleanup that
	// recovery redoes if a crash lands here.
	if err := c.fs.Remove(c.imagePath(name)); err != nil {
		return fmt.Errorf("collection: %w", err)
	}
	if err := c.fs.SyncDir(c.dir); err != nil {
		return fmt.Errorf("collection: %w", err)
	}
	return nil
}

// closeDurable stops the snapshotter (flushing its queue) and closes
// the log (draining pending commits).
func (c *Collection) closeDurable() error {
	close(c.snapStop)
	<-c.snapDone
	return c.wal.Close()
}

// ---- background snapshotter -----------------------------------------------

// snapRequest queues a document for snapshotting. Called with c.mu
// held.
func (c *Collection) snapRequest(name string) {
	c.snapPending[name] = true
	select {
	case c.snapKick <- struct{}{}:
	default:
	}
}

// snapshotLoop is the background snapshotter: it drains the pending
// set, writing each queued document's image, and when every document
// is fully covered it compacts the log away.
func (c *Collection) snapshotLoop() {
	defer close(c.snapDone)
	for {
		select {
		case <-c.snapKick:
			c.drainSnapshots()
		case <-c.snapStop:
			c.drainSnapshots()
			return
		}
	}
}

func (c *Collection) drainSnapshots() {
	for {
		c.mu.Lock()
		var name string
		for n := range c.snapPending {
			name = n
			break
		}
		if name == "" {
			// Nothing queued: if no document has log records beyond its
			// snapshot, the whole log is dead weight — compact it.
			covered := true
			for _, st := range c.logState {
				if st.pendingRecs > 0 {
					covered = false
					break
				}
			}
			pub := c.pubSeq
			c.mu.Unlock()
			if covered {
				// ResetIf re-checks the sequence number under the log's
				// own lock, so a commit racing this compaction simply
				// makes it refuse; the next snapshot retries.
				if ok, err := c.wal.ResetIf(pub); ok {
					c.metrics.logResets.Add(1)
				} else if err != nil {
					c.metrics.snapshotErrs.Add(1)
				}
			}
			return
		}
		delete(c.snapPending, name)
		d := c.docs[name]
		st := c.logState[name]
		if d == nil || st == nil {
			c.mu.Unlock()
			continue
		}
		captured := *st
		c.mu.Unlock()

		// Encode outside every lock: queries and commits proceed while
		// the image is serialized.
		tmp, err := c.encodeTemp(name, d, captured.lastSeq)
		if err != nil {
			c.metrics.snapshotErrs.Add(1)
			continue
		}
		c.mu.Lock()
		if c.docs[name] != d {
			// A newer version (or a fresh Put, or a delete) superseded
			// the capture while we encoded; discard. Its own pending
			// counters will re-trigger a snapshot.
			c.mu.Unlock()
			c.fs.Remove(tmp)
			continue
		}
		err = c.fs.Rename(tmp, c.imagePath(name))
		if err == nil {
			err = c.fs.SyncDir(c.dir)
		}
		if err != nil {
			c.mu.Unlock()
			c.fs.Remove(tmp)
			c.metrics.snapshotErrs.Add(1)
			continue
		}
		// The identity check above means no commit touched the document
		// since the capture, so the snapshot covers everything pending.
		st.snapSeq = captured.lastSeq
		st.pendingRecs = 0
		st.pendingBytes = 0
		c.mu.Unlock()
		c.metrics.snapshots.Add(1)
	}
}

// errIsCorrupt reports whether err is a recognized corruption error
// from either persistence layer.
func errIsCorrupt(err error) bool {
	return errors.Is(err, store.ErrCorrupt) || errors.Is(err, wal.ErrCorrupt)
}
