package collection

import (
	"container/list"
	"sync"

	"mhxquery/internal/obs"
)

// lruCache is a fixed-capacity least-recently-used cache keyed by
// string. It holds immutable values (compiled queries, physical plans),
// so one entry can be shared by any number of concurrent evaluations;
// the lock only guards the recency list and map.
type lruCache struct {
	capacity int

	mu           sync.Mutex
	ll           *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses uint64

	// hitC/missC mirror hits/misses into the owning collection's metrics
	// registry when set (metrics.go); they are atomics, so incrementing
	// under the cache lock costs one uncontended atomic add.
	hitC, missC *obs.Counter
}

type lruEntry struct {
	key string
	v   any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

func (l *lruCache) get(key string) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		l.misses++
		if l.missC != nil {
			l.missC.Inc()
		}
		return nil, false
	}
	l.hits++
	if l.hitC != nil {
		l.hitC.Inc()
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry).v, true
}

func (l *lruCache) add(key string, v any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		// A concurrent load won the race; refresh the entry (a stale
		// plan for a recompiled query is replaced, anything else kept).
		el.Value.(*lruEntry).v = v
		l.ll.MoveToFront(el)
		return
	}
	l.items[key] = l.ll.PushFront(&lruEntry{key: key, v: v})
	for l.ll.Len() > l.capacity {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.items, oldest.Value.(*lruEntry).key)
	}
}

func (l *lruCache) stats() (hits, misses uint64, entries int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses, l.ll.Len()
}
