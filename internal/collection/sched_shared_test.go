package collection

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mhxquery/internal/sched"
	"mhxquery/internal/xquery"
)

// TestFanoutGaugesWithMorselJobs is the accounting check for the shared
// scheduler: when per-document fan-out jobs themselves dispatch morsel
// jobs into the same pool, the fan-out gauges still see exactly one
// depth decrement and one busy increment/decrement per document job,
// and return to zero at rest. The documents are sized past the default
// parallel-engagement threshold so the inner morsel pass really runs.
func TestFanoutGaugesWithMorselJobs(t *testing.T) {
	xquery.SetQueryWorkers(4)
	t.Cleanup(func() { xquery.SetQueryWorkers(0) })

	c := New(Options{Workers: 4})
	for i := 0; i < 6; i++ {
		if _, err := c.Put(fmt.Sprintf("doc%d", i), genDoc(t, uint64(i+1), 200)); err != nil {
			t.Fatal(err)
		}
	}
	morselsBefore, _ := xquery.ParallelStats()

	const rounds = 4
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := c.QueryAll(`//w[string-length(string(.)) > 0]`, ""); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	snap := c.Metrics().Snapshot()
	if snap["mhx_fanout_queue_depth"] != 0 || snap["mhx_fanout_busy_workers"] != 0 {
		t.Errorf("fan-out gauges nonzero at rest: depth=%v busy=%v",
			snap["mhx_fanout_queue_depth"], snap["mhx_fanout_busy_workers"])
	}
	if snap["mhx_pool_busy_workers"] != 0 ||
		snap[`mhx_pool_queued_jobs{class="fanout"}`] != 0 ||
		snap[`mhx_pool_queued_jobs{class="morsel"}`] != 0 {
		t.Errorf("shared-pool gauges nonzero at rest: %v", snap)
	}

	// The inner passes must actually have run through the shared pool —
	// otherwise this test proves nothing about interleaved accounting.
	morselsAfter, _ := xquery.ParallelStats()
	if morselsAfter <= morselsBefore {
		t.Fatalf("no morsels dispatched during fan-out (before=%d after=%d): engagement threshold not crossed",
			morselsBefore, morselsAfter)
	}
	if snap["mhx_query_morsels_total"] != float64(morselsAfter) {
		t.Errorf("mhx_query_morsels_total = %v, ParallelStats = %d",
			snap["mhx_query_morsels_total"], morselsAfter)
	}
	if snap["mhx_query_parallel_queries_total"] < 1 {
		t.Errorf("mhx_query_parallel_queries_total = %v, want >= 1",
			snap["mhx_query_parallel_queries_total"])
	}
	if snap["mhx_query_morsel_seconds_count"] < 1 {
		t.Errorf("morsel latency histogram empty: %v", snap["mhx_query_morsel_seconds_count"])
	}
	if got := sched.Default().Busy(); got != 0 {
		t.Errorf("scheduler busy = %d at rest", got)
	}

	var sb strings.Builder
	if err := c.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, family := range []string{
		"mhx_query_morsels_total", "mhx_query_parallel_queries_total",
		"mhx_query_morsel_seconds", "mhx_pool_busy_workers", "mhx_pool_queued_jobs",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("scrape missing family %s", family)
		}
	}
}
