// Package collection implements a named corpus of multihierarchical
// documents: a thread-safe in-memory registry with directory-backed
// persistence in the store MHXG binary format, an LRU cache of compiled
// queries, and parallel fan-out evaluation of one query across all (or
// a glob-selected subset of) member documents.
//
// A Collection is the production backing for the doc() and collection()
// functions of the query language: it implements xquery.Resolver, so
// any query evaluated through Collection.Query or Collection.QueryAll
// can reach every member document by name.
package collection

import (
	"context"
	"errors"
	"fmt"
	"path"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mhxquery/internal/core"
	"mhxquery/internal/sched"
	"mhxquery/internal/store"
	"mhxquery/internal/wal"
	"mhxquery/internal/xquery"
)

// imageExt is the filename extension of persisted document images.
const imageExt = ".mhxg"

// nameRE restricts document names to a filesystem- and URL-safe
// alphabet so a name can double as the image filename and as a path
// segment of the HTTP API.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9_][A-Za-z0-9._-]*$`)

// ValidName reports whether name is acceptable to Put.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// ErrNotFound distinguishes "no such document" from evaluation and I/O
// failures (errors.Is).
var ErrNotFound = errors.New("document not found")

// Options configures a Collection. The zero value is valid.
type Options struct {
	// Workers bounds the fan-out worker pool of QueryAll.
	// 0 means GOMAXPROCS; 1 evaluates sequentially.
	Workers int
	// CacheSize is the capacity of the compiled-query LRU cache in
	// entries. 0 means a default of 128; negative disables caching.
	CacheSize int

	// WriteThrough reverts a persistent collection to the pre-WAL write
	// path: every update re-encodes and renames the whole image before
	// acknowledging. Durable but O(document) per commit; kept for
	// comparison benchmarks and as an escape hatch.
	WriteThrough bool
	// FlushWindow is the WAL group-commit window: how long the log
	// writer waits after the first commit of a batch for more to pile
	// in. 0 fsyncs immediately (concurrent commits still batch).
	FlushWindow time.Duration
	// SnapshotEvery re-snapshots a document after this many logged
	// updates (0 means 256; negative disables count-triggered
	// snapshots).
	SnapshotEvery int
	// SnapshotBytes re-snapshots a document after this many logged
	// update-source bytes (0 means 4 MiB; negative disables).
	SnapshotBytes int64
	// FS overrides the filesystem the durable write path runs on. nil
	// means the real OS; tests inject wal.CrashFS for fault injection
	// and power-loss simulation.
	FS wal.FS

	// NoMmap disables memory-mapping of v3 snapshot images on open and
	// forces the read-into-memory path. Mapping is also skipped when the
	// platform lacks support, when MHX_NO_MMAP=1, or when FS is not the
	// real OS (an injected filesystem's bytes are not the disk's).
	NoMmap bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheSize == 0 {
		o.CacheSize = 128
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 256
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = 4 << 20
	}
	if o.SnapshotEvery < 0 {
		o.SnapshotEvery = int(^uint(0) >> 1)
	}
	if o.SnapshotBytes < 0 {
		o.SnapshotBytes = int64(^uint64(0) >> 1)
	}
	if o.FS == nil {
		o.FS = wal.OS
	}
	return o
}

// Collection is a registry of named documents. All methods are safe for
// concurrent use; member documents are immutable, so readers never
// block each other.
type Collection struct {
	dir     string // "" = memory-only
	workers int
	cache   *lruCache
	// plans caches physical plans keyed by query source + document
	// hierarchy signature (core.Document.Signature): two documents with
	// the same hierarchy layout share one plan, while an analyze-string
	// overlay layout — one more (temporary) hierarchy — keys
	// differently, so a base-document plan is never blindly reused.
	plans *lruCache

	// metrics is the collection's observability registry (metrics.go);
	// always non-nil, so hot paths update it unconditionally.
	metrics *collMetrics

	mu     sync.RWMutex
	docs   map[string]*core.Document
	closed bool

	// updateMu serializes Update calls (single writer): an update reads
	// the current version, applies the copy-on-write batch outside the
	// registry lock, then publishes the new version through Put.
	// Readers are never blocked — they keep their snapshot.
	updateMu sync.Mutex

	// Durable write path (nil/zero for memory-only and write-through
	// collections; see durable.go).
	fs        wal.FS
	wal       *wal.Log
	snapEvery int
	snapBytes int64
	recovery  RecoveryStats
	tmpSeq    atomic.Uint64 // temp-file name uniquifier

	// Guarded by mu: per-document snapshot lag and the highest log
	// sequence published in memory.
	logState    map[string]*docState
	snapPending map[string]bool
	pubSeq      uint64

	snapKick chan struct{}
	snapStop chan struct{}
	snapDone chan struct{}
}

// New returns an empty memory-only collection.
func New(opts Options) *Collection {
	opts = opts.withDefaults()
	var cache, plans *lruCache
	if opts.CacheSize > 0 {
		cache = newLRU(opts.CacheSize)
		// Plans are per (query, layout); give them headroom over the
		// query cache so one extra corpus layout does not thrash it.
		plans = newLRU(4 * opts.CacheSize)
	}
	c := &Collection{
		workers: opts.Workers,
		cache:   cache,
		plans:   plans,
		docs:    map[string]*core.Document{},
		fs:      wal.OS,
	}
	// Fan-out runs on the process-wide scheduler (shared with intra-query
	// morsel execution); make sure it can grant this collection's
	// parallelism.
	sched.Default().Ensure(c.workers)
	c.metrics = newCollMetrics(c)
	return c
}

// Open returns a collection persisted under dir, creating the directory
// if needed and loading every *.mhxg image found there. Unless
// Options.WriteThrough is set, updates are made durable through a
// write-ahead log (durable.go): Open replays any log records not yet
// covered by the document snapshots — crash recovery — and Recovery
// reports what that took. Subsequent Put calls write through to dir.
func Open(dir string, opts Options) (*Collection, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("collection: %w", err)
	}
	c := New(opts)
	c.dir = dir
	c.fs = fs
	c.snapEvery = opts.SnapshotEvery
	c.snapBytes = opts.SnapshotBytes
	c.logState = map[string]*docState{}
	c.snapPending = map[string]bool{}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("collection: %w", err)
	}
	for _, fname := range names {
		if strings.HasSuffix(fname, ".tmp") {
			// Leftover from a crash mid-write: the rename never happened,
			// so the temp file is unpublished garbage.
			fs.Remove(filepath.Join(dir, fname))
			continue
		}
		if !strings.HasSuffix(fname, imageExt) {
			continue
		}
		name := strings.TrimSuffix(fname, imageExt)
		if !nameRE.MatchString(name) {
			continue
		}
		d, snapSeq, err := c.openSnapshot(opts, filepath.Join(dir, fname))
		if err != nil {
			// Snapshot corruption is not recoverable from here (the log
			// only holds deltas against it): fail loudly, never serve a
			// silently damaged corpus.
			return nil, fmt.Errorf("collection: loading %q: %w", fname, err)
		}
		c.docs[name] = d
		c.logState[name] = &docState{lastSeq: snapSeq, snapSeq: snapSeq}
	}
	if opts.WriteThrough {
		return c, nil
	}
	if err := c.recover(opts); err != nil {
		return nil, err
	}
	return c, nil
}

// openSnapshot loads one image. A v3 image opens in O(validation):
// memory-mapped off the real OS filesystem when allowed (the mapping
// then backs the document for the life of the process, sharing the
// page cache across processes), read into memory otherwise — either
// way node storage materializes lazily on first structural access.
// Legacy v1/v2 images decode eagerly through the same call.
func (c *Collection) openSnapshot(opts Options, path string) (*core.Document, uint64, error) {
	if _, osFS := c.fs.(wal.OSFS); osFS && !opts.NoMmap && store.MmapAvailable() {
		return store.OpenSnapshotFile(path)
	}
	f, err := c.fs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return store.DecodeSnapshot(f)
}

// Dir returns the backing directory ("" for a memory-only collection).
func (c *Collection) Dir() string { return c.dir }

// Workers returns the fan-out worker pool bound.
func (c *Collection) Workers() int { return c.workers }

// Len returns the number of member documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Put registers d under name and reports whether it replaced a
// previous document of that name (decided under the same lock that
// publishes, so HTTP created-vs-replaced answers cannot race). With a
// backing directory the image is written through atomically: it is
// encoded and fsynced to a temp file outside the registry lock
// (queries are never blocked by disk I/O), then published with rename
// + map update under the lock, so a crash never leaves the directory
// with a torn image and a racing Delete cannot remove a freshly
// published one.
func (c *Collection) Put(name string, d *core.Document) (replaced bool, err error) {
	if !nameRE.MatchString(name) {
		return false, fmt.Errorf("collection: invalid document name %q", name)
	}
	if d == nil {
		return false, fmt.Errorf("collection: nil document")
	}
	if c.wal != nil {
		return c.putDurable(name, d)
	}
	tmpName := ""
	if c.dir != "" {
		if tmpName, err = c.encodeTemp(name, d, 0); err != nil {
			return false, err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		if tmpName != "" {
			c.fs.Remove(tmpName)
		}
		return false, fmt.Errorf("collection: closed")
	}
	if tmpName != "" {
		if err := c.fs.Rename(tmpName, filepath.Join(c.dir, name+imageExt)); err != nil {
			c.fs.Remove(tmpName)
			return false, fmt.Errorf("collection: %w", err)
		}
		// The rename orders data, but only a directory fsync makes the
		// published entry itself survive power loss on ext4.
		if err := c.fs.SyncDir(c.dir); err != nil {
			return false, fmt.Errorf("collection: %w", err)
		}
	}
	_, replaced = c.docs[name]
	c.docs[name] = d
	return replaced, nil
}

// encodeTemp writes d's image (recording snapSeq as its log coverage)
// to a temp file in the backing directory and returns its path; the
// caller publishes it with rename.
func (c *Collection) encodeTemp(name string, d *core.Document, snapSeq uint64) (string, error) {
	path := filepath.Join(c.dir, fmt.Sprintf("%s.%d.tmp", name, c.tmpSeq.Add(1)))
	tmp, err := c.fs.Create(path)
	if err != nil {
		return "", fmt.Errorf("collection: %w", err)
	}
	cleanup := func() { tmp.Close(); c.fs.Remove(path) }
	// Make the temp entry itself durable: a crash from here on leaves a
	// visible *.tmp for startup cleanup, not an orphaned invisible
	// inode.
	if err := c.fs.SyncDir(c.dir); err != nil {
		cleanup()
		return "", fmt.Errorf("collection: %w", err)
	}
	if err := store.EncodeSnapshot(tmp, d, snapSeq); err != nil {
		cleanup()
		return "", fmt.Errorf("collection: encoding %q: %w", name, err)
	}
	// Flush file data before the rename so a crash cannot publish a
	// name pointing at a torn image.
	if err := tmp.Sync(); err != nil {
		cleanup()
		return "", fmt.Errorf("collection: %w", err)
	}
	if err := tmp.Close(); err != nil {
		c.fs.Remove(path)
		return "", fmt.Errorf("collection: %w", err)
	}
	return path, nil
}

// Get returns the document registered under name.
func (c *Collection) Get(name string) (*core.Document, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[name]
	return d, ok
}

// Delete removes the named document from the registry and, for a
// persistent collection, from the backing directory. Deleting an
// unknown name is a no-op.
func (c *Collection) Delete(name string) error {
	if c.wal != nil {
		return c.deleteDurable(name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.docs[name]
	delete(c.docs, name)
	// The image is removed under the same lock Put writes under, so a
	// racing Put(name) cannot have its fresh image deleted.
	if ok && c.dir != "" {
		if err := c.fs.Remove(filepath.Join(c.dir, name+imageExt)); err != nil {
			return fmt.Errorf("collection: %w", err)
		}
		if err := c.fs.SyncDir(c.dir); err != nil {
			return fmt.Errorf("collection: %w", err)
		}
	}
	return nil
}

// Names returns the member document names in sorted order.
func (c *Collection) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.docs))
	for name := range c.docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close marks the collection closed and, in WAL mode, flushes the
// background snapshotter and the log (draining any pending group
// commit). Pending readers finish normally; subsequent writes fail.
func (c *Collection) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if c.wal != nil {
		return c.closeDurable()
	}
	return nil
}

// Update applies an update expression to the named document and
// publishes the resulting new version in the registry (writing through
// to the backing directory, like Put). The pre-update version stays
// valid for readers that already hold it: they observe a consistent
// pre- or post-update document, never a mix. Updates are serialized;
// doc()/collection() inside target expressions resolve against the
// registry epoch at the start of the update.
func (c *Collection) Update(name, src string) (*core.Document, *xquery.UpdateReport, error) {
	return c.UpdateContext(context.Background(), name, src)
}

// UpdateContext is Update under a cancellation context.
func (c *Collection) UpdateContext(ctx context.Context, name, src string) (*core.Document, *xquery.UpdateReport, error) {
	u, err := xquery.CompileUpdate(src)
	if err != nil {
		return nil, nil, err
	}
	if c.wal != nil {
		return c.updateDurable(ctx, name, src, u)
	}
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	// Commit latency covers apply + persist + publish, i.e. everything
	// after the writer lock is held — queueing behind other writers is
	// deliberately excluded.
	start := time.Now()
	v := c.view()
	d, err := v.ResolveDoc(name)
	if err != nil {
		return nil, nil, fmt.Errorf("collection: %w", err)
	}
	nd, rep, err := u.ApplyContext(ctx, d, v)
	if err != nil {
		return nil, nil, err
	}
	if _, err := c.Put(name, nd); err != nil {
		return nil, nil, err
	}
	c.metrics.observeUpdate(start)
	return nd, rep, nil
}

// ---- xquery.Resolver ------------------------------------------------------

// ResolveDoc implements xquery.Resolver: doc("name") inside a query
// resolves against the live registry.
func (c *Collection) ResolveDoc(name string) (*core.Document, error) {
	d, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("no document %q in collection: %w", name, ErrNotFound)
	}
	return d, nil
}

// ResolveCollection implements xquery.Resolver: collection("glob")
// inside a query. The empty pattern selects every document; otherwise
// names are matched with path.Match. Documents are returned in name
// order.
func (c *Collection) ResolveCollection(pattern string) ([]*core.Document, error) {
	_, docs, err := c.view().match(pattern)
	return docs, err
}

// view is an immutable snapshot of the registry: one registry epoch
// that a whole fan-out can evaluate against. It implements
// xquery.Resolver, so doc()/collection() inside a snapshot evaluation
// see the same epoch as the fan-out itself.
type view struct {
	names []string // sorted
	docs  map[string]*core.Document
}

// view captures the registry under one read lock.
func (c *Collection) view() *view {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v := &view{
		names: make([]string, 0, len(c.docs)),
		docs:  make(map[string]*core.Document, len(c.docs)),
	}
	for name, d := range c.docs {
		v.names = append(v.names, name)
		v.docs[name] = d
	}
	sort.Strings(v.names)
	return v
}

// match returns the (names, documents) of the view matching pattern,
// in name order.
func (v *view) match(pattern string) ([]string, []*core.Document, error) {
	if pattern != "" {
		// Validate the pattern once, against a fixed probe, so a bad
		// glob fails loudly even on an empty collection.
		if _, err := path.Match(pattern, "x"); err != nil {
			return nil, nil, fmt.Errorf("bad pattern %q: %w", pattern, err)
		}
	}
	matched := make([]string, 0, len(v.names))
	docs := make([]*core.Document, 0, len(v.names))
	for _, name := range v.names {
		if pattern != "" {
			if ok, _ := path.Match(pattern, name); !ok {
				continue
			}
		}
		matched = append(matched, name)
		docs = append(docs, v.docs[name])
	}
	return matched, docs, nil
}

// ResolveDoc implements xquery.Resolver over the snapshot.
func (v *view) ResolveDoc(name string) (*core.Document, error) {
	d, ok := v.docs[name]
	if !ok {
		return nil, fmt.Errorf("no document %q in collection: %w", name, ErrNotFound)
	}
	return d, nil
}

// ResolveCollection implements xquery.Resolver over the snapshot.
func (v *view) ResolveCollection(pattern string) ([]*core.Document, error) {
	_, docs, err := v.match(pattern)
	return docs, err
}

// ---- compiled-query cache --------------------------------------------------

// Compile returns the compiled form of src, reusing the LRU cache when
// enabled. Compiled queries are immutable, so a cached query may be
// evaluated by any number of goroutines at once.
func (c *Collection) Compile(src string) (*xquery.Query, error) {
	if c.cache == nil {
		return xquery.Compile(src)
	}
	if q, ok := c.cache.get(src); ok {
		return q.(*xquery.Query), nil
	}
	q, err := xquery.Compile(src)
	if err != nil {
		return nil, err
	}
	c.cache.add(src, q)
	return q, nil
}

// planFor returns the physical plan of q for d's hierarchy layout,
// reusing the plan cache. A cached plan belonging to an evicted,
// since-recompiled Query is detected by identity and replanned, so a
// stale plan never evaluates a different AST than the caller compiled.
func (c *Collection) planFor(src string, q *xquery.Query, d *core.Document) *xquery.Plan {
	if c.plans == nil {
		return q.PlanFor(d)
	}
	key := src + "\x00" + d.Signature()
	if v, ok := c.plans.get(key); ok {
		if pl := v.(*xquery.Plan); pl.Query() == q {
			return pl
		}
	}
	pl := q.PlanFor(d)
	c.plans.add(key, pl)
	return pl
}

// CacheStats reports compiled-query cache effectiveness.
type CacheStats struct {
	Hits, Misses uint64
	Entries      int
	Capacity     int
}

// CacheStats returns a snapshot of the compiled-query cache counters.
func (c *Collection) CacheStats() CacheStats {
	if c.cache == nil {
		return CacheStats{}
	}
	hits, misses, entries := c.cache.stats()
	return CacheStats{Hits: hits, Misses: misses, Entries: entries, Capacity: c.cache.capacity}
}

// PlanCacheStats returns a snapshot of the physical-plan cache counters
// (entries are keyed by query source + document hierarchy signature).
func (c *Collection) PlanCacheStats() CacheStats {
	if c.plans == nil {
		return CacheStats{}
	}
	hits, misses, entries := c.plans.stats()
	return CacheStats{Hits: hits, Misses: misses, Entries: entries, Capacity: c.plans.capacity}
}

// ---- query entry points ------------------------------------------------------

// Query evaluates src against the named document, with this collection
// resolving doc()/collection() references inside the query.
func (c *Collection) Query(name, src string) (xquery.Seq, error) {
	seq, _, err := c.QueryDoc(name, src)
	return seq, err
}

// QueryDoc is Query returning also the document the evaluation ran
// against, so callers can pair result nodes with their owning document
// even if the registry entry is concurrently replaced. Like QueryAll,
// the evaluation — including doc()/collection() inside the query —
// sees one registry epoch, captured at the start.
func (c *Collection) QueryDoc(name, src string) (xquery.Seq, *core.Document, error) {
	return c.QueryDocContext(context.Background(), name, src)
}

// QueryDocContext is QueryDoc under a cancellation context: the strict
// (fully materializing) evaluation route, preferred over draining a
// stream when no limit applies.
func (c *Collection) QueryDocContext(ctx context.Context, name, src string) (xquery.Seq, *core.Document, error) {
	q, err := c.Compile(src)
	if err != nil {
		return nil, nil, err
	}
	v := c.view()
	d, err := v.ResolveDoc(name)
	if err != nil {
		return nil, nil, fmt.Errorf("collection: %w", err)
	}
	start := time.Now()
	seq, err := c.planFor(src, q, d).EvalContext(ctx, d, nil, v)
	if err != nil {
		return nil, nil, err
	}
	c.metrics.observeQuery(start)
	return seq, d, nil
}

// StreamDoc starts a lazy, cursor-driven evaluation of src against the
// named document: items are produced on demand, so a caller applying a
// limit (or a disconnecting HTTP client) stops document evaluation
// after the items it consumed. ctx cancels the evaluation mid-stream.
// Like QueryDoc, the evaluation sees one registry epoch.
func (c *Collection) StreamDoc(ctx context.Context, name, src string) (*xquery.Stream, *core.Document, error) {
	q, err := c.Compile(src)
	if err != nil {
		return nil, nil, err
	}
	v := c.view()
	d, err := v.ResolveDoc(name)
	if err != nil {
		return nil, nil, fmt.Errorf("collection: %w", err)
	}
	return c.planFor(src, q, d).Stream(ctx, d, nil, v), d, nil
}

// ExplainDoc is QueryDoc with per-operator instrumentation: it returns
// the result, the physical operator tree (index-vs-scan decisions and
// observed cardinalities) and the document evaluated against.
func (c *Collection) ExplainDoc(name, src string) (xquery.Seq, *xquery.ExplainOp, *core.Document, error) {
	q, err := c.Compile(src)
	if err != nil {
		return nil, nil, nil, err
	}
	v := c.view()
	d, err := v.ResolveDoc(name)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("collection: %w", err)
	}
	c.planFor(src, q, d) // warm the plan cache like the non-explain path
	seq, plan, err := q.Explain(d, nil, v)
	if err != nil {
		return nil, nil, nil, err
	}
	return seq, plan, d, nil
}

// ExplainAnalyzeDoc is ExplainDoc upgraded to EXPLAIN ANALYZE: the
// query runs with timing instrumentation and the returned operator tree
// carries observed per-operator wall time (inclusive of children) in
// addition to cardinalities; the root's Nanos is the total query wall
// time. The evaluation counts toward mhx_query_seconds like any other.
func (c *Collection) ExplainAnalyzeDoc(ctx context.Context, name, src string) (xquery.Seq, *xquery.ExplainOp, *core.Document, error) {
	q, err := c.Compile(src)
	if err != nil {
		return nil, nil, nil, err
	}
	v := c.view()
	d, err := v.ResolveDoc(name)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("collection: %w", err)
	}
	pl := c.planFor(src, q, d)
	start := time.Now()
	seq, plan, err := pl.ExplainAnalyze(ctx, d, nil, v)
	if err != nil {
		return nil, nil, nil, err
	}
	c.metrics.observeQuery(start)
	return seq, plan, d, nil
}
