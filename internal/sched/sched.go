// Package sched is the process-level bounded worker pool shared by
// every parallel execution surface of the engine: collection query
// fan-out (one job per document) and morsel-driven intra-query
// parallelism (one job per index-scan morsel). A single pool means a
// single knob — fan-out jobs and morsels draw from the same worker
// budget, so stacking both kinds of parallelism cannot explode the
// goroutine count past what the operator sized.
//
// The core primitive is ParallelFor, a caller-helping parallel loop:
// the submitting goroutine always participates in executing its own
// items, and pool workers join only as capacity frees up. Two
// properties follow:
//
//   - No deadlock under nesting. A fan-out job running on a pool
//     worker may itself submit morsel work; even when every other
//     worker is busy, the submitter drives its own items to
//     completion, so progress never depends on pool capacity.
//   - The pool bounds the EXTRA parallelism only. A ParallelFor from
//     an application goroutine uses that goroutine plus at most
//     (par-1) helpers, so total concurrency stays within what the
//     caller and the pool size together allow.
//
// Fan-out tickets queue ahead of morsel tickets (class priority), so
// cross-document throughput never starves behind a single heavy
// query's morsels — a heavy query still progresses through its own
// submitter.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Class is the scheduling class of submitted work. Lower values are
// served first when workers pick up tickets.
type Class int

const (
	// Fanout is collection query fan-out: one job per document.
	Fanout Class = iota
	// Morsel is intra-query morsel work: one job per candidate slice.
	Morsel

	numClasses
)

// task is one ParallelFor invocation: a work-stealing counter over n
// items. Tickets enqueued on the pool all point at the same task;
// each claims items until the counter runs out, so late tickets
// (popped after the loop finished) cost one atomic load.
type task struct {
	n         int64
	f         func(i, slot int)
	next      atomic.Int64
	completed atomic.Int64
	slots     atomic.Int64
	done      chan struct{}
}

// run claims and executes items until none remain. slot identifies
// the participating goroutine (0 = submitter, 1.. = helpers) so
// callers can keep per-participant scratch state without locking.
func (t *task) run(slot int) {
	for {
		i := t.next.Add(1) - 1
		if i >= t.n {
			return
		}
		t.f(int(i), slot)
		if t.completed.Add(1) == t.n {
			close(t.done)
		}
	}
}

// Pool is a fixed set of worker goroutines serving tickets from
// per-class FIFO queues. The zero value is not usable; construct with
// New. A nil *Pool is valid everywhere and means "no helpers": every
// ParallelFor runs serially on the caller.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers int
	queues  [numClasses][]*task
	busy    atomic.Int64
}

// New creates a pool with n parked worker goroutines (n < 1 is
// clamped to 1). Workers are cheap when idle; they exist for the
// process lifetime.
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.Ensure(n)
	return p
}

// Ensure grows the pool to at least n workers; it never shrinks.
// Growing is how every subsystem states its budget — the pool ends up
// sized max(all requests), the shared ceiling.
func (p *Pool) Ensure(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	for p.workers < n {
		p.workers++
		go p.worker()
	}
	p.mu.Unlock()
}

// Workers returns the current worker count.
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workers
}

// Busy returns how many pool workers are currently executing items
// (the submitter's own participation is not counted — it is the
// caller's goroutine, not pool capacity).
func (p *Pool) Busy() int64 {
	if p == nil {
		return 0
	}
	return p.busy.Load()
}

// Queued returns the number of not-yet-claimed helper tickets of one
// class.
func (p *Pool) Queued(cl Class) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queues[cl])
}

func (p *Pool) worker() {
	p.mu.Lock()
	for {
		var t *task
		for cl := Class(0); cl < numClasses; cl++ {
			if q := p.queues[cl]; len(q) > 0 {
				t = q[0]
				copy(q, q[1:])
				p.queues[cl] = q[:len(q)-1]
				break
			}
		}
		if t == nil {
			p.cond.Wait()
			continue
		}
		p.mu.Unlock()
		if t.next.Load() < t.n { // skip tickets of already-finished loops
			slot := int(t.slots.Add(1))
			p.busy.Add(1)
			t.run(slot)
			p.busy.Add(-1)
		}
		p.mu.Lock()
	}
}

// ParallelFor runs f(i, slot) for every i in [0, n), on the calling
// goroutine plus at most par-1 pool helpers. slot ∈ [0, par) is
// stable per participating goroutine for the duration of the loop
// (the caller is always slot 0), so f can index per-participant
// scratch state race-free. ParallelFor returns when every item has
// completed. f must not panic; cancellation is the caller's concern
// (have f consult a context and make the remaining items cheap).
//
// With par <= 1, n <= 1 or a nil pool the loop degenerates to a plain
// serial for-loop on the caller — the recommended "parallelism off"
// path, with zero scheduling overhead.
func (p *Pool) ParallelFor(cl Class, n, par int, f func(i, slot int)) {
	if n <= 0 {
		return
	}
	if p == nil || par <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			f(i, 0)
		}
		return
	}
	helpers := par - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	t := &task{n: int64(n), f: f, done: make(chan struct{})}
	p.mu.Lock()
	if helpers > p.workers {
		helpers = p.workers
	}
	for i := 0; i < helpers; i++ {
		p.queues[cl] = append(p.queues[cl], t)
	}
	p.mu.Unlock()
	if helpers == 1 {
		p.cond.Signal()
	} else {
		p.cond.Broadcast()
	}
	t.run(0)
	<-t.done
	// Drop any helper tickets no worker claimed: the loop is already
	// complete, so they would only be popped and discarded later, and
	// until then they inflate Queued and wake workers for nothing.
	p.mu.Lock()
	q := p.queues[cl]
	w := 0
	for _, qt := range q {
		if qt != t {
			q[w] = qt
			w++
		}
	}
	for i := w; i < len(q); i++ {
		q[i] = nil
	}
	p.queues[cl] = q[:w]
	p.mu.Unlock()
}

var (
	defaultMu   sync.Mutex
	defaultPool *Pool
)

// Default returns the process-wide shared pool, created on first use
// with GOMAXPROCS workers.
func Default() *Pool {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultPool == nil {
		defaultPool = New(runtime.GOMAXPROCS(0))
	}
	return defaultPool
}
